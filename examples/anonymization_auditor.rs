//! Anonymization auditor: the paper's privacy application (Section 6).
//!
//! A common "anonymization" for shared IPv6 datasets is truncation to a
//! fixed prefix length (Google Analytics truncates to /48). The paper shows
//! this is fallacious: Netcologne delegates entire /48s to single
//! subscribers, so a "/48-anonymized" record still identifies one
//! household. This example audits truncation lengths against the simulated
//! ground truth: for each ISP and candidate truncation length, how many
//! *distinct subscribers* fall into one truncated prefix?
//!
//! ```sh
//! cargo run --release --example anonymization_auditor
//! ```

use dynamips::netsim::profiles::{dtag, kabel_de, netcologne, orange, Era};
use dynamips::netsim::time::{SimTime, Window};
use dynamips::netsim::World;
use std::collections::HashMap;

fn main() {
    let mut world = World::new(4941);
    world.add_isp(dtag(400, Era::Atlas));
    world.add_isp(orange(400, Era::Atlas));
    world.add_isp(netcologne(400, Era::Atlas));
    world.add_isp(kabel_de(400, Era::Atlas));

    let window = Window::new(SimTime(0), SimTime(60 * 24));
    let candidate_lens = [40u8, 44, 48, 52, 56];

    println!("median distinct subscribers per truncated prefix (60-day snapshot):\n");
    print!("{:<12}", "network");
    for len in candidate_lens {
        print!(" {:>8}", format!("/{len}"));
    }
    println!("  safe truncation");
    println!("{}", "-".repeat(70));

    world.run_each(window, |result| {
        let mut row = format!("{:<12}", result.config.name);
        let mut safe: Option<u8> = None;
        for len in candidate_lens {
            // Count subscribers per truncated prefix, over every /64 each
            // subscriber was delegated during the window.
            let mut subs_per_prefix: HashMap<u128, std::collections::HashSet<u32>> = HashMap::new();
            for tl in &result.timelines {
                for seg in &tl.v6 {
                    let trunc = seg.lan64.supernet(len).expect("len <= 64");
                    subs_per_prefix
                        .entry(trunc.bits())
                        .or_default()
                        .insert(tl.id.index);
                }
            }
            if subs_per_prefix.is_empty() {
                row.push_str(&format!(" {:>8}", "-"));
                continue;
            }
            let mut counts: Vec<usize> = subs_per_prefix.values().map(|s| s.len()).collect();
            counts.sort_unstable();
            let median = counts[counts.len() / 2];
            row.push_str(&format!(" {median:>8}"));
            // "Safe" = the typical truncated prefix aggregates a crowd
            // (k-anonymity with k >= 20), and so does the minimum.
            if safe.is_none() && median >= 20 && counts[0] >= 2 {
                safe = Some(len);
            }
        }
        println!(
            "{row}  {}",
            safe.map(|l| format!("<= /{l}"))
                .unwrap_or_else(|| "none of the candidates".into())
        );
    });

    println!(
        "\nReading: DTAG /48 buckets aggregate several subscribers (many\n\
         more at real population scale), but for Netcologne a /48 *is* one\n\
         subscriber — and low-churn networks like Orange spread this small\n\
         simulated population so thin that no candidate is safe at all.\n\
         Truncation must be per-network, informed by the delegation lengths\n\
         and pool boundaries the DynamIPs analysis infers, not a global\n\
         constant."
    );
}
