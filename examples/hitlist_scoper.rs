//! Hitlist scoper: the paper's active-probing application (Sections 5.2 and
//! 6). A measurement target (a device with a stable EUI-64 IID) vanishes
//! when its network renumbers; how many /64s must a scanner search to find
//! it again? The answer is the pool structure the spatial analysis
//! recovers: CPLs between successive assignments bound the search space.
//!
//! ```sh
//! cargo run --release --example hitlist_scoper
//! ```

use dynamips::core::changes::{spans_of, ProbeHistory};
use dynamips::core::subscriber::infer_subscriber_len_mode;
use dynamips::netaddr::common_prefix_len_v6;
use dynamips::netsim::profiles::{bt, comcast, dtag, lgi, orange, Era};
use dynamips::netsim::time::{SimTime, Window};
use dynamips::netsim::World;

fn main() {
    let mut world = World::new(60926);
    world.add_isp(dtag(150, Era::Atlas));
    world.add_isp(orange(150, Era::Atlas));
    world.add_isp(comcast(150, Era::Atlas));
    world.add_isp(lgi(150, Era::Atlas));
    world.add_isp(bt(150, Era::Atlas));

    let window = Window::new(SimTime(0), SimTime(540 * 24));
    println!(
        "{:<10} {:>9} {:>12} {:>14} {:>22} {:>16}",
        "network", "changes", "p10 CPL", "subscr. pfx", "search space (/64s)", "vs BGP blind"
    );
    println!("{}", "-".repeat(90));

    world.run_each(window, |result| {
        let mut cpls: Vec<u8> = Vec::new();
        let mut histories: Vec<ProbeHistory> = Vec::new();
        for tl in &result.timelines {
            let spans = spans_of(tl.v6.iter().map(|s| (s.start, s.lan64)));
            for pair in spans.windows(2) {
                cpls.push(common_prefix_len_v6(&pair[0].value, &pair[1].value));
            }
            histories.push(ProbeHistory {
                probe: dynamips::atlas::ProbeId(tl.id.index),
                virtual_index: 0,
                asn: tl.id.asn,
                v4: vec![],
                v6: spans,
            });
        }
        if cpls.is_empty() {
            return;
        }
        cpls.sort_unstable();
        // A conservative scanner plans for the 10th-percentile CPL: 90% of
        // renumberings stay within that many shared bits.
        let p10 = cpls[cpls.len() / 10];

        // If the ISP delegates prefixes shorter than /64 and CPEs zero the
        // rest, only one /64 per delegated prefix needs probing (modal
        // per-probe inference, robust to scrambling CPEs).
        let sub_len = infer_subscriber_len_mode(histories.iter()).unwrap_or(64);

        // /64s to scan: one per delegated prefix within the p10-CPL
        // enclosing block.
        let delegations_in_block = 1u128 << (sub_len.saturating_sub(p10) as u32);
        let bgp_len = result
            .config
            .v6_plan
            .as_ref()
            .map(|p| p.aggregates[0].len())
            .unwrap_or(32);
        let blind = 1u128 << (sub_len.saturating_sub(bgp_len) as u32);
        let reduction = blind as f64 / delegations_in_block as f64;
        println!(
            "{:<10} {:>9} {:>12} {:>14} {:>22} {:>15.0}x",
            result.config.name,
            cpls.len(),
            format!("/{p10}"),
            format!("/{sub_len}"),
            delegations_in_block,
            reduction
        );
    });

    println!(
        "\nReading: after a renumbering event, scanning the enclosing pool\n\
         block (p10 CPL) at one probe per delegated prefix relocates a\n\
         stable-IID device with orders of magnitude fewer probes than\n\
         sweeping the BGP announcement — the paper's point that pool and\n\
         subscriber boundaries turn IPv6 scanning from impossible to\n\
         tractable."
    );
}
