//! Policy explorer: sweep assignment policies on one synthetic ISP and show
//! how each mechanism shapes the observable duration distribution — the
//! mechanics behind the paper's Figure 1.
//!
//! ```sh
//! cargo run --release --example isp_policy_explorer
//! ```

use dynamips::core::changes::{sandwiched_durations, spans_of};
use dynamips::core::durations::{detect_period, DurationSet};
use dynamips::netsim::config::{
    CpeV6Behavior, IspConfig, OutageConfig, SubscriberClass, V4Policy, V4PoolPlan, V6Policy,
    V6PoolPlan,
};
use dynamips::netsim::sim::IspSim;
use dynamips::netsim::time::{SimTime, Window};
use dynamips::routing::{AccessType, Asn, Rir};

fn isp_with(v4: V4Policy, outages: OutageConfig) -> IspConfig {
    IspConfig {
        asn: Asn(64500),
        name: "SweepNet".into(),
        country: "X".into(),
        rir: Rir::RipeNcc,
        access: AccessType::FixedLine,
        v4_plan: Some(V4PoolPlan {
            pools: vec![("100.100.0.0/15".parse().unwrap(), 1.0)],
            announcements: vec![],
            p_near: 0.1,
            near_radius: 16,
        }),
        v6_plan: Some(V6PoolPlan {
            aggregates: vec!["2001:db8::/32".parse().unwrap()],
            region_len: 40,
            delegated_len: 56,
            regions_per_aggregate: 4,
            p_stay_region: 0.99,
        }),
        classes: vec![SubscriberClass {
            weight: 1.0,
            dual_stack: true,
            v4: Some(v4),
            v6: Some(V6Policy::StableDelegation {
                valid_lifetime_hours: 14 * 24,
                maintenance_mean_hours: f64::INFINITY,
            }),
            coupled: false,
            cpe_mix: vec![(1.0, CpeV6Behavior::ZeroOut)],
            outages,
        }],
        stabilization: vec![],
        subscribers: 120,
    }
}

fn main() {
    let window = Window::new(SimTime(0), SimTime(365 * 24));
    let policies: Vec<(&str, V4Policy, OutageConfig)> = vec![
        (
            "RADIUS, 24h session timeout (DTAG-like)",
            V4Policy::PeriodicRenumber {
                period_hours: 24,
                jitter: 0.0,
            },
            OutageConfig::quiet(),
        ),
        (
            "RADIUS, 1-week session timeout (Orange-like)",
            V4Policy::PeriodicRenumber {
                period_hours: 168,
                jitter: 0.0,
            },
            OutageConfig::quiet(),
        ),
        (
            "RADIUS, 2-week session timeout (BT-like)",
            V4Policy::PeriodicRenumber {
                period_hours: 336,
                jitter: 0.0,
            },
            OutageConfig::quiet(),
        ),
        (
            "sticky DHCP, 96h lease, quiet outages (Comcast-like)",
            V4Policy::DhcpSticky { lease_hours: 96 },
            OutageConfig::quiet(),
        ),
        (
            "sticky DHCP, 96h lease, frequent long outages",
            V4Policy::DhcpSticky { lease_hours: 96 },
            OutageConfig {
                long_outage_mean_interval_hours: 45.0 * 24.0,
                long_outage_mean_duration_hours: 8.0 * 24.0,
                ..OutageConfig::quiet()
            },
        ),
    ];

    println!(
        "{:<52} {:>8} {:>10} {:>14} {:>12}",
        "policy", "changes", "TTF@1d", "TTF@1w", "period"
    );
    println!("{}", "-".repeat(100));
    for (label, policy, outages) in policies {
        let res = IspSim::new(isp_with(policy, outages), window, 99).run();
        let mut set = DurationSet::new();
        let mut changes = 0usize;
        for tl in &res.timelines {
            // Re-derive durations from the ground-truth timeline the same
            // way the hourly-echo analysis would: spans of identical
            // observed addresses.
            let spans = spans_of(tl.v4.iter().map(|s| (s.start, s.addr)));
            changes += spans.len().saturating_sub(1);
            set.extend(sandwiched_durations(&spans));
        }
        let marks = set.cumulative_ttf_at(&[24, 168]);
        let period = detect_period(&set, 0.05, 0.5)
            .map(|p| format!("{}h", p.period_hours))
            .unwrap_or_else(|| "none".into());
        println!(
            "{:<52} {:>8} {:>10.2} {:>14.2} {:>12}",
            label, changes, marks[0], marks[1], period
        );
    }

    // Spatial side: how far do delegations move under region stickiness?
    println!("\nCPL between successive /64s under p_stay_region sweeps:");
    for p_stay in [1.0, 0.9, 0.5] {
        let mut cfg = isp_with(
            V4Policy::PeriodicRenumber {
                period_hours: 24,
                jitter: 0.0,
            },
            OutageConfig::quiet(),
        );
        cfg.classes[0].v6 = Some(V6Policy::PeriodicRenumber {
            period_hours: 24,
            jitter: 0.0,
        });
        cfg.v6_plan.as_mut().unwrap().p_stay_region = p_stay;
        let res = IspSim::new(cfg, Window::new(SimTime(0), SimTime(120 * 24)), 5).run();
        let mut cpls: Vec<u8> = Vec::new();
        for tl in &res.timelines {
            let spans = spans_of(tl.v6.iter().map(|s| (s.start, s.lan64)));
            for pair in spans.windows(2) {
                cpls.push(dynamips::netaddr::common_prefix_len_v6(
                    &pair[0].value,
                    &pair[1].value,
                ));
            }
        }
        cpls.sort_unstable();
        let within_region = cpls.iter().filter(|&&c| c >= 40).count();
        let median = cpls[cpls.len() / 2];
        println!(
            "  p_stay_region={p_stay:>4}: {:>6} changes, median CPL /{median}, {:>5.1}% within the /40 region",
            cpls.len(),
            100.0 * within_region as f64 / cpls.len() as f64
        );
    }
}
