//! Quickstart: simulate a DTAG-like ISP, observe it with Atlas-style
//! probes, run the analysis pipeline, and print what it recovers.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use dynamips::atlas::{AtlasCollector, AtlasConfig};
use dynamips::core::changes::sandwiched_durations;
use dynamips::core::durations::{detect_period, DurationSet};
use dynamips::core::sanitize::{sanitize_probe, SanitizeConfig, SanitizeOutcome, SanitizeReport};
use dynamips::core::subscriber::infer_subscriber_len;
use dynamips::netsim::profiles::{dtag, Era};
use dynamips::netsim::time::{SimTime, Window};
use dynamips::netsim::World;

fn main() {
    // 1. A synthetic Internet with one ISP: Deutsche Telekom as the paper
    //    characterizes it (24-hour renumbering, /56 delegations, a share of
    //    prefix-scrambling CPEs).
    let mut world = World::new(7);
    world.add_isp(dtag(120, Era::Atlas));

    // 2. Observe it for a year with hourly IP-echo measurements, including
    //    the deployment artifacts the sanitizer must remove.
    let window = Window::new(SimTime(0), SimTime(365 * 24));
    let collector = AtlasCollector::new(&world, window, AtlasConfig::default());

    // 3. Sanitize and analyze.
    let mut report = SanitizeReport::default();
    let mut v4 = DurationSet::new();
    let mut v6 = DurationSet::new();
    let mut inferred = [0u32; 65];
    let cfg = SanitizeConfig::default();
    collector.for_each_probe(|series| {
        match sanitize_probe(&series, world.routing(), &cfg, &mut report) {
            SanitizeOutcome::Clean(histories) => {
                for h in histories {
                    v4.extend(sandwiched_durations(&h.v4));
                    v6.extend(sandwiched_durations(&h.v6));
                    if h.v6.len() > 1 {
                        if let Some(len) = infer_subscriber_len(&h) {
                            inferred[len as usize] += 1;
                        }
                    }
                }
            }
            SanitizeOutcome::Rejected(reason) => {
                let _ = reason; // counted in `report`
            }
        }
    });

    println!("== sanitizer ==");
    println!(
        "probes in: {}, clean out: {}, multihomed: {}, atypical NAT: {}, \
         bad tags: {}, too short: {}",
        report.probes_in,
        report.probes_out,
        report.multihomed,
        report.atypical_nat,
        report.bad_tag,
        report.too_short
    );

    println!("\n== assignment durations ==");
    println!(
        "IPv4: {} sandwiched durations, {:.1} probe-years of assigned time",
        v4.len(),
        v4.total_hours() as f64 / (365.0 * 24.0)
    );
    if let Some(p) = detect_period(&v4, 0.05, 0.5) {
        println!(
            "  detected periodic renumbering: every {} hours ({:.0}% of durations)",
            p.period_hours,
            100.0 * p.duration_fraction
        );
    }
    if let Some(p) = detect_period(&v6, 0.05, 0.5) {
        println!(
            "IPv6: detected periodic renumbering: every {} hours ({:.0}% of durations)",
            p.period_hours,
            100.0 * p.duration_fraction
        );
    }

    println!("\n== inferred subscriber prefix lengths ==");
    let total: u32 = inferred.iter().sum();
    for (len, count) in inferred.iter().enumerate() {
        if *count > 0 {
            println!(
                "  /{len}: {count} probes ({:.0}%)",
                100.0 * *count as f64 / total as f64
            );
        }
    }
    println!(
        "\nDTAG's configured ground truth is /56 delegations; the /64\n\
         inferences come from CPEs that scramble the delegated bits,\n\
         exactly the ambiguity the paper reports for this ISP."
    );
}
