//! Blocklist advisor: the paper's host-reputation application (Section 6).
//!
//! Given measured assignment dynamics for a network, recommend (a) how long
//! a bad actor's address can stay on a blocklist before it starts punishing
//! an innocent subscriber who inherited the address, and (b) the IPv6
//! prefix granularity to block so the actor can neither evade (too-specific
//! prefix) nor take out a whole pool of users (too-short prefix).
//!
//! ```sh
//! cargo run --release --example blocklist_advisor
//! ```

use dynamips::atlas::{AtlasCollector, AtlasConfig};
use dynamips::core::changes::sandwiched_durations;
use dynamips::core::durations::DurationSet;
use dynamips::core::sanitize::{sanitize_probe, SanitizeConfig, SanitizeOutcome, SanitizeReport};
use dynamips::core::stats::quantile;
use dynamips::core::subscriber::InferredLenDistribution;
use dynamips::netsim::profiles::{comcast, dtag, netcologne, orange, Era};
use dynamips::netsim::time::{SimTime, Window};
use dynamips::netsim::World;
use dynamips::routing::Asn;

struct NetworkAdvice {
    name: String,
    v4_ttl_hours: Option<f64>,
    v6_ttl_hours: Option<f64>,
    block_len: Option<u8>,
    evasion_risk: bool,
}

fn main() {
    let mut world = World::new(2020);
    world.add_isp(dtag(100, Era::Atlas));
    world.add_isp(orange(100, Era::Atlas));
    world.add_isp(comcast(100, Era::Atlas));
    world.add_isp(netcologne(60, Era::Atlas));

    let window = Window::new(SimTime(0), SimTime(540 * 24));
    let collector = AtlasCollector::new(&world, window, AtlasConfig::pristine());
    let cfg = SanitizeConfig::default();
    let mut report = SanitizeReport::default();

    let mut per_as: std::collections::BTreeMap<
        Asn,
        (DurationSet, DurationSet, InferredLenDistribution),
    > = std::collections::BTreeMap::new();
    collector.for_each_probe(|series| {
        if let SanitizeOutcome::Clean(histories) =
            sanitize_probe(&series, world.routing(), &cfg, &mut report)
        {
            for h in histories {
                let entry = per_as.entry(h.asn).or_default();
                entry.0.extend(sandwiched_durations(&h.v4));
                entry.1.extend(sandwiched_durations(&h.v6));
                if h.v6.len() > 1 {
                    entry.2.add_probe(&h);
                }
            }
        }
    });

    let mut advice = Vec::new();
    for (asn, (v4, v6, inferred)) in &per_as {
        // TTL: the 25th percentile of assignment durations — beyond this,
        // one in four blocks would outlive the actor's tenancy of the
        // address and start hitting whoever gets it next.
        let p25 = |set: &DurationSet| {
            let v: Vec<f64> = set.raw().iter().map(|&d| d as f64).collect();
            quantile(&v, 0.25)
        };
        // Granularity: the modal inferred subscriber prefix length. If a
        // noticeable share of probes infer *shorter* prefixes than the
        // mode, blocking at the mode risks collateral damage; if the mode
        // is /64 (scrambling CPEs), a /64 block is evadable.
        let block_len = inferred.mode();
        let evasion_risk = inferred.percentage(64) > 20.0;
        advice.push(NetworkAdvice {
            name: world.registry().name_of(*asn),
            v4_ttl_hours: p25(v4),
            v6_ttl_hours: p25(v6),
            block_len,
            evasion_risk,
        });
    }

    println!(
        "{:<12} {:>14} {:>14} {:>12} {:>14}",
        "network", "v4 TTL", "v6 TTL", "block pfx", "evasion risk"
    );
    println!("{}", "-".repeat(70));
    for a in advice {
        let fmt = |h: Option<f64>| match h {
            Some(h) if h >= 48.0 => format!("{:.1} days", h / 24.0),
            Some(h) => format!("{h:.0} hours"),
            None => "no changes".into(),
        };
        println!(
            "{:<12} {:>14} {:>14} {:>12} {:>14}",
            a.name,
            fmt(a.v4_ttl_hours),
            fmt(a.v6_ttl_hours),
            a.block_len.map(|l| format!("/{l}")).unwrap_or("-".into()),
            if a.evasion_risk {
                "yes (/64s rotate)"
            } else {
                "low"
            }
        );
    }
    println!(
        "\nReading: DTAG's 24-hour renumbering forces short blocklist TTLs,\n\
         while Comcast-like stability supports multi-week blocks. Netcologne\n\
         delegates whole /48s, so /48 is the subscriber-precise granularity\n\
         there — blocking /64s would be trivially evadable, and blocking\n\
         anything shorter than /48 hits multiple households."
    );
}
