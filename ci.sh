#!/bin/sh
# The full CI gate, in dependency order: cheap static checks first, the
# invariant linter before the expensive build, tests last.
#
#   ./ci.sh
#
# Exits nonzero on the first failing stage. All stages run offline.
set -eu

say() { printf '\n== %s\n' "$*"; }

say "cargo fmt --check"
cargo fmt --all --check

say "cargo clippy -D warnings"
cargo clippy --workspace --all-targets --quiet -- -D warnings

say "dynamips-lint"
cargo run --quiet -p dynamips-lint
cargo run --quiet -p dynamips-lint -- --format json > target/lint-report.json

say "cargo build --release"
# --workspace matters: the root package is an umbrella, and without it
# this stage leaves target/release/dynamips stale for the smokes below.
cargo build --release --quiet --locked --workspace

say "cargo test"
cargo test --workspace -q

BIN=target/release/dynamips

say "engine bench at reference scale (2 workers, timings)"
rm -rf target/ci-artifacts
"$BIN" --seed 2020 --atlas-scale 0.2 --cdn-scale 0.15 --threads 2 --timings \
    --out target/ci-artifacts all > target/ci-run-stdout.txt
"$BIN" bench-check target/ci-artifacts/BENCH_all.json

say "usage errors exit 2 before any socket work"
rc=0; "$BIN" loadtest --url http://127.0.0.1:1/x --concurrency 0 >/dev/null 2>&1 || rc=$?
[ "$rc" -eq 2 ] || { echo "expected exit 2 for --concurrency 0, got $rc"; exit 1; }
rc=0; "$BIN" loadtest --url http://127.0.0.1:1/x \
    --bench-out /nonexistent-ci-dir/bench.json >/dev/null 2>&1 || rc=$?
[ "$rc" -eq 2 ] || { echo "expected exit 2 for unwritable --bench-out, got $rc"; exit 1; }
rc=0; "$BIN" loadtest --url http://127.0.0.1:1/x --open-loop >/dev/null 2>&1 || rc=$?
[ "$rc" -eq 2 ] || { echo "expected exit 2 for --open-loop without --rate-rps, got $rc"; exit 1; }
rc=0; "$BIN" serve --serve-workers 0 >/dev/null 2>&1 || rc=$?
[ "$rc" -eq 2 ] || { echo "expected exit 2 for --serve-workers 0, got $rc"; exit 1; }
rc=0; "$BIN" chaos-serve --requests 0 >/dev/null 2>&1 || rc=$?
[ "$rc" -eq 2 ] || { echo "expected exit 2 for chaos-serve --requests 0, got $rc"; exit 1; }

say "serve smoke: ephemeral port, loadtest, clean drain"
rm -f target/serve.log target/serve.err target/BENCH_serve.json
"$BIN" serve --addr 127.0.0.1:0 --seed 11 --atlas-scale 0.02 --cdn-scale 0.02 \
    --max-conns 2048 > target/serve.log 2> target/serve.err &
SERVE_PID=$!
URL=""
for _ in $(seq 1 100); do
    URL=$(awk '/^dynamips-serve listening on /{print $NF}' target/serve.log)
    [ -n "$URL" ] && break
    sleep 0.1
done
[ -n "$URL" ] || { echo "serve never reported its URL"; kill "$SERVE_PID" 2>/dev/null; exit 1; }
"$BIN" loadtest --url "$URL/artifacts/fig1" --concurrency 16 --requests 48 \
    --bench-out target/BENCH_serve.json
"$BIN" bench-check target/BENCH_serve.json

say "open-loop smoke: 1024 keep-alive connections, seeded schedule, baseline gate"
# loadtest exits 1 unless every request came back 2xx with zero
# transport errors, so this line is the >=1k-connections acceptance.
rm -f target/BENCH_openloop.json
"$BIN" loadtest --url "$URL/healthz" --open-loop --rate-rps 600 --seed 42 \
    --concurrency 1024 --requests 2048 --bench-out target/BENCH_openloop.json
"$BIN" bench-check target/BENCH_openloop.json --baseline BENCH_serve_baseline.json

"$BIN" loadtest --url "$URL/shutdown" --concurrency 1 --requests 1 \
    --bench-out target/BENCH_shutdown.json > /dev/null
# The drain is cooperative; give it a bounded window, then insist.
for _ in $(seq 1 100); do
    kill -0 "$SERVE_PID" 2>/dev/null || break
    sleep 0.1
done
if kill -0 "$SERVE_PID" 2>/dev/null; then
    echo "serve did not drain within the window"
    kill "$SERVE_PID"
    exit 1
fi
wait "$SERVE_PID" || { echo "serve exited nonzero"; exit 1; }

say "chaos-serve smoke: faults injected, zero visible 5xx, bytes identical"
rm -f target/BENCH_chaos_serve.json
"$BIN" chaos-serve --seed 7 --rate 0.0 --rate 0.2 --requests 12 --timeout-ms 800 \
    --bench-out target/BENCH_chaos_serve.json
"$BIN" bench-check target/BENCH_chaos_serve.json

say "ci: all stages passed"
