#!/bin/sh
# The full CI gate, in dependency order: cheap static checks first, the
# invariant linter before the expensive build, tests last.
#
#   ./ci.sh
#
# Exits nonzero on the first failing stage. All stages run offline.
set -eu

say() { printf '\n== %s\n' "$*"; }

say "cargo fmt --check"
cargo fmt --all --check

say "cargo clippy -D warnings"
cargo clippy --workspace --all-targets --quiet -- -D warnings

say "dynamips-lint"
cargo run --quiet -p dynamips-lint
cargo run --quiet -p dynamips-lint -- --format json > target/lint-report.json

say "cargo build --release"
cargo build --release --quiet --locked

say "cargo test"
cargo test --workspace -q

say "ci: all stages passed"
