//! Paper-shape assertions: the qualitative findings of every table and
//! figure must hold on a (small-scale) regeneration — who wins, by roughly
//! what factor, where the modes sit. Absolute counts are scale-dependent
//! and not asserted.

use dynamips::core::stats::quantile;
use dynamips::experiments::{AtlasAnalysis, CdnAnalysis, ExperimentConfig};
use std::sync::OnceLock;

/// Enough scale for stable modes, small enough for CI.
fn shape_config() -> ExperimentConfig {
    ExperimentConfig {
        seed: 2020,
        atlas_scale: 0.2,
        cdn_scale: 0.15,
    }
}

fn atlas() -> &'static AtlasAnalysis {
    static A: OnceLock<AtlasAnalysis> = OnceLock::new();
    A.get_or_init(|| AtlasAnalysis::compute(&shape_config()))
}

fn cdn() -> &'static CdnAnalysis {
    static C: OnceLock<CdnAnalysis> = OnceLock::new();
    C.get_or_init(|| CdnAnalysis::compute(&shape_config()))
}

/// Fraction of total assigned time in assignments ≤ the mark.
fn ttf_at(set: &dynamips::core::durations::DurationSet, hours: u64) -> f64 {
    set.cumulative_ttf_at(&[hours])[0]
}

// ---------------------------------------------------------------------------
// Figure 1 / Section 3.2
// ---------------------------------------------------------------------------

#[test]
fn fig1_ipv6_durations_longer_than_ipv4_nds() {
    // "IPv6 assignments have longer durations than IPv4" for the stable
    // ISPs; DTAG is the paper's exception (daily on both).
    for name in ["Orange", "Comcast", "LGI", "BT"] {
        let (_, s) = atlas().by_name(name).expect(name);
        let v4_short = ttf_at(&s.v4_durations_nds, 14 * 24);
        let v6_short = ttf_at(&s.v6_durations, 14 * 24);
        assert!(
            v6_short < v4_short + 0.05,
            "{name}: v6 mass at <=2w ({v6_short:.2}) should not exceed v4 ({v4_short:.2})"
        );
    }
}

#[test]
fn fig1_dual_stack_v4_lasts_longer_than_non_dual_stack() {
    for name in ["Orange", "DTAG", "BT"] {
        let (_, s) = atlas().by_name(name).expect(name);
        let nds = ttf_at(&s.v4_durations_nds, 7 * 24);
        let ds = ttf_at(&s.v4_durations_ds, 7 * 24);
        assert!(
            ds <= nds + 0.02,
            "{name}: DS short-duration mass ({ds:.2}) must not exceed NDS ({nds:.2})"
        );
    }
}

#[test]
fn fig1_periodic_modes_match_paper() {
    use dynamips::core::durations::detect_period;
    for (name, period) in [
        ("DTAG", 24u64),
        ("Orange", 168),
        ("BT", 336),
        ("Proximus", 36),
    ] {
        let (_, s) = atlas().by_name(name).expect(name);
        let p = detect_period(&s.v4_durations_nds, 0.06, 0.4)
            .unwrap_or_else(|| panic!("{name}: no period detected"));
        let lo = (period as f64 * 0.9) as u64;
        let hi = (period as f64 * 1.1) as u64;
        assert!(
            (lo..=hi).contains(&p.period_hours),
            "{name}: detected {}h, expected ~{period}h",
            p.period_hours
        );
    }
}

#[test]
fn fig1_dtag_renumbers_ipv6_daily_too() {
    use dynamips::core::durations::detect_period;
    let (_, s) = atlas().by_name("DTAG").unwrap();
    let p = detect_period(&s.v6_durations, 0.06, 0.4).expect("DTAG v6 period");
    assert!((22..=26).contains(&p.period_hours), "{p:?}");
}

// ---------------------------------------------------------------------------
// Table 1 / dual-stack structure
// ---------------------------------------------------------------------------

#[test]
fn table1_all_networks_have_clean_probes_and_changes() {
    for name in [
        "DTAG", "Comcast", "Orange", "LGI", "Free SAS", "Kabel DE", "Proximus", "Versatel", "BT",
    ] {
        let (_, s) = atlas().by_name(name).expect(name);
        assert!(s.probes > 0, "{name}: no clean probes");
        assert!(s.ds_probes > 0, "{name}: no dual-stack probes");
        assert!(s.v4_changes_all > 0, "{name}: no v4 changes");
        assert!(
            s.v4_changes_ds <= s.v4_changes_all,
            "{name}: DS changes exceed total"
        );
    }
}

#[test]
fn table1_change_volume_ordering() {
    // DTAG's daily renumbering dwarfs Comcast's outage-driven changes.
    let (_, dtag) = atlas().by_name("DTAG").unwrap();
    let (_, comcast) = atlas().by_name("Comcast").unwrap();
    let dtag_rate = dtag.v4_changes_all as f64 / dtag.probes as f64;
    let comcast_rate = comcast.v4_changes_all as f64 / comcast.probes as f64;
    assert!(
        dtag_rate > 20.0 * comcast_rate,
        "DTAG {dtag_rate:.1} vs Comcast {comcast_rate:.1} changes/probe"
    );
}

// ---------------------------------------------------------------------------
// Section 3.2 interplay
// ---------------------------------------------------------------------------

#[test]
fn dtag_changes_mostly_simultaneous_comcast_mostly_not() {
    let (_, dtag) = atlas().by_name("DTAG").unwrap();
    let (_, comcast) = atlas().by_name("Comcast").unwrap();
    assert!(
        dtag.cooccurrence.simultaneity() > 0.75,
        "DTAG: {}",
        dtag.cooccurrence.simultaneity()
    );
    assert!(
        comcast.cooccurrence.simultaneity() < 0.5,
        "Comcast: {}",
        comcast.cooccurrence.simultaneity()
    );
}

#[test]
fn periodic_renumbering_detected_on_many_networks() {
    assert!(atlas().periodic_v4_ases().len() >= 10);
    assert!(atlas().periodic_v6_ases().len() >= 6);
    // The 12h and 48h oddballs from the paper.
    let v6 = atlas().periodic_v6_ases();
    assert!(
        v6.iter()
            .any(|(asn, p)| asn.0 == 6057 && (11..=13).contains(p)),
        "ANTEL 12h: {v6:?}"
    );
    assert!(
        v6.iter()
            .any(|(asn, p)| asn.0 == 18881 && (44..=52).contains(p)),
        "GVT 48h: {v6:?}"
    );
}

// ---------------------------------------------------------------------------
// Table 2 / Figure 5 spatial structure
// ---------------------------------------------------------------------------

#[test]
fn table2_v6_changes_rarely_cross_bgp_v4_often_do() {
    for name in ["DTAG", "Orange", "Proximus", "Versatel", "BT"] {
        let (_, s) = atlas().by_name(name).expect(name);
        assert!(
            s.crossing.pct_v6_diff_bgp() < 10.0,
            "{name} v6 diff-BGP {:.0}%",
            s.crossing.pct_v6_diff_bgp()
        );
        assert!(
            s.crossing.pct_v4_diff_bgp() > 15.0,
            "{name} v4 diff-BGP {:.0}%",
            s.crossing.pct_v4_diff_bgp()
        );
        assert!(
            s.crossing.pct_v6_diff_bgp() < s.crossing.pct_v4_diff_bgp(),
            "{name}: v6 must cross BGP less often than v4"
        );
    }
}

#[test]
fn table2_free_sas_v6_crosses_bgp_often() {
    // The paper's outlier: 42% of Free SAS v6 changes cross BGP prefixes.
    let (_, s) = atlas().by_name("Free SAS").unwrap();
    assert!(
        s.crossing.pct_v6_diff_bgp() > 20.0,
        "{:.0}%",
        s.crossing.pct_v6_diff_bgp()
    );
}

#[test]
fn fig5_dtag_cpl_structure() {
    let (_, s) = atlas().by_name("DTAG").unwrap();
    let below24: u64 = s.cpl.changes[..24].iter().sum();
    let mid: u64 = s.cpl.changes[40..56].iter().sum();
    let high: u64 = s.cpl.changes[56..].iter().sum();
    assert_eq!(below24, 0, "no CPL below /24 for DTAG");
    assert!(mid > 0, "bulk of changes within the /40 pool");
    assert!(high > 0, "scrambling CPEs produce CPL >= 56 changes");
    let total = s.cpl.total_changes();
    assert!(
        mid + high > total / 2,
        "mid {mid} high {high} total {total}"
    );
}

#[test]
fn fig5_lgi_mode_at_44() {
    let (_, s) = atlas().by_name("LGI").unwrap();
    let mode = s.cpl.mode().expect("LGI has v6 changes");
    assert!(
        (44..=50).contains(&mode),
        "LGI CPL mode /{mode}, paper: /44"
    );
}

// ---------------------------------------------------------------------------
// Figures 6, 8, 9 pool & subscriber boundaries
// ---------------------------------------------------------------------------

#[test]
fn fig6_verified_delegation_lengths() {
    for (name, len) in [
        ("Orange", 56u8),
        ("Sky U.K.", 56),
        ("Kabel DE", 62),
        ("Netcologne", 48),
        ("Comcast", 60),
    ] {
        let (_, s) = atlas().by_name(name).expect(name);
        assert_eq!(
            s.inferred.mode(),
            Some(len),
            "{name}: expected modal inference /{len}"
        );
    }
}

#[test]
fn fig6_dtag_bimodal_56_and_64() {
    let (_, s) = atlas().by_name("DTAG").unwrap();
    assert!(s.inferred.percentage(56) > 30.0);
    assert!(s.inferred.percentage(64) > 15.0);
}

#[test]
fn fig8_few_unique_slash40s_many_slash64s() {
    // Paper: 90% of probes observe addresses from <= 3 /40s while seeing
    // many more /64s. Index 3 of POOL_LENGTHS is /40, index 0 is /64.
    let (_, s) = atlas().by_name("DTAG").unwrap();
    assert!(s.pools.cdf_at(3, 5) > 0.9, "{}", s.pools.cdf_at(3, 5));
    assert!(s.pools.median(0) > 50.0, "{}", s.pools.median(0));
    assert!(s.pools.median(3) <= 3.0, "{}", s.pools.median(3));
}

#[test]
fn fig9_global_spike_at_56() {
    let g = &atlas().global_inferred;
    assert!(g.total() > 100);
    // /56 is the most common delegation across the simulated networks,
    // exactly as in the paper's Figure 9.
    assert_eq!(g.mode(), Some(56));
}

// ---------------------------------------------------------------------------
// Figures 2, 3, 4, 7 (CDN)
// ---------------------------------------------------------------------------

#[test]
fn fig3_fixed_durations_dwarf_mobile() {
    let fixed: Vec<f64> = cdn()
        .runs
        .iter()
        .filter(|r| !r.mobile)
        .map(|r| r.days as f64)
        .collect();
    let mobile: Vec<f64> = cdn()
        .runs
        .iter()
        .filter(|r| r.mobile)
        .map(|r| r.days as f64)
        .collect();
    let f50 = quantile(&fixed, 0.5).unwrap();
    let m50 = quantile(&mobile, 0.5).unwrap();
    assert!(
        f50 >= 15.0 * m50,
        "fixed median {f50} vs mobile {m50} (paper: ~60x)"
    );
    // Mobile majority <= 1 day.
    let short = mobile.iter().filter(|&&d| d <= 1.0).count() as f64;
    assert!(short / mobile.len() as f64 > 0.55);
}

#[test]
fn fig2_dtag_shorter_associations_than_comcast() {
    let dtag = cdn().asn_by_name("DTAG").unwrap();
    let comcast = cdn().asn_by_name("Comcast").unwrap();
    let d = quantile(&cdn().by_asn_days[&dtag], 0.5).unwrap();
    let c = quantile(&cdn().by_asn_days[&comcast], 0.5).unwrap();
    assert!(d < c, "DTAG median {d} vs Comcast {c}");
}

#[test]
fn fig4_mobile_multiplexing_degrees() {
    let mobile_peak = cdn().mobile_degree.weighted_peak(6, 2).unwrap();
    let fixed_peak = cdn().fixed_degree.weighted_peak(6, 2).unwrap();
    assert!(
        mobile_peak > 20.0 * fixed_peak,
        "mobile {mobile_peak} vs fixed {fixed_peak} (paper: ~400x at full population)"
    );
    // The strong v6->v4 affinity: most mobile /64s see a single /24.
    assert!(cdn().mobile_degree.p64_degree_one_fraction > 0.75);
    assert!(cdn().fixed_degree.p64_degree_one_fraction > 0.85);
}

#[test]
fn fig7_registry_signatures() {
    use dynamips::routing::Rir;
    let n = &cdn().nibble_by_rir;
    let inf = |r: Rir| n.get(&r).map(|c| c.inferable_fraction()).unwrap_or(0.0);
    // LACNIC is the low outlier; RIPE and AFRINIC are high; /56 dominates
    // in RIPE and AFRINIC.
    assert!(inf(Rir::Lacnic) < 0.35, "{}", inf(Rir::Lacnic));
    assert!(inf(Rir::RipeNcc) > 0.55, "{}", inf(Rir::RipeNcc));
    assert!(inf(Rir::Afrinic) > 0.55, "{}", inf(Rir::Afrinic));
    assert!(inf(Rir::RipeNcc) > inf(Rir::Lacnic));
    let ripe = n.get(&Rir::RipeNcc).unwrap().fractions();
    assert!(
        ripe[2] > ripe[0] && ripe[2] > ripe[1] && ripe[2] > ripe[3],
        "/56 dominates RIPE: {ripe:?}"
    );
    // Mobile /64s: no consistent trailing zeros.
    assert!(cdn().mobile_nibble.inferable_fraction() < 0.15);
}

#[test]
fn cdn_preprocessing_accounting() {
    let c = cdn();
    assert!(c.raw_count > 0);
    // Every raw tuple is either kept or attributed to exactly one discard
    // class — nothing vanishes from the accounting.
    assert_eq!(
        c.raw_count,
        c.kept_count + c.discarded_as_mismatch + c.discarded_unrouted
    );
    let kept_frac = c.kept_count as f64 / c.raw_count as f64;
    assert!(kept_frac > 0.9 && kept_frac < 0.999, "{kept_frac}");
    assert!(c.mobile_p64_fraction > 0.5 && c.mobile_p64_fraction < 0.85);
}

#[test]
fn in_binary_self_check_agrees() {
    // The `dynamips check` subcommand evaluates the same shape family;
    // every one of its predicates must hold at this scale too.
    let checks = dynamips::experiments::check::run_checks(atlas(), cdn());
    assert!(checks.len() >= 20);
    let failures: Vec<String> = checks
        .iter()
        .filter(|c| !c.pass)
        .map(|c| format!("{}: {} ({})", c.artifact, c.shape, c.measured))
        .collect();
    assert!(failures.is_empty(), "{}", failures.join("\n"));
}
