//! Determinism and serialization round trips across the whole stack.

use dynamips::atlas::{records, AtlasCollector, AtlasConfig};
use dynamips::cdn::{CdnCollector, CdnConfig};
use dynamips::netsim::profiles::{atlas_world, dtag, Era};
use dynamips::netsim::time::{SimTime, Window};
use dynamips::netsim::World;
use dynamips::routing::pfx2as::{from_pfx2as, to_pfx2as};

#[test]
fn whole_world_simulation_is_seed_deterministic() {
    let run = |seed: u64| {
        let world = atlas_world(seed, 0.02);
        let mut fingerprint: Vec<(u64, usize, usize)> = Vec::new();
        world.run_each(Window::new(SimTime(0), SimTime(200 * 24)), |res| {
            for tl in &res.timelines {
                fingerprint.push((tl.device_iid, tl.v4.len(), tl.v6.len()));
            }
        });
        fingerprint
    };
    assert_eq!(run(1), run(1));
    assert_ne!(run(1), run(2));
}

#[test]
fn atlas_collection_round_trips_through_tsv() {
    let mut world = World::new(5);
    world.add_isp(dtag(6, Era::Atlas));
    let window = Window::new(SimTime(0), SimTime(90 * 24));
    let collector = AtlasCollector::new(&world, window, AtlasConfig::pristine());
    let probes = collector.collect_all();
    assert!(!probes.is_empty());

    let mut blob = String::new();
    for p in &probes {
        blob.push_str(&records::to_tsv(p.probe, &p.v4, &p.v6));
    }
    let parsed = records::from_tsv(&blob).expect("well-formed TSV");
    assert_eq!(parsed.len(), probes.len());
    for ((id, v4, v6), original) in parsed.iter().zip(&probes) {
        assert_eq!(*id, original.probe);
        assert_eq!(v4, &original.v4);
        assert_eq!(v6, &original.v6);
    }
}

#[test]
fn world_routing_round_trips_through_pfx2as() {
    let world = atlas_world(3, 0.02);
    let text = to_pfx2as(world.routing());
    let parsed = from_pfx2as(&text).expect("well-formed pfx2as");
    assert_eq!(parsed.v4_entries(), world.routing().v4_entries());
    assert_eq!(parsed.v6_entries(), world.routing().v6_entries());
    // Spot-check an origin lookup survives the round trip.
    let addr: std::net::Ipv6Addr = "2003:40:a0::1".parse().unwrap();
    assert_eq!(parsed.origin_v6(addr), world.routing().origin_v6(addr));
}

#[test]
fn cdn_collection_is_seed_deterministic_and_seed_sensitive() {
    let collect = |seed: u64| {
        let mut world = World::new(seed);
        world.add_isp(dtag(20, Era::Cdn));
        CdnCollector::new(
            &world,
            Window::new(SimTime(0), SimTime(60 * 24)),
            CdnConfig::default(),
        )
        .collect()
        .tuples
    };
    assert_eq!(collect(9), collect(9));
    assert_ne!(collect(9), collect(10));
}

#[test]
fn experiment_artifacts_are_reproducible() {
    use dynamips::experiments::{atlas_exps, AtlasAnalysis, ExperimentConfig};
    let cfg = ExperimentConfig {
        seed: 77,
        atlas_scale: 0.02,
        cdn_scale: 0.02,
    };
    let a1 = atlas_exps::table1(&AtlasAnalysis::compute(&cfg));
    let a2 = atlas_exps::table1(&AtlasAnalysis::compute(&cfg));
    assert_eq!(a1, a2, "same seed, same table");
}
