//! End-to-end ground-truth recovery: configure a mechanism in the
//! simulator, observe it through the Atlas layer, push it through the
//! sanitizer and the analyses, and check the *configured* value comes back
//! out. This is the core scientific property of the reproduction.

use dynamips::atlas::{AtlasCollector, AtlasConfig};
use dynamips::core::changes::sandwiched_durations;
use dynamips::core::durations::{detect_period, DurationSet};
use dynamips::core::sanitize::{sanitize_probe, SanitizeConfig, SanitizeOutcome, SanitizeReport};
use dynamips::core::spatial::CplHistogram;
use dynamips::core::subscriber::InferredLenDistribution;
use dynamips::netsim::config::{
    CpeV6Behavior, IspConfig, OutageConfig, SubscriberClass, V4Policy, V4PoolPlan, V6Policy,
    V6PoolPlan,
};
use dynamips::netsim::time::{SimTime, Window};
use dynamips::netsim::World;
use dynamips::routing::{AccessType, Asn, Rir};

fn isp(period_hours: u64, delegated_len: u8, cpe: CpeV6Behavior) -> IspConfig {
    IspConfig {
        asn: Asn(64500),
        name: "E2E".into(),
        country: "X".into(),
        rir: Rir::RipeNcc,
        access: AccessType::FixedLine,
        v4_plan: Some(V4PoolPlan {
            pools: vec![("100.100.0.0/15".parse().unwrap(), 1.0)],
            announcements: vec![],
            p_near: 0.0,
            near_radius: 16,
        }),
        v6_plan: Some(V6PoolPlan {
            aggregates: vec!["2001:db8::/32".parse().unwrap()],
            region_len: 40,
            delegated_len,
            regions_per_aggregate: 3,
            p_stay_region: 1.0,
        }),
        classes: vec![SubscriberClass {
            weight: 1.0,
            dual_stack: true,
            v4: Some(V4Policy::PeriodicRenumber {
                period_hours,
                jitter: 0.0,
            }),
            v6: Some(V6Policy::PeriodicRenumber {
                period_hours,
                jitter: 0.0,
            }),
            coupled: true,
            cpe_mix: vec![(1.0, cpe)],
            outages: OutageConfig::none(),
        }],
        stabilization: vec![],
        subscribers: 30,
    }
}

struct Recovered {
    v4_durations: DurationSet,
    v6_durations: DurationSet,
    inferred: InferredLenDistribution,
    cpl: CplHistogram,
    clean_probes: usize,
}

fn run_pipeline(cfg: IspConfig, seed: u64, days: u64) -> Recovered {
    let mut world = World::new(seed);
    world.add_isp(cfg);
    let window = Window::new(SimTime(0), SimTime(days * 24));
    let collector = AtlasCollector::new(&world, window, AtlasConfig::pristine());
    let scfg = SanitizeConfig::default();
    let mut report = SanitizeReport::default();
    let mut out = Recovered {
        v4_durations: DurationSet::new(),
        v6_durations: DurationSet::new(),
        inferred: InferredLenDistribution::new(),
        cpl: CplHistogram::new(),
        clean_probes: 0,
    };
    collector.for_each_probe(|series| {
        if let SanitizeOutcome::Clean(histories) =
            sanitize_probe(&series, world.routing(), &scfg, &mut report)
        {
            for h in histories {
                out.clean_probes += 1;
                out.v4_durations.extend(sandwiched_durations(&h.v4));
                out.v6_durations.extend(sandwiched_durations(&h.v6));
                out.inferred.add_probe(&h);
                out.cpl.add_probe(&h);
            }
        }
    });
    out
}

#[test]
fn recovers_configured_24h_period_exactly() {
    let rec = run_pipeline(isp(24, 56, CpeV6Behavior::ZeroOut), 1, 120);
    assert!(rec.clean_probes >= 25);
    let p4 = detect_period(&rec.v4_durations, 0.02, 0.8).expect("v4 period detected");
    assert_eq!(p4.period_hours, 24);
    assert!(p4.duration_fraction > 0.95, "{p4:?}");
    let p6 = detect_period(&rec.v6_durations, 0.02, 0.8).expect("v6 period detected");
    assert_eq!(p6.period_hours, 24);
}

#[test]
fn recovers_configured_weekly_period() {
    let rec = run_pipeline(isp(168, 56, CpeV6Behavior::ZeroOut), 2, 400);
    let p4 = detect_period(&rec.v4_durations, 0.02, 0.8).expect("v4 period detected");
    assert_eq!(p4.period_hours, 168);
}

#[test]
fn recovers_configured_delegation_lengths() {
    for delegated in [48u8, 56, 60, 62] {
        let rec = run_pipeline(isp(24, delegated, CpeV6Behavior::ZeroOut), 3, 90);
        assert_eq!(
            rec.inferred.mode(),
            Some(delegated),
            "delegation /{delegated} must be recovered"
        );
        // And overwhelmingly so: a zero-out ISP leaves little ambiguity.
        assert!(
            rec.inferred.percentage(delegated) > 80.0,
            "/{delegated}: {:?}",
            rec.inferred.percentage(delegated)
        );
    }
}

#[test]
fn scrambling_cpes_defeat_delegation_inference() {
    let rec = run_pipeline(
        isp(
            24,
            56,
            CpeV6Behavior::Scramble {
                rotate_every_hours: None,
            },
        ),
        4,
        90,
    );
    // The paper's DTAG /64 spike: scrambled bits make every probe infer /64
    // (or very close).
    let near_64: f64 = (62..=64).map(|l| rec.inferred.percentage(l)).sum();
    assert!(near_64 > 80.0, "{near_64}");
}

#[test]
fn cpl_bounded_below_by_region_when_pinned() {
    let rec = run_pipeline(isp(24, 56, CpeV6Behavior::ZeroOut), 5, 120);
    assert!(rec.cpl.total_changes() > 1000);
    for cpl in 0..40 {
        assert_eq!(
            rec.cpl.changes[cpl], 0,
            "no cross-region moves configured, but CPL /{cpl} seen"
        );
    }
    // Within-region draws share at least the /40; mass concentrates just
    // above it.
    assert!(rec.cpl.changes[40..48].iter().sum::<u64>() > 0);
}

#[test]
fn constant_nonzero_cpe_overestimates_subscriber_length() {
    let rec = run_pipeline(isp(24, 56, CpeV6Behavior::ConstantNonZero), 6, 90);
    // A CPE numbering its LAN from a constant non-zero index makes the
    // inference land strictly *longer* than the true /56 (the paper flags
    // exactly this failure mode).
    let mode = rec.inferred.mode().expect("some inference");
    assert!(mode > 56, "mode {mode} should overestimate /56");
}
