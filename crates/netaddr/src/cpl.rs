//! Common-prefix-length (CPL) arithmetic.
//!
//! Section 5.2 of the paper measures the spatial distance between two
//! successive /64 assignments to the same subscriber as the number of leading
//! bits the two prefixes share ("Common Prefix Length"). For the example in
//! the paper, `2604:3d08:4b80:aa00::/64` and `2604:3d08:4b80:aaf0::/64`
//! share 56 bits.

use crate::v4::Ipv4Prefix;
use crate::v6::Ipv6Prefix;

/// Number of leading bits two IPv6 prefixes share, capped at the shorter of
/// the two prefix lengths.
///
/// ```
/// use dynamips_netaddr::{common_prefix_len_v6, Ipv6Prefix};
///
/// // The paper's own Section-5.2 example:
/// let a: Ipv6Prefix = "2604:3d08:4b80:aa00::/64".parse().unwrap();
/// let b: Ipv6Prefix = "2604:3d08:4b80:aaf0::/64".parse().unwrap();
/// assert_eq!(common_prefix_len_v6(&a, &b), 56);
/// ```
pub fn common_prefix_len_v6(a: &Ipv6Prefix, b: &Ipv6Prefix) -> u8 {
    let xor = a.bits() ^ b.bits();
    let shared = xor.leading_zeros() as u8;
    shared.min(a.len()).min(b.len())
}

/// Number of leading bits two IPv4 prefixes share, capped at the shorter of
/// the two prefix lengths.
pub fn common_prefix_len_v4(a: &Ipv4Prefix, b: &Ipv4Prefix) -> u8 {
    let xor = a.bits() ^ b.bits();
    let shared = xor.leading_zeros() as u8;
    shared.min(a.len()).min(b.len())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p6(s: &str) -> Ipv6Prefix {
        s.parse().unwrap()
    }

    fn p4(s: &str) -> Ipv4Prefix {
        s.parse().unwrap()
    }

    #[test]
    fn paper_example_is_56() {
        // Direct example from Section 5.2.
        let a = p6("2604:3d08:4b80:aa00::/64");
        let b = p6("2604:3d08:4b80:aaf0::/64");
        assert_eq!(common_prefix_len_v6(&a, &b), 56);
    }

    #[test]
    fn identical_prefixes_share_their_full_length() {
        let a = p6("2001:db8:1:2::/64");
        assert_eq!(common_prefix_len_v6(&a, &a), 64);
        let b = p6("2001:db8::/32");
        assert_eq!(common_prefix_len_v6(&b, &b), 32);
    }

    #[test]
    fn disjoint_top_bits_share_nothing() {
        let a = p6("2001::/64");
        let b = p6("a001::/64");
        assert_eq!(common_prefix_len_v6(&a, &b), 0);
    }

    #[test]
    fn capped_by_shorter_length() {
        // Same bits, but one prefix is only /32 long: the CPL cannot exceed 32.
        let a = p6("2001:db8::/32");
        let b = p6("2001:db8:0:1::/64");
        assert_eq!(common_prefix_len_v6(&a, &b), 32);
    }

    #[test]
    fn v4_shared_bits() {
        assert_eq!(
            common_prefix_len_v4(&p4("10.0.0.0/24"), &p4("10.0.1.0/24")),
            23
        );
        assert_eq!(
            common_prefix_len_v4(&p4("10.0.0.0/24"), &p4("10.0.0.0/24")),
            24
        );
        assert_eq!(
            common_prefix_len_v4(&p4("0.0.0.0/8"), &p4("128.0.0.0/8")),
            0
        );
    }

    #[test]
    fn differs_exactly_at_boundary() {
        // Bit 40 differs (0x00 vs 0x80 in the 6th byte).
        let a = p6("2001:db8:0:0::/64");
        let b = p6("2001:db8:80:0::/64");
        assert_eq!(common_prefix_len_v6(&a, &b), 40);
    }
}
