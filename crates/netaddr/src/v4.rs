//! IPv4 CIDR prefixes.

use crate::error::PrefixError;
use std::fmt;
use std::net::Ipv4Addr;
use std::str::FromStr;

/// A canonical IPv4 CIDR prefix: all bits below `len` are zero.
///
/// Backed by a `u32` so that subnetting arithmetic is plain integer math.
/// The ordering is lexicographic on `(bits, len)`, which sorts prefixes in
/// address order with less-specifics before their more-specifics.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Ipv4Prefix {
    bits: u32,
    len: u8,
}

#[allow(clippy::len_without_is_empty)] // a prefix length, not a container
impl Ipv4Prefix {
    /// Maximum prefix length.
    pub const MAX_LEN: u8 = 32;

    /// Construct a prefix, requiring a canonical (masked) network address.
    pub fn new(addr: Ipv4Addr, len: u8) -> Result<Self, PrefixError> {
        if len > Self::MAX_LEN {
            return Err(PrefixError::LengthOutOfRange {
                len,
                max: Self::MAX_LEN,
            });
        }
        let bits = u32::from(addr);
        if bits & !mask(len) != 0 {
            return Err(PrefixError::HostBitsSet);
        }
        Ok(Self { bits, len })
    }

    /// Construct a prefix, masking away any host bits.
    pub fn new_truncated(addr: Ipv4Addr, len: u8) -> Result<Self, PrefixError> {
        if len > Self::MAX_LEN {
            return Err(PrefixError::LengthOutOfRange {
                len,
                max: Self::MAX_LEN,
            });
        }
        Ok(Self {
            bits: u32::from(addr) & mask(len),
            len,
        })
    }

    /// The /32 prefix covering exactly `addr`.
    pub fn host(addr: Ipv4Addr) -> Self {
        Self {
            bits: u32::from(addr),
            len: 32,
        }
    }

    /// Construct from raw bits (must already be masked).
    pub fn from_bits(bits: u32, len: u8) -> Result<Self, PrefixError> {
        Self::new(Ipv4Addr::from(bits), len)
    }

    /// The network address.
    pub fn network(&self) -> Ipv4Addr {
        Ipv4Addr::from(self.bits)
    }

    /// The raw network bits.
    pub fn bits(&self) -> u32 {
        self.bits
    }

    /// The prefix length.
    pub fn len(&self) -> u8 {
        self.len
    }

    /// Whether this is the default route `0.0.0.0/0`.
    pub fn is_default(&self) -> bool {
        self.len == 0
    }

    /// The last address covered by the prefix.
    pub fn last_address(&self) -> Ipv4Addr {
        Ipv4Addr::from(self.bits | !mask(self.len))
    }

    /// Number of addresses covered, saturating at `u64::MAX` (only /0 would
    /// need more than 32 bits, and 2^32 fits comfortably in a u64).
    pub fn num_addresses(&self) -> u64 {
        1u64 << (32 - self.len as u32)
    }

    /// Whether `addr` falls inside this prefix.
    pub fn contains(&self, addr: Ipv4Addr) -> bool {
        u32::from(addr) & mask(self.len) == self.bits
    }

    /// Whether `other` is fully covered by this prefix (equal or
    /// more-specific).
    pub fn contains_prefix(&self, other: &Ipv4Prefix) -> bool {
        other.len >= self.len && other.bits & mask(self.len) == self.bits
    }

    /// The enclosing prefix of length `len` (must be ≤ the current length).
    pub fn supernet(&self, len: u8) -> Result<Self, PrefixError> {
        if len > self.len {
            return Err(PrefixError::LengthOutOfRange { len, max: self.len });
        }
        Ok(Self {
            bits: self.bits & mask(len),
            len,
        })
    }

    /// Number of subprefixes of length `sub_len` inside this prefix.
    pub fn num_subprefixes(&self, sub_len: u8) -> Result<u64, PrefixError> {
        if sub_len < self.len || sub_len > Self::MAX_LEN {
            return Err(PrefixError::LengthOutOfRange {
                len: sub_len,
                max: Self::MAX_LEN,
            });
        }
        Ok(1u64 << (sub_len - self.len))
    }

    /// The `index`-th subprefix of length `sub_len`, counting from the
    /// lowest-numbered one.
    pub fn nth_subprefix(&self, sub_len: u8, index: u64) -> Result<Self, PrefixError> {
        let count = self.num_subprefixes(sub_len)?;
        if index >= count {
            return Err(PrefixError::Malformed(format!(
                "subprefix index {index} out of range (count {count})"
            )));
        }
        // Shift in 64-bit space: for sub_len == 0 the shift is 32, which
        // would overflow a u32 shift (index is necessarily 0 there).
        let offset = (index << (32 - sub_len as u32)) as u32;
        Ok(Self {
            bits: self.bits | offset,
            len: sub_len,
        })
    }

    /// The `index`-th address inside this prefix.
    pub fn nth_address(&self, index: u64) -> Result<Ipv4Addr, PrefixError> {
        if index >= self.num_addresses() {
            return Err(PrefixError::Malformed(format!(
                "address index {index} out of range"
            )));
        }
        Ok(Ipv4Addr::from(self.bits | index as u32))
    }

    /// The /24 block containing `addr` — the aggregation granularity the
    /// paper's CDN dataset uses for IPv4.
    pub fn slash24_of(addr: Ipv4Addr) -> Self {
        Self {
            bits: u32::from(addr) & mask(24),
            len: 24,
        }
    }
}

/// Bit mask with the top `len` bits set.
fn mask(len: u8) -> u32 {
    if len == 0 {
        0
    } else {
        u32::MAX << (32 - len as u32)
    }
}

impl fmt::Display for Ipv4Prefix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.network(), self.len)
    }
}

impl fmt::Debug for Ipv4Prefix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

impl FromStr for Ipv4Prefix {
    type Err = PrefixError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let (addr, len) = s
            .split_once('/')
            .ok_or_else(|| PrefixError::Malformed(s.to_string()))?;
        let addr: Ipv4Addr = addr
            .parse()
            .map_err(|_| PrefixError::Malformed(s.to_string()))?;
        let len: u8 = len
            .parse()
            .map_err(|_| PrefixError::Malformed(s.to_string()))?;
        Self::new(addr, len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(s: &str) -> Ipv4Prefix {
        s.parse().unwrap()
    }

    #[test]
    fn construction_rejects_host_bits() {
        let err = Ipv4Prefix::new(Ipv4Addr::new(10, 0, 0, 1), 24).unwrap_err();
        assert_eq!(err, PrefixError::HostBitsSet);
    }

    #[test]
    fn construction_truncates_when_asked() {
        let pfx = Ipv4Prefix::new_truncated(Ipv4Addr::new(10, 0, 0, 1), 24).unwrap();
        assert_eq!(pfx, p("10.0.0.0/24"));
    }

    #[test]
    fn length_out_of_range() {
        assert!(matches!(
            Ipv4Prefix::new(Ipv4Addr::UNSPECIFIED, 33),
            Err(PrefixError::LengthOutOfRange { len: 33, max: 32 })
        ));
    }

    #[test]
    fn display_round_trip() {
        for s in ["0.0.0.0/0", "10.0.0.0/8", "192.168.1.0/24", "1.2.3.4/32"] {
            assert_eq!(p(s).to_string(), s);
        }
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!("10.0.0.0".parse::<Ipv4Prefix>().is_err());
        assert!("10.0.0.0/ab".parse::<Ipv4Prefix>().is_err());
        assert!("10.0.0.256/8".parse::<Ipv4Prefix>().is_err());
    }

    #[test]
    fn contains_address() {
        let pfx = p("192.0.2.0/24");
        assert!(pfx.contains(Ipv4Addr::new(192, 0, 2, 200)));
        assert!(!pfx.contains(Ipv4Addr::new(192, 0, 3, 1)));
    }

    #[test]
    fn contains_prefix_relations() {
        assert!(p("10.0.0.0/8").contains_prefix(&p("10.1.0.0/16")));
        assert!(p("10.0.0.0/8").contains_prefix(&p("10.0.0.0/8")));
        assert!(!p("10.1.0.0/16").contains_prefix(&p("10.0.0.0/8")));
        assert!(!p("10.0.0.0/8").contains_prefix(&p("11.0.0.0/16")));
    }

    #[test]
    fn default_route_contains_everything() {
        let def = p("0.0.0.0/0");
        assert!(def.contains(Ipv4Addr::new(255, 255, 255, 255)));
        assert!(def.contains(Ipv4Addr::new(0, 0, 0, 0)));
        assert!(def.is_default());
    }

    #[test]
    fn supernet_masks_bits() {
        assert_eq!(p("10.20.30.0/24").supernet(8).unwrap(), p("10.0.0.0/8"));
        assert!(p("10.0.0.0/8").supernet(16).is_err());
    }

    #[test]
    fn subprefix_enumeration() {
        let pfx = p("10.0.0.0/22");
        assert_eq!(pfx.num_subprefixes(24).unwrap(), 4);
        assert_eq!(pfx.nth_subprefix(24, 0).unwrap(), p("10.0.0.0/24"));
        assert_eq!(pfx.nth_subprefix(24, 3).unwrap(), p("10.0.3.0/24"));
        assert!(pfx.nth_subprefix(24, 4).is_err());
    }

    #[test]
    fn nth_address_covers_range() {
        let pfx = p("198.51.100.0/30");
        assert_eq!(pfx.num_addresses(), 4);
        assert_eq!(pfx.nth_address(3).unwrap(), Ipv4Addr::new(198, 51, 100, 3));
        assert!(pfx.nth_address(4).is_err());
    }

    #[test]
    fn last_address() {
        assert_eq!(
            p("192.0.2.0/24").last_address(),
            Ipv4Addr::new(192, 0, 2, 255)
        );
        assert_eq!(p("1.2.3.4/32").last_address(), Ipv4Addr::new(1, 2, 3, 4));
    }

    #[test]
    fn slash24_aggregation() {
        assert_eq!(
            Ipv4Prefix::slash24_of(Ipv4Addr::new(203, 0, 113, 77)),
            p("203.0.113.0/24")
        );
    }

    #[test]
    fn ordering_sorts_address_order() {
        let mut v = vec![p("10.1.0.0/16"), p("10.0.0.0/8"), p("9.0.0.0/8")];
        v.sort();
        assert_eq!(v, vec![p("9.0.0.0/8"), p("10.0.0.0/8"), p("10.1.0.0/16")]);
    }
}
