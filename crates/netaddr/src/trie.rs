//! Binary tries with longest-prefix-match lookup.
//!
//! Used for the pfx2as-style routing tables (`dynamips-routing`) that map an
//! address to the BGP prefix and origin AS covering it, mirroring how the
//! paper maps Atlas/CDN addresses through the Routeviews pfx2as dataset.
//!
//! The implementation is a plain (uncompressed) binary trie: one node per
//! key bit. Simplicity and robustness are preferred over path compression;
//! the `ablation_lpm` bench quantifies the cost against a linear scan.

use crate::v4::Ipv4Prefix;
use crate::v6::Ipv6Prefix;

/// One trie node; values live on the node terminating a stored prefix.
#[derive(Debug, Clone)]
struct Node<V> {
    value: Option<V>,
    children: [Option<Box<Node<V>>>; 2],
}

impl<V> Default for Node<V> {
    fn default() -> Self {
        Node {
            value: None,
            children: [None, None],
        }
    }
}

/// Generic binary trie over left-aligned `u128` keys of up to `MAX` bits.
#[derive(Debug, Clone)]
struct BitTrie<V, const MAX: u8> {
    root: Node<V>,
    len: usize,
}

impl<V, const MAX: u8> Default for BitTrie<V, MAX> {
    fn default() -> Self {
        BitTrie {
            root: Node::default(),
            len: 0,
        }
    }
}

/// Extract bit `i` (0 = most significant of the key space) of a left-aligned
/// key.
fn bit_at(bits: u128, i: u8) -> usize {
    ((bits >> (127 - i as u32)) & 1) as usize
}

impl<V, const MAX: u8> BitTrie<V, MAX> {
    /// Insert a value for `(bits, plen)`; returns the previous value if the
    /// prefix was already present.
    fn insert(&mut self, bits: u128, plen: u8, value: V) -> Option<V> {
        debug_assert!(plen <= MAX);
        let mut node = &mut self.root;
        for i in 0..plen {
            let b = bit_at(bits, i);
            node = node.children[b].get_or_insert_with(Box::default);
        }
        let old = node.value.replace(value);
        if old.is_none() {
            self.len += 1;
        }
        old
    }

    /// Exact-match lookup.
    fn get(&self, bits: u128, plen: u8) -> Option<&V> {
        let mut node = &self.root;
        for i in 0..plen {
            node = node.children[bit_at(bits, i)].as_deref()?;
        }
        node.value.as_ref()
    }

    /// Longest-prefix match for a full-length key; returns the matched
    /// prefix length and value.
    fn lookup(&self, bits: u128) -> Option<(u8, &V)> {
        self.lookup_at_most(bits, MAX)
    }

    /// Longest-prefix match considering only stored prefixes of length
    /// ≤ `max_len`. Used when the query key is itself a prefix.
    fn lookup_at_most(&self, bits: u128, max_len: u8) -> Option<(u8, &V)> {
        let mut node = &self.root;
        let mut best: Option<(u8, &V)> = node.value.as_ref().map(|v| (0, v));
        for i in 0..max_len {
            match node.children[bit_at(bits, i)].as_deref() {
                Some(child) => {
                    node = child;
                    if let Some(v) = node.value.as_ref() {
                        best = Some((i + 1, v));
                    }
                }
                None => break,
            }
        }
        best
    }

    /// Remove a prefix; returns the removed value. Empty branches are left
    /// in place (removal is rare in our workloads; memory is reclaimed when
    /// the trie is dropped).
    fn remove(&mut self, bits: u128, plen: u8) -> Option<V> {
        let mut node = &mut self.root;
        for i in 0..plen {
            node = node.children[bit_at(bits, i)].as_deref_mut()?;
        }
        let old = node.value.take();
        if old.is_some() {
            self.len -= 1;
        }
        old
    }

    fn len(&self) -> usize {
        self.len
    }

    /// Depth-first traversal yielding `(bits, plen, value)` in address order.
    fn for_each<'a>(&'a self, f: &mut impl FnMut(u128, u8, &'a V)) {
        fn walk<'a, V>(
            node: &'a Node<V>,
            bits: u128,
            depth: u8,
            f: &mut impl FnMut(u128, u8, &'a V),
        ) {
            if let Some(v) = node.value.as_ref() {
                f(bits, depth, v);
            }
            if let Some(child) = node.children[0].as_deref() {
                walk(child, bits, depth + 1, f);
            }
            if let Some(child) = node.children[1].as_deref() {
                walk(child, bits | (1u128 << (127 - depth as u32)), depth + 1, f);
            }
        }
        walk(&self.root, 0, 0, f);
    }
}

/// A longest-prefix-match trie keyed by [`Ipv4Prefix`].
#[derive(Debug, Clone)]
pub struct Ipv4Trie<V> {
    inner: BitTrie<V, 32>,
}

impl<V> Default for Ipv4Trie<V> {
    fn default() -> Self {
        Ipv4Trie {
            inner: BitTrie::default(),
        }
    }
}

impl<V> Ipv4Trie<V> {
    /// Create an empty trie.
    pub fn new() -> Self {
        Ipv4Trie {
            inner: BitTrie::default(),
        }
    }

    /// Insert a value for `prefix`; returns the previous value if present.
    pub fn insert(&mut self, prefix: Ipv4Prefix, value: V) -> Option<V> {
        self.inner
            .insert((prefix.bits() as u128) << 96, prefix.len(), value)
    }

    /// Exact-match lookup.
    pub fn get(&self, prefix: &Ipv4Prefix) -> Option<&V> {
        self.inner.get((prefix.bits() as u128) << 96, prefix.len())
    }

    /// Longest-prefix match for an address; returns the covering prefix and
    /// its value.
    pub fn lookup(&self, addr: std::net::Ipv4Addr) -> Option<(Ipv4Prefix, &V)> {
        let bits = (u32::from(addr) as u128) << 96;
        self.inner.lookup(bits).map(|(plen, v)| {
            let pfx = Ipv4Prefix::new_truncated(addr, plen).expect("plen <= 32");
            (pfx, v)
        })
    }

    /// Remove a prefix; returns the removed value.
    pub fn remove(&mut self, prefix: &Ipv4Prefix) -> Option<V> {
        self.inner
            .remove((prefix.bits() as u128) << 96, prefix.len())
    }

    /// Number of stored prefixes.
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// Whether the trie is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// All stored `(prefix, value)` pairs in address order.
    pub fn entries(&self) -> Vec<(Ipv4Prefix, &V)> {
        let mut out = Vec::with_capacity(self.len());
        self.inner.for_each(&mut |bits, plen, v| {
            let pfx = Ipv4Prefix::from_bits((bits >> 96) as u32, plen).expect("canonical");
            out.push((pfx, v));
        });
        out
    }
}

/// A longest-prefix-match trie keyed by [`Ipv6Prefix`].
#[derive(Debug, Clone)]
pub struct Ipv6Trie<V> {
    inner: BitTrie<V, 128>,
}

impl<V> Default for Ipv6Trie<V> {
    fn default() -> Self {
        Ipv6Trie {
            inner: BitTrie::default(),
        }
    }
}

impl<V> Ipv6Trie<V> {
    /// Create an empty trie.
    pub fn new() -> Self {
        Ipv6Trie {
            inner: BitTrie::default(),
        }
    }

    /// Insert a value for `prefix`; returns the previous value if present.
    pub fn insert(&mut self, prefix: Ipv6Prefix, value: V) -> Option<V> {
        self.inner.insert(prefix.bits(), prefix.len(), value)
    }

    /// Exact-match lookup.
    pub fn get(&self, prefix: &Ipv6Prefix) -> Option<&V> {
        self.inner.get(prefix.bits(), prefix.len())
    }

    /// Longest-prefix match for an address; returns the covering prefix and
    /// its value.
    pub fn lookup(&self, addr: std::net::Ipv6Addr) -> Option<(Ipv6Prefix, &V)> {
        self.inner.lookup(u128::from(addr)).map(|(plen, v)| {
            let pfx = Ipv6Prefix::new_truncated(addr, plen).expect("plen <= 128");
            (pfx, v)
        })
    }

    /// Longest-prefix match for a prefix (matches any covering prefix of
    /// equal or shorter length). Useful for mapping /64s to BGP routes.
    pub fn lookup_prefix(&self, prefix: &Ipv6Prefix) -> Option<(Ipv6Prefix, &V)> {
        self.inner
            .lookup_at_most(prefix.bits(), prefix.len())
            .map(|(plen, v)| {
                let pfx =
                    Ipv6Prefix::from_bits(prefix.bits() & mask128(plen), plen).expect("canonical");
                (pfx, v)
            })
    }

    /// Remove a prefix; returns the removed value.
    pub fn remove(&mut self, prefix: &Ipv6Prefix) -> Option<V> {
        self.inner.remove(prefix.bits(), prefix.len())
    }

    /// Number of stored prefixes.
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// Whether the trie is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// All stored `(prefix, value)` pairs in address order.
    pub fn entries(&self) -> Vec<(Ipv6Prefix, &V)> {
        let mut out = Vec::with_capacity(self.len());
        self.inner.for_each(&mut |bits, plen, v| {
            let pfx = Ipv6Prefix::from_bits(bits, plen).expect("canonical");
            out.push((pfx, v));
        });
        out
    }
}

fn mask128(len: u8) -> u128 {
    if len == 0 {
        0
    } else {
        u128::MAX << (128 - len as u32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::{Ipv4Addr, Ipv6Addr};

    fn p4(s: &str) -> Ipv4Prefix {
        s.parse().unwrap()
    }

    fn p6(s: &str) -> Ipv6Prefix {
        s.parse().unwrap()
    }

    #[test]
    fn v4_longest_prefix_match() {
        let mut t = Ipv4Trie::new();
        t.insert(p4("10.0.0.0/8"), "coarse");
        t.insert(p4("10.1.0.0/16"), "fine");
        let (pfx, v) = t.lookup(Ipv4Addr::new(10, 1, 2, 3)).unwrap();
        assert_eq!((pfx, *v), (p4("10.1.0.0/16"), "fine"));
        let (pfx, v) = t.lookup(Ipv4Addr::new(10, 2, 2, 3)).unwrap();
        assert_eq!((pfx, *v), (p4("10.0.0.0/8"), "coarse"));
        assert!(t.lookup(Ipv4Addr::new(11, 0, 0, 1)).is_none());
    }

    #[test]
    fn v4_default_route() {
        let mut t = Ipv4Trie::new();
        t.insert(p4("0.0.0.0/0"), 0u32);
        t.insert(p4("192.0.2.0/24"), 1u32);
        assert_eq!(t.lookup(Ipv4Addr::new(8, 8, 8, 8)).unwrap().1, &0);
        assert_eq!(t.lookup(Ipv4Addr::new(192, 0, 2, 9)).unwrap().1, &1);
    }

    #[test]
    fn v4_insert_replaces() {
        let mut t = Ipv4Trie::new();
        assert_eq!(t.insert(p4("10.0.0.0/8"), 1), None);
        assert_eq!(t.insert(p4("10.0.0.0/8"), 2), Some(1));
        assert_eq!(t.len(), 1);
        assert_eq!(t.get(&p4("10.0.0.0/8")), Some(&2));
    }

    #[test]
    fn v4_remove() {
        let mut t = Ipv4Trie::new();
        t.insert(p4("10.0.0.0/8"), 1);
        t.insert(p4("10.1.0.0/16"), 2);
        assert_eq!(t.remove(&p4("10.1.0.0/16")), Some(2));
        assert_eq!(t.remove(&p4("10.1.0.0/16")), None);
        assert_eq!(t.len(), 1);
        // The less specific still matches.
        assert_eq!(
            t.lookup(Ipv4Addr::new(10, 1, 2, 3)).unwrap().0,
            p4("10.0.0.0/8")
        );
    }

    #[test]
    fn v4_entries_in_address_order() {
        let mut t = Ipv4Trie::new();
        t.insert(p4("192.0.2.0/24"), ());
        t.insert(p4("10.0.0.0/8"), ());
        t.insert(p4("10.1.0.0/16"), ());
        let keys: Vec<_> = t.entries().into_iter().map(|(p, _)| p).collect();
        assert_eq!(
            keys,
            vec![p4("10.0.0.0/8"), p4("10.1.0.0/16"), p4("192.0.2.0/24")]
        );
    }

    #[test]
    fn v6_longest_prefix_match() {
        let mut t = Ipv6Trie::new();
        t.insert(p6("2003::/19"), 3320u32); // DTAG
        t.insert(p6("2003:40::/32"), 99u32);
        let addr: Ipv6Addr = "2003:40:a0:1::1".parse().unwrap();
        let (pfx, v) = t.lookup(addr).unwrap();
        assert_eq!((pfx, *v), (p6("2003:40::/32"), 99));
        let addr: Ipv6Addr = "2003:80::1".parse().unwrap();
        assert_eq!(*t.lookup(addr).unwrap().1, 3320);
        let addr: Ipv6Addr = "2a00::1".parse().unwrap();
        assert!(t.lookup(addr).is_none());
    }

    #[test]
    fn v6_lookup_prefix_matches_covering_route() {
        let mut t = Ipv6Trie::new();
        t.insert(p6("2003::/19"), "dtag");
        let (route, v) = t.lookup_prefix(&p6("2003:40:a0:aa00::/64")).unwrap();
        assert_eq!((route, *v), (p6("2003::/19"), "dtag"));
        assert!(t.lookup_prefix(&p6("2a00::/64")).is_none());
    }

    #[test]
    fn v6_lookup_prefix_ignores_more_specific_routes() {
        let mut t = Ipv6Trie::new();
        // A /80 route should never "cover" a /64 query key.
        t.insert(p6("2001:db8:0:1::/80"), "too-specific");
        assert!(t.lookup_prefix(&p6("2001:db8:0:1::/64")).is_none());
        // ...but a genuinely covering shorter route still wins.
        t.insert(p6("2001:db8::/32"), "covering");
        let (route, v) = t.lookup_prefix(&p6("2001:db8:0:1::/64")).unwrap();
        assert_eq!((route, *v), (p6("2001:db8::/32"), "covering"));
    }

    #[test]
    fn v6_full_length_keys() {
        let mut t = Ipv6Trie::new();
        let host = p6("2001:db8::1/128");
        t.insert(host, 7);
        let addr: Ipv6Addr = "2001:db8::1".parse().unwrap();
        assert_eq!(t.lookup(addr).unwrap(), (host, &7));
        let other: Ipv6Addr = "2001:db8::2".parse().unwrap();
        assert!(t.lookup(other).is_none());
    }

    #[test]
    fn len_tracks_mutations() {
        let mut t = Ipv6Trie::new();
        assert!(t.is_empty());
        t.insert(p6("2001:db8::/32"), ());
        t.insert(p6("2001:db8::/48"), ());
        assert_eq!(t.len(), 2);
        t.insert(p6("2001:db8::/32"), ());
        assert_eq!(t.len(), 2);
        t.remove(&p6("2001:db8::/48"));
        assert_eq!(t.len(), 1);
    }
}
