//! IPv6 CIDR prefixes.

use crate::error::PrefixError;
use std::fmt;
use std::net::Ipv6Addr;
use std::str::FromStr;

/// A canonical IPv6 CIDR prefix: all bits below `len` are zero.
///
/// Backed by a `u128`. The paper's unit of analysis for IPv6 is the /64
/// prefix — the "network component" of an address — so this type has helpers
/// for extracting and manipulating /64s.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Ipv6Prefix {
    bits: u128,
    len: u8,
}

#[allow(clippy::len_without_is_empty)] // a prefix length, not a container
impl Ipv6Prefix {
    /// Maximum prefix length.
    pub const MAX_LEN: u8 = 128;

    /// Construct a prefix, requiring a canonical (masked) network address.
    pub fn new(addr: Ipv6Addr, len: u8) -> Result<Self, PrefixError> {
        if len > Self::MAX_LEN {
            return Err(PrefixError::LengthOutOfRange {
                len,
                max: Self::MAX_LEN,
            });
        }
        let bits = u128::from(addr);
        if bits & !mask(len) != 0 {
            return Err(PrefixError::HostBitsSet);
        }
        Ok(Self { bits, len })
    }

    /// Construct a prefix, masking away any host bits.
    pub fn new_truncated(addr: Ipv6Addr, len: u8) -> Result<Self, PrefixError> {
        if len > Self::MAX_LEN {
            return Err(PrefixError::LengthOutOfRange {
                len,
                max: Self::MAX_LEN,
            });
        }
        Ok(Self {
            bits: u128::from(addr) & mask(len),
            len,
        })
    }

    /// Construct from raw bits (must already be masked).
    pub fn from_bits(bits: u128, len: u8) -> Result<Self, PrefixError> {
        Self::new(Ipv6Addr::from(bits), len)
    }

    /// The /64 prefix containing `addr` — the paper's aggregation granularity
    /// for IPv6 (both the Atlas analysis and the CDN dataset use /64s).
    pub fn slash64_of(addr: Ipv6Addr) -> Self {
        Self {
            bits: u128::from(addr) & mask(64),
            len: 64,
        }
    }

    /// The network address.
    pub fn network(&self) -> Ipv6Addr {
        Ipv6Addr::from(self.bits)
    }

    /// The raw network bits.
    pub fn bits(&self) -> u128 {
        self.bits
    }

    /// The prefix length.
    pub fn len(&self) -> u8 {
        self.len
    }

    /// Whether this is the default route `::/0`.
    pub fn is_default(&self) -> bool {
        self.len == 0
    }

    /// Whether `addr` falls inside this prefix.
    pub fn contains(&self, addr: Ipv6Addr) -> bool {
        u128::from(addr) & mask(self.len) == self.bits
    }

    /// Whether `other` is fully covered by this prefix (equal or
    /// more-specific).
    pub fn contains_prefix(&self, other: &Ipv6Prefix) -> bool {
        other.len >= self.len && other.bits & mask(self.len) == self.bits
    }

    /// The enclosing prefix of length `len` (must be ≤ the current length).
    pub fn supernet(&self, len: u8) -> Result<Self, PrefixError> {
        if len > self.len {
            return Err(PrefixError::LengthOutOfRange { len, max: self.len });
        }
        Ok(Self {
            bits: self.bits & mask(len),
            len,
        })
    }

    /// Number of subprefixes of length `sub_len` inside this prefix,
    /// saturating at `u64::MAX` for differences of 64 bits or more.
    pub fn num_subprefixes(&self, sub_len: u8) -> Result<u64, PrefixError> {
        if sub_len < self.len || sub_len > Self::MAX_LEN {
            return Err(PrefixError::LengthOutOfRange {
                len: sub_len,
                max: Self::MAX_LEN,
            });
        }
        let diff = sub_len - self.len;
        if diff >= 64 {
            Ok(u64::MAX)
        } else {
            Ok(1u64 << diff)
        }
    }

    /// The `index`-th subprefix of length `sub_len`, counting from the
    /// lowest-numbered one.
    pub fn nth_subprefix(&self, sub_len: u8, index: u64) -> Result<Self, PrefixError> {
        let count = self.num_subprefixes(sub_len)?;
        if count != u64::MAX && index >= count {
            return Err(PrefixError::Malformed(format!(
                "subprefix index {index} out of range (count {count})"
            )));
        }
        // For sub_len == 0 the shift would be 128 (undefined for u128);
        // the only valid index there is 0, so the offset is 0.
        let offset = if sub_len == 0 {
            0
        } else {
            (index as u128) << (128 - sub_len as u32)
        };
        Ok(Self {
            bits: self.bits | offset,
            len: sub_len,
        })
    }

    /// Build a full address inside a /64 prefix from a 64-bit interface
    /// identifier. Errors if the prefix is longer than /64.
    pub fn with_iid(&self, iid: u64) -> Result<Ipv6Addr, PrefixError> {
        if self.len > 64 {
            return Err(PrefixError::LengthOutOfRange {
                len: self.len,
                max: 64,
            });
        }
        Ok(Ipv6Addr::from(self.bits | iid as u128))
    }
}

/// Bit mask with the top `len` bits set.
fn mask(len: u8) -> u128 {
    if len == 0 {
        0
    } else {
        u128::MAX << (128 - len as u32)
    }
}

impl fmt::Display for Ipv6Prefix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.network(), self.len)
    }
}

impl fmt::Debug for Ipv6Prefix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

impl FromStr for Ipv6Prefix {
    type Err = PrefixError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let (addr, len) = s
            .split_once('/')
            .ok_or_else(|| PrefixError::Malformed(s.to_string()))?;
        let addr: Ipv6Addr = addr
            .parse()
            .map_err(|_| PrefixError::Malformed(s.to_string()))?;
        let len: u8 = len
            .parse()
            .map_err(|_| PrefixError::Malformed(s.to_string()))?;
        Self::new(addr, len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(s: &str) -> Ipv6Prefix {
        s.parse().unwrap()
    }

    #[test]
    fn construction_rejects_host_bits() {
        let addr: Ipv6Addr = "2001:db8::1".parse().unwrap();
        assert_eq!(
            Ipv6Prefix::new(addr, 64).unwrap_err(),
            PrefixError::HostBitsSet
        );
        assert_eq!(
            Ipv6Prefix::new_truncated(addr, 64).unwrap(),
            p("2001:db8::/64")
        );
    }

    #[test]
    fn display_round_trip() {
        for s in ["::/0", "2003::/19", "2001:db8::/32", "2001:db8:1:2::/64"] {
            assert_eq!(p(s).to_string(), s);
        }
    }

    #[test]
    fn slash64_extraction() {
        let addr: Ipv6Addr = "2001:db8:aa:bb:1:2:3:4".parse().unwrap();
        assert_eq!(Ipv6Prefix::slash64_of(addr), p("2001:db8:aa:bb::/64"));
    }

    #[test]
    fn contains_and_supernet() {
        let dtag = p("2003::/19"); // DTAG's announcement from the paper
        let sub = p("2003:40:a0::/48");
        assert!(dtag.contains_prefix(&sub));
        assert_eq!(sub.supernet(19).unwrap(), dtag);
        assert!(!sub.contains_prefix(&dtag));
    }

    #[test]
    fn subprefix_enumeration() {
        let d = p("2001:db8::/56");
        assert_eq!(d.num_subprefixes(64).unwrap(), 256);
        assert_eq!(d.nth_subprefix(64, 0xf0).unwrap(), p("2001:db8:0:f0::/64"));
        assert!(d.nth_subprefix(64, 256).is_err());
    }

    #[test]
    fn num_subprefixes_saturates() {
        assert_eq!(p("::/0").num_subprefixes(64).unwrap(), u64::MAX);
        assert_eq!(p("::/0").num_subprefixes(128).unwrap(), u64::MAX);
    }

    #[test]
    fn with_iid_builds_addresses() {
        let pfx = p("2001:db8:0:1::/64");
        let addr = pfx.with_iid(0x0000_0000_0000_0001).unwrap();
        assert_eq!(addr, "2001:db8:0:1::1".parse::<Ipv6Addr>().unwrap());
        assert!(p("2001:db8::/96").with_iid(1).is_err());
    }

    #[test]
    fn paper_cpl_example_prefixes_parse() {
        // The example from Section 5.2 of the paper.
        let a = p("2604:3d08:4b80:aa00::/64");
        let b = p("2604:3d08:4b80:aaf0::/64");
        assert_ne!(a, b);
        assert_eq!(a.supernet(56).unwrap(), b.supernet(56).unwrap());
    }
}
