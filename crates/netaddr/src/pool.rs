//! Address and prefix pools.
//!
//! Section 2.2 of the paper: "ISPs have pools of addresses or prefixes from
//! which addresses are assigned to subscribers by a DHCP/RADIUS server that
//! is responsible for these pools." These types map between a pool's index
//! space and concrete addresses/prefixes; the allocation *policy* (which
//! index to hand out) lives in `dynamips-netsim`.

use crate::error::PrefixError;
use crate::v4::Ipv4Prefix;
use crate::v6::Ipv6Prefix;
use std::net::Ipv4Addr;

/// A pool of individual IPv4 addresses drawn from one covering prefix —
/// e.g. the block a BRAS hands out via DHCP/RADIUS.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Ipv4Pool {
    base: Ipv4Prefix,
}

impl Ipv4Pool {
    /// Create a pool covering every address in `base`.
    pub fn new(base: Ipv4Prefix) -> Self {
        Ipv4Pool { base }
    }

    /// The covering prefix.
    pub fn base(&self) -> Ipv4Prefix {
        self.base
    }

    /// Number of addresses in the pool.
    pub fn capacity(&self) -> u64 {
        self.base.num_addresses()
    }

    /// The `index`-th address in the pool.
    pub fn address(&self, index: u64) -> Result<Ipv4Addr, PrefixError> {
        self.base.nth_address(index)
    }

    /// The index of `addr` within the pool, if it belongs to the pool.
    pub fn index_of(&self, addr: Ipv4Addr) -> Option<u64> {
        if self.base.contains(addr) {
            Some((u32::from(addr) - self.base.bits()) as u64)
        } else {
            None
        }
    }
}

/// A pool of fixed-length IPv6 prefixes drawn from one covering prefix —
/// e.g. the /40 regional block out of which an ISP delegates /56s
/// (Section 5.2: "for many ISPs, a /40 emerges as a common size for dynamic
/// address pools").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Ipv6PrefixPool {
    base: Ipv6Prefix,
    elem_len: u8,
}

impl Ipv6PrefixPool {
    /// Create a pool of `elem_len`-long prefixes inside `base`.
    pub fn new(base: Ipv6Prefix, elem_len: u8) -> Result<Self, PrefixError> {
        if elem_len < base.len() || elem_len > Ipv6Prefix::MAX_LEN {
            return Err(PrefixError::LengthOutOfRange {
                len: elem_len,
                max: Ipv6Prefix::MAX_LEN,
            });
        }
        Ok(Ipv6PrefixPool { base, elem_len })
    }

    /// The covering prefix.
    pub fn base(&self) -> Ipv6Prefix {
        self.base
    }

    /// The length of each delegated prefix.
    pub fn elem_len(&self) -> u8 {
        self.elem_len
    }

    /// Number of prefixes in the pool (saturating at `u64::MAX`).
    pub fn capacity(&self) -> u64 {
        self.base
            .num_subprefixes(self.elem_len)
            .expect("elem_len validated at construction")
    }

    /// The `index`-th prefix in the pool.
    pub fn prefix(&self, index: u64) -> Result<Ipv6Prefix, PrefixError> {
        self.base.nth_subprefix(self.elem_len, index)
    }

    /// The index of `prefix` within the pool, if it is a pool element.
    pub fn index_of(&self, prefix: &Ipv6Prefix) -> Option<u64> {
        if prefix.len() != self.elem_len || !self.base.contains_prefix(prefix) {
            return None;
        }
        let shift = 128 - self.elem_len as u32;
        Some(((prefix.bits() - self.base.bits()) >> shift) as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p4(s: &str) -> Ipv4Prefix {
        s.parse().unwrap()
    }

    fn p6(s: &str) -> Ipv6Prefix {
        s.parse().unwrap()
    }

    #[test]
    fn v4_pool_round_trip() {
        let pool = Ipv4Pool::new(p4("100.64.0.0/22"));
        assert_eq!(pool.capacity(), 1024);
        let a = pool.address(300).unwrap();
        assert_eq!(pool.index_of(a), Some(300));
        assert_eq!(pool.index_of(Ipv4Addr::new(1, 1, 1, 1)), None);
        assert!(pool.address(1024).is_err());
    }

    #[test]
    fn v6_pool_round_trip() {
        // A /40 pool of /56 delegations: 2^16 elements.
        let pool = Ipv6PrefixPool::new(p6("2003:40::/40"), 56).unwrap();
        assert_eq!(pool.capacity(), 1 << 16);
        let d = pool.prefix(0xaa).unwrap();
        assert_eq!(d, p6("2003:40:0:aa00::/56"));
        assert_eq!(pool.index_of(&d), Some(0xaa));
        assert!(pool.prefix(1 << 16).is_err());
    }

    #[test]
    fn v6_pool_rejects_foreign_prefixes() {
        let pool = Ipv6PrefixPool::new(p6("2003:40::/40"), 56).unwrap();
        // Wrong length.
        assert_eq!(pool.index_of(&p6("2003:40::/64")), None);
        // Outside the base.
        assert_eq!(pool.index_of(&p6("2a00::/56")), None);
    }

    #[test]
    fn v6_pool_validates_elem_len() {
        assert!(Ipv6PrefixPool::new(p6("2003:40::/40"), 32).is_err());
        assert!(Ipv6PrefixPool::new(p6("2003:40::/40"), 129).is_err());
        // elem_len == base len: a pool of exactly one prefix.
        let single = Ipv6PrefixPool::new(p6("2003:40::/40"), 40).unwrap();
        assert_eq!(single.capacity(), 1);
        assert_eq!(single.prefix(0).unwrap(), p6("2003:40::/40"));
    }
}
