//! Interface identifiers (the 64-bit "host" component of an IPv6 address).
//!
//! The paper distinguishes EUI-64 identifiers — derived from the device MAC
//! address, stable, and therefore trackable across network renumbering
//! (Section 2.3) — from privacy identifiers regenerated periodically per
//! RFC 4941. RIPE Atlas probes intentionally use stable identifiers so they
//! remain reachable measurement targets.

use rand::Rng;

/// How a device constructs the host component of its address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Iid {
    /// EUI-64: derived from the link-layer (MAC) address; stable for the
    /// lifetime of the interface hardware.
    Eui64(u64),
    /// RFC 4941 privacy extension: random, regenerated periodically.
    Privacy(u64),
    /// Statically configured or DHCPv6-assigned identifier.
    Stable(u64),
}

impl Iid {
    /// The raw 64-bit identifier.
    pub fn value(&self) -> u64 {
        match self {
            Iid::Eui64(v) | Iid::Privacy(v) | Iid::Stable(v) => *v,
        }
    }

    /// Whether this identifier is stable across renumbering events, making
    /// the device trackable across network address changes.
    pub fn is_stable(&self) -> bool {
        !matches!(self, Iid::Privacy(_))
    }
}

/// Derive a (modified) EUI-64 interface identifier from a 48-bit MAC address:
/// flip the universal/local bit and insert `ff:fe` in the middle (RFC 4291
/// Appendix A).
pub fn eui64_from_mac(mac: [u8; 6]) -> u64 {
    let mut bytes = [0u8; 8];
    bytes[0] = mac[0] ^ 0x02; // flip the U/L bit
    bytes[1] = mac[1];
    bytes[2] = mac[2];
    bytes[3] = 0xff;
    bytes[4] = 0xfe;
    bytes[5] = mac[3];
    bytes[6] = mac[4];
    bytes[7] = mac[5];
    u64::from_be_bytes(bytes)
}

/// Check whether a 64-bit identifier has the EUI-64 shape (the `ff:fe`
/// marker in bytes 3 and 4). Used by analyses that detect trackable devices.
pub fn looks_like_eui64(iid: u64) -> bool {
    let bytes = iid.to_be_bytes();
    bytes[3] == 0xff && bytes[4] == 0xfe
}

/// Generate a random RFC 4941 privacy interface identifier. The universal/
/// local bit is cleared, as required for randomly generated identifiers.
pub fn privacy_iid<R: Rng + ?Sized>(rng: &mut R) -> u64 {
    let raw: u64 = rng.gen();
    // Clear the universal bit (bit 6 of the first byte, i.e. bit 57 counting
    // from the least-significant end of the big-endian u64).
    raw & !(0x02u64 << 56)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn eui64_construction() {
        // Canonical example: MAC 00:25:96:12:34:56 -> 0225:96ff:fe12:3456.
        let iid = eui64_from_mac([0x00, 0x25, 0x96, 0x12, 0x34, 0x56]);
        assert_eq!(iid, 0x0225_96ff_fe12_3456);
    }

    #[test]
    fn eui64_flips_ul_bit_both_ways() {
        let set = eui64_from_mac([0x02, 0, 0, 0, 0, 0]);
        assert_eq!(set >> 56, 0x00);
        let clear = eui64_from_mac([0x00, 0, 0, 0, 0, 0]);
        assert_eq!(clear >> 56, 0x02);
    }

    #[test]
    fn eui64_detection() {
        assert!(looks_like_eui64(eui64_from_mac([1, 2, 3, 4, 5, 6])));
        assert!(!looks_like_eui64(0x1234_5678_9abc_def0));
    }

    #[test]
    fn privacy_iids_differ_and_clear_universal_bit() {
        let mut rng = SmallRng::seed_from_u64(7);
        let a = privacy_iid(&mut rng);
        let b = privacy_iid(&mut rng);
        assert_ne!(a, b);
        assert_eq!(a & (0x02u64 << 56), 0);
        assert_eq!(b & (0x02u64 << 56), 0);
    }

    #[test]
    fn stability_classification() {
        assert!(Iid::Eui64(1).is_stable());
        assert!(Iid::Stable(1).is_stable());
        assert!(!Iid::Privacy(1).is_stable());
        assert_eq!(Iid::Privacy(42).value(), 42);
    }
}
