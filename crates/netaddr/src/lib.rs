//! Address and prefix primitives for the DynamIPs reproduction.
//!
//! This crate provides the low-level building blocks every other crate in the
//! workspace relies on:
//!
//! * [`Ipv4Prefix`] and [`Ipv6Prefix`] — canonical CIDR prefixes backed by
//!   plain integers, with subnetting arithmetic, containment tests and
//!   string round-tripping.
//! * [`common_prefix_len`](cpl::common_prefix_len_v6) — the "CPL" metric the
//!   paper uses to measure spatial distance between successive IPv6
//!   assignments (Section 5.2).
//! * Trailing-zero analysis ([`zeros`]) — the basis of the paper's
//!   subscriber-boundary inference (Section 5.3).
//! * [`Ipv4Trie`]/[`Ipv6Trie`] — binary tries with longest-prefix-match
//!   lookup, used for pfx2as-style routing tables.
//! * [`pool`] — mapping between pool indices and subprefixes, used by the
//!   simulated DHCP/DHCPv6-PD servers.
//! * [`iid`] — EUI-64 and privacy interface identifiers (RFC 4941 / 7217
//!   behaviours referenced throughout the paper).
//!
//! Everything here is deterministic and allocation-light; the only heap use
//! is inside the tries.

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod cpl;
pub mod error;
pub mod iid;
pub mod pool;
pub mod trie;
pub mod v4;
pub mod v6;
pub mod zeros;

pub use cpl::{common_prefix_len_v4, common_prefix_len_v6};
pub use error::PrefixError;
pub use iid::{eui64_from_mac, privacy_iid, Iid};
pub use pool::{Ipv4Pool, Ipv6PrefixPool};
pub use trie::{Ipv4Trie, Ipv6Trie};
pub use v4::Ipv4Prefix;
pub use v6::Ipv6Prefix;
pub use zeros::{nibble_boundary_class, trailing_zero_bits_v6, NibbleBoundary};
