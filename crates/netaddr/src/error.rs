//! Error types for prefix construction and parsing.

use std::fmt;

/// Errors raised when constructing or parsing a prefix.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PrefixError {
    /// The prefix length exceeds the maximum for the address family
    /// (32 for IPv4, 128 for IPv6).
    LengthOutOfRange {
        /// The offending length.
        len: u8,
        /// The maximum valid length for the family.
        max: u8,
    },
    /// The address has bits set below the prefix length (i.e. host bits),
    /// and the constructor required a canonical network address.
    HostBitsSet,
    /// The textual form could not be parsed as `addr/len`.
    Malformed(String),
}

impl fmt::Display for PrefixError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PrefixError::LengthOutOfRange { len, max } => {
                write!(f, "prefix length {len} out of range (max {max})")
            }
            PrefixError::HostBitsSet => {
                write!(f, "address has host bits set below the prefix length")
            }
            PrefixError::Malformed(s) => write!(f, "malformed prefix: {s:?}"),
        }
    }
}

impl std::error::Error for PrefixError {}
