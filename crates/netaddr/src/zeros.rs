//! Trailing-zero analysis for subscriber-boundary inference.
//!
//! Section 5.3 of the paper infers the prefix length delegated to an
//! individual subscriber by looking at zero bits immediately preceding the
//! /64 boundary of observed prefixes: a CPE that receives, say, a /56
//! delegation and announces the lowest-numbered /64 will produce /64s whose
//! last 8 network bits are zero.
//!
//! Two variants are used in the paper:
//!
//! * The RIPE Atlas variant counts individual zero *bits* consistently zero
//!   across all /64s observed by one probe ([`trailing_zero_bits_v6`] is the
//!   per-prefix building block).
//! * The CDN variant classifies each /64 by its longest streak of zero
//!   *nibbles* against the /48, /52, /56 and /60 boundaries
//!   ([`nibble_boundary_class`]).

use crate::v6::Ipv6Prefix;

/// Number of consecutive zero bits immediately to the left of the /64
/// boundary in a /64 prefix (i.e. trailing zeros of the 64-bit network part).
///
/// Returns 64 for the all-zero network part. For prefixes shorter than /64
/// the prefix is treated as its canonical /64 (host bits of the network part
/// are already zero by construction).
pub fn trailing_zero_bits_v6(prefix: &Ipv6Prefix) -> u8 {
    let network = (prefix.bits() >> 64) as u64;
    if network == 0 {
        64
    } else {
        network.trailing_zeros() as u8
    }
}

/// Nibble-aligned delegated-prefix boundary classes used by the CDN analysis
/// (Figure 7 of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum NibbleBoundary {
    /// At least 16 trailing zero bits: consistent with a /48 delegation.
    Slash48,
    /// 12–15 trailing zero bits: consistent with a /52 delegation.
    Slash52,
    /// 8–11 trailing zero bits: consistent with a /56 delegation.
    Slash56,
    /// 4–7 trailing zero bits: consistent with a /60 delegation.
    Slash60,
    /// Fewer than 4 trailing zero bits: no inferable delegation.
    None,
}

impl NibbleBoundary {
    /// The inferred delegated prefix length, if any.
    pub fn prefix_len(&self) -> Option<u8> {
        match self {
            NibbleBoundary::Slash48 => Some(48),
            NibbleBoundary::Slash52 => Some(52),
            NibbleBoundary::Slash56 => Some(56),
            NibbleBoundary::Slash60 => Some(60),
            NibbleBoundary::None => None,
        }
    }

    /// All classes with an inferable boundary, shortest first.
    pub const INFERABLE: [NibbleBoundary; 4] = [
        NibbleBoundary::Slash48,
        NibbleBoundary::Slash52,
        NibbleBoundary::Slash56,
        NibbleBoundary::Slash60,
    ];
}

/// Classify a /64 prefix by its longest streak of trailing zero nibbles, as
/// the CDN analysis in Section 5.3 does ("an address with the last 8 bits as
/// zeros would match the /56 boundary").
pub fn nibble_boundary_class(prefix: &Ipv6Prefix) -> NibbleBoundary {
    let zeros = trailing_zero_bits_v6(prefix);
    match zeros {
        z if z >= 16 => NibbleBoundary::Slash48,
        z if z >= 12 => NibbleBoundary::Slash52,
        z if z >= 8 => NibbleBoundary::Slash56,
        z if z >= 4 => NibbleBoundary::Slash60,
        _ => NibbleBoundary::None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(s: &str) -> Ipv6Prefix {
        s.parse().unwrap()
    }

    #[test]
    fn zero_suffix_counts() {
        assert_eq!(trailing_zero_bits_v6(&p("2001:db8:1:100::/64")), 8);
        assert_eq!(trailing_zero_bits_v6(&p("2001:db8:1:1::/64")), 0);
        assert_eq!(trailing_zero_bits_v6(&p("2001:db8:1::/64")), 16);
        assert_eq!(trailing_zero_bits_v6(&p("2001:db8:1:8000::/64")), 15);
    }

    #[test]
    fn all_zero_network_part() {
        assert_eq!(trailing_zero_bits_v6(&p("::/64")), 64);
    }

    #[test]
    fn boundary_classification() {
        // 16 zero bits -> /48
        assert_eq!(
            nibble_boundary_class(&p("2001:db8:1::/64")),
            NibbleBoundary::Slash48
        );
        // 12 zero bits -> /52
        assert_eq!(
            nibble_boundary_class(&p("2001:db8:1:1000::/64")),
            NibbleBoundary::Slash52
        );
        // 8 zero bits -> /56
        assert_eq!(
            nibble_boundary_class(&p("2001:db8:1:1100::/64")),
            NibbleBoundary::Slash56
        );
        // 4 zero bits -> /60
        assert_eq!(
            nibble_boundary_class(&p("2001:db8:1:1110::/64")),
            NibbleBoundary::Slash60
        );
        // 0 zero bits -> none
        assert_eq!(
            nibble_boundary_class(&p("2001:db8:1:1111::/64")),
            NibbleBoundary::None
        );
    }

    #[test]
    fn non_nibble_aligned_zero_counts_round_down() {
        // 7 zero bits: only the /60 boundary (4 aligned zeros) matches.
        assert_eq!(
            nibble_boundary_class(&p("2001:db8:1:1180::/64")),
            NibbleBoundary::Slash60
        );
    }

    #[test]
    fn boundary_prefix_lengths() {
        assert_eq!(NibbleBoundary::Slash48.prefix_len(), Some(48));
        assert_eq!(NibbleBoundary::Slash60.prefix_len(), Some(60));
        assert_eq!(NibbleBoundary::None.prefix_len(), None);
    }
}
