//! Property-based tests for the prefix primitives.

use dynamips_netaddr::{
    common_prefix_len_v4, common_prefix_len_v6, eui64_from_mac, trailing_zero_bits_v6, Ipv4Prefix,
    Ipv4Trie, Ipv6Prefix, Ipv6PrefixPool, Ipv6Trie,
};
use proptest::prelude::*;
use std::net::{Ipv4Addr, Ipv6Addr};

fn arb_v4_prefix() -> impl Strategy<Value = Ipv4Prefix> {
    (any::<u32>(), 0u8..=32)
        .prop_map(|(bits, len)| Ipv4Prefix::new_truncated(Ipv4Addr::from(bits), len).unwrap())
}

fn arb_v6_prefix() -> impl Strategy<Value = Ipv6Prefix> {
    (any::<u128>(), 0u8..=128)
        .prop_map(|(bits, len)| Ipv6Prefix::new_truncated(Ipv6Addr::from(bits), len).unwrap())
}

fn arb_v6_slash64() -> impl Strategy<Value = Ipv6Prefix> {
    any::<u128>().prop_map(|bits| Ipv6Prefix::slash64_of(Ipv6Addr::from(bits)))
}

proptest! {
    #[test]
    fn v4_display_parse_round_trip(pfx in arb_v4_prefix()) {
        let parsed: Ipv4Prefix = pfx.to_string().parse().unwrap();
        prop_assert_eq!(parsed, pfx);
    }

    #[test]
    fn v6_display_parse_round_trip(pfx in arb_v6_prefix()) {
        let parsed: Ipv6Prefix = pfx.to_string().parse().unwrap();
        prop_assert_eq!(parsed, pfx);
    }

    #[test]
    fn v4_prefix_contains_its_network_and_last(pfx in arb_v4_prefix()) {
        prop_assert!(pfx.contains(pfx.network()));
        prop_assert!(pfx.contains(pfx.last_address()));
    }

    #[test]
    fn v4_supernet_contains_original(pfx in arb_v4_prefix(), shorter in 0u8..=32) {
        let shorter = shorter.min(pfx.len());
        let sup = pfx.supernet(shorter).unwrap();
        prop_assert!(sup.contains_prefix(&pfx));
    }

    #[test]
    fn v6_supernet_contains_original(pfx in arb_v6_prefix(), shorter in 0u8..=128) {
        let shorter = shorter.min(pfx.len());
        let sup = pfx.supernet(shorter).unwrap();
        prop_assert!(sup.contains_prefix(&pfx));
    }

    #[test]
    fn cpl_v6_is_symmetric_and_bounded(a in arb_v6_prefix(), b in arb_v6_prefix()) {
        let ab = common_prefix_len_v6(&a, &b);
        let ba = common_prefix_len_v6(&b, &a);
        prop_assert_eq!(ab, ba);
        prop_assert!(ab <= a.len().min(b.len()));
    }

    #[test]
    fn cpl_v6_of_self_is_len(a in arb_v6_prefix()) {
        prop_assert_eq!(common_prefix_len_v6(&a, &a), a.len());
    }

    #[test]
    fn cpl_v6_shared_supernet_is_consistent(a in arb_v6_slash64(), b in arb_v6_slash64()) {
        // If the CPL is c, both share their /c supernet, and (when c < 64)
        // differ at bit c.
        let c = common_prefix_len_v6(&a, &b);
        prop_assert_eq!(a.supernet(c).unwrap(), b.supernet(c).unwrap());
        if c < 64 {
            prop_assert_ne!(a.supernet(c + 1).unwrap(), b.supernet(c + 1).unwrap());
        }
    }

    #[test]
    fn cpl_v4_symmetric(a in arb_v4_prefix(), b in arb_v4_prefix()) {
        prop_assert_eq!(common_prefix_len_v4(&a, &b), common_prefix_len_v4(&b, &a));
    }

    #[test]
    fn v4_subprefix_round_trip(pfx in arb_v4_prefix(), sub in 0u8..=32, idx: u64) {
        let sub = sub.max(pfx.len());
        let count = pfx.num_subprefixes(sub).unwrap();
        let idx = idx % count;
        let child = pfx.nth_subprefix(sub, idx).unwrap();
        prop_assert!(pfx.contains_prefix(&child));
        prop_assert_eq!(child.supernet(pfx.len()).unwrap(), pfx);
    }

    #[test]
    fn trailing_zeros_matches_reconstruction(pfx in arb_v6_slash64()) {
        // Zeroing `z` trailing network bits must be a no-op, and (when z < 64)
        // bit 64-z-1 from the left of the network part must be 1.
        let z = trailing_zero_bits_v6(&pfx);
        let network = (pfx.bits() >> 64) as u64;
        if z < 64 {
            prop_assert_eq!(network >> z << z, network);
            prop_assert_eq!((network >> z) & 1, 1);
        } else {
            prop_assert_eq!(network, 0);
        }
    }

    #[test]
    fn eui64_preserves_low_bytes(mac: [u8; 6]) {
        let iid = eui64_from_mac(mac).to_be_bytes();
        prop_assert_eq!(iid[1], mac[1]);
        prop_assert_eq!(iid[2], mac[2]);
        prop_assert_eq!(iid[5], mac[3]);
        prop_assert_eq!(iid[6], mac[4]);
        prop_assert_eq!(iid[7], mac[5]);
        prop_assert_eq!(iid[3], 0xff);
        prop_assert_eq!(iid[4], 0xfe);
    }

    #[test]
    fn v6_pool_index_round_trip(idx in 0u64..(1 << 16)) {
        let pool = Ipv6PrefixPool::new("2003:40::/40".parse().unwrap(), 56).unwrap();
        let pfx = pool.prefix(idx).unwrap();
        prop_assert_eq!(pool.index_of(&pfx), Some(idx));
    }

    #[test]
    fn v4_trie_lookup_agrees_with_linear_scan(
        entries in proptest::collection::vec((arb_v4_prefix(), any::<u32>()), 1..40),
        probe: u32,
    ) {
        let mut trie = Ipv4Trie::new();
        // Last write wins for duplicate prefixes, in both implementations.
        let mut linear: Vec<(Ipv4Prefix, u32)> = Vec::new();
        for (p, v) in &entries {
            trie.insert(*p, *v);
            linear.retain(|(q, _)| q != p);
            linear.push((*p, *v));
        }
        let addr = Ipv4Addr::from(probe);
        let expected = linear
            .iter()
            .filter(|(p, _)| p.contains(addr))
            .max_by_key(|(p, _)| p.len())
            .map(|(p, v)| (*p, *v));
        let got = trie.lookup(addr).map(|(p, v)| (p, *v));
        prop_assert_eq!(got, expected);
    }

    #[test]
    fn v6_trie_lookup_agrees_with_linear_scan(
        entries in proptest::collection::vec((arb_v6_prefix(), any::<u32>()), 1..40),
        probe: u128,
    ) {
        let mut trie = Ipv6Trie::new();
        let mut linear: Vec<(Ipv6Prefix, u32)> = Vec::new();
        for (p, v) in &entries {
            trie.insert(*p, *v);
            linear.retain(|(q, _)| q != p);
            linear.push((*p, *v));
        }
        let addr = Ipv6Addr::from(probe);
        let expected = linear
            .iter()
            .filter(|(p, _)| p.contains(addr))
            .max_by_key(|(p, _)| p.len())
            .map(|(p, v)| (*p, *v));
        let got = trie.lookup(addr).map(|(p, v)| (p, *v));
        prop_assert_eq!(got, expected);
    }
}
