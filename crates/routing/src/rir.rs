//! Regional Internet registries and address-space delegations.

use dynamips_netaddr::{Ipv4Prefix, Ipv4Trie, Ipv6Prefix, Ipv6Trie};
use std::fmt;
use std::net::{Ipv4Addr, Ipv6Addr};

/// The five regional Internet registries the paper groups addresses by in
/// Figures 3 and 7.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Rir {
    /// North America.
    Arin,
    /// Europe, Middle East, parts of Central Asia.
    RipeNcc,
    /// Asia-Pacific.
    Apnic,
    /// Latin America and the Caribbean.
    Lacnic,
    /// Africa.
    Afrinic,
}

impl Rir {
    /// All five registries, in the order the paper's figures use.
    pub const ALL: [Rir; 5] = [
        Rir::Arin,
        Rir::RipeNcc,
        Rir::Apnic,
        Rir::Lacnic,
        Rir::Afrinic,
    ];

    /// Label used in reports.
    pub fn label(&self) -> &'static str {
        match self {
            Rir::Arin => "ARIN",
            Rir::RipeNcc => "RIPENCC",
            Rir::Apnic => "APNIC",
            Rir::Lacnic => "LACNIC",
            Rir::Afrinic => "AFRINIC",
        }
    }
}

impl fmt::Display for Rir {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Maps addresses to their delegating registry, mirroring the RIR extended
/// delegation files. Lookups are longest-prefix-match, so more-specific
/// transfers (common in the post-exhaustion IPv4 market) shadow the covering
/// delegation.
#[derive(Debug, Clone, Default)]
pub struct RirMap {
    v4: Ipv4Trie<Rir>,
    v6: Ipv6Trie<Rir>,
}

impl RirMap {
    /// Create an empty map.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record an IPv4 delegation.
    pub fn delegate_v4(&mut self, prefix: Ipv4Prefix, rir: Rir) {
        self.v4.insert(prefix, rir);
    }

    /// Record an IPv6 delegation.
    pub fn delegate_v6(&mut self, prefix: Ipv6Prefix, rir: Rir) {
        self.v6.insert(prefix, rir);
    }

    /// Registry delegating `addr`, if known.
    pub fn rir_of_v4(&self, addr: Ipv4Addr) -> Option<Rir> {
        self.v4.lookup(addr).map(|(_, r)| *r)
    }

    /// Registry delegating `addr`, if known.
    pub fn rir_of_v6(&self, addr: Ipv6Addr) -> Option<Rir> {
        self.v6.lookup(addr).map(|(_, r)| *r)
    }

    /// Registry delegating an IPv6 prefix (e.g. an observed /64), if known.
    pub fn rir_of_v6_prefix(&self, prefix: &Ipv6Prefix) -> Option<Rir> {
        self.v6.lookup_prefix(prefix).map(|(_, r)| *r)
    }

    /// Number of recorded delegations (v4 + v6).
    pub fn len(&self) -> usize {
        self.v4.len() + self.v6.len()
    }

    /// Whether the map has no delegations.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn v4_delegation_lookup() {
        let mut map = RirMap::new();
        map.delegate_v4("80.0.0.0/4".parse().unwrap(), Rir::RipeNcc);
        map.delegate_v4("24.0.0.0/8".parse().unwrap(), Rir::Arin);
        assert_eq!(
            map.rir_of_v4(Ipv4Addr::new(87, 1, 2, 3)),
            Some(Rir::RipeNcc)
        );
        assert_eq!(map.rir_of_v4(Ipv4Addr::new(24, 9, 9, 9)), Some(Rir::Arin));
        assert_eq!(map.rir_of_v4(Ipv4Addr::new(200, 1, 1, 1)), None);
    }

    #[test]
    fn v4_more_specific_transfer_shadows() {
        let mut map = RirMap::new();
        map.delegate_v4("80.0.0.0/4".parse().unwrap(), Rir::RipeNcc);
        // A /16 transferred into APNIC out of RIPE space.
        map.delegate_v4("81.7.0.0/16".parse().unwrap(), Rir::Apnic);
        assert_eq!(map.rir_of_v4(Ipv4Addr::new(81, 7, 1, 1)), Some(Rir::Apnic));
        assert_eq!(
            map.rir_of_v4(Ipv4Addr::new(81, 8, 1, 1)),
            Some(Rir::RipeNcc)
        );
    }

    #[test]
    fn v6_delegation_lookup() {
        let mut map = RirMap::new();
        map.delegate_v6("2003::/19".parse().unwrap(), Rir::RipeNcc);
        map.delegate_v6("2600::/12".parse().unwrap(), Rir::Arin);
        let dtag: Ipv6Addr = "2003:40:a0::1".parse().unwrap();
        assert_eq!(map.rir_of_v6(dtag), Some(Rir::RipeNcc));
        let p64: Ipv6Prefix = "2600:1:2:3::/64".parse().unwrap();
        assert_eq!(map.rir_of_v6_prefix(&p64), Some(Rir::Arin));
        assert_eq!(map.rir_of_v6_prefix(&"fc00::/64".parse().unwrap()), None);
    }

    #[test]
    fn labels_match_paper_figures() {
        let labels: Vec<_> = Rir::ALL.iter().map(|r| r.label()).collect();
        assert_eq!(
            labels,
            vec!["ARIN", "RIPENCC", "APNIC", "LACNIC", "AFRINIC"]
        );
    }

    #[test]
    fn len_counts_both_families() {
        let mut map = RirMap::new();
        assert!(map.is_empty());
        map.delegate_v4("24.0.0.0/8".parse().unwrap(), Rir::Arin);
        map.delegate_v6("2600::/12".parse().unwrap(), Rir::Arin);
        assert_eq!(map.len(), 2);
    }
}
