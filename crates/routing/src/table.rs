//! BGP routing tables with origin-AS lookup.

use crate::asn::Asn;
use dynamips_netaddr::{Ipv4Prefix, Ipv4Trie, Ipv6Prefix, Ipv6Trie};
use std::net::{Ipv4Addr, Ipv6Addr};

/// A snapshot of routed (announced) prefixes with their origin AS, for both
/// address families — the synthetic equivalent of a Routeviews pfx2as
/// snapshot or the CDN's BGP feed.
///
/// Two of the paper's analyses hinge on this table:
///
/// * Table 2 counts how often consecutive assignments to the same subscriber
///   fall in *different routed BGP prefixes* — frequent in IPv4, rare in
///   IPv6.
/// * The CDN pre-processing discards associations whose IPv4 and IPv6
///   origin-AS disagree, to filter multihoming and WiFi/cellular switching.
#[derive(Debug, Clone, Default)]
pub struct RoutingTable {
    v4: Ipv4Trie<Asn>,
    v6: Ipv6Trie<Asn>,
}

impl RoutingTable {
    /// Create an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Announce an IPv4 prefix from `origin`. Later announcements of the
    /// same prefix replace earlier ones.
    pub fn announce_v4(&mut self, prefix: Ipv4Prefix, origin: Asn) {
        self.v4.insert(prefix, origin);
    }

    /// Announce an IPv6 prefix from `origin`.
    pub fn announce_v6(&mut self, prefix: Ipv6Prefix, origin: Asn) {
        self.v6.insert(prefix, origin);
    }

    /// Withdraw an IPv4 prefix; returns the former origin.
    pub fn withdraw_v4(&mut self, prefix: &Ipv4Prefix) -> Option<Asn> {
        self.v4.remove(prefix)
    }

    /// Withdraw an IPv6 prefix; returns the former origin.
    pub fn withdraw_v6(&mut self, prefix: &Ipv6Prefix) -> Option<Asn> {
        self.v6.remove(prefix)
    }

    /// The routed prefix covering `addr` and its origin AS.
    pub fn route_v4(&self, addr: Ipv4Addr) -> Option<(Ipv4Prefix, Asn)> {
        self.v4.lookup(addr).map(|(p, a)| (p, *a))
    }

    /// The routed prefix covering `addr` and its origin AS.
    pub fn route_v6(&self, addr: Ipv6Addr) -> Option<(Ipv6Prefix, Asn)> {
        self.v6.lookup(addr).map(|(p, a)| (p, *a))
    }

    /// The routed prefix covering an IPv6 prefix (e.g. an observed /64).
    pub fn route_v6_prefix(&self, prefix: &Ipv6Prefix) -> Option<(Ipv6Prefix, Asn)> {
        self.v6.lookup_prefix(prefix).map(|(p, a)| (p, *a))
    }

    /// Origin AS of `addr`, if routed.
    pub fn origin_v4(&self, addr: Ipv4Addr) -> Option<Asn> {
        self.route_v4(addr).map(|(_, a)| a)
    }

    /// Origin AS of `addr`, if routed.
    pub fn origin_v6(&self, addr: Ipv6Addr) -> Option<Asn> {
        self.route_v6(addr).map(|(_, a)| a)
    }

    /// Number of announced prefixes (v4 + v6).
    pub fn len(&self) -> usize {
        self.v4.len() + self.v6.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// All announced IPv4 prefixes in address order.
    pub fn v4_entries(&self) -> Vec<(Ipv4Prefix, Asn)> {
        self.v4
            .entries()
            .into_iter()
            .map(|(p, a)| (p, *a))
            .collect()
    }

    /// All announced IPv6 prefixes in address order.
    pub fn v6_entries(&self) -> Vec<(Ipv6Prefix, Asn)> {
        self.v6
            .entries()
            .into_iter()
            .map(|(p, a)| (p, *a))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p4(s: &str) -> Ipv4Prefix {
        s.parse().unwrap()
    }

    fn p6(s: &str) -> Ipv6Prefix {
        s.parse().unwrap()
    }

    #[test]
    fn v4_origin_lookup() {
        let mut t = RoutingTable::new();
        t.announce_v4(p4("84.0.0.0/10"), Asn(3320));
        t.announce_v4(p4("84.16.0.0/16"), Asn(64500));
        assert_eq!(t.origin_v4(Ipv4Addr::new(84, 16, 1, 1)), Some(Asn(64500)));
        assert_eq!(t.origin_v4(Ipv4Addr::new(84, 17, 1, 1)), Some(Asn(3320)));
        assert_eq!(t.origin_v4(Ipv4Addr::new(8, 8, 8, 8)), None);
    }

    #[test]
    fn v6_prefix_route_lookup() {
        let mut t = RoutingTable::new();
        t.announce_v6(p6("2003::/19"), Asn(3320));
        let (route, asn) = t.route_v6_prefix(&p6("2003:40:a0:1200::/64")).unwrap();
        assert_eq!((route, asn), (p6("2003::/19"), Asn(3320)));
    }

    #[test]
    fn withdraw_removes_route() {
        let mut t = RoutingTable::new();
        t.announce_v4(p4("84.0.0.0/10"), Asn(3320));
        assert_eq!(t.withdraw_v4(&p4("84.0.0.0/10")), Some(Asn(3320)));
        assert_eq!(t.origin_v4(Ipv4Addr::new(84, 1, 1, 1)), None);
        assert_eq!(t.withdraw_v4(&p4("84.0.0.0/10")), None);
    }

    #[test]
    fn reannouncement_changes_origin() {
        let mut t = RoutingTable::new();
        t.announce_v4(p4("84.0.0.0/10"), Asn(3320));
        t.announce_v4(p4("84.0.0.0/10"), Asn(5432));
        assert_eq!(t.origin_v4(Ipv4Addr::new(84, 1, 1, 1)), Some(Asn(5432)));
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn entries_enumerate_both_families() {
        let mut t = RoutingTable::new();
        t.announce_v4(p4("84.0.0.0/10"), Asn(3320));
        t.announce_v6(p6("2003::/19"), Asn(3320));
        t.announce_v6(p6("2a02:8100::/28"), Asn(6830));
        assert_eq!(t.len(), 3);
        assert_eq!(t.v4_entries().len(), 1);
        let v6: Vec<_> = t.v6_entries().into_iter().map(|(p, _)| p).collect();
        assert_eq!(v6, vec![p6("2003::/19"), p6("2a02:8100::/28")]);
    }
}
