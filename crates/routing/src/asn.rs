//! Autonomous-system numbers and per-AS metadata.

use crate::rir::Rir;
use std::collections::BTreeMap;
use std::fmt;

/// An autonomous-system number.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Asn(pub u32);

impl fmt::Display for Asn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "AS{}", self.0)
    }
}

/// Coarse access-network type, used by the CDN analysis to split the
/// population into "fixed" and "mobile" — the paper finds these two classes
/// behave so differently that they must be analyzed separately (Section 4.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessType {
    /// Fixed-line residential access (DSL, cable, fiber).
    FixedLine,
    /// Cellular access; classified with a Rula et al.-style methodology in
    /// the real paper, configured directly in the simulation.
    Cellular,
    /// Anything else (hosting, enterprise, ...).
    Other,
}

impl AccessType {
    /// The label used in reports ("fixed" / "mobile" / "other").
    pub fn label(&self) -> &'static str {
        match self {
            AccessType::FixedLine => "fixed",
            AccessType::Cellular => "mobile",
            AccessType::Other => "other",
        }
    }
}

/// Metadata for one AS.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AsInfo {
    /// The AS number.
    pub asn: Asn,
    /// Operator name as it appears in the paper's tables (e.g. "DTAG").
    pub name: String,
    /// ISO-ish country label (the paper's Table 1 uses "Germany", "many", …).
    pub country: String,
    /// Delegating regional Internet registry.
    pub rir: Rir,
    /// Fixed-line or cellular access network.
    pub access: AccessType,
}

/// Registry of per-AS metadata, keyed by ASN.
#[derive(Debug, Clone, Default)]
pub struct AsRegistry {
    map: BTreeMap<Asn, AsInfo>,
}

impl AsRegistry {
    /// Create an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register an AS; replaces any existing entry with the same ASN.
    pub fn register(&mut self, info: AsInfo) -> Option<AsInfo> {
        self.map.insert(info.asn, info)
    }

    /// Look up an AS.
    pub fn get(&self, asn: Asn) -> Option<&AsInfo> {
        self.map.get(&asn)
    }

    /// Operator name, falling back to `ASxxxx` for unknown ASes.
    pub fn name_of(&self, asn: Asn) -> String {
        self.get(asn)
            .map(|i| i.name.clone())
            .unwrap_or_else(|| asn.to_string())
    }

    /// Whether the AS is a cellular access network.
    pub fn is_cellular(&self, asn: Asn) -> bool {
        matches!(self.get(asn).map(|i| i.access), Some(AccessType::Cellular))
    }

    /// All registered ASes in ASN order.
    pub fn iter(&self) -> impl Iterator<Item = &AsInfo> {
        self.map.values()
    }

    /// Number of registered ASes.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether no ASes are registered.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn info(asn: u32, name: &str, access: AccessType) -> AsInfo {
        AsInfo {
            asn: Asn(asn),
            name: name.to_string(),
            country: "Germany".to_string(),
            rir: Rir::RipeNcc,
            access,
        }
    }

    #[test]
    fn register_and_lookup() {
        let mut reg = AsRegistry::new();
        assert!(reg.is_empty());
        reg.register(info(3320, "DTAG", AccessType::FixedLine));
        assert_eq!(reg.len(), 1);
        assert_eq!(reg.get(Asn(3320)).unwrap().name, "DTAG");
        assert!(reg.get(Asn(7922)).is_none());
    }

    #[test]
    fn replace_returns_old() {
        let mut reg = AsRegistry::new();
        reg.register(info(3320, "DTAG", AccessType::FixedLine));
        let old = reg.register(info(3320, "Deutsche Telekom", AccessType::FixedLine));
        assert_eq!(old.unwrap().name, "DTAG");
        assert_eq!(reg.len(), 1);
    }

    #[test]
    fn name_fallback() {
        let reg = AsRegistry::new();
        assert_eq!(reg.name_of(Asn(64500)), "AS64500");
    }

    #[test]
    fn cellular_classification() {
        let mut reg = AsRegistry::new();
        reg.register(info(12345, "EE-like", AccessType::Cellular));
        reg.register(info(3320, "DTAG", AccessType::FixedLine));
        assert!(reg.is_cellular(Asn(12345)));
        assert!(!reg.is_cellular(Asn(3320)));
        assert!(!reg.is_cellular(Asn(99999)));
    }

    #[test]
    fn iteration_in_asn_order() {
        let mut reg = AsRegistry::new();
        reg.register(info(7922, "Comcast", AccessType::FixedLine));
        reg.register(info(3320, "DTAG", AccessType::FixedLine));
        let asns: Vec<u32> = reg.iter().map(|i| i.asn.0).collect();
        assert_eq!(asns, vec![3320, 7922]);
    }

    #[test]
    fn access_labels() {
        assert_eq!(AccessType::FixedLine.label(), "fixed");
        assert_eq!(AccessType::Cellular.label(), "mobile");
        assert_eq!(AccessType::Other.label(), "other");
    }
}
