//! pfx2as text serialization.
//!
//! The Routeviews "prefix-to-AS" datasets the paper uses ship as flat text
//! with one `prefix<TAB>length<TAB>origin` line per routed prefix. We mirror
//! that format (for both families, distinguished by the presence of `:`)
//! so synthetic routing tables can be dumped, diffed and re-loaded.

use crate::asn::Asn;
use crate::table::RoutingTable;
use dynamips_netaddr::{Ipv4Prefix, Ipv6Prefix};
use std::fmt::Write as _;

/// Errors from parsing a pfx2as dump.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Pfx2asError {
    /// 1-based line number of the offending line.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for Pfx2asError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "pfx2as line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for Pfx2asError {}

/// Serialize a routing table in pfx2as format (IPv4 entries first, then
/// IPv6, each in address order).
pub fn to_pfx2as(table: &RoutingTable) -> String {
    let mut out = String::new();
    for (pfx, asn) in table.v4_entries() {
        writeln!(out, "{}\t{}\t{}", pfx.network(), pfx.len(), asn.0).expect("string write");
    }
    for (pfx, asn) in table.v6_entries() {
        writeln!(out, "{}\t{}\t{}", pfx.network(), pfx.len(), asn.0).expect("string write");
    }
    out
}

/// Parse a pfx2as dump into a routing table. Blank lines and `#` comments
/// are ignored.
pub fn from_pfx2as(text: &str) -> Result<RoutingTable, Pfx2asError> {
    let mut table = RoutingTable::new();
    for (idx, line) in text.lines().enumerate() {
        let lineno = idx + 1;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut fields = line.split('\t');
        let (addr, len, origin) = match (fields.next(), fields.next(), fields.next()) {
            (Some(a), Some(l), Some(o)) => (a, l, o),
            _ => {
                return Err(Pfx2asError {
                    line: lineno,
                    message: format!("expected 3 tab-separated fields, got {line:?}"),
                })
            }
        };
        let len: u8 = len.parse().map_err(|_| Pfx2asError {
            line: lineno,
            message: format!("bad prefix length {len:?}"),
        })?;
        let origin: u32 = origin.parse().map_err(|_| Pfx2asError {
            line: lineno,
            message: format!("bad origin ASN {origin:?}"),
        })?;
        if addr.contains(':') {
            let pfx: Ipv6Prefix = format!("{addr}/{len}").parse().map_err(|e| Pfx2asError {
                line: lineno,
                message: format!("bad IPv6 prefix: {e}"),
            })?;
            table.announce_v6(pfx, Asn(origin));
        } else {
            let pfx: Ipv4Prefix = format!("{addr}/{len}").parse().map_err(|e| Pfx2asError {
                line: lineno,
                message: format!("bad IPv4 prefix: {e}"),
            })?;
            table.announce_v4(pfx, Asn(origin));
        }
    }
    Ok(table)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::Ipv4Addr;

    #[test]
    fn round_trip() {
        let mut t = RoutingTable::new();
        t.announce_v4("84.0.0.0/10".parse().unwrap(), Asn(3320));
        t.announce_v6("2003::/19".parse().unwrap(), Asn(3320));
        t.announce_v6("2a02:8100::/28".parse().unwrap(), Asn(6830));
        let text = to_pfx2as(&t);
        let parsed = from_pfx2as(&text).unwrap();
        assert_eq!(parsed.v4_entries(), t.v4_entries());
        assert_eq!(parsed.v6_entries(), t.v6_entries());
    }

    #[test]
    fn comments_and_blanks_skipped() {
        let text = "# comment\n\n84.0.0.0\t10\t3320\n";
        let t = from_pfx2as(text).unwrap();
        assert_eq!(t.origin_v4(Ipv4Addr::new(84, 1, 1, 1)), Some(Asn(3320)));
    }

    #[test]
    fn error_reports_line_number() {
        let text = "84.0.0.0\t10\t3320\nnot-a-line\n";
        let err = from_pfx2as(text).unwrap_err();
        assert_eq!(err.line, 2);
    }

    #[test]
    fn bad_length_rejected() {
        let err = from_pfx2as("84.0.0.0\tXX\t3320\n").unwrap_err();
        assert!(err.message.contains("bad prefix length"));
    }

    #[test]
    fn bad_origin_rejected() {
        let err = from_pfx2as("84.0.0.0\t10\tAS3320\n").unwrap_err();
        assert!(err.message.contains("bad origin"));
    }

    #[test]
    fn non_canonical_prefix_rejected() {
        let err = from_pfx2as("84.0.0.1\t10\t3320\n").unwrap_err();
        assert!(err.message.contains("bad IPv4 prefix"));
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use dynamips_netaddr::{Ipv4Prefix, Ipv6Prefix};
    use proptest::prelude::*;
    use std::net::{Ipv4Addr, Ipv6Addr};

    proptest! {
        #[test]
        fn round_trips_arbitrary_tables(
            v4 in proptest::collection::vec((any::<u32>(), 0u8..=32, any::<u32>()), 0..50),
            v6 in proptest::collection::vec((any::<u128>(), 0u8..=64, any::<u32>()), 0..50),
        ) {
            let mut table = RoutingTable::new();
            for (bits, len, asn) in v4 {
                table.announce_v4(
                    Ipv4Prefix::new_truncated(Ipv4Addr::from(bits), len).unwrap(),
                    Asn(asn),
                );
            }
            for (bits, len, asn) in v6 {
                table.announce_v6(
                    Ipv6Prefix::new_truncated(Ipv6Addr::from(bits), len).unwrap(),
                    Asn(asn),
                );
            }
            let parsed = from_pfx2as(&to_pfx2as(&table)).unwrap();
            prop_assert_eq!(parsed.v4_entries(), table.v4_entries());
            prop_assert_eq!(parsed.v6_entries(), table.v6_entries());
        }

        #[test]
        fn parser_never_panics_on_garbage(text in "[ -~\n\t]{0,300}") {
            let _ = from_pfx2as(&text);
        }
    }
}
