//! Routing substrate: BGP tables, origin-AS lookup and RIR delegations.
//!
//! The paper maps every observed address to its origin AS through BGP data
//! (Routeviews pfx2as for the Atlas analysis, the CDN's own BGP feeds for the
//! RUM analysis) and groups addresses "by their delegating Internet
//! registrar" for the geographic breakdowns (Figures 3 and 7). This crate
//! provides the same lookup machinery over synthetic announcements:
//!
//! * [`RoutingTable`] — longest-prefix-match origin lookup for IPv4 addresses
//!   and IPv6 addresses/prefixes, with a pfx2as-style text serialization.
//! * [`RirMap`] — address → regional Internet registry.
//! * [`AsRegistry`] — per-AS metadata (name, country, RIR, access type).

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod asn;
pub mod pfx2as;
pub mod rir;
pub mod table;

pub use asn::{AccessType, AsInfo, AsRegistry, Asn};
pub use rir::{Rir, RirMap};
pub use table::RoutingTable;
