//! Property-based tests for the analysis pipeline's invariants.

use dynamips_core::anonymize::audit_truncation;
use dynamips_core::changes::{change_count, sandwiched_durations, spans_of};
use dynamips_core::durations::DurationSet;
use dynamips_core::stats::{cdf_at, quantile, weighted_cdf_at, BoxStats};
use dynamips_netaddr::Ipv6Prefix;
use dynamips_netsim::SimTime;
use proptest::prelude::*;
use std::net::Ipv6Addr;

fn arb_observations() -> impl Strategy<Value = Vec<(SimTime, u8)>> {
    // Time-ordered observations of a small value domain, with gaps.
    proptest::collection::vec((1u64..5, 0u8..6), 1..200).prop_map(|steps| {
        let mut t = 0u64;
        steps
            .into_iter()
            .map(|(dt, v)| {
                t += dt;
                (SimTime(t), v)
            })
            .collect()
    })
}

proptest! {
    #[test]
    fn spans_partition_the_observations(obs in arb_observations()) {
        let spans = spans_of(obs.iter().copied());
        // Every observation falls into exactly one span with its value.
        for (t, v) in &obs {
            let covering: Vec<_> = spans
                .iter()
                .filter(|s| s.first <= *t && *t <= s.last && s.value == *v)
                .collect();
            prop_assert!(!covering.is_empty(), "observation not covered");
        }
        // Spans are ordered, non-overlapping, and adjacent spans differ.
        for w in spans.windows(2) {
            prop_assert!(w[0].last < w[1].first);
            prop_assert_ne!(w[0].value, w[1].value);
        }
        prop_assert_eq!(change_count(&spans), spans.len().saturating_sub(1));
    }

    #[test]
    fn sandwiched_durations_are_bounded(obs in arb_observations()) {
        let spans = spans_of(obs.iter().copied());
        let durations = sandwiched_durations(&spans);
        if spans.len() >= 3 {
            prop_assert_eq!(durations.len(), spans.len() - 2);
        } else {
            prop_assert!(durations.is_empty());
        }
        let total = obs.last().unwrap().0 - obs.first().unwrap().0;
        for d in &durations {
            prop_assert!(*d >= 1);
            prop_assert!(*d <= total);
        }
        // The sum of interior durations cannot exceed the observed span.
        prop_assert!(durations.iter().sum::<u64>() <= total);
    }

    #[test]
    fn ttf_fractions_sum_to_one(durations in proptest::collection::vec(1u64..5000, 1..300)) {
        let mut set = DurationSet::new();
        set.extend(durations.iter().copied());
        let mut distinct = durations.clone();
        distinct.sort_unstable();
        distinct.dedup();
        let sum: f64 = distinct.iter().map(|&d| set.total_time_fraction(d)).sum();
        prop_assert!((sum - 1.0).abs() < 1e-9, "{sum}");
        // Cumulative TTF at the maximum is exactly 1.
        let max = *distinct.last().unwrap();
        let c = set.cumulative_ttf_at(&[max]);
        prop_assert!((c[0] - 1.0).abs() < 1e-9);
    }

    #[test]
    fn cumulative_ttf_is_monotone(durations in proptest::collection::vec(1u64..5000, 1..300)) {
        let mut set = DurationSet::new();
        set.extend(durations);
        let marks: Vec<u64> = (0..20).map(|i| 1 + i * 251).collect();
        let c = set.cumulative_ttf_at(&marks);
        for w in c.windows(2) {
            prop_assert!(w[1] >= w[0] - 1e-12);
        }
        for v in &c {
            prop_assert!((0.0..=1.0 + 1e-12).contains(v));
        }
    }

    #[test]
    fn quantile_is_monotone_and_bounded(values in proptest::collection::vec(-1e6f64..1e6, 1..200)) {
        let lo = values.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = values.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let mut prev = f64::NEG_INFINITY;
        for i in 0..=10 {
            let q = quantile(&values, i as f64 / 10.0).unwrap();
            prop_assert!(q >= lo - 1e-9 && q <= hi + 1e-9);
            prop_assert!(q >= prev - 1e-9, "quantiles must be monotone");
            prev = q;
        }
        let b = BoxStats::from_values(&values).unwrap();
        prop_assert!(b.p5 <= b.p25 + 1e-9 && b.p25 <= b.p50 + 1e-9);
        prop_assert!(b.p50 <= b.p75 + 1e-9 && b.p75 <= b.p95 + 1e-9);
    }

    #[test]
    fn cdf_agrees_with_direct_counting(
        values in proptest::collection::vec(0f64..1000.0, 1..200),
        threshold in 0f64..1000.0,
    ) {
        let c = cdf_at(&values, &[threshold]);
        let direct = values.iter().filter(|&&v| v <= threshold).count() as f64
            / values.len() as f64;
        prop_assert!((c[0] - direct).abs() < 1e-12);
    }

    #[test]
    fn weighted_cdf_equals_unweighted_for_unit_weights(
        values in proptest::collection::vec(0f64..1000.0, 1..100),
        threshold in 0f64..1000.0,
    ) {
        let weighted: Vec<(f64, f64)> = values.iter().map(|&v| (v, 1.0)).collect();
        let a = weighted_cdf_at(&weighted, &[threshold]);
        let b = cdf_at(&values, &[threshold]);
        prop_assert!((a[0] - b[0]).abs() < 1e-9);
    }

    #[test]
    fn truncation_k_min_grows_as_length_shrinks(
        subs in proptest::collection::vec((0u32..40, 0u16..1024), 1..120),
    ) {
        // Arbitrary subscriber -> /64 observations inside one /44.
        let obs: Vec<(u32, Ipv6Prefix)> = subs
            .iter()
            .map(|(sub, slot)| {
                let bits = (0x2001_0db8_0000_0000u64 | (*slot as u64)) as u128;
                let p64 = Ipv6Prefix::slash64_of(Ipv6Addr::from(bits << 64));
                (*sub, p64)
            })
            .collect();
        let mut prev_k_min = 0usize;
        for len in [64u8, 60, 56, 52, 48, 44] {
            let s = audit_truncation(&obs, len).unwrap();
            prop_assert!(
                s.k_min >= prev_k_min,
                "k_min must not shrink when buckets merge (len {len})"
            );
            prev_k_min = s.k_min;
        }
        // At /44 everything is one bucket holding every subscriber.
        let all = audit_truncation(&obs, 44).unwrap();
        let distinct: std::collections::HashSet<u32> = subs.iter().map(|(s, _)| *s).collect();
        prop_assert_eq!(all.buckets, 1);
        prop_assert_eq!(all.k_min, distinct.len());
    }
}
