//! Subscriber-boundary inference from trailing zero bits.
//!
//! Section 5.3. Two variants, matching the paper's two datasets:
//!
//! * **RIPE Atlas**: for each probe, find the number of bits immediately
//!   above the /64 boundary that are zero in *every* /64 the probe ever
//!   observed, and subtract from 64 ([`infer_subscriber_len`]).
//! * **CDN**: classify each observed /64 by its longest streak of trailing
//!   zero *nibbles* against the /48, /52, /56 and /60 boundaries
//!   ([`NibbleCounter`], Figure 7).

use crate::changes::ProbeHistory;
use dynamips_netaddr::{nibble_boundary_class, Ipv6Prefix, NibbleBoundary};

/// Infer the prefix length identifying the subscriber behind a probe:
/// `64 - (trailing bits that are zero in all observed /64s)`.
///
/// Returns `None` for probes with no IPv6 observations. A probe whose /64s
/// have no common zero suffix infers /64 (the paper's second DTAG spike,
/// caused by prefix-scrambling CPEs).
pub fn infer_subscriber_len(history: &ProbeHistory) -> Option<u8> {
    infer_subscriber_len_of(history.v6.iter().map(|s| s.value))
}

/// Same inference over any set of /64s (used by tests and the CDN-side
/// analyses).
///
/// ```
/// use dynamips_core::subscriber::infer_subscriber_len_of;
/// use dynamips_netaddr::Ipv6Prefix;
///
/// // Two /64s from a CPE that zeroes the bits of its /56 delegation:
/// let p64s = ["2003:40:a0:ab00::/64", "2003:41:17:2200::/64"]
///     .iter()
///     .map(|s| s.parse::<Ipv6Prefix>().unwrap());
/// assert_eq!(infer_subscriber_len_of(p64s), Some(56));
/// ```
// lint:allow(dead-pub): doctest-facing; the doc example above is an external
// caller this scan cannot see.
pub fn infer_subscriber_len_of(p64s: impl Iterator<Item = Ipv6Prefix>) -> Option<u8> {
    let mut any = false;
    let mut or_bits: u64 = 0;
    for p in p64s {
        any = true;
        or_bits |= (p.bits() >> 64) as u64;
    }
    if !any {
        return None;
    }
    let common_zeros = if or_bits == 0 {
        64
    } else {
        or_bits.trailing_zeros() as u8
    };
    Some(64 - common_zeros.min(64))
}

/// The modal per-probe inferred subscriber length over a population —
/// robust to the scrambling-CPE minority that contaminates a global
/// bitwise-OR (one scrambler forces the joint inference to /64).
pub fn infer_subscriber_len_mode<'a>(
    histories: impl Iterator<Item = &'a ProbeHistory>,
) -> Option<u8> {
    let mut dist = InferredLenDistribution::new();
    for h in histories {
        dist.add_probe(h);
    }
    dist.mode()
}

/// Figure-7 accumulator: counts observed /64s per trailing-zero nibble
/// class.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NibbleCounter {
    /// /64s whose longest zero streak reaches the /48 boundary.
    pub slash48: u64,
    /// … the /52 boundary.
    pub slash52: u64,
    /// … the /56 boundary.
    pub slash56: u64,
    /// … the /60 boundary.
    pub slash60: u64,
    /// /64s with no inferable boundary.
    pub none: u64,
}

impl NibbleCounter {
    /// Account one observed /64.
    pub fn add(&mut self, p64: &Ipv6Prefix) {
        match nibble_boundary_class(p64) {
            NibbleBoundary::Slash48 => self.slash48 += 1,
            NibbleBoundary::Slash52 => self.slash52 += 1,
            NibbleBoundary::Slash56 => self.slash56 += 1,
            NibbleBoundary::Slash60 => self.slash60 += 1,
            NibbleBoundary::None => self.none += 1,
        }
    }

    /// Merge counters.
    pub fn merge(&mut self, other: &NibbleCounter) {
        self.slash48 += other.slash48;
        self.slash52 += other.slash52;
        self.slash56 += other.slash56;
        self.slash60 += other.slash60;
        self.none += other.none;
    }

    /// Total /64s accounted.
    pub fn total(&self) -> u64 {
        self.slash48 + self.slash52 + self.slash56 + self.slash60 + self.none
    }

    /// Fraction of /64s in each inferable class, in `(48, 52, 56, 60)`
    /// order (the bars of Figure 7).
    pub fn fractions(&self) -> [f64; 4] {
        let t = self.total();
        if t == 0 {
            return [0.0; 4];
        }
        [
            self.slash48 as f64 / t as f64,
            self.slash52 as f64 / t as f64,
            self.slash56 as f64 / t as f64,
            self.slash60 as f64 / t as f64,
        ]
    }

    /// Fraction of /64s with *any* inferable delegation boundary (the
    /// percentages in Figure 7's panel titles: ARIN 59.0%, RIPE 78.8%, …).
    pub fn inferable_fraction(&self) -> f64 {
        let t = self.total();
        if t == 0 {
            0.0
        } else {
            (t - self.none) as f64 / t as f64
        }
    }
}

/// Distribution of inferred subscriber prefix lengths over probes
/// (Figures 6 and 9).
#[derive(Debug, Clone)]
pub struct InferredLenDistribution {
    /// `counts[len]` = probes inferring subscriber length `len` (index
    /// 0..=64; only 40..=64 is realistically populated).
    pub counts: [u64; 65],
}

impl Default for InferredLenDistribution {
    fn default() -> Self {
        InferredLenDistribution { counts: [0; 65] }
    }
}

impl InferredLenDistribution {
    /// Create an empty distribution.
    pub fn new() -> Self {
        Self::default()
    }

    /// Account one probe (no-op for v6-less probes).
    pub fn add_probe(&mut self, history: &ProbeHistory) {
        if let Some(len) = infer_subscriber_len(history) {
            self.counts[len as usize] += 1;
        }
    }

    /// Merge distributions (plain per-length probe counters).
    pub fn merge(&mut self, other: &InferredLenDistribution) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
    }

    /// Total probes accounted.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Percentage of probes inferring exactly `len`.
    pub fn percentage(&self, len: u8) -> f64 {
        let t = self.total();
        if t == 0 {
            0.0
        } else {
            100.0 * self.counts[len as usize] as f64 / t as f64
        }
    }

    /// The modal inferred length, if any probes were accounted. Ties are
    /// broken toward the *shorter* length — the conservative choice for the
    /// scanning and blocking applications (more coverage, never less).
    pub fn mode(&self) -> Option<u8> {
        let (idx, &max) = self
            .counts
            .iter()
            .enumerate()
            .max_by_key(|(i, &c)| (c, std::cmp::Reverse(*i)))?;
        (max > 0).then_some(idx as u8)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::changes::Span;
    use dynamips_atlas::ProbeId;
    use dynamips_netsim::SimTime;
    use dynamips_routing::Asn;

    fn history(p64s: Vec<&str>) -> ProbeHistory {
        ProbeHistory {
            probe: ProbeId(1),
            virtual_index: 0,
            asn: Asn(3320),
            v4: vec![],
            v6: p64s
                .iter()
                .enumerate()
                .map(|(i, p)| Span {
                    value: p.parse::<Ipv6Prefix>().unwrap(),
                    first: SimTime(i as u64 * 10),
                    last: SimTime(i as u64 * 10 + 9),
                })
                .collect(),
        }
    }

    #[test]
    fn zeroed_slash56_delegation_inferred() {
        // A CPE with a /56 delegation announcing the lowest /64: the last
        // 8 bits before /64 are always zero.
        let h = history(vec![
            "2003:40:a0:aa00::/64",
            "2003:40:b1:2200::/64",
            "2003:41:17:c500::/64",
        ]);
        assert_eq!(infer_subscriber_len(&h), Some(56));
    }

    #[test]
    fn scrambled_bits_infer_64() {
        let h = history(vec!["2003:40:a0:aa17::/64", "2003:40:b1:22e9::/64"]);
        assert_eq!(infer_subscriber_len(&h), Some(64));
    }

    #[test]
    fn netcologne_style_slash48() {
        let h = history(vec!["2001:4dd0:1a2b::/64", "2001:4dd0:33dd::/64"]);
        // 16 trailing zero bits in both -> /48.
        assert_eq!(infer_subscriber_len(&h), Some(48));
    }

    #[test]
    fn kabel_style_slash62() {
        let h = history(vec![
            "2a02:810:0:4::/64",
            "2a02:810:0:8::/64",
            "2a02:810:0:c::/64",
        ]);
        // Low 2 bits always zero -> /62.
        assert_eq!(infer_subscriber_len(&h), Some(62));
    }

    #[test]
    fn inference_needs_v6() {
        assert_eq!(infer_subscriber_len(&history(vec![])), None);
    }

    #[test]
    fn single_observation_can_overestimate_zeros() {
        // With one /64 ending in zeros we infer a short length — the paper
        // notes the risk but argues the false-positive rate is small.
        let h = history(vec!["2003:40:a0:ab00::/64"]);
        assert_eq!(infer_subscriber_len(&h), Some(56));
    }

    #[test]
    fn nibble_counter_classes() {
        let mut c = NibbleCounter::default();
        c.add(&"2001:db8:1::/64".parse().unwrap()); // 16 zeros -> /48
        c.add(&"2001:db8:1:1000::/64".parse().unwrap()); // 12 -> /52
        c.add(&"2001:db8:1:1100::/64".parse().unwrap()); // 8 -> /56
        c.add(&"2001:db8:1:1110::/64".parse().unwrap()); // 4 -> /60
        c.add(&"2001:db8:1:1111::/64".parse().unwrap()); // none
        assert_eq!(c.total(), 5);
        assert_eq!(c.fractions(), [0.2, 0.2, 0.2, 0.2]);
        assert!((c.inferable_fraction() - 0.8).abs() < 1e-12);
    }

    #[test]
    fn nibble_counter_merge() {
        let mut a = NibbleCounter {
            slash56: 3,
            none: 1,
            ..Default::default()
        };
        a.merge(&NibbleCounter {
            slash56: 1,
            slash60: 2,
            ..Default::default()
        });
        assert_eq!(a.slash56, 4);
        assert_eq!(a.total(), 7);
    }

    #[test]
    fn distribution_percentages_and_mode() {
        let mut d = InferredLenDistribution::new();
        for _ in 0..3 {
            d.add_probe(&history(vec![
                "2003:40:a0:ab00::/64",
                "2003:40:b1:2200::/64",
            ]));
        }
        d.add_probe(&history(vec![
            "2003:40:a0:aa17::/64",
            "2003:40:0:2201::/64",
        ]));
        assert_eq!(d.total(), 4);
        assert!((d.percentage(56) - 75.0).abs() < 1e-12);
        assert!((d.percentage(64) - 25.0).abs() < 1e-12);
        assert_eq!(d.mode(), Some(56));
    }

    #[test]
    fn mode_is_robust_to_scrambler_minority() {
        // 4 zero-out probes and 1 scrambler: the joint OR would say /64,
        // the per-probe mode says /56.
        let zeroed: Vec<ProbeHistory> = (0..4)
            .map(|i| {
                history(vec![
                    Box::leak(format!("2003:40:{i}:ab00::/64").into_boxed_str()),
                    Box::leak(format!("2003:41:{i}:2200::/64").into_boxed_str()),
                ])
            })
            .collect();
        let scrambler = history(vec!["2003:40:9:aa17::/64", "2003:40:9:22e9::/64"]);
        let all: Vec<&ProbeHistory> = zeroed.iter().chain(std::iter::once(&scrambler)).collect();
        assert_eq!(infer_subscriber_len_mode(all.into_iter()), Some(56));
        // The joint inference collapses to /64, as documented.
        let joint = infer_subscriber_len_of(
            zeroed
                .iter()
                .chain(std::iter::once(&scrambler))
                .flat_map(|h| h.v6.iter().map(|s| s.value)),
        );
        assert_eq!(joint, Some(64));
    }

    #[test]
    fn distribution_merge_sums_counts() {
        let mut a = InferredLenDistribution::new();
        a.counts[56] = 3;
        a.counts[64] = 1;
        let mut b = InferredLenDistribution::new();
        b.counts[56] = 2;
        b.counts[48] = 4;
        a.merge(&b);
        assert_eq!(a.counts[56], 5);
        assert_eq!(a.counts[48], 4);
        assert_eq!(a.total(), 10);
        assert_eq!(a.mode(), Some(56));
    }

    #[test]
    fn mode_ties_break_toward_shorter() {
        let mut d = InferredLenDistribution::new();
        d.counts[56] = 5;
        d.counts[64] = 5;
        assert_eq!(d.mode(), Some(56));
    }

    #[test]
    fn empty_distribution() {
        let d = InferredLenDistribution::new();
        assert_eq!(d.total(), 0);
        assert_eq!(d.percentage(56), 0.0);
        assert_eq!(d.mode(), None);
    }
}
