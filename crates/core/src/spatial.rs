//! Spatial analysis of successive assignments.
//!
//! Section 5 asks *where* addresses move upon reassignment:
//!
//! * the common prefix length (CPL) between successive /64 assignments
//!   (Figure 5),
//! * how often IPv4 changes cross /24 and BGP-prefix boundaries, and how
//!   often IPv6 changes cross BGP prefixes (Table 2).

use crate::changes::ProbeHistory;
use dynamips_netaddr::{common_prefix_len_v6, Ipv4Prefix};
use dynamips_routing::RoutingTable;

/// Per-AS CPL histogram data for Figure 5: for each CPL value, the number
/// of assignment changes with that CPL (orange bars) and the number of
/// probes contributing at least one such change (blue bars).
#[derive(Debug, Clone)]
pub struct CplHistogram {
    /// `changes[c]` = assignment changes whose successive /64s share
    /// exactly `c` bits.
    pub changes: [u64; 65],
    /// `probes[c]` = probes with at least one change at CPL `c`.
    pub probes: [u64; 65],
}

impl Default for CplHistogram {
    fn default() -> Self {
        CplHistogram {
            changes: [0; 65],
            probes: [0; 65],
        }
    }
}

impl CplHistogram {
    /// Create an empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Account one probe's successive-assignment CPLs.
    pub fn add_probe(&mut self, history: &ProbeHistory) {
        let mut seen = [false; 65];
        for pair in history.v6.windows(2) {
            let cpl = common_prefix_len_v6(&pair[0].value, &pair[1].value) as usize;
            self.changes[cpl] += 1;
            seen[cpl] = true;
        }
        for (c, s) in seen.iter().enumerate() {
            if *s {
                self.probes[c] += 1;
            }
        }
    }

    /// Merge histograms (both bars are plain per-CPL counters).
    pub fn merge(&mut self, other: &CplHistogram) {
        for (a, b) in self.changes.iter_mut().zip(other.changes.iter()) {
            *a += b;
        }
        for (a, b) in self.probes.iter_mut().zip(other.probes.iter()) {
            *a += b;
        }
    }

    /// Total changes accounted.
    pub fn total_changes(&self) -> u64 {
        self.changes.iter().sum()
    }

    /// The CPL value with the most changes, if any.
    pub fn mode(&self) -> Option<u8> {
        let (idx, &max) = self.changes.iter().enumerate().max_by_key(|(_, &c)| c)?;
        (max > 0).then_some(idx as u8)
    }
}

/// Table-2 counters for one AS.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CrossingStats {
    /// IPv4 changes observed.
    pub v4_changes: u64,
    /// IPv4 changes where the previous and next address fall in different
    /// /24 blocks.
    pub v4_diff_slash24: u64,
    /// IPv4 changes crossing routed BGP prefixes.
    pub v4_diff_bgp: u64,
    /// IPv6 changes observed.
    pub v6_changes: u64,
    /// IPv6 changes crossing routed BGP prefixes.
    pub v6_diff_bgp: u64,
}

impl CrossingStats {
    /// Account one probe.
    pub fn add_probe(&mut self, history: &ProbeHistory, routing: &RoutingTable) {
        for pair in history.v4.windows(2) {
            self.v4_changes += 1;
            let a = pair[0].value;
            let b = pair[1].value;
            if Ipv4Prefix::slash24_of(a) != Ipv4Prefix::slash24_of(b) {
                self.v4_diff_slash24 += 1;
            }
            let ra = routing.route_v4(a).map(|(p, _)| p);
            let rb = routing.route_v4(b).map(|(p, _)| p);
            if ra != rb {
                self.v4_diff_bgp += 1;
            }
        }
        for pair in history.v6.windows(2) {
            self.v6_changes += 1;
            let ra = routing.route_v6_prefix(&pair[0].value).map(|(p, _)| p);
            let rb = routing.route_v6_prefix(&pair[1].value).map(|(p, _)| p);
            if ra != rb {
                self.v6_diff_bgp += 1;
            }
        }
    }

    /// Merge counters.
    pub fn merge(&mut self, other: &CrossingStats) {
        self.v4_changes += other.v4_changes;
        self.v4_diff_slash24 += other.v4_diff_slash24;
        self.v4_diff_bgp += other.v4_diff_bgp;
        self.v6_changes += other.v6_changes;
        self.v6_diff_bgp += other.v6_diff_bgp;
    }

    /// Percentage of v4 changes across /24s.
    pub fn pct_v4_diff_slash24(&self) -> f64 {
        pct(self.v4_diff_slash24, self.v4_changes)
    }

    /// Percentage of v4 changes across BGP prefixes.
    pub fn pct_v4_diff_bgp(&self) -> f64 {
        pct(self.v4_diff_bgp, self.v4_changes)
    }

    /// Percentage of v6 changes across BGP prefixes.
    pub fn pct_v6_diff_bgp(&self) -> f64 {
        pct(self.v6_diff_bgp, self.v6_changes)
    }
}

fn pct(num: u64, den: u64) -> f64 {
    if den == 0 {
        0.0
    } else {
        100.0 * num as f64 / den as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::changes::Span;
    use dynamips_atlas::ProbeId;
    use dynamips_netaddr::Ipv6Prefix;
    use dynamips_netsim::SimTime;
    use dynamips_routing::Asn;
    use std::net::Ipv4Addr;

    fn history(v4: Vec<&str>, v6: Vec<&str>) -> ProbeHistory {
        ProbeHistory {
            probe: ProbeId(1),
            virtual_index: 0,
            asn: Asn(3320),
            v4: v4
                .iter()
                .enumerate()
                .map(|(i, a)| Span {
                    value: a.parse::<Ipv4Addr>().unwrap(),
                    first: SimTime(i as u64 * 10),
                    last: SimTime(i as u64 * 10 + 9),
                })
                .collect(),
            v6: v6
                .iter()
                .enumerate()
                .map(|(i, p)| Span {
                    value: p.parse::<Ipv6Prefix>().unwrap(),
                    first: SimTime(i as u64 * 10),
                    last: SimTime(i as u64 * 10 + 9),
                })
                .collect(),
        }
    }

    #[test]
    fn cpl_histogram_counts_changes_and_probes() {
        let mut h = CplHistogram::new();
        // Paper example: CPL 56 between these two.
        h.add_probe(&history(
            vec![],
            vec![
                "2604:3d08:4b80:aa00::/64",
                "2604:3d08:4b80:aaf0::/64",
                "2604:3d08:4b80:aa00::/64",
            ],
        ));
        assert_eq!(h.changes[56], 2);
        assert_eq!(h.probes[56], 1, "one probe regardless of change count");
        assert_eq!(h.total_changes(), 2);
        assert_eq!(h.mode(), Some(56));
    }

    #[test]
    fn cpl_histogram_multiple_probes() {
        let mut h = CplHistogram::new();
        for _ in 0..3 {
            h.add_probe(&history(
                vec![],
                vec!["2003:40:a0:aa00::/64", "2003:40:b1:2200::/64"],
            ));
        }
        let cpl = common_prefix_len_v6(
            &"2003:40:a0:aa00::/64".parse().unwrap(),
            &"2003:40:b1:2200::/64".parse().unwrap(),
        ) as usize;
        assert_eq!(h.changes[cpl], 3);
        assert_eq!(h.probes[cpl], 3);
    }

    #[test]
    fn empty_history_contributes_nothing() {
        let mut h = CplHistogram::new();
        h.add_probe(&history(vec![], vec!["2003::/64"]));
        assert_eq!(h.total_changes(), 0);
        assert_eq!(h.mode(), None);
    }

    #[test]
    fn cpl_merge_matches_sequential_accumulation() {
        let probes = [
            history(vec![], vec!["2003:40:a0:aa00::/64", "2003:40:b1:2200::/64"]),
            history(vec![], vec!["2003:40:a0:aa00::/64", "2003:40:a0:aaf0::/64"]),
            history(vec![], vec!["2003::/64"]),
        ];
        let mut seq = CplHistogram::new();
        for p in &probes {
            seq.add_probe(p);
        }
        let mut left = CplHistogram::new();
        left.add_probe(&probes[0]);
        let mut right = CplHistogram::new();
        right.add_probe(&probes[1]);
        right.add_probe(&probes[2]);
        let mut merged = CplHistogram::new();
        merged.merge(&right);
        merged.merge(&left);
        assert_eq!(merged.changes, seq.changes);
        assert_eq!(merged.probes, seq.probes);
    }

    fn routing() -> RoutingTable {
        let mut t = RoutingTable::new();
        t.announce_v4("84.0.0.0/10".parse().unwrap(), Asn(3320));
        t.announce_v4("91.0.0.0/10".parse().unwrap(), Asn(3320));
        t.announce_v6("2003::/19".parse().unwrap(), Asn(3320));
        t.announce_v6("2a01::/19".parse().unwrap(), Asn(3320));
        t
    }

    #[test]
    fn crossing_stats_detect_slash24_and_bgp() {
        let mut s = CrossingStats::default();
        s.add_probe(
            &history(
                vec![
                    "84.1.1.1", // start
                    "84.1.1.9", // same /24, same BGP
                    "84.1.2.9", // diff /24, same BGP
                    "91.5.5.5", // diff /24, diff BGP
                ],
                vec![
                    "2003:0:0:1::/64",
                    "2003:0:0:2::/64", // same BGP
                    "2a01:0:0:1::/64", // diff BGP
                ],
            ),
            &routing(),
        );
        assert_eq!(s.v4_changes, 3);
        assert_eq!(s.v4_diff_slash24, 2);
        assert_eq!(s.v4_diff_bgp, 1);
        assert_eq!(s.v6_changes, 2);
        assert_eq!(s.v6_diff_bgp, 1);
        assert!((s.pct_v4_diff_slash24() - 66.666).abs() < 0.01);
        assert!((s.pct_v4_diff_bgp() - 33.333).abs() < 0.01);
        assert!((s.pct_v6_diff_bgp() - 50.0).abs() < 0.01);
    }

    #[test]
    fn unrouted_addresses_count_as_different_route() {
        // 10.0.0.0/8 is unrouted: route lookup None vs Some counts as a
        // BGP crossing (conservative).
        let mut s = CrossingStats::default();
        s.add_probe(&history(vec!["84.1.1.1", "10.0.0.1"], vec![]), &routing());
        assert_eq!(s.v4_diff_bgp, 1);
    }

    #[test]
    fn percentages_of_empty_stats_are_zero() {
        let s = CrossingStats::default();
        assert_eq!(s.pct_v4_diff_slash24(), 0.0);
        assert_eq!(s.pct_v4_diff_bgp(), 0.0);
        assert_eq!(s.pct_v6_diff_bgp(), 0.0);
    }

    #[test]
    fn merge_adds_counters() {
        let mut a = CrossingStats {
            v4_changes: 10,
            v4_diff_slash24: 5,
            v4_diff_bgp: 2,
            v6_changes: 4,
            v6_diff_bgp: 1,
        };
        a.merge(&a.clone());
        assert_eq!(a.v4_changes, 20);
        assert_eq!(a.v6_diff_bgp, 2);
    }
}
