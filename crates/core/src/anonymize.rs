//! Truncation-anonymization auditing.
//!
//! Section 6: "simple anonymization by truncation is fallacious, since it
//! does not account for the diversity in address assignment practices we
//! observe (such as the delegation of /48 prefixes to individual
//! subscribers). Anonymization techniques ... must rely on knowledge of
//! prefix boundaries that identify individual subscribers, or subscriber
//! pools."
//!
//! This module measures the k-anonymity a truncation length actually
//! provides against ground truth or inferred subscriber identity, and
//! recommends a per-network truncation length.

use dynamips_netaddr::Ipv6Prefix;
use std::collections::{HashMap, HashSet};

/// k-anonymity statistics for one truncation length.
#[derive(Debug, Clone, Copy, PartialEq)]
// lint:allow(dead-pub): values flow to other crates through pub fn
// returns and pattern matches without the type name being spelled.
pub struct TruncationStats {
    /// The truncation length audited.
    pub len: u8,
    /// Number of distinct truncated prefixes.
    pub buckets: usize,
    /// Minimum subscribers per truncated prefix (worst-case k).
    pub k_min: usize,
    /// Median subscribers per truncated prefix.
    pub k_median: usize,
    /// Fraction of truncated prefixes containing exactly one subscriber —
    /// records that are not anonymized at all.
    pub singleton_fraction: f64,
}

/// Audit one truncation length over `(subscriber id, observed /64)` pairs.
pub fn audit_truncation(observations: &[(u32, Ipv6Prefix)], len: u8) -> Option<TruncationStats> {
    if observations.is_empty() {
        return None;
    }
    let mut subs_per_bucket: HashMap<u128, HashSet<u32>> = HashMap::new();
    for (sub, p64) in observations {
        // supernet with a clamped length cannot shrink past 0; fall back
        // to the prefix itself rather than panic.
        let bucket = p64.supernet(len.min(p64.len())).unwrap_or(*p64);
        subs_per_bucket
            .entry(bucket.bits())
            .or_default()
            .insert(*sub);
    }
    let mut counts: Vec<usize> = subs_per_bucket.values().map(|s| s.len()).collect();
    counts.sort_unstable();
    let singletons = counts.iter().filter(|&&c| c == 1).count();
    Some(TruncationStats {
        len,
        buckets: counts.len(),
        k_min: counts[0],
        k_median: counts[counts.len() / 2],
        singleton_fraction: singletons as f64 / counts.len() as f64,
    })
}

/// Recommend the longest truncation length that still provides
/// `min_k`-anonymity in the median bucket and leaves at most
/// `max_singleton_fraction` of buckets identifying a single subscriber.
/// Returns the audit profile alongside the recommendation.
pub fn recommend_truncation(
    observations: &[(u32, Ipv6Prefix)],
    candidates: impl Iterator<Item = u8>,
    min_k: usize,
    max_singleton_fraction: f64,
) -> (Vec<TruncationStats>, Option<u8>) {
    let mut profile: Vec<TruncationStats> = candidates
        .filter_map(|len| audit_truncation(observations, len))
        .collect();
    profile.sort_by_key(|s| s.len);
    let best = profile
        .iter()
        .rev()
        .find(|s| s.k_median >= min_k && s.singleton_fraction <= max_singleton_fraction)
        .map(|s| s.len);
    (profile, best)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p64(s: &str) -> Ipv6Prefix {
        s.parse().unwrap()
    }

    /// Netcologne-style: each subscriber owns a whole /48; all 64 of them
    /// sit inside one /40 pool (group 3 = subscriber index, < 256).
    fn slash48_world() -> Vec<(u32, Ipv6Prefix)> {
        (0..64u32)
            .map(|sub| (sub, p64(&format!("2001:4dd0:{:x}::/64", sub))))
            .collect()
    }

    /// DTAG-style: /56 delegations, 256 subscribers per /48.
    fn slash56_world() -> Vec<(u32, Ipv6Prefix)> {
        (0..512u32)
            .map(|sub| {
                let group3 = sub; // sub i gets 2003:0:<i/256>:<(i%256)<<8>::/64
                (
                    sub,
                    p64(&format!(
                        "2003:0:{:x}:{:x}00::/64",
                        group3 / 256,
                        group3 % 256
                    )),
                )
            })
            .collect()
    }

    #[test]
    fn slash48_truncation_fails_for_slash48_delegations() {
        let obs = slash48_world();
        let s = audit_truncation(&obs, 48).unwrap();
        assert_eq!(s.k_median, 1, "every /48 bucket is one subscriber");
        assert!((s.singleton_fraction - 1.0).abs() < 1e-9);
        // A /40 aggregates 256 such subscribers.
        let s40 = audit_truncation(&obs, 40).unwrap();
        assert!(s40.k_median >= 64usize);
        assert!(s40.singleton_fraction < 0.01);
    }

    #[test]
    fn slash48_truncation_is_fine_for_slash56_delegations() {
        let obs = slash56_world();
        let s = audit_truncation(&obs, 48).unwrap();
        assert!(s.k_median >= 200, "{s:?}");
        assert_eq!(s.singleton_fraction, 0.0);
    }

    #[test]
    fn recommendation_depends_on_delegation_practice() {
        let (_, best48_world) =
            recommend_truncation(&slash48_world(), (32..=56).step_by(4), 20, 0.05);
        let (_, best56_world) =
            recommend_truncation(&slash56_world(), (32..=56).step_by(4), 20, 0.05);
        let a = best48_world.expect("some safe length exists");
        let b = best56_world.expect("some safe length exists");
        assert!(a < 48, "Netcologne-style world needs shorter than /48: {a}");
        assert!(b >= 48, "DTAG-style world can keep /48: {b}");
    }

    #[test]
    fn multiple_observations_per_subscriber_do_not_inflate_k() {
        // One subscriber seen under many /64s of its own /48 is still k=1.
        let obs: Vec<(u32, Ipv6Prefix)> = (0..16u32)
            .map(|i| (7, p64(&format!("2001:4dd0:1:{:x}00::/64", i))))
            .collect();
        let s = audit_truncation(&obs, 48).unwrap();
        assert_eq!(s.buckets, 1);
        assert_eq!(s.k_min, 1);
        assert_eq!(s.k_median, 1);
    }

    #[test]
    fn empty_input() {
        assert!(audit_truncation(&[], 48).is_none());
        let (profile, best) = recommend_truncation(&[], 32..=56, 2, 0.1);
        assert!(profile.is_empty());
        assert!(best.is_none());
    }
}
