//! Assignment spans and sandwiched durations.
//!
//! Section 3.1: "we detect assignment changes for a given probe by
//! identifying when the reported IPv4 address (or /64 IPv6 prefix) differs
//! from the previous one. We infer the duration of an assignment by
//! calculating how long the assignment was continuously observed between
//! changes. Since we restrict ourselves to observing durations only when an
//! assignment is sandwiched between changes, we observe the exact duration
//! (at hourly granularity) of an assignment."

use dynamips_atlas::ProbeId;
use dynamips_atlas::{EchoV4, EchoV6};
use dynamips_netaddr::Ipv6Prefix;
use dynamips_netsim::SimTime;
use dynamips_routing::Asn;
use std::net::Ipv4Addr;

/// A maximal run of identical consecutive observations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Span<T> {
    /// The observed value (address or /64 prefix).
    pub value: T,
    /// First observation time.
    pub first: SimTime,
    /// Last observation time.
    pub last: SimTime,
}

/// Build spans from a time-ordered observation stream. A new span starts
/// whenever the value differs from the immediately preceding observation;
/// measurement gaps with the same value on both sides do *not* split a span
/// (a change is only inferred when the reported value actually differs).
pub fn spans_of<T: PartialEq + Copy>(obs: impl Iterator<Item = (SimTime, T)>) -> Vec<Span<T>> {
    let mut out: Vec<Span<T>> = Vec::new();
    for (t, v) in obs {
        match out.last_mut() {
            Some(span) if span.value == v => span.last = t,
            _ => out.push(Span {
                value: v,
                first: t,
                last: t,
            }),
        }
    }
    out
}

/// Durations (in hours) of spans sandwiched between observed changes:
/// span `i` qualifies for `1 <= i <= len-2`, and its duration is the time
/// from its first observation to the change that ended it.
pub fn sandwiched_durations<T: PartialEq + Copy>(spans: &[Span<T>]) -> Vec<u64> {
    if spans.len() < 3 {
        return Vec::new();
    }
    spans
        .windows(2)
        .skip(1)
        .take(spans.len() - 2)
        .map(|w| w[1].first - w[0].first)
        .collect()
}

/// Number of observed changes (span boundaries).
pub fn change_count<T>(spans: &[Span<T>]) -> usize {
    spans.len().saturating_sub(1)
}

/// One probe's cleaned assignment history — the unit every downstream
/// analysis consumes. Produced by the sanitizer.
#[derive(Debug, Clone)]
pub struct ProbeHistory {
    /// Original probe id.
    pub probe: ProbeId,
    /// Virtual-probe index (Appendix A.1 splits probes that switched ISP
    /// into one "virtual probe" per AS).
    pub virtual_index: u8,
    /// The AS this (virtual) probe was observed in.
    pub asn: Asn,
    /// IPv4 address spans.
    pub v4: Vec<Span<Ipv4Addr>>,
    /// IPv6 /64 spans.
    pub v6: Vec<Span<Ipv6Prefix>>,
}

impl ProbeHistory {
    /// Observation span in hours across both families.
    pub fn observed_hours(&self) -> u64 {
        let first = self
            .v4
            .first()
            .map(|s| s.first)
            .into_iter()
            .chain(self.v6.first().map(|s| s.first))
            .min();
        let last = self
            .v4
            .last()
            .map(|s| s.last)
            .into_iter()
            .chain(self.v6.last().map(|s| s.last))
            .max();
        match (first, last) {
            (Some(a), Some(b)) => b - a,
            _ => 0,
        }
    }

    /// Whether the probe reported IPv6 throughout (coverage of v6
    /// observations over the probe's observed window ≥ `min_coverage`).
    pub fn is_dual_stack(&self, min_coverage: f64) -> bool {
        if self.v6.is_empty() || self.v4.is_empty() {
            return false;
        }
        let covered: u64 = self.v6.iter().map(|s| s.last - s.first + 1).sum();
        let span = self.observed_hours() + 1;
        covered as f64 >= min_coverage * span as f64
    }
}

/// Build spans for the two families of an echo series.
pub fn histories_from_records(
    v4: &[EchoV4],
    v6: &[EchoV6],
) -> (Vec<Span<Ipv4Addr>>, Vec<Span<Ipv6Prefix>>) {
    let v4_spans = spans_of(v4.iter().map(|r| (r.time, r.client)));
    let v6_spans = spans_of(
        v6.iter()
            .map(|r| (r.time, Ipv6Prefix::slash64_of(r.client))),
    );
    (v4_spans, v6_spans)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obs(points: &[(u64, u32)]) -> Vec<(SimTime, u32)> {
        points.iter().map(|&(t, v)| (SimTime(t), v)).collect()
    }

    #[test]
    fn spans_merge_consecutive_identical_values() {
        let s = spans_of(obs(&[(0, 1), (1, 1), (2, 1), (3, 2), (4, 2)]).into_iter());
        assert_eq!(
            s,
            vec![
                Span {
                    value: 1,
                    first: SimTime(0),
                    last: SimTime(2)
                },
                Span {
                    value: 2,
                    first: SimTime(3),
                    last: SimTime(4)
                },
            ]
        );
        assert_eq!(change_count(&s), 1);
    }

    #[test]
    fn gaps_with_same_value_do_not_split() {
        // Hours 0,1 then a gap, then 5,6 with the same value.
        let s = spans_of(obs(&[(0, 7), (1, 7), (5, 7), (6, 7)]).into_iter());
        assert_eq!(s.len(), 1);
        assert_eq!(s[0].first, SimTime(0));
        assert_eq!(s[0].last, SimTime(6));
    }

    #[test]
    fn value_revisits_create_new_spans() {
        let s = spans_of(obs(&[(0, 1), (1, 2), (2, 1)]).into_iter());
        assert_eq!(s.len(), 3);
        assert_eq!(change_count(&s), 2);
    }

    #[test]
    fn sandwiched_durations_require_changes_on_both_sides() {
        // Spans: A(0..9) B(10..19) C(20..29) D(30..39).
        let pts: Vec<(u64, u32)> = (0..40).map(|t| (t, (t / 10) as u32)).collect();
        let s = spans_of(obs(&pts).into_iter());
        assert_eq!(s.len(), 4);
        // Only B and C are sandwiched; each lasted exactly 10 hours.
        assert_eq!(sandwiched_durations(&s), vec![10, 10]);
    }

    #[test]
    fn too_few_spans_yield_no_durations() {
        let s = spans_of(obs(&[(0, 1), (5, 2)]).into_iter());
        assert!(sandwiched_durations(&s).is_empty());
        let s = spans_of(obs(&[(0, 1)]).into_iter());
        assert!(sandwiched_durations(&s).is_empty());
        assert_eq!(change_count(&s), 0);
    }

    #[test]
    fn duration_measured_to_observed_change_across_gap() {
        // A at 0..=9, B at 10..=19, gap, B ends with change to C at 25.
        let mut pts: Vec<(u64, u32)> = (0..10).map(|t| (t, 1)).collect();
        pts.extend((10..20).map(|t| (t, 2)));
        pts.push((25, 3));
        pts.push((26, 3));
        pts.push((27, 4));
        let s = spans_of(obs(&pts).into_iter());
        // B's duration: from first observation (10) to the change observed
        // at 25.
        assert_eq!(sandwiched_durations(&s), vec![15, 2]);
    }

    #[test]
    fn dual_stack_coverage_classification() {
        let v4 = vec![Span {
            value: Ipv4Addr::new(1, 1, 1, 1),
            first: SimTime(0),
            last: SimTime(99),
        }];
        let v6_full = vec![Span {
            value: "2001:db8::/64".parse::<Ipv6Prefix>().unwrap(),
            first: SimTime(0),
            last: SimTime(99),
        }];
        let h = ProbeHistory {
            probe: ProbeId(1),
            virtual_index: 0,
            asn: Asn(1),
            v4: v4.clone(),
            v6: v6_full,
        };
        assert!(h.is_dual_stack(0.8));

        let v6_partial = vec![Span {
            value: "2001:db8::/64".parse::<Ipv6Prefix>().unwrap(),
            first: SimTime(0),
            last: SimTime(20),
        }];
        let h = ProbeHistory {
            probe: ProbeId(1),
            virtual_index: 0,
            asn: Asn(1),
            v4,
            v6: v6_partial,
        };
        assert!(!h.is_dual_stack(0.8), "only 21% v6 coverage");
        assert!(h.is_dual_stack(0.2));
    }

    #[test]
    fn histories_extract_slash64() {
        let v6 = vec![EchoV6 {
            time: SimTime(0),
            client: "2003:40:a0:aa00:225:96ff:fe12:3456".parse().unwrap(),
            src: "2003:40:a0:aa00:225:96ff:fe12:3456".parse().unwrap(),
        }];
        let (_, spans) = histories_from_records(&[], &v6);
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].value.to_string(), "2003:40:a0:aa00::/64");
    }

    #[test]
    fn observed_hours_spans_both_families() {
        let h = ProbeHistory {
            probe: ProbeId(1),
            virtual_index: 0,
            asn: Asn(1),
            v4: vec![Span {
                value: Ipv4Addr::new(1, 1, 1, 1),
                first: SimTime(10),
                last: SimTime(50),
            }],
            v6: vec![Span {
                value: "2001:db8::/64".parse().unwrap(),
                first: SimTime(0),
                last: SimTime(30),
            }],
        };
        assert_eq!(h.observed_hours(), 50);
    }
}
