//! Machine-readable performance records (`BENCH_all.json`).
//!
//! The experiment engine emits one [`PerfRecord`] per `dynamips all` run so
//! the repo accumulates a perf trajectory alongside the Criterion benches.
//! The build is offline (no serde), so the record carries its own writer
//! and a parser for exactly this schema; the parser exists so tests — and
//! future bench tooling comparing runs — can round-trip the file without a
//! JSON dependency.

/// Schema tag written into every record, bumped on layout changes.
pub(crate) const PERF_SCHEMA: &str = "dynamips-bench-v1";

/// One named wall-time measurement, milliseconds.
#[derive(Debug, Clone, PartialEq)]
pub struct PerfEntry {
    /// Phase or artifact name.
    pub name: String,
    /// Wall time, milliseconds.
    pub ms: f64,
}

/// A whole-run performance record: the shared pipeline phases (world
/// builds, collection+analysis) and the per-artifact render times.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct PerfRecord {
    /// Master seed of the run.
    pub seed: u64,
    /// Atlas probe-count scale.
    pub atlas_scale: f64,
    /// CDN subscriber-count scale.
    pub cdn_scale: f64,
    /// Worker threads the engine used.
    pub workers: usize,
    /// Distinct worlds actually constructed (the cache's build count).
    pub worlds_built: usize,
    /// End-to-end wall time, milliseconds.
    pub total_ms: f64,
    /// Shared phases in execution order (world build, collect, analyze).
    pub phases: Vec<PerfEntry>,
    /// Per-artifact render wall times in request order.
    pub artifacts: Vec<PerfEntry>,
}

fn push_entries(out: &mut String, key: &str, entries: &[PerfEntry]) {
    out.push_str(&format!("  \"{key}\": [\n"));
    for (i, e) in entries.iter().enumerate() {
        let comma = if i + 1 == entries.len() { "" } else { "," };
        out.push_str(&format!(
            "    {{\"name\": \"{}\", \"ms\": {:.3}}}{comma}\n",
            escape(&e.name),
            e.ms
        ));
    }
    out.push_str("  ]");
}

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

impl PerfRecord {
    /// Serialize to the `BENCH_all.json` document.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str(&format!("  \"schema\": \"{PERF_SCHEMA}\",\n"));
        out.push_str(&format!("  \"seed\": {},\n", self.seed));
        out.push_str(&format!("  \"atlas_scale\": {},\n", self.atlas_scale));
        out.push_str(&format!("  \"cdn_scale\": {},\n", self.cdn_scale));
        out.push_str(&format!("  \"workers\": {},\n", self.workers));
        out.push_str(&format!("  \"worlds_built\": {},\n", self.worlds_built));
        out.push_str(&format!("  \"total_ms\": {:.3},\n", self.total_ms));
        push_entries(&mut out, "phases", &self.phases);
        out.push_str(",\n");
        push_entries(&mut out, "artifacts", &self.artifacts);
        out.push_str("\n}\n");
        out
    }

    /// Parse a document produced by [`PerfRecord::to_json`]. Returns an
    /// error string naming the first field that failed.
    pub fn parse(json: &str) -> Result<PerfRecord, String> {
        let schema = scalar(json, "schema")?;
        let schema = schema.trim_matches('"');
        if schema != PERF_SCHEMA {
            return Err(format!("unknown schema {schema:?}"));
        }
        Ok(PerfRecord {
            seed: scalar(json, "seed")?
                .parse()
                .map_err(|e| format!("seed: {e}"))?,
            atlas_scale: scalar(json, "atlas_scale")?
                .parse()
                .map_err(|e| format!("atlas_scale: {e}"))?,
            cdn_scale: scalar(json, "cdn_scale")?
                .parse()
                .map_err(|e| format!("cdn_scale: {e}"))?,
            workers: scalar(json, "workers")?
                .parse()
                .map_err(|e| format!("workers: {e}"))?,
            worlds_built: scalar(json, "worlds_built")?
                .parse()
                .map_err(|e| format!("worlds_built: {e}"))?,
            total_ms: scalar(json, "total_ms")?
                .parse()
                .map_err(|e| format!("total_ms: {e}"))?,
            phases: entries(json, "phases")?,
            artifacts: entries(json, "artifacts")?,
        })
    }
}

/// Compare a candidate bench record against a checked-in baseline and
/// report every regression as a human-readable violation string (empty
/// means the candidate passes).
///
/// The baseline's *phase names* carry the comparison direction:
/// names ending in `-rps` are floors (throughput must not drop below
/// the baseline) and names ending in `-ms` are ceilings (latency must
/// not rise above it). A baseline phase the candidate does not report
/// is itself a violation — silently dropping a metric is how
/// regressions hide. Phases with any other suffix, and everything the
/// candidate reports beyond the baseline, are ignored, so a baseline
/// constrains exactly the metrics it names.
pub fn regression_violations(candidate: &PerfRecord, baseline: &PerfRecord) -> Vec<String> {
    let mut violations = Vec::new();
    for bound in &baseline.phases {
        let Some(got) = candidate.phases.iter().find(|p| p.name == bound.name) else {
            if bound.name.ends_with("-rps") || bound.name.ends_with("-ms") {
                violations.push(format!(
                    "{}: baseline bounds it at {:.3} but the candidate does not report it",
                    bound.name, bound.ms
                ));
            }
            continue;
        };
        if bound.name.ends_with("-rps") && got.ms < bound.ms {
            violations.push(format!(
                "{}: {:.3} is below the baseline floor {:.3}",
                bound.name, got.ms, bound.ms
            ));
        } else if bound.name.ends_with("-ms") && got.ms > bound.ms {
            violations.push(format!(
                "{}: {:.3} exceeds the baseline ceiling {:.3}",
                bound.name, got.ms, bound.ms
            ));
        }
    }
    violations
}

/// Extract the raw token after `"key":` up to the next `,`, `\n` or `}`.
fn scalar<'a>(json: &'a str, key: &str) -> Result<&'a str, String> {
    let tag = format!("\"{key}\":");
    let start = json.find(&tag).ok_or_else(|| format!("missing {key:?}"))? + tag.len();
    let rest = &json[start..];
    let end = rest.find([',', '\n', '}']).unwrap_or(rest.len());
    Ok(rest[..end].trim())
}

/// Extract the `[...]` array after `"key":` and parse its entry objects.
fn entries(json: &str, key: &str) -> Result<Vec<PerfEntry>, String> {
    let tag = format!("\"{key}\": [");
    let start = json.find(&tag).ok_or_else(|| format!("missing {key:?}"))? + tag.len();
    let body = &json[start..];
    let end = body
        .find(']')
        .ok_or_else(|| format!("unterminated {key:?}"))?;
    let mut out = Vec::new();
    for obj in body[..end].split('{').skip(1) {
        let name = scalar(obj, "name")?.trim_end_matches('}').trim();
        let name = name
            .strip_prefix('"')
            .and_then(|n| n.strip_suffix('"'))
            .unwrap_or(name)
            .replace("\\\"", "\"")
            .replace("\\\\", "\\");
        let ms = scalar(obj, "ms")?
            .trim_end_matches('}')
            .trim()
            .parse()
            .map_err(|e| format!("{key} ms: {e}"))?;
        out.push(PerfEntry { name, ms });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record() -> PerfRecord {
        PerfRecord {
            seed: 2020,
            atlas_scale: 0.2,
            cdn_scale: 0.15,
            workers: 4,
            worlds_built: 2,
            total_ms: 1234.5,
            phases: vec![
                PerfEntry {
                    name: "atlas-world".into(),
                    ms: 100.25,
                },
                PerfEntry {
                    name: "atlas-analysis".into(),
                    ms: 900.0,
                },
            ],
            artifacts: vec![
                PerfEntry {
                    name: "table1".into(),
                    ms: 1.5,
                },
                PerfEntry {
                    name: "fig8".into(),
                    ms: 0.75,
                },
            ],
        }
    }

    #[test]
    fn json_round_trips() {
        let r = record();
        let json = r.to_json();
        assert!(json.contains("\"schema\": \"dynamips-bench-v1\""));
        let back = PerfRecord::parse(&json).unwrap();
        assert_eq!(back.seed, r.seed);
        assert_eq!(back.workers, 4);
        assert_eq!(back.worlds_built, 2);
        assert_eq!(back.phases, r.phases);
        assert_eq!(back.artifacts, r.artifacts);
        assert!((back.total_ms - r.total_ms).abs() < 1e-9);
        assert!((back.atlas_scale - 0.2).abs() < 1e-12);
    }

    #[test]
    fn empty_entry_lists_round_trip() {
        let r = PerfRecord {
            seed: 1,
            workers: 1,
            ..Default::default()
        };
        let back = PerfRecord::parse(&r.to_json()).unwrap();
        assert!(back.phases.is_empty());
        assert!(back.artifacts.is_empty());
    }

    #[test]
    fn parse_rejects_wrong_schema_and_garbage() {
        assert!(PerfRecord::parse("{}").is_err());
        let bad = record().to_json().replace("dynamips-bench-v1", "v999");
        let err = PerfRecord::parse(&bad).unwrap_err();
        assert!(err.contains("v999"), "{err}");
    }

    fn bench(phases: &[(&str, f64)]) -> PerfRecord {
        PerfRecord {
            phases: phases
                .iter()
                .map(|(name, ms)| PerfEntry {
                    name: (*name).into(),
                    ms: *ms,
                })
                .collect(),
            ..Default::default()
        }
    }

    #[test]
    fn regression_violations_treat_rps_as_floors_and_ms_as_ceilings() {
        let baseline = bench(&[
            ("latency-p99-ms", 2000.0),
            ("throughput-rps", 100.0),
            ("late-sends", 5.0), // no -ms/-rps suffix: unconstrained
        ]);
        let good = bench(&[("latency-p99-ms", 1500.0), ("throughput-rps", 250.0)]);
        assert!(regression_violations(&good, &baseline).is_empty());

        let slow = bench(&[("latency-p99-ms", 2500.0), ("throughput-rps", 40.0)]);
        let violations = regression_violations(&slow, &baseline);
        assert_eq!(violations.len(), 2, "{violations:?}");
        assert!(violations[0].contains("exceeds the baseline ceiling"));
        assert!(violations[1].contains("below the baseline floor"));

        // Boundary values pass: the baseline is inclusive.
        let exact = bench(&[("latency-p99-ms", 2000.0), ("throughput-rps", 100.0)]);
        assert!(regression_violations(&exact, &baseline).is_empty());
    }

    #[test]
    fn missing_bounded_phases_are_violations_not_passes() {
        let baseline = bench(&[("latency-p99-ms", 2000.0), ("throughput-rps", 100.0)]);
        let silent = bench(&[("latency-p99-ms", 1.0)]);
        let violations = regression_violations(&silent, &baseline);
        assert_eq!(violations.len(), 1, "{violations:?}");
        assert!(
            violations[0].contains("does not report it"),
            "{violations:?}"
        );
    }

    #[test]
    fn names_with_quotes_survive() {
        let mut r = record();
        r.artifacts[0].name = "odd \"name\"".into();
        let back = PerfRecord::parse(&r.to_json()).unwrap();
        assert_eq!(back.artifacts[0].name, "odd \"name\"");
    }
}
