//! Year-over-year evolution of assignment durations.
//!
//! Section 3.2, "Evolution over time": "we break down durations from each
//! AS by year and investigate the cumulative total time fractions per
//! year... assignment durations across all categories (non-dual-stack,
//! dual-stack, and IPv6) have shown signs of increase over the years,
//! especially in ISPs such as DTAG and Orange."
//!
//! A duration is attributed to the year in which the assignment *started*
//! (assignments spanning a year boundary are not split — the metric is
//! about assignment behaviour in force when the address was handed out).

use crate::changes::Span;
use crate::durations::DurationSet;
use dynamips_netsim::time::Date;
use std::collections::BTreeMap;

/// Durations bucketed by calendar year of assignment start.
#[derive(Debug, Clone, Default)]
// lint:allow(dead-pub): analysis API exercised by this crate's tests; staged
// for the evolution experiments.
pub struct YearlyDurations {
    per_year: BTreeMap<i32, DurationSet>,
}

impl YearlyDurations {
    /// Create an empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add one probe's sandwiched durations, attributing each to the year
    /// its assignment began.
    // lint:allow(dead-pub): exercised by this crate's tests; see YearlyDurations.
    pub fn add_spans<T: PartialEq + Copy>(&mut self, spans: &[Span<T>]) {
        if spans.len() < 3 {
            return;
        }
        for i in 1..spans.len() - 1 {
            let start = spans[i].first;
            let duration = spans[i + 1].first - spans[i].first;
            let year = start.date().year;
            self.per_year.entry(year).or_default().push(duration);
        }
    }

    /// Years present, ascending.
    pub fn years(&self) -> Vec<i32> {
        self.per_year.keys().copied().collect()
    }

    /// Durations for one year.
    pub fn year(&self, year: i32) -> Option<&DurationSet> {
        self.per_year.get(&year)
    }

    /// The year-over-year trend statistic the paper reports: the fraction
    /// of total assigned time spent in assignments at or below `mark_hours`
    /// per year. A shrinking series means durations are growing.
    // lint:allow(dead-pub): exercised by this crate's tests; see YearlyDurations.
    pub fn short_mass_by_year(&self, mark_hours: u64) -> Vec<(i32, f64)> {
        self.per_year
            .iter()
            .map(|(y, set)| (*y, set.cumulative_ttf_at(&[mark_hours])[0]))
            .collect()
    }

    /// Linear trend (least-squares slope per year) of the short-duration
    /// mass. Negative = durations increasing over time.
    // lint:allow(dead-pub): exercised by this crate's tests; see YearlyDurations.
    pub fn trend_slope(&self, mark_hours: u64) -> Option<f64> {
        self.trend_slope_until(mark_hours, i32::MAX)
    }

    /// [`YearlyDurations::trend_slope`] restricted to years strictly before
    /// `last_year_exclusive` — used to drop the right-censored partial year
    /// at the end of an observation window.
    // lint:allow(dead-pub): exercised by this crate's tests; see YearlyDurations.
    pub fn trend_slope_until(&self, mark_hours: u64, last_year_exclusive: i32) -> Option<f64> {
        let pts: Vec<(i32, f64)> = self
            .short_mass_by_year(mark_hours)
            .into_iter()
            .filter(|(y, _)| *y < last_year_exclusive)
            .collect();
        let pts: Vec<(f64, f64)> = pts
            .into_iter()
            .filter(|(_, m)| m.is_finite())
            .map(|(y, m)| (y as f64, m))
            .collect();
        if pts.len() < 2 {
            return None;
        }
        let n = pts.len() as f64;
        let sx: f64 = pts.iter().map(|(x, _)| x).sum();
        let sy: f64 = pts.iter().map(|(_, y)| y).sum();
        let sxx: f64 = pts.iter().map(|(x, _)| x * x).sum();
        let sxy: f64 = pts.iter().map(|(x, y)| x * y).sum();
        let denom = n * sxx - sx * sx;
        if denom.abs() < f64::EPSILON {
            return None;
        }
        Some((n * sxy - sx * sy) / denom)
    }
}

/// Point-in-time survival: does the assignment active at `t` remain in
/// place for at least `horizon_hours` more? `None` when the subject was
/// not observed with an assignment at `t`, or when `t + horizon` reaches
/// past the last observation (the outcome would be censored).
///
/// This is the censoring-robust statistic for year-over-year comparisons:
/// unlike per-year duration masses, it only needs `horizon` hours of
/// lookahead, so every year of a window except its very end is measured
/// on equal footing.
pub(crate) fn survives_at<T: PartialEq + Copy>(
    spans: &[Span<T>],
    t: dynamips_netsim::SimTime,
    horizon_hours: u64,
) -> Option<bool> {
    let idx = spans.partition_point(|s| s.first <= t);
    let span = spans.get(idx.checked_sub(1)?)?;
    if t > span.last {
        return None; // offline at t
    }
    if span.last >= t + horizon_hours {
        return Some(true);
    }
    // The span ended within the horizon: survived only if no *change*
    // followed (i.e. the next span has the same value — a gap — which
    // span construction already merges, so any next span is a change).
    // If the span simply ends because observation ended, the outcome is
    // censored.
    // A following span means an observed change (span construction merges
    // same-value gaps); no following span means observation ended and the
    // outcome is censored.
    spans.get(idx).map(|_| false)
}

/// Yearly survival shares: for each year, the fraction of subjects whose
/// mid-year assignment survived at least `horizon_hours` more. Rising
/// shares mean durations are growing.
#[derive(Debug, Clone, Default)]
pub struct YearlySurvival {
    per_year: BTreeMap<i32, (usize, usize)>, // (survived, total)
}

impl YearlySurvival {
    /// Create an empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sample one subject at July 1st of every year in `[first, last]`.
    pub fn add_subject<T: PartialEq + Copy>(
        &mut self,
        spans: &[Span<T>],
        first_year: i32,
        last_year: i32,
        horizon_hours: u64,
    ) {
        for year in first_year..=last_year {
            let t = dynamips_netsim::SimTime::from_date(Date::new(year, 7, 1));
            if let Some(survived) = survives_at(spans, t, horizon_hours) {
                let e = self.per_year.entry(year).or_insert((0, 0));
                e.1 += 1;
                if survived {
                    e.0 += 1;
                }
            }
        }
    }

    /// `(year, survival share, sample count)` rows.
    pub fn shares(&self) -> Vec<(i32, f64, usize)> {
        self.per_year
            .iter()
            .filter(|(_, (_, n))| *n > 0)
            .map(|(y, (s, n))| (*y, *s as f64 / *n as f64, *n))
            .collect()
    }
}

/// Convenience: the calendar year a simulation hour falls in.
// lint:allow(dead-pub): exercised by this crate's tests; see YearlyDurations.
pub fn year_of_hour(hours: u64) -> i32 {
    Date::from_days_since_epoch(hours / 24).year
}

#[cfg(test)]
mod tests {
    use super::*;
    use dynamips_netsim::time::{Date, SimTime};

    fn hourly_spans(changes: &[(i32, u8, u8, u32)]) -> Vec<Span<u32>> {
        // (year, month, day, value) change points; each span runs to the
        // next change.
        let mut out = Vec::new();
        for w in changes.windows(2) {
            let (y, m, d, v) = w[0];
            let (y2, m2, d2, _) = w[1];
            out.push(Span {
                value: v,
                first: SimTime::from_date(Date::new(y, m, d)),
                last: SimTime(SimTime::from_date(Date::new(y2, m2, d2)).hours() - 1),
            });
        }
        let (y, m, d, v) = *changes.last().unwrap();
        out.push(Span {
            value: v,
            first: SimTime::from_date(Date::new(y, m, d)),
            last: SimTime::from_date(Date::new(y, m, d)) + 24,
        });
        out
    }

    #[test]
    fn durations_attributed_to_start_year() {
        let spans = hourly_spans(&[
            (2015, 1, 1, 1),
            (2015, 6, 1, 2),  // starts 2015, lasts ~7 months into 2016
            (2016, 1, 10, 3), // starts 2016
            (2016, 3, 1, 4),
        ]);
        let mut y = YearlyDurations::new();
        y.add_spans(&spans);
        assert_eq!(y.years(), vec![2015, 2016]);
        assert_eq!(y.year(2015).unwrap().len(), 1);
        assert_eq!(y.year(2016).unwrap().len(), 1);
        // The 2015 duration spans the year boundary but is not split.
        let d2015 = y.year(2015).unwrap().raw()[0];
        assert_eq!(d2015, (223) * 24); // Jun 1 2015 -> Jan 10 2016
    }

    #[test]
    fn short_mass_decreases_when_durations_grow() {
        let mut y = YearlyDurations::new();
        // 2015: all 1-day durations; 2017: all 1-week; 2019: all 1-month.
        for (year, dur, n) in [(2015, 24u64, 50), (2017, 168, 50), (2019, 720, 50)] {
            let start = SimTime::from_date(Date::new(year, 2, 1));
            let mut spans = vec![Span {
                value: 0u32,
                first: SimTime(start.hours() - 48),
                last: SimTime(start.hours() - 1),
            }];
            for i in 0..n {
                spans.push(Span {
                    value: i + 1,
                    first: SimTime(start.hours() + i as u64 * dur),
                    last: SimTime(start.hours() + (i as u64 + 1) * dur - 1),
                });
            }
            y.add_spans(&spans);
        }
        let mass = y.short_mass_by_year(24);
        let by_year: std::collections::HashMap<i32, f64> = mass.into_iter().collect();
        assert!(by_year[&2015] > 0.9);
        assert!(by_year[&2017] < 0.1);
        assert!(by_year[&2019] < 0.05);
        // Long-duration spans spill into later (all-zero-mass) years, which
        // flattens the regression; the sign and a clear magnitude remain.
        let slope = y.trend_slope(24).unwrap();
        assert!(slope < -0.05, "durations grow => short mass falls: {slope}");
    }

    #[test]
    fn trend_needs_two_years() {
        let mut y = YearlyDurations::new();
        assert!(y.trend_slope(24).is_none());
        let start = SimTime::from_date(Date::new(2016, 1, 1));
        let spans: Vec<Span<u32>> = (0..5)
            .map(|i| Span {
                value: i,
                first: SimTime(start.hours() + i as u64 * 24),
                last: SimTime(start.hours() + (i as u64 + 1) * 24 - 1),
            })
            .collect();
        y.add_spans(&spans);
        assert!(y.trend_slope(24).is_none(), "single year has no trend");
    }

    #[test]
    fn year_of_hour_maps_epoch_correctly() {
        assert_eq!(year_of_hour(0), 2014);
        assert_eq!(year_of_hour(365 * 24), 2015);
        assert_eq!(
            year_of_hour(SimTime::from_date(Date::new(2020, 5, 31)).hours()),
            2020
        );
    }

    #[test]
    fn survival_semantics() {
        use super::survives_at;
        // One assignment 0..1000h, then a change, then 1000..1200h.
        let spans = vec![
            Span {
                value: 1u32,
                first: SimTime(0),
                last: SimTime(999),
            },
            Span {
                value: 2,
                first: SimTime(1000),
                last: SimTime(1200),
            },
        ];
        // Sampled early: survives a 336h horizon.
        assert_eq!(survives_at(&spans, SimTime(100), 336), Some(true));
        // Sampled 100h before the change: does not survive 336h.
        assert_eq!(survives_at(&spans, SimTime(900), 336), Some(false));
        // Sampled in the last span near the observation end: censored.
        assert_eq!(survives_at(&spans, SimTime(1100), 336), None);
        // Sampled before any observation: undefined.
        assert_eq!(survives_at(&spans, SimTime(1500), 336), None);
        assert_eq!(survives_at::<u32>(&[], SimTime(0), 336), None);
    }

    #[test]
    fn yearly_survival_tracks_policy_change() {
        use super::YearlySurvival;
        // Daily renumbering through 2015-2016, stable from 2017 on.
        let mut spans: Vec<Span<u32>> = Vec::new();
        let start = SimTime::from_date(Date::new(2015, 1, 1)).hours();
        let switch = SimTime::from_date(Date::new(2017, 1, 1)).hours();
        let end = SimTime::from_date(Date::new(2019, 12, 31)).hours();
        let mut v = 0u32;
        let mut t = start;
        while t < switch {
            spans.push(Span {
                value: v,
                first: SimTime(t),
                last: SimTime(t + 23),
            });
            v += 1;
            t += 24;
        }
        spans.push(Span {
            value: v,
            first: SimTime(switch),
            last: SimTime(end),
        });
        let mut ys = YearlySurvival::new();
        ys.add_subject(&spans, 2015, 2019, 14 * 24);
        let shares: std::collections::HashMap<i32, f64> =
            ys.shares().into_iter().map(|(y, s, _)| (y, s)).collect();
        assert_eq!(shares[&2015], 0.0);
        assert_eq!(shares[&2016], 0.0);
        assert_eq!(shares[&2017], 1.0);
        assert_eq!(shares[&2018], 1.0);
    }

    #[test]
    fn too_few_spans_are_ignored() {
        let mut y = YearlyDurations::new();
        y.add_spans(&[Span {
            value: 1u32,
            first: SimTime(0),
            last: SimTime(10),
        }]);
        assert!(y.years().is_empty());
    }
}
