//! Boundary-guided target generation for active IPv6 scanning.
//!
//! Sections 2.3 and 6: hitlist curation and target generation (6Gen,
//! Entropy/IP) "rely on address sets of sufficient volume to identify
//! structure and could be augmented with our findings". This module does
//! that augmentation: given seed /64s observed in a network, plus the
//! pool and subscriber boundaries the DynamIPs analyses infer, it
//! enumerates candidate /64s ordered by how likely a renumbered target is
//! to reappear there.

use crate::changes::ProbeHistory;
use crate::poolinfer::infer_pool_boundary;
use crate::subscriber::infer_subscriber_len_mode;
use dynamips_netaddr::{common_prefix_len_v6, Ipv6Prefix};
use std::collections::HashSet;

/// A target-generation plan for one network.
#[derive(Debug, Clone, PartialEq)]
pub struct ScanPlan {
    /// Inferred dynamic-pool prefix length (e.g. 40).
    pub pool_len: u8,
    /// Inferred per-subscriber delegated prefix length (e.g. 56).
    pub subscriber_len: u8,
    /// The pool prefixes the seeds fall into.
    pub pools: Vec<Ipv6Prefix>,
    /// /64s to probe per pool if enumerated exhaustively (one per
    /// delegated prefix, zero-suffixed).
    pub targets_per_pool: u64,
}

impl ScanPlan {
    /// Derive a plan from probe histories (for boundary inference) and the
    /// seed /64s to relocate.
    pub fn derive(histories: &[&ProbeHistory], seeds: &[Ipv6Prefix]) -> Option<ScanPlan> {
        // Prefer the unique-pool-count estimator; fall back to the spatial
        // one (10th-percentile CPL between successive assignments, the
        // Figure-5 reading) for low-churn networks where few probes are
        // informative enough for the former.
        let pool_len = infer_pool_boundary(histories, 16..=56, 4, 0.85)
            .map(|b| b.pool_len)
            .or_else(|| cpl_percentile_pool_len(histories))?;
        let subscriber_len = infer_subscriber_len_mode(histories.iter().copied())?;
        let subscriber_len = subscriber_len.max(pool_len);
        let mut pools: Vec<Ipv6Prefix> = seeds
            .iter()
            .map(|s| s.supernet(pool_len).unwrap_or(*s))
            // lint:allow(determinism-taint): dedup only; sorted right after
            .collect::<HashSet<_>>()
            .into_iter()
            .collect();
        pools.sort();
        let span = subscriber_len - pool_len;
        let targets_per_pool = if span >= 64 { u64::MAX } else { 1u64 << span };
        Some(ScanPlan {
            pool_len,
            subscriber_len,
            pools,
            targets_per_pool,
        })
    }

    /// Enumerate up to `limit` candidate /64 targets: the zero /64 of every
    /// delegated-prefix slot in every seed pool. Pools are interleaved
    /// round-robin so a budget-limited prefix of the list still spreads
    /// over all seed pools.
    pub fn targets(&self, limit: usize) -> Vec<Ipv6Prefix> {
        let mut out = Vec::with_capacity(limit.min(4096));
        if self.pools.is_empty() {
            return out;
        }
        let per_pool: Vec<u64> = self
            .pools
            .iter()
            .map(|p| p.num_subprefixes(self.subscriber_len).unwrap_or(0))
            .collect();
        let max_count = per_pool.iter().copied().max().unwrap_or(0);
        'outer: for i in 0..max_count {
            for (pool, count) in self.pools.iter().zip(&per_pool) {
                if i >= *count {
                    continue;
                }
                if out.len() >= limit {
                    break 'outer;
                }
                // Both lookups are in range by construction of per_pool;
                // skip the slot rather than panic if the invariant slips.
                let Ok(delegated) = pool.nth_subprefix(self.subscriber_len, i) else {
                    continue;
                };
                let Ok(target) = delegated.nth_subprefix(64, 0) else {
                    continue;
                };
                out.push(target);
            }
        }
        out
    }

    /// Whether a /64 would be hit by this plan's (possibly huge) target
    /// list without materializing it: it must sit in a seed pool and be the
    /// zero /64 of its delegated-prefix slot.
    pub fn covers(&self, p64: &Ipv6Prefix) -> bool {
        let pool = match p64.supernet(self.pool_len) {
            Ok(p) => p,
            Err(_) => return false,
        };
        if !self.pools.contains(&pool) {
            return false;
        }
        let zero_bits = dynamips_netaddr::trailing_zero_bits_v6(p64);
        zero_bits >= 64 - self.subscriber_len
    }

    /// Fraction of `actual` /64s covered (analytic version of
    /// [`hit_rate`] over the full, unenumerated target list).
    pub fn coverage(&self, actual: &[Ipv6Prefix]) -> f64 {
        if actual.is_empty() {
            return 0.0;
        }
        let hits = actual.iter().filter(|p| self.covers(p)).count();
        hits as f64 / actual.len() as f64
    }

    /// Scan-space reduction factor relative to blindly enumerating /64s in
    /// `announced` (the BGP aggregate).
    pub fn reduction_vs(&self, announced: &Ipv6Prefix) -> f64 {
        let blind = 2f64.powi((64 - announced.len()) as i32);
        let guided = self.pools.len() as f64 * self.targets_per_pool as f64;
        blind / guided.max(1.0)
    }
}

/// Fallback pool estimator: the 10th percentile of CPLs between successive
/// /64 assignments, capped at /56. Needs at least 10 successive pairs.
fn cpl_percentile_pool_len(histories: &[&ProbeHistory]) -> Option<u8> {
    let mut cpls: Vec<u8> = histories
        .iter()
        .flat_map(|h| {
            h.v6.windows(2)
                .map(|w| common_prefix_len_v6(&w[0].value, &w[1].value))
        })
        .collect();
    if cpls.len() < 10 {
        return None;
    }
    cpls.sort_unstable();
    Some(cpls[cpls.len() / 10].min(56))
}

/// Evaluate a target list against ground truth: what fraction of
/// `actual` /64s (e.g. the network's post-renumbering assignments) are
/// covered?
pub fn hit_rate(targets: &[Ipv6Prefix], actual: &[Ipv6Prefix]) -> f64 {
    if actual.is_empty() {
        return 0.0;
    }
    // lint:allow(determinism-taint): membership tests only; never iterated
    let set: HashSet<u128> = targets.iter().map(|t| t.bits()).collect();
    let hits = actual.iter().filter(|a| set.contains(&a.bits())).count();
    hits as f64 / actual.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::changes::Span;
    use dynamips_atlas::ProbeId;
    use dynamips_netaddr::Ipv6PrefixPool;
    use dynamips_netsim::rngutil::derive_rng;
    use dynamips_netsim::SimTime;
    use dynamips_routing::Asn;
    use rand::Rng;

    fn probe(seed: u64, pool: &str, n: usize) -> ProbeHistory {
        let mut rng = derive_rng(seed, 3);
        let pool = Ipv6PrefixPool::new(pool.parse().unwrap(), 56).unwrap();
        ProbeHistory {
            probe: ProbeId(seed as u32),
            virtual_index: 0,
            asn: Asn(64500),
            v4: vec![],
            v6: (0..n)
                .map(|i| Span {
                    value: pool
                        .prefix(rng.gen_range(0..pool.capacity()))
                        .unwrap()
                        .nth_subprefix(64, 0)
                        .unwrap(),
                    first: SimTime(i as u64 * 24),
                    last: SimTime(i as u64 * 24 + 23),
                })
                .collect(),
        }
    }

    #[test]
    fn plan_recovers_boundaries_and_enumerates_pool() {
        let histories: Vec<ProbeHistory> = (0..20u64)
            .map(|i| probe(i, "2001:db8:4000::/40", 30))
            .collect();
        let refs: Vec<&ProbeHistory> = histories.iter().collect();
        let seeds = vec![histories[0].v6[0].value];
        let plan = ScanPlan::derive(&refs, &seeds).expect("plan derived");
        assert_eq!(plan.pool_len, 40);
        assert_eq!(plan.subscriber_len, 56);
        assert_eq!(plan.pools, vec!["2001:db8:4000::/40".parse().unwrap()]);
        assert_eq!(plan.targets_per_pool, 1 << 16);

        let targets = plan.targets(100);
        assert_eq!(targets.len(), 100);
        assert_eq!(targets[0], "2001:db8:4000::/64".parse().unwrap());
        // All targets are zero-suffixed /64s inside the pool.
        for t in &targets {
            assert_eq!(t.supernet(40).unwrap(), plan.pools[0]);
            assert!(dynamips_netaddr::trailing_zero_bits_v6(t) >= 8);
        }
    }

    #[test]
    fn guided_targets_cover_future_assignments() {
        let histories: Vec<ProbeHistory> = (0..20u64)
            .map(|i| probe(i, "2001:db8:4000::/40", 30))
            .collect();
        let refs: Vec<&ProbeHistory> = histories.iter().collect();
        let seeds = vec![histories[0].v6[0].value];
        let plan = ScanPlan::derive(&refs, &seeds).unwrap();
        // "Future" assignments: more draws from the same pool.
        let future: Vec<Ipv6Prefix> = probe(999, "2001:db8:4000::/40", 50)
            .v6
            .iter()
            .map(|s| s.value)
            .collect();
        let targets = plan.targets(1 << 16);
        assert!(
            hit_rate(&targets, &future) > 0.99,
            "exhaustive pool enumeration must cover future assignments"
        );
        // The analytic coverage agrees with the enumerated hit rate.
        assert!((plan.coverage(&future) - hit_rate(&targets, &future)).abs() < 1e-9);
        assert!(plan.covers(&future[0]));
        assert!(!plan.covers(&"3fff::/64".parse().unwrap()));
        // Blind enumeration of the /32 is 2^32 /64s; the plan probes one
        // /64 per /56 slot of one /40 pool (2^16 targets): 65,536x fewer.
        let red = plan.reduction_vs(&"2001:db8::/32".parse().unwrap());
        assert!((red - 65536.0).abs() < 1.0, "{red}");
    }

    #[test]
    fn limit_caps_enumeration() {
        let histories: Vec<ProbeHistory> = (0..10u64)
            .map(|i| probe(i, "2001:db8:4000::/40", 20))
            .collect();
        let refs: Vec<&ProbeHistory> = histories.iter().collect();
        let plan = ScanPlan::derive(&refs, &[histories[0].v6[0].value]).unwrap();
        assert_eq!(plan.targets(7).len(), 7);
        assert_eq!(plan.targets(0).len(), 0);
    }

    #[test]
    fn hit_rate_empty_cases() {
        assert_eq!(hit_rate(&[], &[]), 0.0);
        let t: Ipv6Prefix = "2001:db8::/64".parse().unwrap();
        assert_eq!(hit_rate(&[t], &[]), 0.0);
        assert_eq!(hit_rate(&[], &[t]), 0.0);
        assert_eq!(hit_rate(&[t], &[t]), 1.0);
    }

    #[test]
    fn derive_needs_informative_histories() {
        let histories: Vec<ProbeHistory> = (0..3u64)
            .map(|i| probe(i, "2001:db8:4000::/40", 1))
            .collect();
        let refs: Vec<&ProbeHistory> = histories.iter().collect();
        assert!(ScanPlan::derive(&refs, &[]).is_none());
    }
}
