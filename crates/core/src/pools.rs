//! Long-term locality: unique prefixes per length per probe.
//!
//! Section 5.2 / Figure 8: "we investigate the distribution of unique
//! prefixes of various lengths observed by each RIPE Atlas probe ... most
//! probes observe less than five unique /40 prefixes over their lifetimes
//! although they observe considerably more /48s", suggesting dynamic
//! address pools commonly sized around /40.

use crate::changes::ProbeHistory;
use dynamips_routing::RoutingTable;
use std::collections::HashSet;

/// The prefix lengths Figure 8 tracks (plus the routed BGP prefix).
pub const POOL_LENGTHS: [u8; 7] = [64, 56, 48, 40, 32, 24, 16];

/// Unique-prefix counts at each tracked length for one probe, plus the
/// number of unique routed BGP prefixes its /64s fell into.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct UniquePrefixCounts {
    /// `counts[i]` = unique supernets of length `POOL_LENGTHS[i]`.
    pub counts: [usize; 7],
    /// Unique routed BGP prefixes.
    pub bgp: usize,
}

/// Count unique enclosing prefixes at every tracked length for a probe's
/// observed /64s.
pub(crate) fn unique_prefixes(
    history: &ProbeHistory,
    routing: &RoutingTable,
) -> UniquePrefixCounts {
    let mut counts = [0usize; 7];
    for (i, len) in POOL_LENGTHS.iter().enumerate() {
        let set: HashSet<u128> = history
            .v6
            .iter()
            .map(|s| s.value.supernet(*len).unwrap_or(s.value).bits())
            .collect();
        counts[i] = set.len();
    }
    let bgp: HashSet<_> = history
        .v6
        .iter()
        .filter_map(|s| routing.route_v6_prefix(&s.value).map(|(p, _)| p))
        .collect();
    UniquePrefixCounts {
        counts,
        bgp: bgp.len(),
    }
}

/// Accumulates the Figure-8 CDF inputs for one AS: for each tracked length,
/// the per-probe unique-prefix counts.
#[derive(Debug, Clone, Default)]
pub struct PoolAccumulator {
    /// `per_length[i]` = per-probe counts at `POOL_LENGTHS[i]`.
    pub per_length: [Vec<usize>; 7],
    /// Per-probe unique BGP prefix counts.
    pub bgp: Vec<usize>,
}

impl PoolAccumulator {
    /// Create an empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add one probe (only meaningful for probes with ≥ 1 v6 observation).
    pub fn add_probe(&mut self, history: &ProbeHistory, routing: &RoutingTable) {
        if history.v6.is_empty() {
            return;
        }
        let u = unique_prefixes(history, routing);
        for (i, c) in u.counts.iter().enumerate() {
            self.per_length[i].push(*c);
        }
        self.bgp.push(u.bgp);
    }

    /// Fold another accumulator's per-probe counts into this one. Every
    /// consumer sorts or counts the per-probe vectors, so merge order does
    /// not affect any derived statistic.
    pub fn merge(&mut self, other: &PoolAccumulator) {
        for (mine, theirs) in self.per_length.iter_mut().zip(other.per_length.iter()) {
            mine.extend_from_slice(theirs);
        }
        self.bgp.extend_from_slice(&other.bgp);
    }

    /// Number of probes accounted.
    pub fn probes(&self) -> usize {
        self.bgp.len()
    }

    /// Fraction of probes with at most `k` unique prefixes at tracked
    /// length index `i`.
    pub fn cdf_at(&self, i: usize, k: usize) -> f64 {
        let v = &self.per_length[i];
        if v.is_empty() {
            return 0.0;
        }
        v.iter().filter(|&&c| c <= k).count() as f64 / v.len() as f64
    }

    /// Median unique-prefix count at tracked length index `i`.
    pub fn median(&self, i: usize) -> f64 {
        self.quantile(i, 0.5)
    }

    /// Empirical quantile of the per-probe unique-prefix counts at tracked
    /// length index `i`. Shape predicates over bimodal populations (e.g.
    /// DTAG's stabilized lines vs. daily renumberers) should prefer a
    /// quantile inside the mode they assert over the median, which teeters
    /// between modes when the mix is near 50/50.
    pub fn quantile(&self, i: usize, q: f64) -> f64 {
        let mut v: Vec<f64> = self.per_length[i].iter().map(|&c| c as f64).collect();
        if v.is_empty() {
            return 0.0;
        }
        v.sort_by(f64::total_cmp);
        crate::stats::quantile_sorted(&v, q)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::changes::Span;
    use dynamips_atlas::ProbeId;
    use dynamips_netaddr::Ipv6Prefix;
    use dynamips_netsim::SimTime;
    use dynamips_routing::Asn;

    fn history(p64s: Vec<&str>) -> ProbeHistory {
        ProbeHistory {
            probe: ProbeId(1),
            virtual_index: 0,
            asn: Asn(3320),
            v4: vec![],
            v6: p64s
                .iter()
                .enumerate()
                .map(|(i, p)| Span {
                    value: p.parse::<Ipv6Prefix>().unwrap(),
                    first: SimTime(i as u64 * 10),
                    last: SimTime(i as u64 * 10 + 9),
                })
                .collect(),
        }
    }

    fn routing() -> RoutingTable {
        let mut t = RoutingTable::new();
        t.announce_v6("2003::/19".parse().unwrap(), Asn(3320));
        t
    }

    #[test]
    fn counts_unique_supernets_per_length() {
        // Three /64s: all in the same /40, two share a /56.
        let h = history(vec![
            "2003:40:a0:aa00::/64",
            "2003:40:a0:aa01::/64",
            "2003:40:b7:2200::/64",
        ]);
        let u = unique_prefixes(&h, &routing());
        let by_len: std::collections::HashMap<u8, usize> = POOL_LENGTHS
            .iter()
            .copied()
            .zip(u.counts.iter().copied())
            .collect();
        assert_eq!(by_len[&64], 3);
        assert_eq!(by_len[&56], 2);
        assert_eq!(by_len[&48], 2);
        assert_eq!(by_len[&40], 1);
        assert_eq!(by_len[&16], 1);
        assert_eq!(u.bgp, 1);
    }

    #[test]
    fn bgp_counts_unrouted_as_zero() {
        let h = history(vec!["3fff:1:2:3::/64"]);
        let u = unique_prefixes(&h, &routing());
        assert_eq!(u.bgp, 0);
        assert_eq!(u.counts[0], 1);
    }

    #[test]
    fn accumulator_builds_cdfs() {
        let mut acc = PoolAccumulator::new();
        acc.add_probe(&history(vec!["2003:40:a0:aa00::/64"]), &routing());
        acc.add_probe(
            &history(vec![
                "2003:40:a0:aa00::/64",
                "2003:41:0:1::/64",
                "2003:42:0:1::/64",
            ]),
            &routing(),
        );
        assert_eq!(acc.probes(), 2);
        // Index of /40 in POOL_LENGTHS is 3.
        assert_eq!(acc.cdf_at(3, 1), 0.5, "one probe saw one /40");
        assert_eq!(acc.cdf_at(3, 3), 1.0);
        // /64 index 0: counts 1 and 3 -> median 2.
        assert_eq!(acc.median(0), 2.0);
    }

    #[test]
    fn merge_matches_sequential_and_quantiles_agree() {
        let probes = [
            history(vec!["2003:40:a0:aa00::/64"]),
            history(vec![
                "2003:40:a0:aa00::/64",
                "2003:41:0:1::/64",
                "2003:42:0:1::/64",
            ]),
            history(vec!["2003:40:a0:aa00::/64", "2003:40:a0:aa01::/64"]),
        ];
        let r = routing();
        let mut seq = PoolAccumulator::new();
        for p in &probes {
            seq.add_probe(p, &r);
        }
        let mut a = PoolAccumulator::new();
        a.add_probe(&probes[0], &r);
        let mut b = PoolAccumulator::new();
        b.add_probe(&probes[1], &r);
        b.add_probe(&probes[2], &r);
        // Merge in the opposite order to the sequential accumulation.
        let mut merged = PoolAccumulator::new();
        merged.merge(&b);
        merged.merge(&a);
        assert_eq!(merged.probes(), seq.probes());
        for i in 0..7 {
            assert_eq!(merged.median(i), seq.median(i), "length index {i}");
            assert_eq!(merged.cdf_at(i, 2), seq.cdf_at(i, 2));
            assert_eq!(merged.quantile(i, 0.75), seq.quantile(i, 0.75));
        }
        // /64 counts are 1, 3, 2 -> median 2, p75 2.5.
        assert_eq!(merged.quantile(0, 0.5), 2.0);
        assert_eq!(merged.quantile(0, 0.75), 2.5);
    }

    #[test]
    fn probes_without_v6_are_skipped() {
        let mut acc = PoolAccumulator::new();
        acc.add_probe(&history(vec![]), &routing());
        assert_eq!(acc.probes(), 0);
        assert_eq!(acc.cdf_at(0, 10), 0.0);
        assert_eq!(acc.median(0), 0.0);
    }
}
