//! The DynamIPs analysis pipeline — the paper's primary contribution.
//!
//! Raw measurements in, paper findings out:
//!
//! * [`sanitize`] — the Appendix-A.1 cleaning pipeline for RIPE-Atlas-style
//!   IP-echo series: test-address removal, bad-tag / multihoming /
//!   atypical-NAT probe filtering, virtual-probe splitting on ISP switches,
//!   minimum-observation thresholds.
//! * [`changes`] — assignment-span construction and sandwiched-duration
//!   inference (Section 3.1 "Inferring assignment changes").
//! * [`durations`] — the total-time-fraction metric of Eq. 1 and its
//!   cumulative curve (Figure 1), plus periodic-renumbering detection.
//! * [`dualstack`] — dual-stack vs non-dual-stack duration classification
//!   and v4/v6 change co-occurrence (Section 3.2).
//! * [`association`] — CDN association durations (Figures 2 and 3).
//! * [`cardinality`] — /64-per-/24 degree analysis (Figure 4).
//! * [`spatial`] — common-prefix-length histograms and cross-/24 /
//!   cross-BGP change rates (Figure 5, Table 2).
//! * [`pools`] — unique-prefixes-per-length distributions and pool
//!   boundary analysis (Figure 8, Section 5.2).
//! * [`subscriber`] — subscriber-boundary inference from trailing zero bits
//!   (Figures 6, 7 and 9, Section 5.3).
//! * [`stats`] — CDF/quantile/boxplot/log-density helpers shared by the
//!   analyses.
//! * [`degrade`] — per-(stage, class) quarantine accounting threaded
//!   through the pipeline when ingesting possibly-corrupted data.
//! * [`report`] — plain-text table and bar-chart rendering for the
//!   experiment harness.
//!
//! Application-layer analyses built on the paper's Section-6 discussion:
//!
//! * [`poolinfer`] — recover ISP pool boundaries from probe histories.
//! * [`evolution`] — year-over-year duration trends.
//! * [`anonymize`] — k-anonymity audit of truncation anonymization.
//! * [`hitlist`] — boundary-guided scan-target generation and evaluation.
//! * [`blocklist`] — blocklist TTL/granularity policy replay (evasion vs.
//!   collateral damage).
//! * [`counting`] — user-count estimation and the double-counting problem
//!   (Section 2.3).
//! * [`targetgen`] — Entropy/IP-lite and 6Gen-lite seed-driven target
//!   generation, for comparison against boundary-guided plans.
//! * [`tracking`] — host trackability under privacy-address / EUI-64 /
//!   prefix identifiers (Section 2.3).

#![warn(missing_docs)]
#![deny(unsafe_code)]
// Panic-freedom ratchet: shipping code degrades instead of unwrapping;
// tests are exempt via clippy.toml (allow-unwrap-in-tests).
#![warn(clippy::unwrap_used, clippy::expect_used)]

pub mod anonymize;
pub mod association;
pub mod blocklist;
pub mod cardinality;
pub mod changes;
pub mod counting;
pub mod degrade;
pub mod dualstack;
pub mod durations;
pub mod evolution;
pub mod hitlist;
pub mod perf;
pub mod poolinfer;
pub mod pools;
pub mod report;
pub mod sanitize;
pub mod spatial;
pub mod stats;
pub mod subscriber;
pub mod targetgen;
pub mod tracking;

pub use changes::{ProbeHistory, Span};
pub use degrade::DegradationReport;
pub use sanitize::{sanitize_probe, SanitizeConfig, SanitizeOutcome, SanitizeReport};
