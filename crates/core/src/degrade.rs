//! Degradation accounting threaded through the analysis pipeline.
//!
//! When the pipeline ingests possibly-corrupted data (lossy TSV loaders,
//! sanitizer rejections, association-filter discards), every dropped or
//! repaired record is attributed to a `(stage, class)` pair and counted
//! here, in the spirit of the paper's Appendix-A.1 accounting. The report
//! uses plain string keys so any crate in the pipeline (atlas ingest, CDN
//! ingest, core analyses) can contribute without type coupling.

use std::collections::BTreeMap;

/// Per-`(stage, class)` quarantine/repair counters for one end-to-end
/// analysis run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DegradationReport {
    counts: BTreeMap<(String, String), u64>,
}

impl DegradationReport {
    /// An empty report.
    pub fn new() -> Self {
        Self::default()
    }

    /// Count one event of `class` at pipeline `stage`.
    pub fn record(&mut self, stage: &str, class: &str) {
        self.record_many(stage, class, 1);
    }

    /// Count `n` events of `class` at pipeline `stage`.
    pub fn record_many(&mut self, stage: &str, class: &str, n: u64) {
        if n == 0 {
            return;
        }
        *self
            .counts
            .entry((stage.to_string(), class.to_string()))
            .or_insert(0) += n;
    }

    /// Fold another report's counters into this one.
    pub fn merge(&mut self, other: &DegradationReport) {
        for ((stage, class), n) in &other.counts {
            self.record_many(stage, class, *n);
        }
    }

    /// Events of `class` at `stage`.
    pub fn count(&self, stage: &str, class: &str) -> u64 {
        self.counts
            .get(&(stage.to_string(), class.to_string()))
            .copied()
            .unwrap_or(0)
    }

    /// Total events across all classes of one stage.
    pub fn stage_total(&self, stage: &str) -> u64 {
        self.counts
            .iter()
            .filter(|((s, _), _)| s == stage)
            .map(|(_, n)| n)
            .sum()
    }

    /// Total events across the whole pipeline.
    pub fn total(&self) -> u64 {
        self.counts.values().sum()
    }

    /// Whether nothing was quarantined or repaired anywhere.
    pub fn is_clean(&self) -> bool {
        self.counts.is_empty()
    }

    /// Iterate `(stage, class, count)` in stable (sorted) order.
    pub fn entries(&self) -> impl Iterator<Item = (&str, &str, u64)> {
        self.counts
            .iter()
            .map(|((s, c), n)| (s.as_str(), c.as_str(), *n))
    }

    /// Render as an aligned text table, one `(stage, class)` per row.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        // Writing to a String cannot fail.
        let _ = writeln!(out, "{:<14} {:<22} {:>10}", "stage", "class", "count");
        if self.counts.is_empty() {
            let _ = writeln!(out, "(clean: no records quarantined or repaired)");
            return out;
        }
        for (stage, class, n) in self.entries() {
            let _ = writeln!(out, "{stage:<14} {class:<22} {n:>10}");
        }
        let _ = writeln!(out, "{:<14} {:<22} {:>10}", "total", "", self.total());
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_accumulate_per_stage_and_class() {
        let mut r = DegradationReport::new();
        assert!(r.is_clean());
        r.record("ingest-atlas", "bad-hour");
        r.record_many("ingest-atlas", "bad-hour", 2);
        r.record("sanitize", "test-address");
        assert_eq!(r.count("ingest-atlas", "bad-hour"), 3);
        assert_eq!(r.count("ingest-atlas", "missing"), 0);
        assert_eq!(r.stage_total("ingest-atlas"), 3);
        assert_eq!(r.total(), 4);
        assert!(!r.is_clean());
    }

    #[test]
    fn zero_counts_are_not_recorded() {
        let mut r = DegradationReport::new();
        r.record_many("ingest-cdn", "bad-day", 0);
        assert!(r.is_clean());
    }

    #[test]
    fn merge_folds_counters() {
        let mut a = DegradationReport::new();
        a.record("ingest-atlas", "field-count");
        let mut b = DegradationReport::new();
        b.record("ingest-atlas", "field-count");
        b.record("ingest-cdn", "bad-v24");
        a.merge(&b);
        assert_eq!(a.count("ingest-atlas", "field-count"), 2);
        assert_eq!(a.count("ingest-cdn", "bad-v24"), 1);
    }

    #[test]
    fn render_is_stable_and_totalled() {
        let mut r = DegradationReport::new();
        r.record("sanitize", "bad-tag");
        r.record_many("ingest-atlas", "out-of-order", 5);
        let text = r.render();
        let ingest_pos = text.find("ingest-atlas").unwrap();
        let sanitize_pos = text.find("sanitize").unwrap();
        assert!(ingest_pos < sanitize_pos, "sorted by stage");
        assert!(text.contains("total"));
        assert!(text.lines().last().unwrap().contains('6'));
        assert!(DegradationReport::new().render().contains("clean"));
    }
}
