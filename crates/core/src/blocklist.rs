//! Blocklist policy simulation: evasion vs. collateral damage.
//!
//! Section 6: reputation systems must pick how long to keep an address on
//! a blocklist and at what prefix granularity to block. Too long or too
//! short a prefix and "collateral damage to legitimate users" or evasion
//! results. This module replays a blocklist policy against ground-truth
//! subscriber timelines: a designated bad actor is blocked at time `t0`;
//! we then measure for how long the block still covers the actor (efficacy
//! until it renumbers away = evasion time) and how many innocent-subscriber
//! hours the block covers after the actor left (collateral).

use dynamips_netaddr::Ipv6Prefix;
use dynamips_netsim::{SimTime, SubscriberTimeline};

/// A blocklist policy: block the actor's current /64 widened to
/// `block_len`, for `ttl_hours`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlockPolicy {
    /// Prefix length to block at (≤ 64).
    pub block_len: u8,
    /// How long the entry stays on the list.
    pub ttl_hours: u64,
}

/// Outcome of replaying one block against ground truth.
#[derive(Debug, Clone, Copy, PartialEq)]
// lint:allow(dead-pub): values flow to other crates through pub fn
// returns and pattern matches without the type name being spelled.
pub struct BlockOutcome {
    /// The blocked prefix.
    pub blocked: Ipv6Prefix,
    /// Hours (within the TTL) during which the actor was still covered by
    /// the block — the useful lifetime of the entry.
    pub actor_blocked_hours: u64,
    /// Hours of the TTL after the actor had already escaped the prefix.
    pub wasted_hours: u64,
    /// Innocent-subscriber hours covered by the block (collateral damage).
    pub collateral_hours: u64,
    /// Number of distinct innocent subscribers ever covered.
    pub collateral_subscribers: usize,
}

impl BlockOutcome {
    /// Efficacy: fraction of the TTL during which the block was useful.
    pub fn efficacy(&self) -> f64 {
        let ttl = self.actor_blocked_hours + self.wasted_hours;
        if ttl == 0 {
            0.0
        } else {
            self.actor_blocked_hours as f64 / ttl as f64
        }
    }
}

/// Replay `policy` against ground truth: `actor` is blocked at `t0` (using
/// its /64 at that time); `others` are the network's other subscribers.
pub(crate) fn replay_block(
    policy: BlockPolicy,
    actor: &SubscriberTimeline,
    others: &[&SubscriberTimeline],
    t0: SimTime,
) -> Option<BlockOutcome> {
    let seg = actor.v6_at(t0)?;
    let blocked = seg.lan64.supernet(policy.block_len.min(64)).ok()?;
    let end = t0 + policy.ttl_hours;

    let mut actor_blocked_hours = 0u64;
    let mut h = t0;
    while h < end {
        if let Some(s) = actor.v6_at(h) {
            if blocked.contains_prefix(&s.lan64) {
                actor_blocked_hours += 1;
            }
        }
        h += 1;
    }

    let mut collateral_hours = 0u64;
    let mut collateral_subscribers = 0usize;
    for other in others {
        let mut hit = false;
        let mut h = t0;
        while h < end {
            if let Some(s) = other.v6_at(h) {
                if blocked.contains_prefix(&s.lan64) {
                    collateral_hours += 1;
                    hit = true;
                }
            }
            h += 1;
        }
        if hit {
            collateral_subscribers += 1;
        }
    }

    Some(BlockOutcome {
        blocked,
        actor_blocked_hours,
        wasted_hours: policy.ttl_hours - actor_blocked_hours,
        collateral_hours,
        collateral_subscribers,
    })
}

/// Sweep TTLs and block lengths for one actor, returning
/// `(policy, outcome)` pairs — the tradeoff curve the paper's discussion
/// implies operators must navigate.
pub fn sweep_policies(
    actor: &SubscriberTimeline,
    others: &[&SubscriberTimeline],
    t0: SimTime,
    block_lens: &[u8],
    ttls: &[u64],
) -> Vec<(BlockPolicy, BlockOutcome)> {
    let mut out = Vec::new();
    for &block_len in block_lens {
        for &ttl_hours in ttls {
            let policy = BlockPolicy {
                block_len,
                ttl_hours,
            };
            if let Some(outcome) = replay_block(policy, actor, others, t0) {
                out.push((policy, outcome));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use dynamips_netsim::timeline::{SubscriberId, V6Segment};
    use dynamips_routing::Asn;

    fn sub(index: u32, segs: Vec<(u64, u64, &str, &str)>) -> SubscriberTimeline {
        SubscriberTimeline {
            id: SubscriberId { asn: Asn(1), index },
            dual_stack: true,
            device_iid: index as u64,
            v4: vec![],
            v6: segs
                .into_iter()
                .map(|(a, b, d, l)| V6Segment {
                    start: SimTime(a),
                    end: SimTime(b),
                    delegated: d.parse().unwrap(),
                    lan64: l.parse().unwrap(),
                })
                .collect(),
        }
    }

    #[test]
    fn stable_actor_stays_blocked_whole_ttl() {
        let actor = sub(
            0,
            vec![(0, 1000, "2001:db8:0:aa00::/56", "2001:db8:0:aa00::/64")],
        );
        let out = replay_block(
            BlockPolicy {
                block_len: 56,
                ttl_hours: 100,
            },
            &actor,
            &[],
            SimTime(10),
        )
        .unwrap();
        assert_eq!(out.actor_blocked_hours, 100);
        assert_eq!(out.wasted_hours, 0);
        assert_eq!(out.efficacy(), 1.0);
        assert_eq!(out.collateral_subscribers, 0);
    }

    #[test]
    fn renumbering_actor_escapes() {
        // The actor renumbers to a different /56 at hour 24.
        let actor = sub(
            0,
            vec![
                (0, 24, "2001:db8:0:aa00::/56", "2001:db8:0:aa00::/64"),
                (24, 1000, "2001:db8:0:bb00::/56", "2001:db8:0:bb00::/64"),
            ],
        );
        let out = replay_block(
            BlockPolicy {
                block_len: 56,
                ttl_hours: 96,
            },
            &actor,
            &[],
            SimTime(0),
        )
        .unwrap();
        assert_eq!(out.actor_blocked_hours, 24);
        assert_eq!(out.wasted_hours, 72);
        assert!((out.efficacy() - 0.25).abs() < 1e-9);
    }

    #[test]
    fn too_specific_block_is_evaded_by_scrambling_cpe() {
        // The actor's CPE rotates /64s within its stable /56 delegation.
        let actor = sub(
            0,
            vec![
                (0, 24, "2001:db8:0:aa00::/56", "2001:db8:0:aa17::/64"),
                (24, 1000, "2001:db8:0:aa00::/56", "2001:db8:0:aae9::/64"),
            ],
        );
        let narrow = replay_block(
            BlockPolicy {
                block_len: 64,
                ttl_hours: 96,
            },
            &actor,
            &[],
            SimTime(0),
        )
        .unwrap();
        assert_eq!(narrow.actor_blocked_hours, 24, "/64 block evaded");
        let wide = replay_block(
            BlockPolicy {
                block_len: 56,
                ttl_hours: 96,
            },
            &actor,
            &[],
            SimTime(0),
        )
        .unwrap();
        assert_eq!(wide.actor_blocked_hours, 96, "/56 block holds");
    }

    #[test]
    fn too_wide_block_catches_innocents() {
        let actor = sub(
            0,
            vec![(0, 1000, "2001:db8:0:aa00::/56", "2001:db8:0:aa00::/64")],
        );
        let neighbor = sub(
            1,
            vec![(0, 1000, "2001:db8:0:bb00::/56", "2001:db8:0:bb00::/64")],
        );
        let outsider = sub(
            2,
            vec![(0, 1000, "2001:db8:77:cc00::/56", "2001:db8:77:cc00::/64")],
        );
        let others = [&neighbor, &outsider];
        // /48 block: neighbor (same /48) is collateral, outsider is not.
        let out = replay_block(
            BlockPolicy {
                block_len: 48,
                ttl_hours: 50,
            },
            &actor,
            &others,
            SimTime(0),
        )
        .unwrap();
        assert_eq!(out.collateral_subscribers, 1);
        assert_eq!(out.collateral_hours, 50);
        // /56 block: no collateral.
        let out = replay_block(
            BlockPolicy {
                block_len: 56,
                ttl_hours: 50,
            },
            &actor,
            &others,
            SimTime(0),
        )
        .unwrap();
        assert_eq!(out.collateral_subscribers, 0);
    }

    #[test]
    fn address_reuse_creates_collateral_over_time() {
        // The actor leaves its /56 at hour 10; an innocent subscriber is
        // assigned into the same /56 at hour 20 (pool reuse).
        let actor = sub(
            0,
            vec![
                (0, 10, "2001:db8:0:aa00::/56", "2001:db8:0:aa00::/64"),
                (10, 1000, "2001:db8:0:ff00::/56", "2001:db8:0:ff00::/64"),
            ],
        );
        let unlucky = sub(
            1,
            vec![
                (0, 20, "2001:db8:0:1100::/56", "2001:db8:0:1100::/64"),
                (20, 1000, "2001:db8:0:aa00::/56", "2001:db8:0:aa00::/64"),
            ],
        );
        let others = [&unlucky];
        let out = replay_block(
            BlockPolicy {
                block_len: 56,
                ttl_hours: 100,
            },
            &actor,
            &others,
            SimTime(0),
        )
        .unwrap();
        assert_eq!(out.actor_blocked_hours, 10);
        assert_eq!(out.collateral_subscribers, 1);
        assert_eq!(out.collateral_hours, 80, "hours 20..100");
    }

    #[test]
    fn sweep_produces_the_tradeoff_grid() {
        let actor = sub(
            0,
            vec![(0, 1000, "2001:db8:0:aa00::/56", "2001:db8:0:aa00::/64")],
        );
        let grid = sweep_policies(&actor, &[], SimTime(0), &[48, 56, 64], &[24, 96]);
        assert_eq!(grid.len(), 6);
    }

    #[test]
    fn offline_actor_yields_none() {
        let actor = sub(0, vec![(100, 200, "2001:db8::/56", "2001:db8::/64")]);
        assert!(replay_block(
            BlockPolicy {
                block_len: 56,
                ttl_hours: 10
            },
            &actor,
            &[],
            SimTime(0)
        )
        .is_none());
    }
}
