//! CDN association-duration analysis.
//!
//! Section 4.2: "we measure association duration as the period in which an
//! IPv6 /64 prefix reports the same IPv4 /24 prefix. This duration is
//! determined by the lifetime of an IPv6 /64 prefix or the appearance of
//! another IPv4 /24 prefix."

use crate::stats::BoxStats;
use dynamips_cdn::{Association, AssociationDataset};
use dynamips_routing::{Asn, Rir};
use std::collections::HashMap;

/// One association run: a /64 continuously reporting the same /24.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AssociationRun {
    /// Origin AS.
    pub asn: Asn,
    /// Whether the AS is cellular.
    pub mobile: bool,
    /// Run length in days (inclusive of first and last sighting).
    pub days: u32,
}

/// Extract association runs from the dataset. Tuples are grouped by /64;
/// within each /64's day-ordered record stream, a run ends when the /24
/// changes or the /64 disappears for more than `max_gap_days` (a /64 not
/// seen for longer is considered gone — its next appearance starts a new
/// run, matching the "lifetime of an IPv6 /64 prefix" semantics).
pub fn association_runs(ds: &AssociationDataset, max_gap_days: u32) -> Vec<AssociationRun> {
    // Group indexes by /64.
    let mut by_p64: HashMap<u128, Vec<&Association>> = HashMap::new();
    for t in &ds.tuples {
        by_p64.entry(t.p64.bits()).or_default().push(t);
    }
    let mut runs = Vec::new();
    for (_, mut tuples) in by_p64 {
        tuples.sort_by_key(|t| t.day);
        let mut cur: Option<(u32, u32, &Association)> = None; // (start, last, rep)
        for t in tuples {
            match cur {
                Some((start, last, rep))
                    if rep.v24 == t.v24 && t.day.saturating_sub(last) <= max_gap_days =>
                {
                    cur = Some((start, t.day, rep));
                }
                Some((start, last, rep)) => {
                    runs.push(AssociationRun {
                        asn: rep.asn,
                        mobile: rep.mobile,
                        days: last - start + 1,
                    });
                    cur = Some((t.day, t.day, t));
                    let _ = (start, rep);
                }
                None => cur = Some((t.day, t.day, t)),
            }
        }
        if let Some((start, last, rep)) = cur {
            runs.push(AssociationRun {
                asn: rep.asn,
                mobile: rep.mobile,
                days: last - start + 1,
            });
        }
    }
    runs
}

/// Group run durations (days) by AS.
pub fn durations_by_asn(runs: &[AssociationRun]) -> HashMap<Asn, Vec<f64>> {
    let mut map: HashMap<Asn, Vec<f64>> = HashMap::new();
    for r in runs {
        map.entry(r.asn).or_default().push(r.days as f64);
    }
    map
}

/// Group run durations by (RIR, mobile) using a resolver from ASN to RIR —
/// the Figure-3 boxplot populations.
pub(crate) fn durations_by_rir_access(
    runs: &[AssociationRun],
    rir_of: impl Fn(Asn) -> Option<Rir>,
) -> HashMap<(Rir, bool), Vec<f64>> {
    let mut map: HashMap<(Rir, bool), Vec<f64>> = HashMap::new();
    for r in runs {
        if let Some(rir) = rir_of(r.asn) {
            map.entry((rir, r.mobile)).or_default().push(r.days as f64);
        }
    }
    map
}

/// Box statistics per (RIR, mobile) group plus the global fixed/mobile
/// aggregates, in Figure 3's panel order.
pub fn figure3_boxes(
    runs: &[AssociationRun],
    rir_of: impl Fn(Asn) -> Option<Rir>,
) -> Vec<(String, Option<BoxStats>)> {
    let by_group = durations_by_rir_access(runs, rir_of);
    let mut out = Vec::new();
    for mobile in [false, true] {
        let all: Vec<f64> = runs
            .iter()
            .filter(|r| r.mobile == mobile)
            .map(|r| r.days as f64)
            .collect();
        let label = format!("ALL-{}", if mobile { "mobile" } else { "fixed" });
        out.push((label, BoxStats::from_values(&all)));
    }
    for rir in Rir::ALL {
        for mobile in [false, true] {
            let label = format!(
                "{}-{}",
                rir.label(),
                if mobile { "mobile" } else { "fixed" }
            );
            let values = by_group.get(&(rir, mobile));
            out.push((label, values.and_then(|v| BoxStats::from_values(v))));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use dynamips_netaddr::{Ipv4Prefix, Ipv6Prefix};

    fn tuple(v24: &str, p64: &str, day: u32, asn: u32, mobile: bool) -> Association {
        Association {
            v24: v24.parse::<Ipv4Prefix>().unwrap(),
            p64: p64.parse::<Ipv6Prefix>().unwrap(),
            day,
            asn: Asn(asn),
            mobile,
        }
    }

    fn ds(tuples: Vec<Association>) -> AssociationDataset {
        AssociationDataset {
            raw_count: tuples.len() as u64,
            tuples,
            ..Default::default()
        }
    }

    #[test]
    fn continuous_association_is_one_run() {
        let d = ds((0..30)
            .map(|day| tuple("84.128.0.0/24", "2003:0:0:1::/64", day, 3320, false))
            .collect());
        let runs = association_runs(&d, 3);
        assert_eq!(runs.len(), 1);
        assert_eq!(runs[0].days, 30);
    }

    #[test]
    fn v24_change_splits_runs() {
        let mut tuples: Vec<Association> = (0..10)
            .map(|day| tuple("84.128.0.0/24", "2003:0:0:1::/64", day, 3320, false))
            .collect();
        tuples
            .extend((10..30).map(|day| tuple("91.3.7.0/24", "2003:0:0:1::/64", day, 3320, false)));
        let runs = association_runs(&ds(tuples), 3);
        assert_eq!(runs.len(), 2);
        let mut days: Vec<u32> = runs.iter().map(|r| r.days).collect();
        days.sort_unstable();
        assert_eq!(days, vec![10, 20]);
    }

    #[test]
    fn long_disappearance_ends_the_run() {
        let mut tuples: Vec<Association> = (0..5)
            .map(|day| tuple("84.128.0.0/24", "2003:0:0:1::/64", day, 3320, false))
            .collect();
        // Same /24 but only re-seen 20 days later: the /64 was gone.
        tuples.push(tuple("84.128.0.0/24", "2003:0:0:1::/64", 25, 3320, false));
        let runs = association_runs(&ds(tuples), 3);
        assert_eq!(runs.len(), 2);
    }

    #[test]
    fn short_gaps_are_tolerated() {
        // Seen on days 0,2,4 (client does not browse daily).
        let tuples: Vec<Association> = [0u32, 2, 4]
            .iter()
            .map(|&day| tuple("84.128.0.0/24", "2003:0:0:1::/64", day, 3320, false))
            .collect();
        let runs = association_runs(&ds(tuples), 3);
        assert_eq!(runs.len(), 1);
        assert_eq!(runs[0].days, 5);
    }

    #[test]
    fn different_p64s_are_independent() {
        let tuples = vec![
            tuple("84.128.0.0/24", "2003:0:0:1::/64", 0, 3320, false),
            tuple("84.128.0.0/24", "2003:0:0:2::/64", 0, 3320, false),
        ];
        let runs = association_runs(&ds(tuples), 3);
        assert_eq!(runs.len(), 2);
    }

    #[test]
    fn grouping_by_asn_and_rir() {
        let runs = vec![
            AssociationRun {
                asn: Asn(3320),
                mobile: false,
                days: 30,
            },
            AssociationRun {
                asn: Asn(3320),
                mobile: false,
                days: 10,
            },
            AssociationRun {
                asn: Asn(12576),
                mobile: true,
                days: 1,
            },
        ];
        let by_asn = durations_by_asn(&runs);
        assert_eq!(by_asn[&Asn(3320)].len(), 2);

        let by_group = durations_by_rir_access(&runs, |_| Some(Rir::RipeNcc));
        assert_eq!(by_group[&(Rir::RipeNcc, false)].len(), 2);
        assert_eq!(by_group[&(Rir::RipeNcc, true)].len(), 1);
    }

    #[test]
    fn figure3_boxes_cover_all_groups() {
        let runs = vec![
            AssociationRun {
                asn: Asn(3320),
                mobile: false,
                days: 30,
            },
            AssociationRun {
                asn: Asn(12576),
                mobile: true,
                days: 1,
            },
        ];
        let boxes = figure3_boxes(&runs, |_| Some(Rir::RipeNcc));
        // 2 global + 5 RIRs × 2.
        assert_eq!(boxes.len(), 12);
        let all_fixed = &boxes[0];
        assert_eq!(all_fixed.0, "ALL-fixed");
        assert_eq!(all_fixed.1.unwrap().p50, 30.0);
        // ARIN has no samples under this resolver.
        let arin_fixed = boxes.iter().find(|(l, _)| l == "ARIN-fixed").unwrap();
        assert!(arin_fixed.1.is_none());
    }
}
