//! Plain-text rendering for the experiment harness: aligned tables and
//! ASCII bar charts, so every regenerated table/figure prints the same way
//! the paper reports it.

/// A simple aligned-column table builder.
#[derive(Debug, Clone, Default)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Create a table with the given column headers.
    pub fn new(header: &[&str]) -> Self {
        TextTable {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row; must match the header width.
    pub fn row(&mut self, cells: &[String]) -> &mut Self {
        assert_eq!(
            cells.len(),
            self.header.len(),
            "row width must match header"
        );
        self.rows.push(cells.to_vec());
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render with aligned columns (left-aligned first column, right-aligned
    /// rest, matching how the paper's tables read).
    pub fn render(&self) -> String {
        let ncols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for (i, cell) in cells.iter().enumerate() {
                if i > 0 {
                    line.push_str("  ");
                }
                if i == 0 {
                    line.push_str(&format!("{:<width$}", cell, width = widths[i]));
                } else {
                    line.push_str(&format!("{:>width$}", cell, width = widths[i]));
                }
            }
            line
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        let total: usize = widths.iter().sum::<usize>() + 2 * (ncols - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }
}

/// Render a horizontal ASCII bar chart: one `(label, value)` per line, bars
/// scaled to `max_width` characters against the maximum value.
pub fn bar_chart(items: &[(String, f64)], max_width: usize) -> String {
    let max = items
        .iter()
        .map(|(_, v)| *v)
        .fold(0.0f64, f64::max)
        .max(f64::MIN_POSITIVE);
    let label_w = items.iter().map(|(l, _)| l.len()).max().unwrap_or(0);
    let mut out = String::new();
    for (label, value) in items {
        let bar_len = ((value / max) * max_width as f64).round() as usize;
        out.push_str(&format!(
            "{:<label_w$} |{:<max_width$}| {:.4}\n",
            label,
            "#".repeat(bar_len),
            value,
        ));
    }
    out
}

/// Format a count with thousands separators (for Table-1-style counts).
pub fn thousands(n: u64) -> String {
    let s = n.to_string();
    let mut out = String::new();
    for (i, c) in s.chars().enumerate() {
        if i > 0 && (s.len() - i).is_multiple_of(3) {
            out.push(',');
        }
        out.push(c);
    }
    out
}

/// Format hours as the paper's duration labels (e.g. `24 -> "1d"`).
pub fn duration_label(hours: u64) -> String {
    match hours {
        h if h < 24 => format!("{h}h"),
        h if h % (365 * 24) == 0 => format!("{}y", h / (365 * 24)),
        h if h % (7 * 24) == 0 && h < 30 * 24 => format!("{}w", h / (7 * 24)),
        h if h % 24 == 0 => format!("{}d", h / 24),
        h => format!("{h}h"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_aligns_columns() {
        let mut t = TextTable::new(&["AS", "probes", "changes"]);
        t.row(&["DTAG".into(), "589".into(), "218655".into()]);
        t.row(&["BT".into(), "170".into(), "15743".into()]);
        let r = t.render();
        let lines: Vec<&str> = r.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("AS"));
        assert!(lines[1].chars().all(|c| c == '-'));
        // Right-aligned numeric columns: both rows end at the same width.
        assert_eq!(lines[2].len(), lines[3].len());
        assert!(lines[2].contains("218655"));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn row_width_mismatch_panics() {
        let mut t = TextTable::new(&["a", "b"]);
        t.row(&["x".into()]);
    }

    #[test]
    fn empty_table_renders_header_only() {
        let t = TextTable::new(&["a"]);
        assert!(t.is_empty());
        assert_eq!(t.render().lines().count(), 2);
    }

    #[test]
    fn bar_chart_scales_to_max() {
        let chart = bar_chart(
            &[("a".into(), 1.0), ("bb".into(), 2.0), ("c".into(), 0.0)],
            10,
        );
        let lines: Vec<&str> = chart.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[1].contains("##########"), "max bar is full width");
        assert!(lines[0].contains("#####"), "half bar");
        assert!(!lines[2].contains('#'), "zero bar is empty");
        // Labels padded to common width.
        assert!(lines[0].starts_with("a "));
        assert!(lines[1].starts_with("bb"));
    }

    #[test]
    fn thousands_separators() {
        assert_eq!(thousands(0), "0");
        assert_eq!(thousands(999), "999");
        assert_eq!(thousands(1000), "1,000");
        assert_eq!(thousands(218655), "218,655");
        assert_eq!(thousands(32_700_000_000), "32,700,000,000");
    }

    #[test]
    fn duration_labels() {
        assert_eq!(duration_label(1), "1h");
        assert_eq!(duration_label(12), "12h");
        assert_eq!(duration_label(24), "1d");
        assert_eq!(duration_label(36), "36h");
        assert_eq!(duration_label(7 * 24), "1w");
        assert_eq!(duration_label(14 * 24), "2w");
        assert_eq!(duration_label(30 * 24), "30d");
        assert_eq!(duration_label(365 * 24), "1y");
        assert_eq!(duration_label(4 * 365 * 24), "4y");
    }
}
