//! Host trackability under different identifier choices.
//!
//! Section 2.3 ("Tracking and Anonymity") and Section 6: privacy addresses
//! (RFC 4941) rotate the 64-bit host component, but "the relatively static
//! 64-bit network part permits subscriber-identification over long
//! periods", and devices still using EUI-64 identifiers "will be trackable
//! across network address changes". This module quantifies exactly that:
//! for one subscriber's ground-truth timeline, how long can an observer
//! keep re-identifying them under each identifier strategy?

use dynamips_netsim::{SubscriberTimeline, DAY};

/// What the observer keys its tracking on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TrackingKey {
    /// The full 128-bit address of a device using privacy (RFC 4941)
    /// identifiers that rotate every `rotation_hours`.
    FullAddressPrivacyIid {
        /// Privacy-extension regeneration interval (commonly ~1 day).
        rotation_hours: u64,
    },
    /// The full 128-bit address of a device with a stable EUI-64
    /// identifier.
    FullAddressEui64,
    /// The /64 network prefix (the paper's unit of analysis).
    Slash64,
    /// The prefix truncated to `len` (e.g. the delegated-prefix length or
    /// the pool length).
    Truncated(u8),
}

/// Result of a trackability evaluation.
#[derive(Debug, Clone, Copy, PartialEq)]
// lint:allow(dead-pub): values flow to other crates through pub fn
// returns and pattern matches without the type name being spelled.
pub struct Trackability {
    /// Longest continuous interval (hours) over which the key kept
    /// identifying the subscriber.
    pub longest_track_hours: u64,
    /// Fraction of the subscriber's online time covered by its single
    /// longest track.
    pub longest_track_fraction: f64,
    /// Number of tracking runs — each boundary forces the observer to
    /// re-identify the subscriber (1 = trackable for the whole window).
    pub distinct_keys: usize,
}

/// Evaluate how long `key` keeps identifying the subscriber behind
/// `timeline`. The subscriber's device IID is `timeline.device_iid` when
/// stable; privacy rotation is simulated by breaking tracks every
/// `rotation_hours` regardless of network stability.
pub fn evaluate(timeline: &SubscriberTimeline, key: TrackingKey) -> Trackability {
    // Build the sequence of key-change boundaries over the v6 timeline.
    let mut tracks: Vec<u64> = Vec::new(); // durations of constant-key runs
    let mut distinct = 0usize;
    let mut online: u64 = 0;

    let mut run: u64 = 0;
    let mut prev_key: Option<u128> = None;
    for seg in &timeline.v6 {
        let seg_hours = seg.end - seg.start;
        online += seg_hours;
        let seg_key: Option<u128> = match key {
            TrackingKey::FullAddressPrivacyIid { .. } => None, // handled below
            TrackingKey::FullAddressEui64 => Some(
                seg.lan64
                    .with_iid(timeline.device_iid)
                    .map(u128::from)
                    .unwrap_or_default(),
            ),
            TrackingKey::Slash64 => Some(seg.lan64.bits()),
            TrackingKey::Truncated(len) => Some(
                seg.lan64
                    .supernet(len.min(64))
                    .map(|p| p.bits())
                    .unwrap_or_default(),
            ),
        };
        match key {
            TrackingKey::FullAddressPrivacyIid { rotation_hours } => {
                // Every rotation within the segment produces a fresh key.
                let rotation = rotation_hours.max(1);
                let pieces = seg_hours.div_ceil(rotation);
                for i in 0..pieces {
                    let piece = (seg_hours - i * rotation).min(rotation);
                    tracks.push(piece);
                    distinct += 1;
                }
                prev_key = None;
                run = 0;
            }
            _ => {
                // Every non-privacy arm of the `seg_key` match above
                // yields Some; treat a miss as an untrackable segment.
                let Some(k) = seg_key else {
                    prev_key = None;
                    if run > 0 {
                        tracks.push(run);
                    }
                    run = 0;
                    continue;
                };
                if prev_key == Some(k) {
                    run += seg_hours;
                } else {
                    if run > 0 {
                        tracks.push(run);
                    }
                    if prev_key != Some(k) {
                        distinct += 1;
                    }
                    run = seg_hours;
                    prev_key = Some(k);
                }
            }
        }
    }
    if run > 0 {
        tracks.push(run);
    }

    let longest = tracks.iter().copied().max().unwrap_or(0);
    Trackability {
        longest_track_hours: longest,
        longest_track_fraction: if online == 0 {
            0.0
        } else {
            longest as f64 / online as f64
        },
        distinct_keys: distinct,
    }
}

/// Whether a stable EUI-64 device can be *relocated* after a renumbering by
/// scanning the enclosing `pool_len` block (Section 5.2's "a device with an
/// EUI-64 address can be almost trivially located in many domestic ISPs"):
/// true when all of the subscriber's /64s share that block.
pub fn eui64_relocatable_within(timeline: &SubscriberTimeline, pool_len: u8) -> bool {
    let mut pools = timeline
        .v6
        .iter()
        .map(|s| s.lan64.supernet(pool_len.min(64)).unwrap_or(s.lan64));
    match pools.next() {
        None => false,
        Some(first) => pools.all(|p| p == first),
    }
}

/// Convenience: the paper's headline comparison for one subscriber —
/// privacy addresses rotate daily yet the /64 tracks for `x` days.
// lint:allow(dead-pub): headline-summary helper exercised by this crate's
// tests.
pub fn privacy_vs_prefix_summary(timeline: &SubscriberTimeline) -> (f64, f64) {
    let privacy = evaluate(
        timeline,
        TrackingKey::FullAddressPrivacyIid {
            rotation_hours: DAY,
        },
    );
    let prefix = evaluate(timeline, TrackingKey::Slash64);
    (
        privacy.longest_track_hours as f64 / DAY as f64,
        prefix.longest_track_hours as f64 / DAY as f64,
    )
}

/// Typed keys for reporting.
// lint:allow(dead-pub): reporting helper exercised by this crate's tests.
pub fn key_label(key: TrackingKey) -> String {
    match key {
        TrackingKey::FullAddressPrivacyIid { rotation_hours } => {
            format!("full addr, privacy IID ({}h rotation)", rotation_hours)
        }
        TrackingKey::FullAddressEui64 => "full addr, EUI-64 IID".into(),
        TrackingKey::Slash64 => "/64 prefix".into(),
        TrackingKey::Truncated(len) => format!("/{len} prefix"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dynamips_netsim::timeline::{SubscriberId, V6Segment};
    use dynamips_netsim::SimTime;
    use dynamips_routing::Asn;

    fn timeline(segs: Vec<(u64, u64, &str, &str)>) -> SubscriberTimeline {
        SubscriberTimeline {
            id: SubscriberId {
                asn: Asn(3320),
                index: 0,
            },
            dual_stack: true,
            device_iid: 0x0225_96ff_fe12_3456,
            v4: vec![],
            v6: segs
                .into_iter()
                .map(|(a, b, d, l)| V6Segment {
                    start: SimTime(a),
                    end: SimTime(b),
                    delegated: d.parse().unwrap(),
                    lan64: l.parse().unwrap(),
                })
                .collect(),
        }
    }

    /// 90 days of a stable /64.
    fn stable() -> SubscriberTimeline {
        timeline(vec![(
            0,
            90 * 24,
            "2003:40:a0:aa00::/56",
            "2003:40:a0:aa00::/64",
        )])
    }

    #[test]
    fn privacy_addresses_break_daily_but_prefix_tracks_for_months() {
        let tl = stable();
        let (privacy_days, prefix_days) = privacy_vs_prefix_summary(&tl);
        assert!((privacy_days - 1.0).abs() < 1e-9, "{privacy_days}");
        assert!((prefix_days - 90.0).abs() < 1e-9, "{prefix_days}");
        // 90 distinct privacy addresses vs one /64.
        let p = evaluate(
            &tl,
            TrackingKey::FullAddressPrivacyIid { rotation_hours: 24 },
        );
        assert_eq!(p.distinct_keys, 90);
        let s = evaluate(&tl, TrackingKey::Slash64);
        assert_eq!(s.distinct_keys, 1);
        assert!((s.longest_track_fraction - 1.0).abs() < 1e-9);
    }

    #[test]
    fn renumbering_breaks_slash64_but_not_truncated_tracking() {
        // Daily renumbering within one /56 (a rotating scrambler CPE).
        let segs: Vec<(u64, u64, String, String)> = (0..30)
            .map(|i| {
                (
                    i * 24,
                    (i + 1) * 24,
                    "2003:40:a0:aa00::/56".to_string(),
                    format!("2003:40:a0:aa{:02x}::/64", i + 1),
                )
            })
            .collect();
        let tl = timeline(
            segs.iter()
                .map(|(a, b, d, l)| (*a, *b, d.as_str(), l.as_str()))
                .collect(),
        );
        let s64 = evaluate(&tl, TrackingKey::Slash64);
        assert_eq!(s64.longest_track_hours, 24, "every /64 lives one day");
        assert_eq!(s64.distinct_keys, 30);
        let s56 = evaluate(&tl, TrackingKey::Truncated(56));
        assert_eq!(s56.longest_track_hours, 30 * 24, "the /56 never changes");
        assert_eq!(s56.distinct_keys, 1);
    }

    #[test]
    fn eui64_tracks_across_contiguous_same_prefix_periods_only() {
        // Same /64 for 10 days, then a different /64 for 10 days.
        let tl = timeline(vec![
            (0, 240, "2003:40:a0:aa00::/56", "2003:40:a0:aa00::/64"),
            (240, 480, "2003:41:17:bb00::/56", "2003:41:17:bb00::/64"),
        ]);
        let e = evaluate(&tl, TrackingKey::FullAddressEui64);
        // The full address changes with the prefix even though the IID is
        // stable...
        assert_eq!(e.longest_track_hours, 240);
        assert_eq!(e.distinct_keys, 2);
        // ...but the device is relocatable by scanning the /24-grained pool
        // both prefixes share (2003::/19-ish), not a /40.
        assert!(eui64_relocatable_within(&tl, 16));
        assert!(!eui64_relocatable_within(&tl, 40));
    }

    #[test]
    fn gaps_do_not_count_as_online_time() {
        let tl = timeline(vec![
            (0, 24, "2003:40:a0:aa00::/56", "2003:40:a0:aa00::/64"),
            // 24h offline gap, same prefix resumed.
            (48, 96, "2003:40:a0:aa00::/56", "2003:40:a0:aa00::/64"),
        ]);
        let s = evaluate(&tl, TrackingKey::Slash64);
        // Online time is 24 + 48 = 72h; the key never changed.
        assert_eq!(s.longest_track_hours, 72);
        assert_eq!(s.distinct_keys, 1);
    }

    #[test]
    fn empty_timeline() {
        let tl = timeline(vec![]);
        let t = evaluate(&tl, TrackingKey::Slash64);
        assert_eq!(t.longest_track_hours, 0);
        assert_eq!(t.distinct_keys, 0);
        assert_eq!(t.longest_track_fraction, 0.0);
        assert!(!eui64_relocatable_within(&tl, 40));
    }

    #[test]
    fn labels_render() {
        assert!(key_label(TrackingKey::Truncated(56)).contains("/56"));
        assert!(
            key_label(TrackingKey::FullAddressPrivacyIid { rotation_hours: 24 })
                .contains("privacy")
        );
    }
}
