//! Pool-boundary inference.
//!
//! Section 5.2 concludes that "for many ISPs, a /40 emerges as a common
//! size for dynamic address pools", by observing (Figure 8) that probes see
//! many distinct /48s but only a handful of /40s over their lifetimes. This
//! module turns that observation into an estimator: the pool grain is the
//! *longest* prefix length at which a churning subscriber still only ever
//! sees a few unique prefixes.
//!
//! A probe is *informative* at parameter `max_pools = K` when it has seen
//! at least `2K` distinct /64s (otherwise "few unique L-prefixes" is
//! trivially true for every L); it is *contained* at length `L` when its
//! unique `L`-prefix count is at most `K` — a handful of pools, allowing
//! for the occasional administrative move across pools the paper also
//! observes — *and* that count is scale-stable: shortening the length by
//! two bits must not merge pools (`unique(L) == unique(L-2)`). Without the
//! stability condition, a probe drawing many assignments from one /40
//! also has "few" unique /41s and /42s (they double per bit until they hit
//! `K`), which would bias the estimate long.

use crate::changes::ProbeHistory;
use std::collections::HashSet;

/// Unique supernets of the probe's /64s at length `len`.
fn unique_at(history: &ProbeHistory, len: u8) -> usize {
    history
        .v6
        .iter()
        .map(|s| s.value.supernet(len).unwrap_or(s.value).bits())
        .collect::<HashSet<u128>>()
        .len()
}

/// Per-probe containment test; `None` if the probe is uninformative.
fn probe_contained(history: &ProbeHistory, len: u8, max_pools: usize) -> Option<bool> {
    if unique_at(history, 64) < 2 * max_pools {
        return None;
    }
    let at = unique_at(history, len);
    Some(at <= max_pools && at == unique_at(history, len.saturating_sub(2)))
}

/// Result of a pool-boundary estimation over a probe population.
#[derive(Debug, Clone, PartialEq)]
// lint:allow(dead-pub): values flow to other crates through pub fn
// returns and pattern matches without the type name being spelled.
pub struct PoolBoundary {
    /// The inferred pool prefix length.
    pub pool_len: u8,
    /// Fraction of informative probes contained at that length.
    pub containment: f64,
    /// Informative probes that contributed.
    pub probes: usize,
    /// Per-candidate-length containment fractions, for inspection.
    pub profile: Vec<(u8, f64)>,
}

/// Estimate the pool grain of one AS from its probes' histories.
///
/// `candidates` are the prefix lengths to test (e.g. `16..=56`);
/// `max_pools` is how many distinct pools a subscriber may plausibly touch
/// over the observation window (admin renumbering; the paper sees "less
/// than five unique /40 prefixes"); `min_containment` is the fraction of
/// informative probes required to accept a length.
pub fn infer_pool_boundary(
    histories: &[&ProbeHistory],
    candidates: impl Iterator<Item = u8>,
    max_pools: usize,
    min_containment: f64,
) -> Option<PoolBoundary> {
    let mut profile: Vec<(u8, f64)> = Vec::new();
    let mut informative = 0usize;
    for len in candidates {
        let mut contained = 0usize;
        let mut total = 0usize;
        for h in histories {
            if let Some(ok) = probe_contained(h, len, max_pools) {
                total += 1;
                if ok {
                    contained += 1;
                }
            }
        }
        if total == 0 {
            return None;
        }
        informative = total;
        profile.push((len, contained as f64 / total as f64));
    }
    profile.sort_by_key(|(len, _)| *len);
    // The longest candidate still containing enough probes.
    let best = profile
        .iter()
        .rev()
        .find(|(_, frac)| *frac >= min_containment)?;
    Some(PoolBoundary {
        pool_len: best.0,
        containment: best.1,
        probes: informative,
        profile,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::changes::Span;
    use dynamips_atlas::ProbeId;
    use dynamips_netaddr::{Ipv6Prefix, Ipv6PrefixPool};
    use dynamips_netsim::rngutil::derive_rng;
    use dynamips_netsim::SimTime;
    use dynamips_routing::Asn;
    use rand::Rng;

    /// Build a probe that draws `n` random /64s out of one /40 pool.
    fn probe_in_pool(seed: u64, pool: &str, n: usize) -> ProbeHistory {
        let mut rng = derive_rng(seed, 77);
        let pool = Ipv6PrefixPool::new(pool.parse().unwrap(), 56).unwrap();
        let v6: Vec<Span<Ipv6Prefix>> = (0..n)
            .map(|i| {
                let deleg = pool.prefix(rng.gen_range(0..pool.capacity())).unwrap();
                Span {
                    value: deleg.nth_subprefix(64, 0).unwrap(),
                    first: SimTime(i as u64 * 24),
                    last: SimTime(i as u64 * 24 + 23),
                }
            })
            .collect();
        ProbeHistory {
            probe: ProbeId(seed as u32),
            virtual_index: 0,
            asn: Asn(64500),
            v4: vec![],
            v6,
        }
    }

    #[test]
    fn recovers_the_slash40_pool_grain() {
        // 30 probes, each pinned to one of three /40 pools.
        let pools = [
            "2001:db8:1000::/40",
            "2001:db8:a000::/40",
            "2001:db8:ee00::/40",
        ];
        let histories: Vec<ProbeHistory> = (0..30u64)
            .map(|i| probe_in_pool(i, pools[(i % 3) as usize], 40))
            .collect();
        let refs: Vec<&ProbeHistory> = histories.iter().collect();
        let b = infer_pool_boundary(&refs, 16..=56, 4, 0.9).expect("boundary found");
        assert_eq!(b.pool_len, 40, "{:?}", b.profile);
        assert!(b.containment >= 0.95);
        assert_eq!(b.probes, 30);
    }

    #[test]
    fn tolerates_administrative_pool_moves() {
        // Probes split their lifetime between two /40 pools (one admin
        // renumbering event): the /40 grain must still be recovered.
        let histories: Vec<ProbeHistory> = (0..20u64)
            .map(|i| {
                let mut h = probe_in_pool(i, "2001:db8:1000::/40", 30);
                let second = probe_in_pool(1000 + i, "2001:db8:a000::/40", 20);
                h.v6.extend(second.v6);
                h
            })
            .collect();
        let refs: Vec<&ProbeHistory> = histories.iter().collect();
        let b = infer_pool_boundary(&refs, 16..=56, 4, 0.9).expect("boundary found");
        assert_eq!(b.pool_len, 40, "{:?}", b.profile);
    }

    #[test]
    fn stable_probes_are_uninformative() {
        // A couple of observations per probe: "few unique prefixes" would
        // hold at any length, so such probes must not vote.
        let histories: Vec<ProbeHistory> = (0..5u64)
            .map(|i| probe_in_pool(i, "2001:db8:1000::/40", 2))
            .collect();
        let refs: Vec<&ProbeHistory> = histories.iter().collect();
        assert!(infer_pool_boundary(&refs, 16..=56, 4, 0.9).is_none());
    }

    #[test]
    fn fragmented_assignments_push_boundary_shorter() {
        // Probes roaming across the whole /32: the best containment length
        // is near /32, not /40.
        let histories: Vec<ProbeHistory> = (0..10u64)
            .map(|seed| {
                let mut rng = derive_rng(seed, 5);
                let agg = Ipv6PrefixPool::new("2001:db8::/32".parse().unwrap(), 56).unwrap();
                let v6: Vec<Span<Ipv6Prefix>> = (0..60)
                    .map(|i| Span {
                        value: agg
                            .prefix(rng.gen_range(0..1 << 24))
                            .unwrap()
                            .nth_subprefix(64, 0)
                            .unwrap(),
                        first: SimTime(i as u64 * 24),
                        last: SimTime(i as u64 * 24 + 23),
                    })
                    .collect();
                ProbeHistory {
                    probe: ProbeId(seed as u32),
                    virtual_index: 0,
                    asn: Asn(64500),
                    v4: vec![],
                    v6,
                }
            })
            .collect();
        let refs: Vec<&ProbeHistory> = histories.iter().collect();
        let b = infer_pool_boundary(&refs, 16..=56, 4, 0.9).expect("boundary found");
        assert!(b.pool_len <= 33, "{:?}", b.pool_len);
    }

    #[test]
    fn profile_is_monotone_non_increasing() {
        let histories: Vec<ProbeHistory> = (0..10u64)
            .map(|i| probe_in_pool(i, "2001:db8:1000::/40", 30))
            .collect();
        let refs: Vec<&ProbeHistory> = histories.iter().collect();
        let b = infer_pool_boundary(&refs, 16..=56, 4, 0.5).unwrap();
        for w in b.profile.windows(2) {
            assert!(
                w[1].1 <= w[0].1 + 1e-9,
                "containment cannot grow with length: {:?}",
                b.profile
            );
        }
    }
}
