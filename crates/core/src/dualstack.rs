//! Dual-stack classification and v4/v6 change co-occurrence.
//!
//! Section 3.2 splits IPv4 durations by whether the probe "has been
//! consistently reporting IPv6 'IP echo' measurements during the same
//! period", and investigates "whether IPv4 and IPv6 assignments in
//! dual-stack networks change simultaneously" (90.6% same-hour in DTAG,
//! mostly non-co-occurring in Comcast).

use crate::changes::{sandwiched_durations, ProbeHistory, Span};
use dynamips_netsim::SimTime;

/// An IPv4 duration labeled by the probe's stack type during it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
// lint:allow(dead-pub): values flow to other crates through pub fn
// returns and pattern matches without the type name being spelled.
pub struct LabeledDuration {
    /// Duration, hours.
    pub hours: u64,
    /// Whether the probe was dual-stacked during this assignment.
    pub dual_stack: bool,
}

/// Classify each sandwiched IPv4 duration of a probe as dual-stack or not:
/// a duration is dual-stack when IPv6 observations cover at least
/// `min_coverage` of the assignment's lifetime.
pub fn labeled_v4_durations(history: &ProbeHistory, min_coverage: f64) -> Vec<LabeledDuration> {
    let durations = sandwiched_durations(&history.v4);
    // Sandwiched span i (starting at index 1) corresponds to durations[i-1].
    durations
        .iter()
        .enumerate()
        .map(|(k, &hours)| {
            let span = &history.v4[k + 1];
            LabeledDuration {
                hours,
                dual_stack: v6_covers(history, span.first, span.last, min_coverage),
            }
        })
        .collect()
}

/// Whether IPv6 observations cover at least `min_coverage` of `[lo, hi]`.
fn v6_covers(history: &ProbeHistory, lo: SimTime, hi: SimTime, min_coverage: f64) -> bool {
    let window = hi - lo + 1;
    let mut covered: u64 = 0;
    for s in &history.v6 {
        let a = s.first.max(lo);
        let b = s.last.min(hi);
        if b >= a {
            covered += b - a + 1;
        }
    }
    covered as f64 >= min_coverage * window as f64
}

/// Co-occurrence statistics between v4 and v6 changes on one probe.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CoOccurrence {
    /// v4 changes with a v6 change in the same hour.
    pub simultaneous: usize,
    /// v4 changes without a same-hour v6 change.
    pub v4_only: usize,
    /// v6 changes without a same-hour v4 change.
    pub v6_only: usize,
}

impl CoOccurrence {
    /// Fraction of v4 changes that co-occurred with a v6 change
    /// (the paper reports 90.6% for DTAG).
    pub fn simultaneity(&self) -> f64 {
        let v4_total = self.simultaneous + self.v4_only;
        if v4_total == 0 {
            0.0
        } else {
            self.simultaneous as f64 / v4_total as f64
        }
    }

    /// Merge another probe's counts.
    pub fn merge(&mut self, other: &CoOccurrence) {
        self.simultaneous += other.simultaneous;
        self.v4_only += other.v4_only;
        self.v6_only += other.v6_only;
    }
}

/// Compute same-hour co-occurrence of changes. A "change time" is the first
/// observation of a new span; two changes co-occur when they fall in the
/// same hour. Only changes made while the *other* family was also being
/// observed count — a probe that became dual-stack mid-deployment must not
/// have its single-stack-era changes scored as non-simultaneous.
pub fn co_occurrence(history: &ProbeHistory) -> CoOccurrence {
    fn covered_v6(history: &ProbeHistory, t: SimTime) -> bool {
        history.v6.iter().any(|s| s.first <= t && t <= s.last)
    }
    fn covered_v4(history: &ProbeHistory, t: SimTime) -> bool {
        history.v4.iter().any(|s| s.first <= t && t <= s.last)
    }
    let v4_changes: Vec<SimTime> = change_times(&history.v4)
        .into_iter()
        .filter(|t| covered_v6(history, *t))
        .collect();
    let v6_changes: Vec<SimTime> = change_times(&history.v6)
        .into_iter()
        .filter(|t| covered_v4(history, *t))
        .collect();
    let v6_set: std::collections::HashSet<u64> = v6_changes.iter().map(|t| t.hours()).collect();
    let v4_set: std::collections::HashSet<u64> = v4_changes.iter().map(|t| t.hours()).collect();
    let simultaneous = v4_changes
        .iter()
        .filter(|t| v6_set.contains(&t.hours()))
        .count();
    CoOccurrence {
        simultaneous,
        v4_only: v4_changes.len() - simultaneous,
        v6_only: v6_changes
            .iter()
            .filter(|t| !v4_set.contains(&t.hours()))
            .count(),
    }
}

/// The observation times at which a new assignment was first seen (skipping
/// the initial one, which is not a change).
fn change_times<T>(spans: &[Span<T>]) -> Vec<SimTime> {
    spans.iter().skip(1).map(|s| s.first).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dynamips_atlas::ProbeId;
    use dynamips_netaddr::Ipv6Prefix;
    use dynamips_routing::Asn;
    use std::net::Ipv4Addr;

    fn v4span(a: u8, first: u64, last: u64) -> Span<Ipv4Addr> {
        Span {
            value: Ipv4Addr::new(84, 1, 1, a),
            first: SimTime(first),
            last: SimTime(last),
        }
    }

    fn v6span(seg: u16, first: u64, last: u64) -> Span<Ipv6Prefix> {
        Span {
            value: format!("2003:0:0:{seg:x}::/64").parse().unwrap(),
            first: SimTime(first),
            last: SimTime(last),
        }
    }

    fn history(v4: Vec<Span<Ipv4Addr>>, v6: Vec<Span<Ipv6Prefix>>) -> ProbeHistory {
        ProbeHistory {
            probe: ProbeId(1),
            virtual_index: 0,
            asn: Asn(3320),
            v4,
            v6,
        }
    }

    #[test]
    fn labels_follow_v6_coverage() {
        // v4 spans at 0-9 / 10-19 / 20-29 / 30-39; v6 present only during
        // the second sandwiched span (20..29).
        let h = history(
            vec![
                v4span(1, 0, 9),
                v4span(2, 10, 19),
                v4span(3, 20, 29),
                v4span(4, 30, 39),
            ],
            vec![v6span(1, 20, 29)],
        );
        let labeled = labeled_v4_durations(&h, 0.8);
        assert_eq!(labeled.len(), 2);
        assert_eq!(labeled[0].hours, 10);
        assert!(!labeled[0].dual_stack);
        assert!(labeled[1].dual_stack);
    }

    #[test]
    fn partial_coverage_respects_threshold() {
        // v6 covers half of the sandwiched v4 span.
        let h = history(
            vec![v4span(1, 0, 9), v4span(2, 10, 19), v4span(3, 20, 29)],
            vec![v6span(1, 10, 14)],
        );
        let strict = labeled_v4_durations(&h, 0.8);
        assert!(!strict[0].dual_stack);
        let loose = labeled_v4_durations(&h, 0.4);
        assert!(loose[0].dual_stack);
    }

    #[test]
    fn coupled_changes_are_simultaneous() {
        let h = history(
            vec![v4span(1, 0, 23), v4span(2, 24, 47), v4span(3, 48, 71)],
            vec![v6span(1, 0, 23), v6span(2, 24, 47), v6span(3, 48, 71)],
        );
        let co = co_occurrence(&h);
        assert_eq!(co.simultaneous, 2);
        assert_eq!(co.v4_only, 0);
        assert_eq!(co.v6_only, 0);
        assert!((co.simultaneity() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn independent_changes_do_not_co_occur() {
        let h = history(
            vec![v4span(1, 0, 23), v4span(2, 24, 47)],
            vec![v6span(1, 0, 35), v6span(2, 36, 71)],
        );
        let co = co_occurrence(&h);
        assert_eq!(co.simultaneous, 0);
        assert_eq!(co.v4_only, 1);
        assert_eq!(co.v6_only, 1);
        assert_eq!(co.simultaneity(), 0.0);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = CoOccurrence {
            simultaneous: 9,
            v4_only: 1,
            v6_only: 0,
        };
        a.merge(&CoOccurrence {
            simultaneous: 0,
            v4_only: 10,
            v6_only: 5,
        });
        assert_eq!(a.simultaneous, 9);
        assert_eq!(a.v4_only, 11);
        assert!((a.simultaneity() - 0.45).abs() < 1e-12);
    }

    #[test]
    fn single_stack_era_changes_are_excluded() {
        // The probe renumbered v4 daily at hours 24,48 with no v6 at all,
        // then became dual-stack and had one coupled change at hour 120.
        let h = history(
            vec![
                v4span(1, 0, 23),
                v4span(2, 24, 47),
                v4span(3, 48, 119),
                v4span(4, 120, 200),
            ],
            vec![v6span(1, 96, 119), v6span(2, 120, 200)],
        );
        let co = co_occurrence(&h);
        // Only the hour-120 change counts: it is simultaneous.
        assert_eq!(co.simultaneous, 1);
        assert_eq!(co.v4_only, 0, "pre-dual-stack changes must not count");
        assert!((co.simultaneity() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn no_changes_means_zero_simultaneity() {
        let h = history(vec![v4span(1, 0, 100)], vec![v6span(1, 0, 100)]);
        let co = co_occurrence(&h);
        assert_eq!(co.simultaneity(), 0.0);
        assert_eq!(co.simultaneous + co.v4_only + co.v6_only, 0);
    }
}
