//! Seed-driven target generation: simplified reimplementations of the two
//! techniques the paper names (Section 2.3) so they can be compared against
//! boundary-guided planning on equal terms.
//!
//! * [`NibbleModel`] — Entropy/IP-lite (Foremski et al.): learn per-nibble
//!   value frequencies over the 16 network nibbles of seed /64s, then
//!   generate candidates in order of joint probability.
//! * [`sixgen_targets`] — 6Gen-lite (Murdock et al.): find dense clusters
//!   in the sorted seed list and enumerate the /64s around them.
//!
//! Both originals model full 128-bit addresses; the paper's unit of
//! analysis is the /64, so these operate on the 64 network bits. The
//! `targetgen` experiment in `dynamips-experiments` compares them with the
//! pool/subscriber-boundary plan of [`crate::hitlist`] at equal probe
//! budgets.

use dynamips_netaddr::Ipv6Prefix;
use std::collections::HashSet;

/// Per-nibble frequency model over the 16 network nibbles of a /64.
#[derive(Debug, Clone)]
pub struct NibbleModel {
    /// `freq[pos][value]` = relative frequency of `value` at nibble `pos`
    /// (0 = most significant).
    freq: [[f64; 16]; 16],
    trained_on: usize,
}

impl NibbleModel {
    /// Train on seed /64s. Returns `None` on an empty seed set.
    pub fn train(seeds: &[Ipv6Prefix]) -> Option<NibbleModel> {
        if seeds.is_empty() {
            return None;
        }
        let mut counts = [[0usize; 16]; 16];
        for seed in seeds {
            let network = (seed.bits() >> 64) as u64;
            for (pos, slot) in counts.iter_mut().enumerate() {
                let nibble = ((network >> (60 - 4 * pos)) & 0xf) as usize;
                slot[nibble] += 1;
            }
        }
        let mut freq = [[0f64; 16]; 16];
        for pos in 0..16 {
            for v in 0..16 {
                freq[pos][v] = counts[pos][v] as f64 / seeds.len() as f64;
            }
        }
        Some(NibbleModel {
            freq,
            trained_on: seeds.len(),
        })
    }

    /// Number of seeds the model was trained on.
    // lint:allow(dead-pub): test-facing accessor for the training-set size.
    pub fn trained_on(&self) -> usize {
        self.trained_on
    }

    /// Generate up to `limit` candidate /64s by beam search over the
    /// per-nibble distributions, highest joint probability first. `beam`
    /// bounds the number of partial candidates kept per position.
    pub fn generate(&self, limit: usize, beam: usize) -> Vec<Ipv6Prefix> {
        let beam = beam.max(limit).max(1);
        // (network bits so far, log-probability)
        let mut partials: Vec<(u64, f64)> = vec![(0, 0.0)];
        for pos in 0..16 {
            let mut next: Vec<(u64, f64)> = Vec::with_capacity(partials.len() * 4);
            for (bits, logp) in &partials {
                for v in 0..16u64 {
                    let p = self.freq[pos][v as usize];
                    if p <= 0.0 {
                        continue;
                    }
                    next.push(((bits << 4) | v, logp + p.ln()));
                }
            }
            next.sort_by(|a, b| b.1.total_cmp(&a.1));
            next.truncate(beam);
            partials = next;
        }
        partials
            .into_iter()
            .take(limit)
            .filter_map(|(bits, _)| Ipv6Prefix::from_bits((bits as u128) << 64, 64).ok())
            .collect()
    }
}

/// 6Gen-lite: group sorted seeds into clusters whose covering prefix is at
/// least `min_cluster_len` long, then spend `limit` targets enumerating the
/// /64s of the densest clusters first. Returns targets including the seeds
/// themselves.
pub fn sixgen_targets(seeds: &[Ipv6Prefix], min_cluster_len: u8, limit: usize) -> Vec<Ipv6Prefix> {
    if seeds.is_empty() || limit == 0 {
        return Vec::new();
    }
    let mut sorted: Vec<Ipv6Prefix> = seeds.to_vec();
    sorted.sort();
    sorted.dedup();

    // Greedy clustering over sorted seeds: extend the cluster while the
    // covering prefix stays at least `min_cluster_len`.
    struct Cluster {
        cover: Ipv6Prefix,
        seeds: usize,
    }
    let mut clusters: Vec<Cluster> = Vec::new();
    for seed in &sorted {
        match clusters.last_mut() {
            Some(c) => {
                let cpl = dynamips_netaddr::common_prefix_len_v6(&c.cover, seed);
                if cpl >= min_cluster_len {
                    c.cover = c.cover.supernet(cpl).unwrap_or(c.cover);
                    c.seeds += 1;
                } else {
                    clusters.push(Cluster {
                        cover: *seed,
                        seeds: 1,
                    });
                }
            }
            None => clusters.push(Cluster {
                cover: *seed,
                seeds: 1,
            }),
        }
    }

    // Densest clusters first: seeds per covered /64.
    clusters.sort_by(|a, b| {
        let da = a.seeds as f64 / a.cover.num_subprefixes(64).unwrap_or(u64::MAX) as f64;
        let db = b.seeds as f64 / b.cover.num_subprefixes(64).unwrap_or(u64::MAX) as f64;
        db.total_cmp(&da)
    });

    let mut out: Vec<Ipv6Prefix> = Vec::with_capacity(limit);
    // lint:allow(determinism-taint): dedup guard only; never iterated
    let mut emitted: HashSet<u128> = HashSet::new();
    for c in &clusters {
        if out.len() >= limit {
            break;
        }
        let count = c.cover.num_subprefixes(64).unwrap_or(u64::MAX);
        let budget = (limit - out.len()) as u64;
        for i in 0..count.min(budget) {
            // i < num_subprefixes(64) by the loop bound; skip rather than
            // panic if the invariant slips.
            let Ok(t) = c.cover.nth_subprefix(64, i) else {
                continue;
            };
            if emitted.insert(t.bits()) {
                out.push(t);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hitlist::hit_rate;

    fn p(s: &str) -> Ipv6Prefix {
        s.parse().unwrap()
    }

    #[test]
    fn nibble_model_reproduces_constant_structure() {
        // Seeds share everything but the last nibble pair; zero suffix is
        // the most frequent continuation.
        let seeds: Vec<Ipv6Prefix> = (0..16u32)
            .map(|i| p(&format!("2003:40:a0:{:x}00::/64", i)))
            .collect();
        let model = NibbleModel::train(&seeds).unwrap();
        assert_eq!(model.trained_on(), 16);
        let targets = model.generate(64, 256);
        assert!(!targets.is_empty());
        // Every generated /64 keeps the constant prefix 2003:40:a0.
        for t in &targets {
            assert_eq!(t.supernet(48).unwrap(), p("2003:40:a0::/48"), "{t}");
        }
        // And the seeds themselves are among the most probable candidates.
        let rate = hit_rate(&targets, &seeds);
        assert!(rate > 0.9, "{rate}");
    }

    #[test]
    fn nibble_model_generation_is_probability_ordered() {
        // 75% of seeds end in 0x0, 25% in 0x8 at the last nibble.
        let mut seeds = vec![p("2001:db8::/64"); 3];
        seeds.push(p("2001:db8:0:8::/64"));
        let model = NibbleModel::train(&seeds).unwrap();
        let targets = model.generate(2, 16);
        assert_eq!(targets[0], p("2001:db8::/64"), "most probable first");
        assert_eq!(targets[1], p("2001:db8:0:8::/64"));
    }

    #[test]
    fn empty_seeds_yield_no_model() {
        assert!(NibbleModel::train(&[]).is_none());
    }

    #[test]
    fn sixgen_enumerates_dense_cluster_first() {
        // A dense cluster of 8 seeds inside one /56, plus one far-away seed.
        let mut seeds: Vec<Ipv6Prefix> = (0..8u32)
            .map(|i| p(&format!("2003:40:a0:aa{:02x}::/64", i * 2)))
            .collect();
        seeds.push(p("2a00:9999:0:1::/64"));
        let targets = sixgen_targets(&seeds, 48, 300);
        assert!(!targets.is_empty());
        // The seeds aa00, aa02 ... aa0e tighten the cover to aa00::/60
        // (16 /64s), all of which get enumerated — including the unseen
        // odd-numbered ones in between the seeds.
        let in_cluster = targets
            .iter()
            .filter(|t| t.supernet(60).unwrap() == p("2003:40:a0:aa00::/60"))
            .count();
        assert_eq!(in_cluster, 16, "dense cluster fully enumerated");
        assert!(targets.contains(&p("2003:40:a0:aa01::/64")));
    }

    #[test]
    fn sixgen_respects_budget_and_dedupes() {
        let seeds: Vec<Ipv6Prefix> = (0..8u32)
            .map(|i| p(&format!("2003:40:a0:aa{:02x}::/64", i)))
            .collect();
        let targets = sixgen_targets(&seeds, 48, 5);
        assert_eq!(targets.len(), 5, "budget caps enumeration");
        let set: HashSet<u128> = targets.iter().map(|t| t.bits()).collect();
        assert_eq!(set.len(), 5, "no duplicates");
        assert!(sixgen_targets(&seeds, 48, 0).is_empty());
        assert!(sixgen_targets(&[], 48, 10).is_empty());
    }

    #[test]
    fn sixgen_separates_distant_clusters() {
        let seeds = vec![
            p("2003:40:a0:aa00::/64"),
            p("2003:40:a0:aa01::/64"),
            p("2a00:9999:0:1::/64"),
        ];
        // min_cluster_len 48: the 2a00 seed cannot join the 2003 cluster.
        let targets = sixgen_targets(&seeds, 48, 1000);
        assert!(targets.contains(&p("2a00:9999:0:1::/64")));
        assert!(targets.contains(&p("2003:40:a0:aa00::/64")));
    }
}
