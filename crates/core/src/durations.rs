//! The total-time-fraction metric and periodic-renumbering detection.
//!
//! Section 3.2.1: naive distributions over raw durations overrepresent
//! hosts with short durations, so the paper weights each duration `d` by
//! `n(d) × d / Σ(D)` (Eq. 1) — the probability of catching a CPE holding a
//! duration-`d` assignment when observing a random CPE at a random time.

use crate::stats::weighted_cdf_at;
use dynamips_netsim::{DAY, WEEK, YEAR};
use std::collections::HashMap;

/// Canonical duration marks used on the paper's Figure-1 x axis.
pub(crate) const DURATION_MARKS: [(&str, u64); 12] = [
    ("1h", 1),
    ("6h", 6),
    ("12h", 12),
    ("1d", DAY),
    ("3d", 3 * DAY),
    ("1w", WEEK),
    ("2w", 2 * WEEK),
    ("1m", 30 * DAY),
    ("3m", 91 * DAY),
    ("6m", 182 * DAY),
    ("1y", YEAR),
    ("4y", 4 * YEAR),
];

/// A multiset of assignment durations (hours) from one population (e.g. all
/// dual-stack IPv4 durations of one AS).
///
/// ```
/// use dynamips_core::durations::DurationSet;
///
/// // The paper's Eq.-1 example: a daily renumberer and a monthly one,
/// // observed for a year. A naive PMF would put 97% of durations at one
/// // day; weighted by time, the one-day mass is ~50%.
/// let mut set = DurationSet::new();
/// set.extend(std::iter::repeat(24).take(365));
/// set.extend(std::iter::repeat(30 * 24).take(12));
/// assert!((set.total_time_fraction(24) - 365.0 / 725.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Default)]
pub struct DurationSet {
    durations: Vec<u64>,
}

impl DurationSet {
    /// Create an empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add one duration.
    pub fn push(&mut self, hours: u64) {
        self.durations.push(hours);
    }

    /// Add many durations.
    pub fn extend(&mut self, hours: impl IntoIterator<Item = u64>) {
        self.durations.extend(hours);
    }

    /// Fold another set's durations into this one. Every consumer treats
    /// the set as a multiset (sums, sorted CDFs, per-value counts), so
    /// merging partial sets in any order reproduces the sequential result.
    pub fn merge(&mut self, other: &DurationSet) {
        self.durations.extend_from_slice(&other.durations);
    }

    /// Number of durations.
    pub fn len(&self) -> usize {
        self.durations.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.durations.is_empty()
    }

    /// Total observed assignment time, hours (the paper annotates Figure 1
    /// with this, in years).
    pub fn total_hours(&self) -> u64 {
        self.durations.iter().sum()
    }

    /// Raw durations.
    pub fn raw(&self) -> &[u64] {
        &self.durations
    }

    /// The total time fraction of Eq. 1 for one duration value `d`:
    /// `n(d) × d / Σ(D)`.
    pub fn total_time_fraction(&self, d: u64) -> f64 {
        let total: u64 = self.total_hours();
        if total == 0 {
            return 0.0;
        }
        let n = self.durations.iter().filter(|&&x| x == d).count() as u64;
        (n * d) as f64 / total as f64
    }

    /// The cumulative total time fraction evaluated at `thresholds`
    /// (Figure 1's y axis, "Fraction of total address-duration").
    pub fn cumulative_ttf_at(&self, thresholds: &[u64]) -> Vec<f64> {
        let weighted: Vec<(f64, f64)> = self
            .durations
            .iter()
            .map(|&d| (d as f64, d as f64))
            .collect();
        let t: Vec<f64> = thresholds.iter().map(|&t| t as f64).collect();
        weighted_cdf_at(&weighted, &t)
    }

    /// Cumulative total time fraction at the canonical Figure-1 marks.
    pub fn cumulative_ttf_marks(&self) -> Vec<(&'static str, f64)> {
        let thresholds: Vec<u64> = DURATION_MARKS.iter().map(|(_, h)| *h).collect();
        DURATION_MARKS
            .iter()
            .map(|(label, _)| *label)
            .zip(self.cumulative_ttf_at(&thresholds))
            .collect()
    }
}

/// A detected periodic renumbering pattern.
#[derive(Debug, Clone, Copy, PartialEq)]
// lint:allow(dead-pub): values flow to other crates through pub fn
// returns and pattern matches without the type name being spelled.
pub struct PeriodicPattern {
    /// Detected period, hours.
    pub period_hours: u64,
    /// Fraction of all durations falling within the detection tolerance of
    /// the period.
    pub duration_fraction: f64,
    /// Fraction of total assignment *time* explained by the period.
    pub time_fraction: f64,
}

/// Detect consistent periodic renumbering: a duration value (± `tolerance`
/// relative) that accounts for at least `min_fraction` of all sandwiched
/// durations. Returns the strongest such period.
///
/// This is how the paper's claims like "periodic renumbering after 24 hours
/// in DTAG" or "we observe evidence of consistent periodic renumbering on 35
/// networks" are operationalized.
pub fn detect_period(
    set: &DurationSet,
    tolerance: f64,
    min_fraction: f64,
) -> Option<PeriodicPattern> {
    if set.len() < 10 {
        return None; // too few samples to call anything "consistent"
    }
    // Count durations per exact hour value, then look for the hour whose
    // tolerance window captures the most durations.
    // lint:allow(determinism-taint): keys are sorted before iteration below
    let mut counts: HashMap<u64, usize> = HashMap::new();
    for &d in set.raw() {
        *counts.entry(d).or_insert(0) += 1;
    }
    let mut candidates: Vec<u64> = counts.keys().copied().collect();
    candidates.sort_unstable();

    let mut best: Option<PeriodicPattern> = None;
    for &p in &candidates {
        let lo = ((p as f64) * (1.0 - tolerance)).floor() as u64;
        let hi = ((p as f64) * (1.0 + tolerance)).ceil() as u64;
        let in_window: usize = set.raw().iter().filter(|&&d| d >= lo && d <= hi).count();
        let frac = in_window as f64 / set.len() as f64;
        if frac >= min_fraction {
            let time_in_window: u64 = set.raw().iter().filter(|&&d| d >= lo && d <= hi).sum();
            let pat = PeriodicPattern {
                period_hours: p,
                duration_fraction: frac,
                time_fraction: time_in_window as f64 / set.total_hours().max(1) as f64,
            };
            if best.map(|b| frac > b.duration_fraction).unwrap_or(true) {
                best = Some(pat);
            }
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set(durations: &[u64]) -> DurationSet {
        let mut s = DurationSet::new();
        s.extend(durations.iter().copied());
        s
    }

    #[test]
    fn ttf_weights_by_time_not_count() {
        // The paper's own example: CPE1 has 365 one-day durations, CPE2 has
        // 12 thirty-day durations. A naive PMF would say 97% of durations
        // are one day; the TTF says the one-day mass is 365/725 = 50.3%.
        let mut s = DurationSet::new();
        s.extend(std::iter::repeat_n(24, 365));
        s.extend(std::iter::repeat_n(30 * 24, 12));
        let f1d = s.total_time_fraction(24);
        assert!((f1d - 365.0 / 725.0).abs() < 1e-9, "{f1d}");
        let f30d = s.total_time_fraction(30 * 24);
        assert!((f30d - 360.0 / 725.0).abs() < 1e-9, "{f30d}");
        // Fractions over all distinct values sum to 1.
        assert!((f1d + f30d - 1.0).abs() < 1e-9);
    }

    #[test]
    fn cumulative_ttf_is_monotone_and_ends_at_one() {
        let s = set(&[1, 24, 24, 24, 700, 9000]);
        let marks = s.cumulative_ttf_marks();
        let values: Vec<f64> = marks.iter().map(|(_, v)| *v).collect();
        for w in values.windows(2) {
            assert!(w[1] >= w[0] - 1e-12, "monotone: {values:?}");
        }
        assert!((values.last().unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn cumulative_ttf_at_exact_mode() {
        // All durations exactly one day: everything at or past the 1d mark.
        let s = set(&[24; 50]);
        let c = s.cumulative_ttf_at(&[23, 24, 25]);
        assert_eq!(c, vec![0.0, 1.0, 1.0]);
    }

    #[test]
    fn empty_set_is_safe() {
        let s = DurationSet::new();
        assert!(s.is_empty());
        assert_eq!(s.total_time_fraction(24), 0.0);
        assert_eq!(s.cumulative_ttf_at(&[24]), vec![0.0]);
        assert!(detect_period(&s, 0.05, 0.5).is_none());
    }

    #[test]
    fn detects_exact_24h_period() {
        let s = set(&[24; 100]);
        let p = detect_period(&s, 0.05, 0.5).unwrap();
        assert_eq!(p.period_hours, 24);
        assert!((p.duration_fraction - 1.0).abs() < 1e-12);
        assert!((p.time_fraction - 1.0).abs() < 1e-12);
    }

    #[test]
    fn detects_jittered_period() {
        // 24h ± 1h jitter.
        let mut s = DurationSet::new();
        for i in 0..120u64 {
            s.push(23 + (i % 3));
        }
        let p = detect_period(&s, 0.05, 0.8).unwrap();
        assert!((23..=25).contains(&p.period_hours), "{p:?}");
        assert!(p.duration_fraction > 0.99);
    }

    #[test]
    fn no_false_period_on_spread_durations() {
        // Durations spread geometrically: no single mode.
        let s = set(&[
            10, 20, 40, 80, 160, 320, 640, 1280, 2560, 5120, 30, 60, 90, 200, 400,
        ]);
        assert!(detect_period(&s, 0.05, 0.5).is_none());
    }

    #[test]
    fn mixed_population_period_needs_enough_mass() {
        // 30% at 24h, the rest spread out: threshold 0.5 rejects, 0.25
        // accepts.
        let mut s = DurationSet::new();
        s.extend(std::iter::repeat_n(24, 30));
        s.extend((1..71).map(|i| 100 + i * 37));
        assert!(detect_period(&s, 0.05, 0.5).is_none());
        let p = detect_period(&s, 0.05, 0.25).unwrap();
        assert_eq!(p.period_hours, 24);
    }

    #[test]
    fn total_hours_annotation() {
        let s = set(&[24, 48]);
        assert_eq!(s.total_hours(), 72);
    }

    #[test]
    fn merge_is_order_insensitive() {
        let all = set(&[1, 24, 24, 700, 9000, 24]);
        let mut ab = set(&[1, 24, 24]);
        ab.merge(&set(&[700, 9000, 24]));
        let mut ba = set(&[700, 9000, 24]);
        ba.merge(&set(&[1, 24, 24]));
        for s in [&ab, &ba] {
            assert_eq!(s.len(), all.len());
            assert_eq!(s.total_hours(), all.total_hours());
            assert_eq!(
                s.cumulative_ttf_marks(),
                all.cumulative_ttf_marks(),
                "merged TTF must match sequential"
            );
        }
    }
}
