//! The Appendix-A.1 sanitization pipeline.
//!
//! Raw probe series contain deployment artifacts that would masquerade as
//! assignment dynamics. In order, this pipeline:
//!
//! 1. drops echo records reporting the RIPE test address `193.0.0.78`;
//! 2. drops probes carrying non-residential tags (`datacentre`, `core`,
//!    `system-anchor`, explicit `multihomed`);
//! 3. drops probes with atypical NAT setups (public IPv4 `src_addr`, or
//!    IPv6 `X-Client-IP` ≠ `src_addr`);
//! 4. detects multihoming by looking for alternation — reported values
//!    returning to a recently seen address/prefix — and drops such probes;
//! 5. splits probes that moved between ASes into per-AS "virtual probes";
//! 6. drops (virtual) probes observed for less than a month, and keeps only
//!    those observed within a single AS.

use crate::changes::{histories_from_records, spans_of, ProbeHistory, Span};
use dynamips_atlas::{ProbeSeries, TEST_ADDRESS};
use dynamips_netaddr::Ipv6Prefix;
use dynamips_netsim::SimTime;
use dynamips_routing::{Asn, RoutingTable};

/// Sanitizer thresholds.
#[derive(Debug, Clone, Copy)]
pub struct SanitizeConfig {
    /// Minimum observation span for a (virtual) probe, hours. The paper
    /// uses one month.
    pub min_observed_hours: u64,
    /// Number of returns-to-a-recent-value before a probe is declared
    /// multihomed.
    pub multihoming_revisit_threshold: usize,
    /// How many distinct recent values to remember when looking for
    /// alternation.
    pub multihoming_memory: usize,
}

impl Default for SanitizeConfig {
    fn default() -> Self {
        SanitizeConfig {
            min_observed_hours: 30 * 24,
            multihoming_revisit_threshold: 3,
            multihoming_memory: 2,
        }
    }
}

/// Why a probe (or all of it) was rejected.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
// lint:allow(dead-pub): values flow to other crates through pub fn
// returns and pattern matches without the type name being spelled.
pub enum RejectReason {
    /// Non-residential or explicitly multihomed tag.
    BadTag,
    /// Public IPv4 `src_addr` or mismatched IPv6 `src_addr`.
    AtypicalNat,
    /// Alternating addresses/prefixes.
    Multihomed,
    /// Too little observation time in any single AS.
    TooShort,
    /// No routable observations at all.
    NoData,
}

impl RejectReason {
    /// Stable kebab-case label for degradation accounting
    /// ([`crate::degrade::DegradationReport`]).
    pub fn class(&self) -> &'static str {
        match self {
            RejectReason::BadTag => "bad-tag",
            RejectReason::AtypicalNat => "atypical-nat",
            RejectReason::Multihomed => "multihomed",
            RejectReason::TooShort => "too-short",
            RejectReason::NoData => "no-data",
        }
    }
}

/// Per-filter accounting, mirroring the Appendix's bookkeeping.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SanitizeReport {
    /// Probes seen.
    pub probes_in: usize,
    /// Test-address records removed.
    pub test_address_records: usize,
    /// Probes dropped for bad tags.
    pub bad_tag: usize,
    /// Probes dropped for atypical NAT.
    pub atypical_nat: usize,
    /// Probes dropped as multihomed.
    pub multihomed: usize,
    /// Probes that produced more than one virtual probe (ISP switches).
    pub split_probes: usize,
    /// Virtual probes dropped for insufficient observation.
    pub too_short: usize,
    /// Clean (virtual) probes emitted.
    pub probes_out: usize,
}

impl SanitizeReport {
    /// Fold another report's per-filter counters into this one, so partial
    /// reports from sharded sanitization merge to the sequential totals.
    pub fn merge(&mut self, other: &SanitizeReport) {
        self.probes_in += other.probes_in;
        self.test_address_records += other.test_address_records;
        self.bad_tag += other.bad_tag;
        self.atypical_nat += other.atypical_nat;
        self.multihomed += other.multihomed;
        self.split_probes += other.split_probes;
        self.too_short += other.too_short;
        self.probes_out += other.probes_out;
    }
}

/// Outcome of sanitizing one probe.
#[derive(Debug, Clone)]
pub enum SanitizeOutcome {
    /// Clean histories (one per virtual probe).
    Clean(Vec<ProbeHistory>),
    /// The probe was rejected outright.
    Rejected(RejectReason),
}

/// Tags that mark non-residential deployments (Appendix A.1).
const BAD_TAGS: [&str; 4] = ["multihomed", "datacentre", "core", "system-anchor"];

/// Run the pipeline on one probe. `report` is updated with per-filter
/// accounting.
pub fn sanitize_probe(
    series: &ProbeSeries,
    routing: &RoutingTable,
    cfg: &SanitizeConfig,
    report: &mut SanitizeReport,
) -> SanitizeOutcome {
    report.probes_in += 1;

    // (2) tags
    if series.tags.iter().any(|t| BAD_TAGS.contains(&t.as_str())) {
        report.bad_tag += 1;
        return SanitizeOutcome::Rejected(RejectReason::BadTag);
    }

    // (1) test-address records
    let v4: Vec<_> = series
        .v4
        .iter()
        .filter(|r| {
            if r.client == TEST_ADDRESS {
                report.test_address_records += 1;
                false
            } else {
                true
            }
        })
        .copied()
        .collect();

    // (3) atypical NAT
    let v4_public_src = v4.iter().any(|r| !r.src.is_private());
    let v6_mismatched = series.v6.iter().any(|r| r.src != r.client);
    if v4_public_src || v6_mismatched {
        report.atypical_nat += 1;
        return SanitizeOutcome::Rejected(RejectReason::AtypicalNat);
    }

    // (4) multihoming: alternation in either family.
    let (v4_spans, v6_spans) = histories_from_records(&v4, &series.v6);
    if is_alternating(&v4_spans, cfg) || is_alternating(&v6_spans, cfg) {
        report.multihomed += 1;
        return SanitizeOutcome::Rejected(RejectReason::Multihomed);
    }

    // (5) split by AS runs.
    let histories = split_by_as(series.probe, &v4, &series.v6, routing);
    if histories.is_empty() {
        report.too_short += 1;
        return SanitizeOutcome::Rejected(RejectReason::NoData);
    }
    if histories.len() > 1 {
        report.split_probes += 1;
    }

    // (6) minimum observation per virtual probe.
    let kept: Vec<ProbeHistory> = histories
        .into_iter()
        .filter(|h| {
            if h.observed_hours() >= cfg.min_observed_hours {
                true
            } else {
                report.too_short += 1;
                false
            }
        })
        .collect();

    if kept.is_empty() {
        return SanitizeOutcome::Rejected(RejectReason::TooShort);
    }
    report.probes_out += kept.len();
    SanitizeOutcome::Clean(kept)
}

/// Multihoming heuristic: count spans whose value re-appears among the
/// previous `memory` distinct span values (the A-B-A-B signature).
fn is_alternating<T: PartialEq + Copy>(spans: &[Span<T>], cfg: &SanitizeConfig) -> bool {
    let mut revisits = 0usize;
    for (i, span) in spans.iter().enumerate() {
        let lo = i.saturating_sub(cfg.multihoming_memory);
        if spans[lo..i].iter().any(|p| p.value == span.value) {
            revisits += 1;
            if revisits >= cfg.multihoming_revisit_threshold {
                return true;
            }
        }
    }
    false
}

/// Assign each observation to its origin AS and split the series into
/// contiguous per-AS runs. Observations that are not routed at all are
/// discarded (they cannot be attributed to a network).
fn split_by_as(
    probe: dynamips_atlas::ProbeId,
    v4: &[dynamips_atlas::EchoV4],
    v6: &[dynamips_atlas::EchoV6],
    routing: &RoutingTable,
) -> Vec<ProbeHistory> {
    // Merge both families into one AS-over-time view to find run
    // boundaries.
    let mut as_obs: Vec<(SimTime, Asn)> = Vec::new();
    for r in v4 {
        if let Some(asn) = routing.origin_v4(r.client) {
            as_obs.push((r.time, asn));
        }
    }
    for r in v6 {
        if let Some((_, asn)) = routing.route_v6_prefix(&Ipv6Prefix::slash64_of(r.client)) {
            as_obs.push((r.time, asn));
        }
    }
    as_obs.sort_by_key(|(t, _)| *t);
    let as_runs = spans_of(as_obs.into_iter());

    as_runs
        .iter()
        .enumerate()
        .map(|(i, run)| {
            let lo = run.first;
            let hi = run.last;
            let v4_spans = spans_of(
                v4.iter()
                    .filter(|r| r.time >= lo && r.time <= hi)
                    .filter(|r| routing.origin_v4(r.client) == Some(run.value))
                    .map(|r| (r.time, r.client)),
            );
            let v6_spans = spans_of(
                v6.iter()
                    .filter(|r| r.time >= lo && r.time <= hi)
                    .map(|r| (r.time, Ipv6Prefix::slash64_of(r.client)))
                    .filter(|(_, p)| routing.route_v6_prefix(p).map(|(_, a)| a) == Some(run.value)),
            );
            ProbeHistory {
                probe,
                virtual_index: i as u8,
                asn: run.value,
                v4: v4_spans,
                v6: v6_spans,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dynamips_atlas::{EchoV4, EchoV6, ProbeId};
    use std::net::{Ipv4Addr, Ipv6Addr};

    fn routing() -> RoutingTable {
        let mut t = RoutingTable::new();
        t.announce_v4("84.0.0.0/8".parse().unwrap(), Asn(3320));
        t.announce_v4("98.0.0.0/8".parse().unwrap(), Asn(7922));
        t.announce_v6("2003::/19".parse().unwrap(), Asn(3320));
        t.announce_v6("2601::/20".parse().unwrap(), Asn(7922));
        t
    }

    fn v4rec(hour: u64, client: &str) -> EchoV4 {
        EchoV4 {
            time: SimTime(hour),
            client: client.parse().unwrap(),
            src: Ipv4Addr::new(192, 168, 1, 7),
        }
    }

    fn v6rec(hour: u64, client: &str) -> EchoV6 {
        let c: Ipv6Addr = client.parse().unwrap();
        EchoV6 {
            time: SimTime(hour),
            client: c,
            src: c,
        }
    }

    fn hourly_v4(hours: std::ops::Range<u64>, client: &str) -> Vec<EchoV4> {
        hours.map(|h| v4rec(h, client)).collect()
    }

    fn series(v4: Vec<EchoV4>, v6: Vec<EchoV6>) -> ProbeSeries {
        ProbeSeries {
            probe: ProbeId(1),
            asn: Asn(3320),
            tags: vec![],
            v4,
            v6,
        }
    }

    fn run(s: &ProbeSeries) -> (SanitizeOutcome, SanitizeReport) {
        let mut report = SanitizeReport::default();
        let out = sanitize_probe(s, &routing(), &SanitizeConfig::default(), &mut report);
        (out, report)
    }

    #[test]
    fn clean_long_probe_passes() {
        let mut v4 = hourly_v4(0..800, "84.1.1.1");
        v4.extend(hourly_v4(800..1600, "84.1.2.2"));
        let s = series(v4, (0..1600).map(|h| v6rec(h, "2003:0:0:1::5")).collect());
        let (out, report) = run(&s);
        match out {
            SanitizeOutcome::Clean(hist) => {
                assert_eq!(hist.len(), 1);
                assert_eq!(hist[0].asn, Asn(3320));
                assert_eq!(hist[0].v4.len(), 2);
                assert_eq!(hist[0].v6.len(), 1);
            }
            other => panic!("{other:?}"),
        }
        assert_eq!(report.probes_out, 1);
    }

    #[test]
    fn test_address_records_are_stripped_not_fatal() {
        let mut v4 = vec![v4rec(0, "193.0.0.78"), v4rec(1, "193.0.0.78")];
        v4.extend(hourly_v4(2..800, "84.1.1.1"));
        let s = series(v4, vec![]);
        let (out, report) = run(&s);
        assert!(matches!(out, SanitizeOutcome::Clean(_)));
        assert_eq!(report.test_address_records, 2);
        if let SanitizeOutcome::Clean(h) = out {
            // The test address must not appear as an assignment.
            assert_eq!(h[0].v4.len(), 1);
            assert_eq!(h[0].v4[0].value, "84.1.1.1".parse::<Ipv4Addr>().unwrap());
        }
    }

    #[test]
    fn bad_tags_reject() {
        let mut s = series(hourly_v4(0..800, "84.1.1.1"), vec![]);
        s.tags = vec!["datacentre".into()];
        let (out, report) = run(&s);
        assert!(matches!(
            out,
            SanitizeOutcome::Rejected(RejectReason::BadTag)
        ));
        assert_eq!(report.bad_tag, 1);
    }

    #[test]
    fn public_v4_src_rejects() {
        let mut v4 = hourly_v4(0..800, "84.1.1.1");
        for r in v4.iter_mut() {
            r.src = r.client;
        }
        let (out, report) = run(&series(v4, vec![]));
        assert!(matches!(
            out,
            SanitizeOutcome::Rejected(RejectReason::AtypicalNat)
        ));
        assert_eq!(report.atypical_nat, 1);
    }

    #[test]
    fn mismatched_v6_src_rejects() {
        let mut v6: Vec<EchoV6> = (0..800).map(|h| v6rec(h, "2003:0:0:1::5")).collect();
        for r in v6.iter_mut() {
            r.src = "2003::dead".parse().unwrap();
        }
        let (out, _) = run(&series(hourly_v4(0..800, "84.1.1.1"), v6));
        assert!(matches!(
            out,
            SanitizeOutcome::Rejected(RejectReason::AtypicalNat)
        ));
    }

    #[test]
    fn alternating_addresses_reject_as_multihomed() {
        // A-B-A-B-A-B hourly alternation.
        let v4: Vec<EchoV4> = (0..1600)
            .map(|h| v4rec(h, if h % 2 == 0 { "84.1.1.1" } else { "84.9.9.9" }))
            .collect();
        let (out, report) = run(&series(v4, vec![]));
        assert!(matches!(
            out,
            SanitizeOutcome::Rejected(RejectReason::Multihomed)
        ));
        assert_eq!(report.multihomed, 1);
    }

    #[test]
    fn ordinary_renumbering_is_not_multihoming() {
        // Monotone progression through distinct addresses never revisits.
        let mut v4 = Vec::new();
        for day in 0..40u64 {
            for h in 0..24 {
                v4.push(v4rec(
                    day * 24 + h,
                    &format!("84.1.{}.{}", day / 200 + 1, day % 200 + 1),
                ));
            }
        }
        let (out, _) = run(&series(v4, vec![]));
        assert!(matches!(out, SanitizeOutcome::Clean(_)));
    }

    #[test]
    fn as_move_splits_into_virtual_probes() {
        let mut v4 = hourly_v4(0..1200, "84.1.1.1");
        v4.extend(hourly_v4(1200..2400, "98.7.7.7"));
        let (out, report) = run(&series(v4, vec![]));
        match out {
            SanitizeOutcome::Clean(hist) => {
                assert_eq!(hist.len(), 2);
                assert_eq!(hist[0].asn, Asn(3320));
                assert_eq!(hist[1].asn, Asn(7922));
                assert_eq!(hist[0].virtual_index, 0);
                assert_eq!(hist[1].virtual_index, 1);
            }
            other => panic!("{other:?}"),
        }
        assert_eq!(report.split_probes, 1);
        assert_eq!(report.probes_out, 2);
    }

    #[test]
    fn short_virtual_probes_are_dropped() {
        // 45 days in AS3320, then only 5 days in AS7922.
        let mut v4 = hourly_v4(0..(45 * 24), "84.1.1.1");
        v4.extend(hourly_v4((45 * 24)..(50 * 24), "98.7.7.7"));
        let (out, report) = run(&series(v4, vec![]));
        match out {
            SanitizeOutcome::Clean(hist) => {
                assert_eq!(hist.len(), 1);
                assert_eq!(hist[0].asn, Asn(3320));
            }
            other => panic!("{other:?}"),
        }
        assert_eq!(report.too_short, 1);
    }

    #[test]
    fn wholly_short_probe_rejected() {
        let (out, report) = run(&series(hourly_v4(0..100, "84.1.1.1"), vec![]));
        assert!(matches!(
            out,
            SanitizeOutcome::Rejected(RejectReason::TooShort)
        ));
        assert_eq!(report.probes_out, 0);
        assert_eq!(report.too_short, 1);
    }

    #[test]
    fn unrouted_records_are_ignored() {
        // 10.0.0.0/8 is not announced in the test table.
        let (out, _) = run(&series(hourly_v4(0..800, "10.1.1.1"), vec![]));
        assert!(matches!(
            out,
            SanitizeOutcome::Rejected(RejectReason::NoData)
        ));
    }

    #[test]
    fn report_merge_sums_every_counter() {
        let a = SanitizeReport {
            probes_in: 10,
            test_address_records: 1,
            bad_tag: 2,
            atypical_nat: 3,
            multihomed: 4,
            split_probes: 5,
            too_short: 6,
            probes_out: 7,
        };
        let mut b = a.clone();
        b.merge(&a);
        assert_eq!(
            b,
            SanitizeReport {
                probes_in: 20,
                test_address_records: 2,
                bad_tag: 4,
                atypical_nat: 6,
                multihomed: 8,
                split_probes: 10,
                too_short: 12,
                probes_out: 14,
            }
        );
    }
}
