//! User-count estimation and the double-counting problem.
//!
//! Section 2.3: "Applications that track the number of users in a system
//! can use our results and datasets to reason about the potential to
//! 'double-count' the same host multiple times due to dynamic reassignment
//! and access over both IPv4 and IPv6." This module compares the naive
//! estimators — distinct addresses, distinct /64s — against ground truth.

use dynamips_netaddr::Ipv6Prefix;
use std::collections::HashSet;
use std::net::Ipv6Addr;

/// User-count estimates from one observation window.
#[derive(Debug, Clone, Copy, PartialEq)]
// lint:allow(dead-pub): values flow to other crates through pub fn
// returns and pattern matches without the type name being spelled.
pub struct CountEstimates {
    /// Ground truth: distinct subscribers observed.
    pub true_subscribers: usize,
    /// Distinct full addresses seen (the naive per-address count).
    pub distinct_addresses: usize,
    /// Distinct /64 prefixes seen (the aggregation the paper recommends
    /// reasoning about).
    pub distinct_p64: usize,
    /// `distinct_addresses / true_subscribers`.
    pub address_overcount: f64,
    /// `distinct_p64 / true_subscribers`.
    pub p64_overcount: f64,
}

/// Compute count estimates from `(subscriber ground truth, observed
/// address)` pairs.
pub fn estimate_counts(observations: &[(u32, Ipv6Addr)]) -> Option<CountEstimates> {
    if observations.is_empty() {
        return None;
    }
    // lint:allow(determinism-taint): cardinality only; order never observed
    let subs: HashSet<u32> = observations.iter().map(|(s, _)| *s).collect();
    // lint:allow(determinism-taint): cardinality only; order never observed
    let addrs: HashSet<u128> = observations.iter().map(|(_, a)| u128::from(*a)).collect();
    // lint:allow(determinism-taint): cardinality only; order never observed
    let p64s: HashSet<u128> = observations
        .iter()
        .map(|(_, a)| Ipv6Prefix::slash64_of(*a).bits())
        .collect();
    let n = subs.len();
    Some(CountEstimates {
        true_subscribers: n,
        distinct_addresses: addrs.len(),
        distinct_p64: p64s.len(),
        address_overcount: addrs.len() as f64 / n as f64,
        p64_overcount: p64s.len() as f64 / n as f64,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn addr(p64: &str, iid: u64) -> Ipv6Addr {
        p64.parse::<Ipv6Prefix>().unwrap().with_iid(iid).unwrap()
    }

    #[test]
    fn stable_prefixes_with_rotating_iids_overcount_addresses_only() {
        // 3 subscribers, stable /64s, 10 privacy addresses each.
        let mut obs = Vec::new();
        for sub in 0..3u32 {
            for day in 0..10u64 {
                obs.push((
                    sub,
                    addr(&format!("2003:40:a0:{:x}00::/64", sub), 0x1000 + day),
                ));
            }
        }
        let e = estimate_counts(&obs).unwrap();
        assert_eq!(e.true_subscribers, 3);
        assert_eq!(e.distinct_addresses, 30);
        assert_eq!(e.distinct_p64, 3);
        assert!((e.address_overcount - 10.0).abs() < 1e-9);
        assert!((e.p64_overcount - 1.0).abs() < 1e-9);
    }

    #[test]
    fn renumbering_overcounts_even_at_p64_granularity() {
        // One subscriber whose /64 changed daily for 5 days.
        let obs: Vec<(u32, Ipv6Addr)> = (0..5u64)
            .map(|d| (0, addr(&format!("2003:40:a0:{:x}00::/64", d), 1)))
            .collect();
        let e = estimate_counts(&obs).unwrap();
        assert_eq!(e.true_subscribers, 1);
        assert_eq!(e.distinct_p64, 5);
        assert!((e.p64_overcount - 5.0).abs() < 1e-9);
    }

    #[test]
    fn perfectly_stable_world_counts_exactly() {
        let obs = vec![(0, addr("2003::/64", 1)), (1, addr("2003:0:0:1::/64", 1))];
        let e = estimate_counts(&obs).unwrap();
        assert_eq!(e.distinct_addresses, 2);
        assert_eq!(e.distinct_p64, 2);
        assert!((e.address_overcount - 1.0).abs() < 1e-9);
    }

    #[test]
    fn empty_observations() {
        assert!(estimate_counts(&[]).is_none());
    }
}
