//! Statistics helpers shared by the analyses.

/// Empirical quantile (linear interpolation between order statistics),
/// `q` in `[0, 1]`. Returns `None` on empty input. Input need not be
/// sorted. NaN values sort to the extremes (IEEE total order) rather than
/// panicking, so corrupted inputs degrade instead of aborting.
pub fn quantile(values: &[f64], q: f64) -> Option<f64> {
    if values.is_empty() {
        return None;
    }
    let mut sorted: Vec<f64> = values.to_vec();
    sorted.sort_by(|a, b| a.total_cmp(b));
    Some(quantile_sorted(&sorted, q))
}

/// Quantile over an already-sorted slice. An empty slice yields NaN
/// (rather than panicking); prefer [`quantile`] when emptiness is
/// possible.
pub(crate) fn quantile_sorted(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return f64::NAN;
    }
    let q = q.clamp(0.0, 1.0);
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = pos - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

/// Five-number summary used by the paper's Figure-3 boxplots: whiskers at
/// the 5th/95th percentiles, box at the quartiles, line at the median.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BoxStats {
    /// 5th percentile.
    pub p5: f64,
    /// 25th percentile.
    pub p25: f64,
    /// Median.
    pub p50: f64,
    /// 75th percentile.
    pub p75: f64,
    /// 95th percentile.
    pub p95: f64,
    /// Sample count.
    pub n: usize,
}

impl BoxStats {
    /// Compute the summary; `None` on empty input.
    pub fn from_values(values: &[f64]) -> Option<BoxStats> {
        if values.is_empty() {
            return None;
        }
        let mut sorted = values.to_vec();
        sorted.sort_by(|a, b| a.total_cmp(b));
        Some(BoxStats {
            p5: quantile_sorted(&sorted, 0.05),
            p25: quantile_sorted(&sorted, 0.25),
            p50: quantile_sorted(&sorted, 0.50),
            p75: quantile_sorted(&sorted, 0.75),
            p95: quantile_sorted(&sorted, 0.95),
            n: sorted.len(),
        })
    }
}

/// An empirical CDF evaluated at caller-chosen thresholds.
/// Returns `P(X <= t)` for each `t` in `thresholds`.
pub fn cdf_at(values: &[f64], thresholds: &[f64]) -> Vec<f64> {
    if values.is_empty() {
        return vec![0.0; thresholds.len()];
    }
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| a.total_cmp(b));
    thresholds
        .iter()
        .map(|t| {
            let cnt = sorted.partition_point(|v| v <= t);
            cnt as f64 / sorted.len() as f64
        })
        .collect()
}

/// A weighted empirical CDF: `P(X <= t)` where each sample carries a weight.
/// This is the paper's *cumulative total time fraction* when weights are the
/// durations themselves.
///
/// Sorts once and precomputes prefix sums of the weights, then answers each
/// threshold with a binary search (`partition_point`, as [`cdf_at`] does) —
/// O((N + T) log N) rather than the O(T·N) of rescanning the sorted slice
/// per threshold. Values are ordered by IEEE total order, so NaN inputs
/// degrade instead of panicking.
pub fn weighted_cdf_at(values: &[(f64, f64)], thresholds: &[f64]) -> Vec<f64> {
    let total: f64 = values.iter().map(|(_, w)| w).sum();
    if total <= 0.0 {
        return vec![0.0; thresholds.len()];
    }
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| a.0.total_cmp(&b.0));
    // prefix[k] = sum of the first k weights in value order, accumulated
    // left to right exactly as the per-threshold rescan did, so results are
    // bit-identical to the O(T·N) form.
    let mut prefix = Vec::with_capacity(sorted.len() + 1);
    // -0.0 is `f64::sum`'s identity; starting there keeps the empty-prefix
    // quotient bit-identical to the rescan's `sum() / total`.
    let mut acc = -0.0f64;
    prefix.push(acc);
    for (_, w) in &sorted {
        acc += w;
        prefix.push(acc);
    }
    thresholds
        .iter()
        .map(|t| {
            let cnt = sorted.partition_point(|(v, _)| v <= t);
            prefix[cnt] / total
        })
        .collect()
}

/// Histogram over log10-spaced bins, used for the paper's Figure-4 degree
/// densities (x axis 10^0 … 10^6). Returns `(bin upper edges, densities)`
/// where densities sum to 1 over non-empty input.
pub(crate) fn log10_histogram(
    values: &[f64],
    decades: u32,
    bins_per_decade: u32,
) -> (Vec<f64>, Vec<f64>) {
    let nbins = (decades * bins_per_decade) as usize;
    let mut counts = vec![0.0f64; nbins];
    let mut total = 0.0;
    for &v in values {
        if v < 1.0 {
            continue;
        }
        let pos = v.log10() * bins_per_decade as f64;
        let idx = (pos.floor() as usize).min(nbins - 1);
        counts[idx] += 1.0;
        total += 1.0;
    }
    let edges: Vec<f64> = (1..=nbins)
        .map(|i| 10f64.powf(i as f64 / bins_per_decade as f64))
        .collect();
    if total > 0.0 {
        for c in counts.iter_mut() {
            *c /= total;
        }
    }
    (edges, counts)
}

/// Weighted variant of [`log10_histogram`]: each value contributes its
/// weight (the paper's "hit weighted distribution").
pub(crate) fn log10_histogram_weighted(
    values: &[(f64, f64)],
    decades: u32,
    bins_per_decade: u32,
) -> (Vec<f64>, Vec<f64>) {
    let nbins = (decades * bins_per_decade) as usize;
    let mut counts = vec![0.0f64; nbins];
    let mut total = 0.0;
    for &(v, w) in values {
        if v < 1.0 || w <= 0.0 {
            continue;
        }
        let pos = v.log10() * bins_per_decade as f64;
        let idx = (pos.floor() as usize).min(nbins - 1);
        counts[idx] += w;
        total += w;
    }
    let edges: Vec<f64> = (1..=nbins)
        .map(|i| 10f64.powf(i as f64 / bins_per_decade as f64))
        .collect();
    if total > 0.0 {
        for c in counts.iter_mut() {
            *c /= total;
        }
    }
    (edges, counts)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantiles_of_known_data() {
        let v = vec![1.0, 2.0, 3.0, 4.0, 5.0];
        assert_eq!(quantile(&v, 0.0), Some(1.0));
        assert_eq!(quantile(&v, 0.5), Some(3.0));
        assert_eq!(quantile(&v, 1.0), Some(5.0));
        assert_eq!(quantile(&v, 0.25), Some(2.0));
        // Interpolation between order statistics.
        assert_eq!(quantile(&[1.0, 2.0], 0.5), Some(1.5));
        assert_eq!(quantile(&[], 0.5), None);
    }

    #[test]
    fn quantile_handles_unsorted_input() {
        assert_eq!(quantile(&[5.0, 1.0, 3.0], 0.5), Some(3.0));
    }

    #[test]
    fn box_stats_ordering() {
        let v: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        let b = BoxStats::from_values(&v).unwrap();
        assert!(b.p5 < b.p25 && b.p25 < b.p50 && b.p50 < b.p75 && b.p75 < b.p95);
        assert_eq!(b.n, 100);
        assert!((b.p50 - 50.5).abs() < 1e-9);
        assert!(BoxStats::from_values(&[]).is_none());
    }

    #[test]
    fn cdf_at_thresholds() {
        let v = vec![1.0, 2.0, 3.0, 4.0];
        let c = cdf_at(&v, &[0.5, 1.0, 2.5, 4.0, 10.0]);
        assert_eq!(c, vec![0.0, 0.25, 0.5, 1.0, 1.0]);
        assert_eq!(cdf_at(&[], &[1.0]), vec![0.0]);
    }

    #[test]
    fn weighted_cdf_weights_mass_not_count() {
        // One short sample with weight 1, one long with weight 9:
        // the short one holds only 10% of the mass.
        let v = vec![(1.0, 1.0), (10.0, 9.0)];
        let c = weighted_cdf_at(&v, &[1.0, 9.9, 10.0]);
        assert!((c[0] - 0.1).abs() < 1e-12);
        assert!((c[1] - 0.1).abs() < 1e-12);
        assert!((c[2] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn weighted_cdf_empty_or_zero_weight() {
        assert_eq!(weighted_cdf_at(&[], &[1.0]), vec![0.0]);
        assert_eq!(weighted_cdf_at(&[(1.0, 0.0)], &[1.0]), vec![0.0]);
    }

    /// The O(T·N) reference the prefix-sum form replaced.
    fn weighted_cdf_at_rescan(values: &[(f64, f64)], thresholds: &[f64]) -> Vec<f64> {
        let total: f64 = values.iter().map(|(_, w)| w).sum();
        if total <= 0.0 {
            return vec![0.0; thresholds.len()];
        }
        let mut sorted = values.to_vec();
        sorted.sort_by(|a, b| a.0.total_cmp(&b.0));
        thresholds
            .iter()
            .map(|t| {
                let mass: f64 = sorted
                    .iter()
                    .take_while(|(v, _)| v <= t)
                    .map(|(_, w)| w)
                    .sum();
                mass / total
            })
            .collect()
    }

    #[test]
    fn weighted_cdf_prefix_sums_match_rescan_reference() {
        // Pseudo-random values with heavy ties (the DurationSet case:
        // weight == value, many repeated durations) — the prefix-sum form
        // must be bit-identical to the per-threshold rescan.
        let mut state = 0x9E3779B97F4A7C15u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let values: Vec<(f64, f64)> = (0..500)
            .map(|_| {
                let v = (next() % 48) as f64; // heavy ties, includes 0
                (v, v)
            })
            .collect();
        let thresholds: Vec<f64> = (0..60).map(|t| t as f64 - 5.0).collect();
        let fast = weighted_cdf_at(&values, &thresholds);
        let slow = weighted_cdf_at_rescan(&values, &thresholds);
        assert_eq!(fast.len(), slow.len());
        for (i, (f, s)) in fast.iter().zip(&slow).enumerate() {
            assert_eq!(f.to_bits(), s.to_bits(), "threshold {i}: {f} vs {s}");
        }
        // Mixed weights (not equal to values) and non-integer thresholds.
        let values: Vec<(f64, f64)> = (0..200)
            .map(|i| ((next() % 10) as f64, 0.5 + (i % 7) as f64))
            .collect();
        let thresholds = [-1.0, 0.0, 2.5, 9.0, 100.0];
        assert_eq!(
            weighted_cdf_at(&values, &thresholds),
            weighted_cdf_at_rescan(&values, &thresholds)
        );
    }

    #[test]
    fn log_histogram_bins_by_magnitude() {
        // Values at 5, 50, 500: one per decade with 1 bin per decade.
        let (edges, d) = log10_histogram(&[5.0, 50.0, 500.0], 6, 1);
        assert_eq!(edges.len(), 6);
        assert!((d[0] - 1.0 / 3.0).abs() < 1e-12);
        assert!((d[1] - 1.0 / 3.0).abs() < 1e-12);
        assert!((d[2] - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(d[3], 0.0);
        let total: f64 = d.iter().sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn log_histogram_clamps_overflow_and_skips_sub_one() {
        let (_, d) = log10_histogram(&[0.5, 1e9], 6, 1);
        // 0.5 skipped; 1e9 clamps into the last bin.
        assert_eq!(d[5], 1.0);
    }

    #[test]
    fn weighted_log_histogram() {
        let (_, d) = log10_histogram_weighted(&[(5.0, 1.0), (500.0, 3.0)], 6, 1);
        assert!((d[0] - 0.25).abs() < 1e-12);
        assert!((d[2] - 0.75).abs() < 1e-12);
    }
}
