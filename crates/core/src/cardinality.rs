//! IPv4–IPv6 association cardinality (Figure 4 and Section 4.3).
//!
//! "We study the cardinality of associated IPv4 and IPv6 prefixes, by
//! looking at the number of associated IPv6 /64 prefixes per IPv4 /24
//! prefix, essentially measuring the connectivity degree of each IPv4
//! prefix." High degrees indicate CGNAT-style multiplexing.

use crate::stats::{log10_histogram, log10_histogram_weighted};
use dynamips_cdn::AssociationDataset;
use std::collections::{HashMap, HashSet};

/// Degree data for one population (mobile or fixed).
#[derive(Debug, Clone, Default)]
pub struct DegreeStats {
    /// Per-/24: number of distinct associated /64s.
    pub unique_p64_per_v24: Vec<u64>,
    /// Per-/24: total association tuples (the "hit weight").
    pub hits_per_v24: Vec<u64>,
    /// Fraction of distinct /64s associated with exactly one /24 (the
    /// paper reports 87% for mobile).
    pub p64_degree_one_fraction: f64,
}

impl DegreeStats {
    /// Density over log10 bins of the unique-degree distribution
    /// (Figure 4's "unique /64s" curve). Returns (bin edges, densities).
    pub fn unique_density(&self, decades: u32, bins_per_decade: u32) -> (Vec<f64>, Vec<f64>) {
        let v: Vec<f64> = self.unique_p64_per_v24.iter().map(|&c| c as f64).collect();
        log10_histogram(&v, decades, bins_per_decade)
    }

    /// Hit-weighted density (Figure 4's "weighted /64s" curve).
    pub fn weighted_density(&self, decades: u32, bins_per_decade: u32) -> (Vec<f64>, Vec<f64>) {
        let v: Vec<(f64, f64)> = self
            .unique_p64_per_v24
            .iter()
            .zip(&self.hits_per_v24)
            .map(|(&c, &h)| (c as f64, h as f64))
            .collect();
        log10_histogram_weighted(&v, decades, bins_per_decade)
    }

    /// The degree at which the weighted distribution peaks (Figure 4's
    /// reading: ~150–200 for fixed, ~80,000 for mobile). Evaluated over
    /// log bins; returns the geometric bin center.
    pub fn weighted_peak(&self, decades: u32, bins_per_decade: u32) -> Option<f64> {
        let (edges, dens) = self.weighted_density(decades, bins_per_decade);
        let (idx, &max) = dens.iter().enumerate().max_by(|a, b| a.1.total_cmp(b.1))?;
        if max <= 0.0 {
            return None;
        }
        let hi = edges[idx];
        let lo = if idx == 0 { 1.0 } else { edges[idx - 1] };
        Some((lo * hi).sqrt())
    }
}

/// Compute degree statistics, split into (fixed, mobile).
pub fn degree_stats(ds: &AssociationDataset) -> (DegreeStats, DegreeStats) {
    let mut out = (DegreeStats::default(), DegreeStats::default());
    for mobile in [false, true] {
        let mut p64s_per_v24: HashMap<u32, HashSet<u128>> = HashMap::new();
        let mut hits_per_v24: HashMap<u32, u64> = HashMap::new();
        let mut v24s_per_p64: HashMap<u128, HashSet<u32>> = HashMap::new();
        for t in ds.tuples.iter().filter(|t| t.mobile == mobile) {
            p64s_per_v24
                .entry(t.v24.bits())
                .or_default()
                .insert(t.p64.bits());
            *hits_per_v24.entry(t.v24.bits()).or_default() += 1;
            v24s_per_p64
                .entry(t.p64.bits())
                .or_default()
                .insert(t.v24.bits());
        }
        let mut keys: Vec<u32> = p64s_per_v24.keys().copied().collect();
        keys.sort_unstable();
        let stats = DegreeStats {
            unique_p64_per_v24: keys.iter().map(|k| p64s_per_v24[k].len() as u64).collect(),
            hits_per_v24: keys.iter().map(|k| hits_per_v24[k]).collect(),
            p64_degree_one_fraction: if v24s_per_p64.is_empty() {
                0.0
            } else {
                v24s_per_p64.values().filter(|s| s.len() == 1).count() as f64
                    / v24s_per_p64.len() as f64
            },
        };
        if mobile {
            out.1 = stats;
        } else {
            out.0 = stats;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use dynamips_cdn::Association;
    use dynamips_routing::Asn;

    fn tuple(v24: &str, p64: &str, day: u32, mobile: bool) -> Association {
        Association {
            v24: v24.parse().unwrap(),
            p64: p64.parse().unwrap(),
            day,
            asn: Asn(1),
            mobile,
        }
    }

    fn ds(tuples: Vec<Association>) -> AssociationDataset {
        AssociationDataset {
            raw_count: tuples.len() as u64,
            tuples,
            ..Default::default()
        }
    }

    #[test]
    fn degree_counts_unique_p64s() {
        let d = ds(vec![
            tuple("84.128.0.0/24", "2003:0:0:1::/64", 0, false),
            tuple("84.128.0.0/24", "2003:0:0:1::/64", 1, false), // repeat: 1 unique, 2 hits
            tuple("84.128.0.0/24", "2003:0:0:2::/64", 1, false),
            tuple("84.128.1.0/24", "2003:0:0:3::/64", 0, false),
        ]);
        let (fixed, mobile) = degree_stats(&d);
        assert_eq!(fixed.unique_p64_per_v24, vec![2, 1]);
        assert_eq!(fixed.hits_per_v24, vec![3, 1]);
        assert!(mobile.unique_p64_per_v24.is_empty());
    }

    #[test]
    fn p64_degree_one_fraction() {
        let d = ds(vec![
            // /64 :1 maps to two different /24s, :2 and :3 to one each.
            tuple("84.128.0.0/24", "2003:0:0:1::/64", 0, true),
            tuple("84.128.9.0/24", "2003:0:0:1::/64", 5, true),
            tuple("84.128.0.0/24", "2003:0:0:2::/64", 0, true),
            tuple("84.128.1.0/24", "2003:0:0:3::/64", 0, true),
        ]);
        let (_, mobile) = degree_stats(&d);
        assert!((mobile.p64_degree_one_fraction - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn weighted_peak_reflects_heavy_v24s() {
        // 10 /24s with degree 10 (10 hits each) and one /24 with degree
        // 10000 and 100000 hits: the weighted peak must sit at the heavy one.
        let mut stats = DegreeStats::default();
        for _ in 0..10 {
            stats.unique_p64_per_v24.push(10);
            stats.hits_per_v24.push(10);
        }
        stats.unique_p64_per_v24.push(10_000);
        stats.hits_per_v24.push(100_000);
        let peak = stats.weighted_peak(6, 4).unwrap();
        assert!(peak > 5_000.0 && peak < 20_000.0, "{peak}");
        // The unweighted density still peaks at 10.
        let (edges, dens) = stats.unique_density(6, 4);
        let argmax = dens
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap()
            .0;
        assert!(edges[argmax] <= 32.0, "{}", edges[argmax]);
    }

    #[test]
    fn empty_dataset_degrees() {
        let (fixed, mobile) = degree_stats(&ds(vec![]));
        assert!(fixed.unique_p64_per_v24.is_empty());
        assert_eq!(mobile.p64_degree_one_fraction, 0.0);
        assert!(fixed.weighted_peak(6, 4).is_none());
    }
}
