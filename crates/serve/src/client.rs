//! A minimal blocking HTTP/1.1 client over `std::net::TcpStream`, used
//! by the load generator, the CI smoke, and the serve tests. It speaks
//! exactly the dialect the server emits: one request per connection,
//! `Connection: close`, body read to EOF.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::time::Duration;

/// Hard cap on a response body we are willing to buffer (64 MiB); a
/// server streaming more than this is answered with an error, not OOM.
const MAX_RESPONSE_BYTES: usize = 64 << 20;

/// One fetched response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FetchResult {
    /// HTTP status code from the status line.
    pub status: u16,
    /// Response body (after the blank line), read to EOF.
    pub body: Vec<u8>,
}

/// Split `http://host:port/path` into (`host:port`, `/path`).
pub fn split_url(url: &str) -> Result<(String, String), String> {
    let rest = url
        .strip_prefix("http://")
        .ok_or_else(|| format!("unsupported url {url:?}: only http:// is supported"))?;
    let (authority, path) = match rest.split_once('/') {
        Some((a, p)) => (a, format!("/{p}")),
        None => (rest, "/".to_string()),
    };
    if authority.is_empty() {
        return Err(format!("url {url:?} has an empty host"));
    }
    Ok((authority.to_string(), path))
}

/// `GET path` against `addr` (a `host:port`), with one timeout applied
/// to connect, read, and write independently.
pub fn http_get(addr: &str, path: &str, timeout_ms: u64) -> Result<FetchResult, String> {
    let request = format!("GET {path} HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n\r\n");
    http_request(addr, &request, timeout_ms)
}

/// Send raw `request` bytes to `addr` and parse whatever comes back as
/// an HTTP response. Exposed so degraded-mode tests can send torn or
/// mutated request text through the same transport path.
pub fn http_request(addr: &str, request: &str, timeout_ms: u64) -> Result<FetchResult, String> {
    let timeout = Duration::from_millis(timeout_ms.max(1));
    let sockaddr = resolve(addr)?;
    let mut stream = TcpStream::connect_timeout(&sockaddr, timeout)
        .map_err(|e| format!("connect {addr}: {e}"))?;
    stream
        .set_read_timeout(Some(timeout))
        .map_err(|e| format!("set_read_timeout: {e}"))?;
    stream
        .set_write_timeout(Some(timeout))
        .map_err(|e| format!("set_write_timeout: {e}"))?;
    stream
        .write_all(request.as_bytes())
        .map_err(|e| format!("write {addr}: {e}"))?;
    let mut raw = Vec::with_capacity(1024);
    let mut chunk = [0u8; 4096];
    loop {
        match stream.read(&mut chunk) {
            Ok(0) => break,
            Ok(n) => {
                raw.extend_from_slice(chunk.get(..n).unwrap_or(&[]));
                if raw.len() > MAX_RESPONSE_BYTES {
                    return Err(format!(
                        "response from {addr} exceeds {MAX_RESPONSE_BYTES} bytes"
                    ));
                }
            }
            Err(e) => return Err(format!("read {addr}: {e}")),
        }
    }
    parse_response(&raw)
}

fn resolve(addr: &str) -> Result<SocketAddr, String> {
    addr.to_socket_addrs()
        .map_err(|e| format!("resolve {addr}: {e}"))?
        .next()
        .ok_or_else(|| format!("resolve {addr}: no addresses"))
}

fn parse_response(raw: &[u8]) -> Result<FetchResult, String> {
    let head_end = raw
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .map(|p| p + 4)
        .ok_or_else(|| "response has no head/body separator".to_string())?;
    let head = String::from_utf8_lossy(raw.get(..head_end).unwrap_or(raw));
    let status_line = head.lines().next().unwrap_or("");
    let status = status_line
        .split(' ')
        .nth(1)
        .and_then(|code| code.parse::<u16>().ok())
        .ok_or_else(|| format!("bad status line {status_line:?}"))?;
    Ok(FetchResult {
        status,
        body: raw.get(head_end..).unwrap_or(&[]).to_vec(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splits_urls() {
        assert_eq!(
            split_url("http://127.0.0.1:8080/artifacts/fig1?seed=1").unwrap(),
            (
                "127.0.0.1:8080".to_string(),
                "/artifacts/fig1?seed=1".to_string()
            )
        );
        assert_eq!(
            split_url("http://localhost:9").unwrap(),
            ("localhost:9".to_string(), "/".to_string())
        );
        assert!(split_url("https://x/").is_err());
        assert!(split_url("http:///path").is_err());
    }

    #[test]
    fn parses_responses_and_rejects_garbage() {
        let ok = parse_response(b"HTTP/1.1 404 Not Found\r\nx: y\r\n\r\nmissing\n").unwrap();
        assert_eq!(
            (ok.status, ok.body.as_slice()),
            (404, b"missing\n".as_slice())
        );
        assert!(parse_response(b"not http at all").is_err());
        assert!(parse_response(b"HTTP/1.1 banana\r\n\r\n").is_err());
    }
}
