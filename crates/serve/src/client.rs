//! A minimal blocking HTTP/1.1 client over `std::net::TcpStream`, used
//! by the load generator, the CI smoke, the chaos sweep, and the serve
//! tests. The strict one-shot path ([`http_get`]) sends
//! `Connection: close` and reads the body to EOF; the keep-alive path
//! ([`KeepAliveConnection`]) frames responses by `Content-Length` and
//! reuses one socket for sequential requests.
//!
//! Two layers live here. The transport layer ([`http_get`] /
//! [`http_request`]) performs a single strict exchange: it tries every
//! resolved address of the endpoint, requires an `HTTP/1.`-prefixed
//! status line, and cross-checks `Content-Length` against the bytes
//! actually received — so torn writes and corrupted responses surface
//! as errors instead of silently wrong bodies. The resilience layer
//! ([`ResilientClient`]) wraps it with a bounded [`RetryPolicy`]
//! (exponential backoff, deterministic seeded jitter via
//! [`JitterSource`], `Retry-After` honored) and a per-endpoint
//! [`CircuitBreaker`], with every retry and breaker transition counted
//! in [`ClientMetrics`]. Only idempotent `GET`s are ever retried: the
//! resilient layer exposes no other verb, and raw [`http_request`]
//! exchanges are never replayed.

use std::collections::BTreeMap;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, PoisonError};
use std::time::Duration;

/// Hard cap on a response body we are willing to buffer (64 MiB); a
/// server streaming more than this is answered with an error, not OOM.
const MAX_RESPONSE_BYTES: usize = 64 << 20;

/// What the server said (or didn't) about when to retry.
///
/// `Retry-After` may legally be either delta-seconds or an HTTP-date.
/// This client only parses the delta-seconds form, but an HTTP-date is
/// still an *explicit server backoff request* — collapsing it to
/// "absent" (the old behavior) made the retry policy ignore exactly the
/// servers that asked most clearly to be left alone. The unparseable
/// case is therefore its own state, honored at the policy's cap.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RetryAfter {
    /// No `Retry-After` header was sent.
    Absent,
    /// A delta-seconds `Retry-After` value.
    Seconds(u64),
    /// A `Retry-After` header was present but not delta-seconds (e.g.
    /// an HTTP-date): treated as "present, capped at
    /// `retry_after_cap_ms`".
    UnparseableHint,
}

/// One fetched response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FetchResult {
    /// HTTP status code from the status line.
    pub status: u16,
    /// Response body (after the blank line), read to EOF.
    pub body: Vec<u8>,
    /// The server's `Retry-After` hint, if any.
    pub retry_after: RetryAfter,
}

/// Split `http://host:port/path` into (`host:port`, `/path`).
pub fn split_url(url: &str) -> Result<(String, String), String> {
    let rest = url
        .strip_prefix("http://")
        .ok_or_else(|| format!("unsupported url {url:?}: only http:// is supported"))?;
    let (authority, path) = match rest.split_once('/') {
        Some((a, p)) => (a, format!("/{p}")),
        None => (rest, "/".to_string()),
    };
    if authority.is_empty() {
        return Err(format!("url {url:?} has an empty host"));
    }
    Ok((authority.to_string(), path))
}

/// `GET path` against `addr` (a `host:port`), with one timeout applied
/// to connect, read, and write independently.
pub fn http_get(addr: &str, path: &str, timeout_ms: u64) -> Result<FetchResult, String> {
    let request = format!("GET {path} HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n\r\n");
    http_request(addr, &request, timeout_ms)
}

/// Send raw `request` bytes to `addr` and parse whatever comes back as
/// an HTTP response. Exposed so degraded-mode tests can send torn or
/// mutated request text through the same transport path.
pub fn http_request(addr: &str, request: &str, timeout_ms: u64) -> Result<FetchResult, String> {
    let timeout = Duration::from_millis(timeout_ms.max(1));
    let mut stream = connect_any(addr, timeout)?;
    stream
        .set_read_timeout(Some(timeout))
        .map_err(|e| format!("set_read_timeout: {e}"))?;
    stream
        .set_write_timeout(Some(timeout))
        .map_err(|e| format!("set_write_timeout: {e}"))?;
    stream
        .write_all(request.as_bytes())
        .map_err(|e| format!("write {addr}: {e}"))?;
    let mut raw = Vec::with_capacity(1024);
    let mut chunk = [0u8; 4096];
    loop {
        match stream.read(&mut chunk) {
            Ok(0) => break,
            Ok(n) => {
                raw.extend_from_slice(chunk.get(..n).unwrap_or(&[]));
                if raw.len() > MAX_RESPONSE_BYTES {
                    return Err(format!(
                        "response from {addr} exceeds {MAX_RESPONSE_BYTES} bytes"
                    ));
                }
            }
            Err(e) => return Err(format!("read {addr}: {e}")),
        }
    }
    parse_response(&raw)
}

/// Resolve `addr` and try to connect to every resolved address in
/// order; the error surfaced on total failure names the last address
/// that was tried and how many were attempted.
fn connect_any(addr: &str, timeout: Duration) -> Result<TcpStream, String> {
    let addrs: Vec<SocketAddr> = addr
        .to_socket_addrs()
        .map_err(|e| format!("resolve {addr}: {e}"))?
        .collect();
    if addrs.is_empty() {
        return Err(format!("resolve {addr}: no addresses"));
    }
    let total = addrs.len();
    let mut last: Option<(SocketAddr, std::io::Error)> = None;
    for sockaddr in addrs {
        match TcpStream::connect_timeout(&sockaddr, timeout) {
            Ok(stream) => return Ok(stream),
            Err(e) => last = Some((sockaddr, e)),
        }
    }
    match last {
        Some((sockaddr, e)) => Err(format!(
            "connect {addr}: {e} (last tried {sockaddr}; {total} address(es) attempted)"
        )),
        None => Err(format!("resolve {addr}: no addresses")),
    }
}

/// Strict response parsing: the status line must be `HTTP/1.`-shaped
/// and, when the server declared `Content-Length`, the body must match
/// it exactly — a shorter body is a torn write, a longer one is trailing
/// garbage, and both are reported as transport errors so retry logic
/// can treat them as such.
fn parse_response(raw: &[u8]) -> Result<FetchResult, String> {
    let head_end = raw
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .map(|p| p + 4)
        .ok_or_else(|| "response has no head/body separator".to_string())?;
    let head = String::from_utf8_lossy(raw.get(..head_end).unwrap_or(raw)).to_string();
    let status_line = head.lines().next().unwrap_or("");
    if !status_line.starts_with("HTTP/1.") {
        return Err(format!("status line {status_line:?} is not HTTP/1.x"));
    }
    let status = status_line
        .split(' ')
        .nth(1)
        .and_then(|code| code.parse::<u16>().ok())
        .ok_or_else(|| format!("bad status line {status_line:?}"))?;
    let body = raw.get(head_end..).unwrap_or(&[]).to_vec();
    if let Some(declared) = header_value(&head, "content-length") {
        match declared.parse::<usize>() {
            Ok(n) if n == body.len() => {}
            Ok(n) => {
                return Err(format!(
                    "content-length {n} but {} body bytes arrived (torn response)",
                    body.len()
                ))
            }
            Err(_) => return Err(format!("unparseable content-length {declared:?}")),
        }
    }
    let retry_after = match header_value(&head, "retry-after") {
        None => RetryAfter::Absent,
        Some(v) => match v.parse::<u64>() {
            Ok(secs) => RetryAfter::Seconds(secs),
            Err(_) => RetryAfter::UnparseableHint,
        },
    };
    Ok(FetchResult {
        status,
        body,
        retry_after,
    })
}

/// The (trimmed) value of the first header named `name`, matched
/// case-insensitively.
fn header_value(head: &str, name: &str) -> Option<String> {
    head.lines().skip(1).find_map(|line| {
        let (key, value) = line.split_once(':')?;
        key.trim()
            .eq_ignore_ascii_case(name)
            .then(|| value.trim().to_string())
    })
}

/// A client-side HTTP/1.1 keep-alive connection: sequential `GET`s on
/// one socket, with responses framed strictly by `Content-Length`
/// instead of EOF. Used by the open-loop load generator (thousands of
/// concurrent connections would otherwise each burn a three-way
/// handshake per request) and, opt-in, by [`ResilientClient`].
///
/// The connection stops being reusable when the server answers
/// `connection: close` or omits `Content-Length` (EOF framing consumes
/// the socket); [`KeepAliveConnection::is_reusable`] reports which.
pub struct KeepAliveConnection {
    stream: TcpStream,
    addr: String,
    reusable: bool,
    served: u64,
}

impl KeepAliveConnection {
    /// Connect to `addr` with `timeout_ms` applied to connect, read,
    /// and write independently.
    pub fn connect(addr: &str, timeout_ms: u64) -> Result<KeepAliveConnection, String> {
        let timeout = Duration::from_millis(timeout_ms.max(1));
        let stream = connect_any(addr, timeout)?;
        stream
            .set_read_timeout(Some(timeout))
            .map_err(|e| format!("set_read_timeout: {e}"))?;
        stream
            .set_write_timeout(Some(timeout))
            .map_err(|e| format!("set_write_timeout: {e}"))?;
        Ok(KeepAliveConnection {
            stream,
            addr: addr.to_string(),
            reusable: true,
            served: 0,
        })
    }

    /// Whether another request may be sent on this socket.
    pub fn is_reusable(&self) -> bool {
        self.reusable
    }

    /// Responses completed on this connection so far.
    pub fn requests_served(&self) -> u64 {
        self.served
    }

    /// `GET path`, reusing the established socket. Any error poisons
    /// the connection (the stream position is unknown afterwards).
    pub fn get(&mut self, path: &str) -> Result<FetchResult, String> {
        if !self.reusable {
            return Err(format!("connection to {} is no longer reusable", self.addr));
        }
        let request = format!(
            "GET {path} HTTP/1.1\r\nHost: {}\r\nConnection: keep-alive\r\n\r\n",
            self.addr
        );
        if let Err(e) = self.stream.write_all(request.as_bytes()) {
            self.reusable = false;
            return Err(format!("write {}: {e}", self.addr));
        }
        match self.read_one_response() {
            Ok(result) => {
                self.served += 1;
                Ok(result)
            }
            Err(e) => {
                self.reusable = false;
                Err(e)
            }
        }
    }

    /// Read exactly one response: head to `\r\n\r\n`, then
    /// `Content-Length` body bytes (or to EOF when no length was sent,
    /// which consumes the connection).
    fn read_one_response(&mut self) -> Result<FetchResult, String> {
        let addr = self.addr.clone();
        let mut raw = Vec::with_capacity(1024);
        let mut chunk = [0u8; 4096];
        let head_end = loop {
            if let Some(pos) = raw.windows(4).position(|w| w == b"\r\n\r\n") {
                break pos + 4;
            }
            if raw.len() > MAX_RESPONSE_BYTES {
                return Err(format!("response head from {addr} exceeds the buffer cap"));
            }
            match self.stream.read(&mut chunk) {
                Ok(0) => return Err(format!("read {addr}: connection closed mid-response")),
                Ok(n) => raw.extend_from_slice(chunk.get(..n).unwrap_or(&[])),
                Err(e) => return Err(format!("read {addr}: {e}")),
            }
        };
        let head = String::from_utf8_lossy(raw.get(..head_end).unwrap_or(&raw)).to_string();
        let declared = match header_value(&head, "content-length") {
            Some(v) => Some(
                v.parse::<usize>()
                    .map_err(|_| format!("unparseable content-length {v:?} from {addr}"))?,
            ),
            None => None,
        };
        match declared {
            Some(len) => {
                let need = head_end
                    .checked_add(len)
                    .filter(|n| *n <= MAX_RESPONSE_BYTES)
                    .ok_or_else(|| format!("content-length {len} from {addr} exceeds the cap"))?;
                while raw.len() < need {
                    match self.stream.read(&mut chunk) {
                        Ok(0) => {
                            return Err(format!("read {addr}: connection closed mid-body"));
                        }
                        Ok(n) => raw.extend_from_slice(chunk.get(..n).unwrap_or(&[])),
                        Err(e) => return Err(format!("read {addr}: {e}")),
                    }
                }
                if raw.len() > need {
                    // Bytes past the declared body belong to no request
                    // we made: the framing is broken.
                    return Err(format!(
                        "read {addr}: {} bytes past the declared content-length",
                        raw.len() - need
                    ));
                }
            }
            None => {
                // EOF framing: legal, but consumes the connection.
                self.reusable = false;
                loop {
                    match self.stream.read(&mut chunk) {
                        Ok(0) => break,
                        Ok(n) => {
                            raw.extend_from_slice(chunk.get(..n).unwrap_or(&[]));
                            if raw.len() > MAX_RESPONSE_BYTES {
                                return Err(format!("response from {addr} exceeds the cap"));
                            }
                        }
                        Err(e) => return Err(format!("read {addr}: {e}")),
                    }
                }
            }
        }
        if header_value(&head, "connection")
            .map(|v| v.eq_ignore_ascii_case("close"))
            .unwrap_or(false)
        {
            self.reusable = false;
        }
        parse_response(&raw)
    }
}

/// A deterministic jitter source (SplitMix64): the same seed yields the
/// same jitter sequence, so retry schedules are reproducible and tests
/// never need wall-clock sleeps to reason about them.
#[derive(Debug, Clone)]
pub struct JitterSource {
    state: u64,
}

impl JitterSource {
    /// A jitter stream seeded with `seed`.
    pub fn seeded(seed: u64) -> JitterSource {
        JitterSource { state: seed }
    }

    /// Next raw 64-bit value of the stream.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A value in `[0, bound)`; 0 when `bound` is 0.
    pub fn in_range(&mut self, bound: u64) -> u64 {
        if bound == 0 {
            0
        } else {
            self.next_u64() % bound
        }
    }
}

/// Bounded-retry policy for idempotent GETs.
#[derive(Debug, Clone)]
pub struct RetryPolicy {
    /// Total attempts, including the first (floored at 1).
    pub max_attempts: u32,
    /// Backoff before the second attempt, milliseconds; doubles per
    /// further attempt.
    pub base_backoff_ms: u64,
    /// Ceiling on the exponential backoff, milliseconds.
    pub max_backoff_ms: u64,
    /// Ceiling applied to a server-sent `Retry-After`, milliseconds
    /// (a confused server cannot park the client for minutes).
    pub retry_after_cap_ms: u64,
    /// Seed for the deterministic backoff jitter.
    pub jitter_seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 4,
            base_backoff_ms: 25,
            max_backoff_ms: 1_000,
            retry_after_cap_ms: 2_000,
            jitter_seed: 0x5EED,
        }
    }
}

impl RetryPolicy {
    /// The jittered exponential backoff before attempt `next_attempt`
    /// (2-based: the wait that precedes the second attempt is
    /// `backoff_ms(2, ..)`). Equal-jitter: half the exponential value is
    /// fixed, the other half drawn from the seeded jitter stream.
    pub fn backoff_ms(&self, next_attempt: u32, jitter: &mut JitterSource) -> u64 {
        let exponent = next_attempt.saturating_sub(2).min(16);
        let exp = self
            .base_backoff_ms
            .saturating_mul(1u64 << exponent)
            .min(self.max_backoff_ms);
        let half = exp / 2;
        half + jitter.in_range(exp - half + 1)
    }

    /// How long to wait before `next_attempt`, honoring a server-sent
    /// `Retry-After` (capped). Returns the wait in milliseconds and
    /// whether the `Retry-After` value governed it. A present-but-
    /// unparseable hint (HTTP-date form) is honored at the cap.
    pub fn retry_wait_ms(
        &self,
        next_attempt: u32,
        retry_after: &RetryAfter,
        jitter: &mut JitterSource,
    ) -> (u64, bool) {
        let backoff = self.backoff_ms(next_attempt, jitter);
        let hinted = match retry_after {
            RetryAfter::Absent => return (backoff, false),
            RetryAfter::Seconds(secs) => secs.saturating_mul(1_000).min(self.retry_after_cap_ms),
            RetryAfter::UnparseableHint => self.retry_after_cap_ms,
        };
        (backoff.max(hinted), hinted >= backoff)
    }
}

/// Circuit-breaker tunables.
#[derive(Debug, Clone)]
pub struct BreakerConfig {
    /// Consecutive failures that trip the breaker open.
    pub failure_threshold: u32,
    /// Calls fast-failed while open before the next call is admitted as
    /// a half-open probe. Counting calls instead of wall-clock time
    /// keeps the state machine fully deterministic.
    pub cooldown_rejects: u32,
}

impl Default for BreakerConfig {
    fn default() -> BreakerConfig {
        BreakerConfig {
            failure_threshold: 5,
            cooldown_rejects: 3,
        }
    }
}

/// Breaker states, in the classic closed → open → half-open cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Healthy: every call is admitted.
    Closed,
    /// Tripped: calls fast-fail until the cooldown count elapses.
    Open,
    /// Cooling down: exactly one probe call is in flight; its outcome
    /// decides whether the breaker closes or re-opens.
    HalfOpen,
}

impl BreakerState {
    /// Stable lowercase label for metrics and logs.
    pub fn label(self) -> &'static str {
        match self {
            BreakerState::Closed => "closed",
            BreakerState::Open => "open",
            BreakerState::HalfOpen => "half-open",
        }
    }
}

/// What the breaker decided about one call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerDecision {
    /// Proceed normally.
    Allow,
    /// Proceed, but as the half-open probe (the breaker just moved
    /// open → half-open).
    Probe,
    /// Fast-fail without touching the network.
    FastFail,
}

/// A per-endpoint circuit breaker. Deliberately wall-clock-free: the
/// open → half-open transition is driven by the count of fast-failed
/// calls, not elapsed time, so behavior is a pure function of the call
/// sequence.
#[derive(Debug, Clone)]
pub struct CircuitBreaker {
    cfg: BreakerConfig,
    state: BreakerState,
    consecutive_failures: u32,
    rejected_since_open: u32,
}

impl CircuitBreaker {
    /// A closed breaker with `cfg`.
    pub fn new(cfg: BreakerConfig) -> CircuitBreaker {
        CircuitBreaker {
            cfg,
            state: BreakerState::Closed,
            consecutive_failures: 0,
            rejected_since_open: 0,
        }
    }

    /// Current state.
    pub fn state(&self) -> BreakerState {
        self.state
    }

    /// Gate one call.
    pub fn admit(&mut self) -> BreakerDecision {
        match self.state {
            BreakerState::Closed => BreakerDecision::Allow,
            BreakerState::Open => {
                if self.rejected_since_open >= self.cfg.cooldown_rejects {
                    self.state = BreakerState::HalfOpen;
                    BreakerDecision::Probe
                } else {
                    self.rejected_since_open += 1;
                    BreakerDecision::FastFail
                }
            }
            // Only one probe at a time; concurrent calls fast-fail
            // until its outcome is recorded.
            BreakerState::HalfOpen => BreakerDecision::FastFail,
        }
    }

    /// Record a successful call. Returns `true` when this closed the
    /// breaker (half-open probe succeeded).
    pub fn record_success(&mut self) -> bool {
        self.consecutive_failures = 0;
        if self.state == BreakerState::HalfOpen {
            self.state = BreakerState::Closed;
            true
        } else {
            false
        }
    }

    /// Record a failed call. Returns `true` when this tripped the
    /// breaker open (threshold reached, or half-open probe failed).
    pub fn record_failure(&mut self) -> bool {
        match self.state {
            BreakerState::Closed => {
                self.consecutive_failures += 1;
                if self.consecutive_failures >= self.cfg.failure_threshold {
                    self.state = BreakerState::Open;
                    self.rejected_since_open = 0;
                    true
                } else {
                    false
                }
            }
            BreakerState::HalfOpen => {
                self.state = BreakerState::Open;
                self.rejected_since_open = 0;
                self.consecutive_failures = self.cfg.failure_threshold;
                true
            }
            BreakerState::Open => false,
        }
    }
}

/// Client-side counters: every attempt, retry, failure class, and
/// breaker transition. All atomics, so one registry can be shared by
/// concurrent callers.
#[derive(Debug, Default)]
pub struct ClientMetrics {
    attempts: AtomicU64,
    retries: AtomicU64,
    successes: AtomicU64,
    transport_errors: AtomicU64,
    server_5xx: AtomicU64,
    retry_after_honored: AtomicU64,
    retry_after_unparseable: AtomicU64,
    conn_reuses: AtomicU64,
    breaker_opens: AtomicU64,
    breaker_probes: AtomicU64,
    breaker_closes: AtomicU64,
    breaker_fast_fails: AtomicU64,
}

macro_rules! counter {
    ($bump:ident, $get:ident, $field:ident, $doc:literal) => {
        #[doc = $doc]
        pub fn $get(&self) -> u64 {
            self.$field.load(Ordering::Relaxed)
        }
        fn $bump(&self) {
            self.$field.fetch_add(1, Ordering::Relaxed);
        }
    };
}

impl ClientMetrics {
    /// Fresh, all-zero registry.
    pub fn new() -> ClientMetrics {
        ClientMetrics::default()
    }

    counter!(
        bump_attempts,
        attempts_total,
        attempts,
        "Network attempts made (excludes fast-fails)."
    );
    counter!(
        bump_retries,
        retries_total,
        retries,
        "Attempts that were retries of an earlier failure."
    );
    counter!(
        bump_successes,
        successes_total,
        successes,
        "Requests that returned a definitive response."
    );
    counter!(
        bump_transport_errors,
        transport_errors_total,
        transport_errors,
        "Attempts that died in transport (connect/read/parse)."
    );
    counter!(
        bump_server_5xx,
        server_5xx_total,
        server_5xx,
        "Attempts answered with a retryable 5xx."
    );
    counter!(
        bump_retry_after,
        retry_after_honored_total,
        retry_after_honored,
        "Backoffs governed by a server `Retry-After`."
    );
    counter!(
        bump_retry_after_unparseable,
        retry_after_unparseable_total,
        retry_after_unparseable,
        "`Retry-After` headers present but not delta-seconds (honored at the cap)."
    );
    counter!(
        bump_conn_reuses,
        conn_reuses_total,
        conn_reuses,
        "Requests sent on a reused (keep-alive) pooled connection."
    );
    counter!(
        bump_breaker_opens,
        breaker_opens_total,
        breaker_opens,
        "Breaker transitions into open."
    );
    counter!(
        bump_breaker_probes,
        breaker_probes_total,
        breaker_probes,
        "Breaker transitions into half-open (probe admitted)."
    );
    counter!(
        bump_breaker_closes,
        breaker_closes_total,
        breaker_closes,
        "Breaker transitions back to closed."
    );
    counter!(
        bump_breaker_fast_fails,
        breaker_fast_fails_total,
        breaker_fast_fails,
        "Calls fast-failed by an open breaker."
    );

    /// One-line summary for reports.
    pub fn render(&self) -> String {
        format!(
            "attempts={} retries={} ok={} transport-errors={} http-5xx={} retry-after={} retry-after-unparseable={} conn-reuses={} breaker(open={} probe={} close={} fast-fail={})",
            self.attempts_total(),
            self.retries_total(),
            self.successes_total(),
            self.transport_errors_total(),
            self.server_5xx_total(),
            self.retry_after_honored_total(),
            self.retry_after_unparseable_total(),
            self.conn_reuses_total(),
            self.breaker_opens_total(),
            self.breaker_probes_total(),
            self.breaker_closes_total(),
            self.breaker_fast_fails_total(),
        )
    }
}

/// A retrying, circuit-breaking GET client over the strict transport
/// layer. Retries only idempotent GETs by construction; every decision
/// that affects the schedule (jitter, cooldown) is seeded, so a given
/// failure sequence always produces the same retry trace.
pub struct ResilientClient {
    policy: RetryPolicy,
    breaker_cfg: BreakerConfig,
    breakers: Mutex<BTreeMap<String, CircuitBreaker>>,
    jitter: Mutex<JitterSource>,
    metrics: ClientMetrics,
    /// Opt-in keep-alive pooling (see [`ResilientClient::with_connection_reuse`]).
    reuse_connections: bool,
    /// Idle keep-alive connections per endpoint, capped at [`POOL_CAP`].
    pool: Mutex<BTreeMap<String, Vec<KeepAliveConnection>>>,
}

/// Idle pooled connections kept per endpoint.
const POOL_CAP: usize = 8;

impl ResilientClient {
    /// A client with `policy` and per-endpoint breakers under
    /// `breaker_cfg`. Connection reuse is off by default — callers that
    /// tear servers (or proxies) down between requests keep the strict
    /// one-exchange-per-socket behavior unless they opt in.
    pub fn new(policy: RetryPolicy, breaker_cfg: BreakerConfig) -> ResilientClient {
        let jitter = JitterSource::seeded(policy.jitter_seed);
        ResilientClient {
            policy,
            breaker_cfg,
            breakers: Mutex::new(BTreeMap::new()),
            jitter: Mutex::new(jitter),
            metrics: ClientMetrics::new(),
            reuse_connections: false,
            pool: Mutex::new(BTreeMap::new()),
        }
    }

    /// Enable HTTP/1.1 keep-alive connection pooling: successful
    /// exchanges park their socket for the next request to the same
    /// endpoint. A pooled socket the server has since closed is
    /// discarded and the request transparently falls back to a fresh
    /// connection — staleness never surfaces as a transport error.
    pub fn with_connection_reuse(mut self) -> ResilientClient {
        self.reuse_connections = true;
        self
    }

    fn pop_pooled(&self, addr: &str) -> Option<KeepAliveConnection> {
        self.pool
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .get_mut(addr)
            .and_then(Vec::pop)
    }

    fn push_pooled(&self, addr: &str, conn: KeepAliveConnection) {
        let mut pool = self.pool.lock().unwrap_or_else(PoisonError::into_inner);
        let idle = pool.entry(addr.to_string()).or_default();
        if idle.len() < POOL_CAP {
            idle.push(conn);
        }
    }

    /// One GET over the pool: try a parked connection first (a stale one
    /// falls back to a fresh socket inside the same attempt), park the
    /// socket again when it stayed reusable.
    fn pooled_get(&self, addr: &str, path: &str, timeout_ms: u64) -> Result<FetchResult, String> {
        if let Some(mut conn) = self.pop_pooled(addr) {
            if let Ok(result) = conn.get(path) {
                self.metrics.bump_conn_reuses();
                if conn.is_reusable() {
                    self.push_pooled(addr, conn);
                }
                return Ok(result);
            }
            // Stale pooled socket (server closed it while parked):
            // fall through to a fresh connection without consuming a
            // retry attempt.
        }
        let mut conn = KeepAliveConnection::connect(addr, timeout_ms)?;
        let result = conn.get(path)?;
        if conn.is_reusable() {
            self.push_pooled(addr, conn);
        }
        Ok(result)
    }

    /// The client-side counters.
    pub fn metrics(&self) -> &ClientMetrics {
        &self.metrics
    }

    /// Current breaker state for `addr` (closed if never used).
    pub fn breaker_state(&self, addr: &str) -> BreakerState {
        self.breakers
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .get(addr)
            .map(|b| b.state())
            .unwrap_or(BreakerState::Closed)
    }

    fn with_breaker<T>(&self, addr: &str, f: impl FnOnce(&mut CircuitBreaker) -> T) -> T {
        let mut breakers = self.breakers.lock().unwrap_or_else(PoisonError::into_inner);
        let breaker = breakers
            .entry(addr.to_string())
            .or_insert_with(|| CircuitBreaker::new(self.breaker_cfg.clone()));
        f(breaker)
    }

    /// `GET path` against `addr` with retries and circuit breaking.
    /// Definitive responses (anything below 500) are returned as `Ok`
    /// immediately; transport errors and 5xx are retried up to the
    /// policy bound, after which the last 5xx is returned as `Ok` (the
    /// caller sees the status) and the last transport error as `Err`.
    pub fn get(&self, addr: &str, path: &str, timeout_ms: u64) -> Result<FetchResult, String> {
        let mut attempt: u32 = 0;
        let max_attempts = self.policy.max_attempts.max(1);
        loop {
            attempt += 1;
            match self.with_breaker(addr, |b| b.admit()) {
                BreakerDecision::Allow => {}
                BreakerDecision::Probe => self.metrics.bump_breaker_probes(),
                BreakerDecision::FastFail => {
                    self.metrics.bump_breaker_fast_fails();
                    return Err(format!("circuit breaker open for {addr} (fast fail)"));
                }
            }
            self.metrics.bump_attempts();
            if attempt > 1 {
                self.metrics.bump_retries();
            }
            let outcome = if self.reuse_connections {
                self.pooled_get(addr, path, timeout_ms)
            } else {
                http_get(addr, path, timeout_ms)
            };
            match outcome {
                Ok(result) if result.status < 500 => {
                    if self.with_breaker(addr, |b| b.record_success()) {
                        self.metrics.bump_breaker_closes();
                    }
                    self.metrics.bump_successes();
                    return Ok(result);
                }
                Ok(result) => {
                    // Retryable server error.
                    self.metrics.bump_server_5xx();
                    if self.with_breaker(addr, |b| b.record_failure()) {
                        self.metrics.bump_breaker_opens();
                    }
                    if result.retry_after == RetryAfter::UnparseableHint {
                        self.metrics.bump_retry_after_unparseable();
                    }
                    if attempt >= max_attempts {
                        return Ok(result);
                    }
                    let (wait_ms, honored) = {
                        let mut jitter = self.jitter.lock().unwrap_or_else(PoisonError::into_inner);
                        self.policy
                            .retry_wait_ms(attempt + 1, &result.retry_after, &mut jitter)
                    };
                    if honored {
                        self.metrics.bump_retry_after();
                    }
                    std::thread::sleep(Duration::from_millis(wait_ms));
                }
                Err(e) => {
                    self.metrics.bump_transport_errors();
                    if self.with_breaker(addr, |b| b.record_failure()) {
                        self.metrics.bump_breaker_opens();
                    }
                    if attempt >= max_attempts {
                        return Err(format!("{e} (after {attempt} attempts)"));
                    }
                    let wait_ms = {
                        let mut jitter = self.jitter.lock().unwrap_or_else(PoisonError::into_inner);
                        self.policy.backoff_ms(attempt + 1, &mut jitter)
                    };
                    std::thread::sleep(Duration::from_millis(wait_ms));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;
    use std::thread;

    #[test]
    fn splits_urls() {
        assert_eq!(
            split_url("http://127.0.0.1:8080/artifacts/fig1?seed=1").unwrap(),
            (
                "127.0.0.1:8080".to_string(),
                "/artifacts/fig1?seed=1".to_string()
            )
        );
        assert_eq!(
            split_url("http://localhost:9").unwrap(),
            ("localhost:9".to_string(), "/".to_string())
        );
        assert!(split_url("https://x/").is_err());
        assert!(split_url("http:///path").is_err());
    }

    #[test]
    fn parses_responses_and_rejects_garbage() {
        let ok =
            parse_response(b"HTTP/1.1 404 Not Found\r\nx: y\r\nRetry-After: 3\r\n\r\nmissing\n")
                .unwrap();
        assert_eq!(
            (ok.status, ok.body.as_slice(), ok.retry_after),
            (404, b"missing\n".as_slice(), RetryAfter::Seconds(3))
        );
        // An HTTP-date Retry-After is present-but-unparseable, not absent.
        let dated = parse_response(
            b"HTTP/1.1 503 Unavailable\r\nRetry-After: Fri, 31 Dec 1999 23:59:59 GMT\r\n\r\nbusy\n",
        )
        .unwrap();
        assert_eq!(dated.retry_after, RetryAfter::UnparseableHint);
        let bare = parse_response(b"HTTP/1.1 200 OK\r\n\r\nok\n").unwrap();
        assert_eq!(bare.retry_after, RetryAfter::Absent);
        assert!(parse_response(b"not http at all").is_err());
        assert!(parse_response(b"HTTP/1.1 banana\r\n\r\n").is_err());
        // A corrupted status line is a transport error even with a
        // plausible shape after the damage.
        assert!(parse_response(b"XTTP/1.1 200 OK\r\n\r\nok").is_err());
    }

    #[test]
    fn content_length_mismatch_is_a_torn_response() {
        let torn = parse_response(b"HTTP/1.1 200 OK\r\ncontent-length: 10\r\n\r\nhal");
        assert!(torn.unwrap_err().contains("torn response"));
        let exact = parse_response(b"HTTP/1.1 200 OK\r\nContent-Length: 3\r\n\r\nhal").unwrap();
        assert_eq!(exact.body, b"hal");
        // No declared length: body is whatever EOF delimited.
        let lenless = parse_response(b"HTTP/1.1 200 OK\r\n\r\nwhatever").unwrap();
        assert_eq!(lenless.body, b"whatever");
    }

    #[test]
    fn connect_error_names_the_address_it_tried() {
        // Bind-then-drop guarantees a dead port.
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        drop(listener);
        let err = http_get(&addr, "/", 200).unwrap_err();
        assert!(err.contains("connect"), "{err}");
        assert!(err.contains("last tried"), "{err}");
        assert!(err.contains("address(es) attempted"), "{err}");
    }

    #[test]
    fn jitter_and_backoff_are_deterministic_in_the_seed() {
        let policy = RetryPolicy {
            max_attempts: 5,
            base_backoff_ms: 16,
            max_backoff_ms: 100,
            retry_after_cap_ms: 500,
            jitter_seed: 99,
        };
        let mut a = JitterSource::seeded(99);
        let mut b = JitterSource::seeded(99);
        let seq_a: Vec<u64> = (2..6).map(|n| policy.backoff_ms(n, &mut a)).collect();
        let seq_b: Vec<u64> = (2..6).map(|n| policy.backoff_ms(n, &mut b)).collect();
        assert_eq!(seq_a, seq_b);
        // Equal-jitter bounds: between half the exponential and the cap.
        assert!(seq_a[0] >= 8 && seq_a[0] <= 16, "{seq_a:?}");
        assert!(seq_a.iter().all(|ms| *ms <= 100), "{seq_a:?}");
        let mut c = JitterSource::seeded(100);
        let seq_c: Vec<u64> = (2..6).map(|n| policy.backoff_ms(n, &mut c)).collect();
        assert_ne!(seq_a, seq_c, "different seeds should jitter differently");
    }

    #[test]
    fn retry_after_governs_the_wait_when_larger_and_is_capped() {
        let policy = RetryPolicy {
            max_attempts: 3,
            base_backoff_ms: 10,
            max_backoff_ms: 50,
            retry_after_cap_ms: 300,
            jitter_seed: 1,
        };
        let mut jitter = JitterSource::seeded(1);
        let (wait, honored) = policy.retry_wait_ms(2, &RetryAfter::Seconds(1), &mut jitter);
        assert!(honored);
        assert_eq!(wait, 300, "1s hint capped at 300ms");
        let (wait, honored) = policy.retry_wait_ms(2, &RetryAfter::Absent, &mut jitter);
        assert!(!honored);
        assert!(wait <= 50);
        // Present-but-unparseable (HTTP-date form): honored at the cap,
        // not silently dropped.
        let (wait, honored) = policy.retry_wait_ms(2, &RetryAfter::UnparseableHint, &mut jitter);
        assert!(honored);
        assert_eq!(wait, 300, "unparseable hint pinned to retry_after_cap_ms");
    }

    #[test]
    fn breaker_opens_on_threshold_and_probe_success_closes() {
        let mut b = CircuitBreaker::new(BreakerConfig {
            failure_threshold: 3,
            cooldown_rejects: 2,
        });
        assert_eq!(b.state(), BreakerState::Closed);
        assert_eq!(b.admit(), BreakerDecision::Allow);
        assert!(!b.record_failure());
        assert!(!b.record_failure());
        assert!(b.record_failure(), "third failure trips the breaker");
        assert_eq!(b.state(), BreakerState::Open);
        // Cooldown counted in fast-failed calls, fully deterministic.
        assert_eq!(b.admit(), BreakerDecision::FastFail);
        assert_eq!(b.admit(), BreakerDecision::FastFail);
        assert_eq!(b.admit(), BreakerDecision::Probe);
        assert_eq!(b.state(), BreakerState::HalfOpen);
        // Concurrent call during the probe is rejected.
        assert_eq!(b.admit(), BreakerDecision::FastFail);
        assert!(b.record_success(), "probe success closes");
        assert_eq!(b.state(), BreakerState::Closed);
        assert_eq!(b.admit(), BreakerDecision::Allow);
    }

    #[test]
    fn breaker_probe_failure_reopens_with_fresh_cooldown() {
        let mut b = CircuitBreaker::new(BreakerConfig {
            failure_threshold: 1,
            cooldown_rejects: 1,
        });
        assert!(b.record_failure(), "threshold 1 opens immediately");
        assert_eq!(b.admit(), BreakerDecision::FastFail);
        assert_eq!(b.admit(), BreakerDecision::Probe);
        assert!(b.record_failure(), "probe failure re-opens");
        assert_eq!(b.state(), BreakerState::Open);
        // The cooldown starts over after the failed probe.
        assert_eq!(b.admit(), BreakerDecision::FastFail);
        assert_eq!(b.admit(), BreakerDecision::Probe);
        assert!(b.record_success());
        assert_eq!(b.state(), BreakerState::Closed);
    }

    #[test]
    fn success_resets_the_consecutive_failure_count() {
        let mut b = CircuitBreaker::new(BreakerConfig {
            failure_threshold: 2,
            cooldown_rejects: 1,
        });
        assert!(!b.record_failure());
        assert!(!b.record_success());
        assert!(!b.record_failure(), "count restarted after the success");
        assert!(b.record_failure());
        assert_eq!(b.state(), BreakerState::Open);
    }

    #[test]
    fn resilient_get_retries_transport_errors_and_succeeds() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let server = thread::spawn(move || {
            // First connection: accept and hang up (torn exchange).
            let (first, _) = listener.accept().unwrap();
            drop(first);
            // Second connection: answer properly.
            let (mut second, _) = listener.accept().unwrap();
            let mut buf = [0u8; 2048];
            let mut head = Vec::new();
            while !head.windows(4).any(|w| w == b"\r\n\r\n") {
                match second.read(&mut buf) {
                    Ok(0) | Err(_) => break,
                    Ok(n) => head.extend_from_slice(&buf[..n]),
                }
            }
            second
                .write_all(b"HTTP/1.1 200 OK\r\ncontent-length: 3\r\n\r\nok\n")
                .unwrap();
        });
        let client = ResilientClient::new(
            RetryPolicy {
                max_attempts: 3,
                base_backoff_ms: 1,
                max_backoff_ms: 4,
                retry_after_cap_ms: 10,
                jitter_seed: 5,
            },
            BreakerConfig::default(),
        );
        let got = client.get(&addr, "/x", 2_000).unwrap();
        assert_eq!((got.status, got.body.as_slice()), (200, b"ok\n".as_slice()));
        let m = client.metrics();
        assert_eq!(m.attempts_total(), 2);
        assert_eq!(m.retries_total(), 1);
        assert_eq!(m.transport_errors_total(), 1);
        assert_eq!(m.successes_total(), 1);
        assert_eq!(client.breaker_state(&addr), BreakerState::Closed);
        server.join().unwrap();
    }

    #[test]
    fn keep_alive_connection_reuses_one_socket_and_honors_close() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let server = thread::spawn(move || {
            let (mut stream, _) = listener.accept().unwrap();
            let mut served = 0u32;
            let mut buf = Vec::new();
            let mut chunk = [0u8; 1024];
            // Serve two keep-alive responses, then one with
            // `connection: close`, all on the same socket.
            while served < 3 {
                while !buf.windows(4).any(|w| w == b"\r\n\r\n") {
                    match stream.read(&mut chunk) {
                        Ok(0) | Err(_) => return,
                        Ok(n) => buf.extend_from_slice(&chunk[..n]),
                    }
                }
                let head_end = buf.windows(4).position(|w| w == b"\r\n\r\n").unwrap() + 4;
                buf.drain(..head_end);
                served += 1;
                let disposition = if served < 3 { "keep-alive" } else { "close" };
                let body = format!("resp {served}\n");
                let resp = format!(
                    "HTTP/1.1 200 OK\r\ncontent-length: {}\r\nconnection: {disposition}\r\n\r\n{body}",
                    body.len()
                );
                stream.write_all(resp.as_bytes()).unwrap();
            }
        });
        let mut conn = KeepAliveConnection::connect(&addr, 2_000).unwrap();
        for n in 1..=3u32 {
            let got = conn.get("/x").unwrap();
            assert_eq!(got.status, 200);
            assert_eq!(got.body, format!("resp {n}\n").into_bytes());
        }
        assert!(!conn.is_reusable(), "server said connection: close");
        assert_eq!(conn.requests_served(), 3);
        assert!(conn.get("/x").is_err(), "poisoned after close");
        server.join().unwrap();
    }

    #[test]
    fn unparseable_retry_after_is_honored_at_the_cap_and_counted() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let server = thread::spawn(move || {
            for round in 0..2 {
                let (mut stream, _) = listener.accept().unwrap();
                let mut buf = [0u8; 2048];
                let mut head = Vec::new();
                while !head.windows(4).any(|w| w == b"\r\n\r\n") {
                    match stream.read(&mut buf) {
                        Ok(0) | Err(_) => break,
                        Ok(n) => head.extend_from_slice(&buf[..n]),
                    }
                }
                let resp: &[u8] = if round == 0 {
                    b"HTTP/1.1 503 Unavailable\r\ncontent-length: 5\r\nRetry-After: Fri, 31 Dec 1999 23:59:59 GMT\r\nconnection: close\r\n\r\nbusy\n"
                } else {
                    b"HTTP/1.1 200 OK\r\ncontent-length: 3\r\nconnection: close\r\n\r\nok\n"
                };
                stream.write_all(resp).unwrap();
            }
        });
        let client = ResilientClient::new(
            RetryPolicy {
                max_attempts: 2,
                base_backoff_ms: 1,
                max_backoff_ms: 2,
                retry_after_cap_ms: 20,
                jitter_seed: 5,
            },
            BreakerConfig::default(),
        );
        let got = client.get(&addr, "/x", 2_000).unwrap();
        assert_eq!(got.status, 200);
        let m = client.metrics();
        assert_eq!(m.retry_after_unparseable_total(), 1);
        assert_eq!(m.retry_after_honored_total(), 1, "cap governed the wait");
        assert!(
            m.render().contains("retry-after-unparseable=1"),
            "{}",
            m.render()
        );
        server.join().unwrap();
    }

    #[test]
    fn resilient_get_fast_fails_once_the_breaker_opens() {
        // A dead endpoint: bind, note the port, drop the listener.
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        drop(listener);
        let client = ResilientClient::new(
            RetryPolicy {
                max_attempts: 3,
                base_backoff_ms: 1,
                max_backoff_ms: 2,
                retry_after_cap_ms: 10,
                jitter_seed: 5,
            },
            BreakerConfig {
                failure_threshold: 3,
                cooldown_rejects: 10,
            },
        );
        let err = client.get(&addr, "/x", 100).unwrap_err();
        assert!(err.contains("after 3 attempts"), "{err}");
        assert_eq!(client.breaker_state(&addr), BreakerState::Open);
        let fast = client.get(&addr, "/x", 100).unwrap_err();
        assert!(fast.contains("circuit breaker open"), "{fast}");
        assert_eq!(client.metrics().breaker_opens_total(), 1);
        assert!(client.metrics().breaker_fast_fails_total() >= 1);
    }
}
