//! Thin, dependency-free epoll wrapper for the serve reactor.
//!
//! The lint policy bans external crates, so readiness notification
//! talks to the kernel directly through four `extern "C"` bindings
//! (`epoll_create1` / `epoll_ctl` / `epoll_wait` / `close`) that libc
//! already exports into every Rust binary on Linux. This is the one
//! module in the workspace allowed to use `unsafe`: the crate root
//! `#![deny(unsafe_code)]` is overridden here, the FFI surface is four
//! calls, and every entry point re-checks errno and surfaces
//! `io::Error` — nothing unsafe leaks past this file's boundary.
//!
//! Level-triggered mode only: the reactor re-arms interest explicitly
//! per state transition, which keeps the state machine auditable (no
//! "did we consume the edge?" bookkeeping).
#![allow(unsafe_code)]

use std::io;
use std::os::fd::RawFd;
use std::os::unix::net::UnixStream;
use std::time::Duration;

/// Readiness: the fd has bytes to read (`EPOLLIN`).
const EPOLLIN: u32 = 0x001;
/// Readiness: the fd can accept writes (`EPOLLOUT`).
const EPOLLOUT: u32 = 0x004;
/// Readiness: the fd is in an error state (`EPOLLERR`).
const EPOLLERR: u32 = 0x008;
/// Readiness: the peer hung up (`EPOLLHUP`).
const EPOLLHUP: u32 = 0x010;
/// `epoll_ctl` op: register a new fd.
const EPOLL_CTL_ADD: i32 = 1;
/// `epoll_ctl` op: deregister an fd.
const EPOLL_CTL_DEL: i32 = 2;
/// `epoll_ctl` op: change an fd's interest set.
const EPOLL_CTL_MOD: i32 = 3;
/// `epoll_create1` flag: close-on-exec.
const EPOLL_CLOEXEC: i32 = 0x80000;
/// errno for an interrupted syscall (retry).
const EINTR: i32 = 4;

/// Kernel `struct epoll_event`. On x86-64 the kernel ABI packs this to
/// 12 bytes; other architectures use natural alignment.
#[repr(C)]
#[cfg_attr(target_arch = "x86_64", repr(packed))]
#[derive(Clone, Copy)]
struct EpollEvent {
    events: u32,
    // The kernel treats this as an opaque u64; we store the token.
    data: u64,
}

extern "C" {
    fn epoll_create1(flags: i32) -> i32;
    fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut EpollEvent) -> i32;
    fn epoll_wait(epfd: i32, events: *mut EpollEvent, maxevents: i32, timeout_ms: i32) -> i32;
    fn close(fd: i32) -> i32;
}

/// Which readiness the reactor wants to hear about for one fd.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interest {
    /// Wake when the fd is readable.
    pub readable: bool,
    /// Wake when the fd is writable.
    pub writable: bool,
}

impl Interest {
    /// Readable only.
    pub const READ: Interest = Interest {
        readable: true,
        writable: false,
    };
    /// Writable only.
    pub const WRITE: Interest = Interest {
        readable: false,
        writable: true,
    };
    /// Neither direction — registered, but only error/`EPOLLHUP` wakes
    /// (an RST or fully-shut peer; a clean FIN is silent until read
    /// interest returns). Used while a request is dispatched to a
    /// worker: the socket keeps no read interest, which is what gives
    /// pipelining clients TCP backpressure.
    pub const NONE: Interest = Interest {
        readable: false,
        writable: false,
    };

    fn mask(self) -> u32 {
        let mut m = 0;
        if self.readable {
            m |= EPOLLIN;
        }
        if self.writable {
            m |= EPOLLOUT;
        }
        m
    }
}

/// One readiness event delivered by [`Poller::wait`].
#[derive(Debug, Clone, Copy)]
pub struct PollEvent {
    /// The token the fd was registered with.
    pub token: u64,
    /// The fd is readable (or has pending data).
    pub readable: bool,
    /// The fd is writable.
    pub writable: bool,
    /// The fd errored or the peer hung up. The owning connection should
    /// attempt a final read (hangup often coexists with buffered bytes)
    /// and then close.
    pub hangup: bool,
}

/// An owned epoll instance. Dropping it closes the epoll fd; registered
/// fds are *not* closed (their owners hold them).
pub struct Poller {
    epfd: RawFd,
}

impl Poller {
    /// Create a new epoll instance (close-on-exec).
    pub fn new() -> io::Result<Poller> {
        // SAFETY: epoll_create1 takes a flag word and returns an fd or -1.
        let epfd = unsafe { epoll_create1(EPOLL_CLOEXEC) };
        if epfd < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(Poller { epfd })
    }

    fn ctl(&self, op: i32, fd: RawFd, interest: Interest, token: u64) -> io::Result<()> {
        let mut ev = EpollEvent {
            events: interest.mask(),
            data: token,
        };
        // SAFETY: `ev` is a live, correctly-laid-out epoll_event for the
        // duration of the call; DEL ignores the pointer on modern kernels
        // but a valid one is passed anyway.
        let rc = unsafe { epoll_ctl(self.epfd, op, fd, &mut ev) };
        if rc < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(())
    }

    /// Register `fd` under `token` with the given initial interest.
    pub fn add(&self, fd: RawFd, interest: Interest, token: u64) -> io::Result<()> {
        self.ctl(EPOLL_CTL_ADD, fd, interest, token)
    }

    /// Change the interest set of an already-registered `fd`.
    pub fn modify(&self, fd: RawFd, interest: Interest, token: u64) -> io::Result<()> {
        self.ctl(EPOLL_CTL_MOD, fd, interest, token)
    }

    /// Deregister `fd`.
    pub fn remove(&self, fd: RawFd) -> io::Result<()> {
        self.ctl(EPOLL_CTL_DEL, fd, Interest::NONE, 0)
    }

    /// Block for up to `timeout` waiting for readiness, appending events
    /// to `out` (cleared first). `EINTR` retries with the same timeout —
    /// the reactor's timer wheel tolerates a late tick.
    pub fn wait(&self, out: &mut Vec<PollEvent>, timeout: Duration) -> io::Result<()> {
        out.clear();
        let timeout_ms = i32::try_from(timeout.as_millis()).unwrap_or(i32::MAX);
        let mut raw = [EpollEvent { events: 0, data: 0 }; 64];
        let n = loop {
            // SAFETY: `raw` outlives the call and maxevents matches its length.
            let rc =
                unsafe { epoll_wait(self.epfd, raw.as_mut_ptr(), raw.len() as i32, timeout_ms) };
            if rc >= 0 {
                break rc as usize;
            }
            let err = io::Error::last_os_error();
            if err.raw_os_error() == Some(EINTR) {
                continue;
            }
            return Err(err);
        };
        for ev in raw.iter().take(n) {
            // Copy packed fields by value before use (no references into
            // a packed struct).
            let events = { ev.events };
            let data = { ev.data };
            out.push(PollEvent {
                token: data,
                readable: events & EPOLLIN != 0,
                writable: events & EPOLLOUT != 0,
                hangup: events & (EPOLLERR | EPOLLHUP) != 0,
            });
        }
        Ok(())
    }
}

impl Drop for Poller {
    fn drop(&mut self) {
        // SAFETY: epfd is a live fd owned exclusively by this Poller.
        let _ = unsafe { close(self.epfd) };
    }
}

/// Cross-thread wake-up handle for the reactor: writing one byte to the
/// send half makes the registered receive half readable. Built on
/// `UnixStream::pair`, so no extra unsafe beyond the epoll calls.
pub struct Waker {
    tx: UnixStream,
}

impl Waker {
    /// Wake the reactor if it is parked in [`Poller::wait`]. A full pipe
    /// (`WouldBlock`) means a wake is already pending — success either way.
    pub fn wake(&self) {
        use std::io::Write;
        let _ = (&self.tx).write(&[1u8]);
    }
}

/// Build a `(Waker, receiver)` pair. The receiver should be registered
/// readable with the poller; [`drain_wake`] empties it on wake.
pub fn wake_pair() -> io::Result<(Waker, UnixStream)> {
    let (tx, rx) = UnixStream::pair()?;
    tx.set_nonblocking(true)?;
    rx.set_nonblocking(true)?;
    Ok((Waker { tx }, rx))
}

/// Drain all pending wake bytes from the receive half.
pub fn drain_wake(rx: &UnixStream) {
    use std::io::Read;
    let mut reader = rx;
    let mut buf = [0u8; 64];
    while matches!(reader.read(&mut buf), Ok(n) if n > 0) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;
    use std::net::{TcpListener, TcpStream};
    use std::os::fd::AsRawFd;
    use std::time::Duration;

    #[test]
    fn poller_reports_listener_and_stream_readiness() {
        let poller = Poller::new().unwrap();
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        listener.set_nonblocking(true).unwrap();
        poller.add(listener.as_raw_fd(), Interest::READ, 7).unwrap();

        let mut events = Vec::new();
        poller.wait(&mut events, Duration::from_millis(0)).unwrap();
        assert!(events.is_empty(), "no connection yet: {events:?}");

        let mut client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        poller
            .wait(&mut events, Duration::from_millis(2000))
            .unwrap();
        assert!(
            events.iter().any(|e| e.token == 7 && e.readable),
            "{events:?}"
        );

        let (accepted, _) = listener.accept().unwrap();
        accepted.set_nonblocking(true).unwrap();
        poller.add(accepted.as_raw_fd(), Interest::READ, 9).unwrap();
        client.write_all(b"ping").unwrap();
        poller
            .wait(&mut events, Duration::from_millis(2000))
            .unwrap();
        assert!(
            events.iter().any(|e| e.token == 9 && e.readable),
            "{events:?}"
        );

        // Interest::NONE: a clean peer close is silent (only an RST
        // would raise EPOLLHUP) — that silence is the TCP backpressure
        // the reactor relies on while a request is dispatched.
        poller
            .modify(accepted.as_raw_fd(), Interest::NONE, 9)
            .unwrap();
        drop(client);
        poller
            .wait(&mut events, Duration::from_millis(100))
            .unwrap();
        assert!(!events.iter().any(|e| e.token == 9), "{events:?}");
        // Restoring read interest surfaces the buffered bytes/EOF.
        poller
            .modify(accepted.as_raw_fd(), Interest::READ, 9)
            .unwrap();
        poller
            .wait(&mut events, Duration::from_millis(2000))
            .unwrap();
        assert!(
            events
                .iter()
                .any(|e| e.token == 9 && (e.readable || e.hangup)),
            "{events:?}"
        );
        poller.remove(accepted.as_raw_fd()).unwrap();
    }

    #[test]
    fn waker_unblocks_wait_and_drains() {
        let poller = Poller::new().unwrap();
        let (waker, rx) = wake_pair().unwrap();
        poller.add(rx.as_raw_fd(), Interest::READ, 1).unwrap();

        let mut events = Vec::new();
        waker.wake();
        waker.wake(); // coalesces, never blocks
        poller
            .wait(&mut events, Duration::from_millis(2000))
            .unwrap();
        assert!(events.iter().any(|e| e.token == 1 && e.readable));
        drain_wake(&rx);
        poller.wait(&mut events, Duration::from_millis(0)).unwrap();
        assert!(
            !events.iter().any(|e| e.token == 1 && e.readable),
            "drained: {events:?}"
        );
    }
}
