//! The server proper: one event-driven reactor thread
//! ([`crate::reactor`]) owning every socket, a fixed worker pool fed
//! parsed requests through a bounded queue, and a supervisor that
//! respawns panicked workers.
//!
//! Load-shedding philosophy (the "503-on-full" rule): the request queue
//! and the connection count are both hard-bounded, and when either
//! bound is hit the *reactor* answers `503` + `Retry-After` inline
//! instead of buffering. Under overload the server therefore degrades
//! to fast, explicit rejections rather than unbounded memory growth and
//! timeout-shaped collapse. Shutdown is cooperative: `GET /shutdown`
//! (or a [`ShutdownHandle`]) flips a flag; the reactor stops accepting,
//! in-flight requests complete, keep-alive connections parked between
//! requests are closed, and [`Server::join`] returns once every
//! connection has drained. (The serving path outside `poll.rs` is free
//! of `unsafe`, so there is no OS signal handler; the drain path is
//! exposed as an endpoint instead.)
//!
//! The worker pool is *supervised*: a handler panic is caught at the
//! worker boundary, counted (`worker_panics_total`), and the dead slot
//! is handed to a supervisor thread that respawns it after an
//! exponential restart backoff. The panic streak resets whenever the
//! pool makes progress between panics; a streak that keeps growing is
//! a crash loop, and once `max_worker_respawns` is exhausted the slot
//! stays dead rather than burning CPU on doomed restarts. A job guard
//! reports the abandoned request to the reactor even when the worker
//! unwinds, so the connection is closed (and accounted) instead of
//! leaking in the dispatched state. Built-in routes are answered on the
//! reactor thread itself, so `/healthz` and `/metrics` stay live even
//! with the entire pool crash-looping.

use std::collections::VecDeque;
use std::io;
use std::net::{SocketAddr, TcpListener};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::thread;
use std::time::Duration;

use crate::http::{Request, Response};
use crate::metrics::Metrics;
use crate::poll::{wake_pair, Waker};
use crate::reactor::Reactor;

/// Application-side request handling: the server resolves its own
/// endpoints (`/healthz`, `/metrics`, `/shutdown`, `/`) and hands
/// everything else to the installed handler.
pub trait Handler: Send + Sync + 'static {
    /// Map one parsed request to a response. Must not panic; encode
    /// failures as 4xx/5xx responses.
    fn respond(&self, req: &Request) -> Response;
}

/// Tunables for one server instance.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Worker threads handling requests.
    pub workers: usize,
    /// Bounded queue of parsed-but-unclaimed requests; admission
    /// control rejects past this.
    pub queue_cap: usize,
    /// Hard cap on simultaneously open connections (queued + in-flight).
    pub max_conns: usize,
    /// Deadline for receiving a complete request head once its first
    /// byte arrives, milliseconds.
    pub read_timeout_ms: u64,
    /// Deadline for flushing a response, milliseconds.
    pub write_timeout_ms: u64,
    /// `Retry-After` seconds attached to admission 503s.
    pub retry_after_secs: u64,
    /// Maximum accepted request-head size in bytes (413 past this).
    pub max_head_bytes: usize,
    /// Deadline for the whole rejection path (drain the rejected head,
    /// write the 503), milliseconds. Deliberately much shorter than the
    /// serving deadlines: a slow-loris client that was already rejected
    /// must not hold its connection slot for the full `read_timeout_ms`.
    pub reject_timeout_ms: u64,
    /// How long a keep-alive connection may sit idle between requests
    /// before the server closes it, milliseconds.
    pub idle_timeout_ms: u64,
    /// Base supervisor backoff before respawning a panicked worker,
    /// milliseconds; doubles per consecutive panic without progress.
    pub respawn_backoff_ms: u64,
    /// Ceiling on the respawn backoff, milliseconds.
    pub respawn_backoff_cap_ms: u64,
    /// Crash-loop cap: total worker respawns before a dying slot is
    /// left dead.
    pub max_worker_respawns: u64,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            workers: 4,
            queue_cap: 64,
            max_conns: 256,
            read_timeout_ms: 5_000,
            write_timeout_ms: 5_000,
            retry_after_secs: 1,
            max_head_bytes: 8_192,
            reject_timeout_ms: 250,
            idle_timeout_ms: 5_000,
            respawn_backoff_ms: 10,
            respawn_backoff_cap_ms: 1_000,
            max_worker_respawns: 1_000,
        }
    }
}

/// Counters reported by [`Server::join`] after the drain completes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServeSummary {
    /// Responses served (includes error statuses, excludes admission
    /// 503s).
    pub served: u64,
    /// Connections rejected 503 by admission control.
    pub rejected: u64,
    /// Peers that vanished before a response could be written.
    pub disconnects: u64,
    /// Worker panics caught by the supervisor.
    pub worker_panics: u64,
    /// Workers respawned after a panic.
    pub worker_respawns: u64,
}

/// One parsed request handed from the reactor to the worker pool.
pub(crate) struct Job {
    /// Reactor token of the owning connection.
    pub(crate) token: u64,
    /// The connection's request generation when dispatched; a
    /// completion carrying a stale generation is dropped.
    pub(crate) generation: u64,
    /// The parsed request.
    pub(crate) request: Request,
}

/// A worker's verdict on one job, routed back to the reactor.
pub(crate) struct Completion {
    /// Reactor token of the owning connection.
    pub(crate) token: u64,
    /// Generation echoed from the [`Job`].
    pub(crate) generation: u64,
    /// `Some` = the response to write; `None` = the handler panicked
    /// and the connection must be closed without a response.
    pub(crate) response: Option<Response>,
}

pub(crate) struct Shared {
    /// Parsed requests awaiting a worker (bounded by `cfg.queue_cap`).
    pub(crate) jobs: Mutex<VecDeque<Job>>,
    /// Wakes workers when a job lands (or shutdown begins).
    pub(crate) available: Condvar,
    /// Finished jobs awaiting the reactor.
    pub(crate) completions: Mutex<Vec<Completion>>,
    /// Wakes the reactor out of its poll (completions, shutdown).
    pub(crate) waker: Waker,
    pub(crate) shutdown: AtomicBool,
    pub(crate) cfg: ServeConfig,
    pub(crate) metrics: Arc<Metrics>,
    pub(crate) handler: Arc<dyn Handler>,
    /// Worker slots whose thread died to a panic, awaiting respawn.
    pub(crate) dead_workers: Mutex<Vec<usize>>,
    /// Wakes the supervisor when a slot dies (or shutdown begins).
    pub(crate) supervisor_wake: Condvar,
    /// Currently-running worker threads. When this hits zero during a
    /// drain, the reactor fails any still-queued jobs instead of
    /// waiting forever on completions that can no longer arrive.
    pub(crate) live_workers: AtomicU64,
}

fn lock_jobs(shared: &Shared) -> MutexGuard<'_, VecDeque<Job>> {
    shared.jobs.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Queue one completion and wake the reactor.
pub(crate) fn push_completion(shared: &Shared, completion: Completion) {
    shared
        .completions
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .push(completion);
    shared.waker.wake();
}

/// A clonable trigger for the cooperative drain, usable from tests and
/// embedding code without an HTTP round-trip.
#[derive(Clone)]
pub struct ShutdownHandle {
    shared: Arc<Shared>,
}

impl ShutdownHandle {
    /// Flip the shutdown flag and wake every idle thread.
    pub fn begin_shutdown(&self) {
        begin_shutdown(&self.shared);
    }

    /// Whether the drain has been requested.
    pub fn is_shutting_down(&self) -> bool {
        self.shared.shutdown.load(Ordering::SeqCst)
    }
}

pub(crate) fn begin_shutdown(shared: &Shared) {
    shared.shutdown.store(true, Ordering::SeqCst);
    shared.available.notify_all();
    shared.supervisor_wake.notify_all();
    shared.waker.wake();
}

/// A running server: the reactor thread, `cfg.workers` supervised
/// workers, and the supervisor that respawns them.
pub struct Server {
    shared: Arc<Shared>,
    reactor: thread::JoinHandle<()>,
    supervisor: thread::JoinHandle<()>,
    addr: SocketAddr,
}

impl Server {
    /// Bind `addr` (e.g. `127.0.0.1:0` for an ephemeral port) and start
    /// the reactor and worker pool.
    pub fn start(
        addr: &str,
        cfg: ServeConfig,
        handler: Arc<dyn Handler>,
        metrics: Arc<Metrics>,
    ) -> io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let (waker, wake_rx) = wake_pair()?;
        let shared = Arc::new(Shared {
            jobs: Mutex::new(VecDeque::new()),
            available: Condvar::new(),
            completions: Mutex::new(Vec::new()),
            waker,
            shutdown: AtomicBool::new(false),
            cfg: cfg.clone(),
            metrics,
            handler,
            dead_workers: Mutex::new(Vec::new()),
            supervisor_wake: Condvar::new(),
            live_workers: AtomicU64::new(0),
        });
        let reactor = Reactor::new(listener, wake_rx, Arc::clone(&shared))?;
        let mut workers = Vec::with_capacity(cfg.workers.max(1));
        for slot in 0..cfg.workers.max(1) {
            workers.push(Some(spawn_worker(&shared, slot)));
        }
        let supervisor_shared = Arc::clone(&shared);
        let supervisor = thread::spawn(move || supervisor_loop(&supervisor_shared, workers));
        let reactor_thread = thread::spawn(move || reactor.run_loop());
        Ok(Server {
            shared,
            reactor: reactor_thread,
            supervisor,
            addr: local,
        })
    }

    /// The bound address (resolves the actual port for `:0` binds).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// A handle that can trigger the drain programmatically.
    pub fn shutdown_handle(&self) -> ShutdownHandle {
        ShutdownHandle {
            shared: Arc::clone(&self.shared),
        }
    }

    /// Block until shutdown is requested (via `/shutdown` or a
    /// [`ShutdownHandle`]) and every accepted connection has drained,
    /// then return final counters.
    pub fn join(self) -> ServeSummary {
        join_thread(self.reactor);
        // The supervisor drains the worker pool before exiting.
        join_thread(self.supervisor);
        ServeSummary {
            served: self.shared.metrics.responses_total() - self.shared.metrics.admission_rejects(),
            rejected: self.shared.metrics.admission_rejects(),
            disconnects: self.shared.metrics.disconnects(),
            worker_panics: self.shared.metrics.worker_panics(),
            worker_respawns: self.shared.metrics.worker_respawns(),
        }
    }
}

fn join_thread(handle: thread::JoinHandle<()>) {
    if let Err(payload) = handle.join() {
        // The reactor and supervisor must never panic (worker panics
        // are caught at the worker boundary); surface a bug here
        // instead of hiding it.
        std::panic::resume_unwind(payload);
    }
}

/// Spawn the worker for `slot`. A panic anywhere in request handling is
/// caught at this boundary, counted, and reported to the supervisor;
/// the thread then exits cleanly so `join` never re-raises.
fn spawn_worker(shared: &Arc<Shared>, slot: usize) -> thread::JoinHandle<()> {
    let shared = Arc::clone(shared);
    shared.live_workers.fetch_add(1, Ordering::SeqCst);
    thread::spawn(move || {
        let outcome =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| worker_loop(&shared)));
        shared.live_workers.fetch_sub(1, Ordering::SeqCst);
        if outcome.is_err() {
            shared.metrics.record_worker_panic();
            shared
                .dead_workers
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .push(slot);
            shared.supervisor_wake.notify_all();
        }
        // A drain may be waiting on this pool: let the reactor re-check.
        shared.waker.wake();
    })
}

/// The supervisor: reaps panicked worker slots and respawns them with
/// an exponential backoff. The backoff streak resets whenever the pool
/// served responses between panics (a healthy pool that hit one bad
/// request restarts fast); consecutive no-progress panics double the
/// wait, and the `max_worker_respawns` cap stops a hopeless crash loop
/// from consuming the process. On shutdown it drains pending respawns
/// first, then joins every worker.
fn supervisor_loop(shared: &Arc<Shared>, mut workers: Vec<Option<thread::JoinHandle<()>>>) {
    let mut streak: u32 = 0;
    let mut last_served: u64 = 0;
    let mut respawns: u64 = 0;
    loop {
        let slot = {
            let mut dead = shared
                .dead_workers
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            loop {
                if let Some(slot) = dead.pop() {
                    break Some(slot);
                }
                if shared.shutdown.load(Ordering::SeqCst) {
                    break None;
                }
                // The timeout guards against a notify racing the park.
                let (guard, _timed_out) = shared
                    .supervisor_wake
                    .wait_timeout(dead, Duration::from_millis(50))
                    .unwrap_or_else(PoisonError::into_inner);
                dead = guard;
            }
        };
        let Some(slot) = slot else { break };
        // Reap the dead thread (its panic was already caught and
        // counted at the worker boundary).
        if let Some(handle) = workers.get_mut(slot).and_then(Option::take) {
            let _ = handle.join();
        }
        // Crash-loop detection: only consecutive panics with no served
        // responses in between grow the streak.
        let served = shared.metrics.responses_total();
        if served > last_served {
            streak = 0;
        }
        last_served = served;
        streak = streak.saturating_add(1);
        if respawns >= shared.cfg.max_worker_respawns {
            // Crash-loop cap exhausted: the slot stays dead. The
            // remaining pool (if any) keeps serving.
            continue;
        }
        thread::sleep(Duration::from_millis(respawn_backoff_ms(
            &shared.cfg,
            streak,
        )));
        if let Some(entry) = workers.get_mut(slot) {
            *entry = Some(spawn_worker(shared, slot));
            respawns += 1;
            shared.metrics.record_worker_respawn();
        }
    }
    for handle in workers.iter_mut().filter_map(Option::take) {
        let _ = handle.join();
    }
}

/// Exponential restart backoff: `respawn_backoff_ms << (streak - 1)`,
/// capped at `respawn_backoff_cap_ms`.
fn respawn_backoff_ms(cfg: &ServeConfig, streak: u32) -> u64 {
    cfg.respawn_backoff_ms
        .saturating_mul(1u64 << streak.saturating_sub(1).min(16))
        .min(cfg.respawn_backoff_cap_ms)
}

/// Reports the job's fate to the reactor on every exit path, including
/// a handler panic unwinding through the worker: without this, a panic
/// would leave the connection dispatched forever (and leak the
/// open-connection gauge the reactor balances at close).
struct JobGuard<'a> {
    shared: &'a Shared,
    token: u64,
    generation: u64,
    completed: bool,
}

impl JobGuard<'_> {
    fn complete(mut self, response: Response) {
        self.completed = true;
        push_completion(
            self.shared,
            Completion {
                token: self.token,
                generation: self.generation,
                response: Some(response),
            },
        );
    }
}

impl Drop for JobGuard<'_> {
    fn drop(&mut self) {
        if !self.completed {
            // The handler unwound: the peer never gets a response and
            // the reactor closes (and accounts) the connection.
            push_completion(
                self.shared,
                Completion {
                    token: self.token,
                    generation: self.generation,
                    response: None,
                },
            );
        }
    }
}

fn worker_loop(shared: &Shared) {
    loop {
        let job = {
            let mut jobs = lock_jobs(shared);
            loop {
                if let Some(job) = jobs.pop_front() {
                    shared.metrics.queue_leave();
                    break Some(job);
                }
                if shared.shutdown.load(Ordering::SeqCst) {
                    break None;
                }
                // The timeout guards against a notify racing the park;
                // correctness only needs the flag re-check.
                let (guard, _timed_out) = shared
                    .available
                    .wait_timeout(jobs, Duration::from_millis(50))
                    .unwrap_or_else(PoisonError::into_inner);
                jobs = guard;
            }
        };
        match job {
            Some(job) => {
                let guard = JobGuard {
                    shared,
                    token: job.token,
                    generation: job.generation,
                    completed: false,
                };
                let resp = shared.handler.respond(&job.request);
                guard.complete(resp);
            }
            None => return,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client;

    /// Echoes the path back; the simplest possible application handler.
    struct Echo;
    impl Handler for Echo {
        fn respond(&self, req: &Request) -> Response {
            Response::text(200, format!("echo {}\n", req.path))
        }
    }

    #[test]
    fn serves_builtin_and_handler_routes_then_drains() {
        let metrics = Arc::new(Metrics::new());
        let server = Server::start(
            "127.0.0.1:0",
            ServeConfig::default(),
            Arc::new(Echo),
            Arc::clone(&metrics),
        )
        .unwrap();
        let addr = server.local_addr().to_string();
        let health = client::http_get(&addr, "/healthz", 2_000).unwrap();
        assert_eq!(
            (health.status, health.body.as_slice()),
            (200, b"ok\n".as_slice())
        );
        let echoed = client::http_get(&addr, "/some/app/path", 2_000).unwrap();
        assert_eq!(echoed.status, 200);
        assert_eq!(echoed.body, b"echo /some/app/path\n");
        let metrics_page = client::http_get(&addr, "/metrics", 2_000).unwrap();
        assert!(String::from_utf8_lossy(&metrics_page.body)
            .contains("dynamips_serve_requests_total{code=\"200\"}"));
        let bye = client::http_get(&addr, "/shutdown", 2_000).unwrap();
        assert_eq!(bye.status, 200);
        let summary = server.join();
        assert!(summary.served >= 4, "{summary:?}");
        assert_eq!(summary.rejected, 0);
    }

    #[test]
    fn non_get_is_405_and_shutdown_handle_drains_without_traffic() {
        let metrics = Arc::new(Metrics::new());
        let server = Server::start(
            "127.0.0.1:0",
            ServeConfig::default(),
            Arc::new(Echo),
            Arc::clone(&metrics),
        )
        .unwrap();
        let addr = server.local_addr().to_string();
        let resp =
            client::http_request(&addr, "POST / HTTP/1.1\r\nHost: x\r\n\r\n", 2_000).unwrap();
        assert_eq!(resp.status, 405);
        let handle = server.shutdown_handle();
        assert!(!handle.is_shutting_down());
        handle.begin_shutdown();
        assert!(handle.is_shutting_down());
        let summary = server.join();
        assert_eq!(summary.rejected, 0);
        assert_eq!(summary.served, 1);
    }
}
