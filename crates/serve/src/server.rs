//! The server proper: a nonblocking acceptor feeding a fixed worker
//! pool through a bounded queue, with admission control at the front
//! door and graceful drain at the back.
//!
//! Load-shedding philosophy (the "503-on-full" rule): the queue and the
//! connection count are both hard-bounded, and when either bound is hit
//! the *acceptor* answers `503` + `Retry-After` inline instead of
//! buffering. Under overload the server therefore degrades to fast,
//! explicit rejections rather than unbounded memory growth and
//! timeout-shaped collapse. Shutdown is cooperative: `GET /shutdown`
//! (or a [`ShutdownHandle`]) flips a flag; the acceptor stops taking
//! connections, workers drain everything already queued or in flight,
//! and [`Server::join`] returns once the pool is idle. (The process
//! hosting the server is free of `unsafe`, so there is no OS signal
//! handler; the drain path is exposed as an endpoint instead.)
//!
//! The worker pool is *supervised*: a handler panic is caught at the
//! worker boundary, counted (`worker_panics_total`), and the dead slot
//! is handed to a supervisor thread that respawns it after an
//! exponential restart backoff. The panic streak resets whenever the
//! pool makes progress between panics; a streak that keeps growing is
//! a crash loop, and once `max_worker_respawns` is exhausted the slot
//! stays dead rather than burning CPU on doomed restarts. A guard
//! keeps the open-connection gauge balanced even when the connection's
//! worker unwinds, so admission control never wedges on leaked counts.

use std::collections::VecDeque;
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::thread;
use std::time::{Duration, Instant};

use crate::http::{self, ParseOutcome, Request, Response};
use crate::metrics::Metrics;

/// Application-side request handling: the server resolves its own
/// endpoints (`/healthz`, `/metrics`, `/shutdown`, `/`) and hands
/// everything else to the installed handler.
pub trait Handler: Send + Sync + 'static {
    /// Map one parsed request to a response. Must not panic; encode
    /// failures as 4xx/5xx responses.
    fn respond(&self, req: &Request) -> Response;
}

/// Tunables for one server instance.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Worker threads handling requests.
    pub workers: usize,
    /// Bounded queue of accepted-but-unclaimed connections; admission
    /// control rejects past this.
    pub queue_cap: usize,
    /// Hard cap on simultaneously open connections (queued + in-flight).
    pub max_conns: usize,
    /// Per-connection socket read timeout, milliseconds.
    pub read_timeout_ms: u64,
    /// Per-connection socket write timeout, milliseconds.
    pub write_timeout_ms: u64,
    /// `Retry-After` seconds attached to admission 503s.
    pub retry_after_secs: u64,
    /// Maximum accepted request-head size in bytes (413 past this).
    pub max_head_bytes: usize,
    /// Deadline for the whole rejection path (drain the rejected head,
    /// write the 503), milliseconds. Deliberately much shorter than the
    /// worker timeouts: the acceptor performs rejections inline, and a
    /// slow-loris client must not hold the front door for the full
    /// `read_timeout_ms`.
    pub reject_timeout_ms: u64,
    /// Base supervisor backoff before respawning a panicked worker,
    /// milliseconds; doubles per consecutive panic without progress.
    pub respawn_backoff_ms: u64,
    /// Ceiling on the respawn backoff, milliseconds.
    pub respawn_backoff_cap_ms: u64,
    /// Crash-loop cap: total worker respawns before a dying slot is
    /// left dead.
    pub max_worker_respawns: u64,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            workers: 4,
            queue_cap: 64,
            max_conns: 256,
            read_timeout_ms: 5_000,
            write_timeout_ms: 5_000,
            retry_after_secs: 1,
            max_head_bytes: 8_192,
            reject_timeout_ms: 250,
            respawn_backoff_ms: 10,
            respawn_backoff_cap_ms: 1_000,
            max_worker_respawns: 1_000,
        }
    }
}

/// Counters reported by [`Server::join`] after the drain completes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServeSummary {
    /// Responses written by workers (includes error statuses).
    pub served: u64,
    /// Connections rejected 503 by admission control.
    pub rejected: u64,
    /// Peers that vanished before a response could be written.
    pub disconnects: u64,
    /// Worker panics caught by the supervisor.
    pub worker_panics: u64,
    /// Workers respawned after a panic.
    pub worker_respawns: u64,
}

struct Shared {
    queue: Mutex<VecDeque<(TcpStream, Instant)>>,
    available: Condvar,
    shutdown: AtomicBool,
    cfg: ServeConfig,
    metrics: Arc<Metrics>,
    handler: Arc<dyn Handler>,
    /// Worker slots whose thread died to a panic, awaiting respawn.
    dead_workers: Mutex<Vec<usize>>,
    /// Wakes the supervisor when a slot dies (or shutdown begins).
    supervisor_wake: Condvar,
}

fn lock_queue(shared: &Shared) -> MutexGuard<'_, VecDeque<(TcpStream, Instant)>> {
    shared.queue.lock().unwrap_or_else(PoisonError::into_inner)
}

/// A clonable trigger for the cooperative drain, usable from tests and
/// embedding code without an HTTP round-trip.
#[derive(Clone)]
pub struct ShutdownHandle {
    shared: Arc<Shared>,
}

impl ShutdownHandle {
    /// Flip the shutdown flag and wake every idle worker.
    pub fn begin_shutdown(&self) {
        begin_shutdown(&self.shared);
    }

    /// Whether the drain has been requested.
    pub fn is_shutting_down(&self) -> bool {
        self.shared.shutdown.load(Ordering::SeqCst)
    }
}

fn begin_shutdown(shared: &Shared) {
    shared.shutdown.store(true, Ordering::SeqCst);
    shared.available.notify_all();
    shared.supervisor_wake.notify_all();
}

/// A running server: an acceptor thread, `cfg.workers` supervised
/// workers, and the supervisor that respawns them.
pub struct Server {
    shared: Arc<Shared>,
    acceptor: thread::JoinHandle<()>,
    supervisor: thread::JoinHandle<()>,
    addr: SocketAddr,
}

impl Server {
    /// Bind `addr` (e.g. `127.0.0.1:0` for an ephemeral port) and start
    /// the acceptor and worker pool.
    pub fn start(
        addr: &str,
        cfg: ServeConfig,
        handler: Arc<dyn Handler>,
        metrics: Arc<Metrics>,
    ) -> io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let local = listener.local_addr()?;
        let shared = Arc::new(Shared {
            queue: Mutex::new(VecDeque::new()),
            available: Condvar::new(),
            shutdown: AtomicBool::new(false),
            cfg: cfg.clone(),
            metrics,
            handler,
            dead_workers: Mutex::new(Vec::new()),
            supervisor_wake: Condvar::new(),
        });
        let mut workers = Vec::with_capacity(cfg.workers.max(1));
        for slot in 0..cfg.workers.max(1) {
            workers.push(Some(spawn_worker(&shared, slot)));
        }
        let supervisor_shared = Arc::clone(&shared);
        let supervisor = thread::spawn(move || supervisor_loop(&supervisor_shared, workers));
        let acceptor_shared = Arc::clone(&shared);
        let acceptor = thread::spawn(move || accept_loop(&listener, &acceptor_shared));
        Ok(Server {
            shared,
            acceptor,
            supervisor,
            addr: local,
        })
    }

    /// The bound address (resolves the actual port for `:0` binds).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// A handle that can trigger the drain programmatically.
    pub fn shutdown_handle(&self) -> ShutdownHandle {
        ShutdownHandle {
            shared: Arc::clone(&self.shared),
        }
    }

    /// Block until shutdown is requested (via `/shutdown` or a
    /// [`ShutdownHandle`]) and the pool has drained every connection it
    /// accepted, then return final counters.
    pub fn join(self) -> ServeSummary {
        join_thread(self.acceptor);
        // The supervisor drains the worker pool before exiting.
        join_thread(self.supervisor);
        ServeSummary {
            served: self.shared.metrics.responses_total() - self.shared.metrics.admission_rejects(),
            rejected: self.shared.metrics.admission_rejects(),
            disconnects: self.shared.metrics.disconnects(),
            worker_panics: self.shared.metrics.worker_panics(),
            worker_respawns: self.shared.metrics.worker_respawns(),
        }
    }
}

fn join_thread(handle: thread::JoinHandle<()>) {
    if let Err(payload) = handle.join() {
        // The acceptor and supervisor must never panic (worker panics
        // are caught at the worker boundary); surface a bug here
        // instead of hiding it.
        std::panic::resume_unwind(payload);
    }
}

/// Spawn the worker for `slot`. A panic anywhere in request handling is
/// caught at this boundary, counted, and reported to the supervisor;
/// the thread then exits cleanly so `join` never re-raises.
fn spawn_worker(shared: &Arc<Shared>, slot: usize) -> thread::JoinHandle<()> {
    let shared = Arc::clone(shared);
    thread::spawn(move || {
        let outcome =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| worker_loop(&shared)));
        if outcome.is_err() {
            shared.metrics.record_worker_panic();
            shared
                .dead_workers
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .push(slot);
            shared.supervisor_wake.notify_all();
        }
    })
}

/// The supervisor: reaps panicked worker slots and respawns them with
/// an exponential backoff. The backoff streak resets whenever the pool
/// served responses between panics (a healthy pool that hit one bad
/// request restarts fast); consecutive no-progress panics double the
/// wait, and the `max_worker_respawns` cap stops a hopeless crash loop
/// from consuming the process. On shutdown it drains pending respawns
/// first, then joins every worker.
fn supervisor_loop(shared: &Arc<Shared>, mut workers: Vec<Option<thread::JoinHandle<()>>>) {
    let mut streak: u32 = 0;
    let mut last_served: u64 = 0;
    let mut respawns: u64 = 0;
    loop {
        let slot = {
            let mut dead = shared
                .dead_workers
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            loop {
                if let Some(slot) = dead.pop() {
                    break Some(slot);
                }
                if shared.shutdown.load(Ordering::SeqCst) {
                    break None;
                }
                // The timeout guards against a notify racing the park.
                let (guard, _timed_out) = shared
                    .supervisor_wake
                    .wait_timeout(dead, Duration::from_millis(50))
                    .unwrap_or_else(PoisonError::into_inner);
                dead = guard;
            }
        };
        let Some(slot) = slot else { break };
        // Reap the dead thread (its panic was already caught and
        // counted at the worker boundary).
        if let Some(handle) = workers.get_mut(slot).and_then(Option::take) {
            let _ = handle.join();
        }
        // Crash-loop detection: only consecutive panics with no served
        // responses in between grow the streak.
        let served = shared.metrics.responses_total();
        if served > last_served {
            streak = 0;
        }
        last_served = served;
        streak = streak.saturating_add(1);
        if respawns >= shared.cfg.max_worker_respawns {
            // Crash-loop cap exhausted: the slot stays dead. The
            // remaining pool (if any) keeps serving.
            continue;
        }
        thread::sleep(Duration::from_millis(respawn_backoff_ms(
            &shared.cfg,
            streak,
        )));
        if let Some(entry) = workers.get_mut(slot) {
            *entry = Some(spawn_worker(shared, slot));
            respawns += 1;
            shared.metrics.record_worker_respawn();
        }
    }
    for handle in workers.iter_mut().filter_map(Option::take) {
        let _ = handle.join();
    }
}

/// Exponential restart backoff: `respawn_backoff_ms << (streak - 1)`,
/// capped at `respawn_backoff_cap_ms`.
fn respawn_backoff_ms(cfg: &ServeConfig, streak: u32) -> u64 {
    cfg.respawn_backoff_ms
        .saturating_mul(1u64 << streak.saturating_sub(1).min(16))
        .min(cfg.respawn_backoff_cap_ms)
}

fn accept_loop(listener: &TcpListener, shared: &Shared) {
    while !shared.shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _peer)) => admit(shared, stream),
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                thread::sleep(Duration::from_millis(2));
            }
            Err(_) => thread::sleep(Duration::from_millis(2)),
        }
    }
    // Unblock any worker still parked on the condvar.
    shared.available.notify_all();
}

/// Admission control: reject inline with 503 when either bound is hit,
/// otherwise enqueue for the worker pool.
fn admit(shared: &Shared, stream: TcpStream) {
    let m = &shared.metrics;
    let accepted_at = Instant::now();
    let mut queue = lock_queue(shared);
    let over_queue = queue.len() >= shared.cfg.queue_cap;
    let over_conns = m.open_connections() >= shared.cfg.max_conns as u64;
    if over_queue || over_conns {
        drop(queue);
        reject(shared, stream, accepted_at);
        return;
    }
    m.conn_opened();
    m.queue_enter();
    queue.push_back((stream, accepted_at));
    drop(queue);
    shared.available.notify_one();
}

fn reject(shared: &Shared, mut stream: TcpStream, accepted_at: Instant) {
    let m = &shared.metrics;
    m.record_admission_reject();
    // Rejections run inline on the acceptor, so they get their own,
    // much shorter deadline: a slow-loris client that never finishes
    // its head loses its 503 after `reject_timeout_ms`, not after the
    // worker-path `read_timeout_ms`.
    let deadline = Duration::from_millis(shared.cfg.reject_timeout_ms.max(1));
    let _ = stream.set_read_timeout(Some(deadline));
    let _ = stream.set_write_timeout(Some(deadline));
    // Drain the request head before answering: closing a socket with
    // unread bytes in its receive buffer makes the kernel RST the
    // connection, tearing the 503 out from under the client. The read is
    // bounded by max_head_bytes and the reject deadline.
    let _ = http::read_request_head(&mut stream, shared.cfg.max_head_bytes);
    let mut resp = Response::text(503, "server is at capacity; retry shortly\n");
    resp.retry_after_secs = Some(shared.cfg.retry_after_secs);
    match http::write_response(&mut stream, &resp) {
        Ok(()) => m.record_response(503, accepted_at.elapsed().as_micros() as u64),
        Err(_) => m.record_disconnect(),
    }
}

fn worker_loop(shared: &Shared) {
    loop {
        let job = {
            let mut queue = lock_queue(shared);
            loop {
                if let Some(job) = queue.pop_front() {
                    shared.metrics.queue_leave();
                    break Some(job);
                }
                if shared.shutdown.load(Ordering::SeqCst) {
                    break None;
                }
                // The timeout guards against a notify racing the park;
                // correctness only needs the flag re-check.
                let (guard, _timed_out) = shared
                    .available
                    .wait_timeout(queue, Duration::from_millis(50))
                    .unwrap_or_else(PoisonError::into_inner);
                queue = guard;
            }
        };
        match job {
            Some((stream, accepted_at)) => serve_connection(shared, stream, accepted_at),
            None => return,
        }
    }
}

/// Balances the open-connection gauge on every exit path, including a
/// handler panic unwinding through the worker: without this, a panic
/// would leak the gauge and eventually wedge admission control.
struct ConnGuard<'a> {
    metrics: &'a Metrics,
}

impl Drop for ConnGuard<'_> {
    fn drop(&mut self) {
        if thread::panicking() {
            // The peer never got a response; account the abandonment.
            self.metrics.record_disconnect();
        }
        self.metrics.conn_closed();
    }
}

fn serve_connection(shared: &Shared, mut stream: TcpStream, accepted_at: Instant) {
    let m = &shared.metrics;
    let _guard = ConnGuard {
        metrics: &shared.metrics,
    };
    let _ = stream.set_read_timeout(Some(Duration::from_millis(shared.cfg.read_timeout_ms)));
    let _ = stream.set_write_timeout(Some(Duration::from_millis(shared.cfg.write_timeout_ms)));
    let resp = match http::read_request_head(&mut stream, shared.cfg.max_head_bytes) {
        ParseOutcome::Ok(req) => route(shared, &req),
        ParseOutcome::Malformed(why) => Response::text(400, format!("bad request: {why}\n")),
        ParseOutcome::TooLarge => Response::text(413, "request head exceeds the configured cap\n"),
        ParseOutcome::Disconnected => {
            m.record_disconnect();
            return;
        }
    };
    match http::write_response(&mut stream, &resp) {
        Ok(()) => m.record_response(resp.status, accepted_at.elapsed().as_micros() as u64),
        Err(_) => m.record_disconnect(),
    }
}

/// Server-owned endpoints; anything unrecognized goes to the handler.
fn route(shared: &Shared, req: &Request) -> Response {
    if req.method != "GET" {
        return Response::text(405, "only GET is served\n");
    }
    match req.path.as_str() {
        "/healthz" => Response::text(200, "ok\n"),
        "/metrics" => Response::text(200, shared.metrics.render_prometheus()),
        "/shutdown" => {
            begin_shutdown(shared);
            Response::text(200, "draining\n")
        }
        "/" => Response::text(
            200,
            "dynamips-serve\n\nGET /artifacts            list artifact names\nGET /artifacts/<name>     render one artifact (?seed=&atlas_scale=&cdn_scale=)\nGET /healthz              liveness probe\nGET /metrics              Prometheus text metrics\nGET /shutdown             drain in-flight requests and exit\n",
        ),
        _ => shared.handler.respond(req),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client;

    /// Echoes the path back; the simplest possible application handler.
    struct Echo;
    impl Handler for Echo {
        fn respond(&self, req: &Request) -> Response {
            Response::text(200, format!("echo {}\n", req.path))
        }
    }

    #[test]
    fn serves_builtin_and_handler_routes_then_drains() {
        let metrics = Arc::new(Metrics::new());
        let server = Server::start(
            "127.0.0.1:0",
            ServeConfig::default(),
            Arc::new(Echo),
            Arc::clone(&metrics),
        )
        .unwrap();
        let addr = server.local_addr().to_string();
        let health = client::http_get(&addr, "/healthz", 2_000).unwrap();
        assert_eq!(
            (health.status, health.body.as_slice()),
            (200, b"ok\n".as_slice())
        );
        let echoed = client::http_get(&addr, "/some/app/path", 2_000).unwrap();
        assert_eq!(echoed.status, 200);
        assert_eq!(echoed.body, b"echo /some/app/path\n");
        let metrics_page = client::http_get(&addr, "/metrics", 2_000).unwrap();
        assert!(String::from_utf8_lossy(&metrics_page.body)
            .contains("dynamips_serve_requests_total{code=\"200\"}"));
        let bye = client::http_get(&addr, "/shutdown", 2_000).unwrap();
        assert_eq!(bye.status, 200);
        let summary = server.join();
        assert!(summary.served >= 4, "{summary:?}");
        assert_eq!(summary.rejected, 0);
    }

    #[test]
    fn non_get_is_405_and_shutdown_handle_drains_without_traffic() {
        let metrics = Arc::new(Metrics::new());
        let server = Server::start(
            "127.0.0.1:0",
            ServeConfig::default(),
            Arc::new(Echo),
            Arc::clone(&metrics),
        )
        .unwrap();
        let addr = server.local_addr().to_string();
        let resp =
            client::http_request(&addr, "POST / HTTP/1.1\r\nHost: x\r\n\r\n", 2_000).unwrap();
        assert_eq!(resp.status, 405);
        let handle = server.shutdown_handle();
        assert!(!handle.is_shutting_down());
        handle.begin_shutdown();
        assert!(handle.is_shutting_down());
        let summary = server.join();
        assert_eq!(summary.rejected, 0);
        assert_eq!(summary.served, 1);
    }
}
