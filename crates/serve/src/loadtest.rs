//! Load generation in two modes.
//!
//! **Closed loop** (the default): `concurrency` worker threads share a
//! global request budget and each issues `GET`s back-to-back, one in
//! flight per thread. Simple, but it *coordinates with the server*: a
//! stall pauses the generator too, so the stalled interval contributes
//! one slow sample instead of the many slow requests real arrivals
//! would have produced — the classic coordinated-omission blind spot.
//!
//! **Open loop** (`open_loop: true`): requests follow a fixed,
//! seed-deterministic Poisson arrival schedule computed *before* the
//! run ([`arrival_offsets_ms`]). Each request's latency is measured
//! from its **scheduled** start to its response, so when the server
//! stalls, every arrival scheduled during the stall records the wait it
//! actually imposed; a generator running behind schedule is counted
//! (`late_sends`), never silently absorbed. Requests are striped over
//! `concurrency` sender slots that reuse keep-alive connections
//! ([`crate::client::KeepAliveConnection`]), which is what makes
//! thousands of concurrent connections practical.
//!
//! Per-request latencies are pooled and summarized as nearest-rank
//! percentiles; the report serializes into the workspace's
//! `dynamips-bench-v1` schema (`BENCH_serve.json`) so the serving path
//! joins the perf trajectory, and `bench-check --baseline` can hold the
//! percentiles to a checked-in bound.
//!
//! Accounting is single-path by construction: every request produces
//! exactly one [`Sample`], and `summarize` derives `completed`,
//! `ok_2xx`, `non_2xx`, and `transport_errors` from that one vector,
//! recording `requests == ok_2xx + non_2xx + transport_errors` as
//! [`LoadtestReport::accounting_ok`] (checked by [`LoadtestReport::all_ok`]).

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use dynamips_core::perf::{PerfEntry, PerfRecord};

use crate::client::{self, JitterSource, KeepAliveConnection};

/// How far behind schedule a send may start before it is counted late,
/// milliseconds. Covers OS sleep granularity without hiding real lag.
const LATE_GRACE_MS: f64 = 10.0;

/// Parameters for one load-generation run.
#[derive(Debug, Clone)]
pub struct LoadtestConfig {
    /// Target URL, e.g. `http://127.0.0.1:8080/artifacts/fig1`.
    pub url: String,
    /// Closed loop: worker threads (one request in flight each).
    /// Open loop: sender slots (also the peak keep-alive connections).
    pub concurrency: usize,
    /// Total requests to issue across all workers.
    pub requests: usize,
    /// Per-request connect/read/write timeout, milliseconds.
    pub timeout_ms: u64,
    /// Use the open-loop (fixed arrival schedule) generator.
    pub open_loop: bool,
    /// Open loop only: mean arrival rate, requests per second.
    pub rate_rps: f64,
    /// Seed for the arrival schedule (same seed ⇒ same schedule).
    pub seed: u64,
}

/// Aggregated results of a load-generation run.
#[derive(Debug, Clone)]
pub struct LoadtestReport {
    /// Target URL.
    pub url: String,
    /// Worker threads / sender slots used.
    pub concurrency: usize,
    /// Requests attempted.
    pub requests: usize,
    /// Whether the open-loop generator produced this report.
    pub open_loop: bool,
    /// Open loop: the scheduled mean arrival rate (0 when closed-loop).
    pub target_rps: f64,
    /// Arrival-schedule seed (0 when closed-loop).
    pub seed: u64,
    /// Requests that produced an HTTP response (any status).
    pub completed: usize,
    /// Requests answered with a 2xx status.
    pub ok_2xx: usize,
    /// Requests answered with a non-2xx status.
    pub non_2xx: usize,
    /// Responses by status code.
    pub by_status: BTreeMap<u16, usize>,
    /// Requests that failed at the transport layer (connect/read/write).
    pub transport_errors: usize,
    /// Whether `requests == ok_2xx + non_2xx + transport_errors` held
    /// (every request produced exactly one accounted sample).
    pub accounting_ok: bool,
    /// Open loop: sends that started more than the grace window after
    /// their scheduled arrival (the generator itself fell behind).
    pub late_sends: usize,
    /// Total body bytes received.
    pub body_bytes: u64,
    /// Wall-clock duration of the whole run, milliseconds.
    pub total_ms: f64,
    /// Nearest-rank latency percentiles, milliseconds. Open loop
    /// measures scheduled-start → response; closed loop send → response.
    pub p50_ms: f64,
    /// 90th percentile latency, milliseconds.
    pub p90_ms: f64,
    /// 99th percentile latency, milliseconds.
    pub p99_ms: f64,
    /// Slowest observed request, milliseconds.
    pub max_ms: f64,
    /// Completed requests per second over the run.
    pub throughput_rps: f64,
}

/// One request's outcome as recorded by a worker: status (0 for a
/// transport error), latency, body size.
struct Sample {
    status: u16,
    latency_ms: f64,
    body_bytes: u64,
}

/// The seed-deterministic open-loop arrival schedule: cumulative
/// offsets (milliseconds from run start) of each request, with
/// exponential (Poisson-process) inter-arrival gaps at mean rate
/// `rate_rps`. Pure function of `(seed, rate_rps, requests)`.
pub fn arrival_offsets_ms(seed: u64, rate_rps: f64, requests: usize) -> Vec<f64> {
    let mut rng = JitterSource::seeded(seed);
    let mean_gap_ms = 1000.0 / rate_rps;
    let mut at = 0.0f64;
    let mut offsets = Vec::with_capacity(requests);
    for _ in 0..requests {
        // 53 uniform bits → u in [0, 1); inverse-CDF of Exp(1/mean).
        let u = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        at += -(1.0 - u).ln() * mean_gap_ms;
        offsets.push(at);
    }
    offsets
}

/// Run the load described by `cfg`. Fails fast on an unusable URL or
/// invalid parameters; individual request failures are counted, not
/// fatal.
pub fn run_loadtest(cfg: &LoadtestConfig) -> Result<LoadtestReport, String> {
    if cfg.concurrency == 0 {
        return Err("concurrency must be >= 1".to_string());
    }
    if cfg.requests == 0 {
        return Err("requests must be >= 1".to_string());
    }
    if cfg.open_loop && !(cfg.rate_rps.is_finite() && cfg.rate_rps > 0.0) {
        return Err("open-loop mode requires a finite rate-rps > 0".to_string());
    }
    let (addr, path) = client::split_url(&cfg.url)?;
    if cfg.open_loop {
        run_open_loop(cfg, &addr, &path)
    } else {
        run_closed_loop(cfg, &addr, &path)
    }
}

fn run_closed_loop(cfg: &LoadtestConfig, addr: &str, path: &str) -> Result<LoadtestReport, String> {
    let tickets = Arc::new(AtomicUsize::new(cfg.requests));
    let started = Instant::now();
    let mut handles = Vec::new();
    for _ in 0..cfg.concurrency.min(cfg.requests) {
        let tickets = Arc::clone(&tickets);
        let addr = addr.to_string();
        let path = path.to_string();
        let timeout_ms = cfg.timeout_ms;
        handles.push(std::thread::spawn(move || {
            let mut samples = Vec::new();
            while take_ticket(&tickets) {
                let t0 = Instant::now();
                let sample = match client::http_get(&addr, &path, timeout_ms) {
                    Ok(got) => Sample {
                        status: got.status,
                        latency_ms: elapsed_ms(t0),
                        body_bytes: got.body.len() as u64,
                    },
                    Err(_) => Sample {
                        status: 0,
                        latency_ms: elapsed_ms(t0),
                        body_bytes: 0,
                    },
                };
                samples.push(sample);
            }
            samples
        }));
    }
    let mut samples: Vec<Sample> = Vec::with_capacity(cfg.requests);
    for handle in handles {
        match handle.join() {
            Ok(batch) => samples.extend(batch),
            Err(payload) => std::panic::resume_unwind(payload),
        }
    }
    let total_ms = elapsed_ms(started);
    Ok(summarize(cfg, samples, total_ms, 0))
}

/// The open loop: request `i` of the precomputed schedule is sent by
/// slot `i % concurrency` at its scheduled offset (or as soon after as
/// the slot is free — counted in `late_sends` past the grace window).
/// Latency is measured from the *scheduled* start, so server stalls
/// charge every arrival they delayed.
fn run_open_loop(cfg: &LoadtestConfig, addr: &str, path: &str) -> Result<LoadtestReport, String> {
    let offsets = arrival_offsets_ms(cfg.seed, cfg.rate_rps, cfg.requests);
    let slots = cfg.concurrency.min(cfg.requests);
    let started = Instant::now();
    let mut handles = Vec::new();
    for slot in 0..slots {
        let my_offsets: Vec<f64> = offsets.iter().copied().skip(slot).step_by(slots).collect();
        let addr = addr.to_string();
        let path = path.to_string();
        let timeout_ms = cfg.timeout_ms;
        handles.push(std::thread::spawn(move || {
            let mut conn: Option<KeepAliveConnection> = None;
            let mut samples = Vec::with_capacity(my_offsets.len());
            let mut late_sends = 0usize;
            for offset_ms in my_offsets {
                let scheduled = Duration::from_secs_f64(offset_ms / 1000.0);
                let now = started.elapsed();
                if now < scheduled {
                    std::thread::sleep(scheduled - now);
                } else if (now - scheduled).as_secs_f64() * 1000.0 > LATE_GRACE_MS {
                    late_sends += 1;
                }
                let outcome = keep_alive_get(&mut conn, &addr, &path, timeout_ms);
                // Scheduled-start basis: the elapsed clock is never
                // behind `scheduled` here because we slept up to it.
                let latency_ms =
                    (started.elapsed().saturating_sub(scheduled)).as_secs_f64() * 1000.0;
                let sample = match outcome {
                    Ok(got) => Sample {
                        status: got.status,
                        latency_ms,
                        body_bytes: got.body.len() as u64,
                    },
                    Err(_) => Sample {
                        status: 0,
                        latency_ms,
                        body_bytes: 0,
                    },
                };
                samples.push(sample);
            }
            (samples, late_sends)
        }));
    }
    let mut samples: Vec<Sample> = Vec::with_capacity(cfg.requests);
    let mut late_sends = 0usize;
    for handle in handles {
        match handle.join() {
            Ok((batch, late)) => {
                samples.extend(batch);
                late_sends += late;
            }
            Err(payload) => std::panic::resume_unwind(payload),
        }
    }
    let total_ms = elapsed_ms(started);
    Ok(summarize(cfg, samples, total_ms, late_sends))
}

/// One GET over the slot's parked keep-alive connection, falling back
/// to a fresh socket when the parked one went stale (the server may
/// close idle connections at its `idle_timeout_ms` — that is not a
/// transport error, just a reconnect).
fn keep_alive_get(
    conn_slot: &mut Option<KeepAliveConnection>,
    addr: &str,
    path: &str,
    timeout_ms: u64,
) -> Result<client::FetchResult, String> {
    if let Some(mut conn) = conn_slot.take() {
        if let Ok(result) = conn.get(path) {
            if conn.is_reusable() {
                *conn_slot = Some(conn);
            }
            return Ok(result);
        }
        // Stale: drop it and retry once on a fresh connection.
    }
    let mut conn = KeepAliveConnection::connect(addr, timeout_ms)?;
    let result = conn.get(path)?;
    if conn.is_reusable() {
        *conn_slot = Some(conn);
    }
    Ok(result)
}

fn take_ticket(tickets: &AtomicUsize) -> bool {
    tickets
        .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |n| n.checked_sub(1))
        .is_ok()
}

fn elapsed_ms(since: Instant) -> f64 {
    since.elapsed().as_secs_f64() * 1000.0
}

/// The single accounting path: every sample is classified exactly once
/// (transport error / 2xx / other status), and the report's invariant
/// `requests == ok_2xx + non_2xx + transport_errors` is recorded in
/// `accounting_ok` rather than silently assumed.
fn summarize(
    cfg: &LoadtestConfig,
    samples: Vec<Sample>,
    total_ms: f64,
    late_sends: usize,
) -> LoadtestReport {
    let mut by_status = BTreeMap::new();
    let mut latencies = Vec::with_capacity(samples.len());
    let mut transport_errors = 0usize;
    let mut ok_2xx = 0usize;
    let mut non_2xx = 0usize;
    let mut body_bytes = 0u64;
    for s in &samples {
        if s.status == 0 {
            transport_errors += 1;
        } else {
            *by_status.entry(s.status).or_insert(0) += 1;
            if (200..300).contains(&s.status) {
                ok_2xx += 1;
            } else {
                non_2xx += 1;
            }
        }
        body_bytes += s.body_bytes;
        latencies.push(s.latency_ms);
    }
    // total_cmp gives a total order over floats: a NaN latency (from a
    // poisoned timer or future arithmetic) sorts to the end instead of
    // silently scrambling the whole ordering like partial_cmp-with-a-
    // fallback did.
    latencies.sort_by(f64::total_cmp);
    let completed = ok_2xx + non_2xx;
    let accounting_ok = cfg.requests == ok_2xx + non_2xx + transport_errors;
    let throughput_rps = if total_ms > 0.0 {
        completed as f64 / (total_ms / 1000.0)
    } else {
        0.0
    };
    LoadtestReport {
        url: cfg.url.clone(),
        concurrency: cfg.concurrency,
        requests: cfg.requests,
        open_loop: cfg.open_loop,
        target_rps: if cfg.open_loop { cfg.rate_rps } else { 0.0 },
        seed: if cfg.open_loop { cfg.seed } else { 0 },
        completed,
        ok_2xx,
        non_2xx,
        by_status,
        transport_errors,
        accounting_ok,
        late_sends,
        body_bytes,
        total_ms,
        p50_ms: percentile(&latencies, 0.50),
        p90_ms: percentile(&latencies, 0.90),
        p99_ms: percentile(&latencies, 0.99),
        max_ms: latencies.last().copied().unwrap_or(0.0),
        throughput_rps,
    }
}

/// Nearest-rank percentile of an ascending-sorted slice.
fn percentile(sorted_ms: &[f64], q: f64) -> f64 {
    if sorted_ms.is_empty() {
        return 0.0;
    }
    let rank = ((q * sorted_ms.len() as f64).ceil() as usize).clamp(1, sorted_ms.len());
    sorted_ms.get(rank - 1).copied().unwrap_or(0.0)
}

impl LoadtestReport {
    /// Every attempted request came back 2xx and the accounting
    /// identity held.
    pub fn all_ok(&self) -> bool {
        self.accounting_ok && self.transport_errors == 0 && self.ok_2xx == self.requests
    }

    /// Human-readable summary for stderr.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "loadtest {}: {} requests, concurrency {}\n",
            self.url, self.requests, self.concurrency
        ));
        if self.open_loop {
            out.push_str(&format!(
                "  open-loop: target {:.1} req/s (seed {}), {} late sends\n",
                self.target_rps, self.seed, self.late_sends
            ));
        }
        out.push_str(&format!(
            "  completed {} ({} ok, {} transport errors) in {:.1} ms -> {:.1} req/s\n",
            self.completed, self.ok_2xx, self.transport_errors, self.total_ms, self.throughput_rps
        ));
        out.push_str(&format!(
            "  latency ms: p50 {:.2}  p90 {:.2}  p99 {:.2}  max {:.2}\n",
            self.p50_ms, self.p90_ms, self.p99_ms, self.max_ms
        ));
        if !self.accounting_ok {
            out.push_str(&format!(
                "  WARNING: accounting mismatch: {} requests != {} ok + {} non-2xx + {} transport errors\n",
                self.requests, self.ok_2xx, self.non_2xx, self.transport_errors
            ));
        }
        for (status, n) in &self.by_status {
            out.push_str(&format!("  status {status}: {n}\n"));
        }
        out
    }

    /// Map the report into the workspace bench schema
    /// (`dynamips-bench-v1`): percentiles and throughput become phase
    /// entries, per-status counts become artifact entries, so the
    /// existing schema checker validates `BENCH_serve.json` unchanged.
    pub fn to_perf_record(&self) -> PerfRecord {
        let mut record = PerfRecord {
            seed: self.seed,
            atlas_scale: 0.0,
            cdn_scale: 0.0,
            workers: self.concurrency,
            worlds_built: 0,
            total_ms: self.total_ms,
            phases: [
                ("latency-p50-ms", self.p50_ms),
                ("latency-p90-ms", self.p90_ms),
                ("latency-p99-ms", self.p99_ms),
                ("latency-max-ms", self.max_ms),
                ("throughput-rps", self.throughput_rps),
            ]
            .into_iter()
            .map(|(name, ms)| PerfEntry {
                name: name.to_string(),
                ms,
            })
            .collect(),
            artifacts: Vec::new(),
        };
        for (status, n) in &self.by_status {
            record.artifacts.push(PerfEntry {
                name: format!("status-{status}"),
                ms: *n as f64,
            });
        }
        record.artifacts.push(PerfEntry {
            name: "transport-errors".to_string(),
            ms: self.transport_errors as f64,
        });
        record.artifacts.push(PerfEntry {
            name: "late-sends".to_string(),
            ms: self.late_sends as f64,
        });
        if self.open_loop {
            record.artifacts.push(PerfEntry {
                name: "target-rps".to_string(),
                ms: self.target_rps,
            });
        }
        record
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn closed_cfg(concurrency: usize, requests: usize) -> LoadtestConfig {
        LoadtestConfig {
            url: "http://h:1/p".to_string(),
            concurrency,
            requests,
            timeout_ms: 100,
            open_loop: false,
            rate_rps: 0.0,
            seed: 0,
        }
    }

    #[test]
    fn percentiles_use_nearest_rank() {
        let v: Vec<f64> = (1..=100).map(|n| n as f64).collect();
        assert_eq!(percentile(&v, 0.50), 50.0);
        assert_eq!(percentile(&v, 0.90), 90.0);
        assert_eq!(percentile(&v, 0.99), 99.0);
        assert_eq!(percentile(&[5.0], 0.99), 5.0);
        assert_eq!(percentile(&[], 0.5), 0.0);
    }

    #[test]
    fn summarize_counts_statuses_and_errors() {
        let cfg = closed_cfg(2, 4);
        let samples = vec![
            Sample {
                status: 200,
                latency_ms: 1.0,
                body_bytes: 10,
            },
            Sample {
                status: 200,
                latency_ms: 3.0,
                body_bytes: 10,
            },
            Sample {
                status: 503,
                latency_ms: 0.5,
                body_bytes: 5,
            },
            Sample {
                status: 0,
                latency_ms: 100.0,
                body_bytes: 0,
            },
        ];
        let report = summarize(&cfg, samples, 50.0, 0);
        assert_eq!(report.completed, 3);
        assert_eq!(report.ok_2xx, 2);
        assert_eq!(report.non_2xx, 1);
        assert_eq!(report.transport_errors, 1);
        assert!(report.accounting_ok, "4 == 2 + 1 + 1");
        assert_eq!(report.by_status.get(&503), Some(&1));
        assert!(!report.all_ok());
        let record = report.to_perf_record();
        assert_eq!(record.workers, 2);
        assert!(record.phases.iter().any(|e| e.name == "latency-p99-ms"));
        assert!(record
            .artifacts
            .iter()
            .any(|e| e.name == "status-200" && e.ms == 2.0));
        assert!(record
            .artifacts
            .iter()
            .any(|e| e.name == "late-sends" && e.ms == 0.0));
        let text = report.render_text();
        assert!(text.contains("status 503: 1"), "{text}");
    }

    #[test]
    fn lost_samples_fail_the_accounting_identity_instead_of_lying() {
        // A worker that died before pushing its sample: 3 samples for 4
        // requests. The old `completed = samples.len() - errors` would
        // have quietly under-reported; now the identity check fails.
        let cfg = closed_cfg(2, 4);
        let samples = vec![
            Sample {
                status: 200,
                latency_ms: 1.0,
                body_bytes: 1,
            },
            Sample {
                status: 200,
                latency_ms: 2.0,
                body_bytes: 1,
            },
            Sample {
                status: 0,
                latency_ms: 9.0,
                body_bytes: 0,
            },
        ];
        let report = summarize(&cfg, samples, 10.0, 0);
        assert!(!report.accounting_ok);
        assert!(!report.all_ok());
        assert!(report.render_text().contains("accounting mismatch"));
    }

    #[test]
    fn nan_latency_does_not_scramble_percentiles() {
        // Regression for the partial_cmp(..).unwrap_or(Equal) sort: a
        // NaN anywhere in the latency pool used to make the "sorted"
        // order depend on comparison adjacency, poisoning every
        // percentile. total_cmp sends NaN to the end deterministically.
        let cfg = closed_cfg(1, 10);
        let mut samples: Vec<Sample> = [9.0, 2.0, f64::NAN, 7.0, 1.0, 5.0, 3.0, 8.0, 4.0, 6.0]
            .into_iter()
            .map(|latency_ms| Sample {
                status: 200,
                latency_ms,
                body_bytes: 0,
            })
            .collect();
        // Shuffle-resistant: the NaN sits mid-vector, exactly where the
        // old sort scrambled its neighbors.
        samples.swap(2, 6);
        let report = summarize(&cfg, samples, 10.0, 0);
        // Finite ranks stay exact: the NaN sorts to the very end.
        assert_eq!(report.p50_ms, 5.0, "nearest-rank 5 of 10");
        assert_eq!(
            report.p90_ms, 9.0,
            "nearest-rank 9 of 10 is the largest finite"
        );
        assert!(
            report.p99_ms.is_nan(),
            "NaN is surfaced at the tail, not hidden"
        );
        assert!(report.max_ms.is_nan());
    }

    #[test]
    fn arrival_schedule_is_deterministic_in_the_seed() {
        let a = arrival_offsets_ms(42, 250.0, 64);
        let b = arrival_offsets_ms(42, 250.0, 64);
        assert_eq!(a, b, "same seed, same schedule");
        let c = arrival_offsets_ms(43, 250.0, 64);
        assert_ne!(a, c, "different seed, different schedule");
        assert_eq!(a.len(), 64);
        assert!(
            a.windows(2).all(|w| w[1] > w[0]),
            "offsets strictly increase"
        );
        // Mean inter-arrival should be in the right ballpark (4 ms at
        // 250 rps); this is a sanity bound, not a statistical test.
        let mean_gap = a.last().copied().unwrap_or(0.0) / a.len() as f64;
        assert!((1.0..16.0).contains(&mean_gap), "{mean_gap}");
    }

    #[test]
    fn rejects_zero_concurrency_requests_and_bad_rates_before_any_io() {
        let bad = LoadtestConfig {
            concurrency: 0,
            ..closed_cfg(1, 1)
        };
        assert!(run_loadtest(&bad).is_err());
        let bad2 = LoadtestConfig {
            requests: 0,
            ..closed_cfg(1, 1)
        };
        assert!(run_loadtest(&bad2).is_err());
        let bad3 = LoadtestConfig {
            open_loop: true,
            rate_rps: 0.0,
            ..closed_cfg(1, 1)
        };
        assert!(run_loadtest(&bad3).is_err());
        let bad4 = LoadtestConfig {
            open_loop: true,
            rate_rps: f64::NAN,
            ..closed_cfg(1, 1)
        };
        assert!(run_loadtest(&bad4).is_err());
    }
}
