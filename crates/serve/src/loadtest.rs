//! Closed-loop load generator: `concurrency` worker threads share a
//! global request budget (an atomic ticket counter) and each issues
//! `GET`s back-to-back until the budget is spent. Per-request latencies
//! are pooled and summarized as nearest-rank percentiles; the whole
//! report can be serialized into the workspace's `dynamips-bench-v1`
//! schema so the serving path joins the perf trajectory next to
//! `BENCH_all.json`.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;

use dynamips_core::perf::{PerfEntry, PerfRecord};

use crate::client;

/// Parameters for one load-generation run.
#[derive(Debug, Clone)]
pub struct LoadtestConfig {
    /// Target URL, e.g. `http://127.0.0.1:8080/artifacts/fig1`.
    pub url: String,
    /// Closed-loop worker threads (each has one request in flight).
    pub concurrency: usize,
    /// Total requests to issue across all workers.
    pub requests: usize,
    /// Per-request connect/read/write timeout, milliseconds.
    pub timeout_ms: u64,
}

/// Aggregated results of a load-generation run.
#[derive(Debug, Clone)]
pub struct LoadtestReport {
    /// Target URL.
    pub url: String,
    /// Worker threads used.
    pub concurrency: usize,
    /// Requests attempted.
    pub requests: usize,
    /// Requests that produced an HTTP response (any status).
    pub completed: usize,
    /// Requests answered with a 2xx status.
    pub ok_2xx: usize,
    /// Responses by status code.
    pub by_status: BTreeMap<u16, usize>,
    /// Requests that failed at the transport layer (connect/read/write).
    pub transport_errors: usize,
    /// Total body bytes received.
    pub body_bytes: u64,
    /// Wall-clock duration of the whole run, milliseconds.
    pub total_ms: f64,
    /// Nearest-rank latency percentiles, milliseconds.
    pub p50_ms: f64,
    /// 90th percentile latency, milliseconds.
    pub p90_ms: f64,
    /// 99th percentile latency, milliseconds.
    pub p99_ms: f64,
    /// Slowest observed request, milliseconds.
    pub max_ms: f64,
    /// Completed requests per second over the run.
    pub throughput_rps: f64,
}

/// One request's outcome as recorded by a worker: status (0 for a
/// transport error), latency, body size.
struct Sample {
    status: u16,
    latency_ms: f64,
    body_bytes: u64,
}

/// Run the closed loop described by `cfg`. Fails fast on an unusable
/// URL; individual request failures are counted, not fatal.
pub fn run_loadtest(cfg: &LoadtestConfig) -> Result<LoadtestReport, String> {
    if cfg.concurrency == 0 {
        return Err("concurrency must be >= 1".to_string());
    }
    if cfg.requests == 0 {
        return Err("requests must be >= 1".to_string());
    }
    let (addr, path) = client::split_url(&cfg.url)?;
    let tickets = Arc::new(AtomicUsize::new(cfg.requests));
    let started = Instant::now();
    let mut handles = Vec::new();
    for _ in 0..cfg.concurrency.min(cfg.requests) {
        let tickets = Arc::clone(&tickets);
        let addr = addr.clone();
        let path = path.clone();
        let timeout_ms = cfg.timeout_ms;
        handles.push(std::thread::spawn(move || {
            let mut samples = Vec::new();
            while take_ticket(&tickets) {
                let t0 = Instant::now();
                let sample = match client::http_get(&addr, &path, timeout_ms) {
                    Ok(got) => Sample {
                        status: got.status,
                        latency_ms: elapsed_ms(t0),
                        body_bytes: got.body.len() as u64,
                    },
                    Err(_) => Sample {
                        status: 0,
                        latency_ms: elapsed_ms(t0),
                        body_bytes: 0,
                    },
                };
                samples.push(sample);
            }
            samples
        }));
    }
    let mut samples: Vec<Sample> = Vec::with_capacity(cfg.requests);
    for handle in handles {
        match handle.join() {
            Ok(batch) => samples.extend(batch),
            Err(payload) => std::panic::resume_unwind(payload),
        }
    }
    let total_ms = elapsed_ms(started);
    Ok(summarize(cfg, samples, total_ms))
}

fn take_ticket(tickets: &AtomicUsize) -> bool {
    tickets
        .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |n| n.checked_sub(1))
        .is_ok()
}

fn elapsed_ms(since: Instant) -> f64 {
    since.elapsed().as_secs_f64() * 1000.0
}

fn summarize(cfg: &LoadtestConfig, samples: Vec<Sample>, total_ms: f64) -> LoadtestReport {
    let mut by_status = BTreeMap::new();
    let mut latencies = Vec::with_capacity(samples.len());
    let mut transport_errors = 0usize;
    let mut ok_2xx = 0usize;
    let mut body_bytes = 0u64;
    for s in &samples {
        if s.status == 0 {
            transport_errors += 1;
        } else {
            *by_status.entry(s.status).or_insert(0) += 1;
            if (200..300).contains(&s.status) {
                ok_2xx += 1;
            }
        }
        body_bytes += s.body_bytes;
        latencies.push(s.latency_ms);
    }
    latencies.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let completed = samples.len() - transport_errors;
    let throughput_rps = if total_ms > 0.0 {
        completed as f64 / (total_ms / 1000.0)
    } else {
        0.0
    };
    LoadtestReport {
        url: cfg.url.clone(),
        concurrency: cfg.concurrency,
        requests: cfg.requests,
        completed,
        ok_2xx,
        by_status,
        transport_errors,
        body_bytes,
        total_ms,
        p50_ms: percentile(&latencies, 0.50),
        p90_ms: percentile(&latencies, 0.90),
        p99_ms: percentile(&latencies, 0.99),
        max_ms: latencies.last().copied().unwrap_or(0.0),
        throughput_rps,
    }
}

/// Nearest-rank percentile of an ascending-sorted slice.
fn percentile(sorted_ms: &[f64], q: f64) -> f64 {
    if sorted_ms.is_empty() {
        return 0.0;
    }
    let rank = ((q * sorted_ms.len() as f64).ceil() as usize).clamp(1, sorted_ms.len());
    sorted_ms.get(rank - 1).copied().unwrap_or(0.0)
}

impl LoadtestReport {
    /// Every attempted request came back 2xx.
    pub fn all_ok(&self) -> bool {
        self.transport_errors == 0 && self.ok_2xx == self.requests
    }

    /// Human-readable summary for stderr.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "loadtest {}: {} requests, concurrency {}\n",
            self.url, self.requests, self.concurrency
        ));
        out.push_str(&format!(
            "  completed {} ({} ok, {} transport errors) in {:.1} ms -> {:.1} req/s\n",
            self.completed, self.ok_2xx, self.transport_errors, self.total_ms, self.throughput_rps
        ));
        out.push_str(&format!(
            "  latency ms: p50 {:.2}  p90 {:.2}  p99 {:.2}  max {:.2}\n",
            self.p50_ms, self.p90_ms, self.p99_ms, self.max_ms
        ));
        for (status, n) in &self.by_status {
            out.push_str(&format!("  status {status}: {n}\n"));
        }
        out
    }

    /// Map the report into the workspace bench schema
    /// (`dynamips-bench-v1`): percentiles and throughput become phase
    /// entries, per-status counts become artifact entries, so the
    /// existing schema checker validates `BENCH_serve.json` unchanged.
    pub fn to_perf_record(&self) -> PerfRecord {
        let mut record = PerfRecord {
            seed: 0,
            atlas_scale: 0.0,
            cdn_scale: 0.0,
            workers: self.concurrency,
            worlds_built: 0,
            total_ms: self.total_ms,
            phases: [
                ("latency-p50-ms", self.p50_ms),
                ("latency-p90-ms", self.p90_ms),
                ("latency-p99-ms", self.p99_ms),
                ("latency-max-ms", self.max_ms),
                ("throughput-rps", self.throughput_rps),
            ]
            .into_iter()
            .map(|(name, ms)| PerfEntry {
                name: name.to_string(),
                ms,
            })
            .collect(),
            artifacts: Vec::new(),
        };
        for (status, n) in &self.by_status {
            record.artifacts.push(PerfEntry {
                name: format!("status-{status}"),
                ms: *n as f64,
            });
        }
        record.artifacts.push(PerfEntry {
            name: "transport-errors".to_string(),
            ms: self.transport_errors as f64,
        });
        record
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_use_nearest_rank() {
        let v: Vec<f64> = (1..=100).map(|n| n as f64).collect();
        assert_eq!(percentile(&v, 0.50), 50.0);
        assert_eq!(percentile(&v, 0.90), 90.0);
        assert_eq!(percentile(&v, 0.99), 99.0);
        assert_eq!(percentile(&[5.0], 0.99), 5.0);
        assert_eq!(percentile(&[], 0.5), 0.0);
    }

    #[test]
    fn summarize_counts_statuses_and_errors() {
        let cfg = LoadtestConfig {
            url: "http://h:1/p".to_string(),
            concurrency: 2,
            requests: 4,
            timeout_ms: 100,
        };
        let samples = vec![
            Sample {
                status: 200,
                latency_ms: 1.0,
                body_bytes: 10,
            },
            Sample {
                status: 200,
                latency_ms: 3.0,
                body_bytes: 10,
            },
            Sample {
                status: 503,
                latency_ms: 0.5,
                body_bytes: 5,
            },
            Sample {
                status: 0,
                latency_ms: 100.0,
                body_bytes: 0,
            },
        ];
        let report = summarize(&cfg, samples, 50.0);
        assert_eq!(report.completed, 3);
        assert_eq!(report.ok_2xx, 2);
        assert_eq!(report.transport_errors, 1);
        assert_eq!(report.by_status.get(&503), Some(&1));
        assert!(!report.all_ok());
        let record = report.to_perf_record();
        assert_eq!(record.workers, 2);
        assert!(record.phases.iter().any(|e| e.name == "latency-p99-ms"));
        assert!(record
            .artifacts
            .iter()
            .any(|e| e.name == "status-200" && e.ms == 2.0));
        let text = report.render_text();
        assert!(text.contains("status 503: 1"), "{text}");
    }

    #[test]
    fn rejects_zero_concurrency_and_requests_before_any_io() {
        let bad = LoadtestConfig {
            url: "http://127.0.0.1:1/".to_string(),
            concurrency: 0,
            requests: 1,
            timeout_ms: 10,
        };
        assert!(run_loadtest(&bad).is_err());
        let bad2 = LoadtestConfig {
            concurrency: 1,
            requests: 0,
            ..bad
        };
        assert!(run_loadtest(&bad2).is_err());
    }
}
