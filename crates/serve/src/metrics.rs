//! Lock-free serving metrics and their Prometheus text rendering.
//!
//! Everything is a plain atomic: workers bump counters on the hot path
//! without contending on a lock, and `/metrics` renders a consistent-
//! enough snapshot (Prometheus scrapes tolerate per-series skew). The
//! set of status codes and histogram buckets is fixed at compile time so
//! rendering allocates nothing surprising and output order is stable.

use std::sync::atomic::{AtomicU64, Ordering};

/// Status codes the server can emit, in render order. Anything else is
/// folded into the `"other"` series.
pub const TRACKED_STATUS: [u16; 8] = [200, 400, 404, 405, 408, 413, 500, 503];

/// Upper bounds (milliseconds) of the latency histogram buckets; an
/// implicit `+Inf` bucket follows.
pub const LATENCY_BUCKETS_MS: [u64; 11] = [1, 2, 5, 10, 25, 50, 100, 250, 500, 1000, 5000];

/// Shared metrics registry for one server (and its artifact handler).
#[derive(Debug, Default)]
pub struct Metrics {
    /// Responses written, per tracked status code (same order as
    /// [`TRACKED_STATUS`]), plus a trailing slot for everything else.
    status: [AtomicU64; TRACKED_STATUS.len() + 1],
    /// Cumulative latency histogram bucket counts; the last slot is +Inf.
    buckets: [AtomicU64; LATENCY_BUCKETS_MS.len() + 1],
    /// Sum of observed request latencies, in microseconds.
    latency_sum_us: AtomicU64,
    /// Count of observed request latencies.
    latency_count: AtomicU64,
    /// Connections currently queued awaiting a worker (gauge).
    queue_depth: AtomicU64,
    /// Connections currently open (queued + in-flight, gauge).
    open_conns: AtomicU64,
    /// Connections refused 503 by admission control (queue or conn cap).
    admission_rejects: AtomicU64,
    /// Peers that vanished before a response could be written.
    disconnects: AtomicU64,
    /// Artifact-cache hits (a warm world answered the request).
    cache_hits: AtomicU64,
    /// Artifact-cache misses (a world had to be built).
    cache_misses: AtomicU64,
    /// Warm worlds evicted by the LRU bound.
    cache_evictions: AtomicU64,
    /// Worker threads that died to a caught panic.
    worker_panics: AtomicU64,
    /// Workers respawned by the supervisor after a panic.
    worker_respawns: AtomicU64,
    /// Responses served from stale bytes instead of a fresh render.
    degraded_responses: AtomicU64,
    /// Requests served on an already-used connection (HTTP keep-alive).
    keepalive_reuses: AtomicU64,
}

impl Metrics {
    /// Fresh, all-zero registry.
    pub fn new() -> Metrics {
        Metrics::default()
    }

    /// Record one written response and its end-to-end latency
    /// (measured from completed request head to final flush).
    pub fn record_response(&self, status: u16, latency_us: u64) {
        let idx = TRACKED_STATUS
            .iter()
            .position(|s| *s == status)
            .unwrap_or(TRACKED_STATUS.len());
        if let Some(slot) = self.status.get(idx) {
            slot.fetch_add(1, Ordering::Relaxed);
        }
        let bucket = LATENCY_BUCKETS_MS
            .iter()
            .position(|ub_ms| latency_us <= *ub_ms * 1000)
            .unwrap_or(LATENCY_BUCKETS_MS.len());
        // Cumulative histogram: a sub-bound observation counts in every
        // bucket at or above it.
        for slot in self.buckets.iter().skip(bucket) {
            slot.fetch_add(1, Ordering::Relaxed);
        }
        self.latency_sum_us.fetch_add(latency_us, Ordering::Relaxed);
        self.latency_count.fetch_add(1, Ordering::Relaxed);
    }

    /// Count of responses written with `status`.
    pub fn responses_with_status(&self, status: u16) -> u64 {
        match TRACKED_STATUS.iter().position(|s| *s == status) {
            Some(idx) => self
                .status
                .get(idx)
                .map(|s| s.load(Ordering::Relaxed))
                .unwrap_or(0),
            None => 0,
        }
    }

    /// Total responses written (all statuses, including untracked).
    pub fn responses_total(&self) -> u64 {
        self.status.iter().map(|s| s.load(Ordering::Relaxed)).sum()
    }

    /// A connection entered the queue.
    pub fn queue_enter(&self) {
        self.queue_depth.fetch_add(1, Ordering::Relaxed);
    }

    /// A worker pulled a connection off the queue.
    pub fn queue_leave(&self) {
        self.queue_depth.fetch_sub(1, Ordering::Relaxed);
    }

    /// A connection was accepted (open-connection gauge up).
    pub fn conn_opened(&self) {
        self.open_conns.fetch_add(1, Ordering::Relaxed);
    }

    /// A connection finished or was rejected (gauge down).
    pub fn conn_closed(&self) {
        self.open_conns.fetch_sub(1, Ordering::Relaxed);
    }

    /// Connections currently open (queued + in-flight).
    pub fn open_connections(&self) -> u64 {
        self.open_conns.load(Ordering::Relaxed)
    }

    /// Admission control turned a connection away with 503.
    pub fn record_admission_reject(&self) {
        self.admission_rejects.fetch_add(1, Ordering::Relaxed);
    }

    /// Admission rejects so far.
    pub fn admission_rejects(&self) -> u64 {
        self.admission_rejects.load(Ordering::Relaxed)
    }

    /// The peer disappeared before a response could be delivered.
    pub fn record_disconnect(&self) {
        self.disconnects.fetch_add(1, Ordering::Relaxed);
    }

    /// Disconnects so far.
    pub fn disconnects(&self) -> u64 {
        self.disconnects.load(Ordering::Relaxed)
    }

    /// Record an artifact-cache lookup outcome and any evictions it
    /// triggered.
    pub fn record_cache(&self, hit: bool, evicted: u64) {
        if hit {
            self.cache_hits.fetch_add(1, Ordering::Relaxed);
        } else {
            self.cache_misses.fetch_add(1, Ordering::Relaxed);
        }
        if evicted > 0 {
            self.cache_evictions.fetch_add(evicted, Ordering::Relaxed);
        }
    }

    /// Connections currently queued awaiting a worker (gauge read,
    /// used by saturation-triggered degraded serving).
    pub fn queue_depth(&self) -> u64 {
        self.queue_depth.load(Ordering::Relaxed)
    }

    /// A worker thread panicked and was caught by the supervisor.
    pub fn record_worker_panic(&self) {
        self.worker_panics.fetch_add(1, Ordering::Relaxed);
    }

    /// Worker panics so far.
    pub fn worker_panics(&self) -> u64 {
        self.worker_panics.load(Ordering::Relaxed)
    }

    /// The supervisor respawned a worker.
    pub fn record_worker_respawn(&self) {
        self.worker_respawns.fetch_add(1, Ordering::Relaxed);
    }

    /// Worker respawns so far.
    pub fn worker_respawns(&self) -> u64 {
        self.worker_respawns.load(Ordering::Relaxed)
    }

    /// A response was served from stale bytes (`Warning: 110`).
    pub fn record_degraded_response(&self) {
        self.degraded_responses.fetch_add(1, Ordering::Relaxed);
    }

    /// Degraded (stale-served) responses so far.
    pub fn degraded_responses(&self) -> u64 {
        self.degraded_responses.load(Ordering::Relaxed)
    }

    /// A request arrived on a connection that already served at least
    /// one response (HTTP/1.1 keep-alive reuse).
    pub fn record_keepalive_reuse(&self) {
        self.keepalive_reuses.fetch_add(1, Ordering::Relaxed);
    }

    /// Keep-alive connection reuses so far.
    pub fn keepalive_reuses(&self) -> u64 {
        self.keepalive_reuses.load(Ordering::Relaxed)
    }

    /// (hits, misses, evictions) so far.
    pub fn cache_counts(&self) -> (u64, u64, u64) {
        (
            self.cache_hits.load(Ordering::Relaxed),
            self.cache_misses.load(Ordering::Relaxed),
            self.cache_evictions.load(Ordering::Relaxed),
        )
    }

    /// Render the registry in Prometheus text exposition format.
    /// Series order is fixed, so two renders of identical state are
    /// byte-identical.
    pub fn render_prometheus(&self) -> String {
        let mut out = String::with_capacity(2048);
        out.push_str("# HELP dynamips_serve_requests_total Responses written, by status code.\n");
        out.push_str("# TYPE dynamips_serve_requests_total counter\n");
        for (idx, status) in TRACKED_STATUS.iter().enumerate() {
            let n = self
                .status
                .get(idx)
                .map(|s| s.load(Ordering::Relaxed))
                .unwrap_or(0);
            out.push_str(&format!(
                "dynamips_serve_requests_total{{code=\"{status}\"}} {n}\n"
            ));
        }
        let other = self
            .status
            .get(TRACKED_STATUS.len())
            .map(|s| s.load(Ordering::Relaxed))
            .unwrap_or(0);
        out.push_str(&format!(
            "dynamips_serve_requests_total{{code=\"other\"}} {other}\n"
        ));

        out.push_str("# HELP dynamips_serve_request_latency_ms Head-to-flush request latency.\n");
        out.push_str("# TYPE dynamips_serve_request_latency_ms histogram\n");
        for (idx, ub) in LATENCY_BUCKETS_MS.iter().enumerate() {
            let n = self
                .buckets
                .get(idx)
                .map(|s| s.load(Ordering::Relaxed))
                .unwrap_or(0);
            out.push_str(&format!(
                "dynamips_serve_request_latency_ms_bucket{{le=\"{ub}\"}} {n}\n"
            ));
        }
        let inf = self
            .buckets
            .get(LATENCY_BUCKETS_MS.len())
            .map(|s| s.load(Ordering::Relaxed))
            .unwrap_or(0);
        out.push_str(&format!(
            "dynamips_serve_request_latency_ms_bucket{{le=\"+Inf\"}} {inf}\n"
        ));
        let sum_us = self.latency_sum_us.load(Ordering::Relaxed);
        out.push_str(&format!(
            "dynamips_serve_request_latency_ms_sum {}\n",
            format_ms(sum_us)
        ));
        out.push_str(&format!(
            "dynamips_serve_request_latency_ms_count {}\n",
            self.latency_count.load(Ordering::Relaxed)
        ));

        for (name, help, kind, value) in [
            (
                "dynamips_serve_queue_depth",
                "Connections queued awaiting a worker.",
                "gauge",
                self.queue_depth.load(Ordering::Relaxed),
            ),
            (
                "dynamips_serve_open_connections",
                "Connections currently open (queued + in-flight).",
                "gauge",
                self.open_conns.load(Ordering::Relaxed),
            ),
            (
                "dynamips_serve_admission_rejects_total",
                "Connections answered 503 by admission control.",
                "counter",
                self.admission_rejects.load(Ordering::Relaxed),
            ),
            (
                "dynamips_serve_disconnects_total",
                "Peers that vanished before a response was written.",
                "counter",
                self.disconnects.load(Ordering::Relaxed),
            ),
            (
                "dynamips_serve_cache_hits_total",
                "Artifact requests answered from a warm world.",
                "counter",
                self.cache_hits.load(Ordering::Relaxed),
            ),
            (
                "dynamips_serve_cache_misses_total",
                "Artifact requests that had to build a world.",
                "counter",
                self.cache_misses.load(Ordering::Relaxed),
            ),
            (
                "dynamips_serve_cache_evictions_total",
                "Warm worlds evicted by the LRU bound.",
                "counter",
                self.cache_evictions.load(Ordering::Relaxed),
            ),
            (
                "dynamips_serve_worker_panics_total",
                "Worker threads that died to a caught panic.",
                "counter",
                self.worker_panics.load(Ordering::Relaxed),
            ),
            (
                "dynamips_serve_worker_respawns_total",
                "Workers respawned by the supervisor after a panic.",
                "counter",
                self.worker_respawns.load(Ordering::Relaxed),
            ),
            (
                "dynamips_serve_degraded_responses_total",
                "Responses served from stale bytes (Warning: 110).",
                "counter",
                self.degraded_responses.load(Ordering::Relaxed),
            ),
            (
                "dynamips_serve_keepalive_reuses_total",
                "Requests served on a reused (keep-alive) connection.",
                "counter",
                self.keepalive_reuses.load(Ordering::Relaxed),
            ),
        ] {
            out.push_str(&format!(
                "# HELP {name} {help}\n# TYPE {name} {kind}\n{name} {value}\n"
            ));
        }
        out
    }
}

/// Format microseconds as decimal milliseconds ("12.345").
fn format_ms(us: u64) -> String {
    format!("{}.{:03}", us / 1000, us % 1000)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_is_cumulative_and_statuses_are_tracked() {
        let m = Metrics::new();
        m.record_response(200, 1_500); // 1.5 ms -> first bucket holding it is le=2
        m.record_response(200, 700_000); // 700 ms -> le=1000
        m.record_response(503, 10);
        assert_eq!(m.responses_with_status(200), 2);
        assert_eq!(m.responses_with_status(503), 1);
        assert_eq!(m.responses_total(), 3);
        let text = m.render_prometheus();
        assert!(
            text.contains("dynamips_serve_requests_total{code=\"200\"} 2\n"),
            "{text}"
        );
        assert!(text.contains("dynamips_serve_request_latency_ms_bucket{le=\"1\"} 1\n"));
        assert!(text.contains("dynamips_serve_request_latency_ms_bucket{le=\"2\"} 2\n"));
        assert!(text.contains("dynamips_serve_request_latency_ms_bucket{le=\"1000\"} 3\n"));
        assert!(text.contains("dynamips_serve_request_latency_ms_bucket{le=\"+Inf\"} 3\n"));
        assert!(text.contains("dynamips_serve_request_latency_ms_count 3\n"));
        assert!(text.contains("dynamips_serve_request_latency_ms_sum 701.510\n"));
    }

    #[test]
    fn gauges_and_cache_counters_move_both_ways() {
        let m = Metrics::new();
        m.conn_opened();
        m.queue_enter();
        m.record_cache(false, 0);
        m.record_cache(true, 0);
        m.record_cache(false, 2);
        assert_eq!(m.queue_depth(), 1);
        m.queue_leave();
        m.conn_closed();
        assert_eq!(m.cache_counts(), (1, 2, 2));
        assert_eq!(m.queue_depth(), 0);
        let text = m.render_prometheus();
        assert!(text.contains("dynamips_serve_queue_depth 0\n"));
        assert!(text.contains("dynamips_serve_open_connections 0\n"));
        assert!(text.contains("dynamips_serve_cache_evictions_total 2\n"));
    }

    #[test]
    fn supervision_and_degradation_counters_render() {
        let m = Metrics::new();
        m.record_worker_panic();
        m.record_worker_respawn();
        m.record_degraded_response();
        m.record_degraded_response();
        m.record_keepalive_reuse();
        assert_eq!(m.keepalive_reuses(), 1);
        assert_eq!(
            (
                m.worker_panics(),
                m.worker_respawns(),
                m.degraded_responses()
            ),
            (1, 1, 2)
        );
        let text = m.render_prometheus();
        assert!(text.contains("dynamips_serve_worker_panics_total 1\n"));
        assert!(text.contains("dynamips_serve_worker_respawns_total 1\n"));
        assert!(text.contains("dynamips_serve_degraded_responses_total 2\n"));
        assert!(text.contains("dynamips_serve_keepalive_reuses_total 1\n"));
    }
}
