//! `dynamips-serve`: the offline-deps HTTP serving layer over the
//! DynamIPs analysis engine.
//!
//! The crate is std-only by policy (the workspace `offline-deps` lint
//! rule bans registry dependencies), so the whole stack — HTTP framing,
//! worker pool, metrics, LRU, client, load generator — is built on
//! `std::net` + `std::thread`:
//!
//! - [`http`]: bounded request-head parsing and response writing.
//! - [`server`]: nonblocking acceptor → bounded queue → fixed worker
//!   pool, admission control (503 + `Retry-After` when full), per-
//!   request socket timeouts, connection cap, cooperative drain via
//!   `GET /shutdown` or a [`ShutdownHandle`].
//! - [`metrics`]: atomic counters/gauges/histogram with a Prometheus
//!   text rendering at `GET /metrics`.
//! - [`lru`]: the bounded LRU the artifact handler uses to keep warm
//!   simulation worlds, mirroring the engine's `WorldCache` protocol.
//! - [`client`] / [`loadtest`]: a `TcpStream` HTTP client and the
//!   closed-loop load generator behind `dynamips loadtest`, which
//!   reports p50/p90/p99 latency + throughput as `dynamips-bench-v1`.
//!
//! Failure model (PR 6): the worker pool is supervised — worker panics
//! are caught, counted, and the slot respawned with exponential
//! backoff and a crash-loop cap. The client side layers a
//! [`RetryPolicy`] (bounded attempts, seeded-jitter backoff,
//! `Retry-After` honored, GET-only) and a per-endpoint
//! [`CircuitBreaker`] over the strict transport, with every transition
//! counted in [`ClientMetrics`]; `chaos::net`'s fault-injecting proxy
//! drives the whole stack in the `dynamips chaos-serve` sweep.
//!
//! The application side (artifact rendering) is deliberately not here:
//! this crate only knows the [`Handler`] trait. `dynamips-experiments`
//! implements it on top of the engine and the `dynamips serve`
//! subcommand wires the two together, which keeps the dependency
//! direction `experiments -> serve` and the server reusable in tests
//! with trivial handlers.
//!
//! This crate is the one place outside the engine's timing layer where
//! wall-clock reads and thread spawns are permitted (`lint.toml`
//! `perf-exempt` / `threads-allowed`); nothing here feeds artifact
//! bytes, which stay deterministic.

#![deny(unsafe_code)]
#![warn(missing_docs)]
#![warn(clippy::unwrap_used, clippy::expect_used)]

pub mod client;
pub mod http;
pub mod loadtest;
pub mod lru;
pub mod metrics;
pub mod server;

pub use client::{
    http_get, http_request, BreakerConfig, BreakerDecision, BreakerState, CircuitBreaker,
    ClientMetrics, FetchResult, JitterSource, ResilientClient, RetryPolicy,
};
pub use http::{Request, Response, WARNING_STALE};
pub use loadtest::{run_loadtest, LoadtestConfig, LoadtestReport};
pub use lru::{CacheLookup, LruCache};
pub use metrics::Metrics;
pub use server::{Handler, ServeConfig, ServeSummary, Server, ShutdownHandle};
