//! `dynamips-serve`: the offline-deps HTTP serving layer over the
//! DynamIPs analysis engine.
//!
//! The crate is std-only by policy (the workspace `offline-deps` lint
//! rule bans registry dependencies), so the whole stack — HTTP framing,
//! event loop, worker pool, metrics, LRU, client, load generator — is
//! built on `std::net` + `std::thread` + four `epoll` FFI calls:
//!
//! - [`http`]: bounded request-head parsing (incremental, pipelining-
//!   aware via [`scan_head`]) and response serialization with an
//!   explicit connection [`Disposition`] (keep-alive vs close).
//! - [`poll`]: the thin epoll wrapper — the one module allowed to use
//!   `unsafe`, confined to four FFI calls.
//! - [`server`] / `reactor`: a single reactor thread drives every
//!   connection through a reading → dispatched → writing → keep-alive
//!   state machine with timer-wheel deadlines (read/write/idle, plus a
//!   short reject window); parsed requests feed a supervised fixed
//!   worker pool through a bounded queue. Admission control answers
//!   503 + `Retry-After` when full; built-in routes (`/healthz`,
//!   `/metrics`, `/shutdown`, `/`) are served inline on the reactor so
//!   probes survive a crash-looping pool; drain is cooperative via
//!   `GET /shutdown` or a [`ShutdownHandle`].
//! - [`metrics`]: atomic counters/gauges/histogram with a Prometheus
//!   text rendering at `GET /metrics`.
//! - [`lru`]: the bounded LRU the artifact handler uses to keep warm
//!   simulation worlds, mirroring the engine's `WorldCache` protocol.
//! - [`client`] / [`loadtest`]: a strict one-shot HTTP client, a
//!   [`KeepAliveConnection`] with `Content-Length` framing, and the
//!   load generator behind `dynamips loadtest` — closed-loop or
//!   open-loop with a seed-deterministic Poisson arrival schedule that
//!   measures scheduled-start-to-response latency (no coordinated
//!   omission), reported as `dynamips-bench-v1`.
//!
//! Failure model (PR 6): the worker pool is supervised — worker panics
//! are caught, counted, and the slot respawned with exponential
//! backoff and a crash-loop cap. The client side layers a
//! [`RetryPolicy`] (bounded attempts, seeded-jitter backoff,
//! `Retry-After` honored — including present-but-unparseable HTTP-date
//! hints, capped — GET-only) and a per-endpoint [`CircuitBreaker`]
//! over the strict transport, with every transition counted in
//! [`ClientMetrics`]; `chaos::net`'s fault-injecting proxy drives the
//! whole stack in the `dynamips chaos-serve` sweep.
//!
//! The application side (artifact rendering) is deliberately not here:
//! this crate only knows the [`Handler`] trait. `dynamips-experiments`
//! implements it on top of the engine and the `dynamips serve`
//! subcommand wires the two together, which keeps the dependency
//! direction `experiments -> serve` and the server reusable in tests
//! with trivial handlers.
//!
//! This crate is the one place outside the engine's timing layer where
//! wall-clock reads and thread spawns are permitted (`lint.toml`
//! `perf-exempt` / `threads-allowed`); nothing here feeds artifact
//! bytes, which stay deterministic.

#![deny(unsafe_code)]
#![warn(missing_docs)]
#![warn(clippy::unwrap_used, clippy::expect_used)]

pub mod client;
pub mod http;
pub mod loadtest;
pub mod lru;
pub mod metrics;
pub mod poll;
mod reactor;
pub mod server;

pub use client::{
    http_get, http_request, BreakerConfig, BreakerDecision, BreakerState, CircuitBreaker,
    ClientMetrics, FetchResult, JitterSource, KeepAliveConnection, ResilientClient, RetryAfter,
    RetryPolicy,
};
pub use http::{scan_head, Disposition, Request, Response, WARNING_STALE};
pub use loadtest::{arrival_offsets_ms, run_loadtest, LoadtestConfig, LoadtestReport};
pub use lru::{CacheLookup, LruCache};
pub use metrics::Metrics;
pub use server::{Handler, ServeConfig, ServeSummary, Server, ShutdownHandle};
