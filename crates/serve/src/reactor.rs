//! The event-driven serve core: one reactor thread drives every
//! connection through a small state machine over epoll readiness
//! ([`crate::poll`]), while the supervised worker pool only ever sees
//! parsed requests.
//!
//! Connection lifecycle: `Reading` (accumulate request-head bytes,
//! scanning one head at a time so pipelined requests parse in order) →
//! `Dispatched` (a worker owns the request; the socket keeps no read
//! interest, which gives pipelining clients TCP backpressure) →
//! `Writing` (flush the serialized response) → back to `Reading` for
//! HTTP/1.1 keep-alive, or closed when the request, the response, or
//! admission control asked for `Connection: close`.
//!
//! Deadlines are enforced by a hashed timer wheel (16 ms ticks, 256
//! slots, absolute-tick entries so delays past one wheel revolution
//! re-queue instead of firing early): a read deadline covers the head,
//! an idle deadline bounds keep-alive parking, a write deadline bounds
//! the flush, and admission-rejected connections drain under the much
//! shorter reject deadline. A dispatched request has *no* deadline —
//! cold artifact renders legitimately take minutes, and the worker pool
//! is already supervised against hangs-by-panic.
//!
//! Built-in routes (`/healthz`, `/metrics`, `/shutdown`, `/`, and the
//! `405` for non-GETs) are answered inline on the reactor thread, so
//! liveness probes keep answering even when every worker is wedged in a
//! crash loop.

use std::collections::BTreeMap;
use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::fd::AsRawFd;
use std::os::unix::net::UnixStream;
use std::sync::atomic::Ordering;
use std::sync::{Arc, PoisonError};
use std::time::{Duration, Instant};

use crate::http::{self, Disposition, ParseOutcome, Request, Response};
use crate::poll::{drain_wake, Interest, PollEvent, Poller};
use crate::server::{begin_shutdown, Completion, Job, Shared};

/// Timer-wheel tick, milliseconds; also the epoll wait bound.
const TICK_MS: u64 = 16;
/// Timer-wheel slot count (horizon = `TICK_MS * WHEEL_SLOTS` = ~4 s per
/// revolution; longer delays survive via absolute-tick re-queueing).
const WHEEL_SLOTS: usize = 256;
/// Poll token of the listening socket.
const LISTENER_TOKEN: u64 = 0;
/// Poll token of the wake pipe's receive half.
const WAKE_TOKEN: u64 = 1;
/// First token handed to an accepted connection.
const FIRST_CONN_TOKEN: u64 = 2;

/// The `GET /` help page (kept byte-identical across server cores).
const HELP_TEXT: &str = "dynamips-serve\n\nGET /artifacts            list artifact names\nGET /artifacts/<name>     render one artifact (?seed=&atlas_scale=&cdn_scale=)\nGET /healthz              liveness probe\nGET /metrics              Prometheus text metrics\nGET /shutdown             drain in-flight requests and exit\n";

/// One pending deadline: fires for `token` unless the connection has
/// since moved on (its `deadline_gen` advanced).
struct TimerEntry {
    due_tick: u64,
    token: u64,
    deadline_gen: u64,
}

/// Hashed timer wheel over [`TICK_MS`] ticks. Entries carry their
/// absolute due tick; a slot visited before an entry is due re-queues it
/// (the wheel wraps every ~4 s but server deadlines reach 5 s).
struct TimerWheel {
    slots: Vec<Vec<TimerEntry>>,
    tick: u64,
}

impl TimerWheel {
    fn new() -> TimerWheel {
        TimerWheel {
            slots: (0..WHEEL_SLOTS).map(|_| Vec::new()).collect(),
            tick: 0,
        }
    }

    /// Arm a deadline `delay_ms` from the current tick (min one tick).
    fn arm(&mut self, delay_ms: u64, token: u64, deadline_gen: u64) {
        let due_tick = self.tick + (delay_ms / TICK_MS).max(1);
        let idx = (due_tick % WHEEL_SLOTS as u64) as usize;
        if let Some(slot) = self.slots.get_mut(idx) {
            slot.push(TimerEntry {
                due_tick,
                token,
                deadline_gen,
            });
        }
    }

    /// Advance to `now_tick`, pushing every `(token, deadline_gen)`
    /// whose due tick has passed into `fired`.
    fn advance(&mut self, now_tick: u64, fired: &mut Vec<(u64, u64)>) {
        while self.tick < now_tick {
            self.tick += 1;
            let idx = (self.tick % WHEEL_SLOTS as u64) as usize;
            if let Some(slot) = self.slots.get_mut(idx) {
                let mut keep = Vec::new();
                for entry in slot.drain(..) {
                    if entry.due_tick <= self.tick {
                        fired.push((entry.token, entry.deadline_gen));
                    } else {
                        keep.push(entry);
                    }
                }
                *slot = keep;
            }
        }
    }
}

/// Where a connection is in its request/response cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ConnState {
    /// Accumulating request-head bytes (fresh, mid-head, or keep-alive
    /// idle between requests).
    Reading,
    /// A worker owns the parsed request; no read interest (backpressure).
    Dispatched,
    /// Flushing the serialized response.
    Writing,
}

/// Per-connection reactor state.
struct Conn {
    stream: TcpStream,
    /// Inbound bytes not yet consumed by a parsed head.
    buf: Vec<u8>,
    /// Serialized response bytes being flushed.
    out: Vec<u8>,
    out_pos: usize,
    state: ConnState,
    /// Admission-rejected at accept (connection cap): drain the head
    /// under the reject deadline, answer 503, close.
    reject: bool,
    close_after_write: bool,
    peer_eof: bool,
    /// Bumped per dispatched request; completions for older generations
    /// are dropped (the connection has moved on).
    generation: u64,
    /// Bumped on every deadline re-arm/cancel; stale wheel entries no-op.
    deadline_gen: u64,
    /// Responses completed on this connection (keep-alive reuse count).
    served: u64,
    /// Whether this connection has been counted in the open-connection
    /// gauge. Counting happens at first dispatch/inline-route, not at
    /// accept, so the gauge means "connections that reached serving" and
    /// admission tests can wait on it deterministically.
    counted: bool,
    /// Whether the fd is currently registered with the poller.
    registered: bool,
    interest: Interest,
    /// When the current request's head completed parsing (latency base).
    request_started: Instant,
    /// Status of the response currently being written.
    pending_status: u16,
}

/// What to do about a connection once a borrow-free decision is needed.
#[derive(Debug, Clone, Copy)]
enum ConnAction {
    /// Close and count a disconnect (peer vanished mid-exchange).
    CloseDisconnect,
    /// Close without a disconnect (clean end of a served connection).
    CloseQuiet,
    /// Answer the admission 503 (reject-mode connections).
    Reject503,
    /// Attempt a `400` for a head torn by EOF.
    TornHead,
    /// Nothing to do.
    Keep,
}

/// The single-threaded event loop driving every connection.
pub(crate) struct Reactor {
    poller: Poller,
    listener: Option<TcpListener>,
    wake_rx: UnixStream,
    shared: Arc<Shared>,
    conns: BTreeMap<u64, Conn>,
    next_token: u64,
    wheel: TimerWheel,
    epoch: Instant,
    draining: bool,
}

impl Reactor {
    /// Build the reactor: make the listener non-blocking and register it
    /// and the wake pipe. Errors here surface from `Server::start`.
    pub(crate) fn new(
        listener: TcpListener,
        wake_rx: UnixStream,
        shared: Arc<Shared>,
    ) -> io::Result<Reactor> {
        listener.set_nonblocking(true)?;
        let poller = Poller::new()?;
        poller.add(listener.as_raw_fd(), Interest::READ, LISTENER_TOKEN)?;
        poller.add(wake_rx.as_raw_fd(), Interest::READ, WAKE_TOKEN)?;
        Ok(Reactor {
            poller,
            listener: Some(listener),
            wake_rx,
            shared,
            conns: BTreeMap::new(),
            next_token: FIRST_CONN_TOKEN,
            wheel: TimerWheel::new(),
            epoch: Instant::now(),
            draining: false,
        })
    }

    /// Run until shutdown is requested and every connection has drained.
    pub(crate) fn run_loop(mut self) {
        let mut events: Vec<PollEvent> = Vec::new();
        let mut fired: Vec<(u64, u64)> = Vec::new();
        loop {
            if self
                .poller
                .wait(&mut events, Duration::from_millis(TICK_MS))
                .is_err()
            {
                // A dead epoll fd is unrecoverable; fail into a drain so
                // join() still returns instead of hanging.
                begin_shutdown(&self.shared);
            }
            let batch: Vec<PollEvent> = events.clone();
            for ev in batch {
                match ev.token {
                    LISTENER_TOKEN => {}
                    WAKE_TOKEN => drain_wake(&self.wake_rx),
                    token => self.conn_event(token, ev),
                }
            }
            self.drain_completions();
            self.accept_ready();
            let now_tick = (self.epoch.elapsed().as_millis() as u64) / TICK_MS;
            fired.clear();
            self.wheel.advance(now_tick, &mut fired);
            for (token, deadline_gen) in fired.drain(..) {
                self.deadline_fired(token, deadline_gen);
            }
            if self.shared.shutdown.load(Ordering::SeqCst) {
                self.enter_drain();
                if self.shared.live_workers.load(Ordering::SeqCst) == 0 {
                    // No worker can ever complete a queued job now:
                    // fail the orphans instead of draining forever.
                    self.fail_orphaned_jobs();
                }
                if self.conns.is_empty() {
                    return;
                }
            }
        }
    }

    /// Accept everything the backlog holds (level-triggered, so checking
    /// every iteration is cheap and never misses).
    fn accept_ready(&mut self) {
        loop {
            let Some(listener) = self.listener.as_ref() else {
                return;
            };
            let stream = match listener.accept() {
                Ok((stream, _peer)) => stream,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                // Transient accept errors (e.g. a connection that reset
                // while queued): try again next tick.
                Err(_) => return,
            };
            if stream.set_nonblocking(true).is_err() {
                continue;
            }
            let token = self.next_token;
            self.next_token += 1;
            let reject = self.conns.len() >= self.shared.cfg.max_conns;
            if reject {
                self.shared.metrics.record_admission_reject();
            }
            if self
                .poller
                .add(stream.as_raw_fd(), Interest::READ, token)
                .is_err()
            {
                // Can't watch it; drop the connection (peer sees a reset).
                continue;
            }
            let mut conn = Conn {
                stream,
                buf: Vec::new(),
                out: Vec::new(),
                out_pos: 0,
                state: ConnState::Reading,
                reject,
                close_after_write: false,
                peer_eof: false,
                generation: 0,
                deadline_gen: 0,
                served: 0,
                counted: false,
                registered: true,
                interest: Interest::READ,
                request_started: Instant::now(),
                pending_status: 0,
            };
            let delay = if reject {
                self.shared.cfg.reject_timeout_ms
            } else {
                self.shared.cfg.read_timeout_ms
            };
            conn.deadline_gen += 1;
            self.wheel.arm(delay.max(1), token, conn.deadline_gen);
            self.conns.insert(token, conn);
        }
    }

    /// Route one readiness event to the owning connection.
    fn conn_event(&mut self, token: u64, ev: PollEvent) {
        if ev.writable {
            self.continue_write(token);
        }
        if ev.readable || ev.hangup {
            self.read_ready(token, ev.hangup);
        }
    }

    /// Pull available bytes and advance the head scanner.
    fn read_ready(&mut self, token: u64, hangup: bool) {
        {
            let Some(conn) = self.conns.get_mut(&token) else {
                return;
            };
            if conn.state != ConnState::Reading {
                // Input is not consumed while a request is in flight.
                // A hangup here marks the connection for closure after
                // the response; deregistering stops the level-triggered
                // HUP from spinning the loop during long renders.
                if hangup {
                    conn.peer_eof = true;
                    conn.close_after_write = true;
                    if conn.state == ConnState::Dispatched && conn.registered {
                        let _ = self.poller.remove(conn.stream.as_raw_fd());
                        conn.registered = false;
                        conn.interest = Interest::NONE;
                    }
                }
                return;
            }
            let buf_was_empty = conn.buf.is_empty();
            let mut chunk = [0u8; 4096];
            loop {
                match conn.stream.read(&mut chunk) {
                    Ok(0) => {
                        conn.peer_eof = true;
                        break;
                    }
                    Ok(n) => conn.buf.extend_from_slice(chunk.get(..n).unwrap_or(&[])),
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                    Err(_) => {
                        conn.peer_eof = true;
                        break;
                    }
                }
            }
            if buf_was_empty && !conn.buf.is_empty() {
                // First bytes of a new head (re)start the read clock.
                conn.deadline_gen += 1;
                let delay = if conn.reject {
                    self.shared.cfg.reject_timeout_ms
                } else {
                    self.shared.cfg.read_timeout_ms
                };
                self.wheel.arm(delay.max(1), token, conn.deadline_gen);
            }
        }
        self.settle(token);
    }

    /// Drive a `Reading` connection: parse every complete head in the
    /// buffer (pipelining), then decide what the EOF/idle situation
    /// means. Re-entered after each keep-alive response so buffered
    /// pipelined requests are served back-to-back.
    fn settle(&mut self, token: u64) {
        loop {
            let head = {
                let Some(conn) = self.conns.get_mut(&token) else {
                    return;
                };
                if conn.state != ConnState::Reading {
                    return;
                }
                match http::scan_head(&conn.buf, self.shared.cfg.max_head_bytes) {
                    Some((outcome, consumed)) => {
                        conn.buf.drain(..consumed);
                        conn.request_started = Instant::now();
                        Some(outcome)
                    }
                    None => None,
                }
            };
            match head {
                Some(outcome) => self.one_head(token, outcome),
                None => break,
            }
        }
        let action = {
            let Some(conn) = self.conns.get_mut(&token) else {
                return;
            };
            if conn.state != ConnState::Reading {
                return;
            }
            if conn.peer_eof {
                if conn.reject {
                    // The old blocking reject path always attempted its
                    // 503 after the drain, however the drain ended.
                    ConnAction::Reject503
                } else if !conn.buf.is_empty() {
                    ConnAction::TornHead
                } else if conn.served == 0 {
                    ConnAction::CloseDisconnect
                } else {
                    ConnAction::CloseQuiet
                }
            } else {
                if conn.buf.is_empty() && conn.served > 0 {
                    // Keep-alive idle: bound the parking time.
                    conn.deadline_gen += 1;
                    self.wheel.arm(
                        self.shared.cfg.idle_timeout_ms.max(1),
                        token,
                        conn.deadline_gen,
                    );
                }
                ConnAction::Keep
            }
        };
        self.apply_conn_action(token, action);
        if matches!(action, ConnAction::Keep) {
            self.want_interest(token, Interest::READ);
        }
    }

    /// Act on one parsed head.
    fn one_head(&mut self, token: u64, outcome: ParseOutcome) {
        let is_reject = self.conns.get(&token).map(|c| c.reject).unwrap_or_default();
        if is_reject {
            // Whatever the head was, the answer is the admission 503
            // (the drain only exists to avoid an RST under the client).
            self.apply_conn_action(token, ConnAction::Reject503);
            return;
        }
        match outcome {
            ParseOutcome::Ok(req) => self.handle_request(token, req),
            ParseOutcome::Malformed(why) => {
                let resp = Response::text(400, format!("bad request: {why}\n"));
                self.send_reply(token, resp, true);
            }
            ParseOutcome::TooLarge => {
                let resp = Response::text(413, "request head exceeds the configured cap\n");
                self.send_reply(token, resp, true);
            }
            // scan_head never yields Disconnected; defensively treat it
            // as the peer vanishing.
            ParseOutcome::Disconnected => {
                self.apply_conn_action(token, ConnAction::CloseDisconnect)
            }
        }
    }

    /// Serve one well-formed request: built-ins inline, the rest to the
    /// worker pool.
    fn handle_request(&mut self, token: u64, req: Request) {
        let shared = Arc::clone(&self.shared);
        {
            let Some(conn) = self.conns.get_mut(&token) else {
                return;
            };
            if !conn.counted {
                conn.counted = true;
                shared.metrics.conn_opened();
            }
            if conn.served > 0 {
                shared.metrics.record_keepalive_reuse();
            }
            if req.close_requested {
                conn.close_after_write = true;
            }
        }
        if req.method != "GET" {
            self.send_reply(token, Response::text(405, "only GET is served\n"), true);
            return;
        }
        match req.path.as_str() {
            "/healthz" => self.send_reply(token, Response::text(200, "ok\n"), false),
            "/metrics" => {
                let page = shared.metrics.render_prometheus();
                self.send_reply(token, Response::text(200, page), false);
            }
            "/shutdown" => {
                begin_shutdown(&shared);
                self.send_reply(token, Response::text(200, "draining\n"), true);
            }
            "/" => self.send_reply(token, Response::text(200, HELP_TEXT), false),
            _ => self.dispatch_to_worker(token, req),
        }
    }

    /// Hand a request to the worker pool, or shed it with a 503 when the
    /// queue is at its bound.
    fn dispatch_to_worker(&mut self, token: u64, req: Request) {
        let shared = Arc::clone(&self.shared);
        let queued = {
            let mut jobs = shared.jobs.lock().unwrap_or_else(PoisonError::into_inner);
            if jobs.len() >= shared.cfg.queue_cap {
                false
            } else {
                let Some(conn) = self.conns.get_mut(&token) else {
                    return;
                };
                conn.generation += 1;
                conn.state = ConnState::Dispatched;
                // No deadline while a worker owns the request: cancel
                // the pending read clock.
                conn.deadline_gen += 1;
                shared.metrics.queue_enter();
                jobs.push_back(Job {
                    token,
                    generation: conn.generation,
                    request: req,
                });
                true
            }
        };
        if queued {
            shared.available.notify_one();
            self.want_interest(token, Interest::NONE);
        } else {
            shared.metrics.record_admission_reject();
            let mut resp = Response::text(503, "server is at capacity; retry shortly\n");
            resp.retry_after_secs = Some(shared.cfg.retry_after_secs);
            self.send_reply(token, resp, true);
        }
    }

    /// Serialize `resp` onto the connection and start flushing. The
    /// disposition is keep-alive unless this response, the request, the
    /// peer state, or an in-progress drain demands closure.
    fn send_reply(&mut self, token: u64, resp: Response, force_close: bool) {
        let shutting_down = self.shared.shutdown.load(Ordering::SeqCst);
        {
            let Some(conn) = self.conns.get_mut(&token) else {
                return;
            };
            let close = force_close || conn.close_after_write || conn.peer_eof || shutting_down;
            conn.close_after_write = close;
            let disposition = if close {
                Disposition::Close
            } else {
                Disposition::KeepAlive
            };
            conn.pending_status = resp.status;
            conn.out = http::serialize_response(&resp, disposition);
            conn.out_pos = 0;
            conn.state = ConnState::Writing;
            conn.deadline_gen += 1;
            let delay = if conn.reject {
                self.shared.cfg.reject_timeout_ms
            } else {
                self.shared.cfg.write_timeout_ms
            };
            self.wheel.arm(delay.max(1), token, conn.deadline_gen);
        }
        self.continue_write(token);
    }

    /// Push pending response bytes until done or the socket back-fills.
    fn continue_write(&mut self, token: u64) {
        enum WriteOutcome {
            Done,
            Blocked,
            Dead,
        }
        let outcome = {
            let Some(conn) = self.conns.get_mut(&token) else {
                return;
            };
            if conn.state != ConnState::Writing {
                return;
            }
            loop {
                let pending = conn.out.get(conn.out_pos..).unwrap_or(&[]);
                if pending.is_empty() {
                    break WriteOutcome::Done;
                }
                match conn.stream.write(pending) {
                    Ok(0) => break WriteOutcome::Dead,
                    Ok(n) => conn.out_pos += n,
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                        break WriteOutcome::Blocked;
                    }
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                    Err(_) => break WriteOutcome::Dead,
                }
            }
        };
        match outcome {
            WriteOutcome::Done => self.on_response_written(token),
            WriteOutcome::Blocked => self.want_interest(token, Interest::WRITE),
            WriteOutcome::Dead => self.apply_conn_action(token, ConnAction::CloseDisconnect),
        }
    }

    /// A full response hit the wire: record it, then keep-alive or close.
    fn on_response_written(&mut self, token: u64) {
        let close = {
            let Some(conn) = self.conns.get_mut(&token) else {
                return;
            };
            let latency_us = conn.request_started.elapsed().as_micros() as u64;
            self.shared
                .metrics
                .record_response(conn.pending_status, latency_us);
            conn.served += 1;
            conn.out.clear();
            conn.out_pos = 0;
            conn.deadline_gen += 1; // cancel the write deadline
            if !conn.close_after_write {
                conn.state = ConnState::Reading;
            }
            conn.close_after_write
        };
        if close {
            self.apply_conn_action(token, ConnAction::CloseQuiet);
        } else {
            // Buffered pipelined requests (or an already-seen EOF) are
            // handled immediately; otherwise this arms the idle clock.
            self.settle(token);
        }
    }

    /// Deliver worker results to their connections. Stale generations
    /// (the connection moved on or closed) are dropped silently; a
    /// `None` response means the handler panicked, and the peer sees the
    /// connection close without a response.
    fn drain_completions(&mut self) {
        let completed: Vec<Completion> = {
            let mut guard = self
                .shared
                .completions
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            std::mem::take(&mut *guard)
        };
        for completion in completed {
            let current = self
                .conns
                .get(&completion.token)
                .map(|conn| {
                    conn.state == ConnState::Dispatched && conn.generation == completion.generation
                })
                .unwrap_or(false);
            if !current {
                continue;
            }
            match completion.response {
                Some(resp) => self.send_reply(completion.token, resp, false),
                None => self.apply_conn_action(completion.token, ConnAction::CloseDisconnect),
            }
        }
    }

    /// A deadline fired. Only acts when the connection still holds the
    /// generation the deadline was armed for.
    fn deadline_fired(&mut self, token: u64, deadline_gen: u64) {
        let action = {
            let Some(conn) = self.conns.get(&token) else {
                return;
            };
            if conn.deadline_gen != deadline_gen {
                return;
            }
            match conn.state {
                // Dispatched requests carry no deadline; a stale one
                // that slipped through is meaningless.
                ConnState::Dispatched => ConnAction::Keep,
                ConnState::Writing => ConnAction::CloseDisconnect,
                ConnState::Reading => {
                    if conn.reject {
                        // Drain window over: answer the 503 now.
                        ConnAction::Reject503
                    } else if conn.buf.is_empty() && conn.served > 0 {
                        // Keep-alive idle expiry: a clean close.
                        ConnAction::CloseQuiet
                    } else {
                        // Never sent a head, or stalled mid-head.
                        ConnAction::CloseDisconnect
                    }
                }
            }
        };
        self.apply_conn_action(token, action);
    }

    /// Execute a borrow-free [`ConnAction`].
    fn apply_conn_action(&mut self, token: u64, action: ConnAction) {
        match action {
            ConnAction::Keep => {}
            ConnAction::CloseDisconnect => self.close_conn(token, true),
            ConnAction::CloseQuiet => self.close_conn(token, false),
            ConnAction::Reject503 => {
                let mut resp = Response::text(503, "server is at capacity; retry shortly\n");
                resp.retry_after_secs = Some(self.shared.cfg.retry_after_secs);
                self.send_reply(token, resp, true);
            }
            ConnAction::TornHead => {
                let resp = Response::text(400, "bad request: connection closed mid-request-head\n");
                self.send_reply(token, resp, true);
            }
        }
    }

    /// Set the fd's poll interest (re-registering if a dispatch hangup
    /// removed it).
    fn want_interest(&mut self, token: u64, interest: Interest) {
        let Some(conn) = self.conns.get_mut(&token) else {
            return;
        };
        if conn.registered && conn.interest == interest {
            return;
        }
        let fd = conn.stream.as_raw_fd();
        let ok = if conn.registered {
            self.poller.modify(fd, interest, token).is_ok()
        } else {
            self.poller.add(fd, interest, token).is_ok()
        };
        if ok {
            conn.registered = true;
            conn.interest = interest;
        }
    }

    /// Remove and drop a connection, balancing the gauge and disconnect
    /// accounting.
    fn close_conn(&mut self, token: u64, disconnect: bool) {
        let Some(conn) = self.conns.remove(&token) else {
            return;
        };
        if conn.registered {
            let _ = self.poller.remove(conn.stream.as_raw_fd());
        }
        if disconnect {
            self.shared.metrics.record_disconnect();
        }
        if conn.counted {
            self.shared.metrics.conn_closed();
        }
    }

    /// Drop every job still queued (the worker pool is gone) and close
    /// the connections that were waiting on them.
    fn fail_orphaned_jobs(&mut self) {
        let orphans: Vec<Job> = {
            let mut jobs = self
                .shared
                .jobs
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            jobs.drain(..).collect()
        };
        for job in orphans {
            self.shared.metrics.queue_leave();
            let current = self
                .conns
                .get(&job.token)
                .map(|conn| {
                    conn.state == ConnState::Dispatched && conn.generation == job.generation
                })
                .unwrap_or(false);
            if current {
                self.close_conn(job.token, true);
            }
        }
    }

    /// Shutdown requested: stop accepting and close connections that are
    /// between requests. In-flight requests (dispatched or writing)
    /// still complete — that is the cooperative drain.
    fn enter_drain(&mut self) {
        if self.draining {
            return;
        }
        self.draining = true;
        if let Some(listener) = self.listener.take() {
            let _ = self.poller.remove(listener.as_raw_fd());
        }
        let reading: Vec<(u64, bool)> = self
            .conns
            .iter()
            .filter(|(_, conn)| conn.state == ConnState::Reading)
            .map(|(token, conn)| (*token, conn.buf.is_empty()))
            .collect();
        for (token, quiet) in reading {
            self.close_conn(token, !quiet);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timer_wheel_fires_at_and_after_due_ticks_only() {
        let mut wheel = TimerWheel::new();
        wheel.arm(32, 7, 1); // due at tick 2
        wheel.arm(0, 8, 1); // clamps to one tick
        let mut fired = Vec::new();
        wheel.advance(1, &mut fired);
        assert_eq!(fired, vec![(8, 1)]);
        fired.clear();
        wheel.advance(2, &mut fired);
        assert_eq!(fired, vec![(7, 1)]);
    }

    #[test]
    fn timer_wheel_requeues_entries_past_one_revolution() {
        let mut wheel = TimerWheel::new();
        // 5 s >> the ~4 s wheel horizon: the slot is visited once before
        // the entry is due and must not fire early.
        let delay_ms = 5_000;
        let due_tick = delay_ms / TICK_MS;
        wheel.arm(delay_ms, 42, 9);
        let mut fired = Vec::new();
        wheel.advance(due_tick - 1, &mut fired);
        assert!(fired.is_empty(), "fired early: {fired:?}");
        wheel.advance(due_tick, &mut fired);
        assert_eq!(fired, vec![(42, 9)]);
        // Nothing left behind.
        fired.clear();
        wheel.advance(due_tick + WHEEL_SLOTS as u64 * 2, &mut fired);
        assert!(fired.is_empty(), "{fired:?}");
    }

    #[test]
    fn timer_wheel_distinguishes_deadline_generations() {
        let mut wheel = TimerWheel::new();
        wheel.arm(16, 3, 1);
        wheel.arm(16, 3, 2); // re-arm under a new generation
        let mut fired = Vec::new();
        wheel.advance(4, &mut fired);
        // Both entries fire; the reactor drops the stale generation.
        assert!(
            fired.contains(&(3, 1)) && fired.contains(&(3, 2)),
            "{fired:?}"
        );
    }
}
