//! A small, thread-safe, bounded LRU keyed by `Ord` keys.
//!
//! The shape mirrors the engine's `WorldCache` two-phase protocol: the
//! map lock is held only long enough to claim a per-key `OnceLock` slot;
//! the (potentially very expensive) value construction runs outside the
//! lock inside `OnceLock::get_or_init`, so concurrent requests for the
//! same key build the value exactly once while requests for other keys
//! proceed unblocked. Eviction removes the least-recently-used *map
//! entries*; in-flight builders keep their slot alive via `Arc`, so an
//! evicted-while-building value is still returned to its requesters and
//! simply isn't cached afterwards — a stale value can never be served
//! because a key's bytes are a pure function of the key.

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex, OnceLock, PoisonError};

struct Entry<V> {
    slot: Arc<OnceLock<Arc<V>>>,
    last_used: u64,
}

struct Inner<K, V> {
    map: BTreeMap<K, Entry<V>>,
    tick: u64,
    evictions: u64,
}

/// Outcome of one cache lookup.
pub struct CacheLookup<V> {
    /// The cached (or freshly built) value.
    pub value: Arc<V>,
    /// Whether the key was already present (its builder may still have
    /// been in flight; "hit" means no second build was started).
    pub hit: bool,
    /// How many entries this lookup evicted to stay within capacity.
    pub evicted: u64,
}

/// Bounded LRU cache; see the module docs for the locking protocol.
pub struct LruCache<K, V> {
    inner: Mutex<Inner<K, V>>,
    cap: usize,
}

impl<K: Ord + Clone, V> LruCache<K, V> {
    /// A cache holding at most `cap` entries (floored at 1).
    pub fn bounded(cap: usize) -> LruCache<K, V> {
        LruCache {
            inner: Mutex::new(Inner {
                map: BTreeMap::new(),
                tick: 0,
                evictions: 0,
            }),
            cap: cap.max(1),
        }
    }

    /// Fetch `key`, building the value with `build` on a miss. `build`
    /// runs without the map lock held.
    pub fn fetch_or_build<F: FnOnce() -> V>(&self, key: K, build: F) -> CacheLookup<V> {
        let (slot, hit, evicted) = {
            let mut inner = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
            inner.tick += 1;
            let tick = inner.tick;
            let (slot, hit) = match inner.map.get_mut(&key) {
                Some(entry) => {
                    entry.last_used = tick;
                    (Arc::clone(&entry.slot), true)
                }
                None => {
                    let slot = Arc::new(OnceLock::new());
                    inner.map.insert(
                        key.clone(),
                        Entry {
                            slot: Arc::clone(&slot),
                            last_used: tick,
                        },
                    );
                    (slot, false)
                }
            };
            let evicted = evict_over_cap(&mut inner, self.cap, &key);
            inner.evictions += evicted;
            (slot, hit, evicted)
        };
        let value = Arc::clone(slot.get_or_init(|| Arc::new(build())));
        CacheLookup {
            value,
            hit,
            evicted,
        }
    }

    /// Insert (or replace) an already-built value for `key`, touching
    /// its recency and evicting over-capacity entries. Returns how many
    /// entries were evicted. Used by the stale-bytes cache, where
    /// values arrive ready rather than through a builder.
    pub fn insert(&self, key: K, value: V) -> u64 {
        let mut inner = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        inner.tick += 1;
        let tick = inner.tick;
        let slot = Arc::new(OnceLock::new());
        let _ = slot.set(Arc::new(value));
        inner.map.insert(
            key.clone(),
            Entry {
                slot,
                last_used: tick,
            },
        );
        let evicted = evict_over_cap(&mut inner, self.cap, &key);
        inner.evictions += evicted;
        evicted
    }

    /// Fetch a ready value for `key` without building, touching its
    /// recency. Returns `None` on a miss or while a builder for the key
    /// is still in flight.
    pub fn get(&self, key: &K) -> Option<Arc<V>> {
        let mut inner = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        inner.tick += 1;
        let tick = inner.tick;
        let entry = inner.map.get_mut(key)?;
        entry.last_used = tick;
        entry.slot.get().cloned()
    }

    /// Whether `key` is resident with a ready value (does not touch
    /// recency).
    pub fn contains(&self, key: &K) -> bool {
        self.inner
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .map
            .get(key)
            .is_some_and(|e| e.slot.get().is_some())
    }

    /// Entries currently resident.
    pub fn len(&self) -> usize {
        self.inner
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .map
            .len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total entries evicted over the cache's lifetime.
    pub fn evictions(&self) -> u64 {
        self.inner
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .evictions
    }
}

/// Evict least-recently-used entries (never `keep`) until the map fits
/// in `cap`; returns how many were removed.
fn evict_over_cap<K: Ord + Clone, V>(inner: &mut Inner<K, V>, cap: usize, keep: &K) -> u64 {
    let mut evicted = 0u64;
    while inner.map.len() > cap {
        let victim = inner
            .map
            .iter()
            .filter(|(k, _)| *k != keep)
            .min_by_key(|(_, e)| e.last_used)
            .map(|(k, _)| k.clone());
        match victim {
            Some(v) => {
                inner.map.remove(&v);
                evicted += 1;
            }
            None => break,
        }
    }
    evicted
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn second_lookup_is_a_hit_and_builds_once() {
        let cache: LruCache<u32, u64> = LruCache::bounded(4);
        let builds = AtomicU64::new(0);
        let a = cache.fetch_or_build(7, || {
            builds.fetch_add(1, Ordering::SeqCst);
            70
        });
        let b = cache.fetch_or_build(7, || {
            builds.fetch_add(1, Ordering::SeqCst);
            71
        });
        assert!(!a.hit);
        assert!(b.hit);
        assert_eq!((*a.value, *b.value), (70, 70));
        assert_eq!(builds.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn evicts_least_recently_used_at_capacity() {
        let cache: LruCache<u32, u32> = LruCache::bounded(2);
        cache.fetch_or_build(1, || 1);
        cache.fetch_or_build(2, || 2);
        cache.fetch_or_build(1, || 10); // touch 1 so 2 is now LRU
        let third = cache.fetch_or_build(3, || 3);
        assert_eq!(third.evicted, 1);
        assert_eq!(cache.len(), 2);
        // Key 2 was evicted; rebuilding it is a miss with the new value,
        // and reinserting it pushes out key 1 (now the LRU entry).
        let back = cache.fetch_or_build(2, || 22);
        assert!(!back.hit);
        assert_eq!(*back.value, 22);
        assert_eq!(back.evicted, 1);
        let one = cache.fetch_or_build(1, || 99);
        assert!(!one.hit);
        assert_eq!(*one.value, 99);
        assert_eq!(cache.evictions(), 3);
    }

    #[test]
    fn insert_get_and_contains_track_recency_and_capacity() {
        let cache: LruCache<u32, &'static str> = LruCache::bounded(2);
        assert!(cache.get(&1).is_none());
        assert!(!cache.contains(&1));
        assert_eq!(cache.insert(1, "one"), 0);
        assert_eq!(cache.insert(2, "two"), 0);
        assert!(cache.contains(&1));
        assert_eq!(cache.get(&1).as_deref(), Some(&"one"));
        // Key 2 is now LRU (the get touched 1); inserting 3 evicts it.
        assert_eq!(cache.insert(3, "three"), 1);
        assert!(!cache.contains(&2));
        assert!(cache.contains(&1) && cache.contains(&3));
        // Replacing a resident key keeps capacity and updates the value.
        assert_eq!(cache.insert(1, "uno"), 0);
        assert_eq!(cache.get(&1).as_deref(), Some(&"uno"));
        assert_eq!(cache.evictions(), 1);
    }

    #[test]
    fn concurrent_same_key_builds_exactly_once() {
        let cache: Arc<LruCache<u8, String>> = Arc::new(LruCache::bounded(2));
        let builds = Arc::new(AtomicU64::new(0));
        let mut handles = Vec::new();
        for _ in 0..8 {
            let cache = Arc::clone(&cache);
            let builds = Arc::clone(&builds);
            handles.push(std::thread::spawn(move || {
                let got = cache.fetch_or_build(1, || {
                    builds.fetch_add(1, Ordering::SeqCst);
                    "value".to_string()
                });
                got.value.clone()
            }));
        }
        for h in handles {
            assert_eq!(*h.join().unwrap(), "value");
        }
        assert_eq!(builds.load(Ordering::SeqCst), 1);
    }
}
