//! Minimal HTTP/1.1 message handling over byte buffers and `std::net` —
//! just enough for the serving layer: an incremental request-head
//! scanner that walks a receive buffer one head at a time (so pipelined
//! requests parse in order), a tiny query-string parser, and a response
//! serializer that always sends an accurate `Content-Length` and an
//! explicit connection [`Disposition`] (`keep-alive` or `close`). The
//! reactor keeps connections alive by default; a parsed request records
//! whether the client asked to close ([`Request::close_requested`]) so
//! the serializer and the connection state machine agree on one
//! disposition.

use std::io::{Read, Write};
use std::net::TcpStream;

/// A parsed request line: method, path, decomposed query string, and
/// the client's connection preference.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// The HTTP method verbatim (`GET`, `POST`, …).
    pub method: String,
    /// The path component of the request target, without the query.
    pub path: String,
    /// `key=value` query pairs in request order (no percent-decoding:
    /// artifact names and numeric parameters are plain ASCII).
    pub query: Vec<(String, String)>,
    /// Whether the client asked for the connection to close after this
    /// response: `Connection: close`, or HTTP/1.0 without an explicit
    /// `Connection: keep-alive`.
    pub close_requested: bool,
}

/// What reading one request head produced.
#[derive(Debug)]
pub enum ParseOutcome {
    /// A structurally valid head.
    Ok(Request),
    /// Bytes arrived but the request line is not HTTP (`400`).
    Malformed(&'static str),
    /// The head exceeded the configured byte cap (`413`).
    TooLarge,
    /// The peer vanished (empty read, reset, or timeout) mid-head.
    Disconnected,
}

/// Scan `buf` for one complete request head starting at offset zero.
///
/// Returns `None` when the head is still incomplete and within the
/// byte cap (read more), or `Some((outcome, consumed))` where
/// `consumed` is how many buffer bytes the head used — the caller
/// drains them and may call again on the remainder, which is how
/// pipelined heads are parsed one at a time.
pub fn scan_head(buf: &[u8], max_head_bytes: usize) -> Option<(ParseOutcome, usize)> {
    match find_head_end(buf) {
        // A complete-but-oversized head is still rejected: the cap is on
        // head size, not on how much arrived before the terminator.
        Some(end) if end > max_head_bytes => Some((ParseOutcome::TooLarge, end)),
        Some(end) => Some((parse_head(buf, end), end)),
        None if buf.len() > max_head_bytes => Some((ParseOutcome::TooLarge, buf.len())),
        None => None,
    }
}

/// Read the request head (request line + headers, up to the blank line)
/// from `stream`, enforcing `max_head_bytes`. Body bytes are never read:
/// every served endpoint is `GET`-shaped and bodyless. Blocking
/// convenience over [`scan_head`] for tests and one-shot callers; the
/// reactor uses [`scan_head`] directly on its per-connection buffers.
pub fn read_request_head(stream: &mut TcpStream, max_head_bytes: usize) -> ParseOutcome {
    let mut head: Vec<u8> = Vec::with_capacity(512);
    let mut chunk = [0u8; 512];
    loop {
        if let Some((outcome, _consumed)) = scan_head(&head, max_head_bytes) {
            return outcome;
        }
        match stream.read(&mut chunk) {
            Ok(0) => {
                // EOF without a complete head: an empty probe connection
                // is a disconnect; partial bytes are a torn request.
                return if head.is_empty() {
                    ParseOutcome::Disconnected
                } else {
                    ParseOutcome::Malformed("connection closed mid-request-head")
                };
            }
            Ok(n) => head.extend_from_slice(chunk.get(..n).unwrap_or(&[])),
            Err(_) => return ParseOutcome::Disconnected,
        }
    }
}

/// Offset of the byte after the `\r\n\r\n` (or lenient `\n\n`) head
/// terminator, if present.
fn find_head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4)
        .position(|w| w == b"\r\n\r\n")
        .map(|p| p + 4)
        .or_else(|| buf.windows(2).position(|w| w == b"\n\n").map(|p| p + 2))
}

/// Parse one complete head (`head[..head_end]`): the request line plus
/// a scan of the `Connection` header for the keep-alive disposition.
fn parse_head(head: &[u8], head_end: usize) -> ParseOutcome {
    let text = match std::str::from_utf8(head.get(..head_end).unwrap_or(head)) {
        Ok(t) => t,
        Err(_) => return ParseOutcome::Malformed("request head is not UTF-8"),
    };
    let Some(line) = text.lines().next() else {
        return ParseOutcome::Malformed("empty request head");
    };
    let mut parts = line.split(' ').filter(|p| !p.is_empty());
    let (Some(method), Some(target), Some(version)) = (parts.next(), parts.next(), parts.next())
    else {
        return ParseOutcome::Malformed("request line is not `METHOD TARGET VERSION`");
    };
    if parts.next().is_some() || !version.starts_with("HTTP/1.") {
        return ParseOutcome::Malformed("request line is not HTTP/1.x");
    }
    if !method.bytes().all(|b| b.is_ascii_uppercase()) {
        return ParseOutcome::Malformed("method is not an HTTP token");
    }
    if !target.starts_with('/') {
        return ParseOutcome::Malformed("request target must be origin-form (`/path`)");
    }
    let (path, query_text) = match target.split_once('?') {
        Some((p, q)) => (p, q),
        None => (target, ""),
    };
    let mut query = Vec::new();
    for pair in query_text.split('&').filter(|p| !p.is_empty()) {
        let (k, v) = pair.split_once('=').unwrap_or((pair, ""));
        query.push((k.to_string(), v.to_string()));
    }
    // Connection disposition: an explicit `close` wins, an explicit
    // `keep-alive` wins over the version default, and HTTP/1.0 closes
    // unless the client opted in.
    let connection = text.lines().skip(1).find_map(|header| {
        let (key, value) = header.split_once(':')?;
        key.trim()
            .eq_ignore_ascii_case("connection")
            .then(|| value.trim().to_ascii_lowercase())
    });
    let close_requested = match connection.as_deref() {
        Some(v) if v.contains("close") => true,
        Some(v) if v.contains("keep-alive") => false,
        _ => version == "HTTP/1.0",
    };
    ParseOutcome::Ok(Request {
        method: method.to_string(),
        path: path.to_string(),
        query,
        close_requested,
    })
}

/// A response ready to serialize: status, media type, body, and the
/// optional `Retry-After` the admission controller attaches to `503`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// `Content-Type` header value.
    pub content_type: &'static str,
    /// Response body bytes.
    pub body: Vec<u8>,
    /// `Retry-After` seconds, sent only when present (admission `503`s).
    pub retry_after_secs: Option<u64>,
    /// `Warning` header value, sent only when present. Degraded-mode
    /// responses carry `110 dynamips-serve "stale-while-revalidate"` so
    /// clients can tell a fresh render from served-stale bytes.
    pub warning: Option<&'static str>,
}

/// The `Warning` header value attached to stale-while-revalidate
/// responses (RFC 7234 warn-code 110, "Response is Stale").
pub const WARNING_STALE: &str = "110 dynamips-serve \"stale-while-revalidate\"";

/// Whether a serialized response announces a reusable connection.
/// Threaded through [`serialize_response`] so the keep-alive path and
/// the admission-reject path share one serializer (the reject path
/// always closes; a kept-alive success announces `keep-alive`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Disposition {
    /// The connection stays open for further requests.
    KeepAlive,
    /// The connection closes after this response.
    Close,
}

impl Disposition {
    /// The `Connection` header value this disposition serializes as.
    pub fn header_value(self) -> &'static str {
        match self {
            Disposition::KeepAlive => "keep-alive",
            Disposition::Close => "close",
        }
    }
}

impl Response {
    /// A `text/plain` response.
    pub fn text(status: u16, body: impl Into<Vec<u8>>) -> Response {
        Response {
            status,
            content_type: "text/plain; charset=utf-8",
            body: body.into(),
            retry_after_secs: None,
            warning: None,
        }
    }

    /// Mark this response as served from stale bytes (attaches the
    /// [`WARNING_STALE`] header).
    pub fn mark_stale(mut self) -> Response {
        self.warning = Some(WARNING_STALE);
        self
    }

    /// The canonical reason phrase for the status codes this server emits.
    pub fn reason(status: u16) -> &'static str {
        match status {
            200 => "OK",
            400 => "Bad Request",
            404 => "Not Found",
            405 => "Method Not Allowed",
            408 => "Request Timeout",
            413 => "Payload Too Large",
            500 => "Internal Server Error",
            503 => "Service Unavailable",
            _ => "Response",
        }
    }
}

/// Serialize `resp` into wire bytes with an accurate `Content-Length`
/// and the given connection `disposition`. Every response path — fresh
/// render, stale bytes, admission 503, parse 4xx — goes through this
/// one function so keep-alive and reject connections cannot disagree
/// about what was announced on the wire.
pub fn serialize_response(resp: &Response, disposition: Disposition) -> Vec<u8> {
    let mut head = format!(
        "HTTP/1.1 {} {}\r\ncontent-type: {}\r\ncontent-length: {}\r\nconnection: {}\r\n",
        resp.status,
        Response::reason(resp.status),
        resp.content_type,
        resp.body.len(),
        disposition.header_value(),
    );
    if let Some(secs) = resp.retry_after_secs {
        head.push_str(&format!("retry-after: {secs}\r\n"));
    }
    if let Some(warning) = resp.warning {
        head.push_str(&format!("warning: {warning}\r\n"));
    }
    head.push_str("\r\n");
    let mut out = head.into_bytes();
    out.extend_from_slice(&resp.body);
    out
}

/// Write a serialized `resp` onto `stream` with the given connection
/// `disposition`. I/O errors bubble up so the caller can count the
/// disconnect; they are never fatal to the server.
pub fn write_response(
    stream: &mut TcpStream,
    resp: &Response,
    disposition: Disposition,
) -> std::io::Result<()> {
    stream.write_all(&serialize_response(resp, disposition))?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::{TcpListener, TcpStream};

    /// Feed `bytes` through a real socket pair into the head reader.
    fn parse_bytes(bytes: &[u8], cap: usize) -> ParseOutcome {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mut client = TcpStream::connect(addr).unwrap();
        client.write_all(bytes).unwrap();
        drop(client); // close so a torn head sees EOF, not a stall
        let (mut server_side, _) = listener.accept().unwrap();
        read_request_head(&mut server_side, cap)
    }

    #[test]
    fn parses_path_and_query() {
        let out = parse_bytes(
            b"GET /artifacts/fig1?seed=7&atlas_scale=0.2 HTTP/1.1\r\nHost: x\r\n\r\n",
            8192,
        );
        let ParseOutcome::Ok(req) = out else {
            panic!("{out:?}");
        };
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/artifacts/fig1");
        assert_eq!(
            req.query,
            vec![
                ("seed".to_string(), "7".to_string()),
                ("atlas_scale".to_string(), "0.2".to_string())
            ]
        );
        assert!(!req.close_requested, "HTTP/1.1 defaults to keep-alive");
    }

    #[test]
    fn connection_disposition_follows_header_and_version() {
        let cases: &[(&[u8], bool)] = &[
            (b"GET / HTTP/1.1\r\nConnection: close\r\n\r\n", true),
            (b"GET / HTTP/1.1\r\nconnection: Keep-Alive\r\n\r\n", false),
            (b"GET / HTTP/1.1\r\nHost: x\r\n\r\n", false),
            (b"GET / HTTP/1.0\r\nHost: x\r\n\r\n", true),
            (b"GET / HTTP/1.0\r\nConnection: keep-alive\r\n\r\n", false),
        ];
        for (bytes, want_close) in cases {
            let out = parse_bytes(bytes, 8192);
            let ParseOutcome::Ok(req) = out else {
                panic!("{:?}: {out:?}", String::from_utf8_lossy(bytes));
            };
            assert_eq!(
                req.close_requested,
                *want_close,
                "{:?}",
                String::from_utf8_lossy(bytes)
            );
        }
    }

    #[test]
    fn scan_head_walks_pipelined_requests_one_at_a_time() {
        let mut buf: Vec<u8> =
            b"GET /first HTTP/1.1\r\nHost: x\r\n\r\nGET /second HTTP/1.1\r\nHost: x\r\n\r\n"
                .to_vec();
        let (outcome, consumed) = scan_head(&buf, 8192).expect("first head complete");
        let ParseOutcome::Ok(first) = outcome else {
            panic!("{outcome:?}");
        };
        assert_eq!(first.path, "/first");
        buf.drain(..consumed);
        let (outcome, consumed) = scan_head(&buf, 8192).expect("second head complete");
        let ParseOutcome::Ok(second) = outcome else {
            panic!("{outcome:?}");
        };
        assert_eq!(second.path, "/second");
        buf.drain(..consumed);
        assert!(buf.is_empty());
        assert!(scan_head(&buf, 8192).is_none(), "no third head");
        // A partial trailing head stays pending until its terminator.
        buf.extend_from_slice(b"GET /third HTT");
        assert!(scan_head(&buf, 8192).is_none());
        buf.extend_from_slice(b"P/1.1\r\n\r\n");
        let (outcome, _) = scan_head(&buf, 8192).expect("third head complete");
        assert!(matches!(outcome, ParseOutcome::Ok(req) if req.path == "/third"));
    }

    #[test]
    fn malformed_torn_and_oversized_heads_are_classified() {
        assert!(matches!(
            parse_bytes(b"BOGUS\r\n\r\n", 8192),
            ParseOutcome::Malformed(_)
        ));
        assert!(matches!(
            parse_bytes(b"GET /x HTTP/1.1\r\nHost", 8192),
            ParseOutcome::Malformed(_)
        ));
        assert!(matches!(parse_bytes(b"", 8192), ParseOutcome::Disconnected));
        let huge = format!("GET /x HTTP/1.1\r\npad: {}\r\n\r\n", "y".repeat(512));
        assert!(matches!(
            parse_bytes(huge.as_bytes(), 64),
            ParseOutcome::TooLarge
        ));
        assert!(matches!(
            parse_bytes(b"GET relative-target HTTP/1.1\r\n\r\n", 8192),
            ParseOutcome::Malformed(_)
        ));
    }

    #[test]
    fn response_serializes_with_length_disposition_and_retry_after() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mut client = TcpStream::connect(addr).unwrap();
        let (mut server_side, _) = listener.accept().unwrap();
        let mut resp = Response::text(503, "busy\n").mark_stale();
        resp.retry_after_secs = Some(2);
        write_response(&mut server_side, &resp, Disposition::Close).unwrap();
        drop(server_side);
        let mut got = String::new();
        std::io::Read::read_to_string(&mut client, &mut got).unwrap();
        assert!(
            got.starts_with("HTTP/1.1 503 Service Unavailable\r\n"),
            "{got}"
        );
        assert!(got.contains("content-length: 5\r\n"));
        assert!(got.contains("connection: close\r\n"));
        assert!(got.contains("retry-after: 2\r\n"));
        assert!(
            got.contains("warning: 110 dynamips-serve \"stale-while-revalidate\"\r\n"),
            "{got}"
        );
        assert!(got.ends_with("\r\n\r\nbusy\n"));
    }

    #[test]
    fn keep_alive_and_close_paths_share_one_serializer() {
        let resp = Response::text(200, "hello");
        let kept = String::from_utf8(serialize_response(&resp, Disposition::KeepAlive)).unwrap();
        let closed = String::from_utf8(serialize_response(&resp, Disposition::Close)).unwrap();
        assert!(kept.contains("connection: keep-alive\r\n"), "{kept}");
        assert!(kept.contains("content-length: 5\r\n"), "{kept}");
        assert!(closed.contains("connection: close\r\n"), "{closed}");
        // Identical except for the one connection header.
        assert_eq!(
            kept.replace("connection: keep-alive", "connection: close"),
            closed
        );
    }
}
