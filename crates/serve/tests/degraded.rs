//! Degraded-operation acceptance: hostile or broken input — malformed
//! request lines, oversized heads, premature disconnects, and
//! chaos-mutated request text — must map to clean 4xx responses or
//! counted disconnects, never a panic or a wedged worker. Each test
//! finishes by proving the server still answers `/healthz`.

use std::io::{Read as _, Write as _};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

use dynamips_chaos::corrupt_tsv;
use dynamips_serve::{http_get, Handler, Metrics, Request, Response, ServeConfig, Server};

/// Minimal application handler: one known route, 404 for the rest.
struct OneRoute;

impl Handler for OneRoute {
    fn respond(&self, req: &Request) -> Response {
        if req.path == "/app" {
            Response::text(200, "app ok\n")
        } else {
            Response::text(404, format!("no such endpoint {:?}\n", req.path))
        }
    }
}

fn start_server(metrics: &Arc<Metrics>) -> Server {
    Server::start(
        "127.0.0.1:0",
        ServeConfig::default(),
        Arc::new(OneRoute),
        Arc::clone(metrics),
    )
    .expect("bind ephemeral")
}

/// Send raw bytes and read whatever comes back (empty if the server
/// hangs up without a response, which is legal for torn requests).
fn exchange(addr: &str, bytes: &[u8]) -> String {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .expect("read timeout");
    let _ = stream.write_all(bytes);
    let _ = stream.flush();
    // Half-close the sending side: a mutated head that lost its blank
    // line terminator must hit EOF (→ 400) instead of the read timeout.
    let _ = stream.shutdown(std::net::Shutdown::Write);
    let mut out = Vec::new();
    let _ = stream.read_to_end(&mut out);
    String::from_utf8_lossy(&out).to_string()
}

fn assert_healthy(addr: &str) {
    let health = http_get(addr, "/healthz", 10_000).expect("healthz");
    assert_eq!(health.status, 200);
    assert_eq!(health.body, b"ok\n");
}

#[test]
fn malformed_request_lines_get_400_not_a_panic() {
    let metrics = Arc::new(Metrics::new());
    let server = start_server(&metrics);
    let addr = server.local_addr().to_string();

    let cases: &[&[u8]] = &[
        b"BOGUS\r\n\r\n",
        b"GET\r\n\r\n",
        b"GET /x SPDY/9\r\n\r\n",
        b"get /lowercase HTTP/1.1\r\n\r\n",
        b"GET relative-target HTTP/1.1\r\n\r\n",
        b"GET /x HTTP/1.1 extra-token\r\n\r\n",
        b"\xff\xfe not utf8 \xff\r\n\r\n",
    ];
    for case in cases {
        let got = exchange(&addr, case);
        assert!(
            got.starts_with("HTTP/1.1 400 Bad Request\r\n"),
            "case {:?} got: {got}",
            String::from_utf8_lossy(case)
        );
    }
    assert_eq!(metrics.responses_with_status(400), cases.len() as u64);
    assert_healthy(&addr);

    server.shutdown_handle().begin_shutdown();
    server.join();
}

#[test]
fn oversized_heads_get_413_and_unknown_routes_404() {
    let metrics = Arc::new(Metrics::new());
    let server = Server::start(
        "127.0.0.1:0",
        ServeConfig {
            max_head_bytes: 256,
            ..ServeConfig::default()
        },
        Arc::new(OneRoute),
        Arc::clone(&metrics),
    )
    .expect("bind ephemeral");
    let addr = server.local_addr().to_string();

    let huge = format!("GET /app HTTP/1.1\r\npad: {}\r\n\r\n", "y".repeat(4 * 1024));
    let got = exchange(&addr, huge.as_bytes());
    assert!(got.starts_with("HTTP/1.1 413 "), "{got}");

    let missing = http_get(&addr, "/not/served", 10_000).expect("404 route");
    assert_eq!(missing.status, 404);
    let app = http_get(&addr, "/app", 10_000).expect("app route");
    assert_eq!(
        (app.status, app.body.as_slice()),
        (200, b"app ok\n".as_slice())
    );
    assert_healthy(&addr);

    server.shutdown_handle().begin_shutdown();
    server.join();
}

#[test]
fn premature_disconnects_are_counted_not_fatal() {
    let metrics = Arc::new(Metrics::new());
    let server = start_server(&metrics);
    let addr = server.local_addr().to_string();

    for _ in 0..8 {
        // Connect and vanish without sending a byte.
        let stream = TcpStream::connect(&addr).expect("connect");
        drop(stream);
    }
    for _ in 0..4 {
        // Send half a request head, then vanish.
        let mut stream = TcpStream::connect(&addr).expect("connect");
        let _ = stream.write_all(b"GET /app HTT");
        drop(stream);
    }
    // The pool must still serve; torn heads surface as 400 or counted
    // disconnects depending on how much the worker saw before EOF.
    assert_healthy(&addr);

    server.shutdown_handle().begin_shutdown();
    let summary = server.join();
    assert_eq!(summary.rejected, 0, "{summary:?}");
}

/// Chaos sweep over the request text itself: seeded mutations of a valid
/// request must always produce *some* orderly outcome — a parsed 2xx/4xx
/// response or a counted disconnect — and never wedge the server.
#[test]
fn mutated_request_heads_never_wedge_the_server() {
    let metrics = Arc::new(Metrics::new());
    let server = start_server(&metrics);
    let addr = server.local_addr().to_string();

    let pristine =
        "GET /app?seed=7&atlas_scale=0.2 HTTP/1.1\r\nhost: chaos\r\naccept: text/plain\r\n\r\n";
    let mut outcomes = std::collections::BTreeMap::new();
    for seed in 0..64u64 {
        let (mutated, _log) = corrupt_tsv(pristine, seed, 0.3);
        let got = exchange(&addr, mutated.as_bytes());
        let label = got
            .strip_prefix("HTTP/1.1 ")
            .and_then(|rest| rest.get(..3))
            .unwrap_or("hangup")
            .to_string();
        *outcomes.entry(label).or_insert(0u32) += 1;
        // Whatever the mutation did, the next probe must be answered.
        assert_healthy(&addr);
    }
    // The sweep must exercise both clean parses and rejections; a sweep
    // where every mutation still parsed would prove nothing.
    assert!(
        outcomes.keys().any(|k| k.starts_with('4')),
        "no mutation was rejected: {outcomes:?}"
    );
    assert!(metrics.responses_total() > 64, "healthz probes + mutations");

    server.shutdown_handle().begin_shutdown();
    server.join();
}
