//! Open-loop load-generator acceptance: a run is fully accounted and
//! deterministic in its schedule, and — the reason the mode exists — a
//! stalling server inflates the open-loop tail latency where the
//! closed-loop generator would have hidden it (coordinated omission).

use std::sync::Arc;
use std::time::Duration;

use dynamips_serve::{
    run_loadtest, Handler, LoadtestConfig, Metrics, Request, Response, ServeConfig, Server,
};

/// Handler that takes a fixed wall-clock time per request, so the
/// service rate is known and slower than the open-loop arrival rate.
struct Sleepy(u64);

impl Handler for Sleepy {
    fn respond(&self, _req: &Request) -> Response {
        std::thread::sleep(Duration::from_millis(self.0));
        Response::text(200, "ok\n")
    }
}

fn start(cfg: ServeConfig, delay_ms: u64) -> Server {
    Server::start(
        "127.0.0.1:0",
        cfg,
        Arc::new(Sleepy(delay_ms)),
        Arc::new(Metrics::new()),
    )
    .expect("bind ephemeral")
}

#[test]
fn open_loop_run_is_fully_accounted_over_keep_alive_connections() {
    let server = start(ServeConfig::default(), 0);
    let url = format!("http://{}/probe", server.local_addr());

    let cfg = LoadtestConfig {
        url,
        concurrency: 8,
        requests: 40,
        timeout_ms: 10_000,
        open_loop: true,
        rate_rps: 500.0,
        seed: 42,
    };
    let report = run_loadtest(&cfg).expect("open-loop run");
    assert!(report.open_loop);
    assert_eq!(report.seed, 42);
    assert_eq!(report.target_rps, 500.0);
    assert!(report.all_ok(), "{}", report.render_text());
    assert_eq!(report.ok_2xx, 40);
    assert_eq!(report.transport_errors, 0);
    // The bench record carries the open-loop provenance.
    let record = report.to_perf_record();
    assert_eq!(record.seed, 42);
    assert!(record
        .artifacts
        .iter()
        .any(|e| e.name == "target-rps" && e.ms == 500.0));

    server.shutdown_handle().begin_shutdown();
    server.join();
}

#[test]
fn stalled_server_inflates_open_loop_p99_where_closed_loop_hides_it() {
    // One worker at ~40 ms per request caps service at ~25 req/s.
    let server = start(
        ServeConfig {
            workers: 1,
            ..ServeConfig::default()
        },
        40,
    );
    let url = format!("http://{}/slow", server.local_addr());

    // Closed loop, one in flight: the generator waits for the server,
    // so every sample is just the service time — the stall never shows.
    let closed = run_loadtest(&LoadtestConfig {
        url: url.clone(),
        concurrency: 1,
        requests: 25,
        timeout_ms: 10_000,
        open_loop: false,
        rate_rps: 0.0,
        seed: 0,
    })
    .expect("closed-loop run");
    assert!(closed.all_ok(), "{}", closed.render_text());

    // Open loop at 100 req/s against a 25 req/s server: arrivals keep
    // coming on schedule, the queue grows, and every queued arrival is
    // charged its wait from the *scheduled* start.
    let open = run_loadtest(&LoadtestConfig {
        url,
        concurrency: 8,
        requests: 25,
        timeout_ms: 10_000,
        open_loop: true,
        rate_rps: 100.0,
        seed: 7,
    })
    .expect("open-loop run");
    assert!(open.all_ok(), "{}", open.render_text());

    assert!(
        open.p99_ms > 3.0 * closed.p99_ms,
        "open-loop p99 {:.1} ms should dwarf closed-loop p99 {:.1} ms \
         when arrivals outpace service",
        open.p99_ms,
        closed.p99_ms
    );

    server.shutdown_handle().begin_shutdown();
    server.join();
}
