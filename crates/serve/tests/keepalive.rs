//! Keep-alive acceptance: one socket must serve a sequence of requests
//! with exactly the same application bytes as a sequence of fresh
//! connections, reuse must be counted, and pipelined heads must be
//! answered in order.

use std::io::{Read as _, Write as _};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

use dynamips_serve::{
    http_get, Handler, KeepAliveConnection, Metrics, Request, Response, ServeConfig, Server,
};

/// Path-echoing handler so every request has a distinguishable body.
struct Echo;

impl Handler for Echo {
    fn respond(&self, req: &Request) -> Response {
        Response::text(200, format!("echo {}\n", req.path))
    }
}

fn start(metrics: &Arc<Metrics>) -> Server {
    Server::start(
        "127.0.0.1:0",
        ServeConfig::default(),
        Arc::new(Echo),
        Arc::clone(metrics),
    )
    .expect("bind ephemeral")
}

#[test]
fn one_socket_serves_n_requests_byte_identical_to_n_fresh_connections() {
    const N: usize = 5;
    let metrics = Arc::new(Metrics::new());
    let server = start(&metrics);
    let addr = server.local_addr().to_string();

    let mut conn = KeepAliveConnection::connect(&addr, 5_000).expect("connect");
    let mut kept = Vec::new();
    for i in 0..N {
        let got = conn.get(&format!("/app/{i}")).expect("keep-alive get");
        kept.push((got.status, got.body));
    }
    assert!(conn.is_reusable(), "server must not close between requests");
    assert_eq!(conn.requests_served(), N as u64);

    let mut fresh = Vec::new();
    for i in 0..N {
        let got = http_get(&addr, &format!("/app/{i}"), 5_000).expect("fresh get");
        fresh.push((got.status, got.body));
    }
    assert_eq!(
        kept, fresh,
        "status and body must not depend on connection reuse"
    );
    assert_eq!(
        metrics.keepalive_reuses(),
        (N - 1) as u64,
        "every request on the shared socket after the first is a reuse"
    );

    drop(conn);
    server.shutdown_handle().begin_shutdown();
    let summary = server.join();
    assert_eq!(summary.served, 2 * N as u64, "{summary:?}");
    assert_eq!(summary.rejected, 0, "{summary:?}");
}

#[test]
fn pipelined_heads_are_answered_in_order_on_one_socket() {
    let metrics = Arc::new(Metrics::new());
    let server = start(&metrics);
    let addr = server.local_addr().to_string();

    let mut stream = TcpStream::connect(&addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .expect("read timeout");
    // Two heads in a single write; the second asks to close so the
    // response stream has a definite end.
    stream
        .write_all(
            b"GET /first HTTP/1.1\r\nHost: x\r\n\r\n\
              GET /second HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n",
        )
        .expect("pipelined write");
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw).expect("read both responses");
    let text = String::from_utf8_lossy(&raw);
    let first = text.find("echo /first\n").expect("first body present");
    let second = text.find("echo /second\n").expect("second body present");
    assert!(first < second, "responses must come back in request order");
    assert!(
        text.contains("connection: keep-alive"),
        "first response keeps the connection: {text}"
    );
    assert!(
        text.contains("connection: close"),
        "second response honors Connection: close: {text}"
    );

    server.shutdown_handle().begin_shutdown();
    let summary = server.join();
    assert_eq!(summary.served, 2, "{summary:?}");
}
