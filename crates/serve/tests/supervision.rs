//! Worker-supervision acceptance: a handler panic must never take the
//! server down. The panicked worker is caught and counted, the
//! supervisor respawns the slot (with backoff under a crash loop), and
//! the server keeps answering — including `/healthz` while a crash
//! loop is in progress — then drains cleanly.

use std::sync::Arc;
use std::thread;
use std::time::Duration;

use dynamips_serve::{http_get, Handler, Metrics, Request, Response, ServeConfig, Server};

/// Panics on the magic path, succeeds everywhere else — the
/// deliberately buggy application handler.
struct BoomOnMagic;

impl Handler for BoomOnMagic {
    fn respond(&self, req: &Request) -> Response {
        assert!(req.path != "/boom", "injected handler panic");
        Response::text(200, format!("ok {}\n", req.path))
    }
}

fn wait_until(what: &str, cond: impl Fn() -> bool) {
    // A sleep-counted bound (~10 s) rather than a deadline: the lint
    // keeps wall-clock reads out of everything but the timing layer,
    // tests included.
    for _ in 0..5_000 {
        if cond() {
            return;
        }
        thread::sleep(Duration::from_millis(2));
    }
    panic!("timed out waiting for {what}");
}

fn start(cfg: ServeConfig, metrics: &Arc<Metrics>) -> Server {
    Server::start(
        "127.0.0.1:0",
        cfg,
        Arc::new(BoomOnMagic),
        Arc::clone(metrics),
    )
    .expect("bind ephemeral")
}

/// A panicking request on a single-worker pool: the worker dies, the
/// panic is counted, the supervisor respawns the slot, and the very
/// next request succeeds — proof the replacement worker is live.
#[test]
fn worker_panic_is_caught_counted_and_the_worker_respawns() {
    let metrics = Arc::new(Metrics::new());
    let cfg = ServeConfig {
        workers: 1,
        respawn_backoff_ms: 5,
        ..ServeConfig::default()
    };
    let server = start(cfg, &metrics);
    let addr = server.local_addr().to_string();

    // The panicked connection gets no response: a transport error.
    let boom = http_get(&addr, "/boom", 10_000);
    assert!(boom.is_err(), "panicked request must not get a response");
    wait_until("panic recorded", || metrics.worker_panics() == 1);
    wait_until("worker respawned", || metrics.worker_respawns() == 1);

    // With workers=1 only the respawned worker can answer this.
    let after = http_get(&addr, "/after", 10_000).expect("respawned worker serves");
    assert_eq!(
        (after.status, after.body.as_slice()),
        (200, b"ok /after\n".as_slice())
    );
    // The panicked connection was accounted (gauge balanced +
    // disconnect counted), so admission control is not wedged.
    assert_eq!(metrics.open_connections(), 0);
    assert!(metrics.disconnects() >= 1);

    server.shutdown_handle().begin_shutdown();
    let summary = server.join();
    assert_eq!(summary.worker_panics, 1, "{summary:?}");
    assert_eq!(summary.worker_respawns, 1, "{summary:?}");
}

/// A crash loop: repeated panics with no progress in between grow the
/// restart backoff, but the server stays responsive on `/healthz`
/// between respawns and still drains cleanly.
#[test]
fn crash_loop_backs_off_but_healthz_stays_responsive() {
    let metrics = Arc::new(Metrics::new());
    let cfg = ServeConfig {
        workers: 2,
        respawn_backoff_ms: 2,
        respawn_backoff_cap_ms: 50,
        ..ServeConfig::default()
    };
    let server = start(cfg, &metrics);
    let addr = server.local_addr().to_string();

    for round in 1..=5u64 {
        let _ = http_get(&addr, "/boom", 10_000);
        wait_until("panic counted", || metrics.worker_panics() >= round);
        wait_until("slot respawned", || metrics.worker_respawns() >= round);
        // Liveness between crashes: the built-in route still answers.
        let health = http_get(&addr, "/healthz", 10_000).expect("healthz mid-crash-loop");
        assert_eq!(health.status, 200);
    }
    assert_eq!(metrics.worker_panics(), 5);
    assert_eq!(metrics.worker_respawns(), 5);

    server.shutdown_handle().begin_shutdown();
    let summary = server.join();
    assert_eq!(summary.worker_panics, 5, "{summary:?}");
}

/// The crash-loop cap: once `max_worker_respawns` is exhausted the
/// dying slot stays dead — no more respawns — and shutdown still
/// drains without hanging.
#[test]
fn respawn_cap_leaves_the_slot_dead_and_join_still_drains() {
    let metrics = Arc::new(Metrics::new());
    let cfg = ServeConfig {
        workers: 2,
        respawn_backoff_ms: 1,
        max_worker_respawns: 2,
        ..ServeConfig::default()
    };
    let server = start(cfg, &metrics);
    let addr = server.local_addr().to_string();

    for round in 1..=3u64 {
        let _ = http_get(&addr, "/boom", 10_000);
        wait_until("panic counted", || metrics.worker_panics() >= round);
    }
    // Two respawns were allowed; the third panic hit the cap.
    wait_until("respawns capped", || metrics.worker_respawns() == 2);
    // One worker of the two remains; it still serves.
    let health = http_get(&addr, "/healthz", 10_000).expect("surviving worker serves");
    assert_eq!(health.status, 200);

    server.shutdown_handle().begin_shutdown();
    let summary = server.join();
    assert_eq!(summary.worker_panics, 3, "{summary:?}");
    assert_eq!(summary.worker_respawns, 2, "{summary:?}");
}
