//! Admission-control acceptance: with one worker and a queue bound of
//! one, a handler that holds the lone worker makes overload exactly
//! reproducible — the first connection is in flight, the second is
//! queued, and the third MUST be answered `503` with `Retry-After`
//! before any application code runs.

use std::io::{Read as _, Write as _};
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

use dynamips_serve::{
    http_get, FetchResult, Handler, Metrics, Request, Response, ServeConfig, Server,
};

/// Holds every request until `release` flips, so the test controls
/// exactly when the worker pool frees up.
struct Gated {
    release: AtomicBool,
    started: AtomicUsize,
}

impl Handler for Gated {
    fn respond(&self, _req: &Request) -> Response {
        self.started.fetch_add(1, Ordering::SeqCst);
        while !self.release.load(Ordering::SeqCst) {
            thread::sleep(Duration::from_millis(2));
        }
        Response::text(200, "slow done\n")
    }
}

fn wait_until(what: &str, cond: impl Fn() -> bool) {
    // A sleep-counted bound (~10 s) rather than a deadline: the lint
    // keeps wall-clock reads out of everything but the timing layer,
    // tests included.
    for _ in 0..5_000 {
        if cond() {
            return;
        }
        thread::sleep(Duration::from_millis(2));
    }
    panic!("timed out waiting for {what}");
}

fn spawn_get(addr: &str, path: &str) -> thread::JoinHandle<Result<FetchResult, String>> {
    let addr = addr.to_string();
    let path = path.to_string();
    thread::spawn(move || http_get(&addr, &path, 20_000))
}

/// Raw request/response text so header assertions see the wire bytes.
fn raw_get(addr: &str, path: &str) -> String {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .expect("read timeout");
    write!(stream, "GET {path} HTTP/1.1\r\nhost: test\r\n\r\n").expect("send");
    let mut out = String::new();
    stream.read_to_string(&mut out).expect("read response");
    out
}

#[test]
fn third_connection_past_the_bounds_is_rejected_with_retry_after() {
    let metrics = Arc::new(Metrics::new());
    let gate = Arc::new(Gated {
        release: AtomicBool::new(false),
        started: AtomicUsize::new(0),
    });
    let cfg = ServeConfig {
        workers: 1,
        queue_cap: 1,
        retry_after_secs: 3,
        ..ServeConfig::default()
    };
    let server = Server::start(
        "127.0.0.1:0",
        cfg,
        Arc::clone(&gate) as Arc<dyn Handler>,
        Arc::clone(&metrics),
    )
    .expect("bind ephemeral");
    let addr = server.local_addr().to_string();

    // First request claims the only worker and parks inside the handler.
    let first = spawn_get(&addr, "/slow/first");
    wait_until("the first request to reach the handler", || {
        gate.started.load(Ordering::SeqCst) == 1
    });
    // Second request fills the queue (depth 1 == queue_cap).
    let second = spawn_get(&addr, "/slow/second");
    wait_until("the second connection to be admitted", || {
        metrics.open_connections() == 2
    });

    // Third connection: the acceptor must shed it inline.
    let raw = raw_get(&addr, "/slow/third");
    assert!(
        raw.starts_with("HTTP/1.1 503 Service Unavailable\r\n"),
        "expected an admission 503, got: {raw}"
    );
    assert!(raw.contains("retry-after: 3\r\n"), "{raw}");
    assert_eq!(metrics.admission_rejects(), 1);
    assert_eq!(
        gate.started.load(Ordering::SeqCst),
        1,
        "the rejected connection must never reach the handler"
    );

    // Release the gate: both admitted requests complete normally.
    gate.release.store(true, Ordering::SeqCst);
    for handle in [first, second] {
        let got = handle.join().expect("client thread").expect("response");
        assert_eq!(got.status, 200);
        assert_eq!(got.body, b"slow done\n");
    }

    server.shutdown_handle().begin_shutdown();
    let summary = server.join();
    assert_eq!(summary.rejected, 1, "{summary:?}");
    assert_eq!(summary.served, 2, "{summary:?}");
    assert_eq!(metrics.responses_with_status(503), 1);
    assert_eq!(metrics.responses_with_status(200), 2);
}

#[test]
fn rejections_clear_once_load_drains() {
    let metrics = Arc::new(Metrics::new());
    let gate = Arc::new(Gated {
        release: AtomicBool::new(false),
        started: AtomicUsize::new(0),
    });
    let cfg = ServeConfig {
        workers: 1,
        queue_cap: 1,
        ..ServeConfig::default()
    };
    let server = Server::start(
        "127.0.0.1:0",
        cfg,
        Arc::clone(&gate) as Arc<dyn Handler>,
        Arc::clone(&metrics),
    )
    .expect("bind ephemeral");
    let addr = server.local_addr().to_string();

    let first = spawn_get(&addr, "/slow");
    wait_until("the handler to start", || {
        gate.started.load(Ordering::SeqCst) == 1
    });
    let second = spawn_get(&addr, "/slow");
    wait_until("the queue to fill", || metrics.open_connections() == 2);
    assert!(raw_get(&addr, "/overflow").starts_with("HTTP/1.1 503 "));

    // After the drain the same server admits new work again.
    gate.release.store(true, Ordering::SeqCst);
    first.join().expect("client").expect("response");
    second.join().expect("client").expect("response");
    let after = http_get(&addr, "/healthz", 10_000).expect("healthz after overload");
    assert_eq!(after.status, 200);

    server.shutdown_handle().begin_shutdown();
    let summary = server.join();
    assert_eq!(summary.rejected, 1, "{summary:?}");
}
