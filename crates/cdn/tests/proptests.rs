//! Property tests for the association-dataset TSV serialization.

use dynamips_cdn::dataset::{from_tsv, from_tsv_lossy, to_tsv, AssociationErrorKind};
use dynamips_cdn::{Association, AssociationDataset};
use dynamips_netaddr::{Ipv4Prefix, Ipv6Prefix};
use dynamips_routing::Asn;
use proptest::prelude::*;
use std::net::{Ipv4Addr, Ipv6Addr};

fn arb_association() -> impl Strategy<Value = Association> {
    (
        any::<u32>(),
        any::<u128>(),
        any::<u32>(),
        any::<u32>(),
        any::<bool>(),
    )
        .prop_map(|(v4, v6, day, asn, mobile)| Association {
            v24: Ipv4Prefix::slash24_of(Ipv4Addr::from(v4)),
            p64: Ipv6Prefix::slash64_of(Ipv6Addr::from(v6)),
            day,
            asn: Asn(asn),
            mobile,
        })
}

proptest! {
    #[test]
    fn tsv_round_trips_arbitrary_tuples(
        tuples in proptest::collection::vec(arb_association(), 0..100),
    ) {
        let ds = AssociationDataset {
            raw_count: tuples.len() as u64,
            tuples,
            ..Default::default()
        };
        let text = to_tsv(&ds);
        let parsed = from_tsv(&text).unwrap();
        prop_assert_eq!(parsed.tuples, ds.tuples);
    }

    #[test]
    fn parser_never_panics_on_garbage(text in "[ -~\n\t]{0,400}") {
        let _ = from_tsv(&text);
    }

    #[test]
    fn unique_and_mobile_stats_are_consistent(
        tuples in proptest::collection::vec(arb_association(), 1..100),
    ) {
        let ds = AssociationDataset {
            raw_count: tuples.len() as u64,
            tuples,
            ..Default::default()
        };
        let uniques = ds.unique_p64_count();
        prop_assert!(uniques >= 1 && uniques <= ds.len());
        let frac = ds.mobile_p64_fraction();
        prop_assert!((0.0..=1.0).contains(&frac));
    }

    #[test]
    fn lossy_parser_never_panics_on_garbage(text in "[ -~\n\t]{0,400}") {
        let (_, errors) = from_tsv_lossy(&text);
        for e in &errors {
            prop_assert!(e.line >= 1);
            prop_assert!(e.line_text.chars().count() <= 120);
        }
    }

    #[test]
    fn mutated_dumps_never_panic_and_attribute_every_drop(
        tuples in proptest::collection::vec(arb_association(), 1..60),
        muts in proptest::collection::vec((any::<usize>(), any::<u8>()), 1..8),
    ) {
        let ds = AssociationDataset {
            raw_count: tuples.len() as u64,
            tuples,
            ..Default::default()
        };
        let mut bytes = to_tsv(&ds).into_bytes();
        for (pos, val) in muts {
            let at = pos % bytes.len();
            bytes[at] = val;
        }
        let mutated = String::from_utf8_lossy(&bytes).into_owned();

        // Strict mode: errors are fine, panics are not — and any
        // non-duplicate quarantine in lossy mode implies strict refusal.
        let strict = from_tsv(&mutated);
        let (recovered, errors) = from_tsv_lossy(&mutated);
        if errors
            .iter()
            .any(|e| e.kind != AssociationErrorKind::DuplicateRecord)
        {
            prop_assert!(strict.is_err(), "lossy quarantined a line strict accepted");
        }

        // Conservation: every content line becomes a tuple or exactly one
        // quarantine error.
        let content = mutated
            .lines()
            .filter(|l| {
                let t = l.trim();
                !t.is_empty() && !t.starts_with('#')
            })
            .count();
        prop_assert_eq!(recovered.len() + errors.len(), content);
    }
}
