//! The CDN collection pipeline: world → pre-processed association dataset.

use crate::dataset::{Association, AssociationDataset};
use dynamips_netaddr::Ipv4Prefix;
use dynamips_netsim::rngutil::derive_rng;
use dynamips_netsim::time::Window;
use dynamips_netsim::{SimTime, World};
use rand::Rng;
use std::net::Ipv4Addr;

/// RUM collection knobs.
#[derive(Debug, Clone, Copy)]
pub struct CdnConfig {
    /// Probability that a dual-stack client produces a usable RUM
    /// association on any given day (not every site visit yields a
    /// cross-protocol transaction).
    pub daily_association_prob: f64,
    /// Probability that an association is polluted by a network switch
    /// mid-transaction (phone hopping from WiFi to cellular): the IPv4 side
    /// comes from a different network and the AS-mismatch filter must drop
    /// it.
    pub cross_network_noise: f64,
}

impl Default for CdnConfig {
    fn default() -> Self {
        CdnConfig {
            daily_association_prob: 0.6,
            cross_network_noise: 0.034,
        }
    }
}

impl CdnConfig {
    /// Noise-free collection for tests.
    pub fn pristine() -> Self {
        CdnConfig {
            daily_association_prob: 1.0,
            cross_network_noise: 0.0,
        }
    }
}

/// Builds the association dataset the way the paper's Section 4.1 describes:
/// observe raw dual-stack transactions, tag both sides with origin ASNs from
/// the BGP feed, discard mismatches, aggregate to (/24, /64, date), label
/// mobile/fixed.
pub struct CdnCollector<'w> {
    world: &'w World,
    window: Window,
    config: CdnConfig,
}

impl<'w> CdnCollector<'w> {
    /// Create a collector over `world` for `window`.
    pub fn new(world: &'w World, window: Window, config: CdnConfig) -> Self {
        CdnCollector {
            world,
            window,
            config,
        }
    }

    /// Run the collection and pre-processing, returning the dataset.
    pub fn collect(&self) -> AssociationDataset {
        let mut rng = derive_rng(self.world.seed(), 0xCD17);
        let mut ds = AssociationDataset::default();
        let routing = self.world.routing();
        let registry = self.world.registry();
        let first_day = self.window.start.days() as u32;
        let days = self.window.days() as u32;

        // Donor v4 address from the previously simulated ISP, used to
        // synthesize cross-network noise records.
        let mut donor_v4: Option<Ipv4Addr> = None;

        self.world.run_each(self.window, |result| {
            for tl in &result.timelines {
                if !tl.dual_stack {
                    continue;
                }
                for d in 0..days {
                    if !rng.gen_bool(self.config.daily_association_prob) {
                        continue;
                    }
                    let day = first_day + d;
                    let hour = rng.gen_range(0..24);
                    let t = SimTime((day as u64) * 24 + hour);
                    let (Some(v4seg), Some(v6seg)) = (tl.v4_at(t), tl.v6_at(t)) else {
                        continue;
                    };
                    let mut v4addr = v4seg.addr;
                    if self.config.cross_network_noise > 0.0
                        && rng.gen_bool(self.config.cross_network_noise)
                    {
                        if let Some(d4) = donor_v4 {
                            v4addr = d4; // network switch mid-transaction
                        }
                    }
                    ds.raw_count += 1;

                    // BGP-feed tagging and the AS-mismatch filter.
                    let origin4 = routing.origin_v4(v4addr);
                    let origin6 = routing.route_v6_prefix(&v6seg.lan64).map(|(_, a)| a);
                    let (Some(a4), Some(a6)) = (origin4, origin6) else {
                        ds.discarded_unrouted += 1;
                        continue;
                    };
                    if a4 != a6 {
                        ds.discarded_as_mismatch += 1;
                        continue;
                    }

                    ds.tuples.push(Association {
                        v24: Ipv4Prefix::slash24_of(v4addr),
                        p64: v6seg.lan64,
                        day,
                        asn: a4,
                        mobile: registry.is_cellular(a4),
                    });
                }
            }
            // Remember one address of this ISP as noise donor for the next.
            donor_v4 = result
                .timelines
                .iter()
                .rev()
                .find_map(|tl| tl.v4.last().map(|s| s.addr))
                .or(donor_v4);
        });
        ds
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dynamips_netsim::config::{
        CpeV6Behavior, IspConfig, OutageConfig, SubscriberClass, V4Policy, V4PoolPlan, V6Policy,
        V6PoolPlan,
    };
    use dynamips_routing::{AccessType, Asn, Rir};

    fn isp(asn: u32, v4: &str, v6: &str, cellular: bool) -> IspConfig {
        IspConfig {
            asn: Asn(asn),
            name: format!("ISP{asn}"),
            country: "X".into(),
            rir: Rir::RipeNcc,
            access: if cellular {
                AccessType::Cellular
            } else {
                AccessType::FixedLine
            },
            v4_plan: Some(V4PoolPlan {
                pools: vec![(v4.parse().unwrap(), 1.0)],
                announcements: vec![],
                p_near: 0.0,
                near_radius: 16,
            }),
            v6_plan: Some(V6PoolPlan {
                aggregates: vec![v6.parse().unwrap()],
                region_len: 40,
                delegated_len: 56,
                regions_per_aggregate: 2,
                p_stay_region: 1.0,
            }),
            classes: vec![SubscriberClass {
                weight: 1.0,
                dual_stack: true,
                v4: Some(V4Policy::DhcpSticky { lease_hours: 48 }),
                v6: Some(V6Policy::StableDelegation {
                    valid_lifetime_hours: 48,
                    maintenance_mean_hours: f64::INFINITY,
                }),
                coupled: false,
                cpe_mix: vec![(1.0, CpeV6Behavior::ZeroOut)],
                outages: OutageConfig::none(),
            }],
            stabilization: vec![],
            subscribers: 8,
        }
    }

    fn window() -> Window {
        Window::new(SimTime(0), SimTime(24 * 30))
    }

    #[test]
    fn pristine_collection_yields_one_tuple_per_client_day() {
        let mut world = World::new(5);
        world.add_isp(isp(64500, "198.18.0.0/16", "2001:db8::/32", false));
        let ds = CdnCollector::new(&world, window(), CdnConfig::pristine()).collect();
        assert_eq!(ds.len(), 8 * 30);
        assert_eq!(ds.raw_count, 8 * 30);
        assert_eq!(ds.discarded_as_mismatch, 0);
        assert_eq!(ds.discarded_unrouted, 0);
        for t in &ds.tuples {
            assert_eq!(t.asn, Asn(64500));
            assert!(!t.mobile);
            assert_eq!(t.v24.len(), 24);
            assert_eq!(t.p64.len(), 64);
        }
    }

    #[test]
    fn stable_clients_keep_one_association_all_month() {
        let mut world = World::new(5);
        world.add_isp(isp(64500, "198.18.0.0/16", "2001:db8::/32", false));
        let ds = CdnCollector::new(&world, window(), CdnConfig::pristine()).collect();
        // Group by /64: each client's association must be constant.
        let mut by_p64: std::collections::HashMap<u128, std::collections::HashSet<u32>> =
            std::collections::HashMap::new();
        for t in &ds.tuples {
            by_p64.entry(t.p64.bits()).or_default().insert(t.v24.bits());
        }
        assert_eq!(by_p64.len(), 8, "one /64 per stable client");
        for v24s in by_p64.values() {
            assert_eq!(v24s.len(), 1, "stable one-to-one association");
        }
    }

    #[test]
    fn mobile_labeling_follows_registry() {
        let mut world = World::new(6);
        world.add_isp(isp(64500, "198.18.0.0/16", "2001:db8::/32", false));
        world.add_isp(isp(64501, "198.51.100.0/24", "3fff::/32", true));
        let ds = CdnCollector::new(&world, window(), CdnConfig::pristine()).collect();
        for t in &ds.tuples {
            assert_eq!(t.mobile, t.asn == Asn(64501));
        }
        let frac = ds.mobile_p64_fraction();
        assert!((frac - 0.5).abs() < 0.01, "{frac}");
    }

    #[test]
    fn cross_network_noise_is_discarded_by_as_mismatch_filter() {
        let mut world = World::new(7);
        world.add_isp(isp(64500, "198.18.0.0/16", "2001:db8::/32", false));
        world.add_isp(isp(64501, "198.51.100.0/24", "3fff::/32", true));
        let mut cfg = CdnConfig::pristine();
        cfg.cross_network_noise = 0.5;
        let ds = CdnCollector::new(&world, window(), cfg).collect();
        // The second ISP's records get polluted with first-ISP v4 addresses
        // half the time; all of those must be discarded.
        assert!(ds.discarded_as_mismatch > 0);
        assert_eq!(
            ds.raw_count,
            ds.len() as u64 + ds.discarded_as_mismatch + ds.discarded_unrouted
        );
        // Every retained tuple is internally consistent.
        for t in &ds.tuples {
            let r4 = world.routing().route_v4(t.v24.network()).map(|(_, a)| a);
            assert_eq!(r4, Some(t.asn));
        }
    }

    #[test]
    fn daily_probability_thins_the_dataset() {
        let mut world = World::new(8);
        world.add_isp(isp(64500, "198.18.0.0/16", "2001:db8::/32", false));
        let mut cfg = CdnConfig::pristine();
        cfg.daily_association_prob = 0.25;
        let ds = CdnCollector::new(&world, window(), cfg).collect();
        let expected = 8.0 * 30.0 * 0.25;
        assert!((ds.len() as f64) < expected * 1.6);
        assert!((ds.len() as f64) > expected * 0.4);
    }

    #[test]
    fn collection_is_deterministic() {
        let mut world = World::new(9);
        world.add_isp(isp(64500, "198.18.0.0/16", "2001:db8::/32", false));
        let a = CdnCollector::new(&world, window(), CdnConfig::default()).collect();
        let b = CdnCollector::new(&world, window(), CdnConfig::default()).collect();
        assert_eq!(a.tuples, b.tuples);
        assert_eq!(a.raw_count, b.raw_count);
    }
}
