//! The aggregated association dataset.

// Ingest code must degrade, never abort: no unwraps or expects on
// data-derived values (tests are exempt via clippy.toml).
#![warn(clippy::unwrap_used, clippy::expect_used)]

use dynamips_netaddr::{Ipv4Prefix, Ipv6Prefix};
use dynamips_routing::Asn;

/// One `(IPv4 /24, IPv6 /64, date)` association tuple after pre-processing,
/// carrying the (matching) origin AS and its access-type label.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Association {
    /// The IPv4 side, aggregated to a /24.
    pub v24: Ipv4Prefix,
    /// The IPv6 side, aggregated to a /64.
    pub p64: Ipv6Prefix,
    /// Day index since the simulation epoch.
    pub day: u32,
    /// Origin AS (identical for both sides after filtering).
    pub asn: Asn,
    /// Whether the AS is a cellular access network.
    pub mobile: bool,
}

/// The full pre-processed dataset plus pre-processing counters (the paper
/// reports 32.7 B raw associations reduced to 31.6 B after the AS-mismatch
/// filter; we track the same accounting at simulation scale).
#[derive(Debug, Clone, Default)]
pub struct AssociationDataset {
    /// Retained associations, ordered by (ASN, subscriber, day) as emitted.
    pub tuples: Vec<Association>,
    /// Raw association count before filtering.
    pub raw_count: u64,
    /// Associations discarded because the IPv4 and IPv6 origin AS differed.
    pub discarded_as_mismatch: u64,
    /// Associations discarded because one side was not routed at all.
    pub discarded_unrouted: u64,
}

impl AssociationDataset {
    /// Retained tuple count.
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// Whether the dataset is empty.
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }

    /// Number of distinct /64 prefixes (the paper reports 2.1 B at full
    /// scale and uses this to quantify the cellular share).
    pub fn unique_p64_count(&self) -> usize {
        let mut p64s: Vec<u128> = self.tuples.iter().map(|t| t.p64.bits()).collect();
        p64s.sort_unstable();
        p64s.dedup();
        p64s.len()
    }

    /// Fraction of distinct /64s that belong to cellular networks (65.7% in
    /// the paper).
    pub fn mobile_p64_fraction(&self) -> f64 {
        let mut seen: std::collections::HashMap<u128, bool> = std::collections::HashMap::new();
        for t in &self.tuples {
            seen.entry(t.p64.bits()).or_insert(t.mobile);
        }
        if seen.is_empty() {
            return 0.0;
        }
        let mobile = seen.values().filter(|&&m| m).count();
        mobile as f64 / seen.len() as f64
    }
}

/// Serialize the dataset as TSV, one association per line:
/// `v24_network TAB p64_network TAB day TAB asn TAB mobile(0|1)`.
/// Mirrors the flat-file form the paper's aggregated dataset would take.
pub fn to_tsv(ds: &AssociationDataset) -> String {
    use std::fmt::Write as _;
    let mut out = String::with_capacity(ds.tuples.len() * 48);
    for t in &ds.tuples {
        // Writing to a String cannot fail.
        let _ = writeln!(
            out,
            "{}\t{}\t{}\t{}\t{}",
            t.v24.network(),
            t.p64.network(),
            t.day,
            t.asn.0,
            u8::from(t.mobile)
        );
    }
    out
}

/// Machine-readable classification of one quarantined association TSV
/// line, the per-class taxonomy the degradation accounting aggregates
/// over.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum AssociationErrorKind {
    /// Wrong number of TAB-separated fields.
    FieldCount,
    /// The IPv4 /24 network does not parse (covers garbage and
    /// mixed-family addresses alike).
    BadV24,
    /// The IPv6 /64 network does not parse.
    BadP64,
    /// Day index is not a `u32`.
    BadDay,
    /// Origin AS is not a `u32`.
    BadAsn,
    /// Access-type flag is neither `0` nor `1`.
    BadMobileFlag,
    /// Exact duplicate of an already-ingested tuple (lossy mode only; the
    /// duplicate is dropped).
    DuplicateRecord,
}

impl AssociationErrorKind {
    /// Stable kebab-case label for per-class quarantine accounting.
    pub fn class(&self) -> &'static str {
        match self {
            AssociationErrorKind::FieldCount => "field-count",
            AssociationErrorKind::BadV24 => "bad-v24",
            AssociationErrorKind::BadP64 => "bad-p64",
            AssociationErrorKind::BadDay => "bad-day",
            AssociationErrorKind::BadAsn => "bad-asn",
            AssociationErrorKind::BadMobileFlag => "bad-mobile-flag",
            AssociationErrorKind::DuplicateRecord => "duplicate-record",
        }
    }
}

impl std::fmt::Display for AssociationErrorKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.class())
    }
}

impl std::error::Error for AssociationErrorKind {}

/// Longest prefix of the offending line kept in an error, in chars.
const ERROR_LINE_TEXT_CHARS: usize = 120;

fn truncate_line_text(line: &str) -> String {
    if line.chars().count() <= ERROR_LINE_TEXT_CHARS {
        line.to_string()
    } else {
        line.chars().take(ERROR_LINE_TEXT_CHARS).collect()
    }
}

/// Error from parsing an association TSV dump.
#[derive(Debug, Clone, PartialEq, Eq)]
// lint:allow(dead-pub): named in the pub from_tsv/from_tsv_lossy signatures;
// callers consume values without ever spelling the type name.
pub struct AssociationParseError {
    /// 1-based line number.
    pub line: usize,
    /// The offending line's text, truncated to 120 chars.
    pub line_text: String,
    /// Machine-readable classification.
    pub kind: AssociationErrorKind,
    /// Description.
    pub message: String,
}

impl std::fmt::Display for AssociationParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "association TSV line {}: {} (line: {:?})",
            self.line, self.message, self.line_text
        )
    }
}

impl std::error::Error for AssociationParseError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        Some(&self.kind)
    }
}

/// Parse one non-blank, non-comment line.
fn parse_association_line(lineno: usize, line: &str) -> Result<Association, AssociationParseError> {
    let err = |kind: AssociationErrorKind, message: String| AssociationParseError {
        line: lineno,
        line_text: truncate_line_text(line),
        kind,
        message,
    };
    // Destructure the five TAB-separated fields without slice indexing:
    // the shape of data-derived input is checked once, exhaustively, and
    // the extra `next()` rejects six-field lines.
    let mut fields = line.split('\t');
    let (Some(f_v24), Some(f_p64), Some(f_day), Some(f_asn), Some(f_mobile), None) = (
        fields.next(),
        fields.next(),
        fields.next(),
        fields.next(),
        fields.next(),
        fields.next(),
    ) else {
        return Err(err(
            AssociationErrorKind::FieldCount,
            format!("expected 5 fields, got {}", line.split('\t').count()),
        ));
    };
    let v24: Ipv4Prefix = format!("{f_v24}/24")
        .parse()
        .map_err(|e| err(AssociationErrorKind::BadV24, format!("bad /24: {e}")))?;
    let p64: Ipv6Prefix = format!("{f_p64}/64")
        .parse()
        .map_err(|e| err(AssociationErrorKind::BadP64, format!("bad /64: {e}")))?;
    let day: u32 = f_day
        .parse()
        .map_err(|_| err(AssociationErrorKind::BadDay, format!("bad day {f_day:?}")))?;
    let asn: u32 = f_asn
        .parse()
        .map_err(|_| err(AssociationErrorKind::BadAsn, format!("bad asn {f_asn:?}")))?;
    let mobile = match f_mobile {
        "0" => false,
        "1" => true,
        other => {
            return Err(err(
                AssociationErrorKind::BadMobileFlag,
                format!("bad mobile flag {other:?}"),
            ))
        }
    };
    Ok(Association {
        v24,
        p64,
        day,
        asn: Asn(asn),
        mobile,
    })
}

/// Parse an association TSV dump. Blank lines and `#` comments are
/// ignored. Pre-processing counters are not serialized; the returned
/// dataset's `raw_count` equals its tuple count. Strict: the first
/// malformed line aborts the parse.
pub fn from_tsv(text: &str) -> Result<AssociationDataset, AssociationParseError> {
    let mut ds = AssociationDataset::default();
    for (idx, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        ds.tuples.push(parse_association_line(idx + 1, line)?);
    }
    ds.raw_count = ds.tuples.len() as u64;
    Ok(ds)
}

/// Parse an association TSV dump, tolerating malformed input. Malformed
/// lines are quarantined (dropped, with a typed error describing them)
/// rather than aborting the parse, and exact duplicate tuples are dropped
/// with accounting. Tuple order is immaterial downstream (run detection
/// sorts per /64), so out-of-order input needs no repair here. Returns the
/// recovered dataset plus one [`AssociationParseError`] per quarantined
/// line.
pub fn from_tsv_lossy(text: &str) -> (AssociationDataset, Vec<AssociationParseError>) {
    let mut ds = AssociationDataset::default();
    let mut errors: Vec<AssociationParseError> = Vec::new();
    let mut seen: std::collections::HashSet<(u32, u128, u32, u32, bool)> =
        std::collections::HashSet::new();
    for (idx, line) in text.lines().enumerate() {
        let lineno = idx + 1;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        match parse_association_line(lineno, line) {
            Ok(t) => {
                if seen.insert((t.v24.bits(), t.p64.bits(), t.day, t.asn.0, t.mobile)) {
                    ds.tuples.push(t);
                } else {
                    errors.push(AssociationParseError {
                        line: lineno,
                        line_text: truncate_line_text(line),
                        kind: AssociationErrorKind::DuplicateRecord,
                        message: format!(
                            "duplicate tuple for {} on day {}",
                            t.p64.network(),
                            t.day
                        ),
                    });
                }
            }
            Err(e) => errors.push(e),
        }
    }
    ds.raw_count = ds.tuples.len() as u64;
    (ds, errors)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assoc(v24: &str, p64: &str, day: u32, asn: u32, mobile: bool) -> Association {
        Association {
            v24: v24.parse().unwrap(),
            p64: p64.parse().unwrap(),
            day,
            asn: Asn(asn),
            mobile,
        }
    }

    #[test]
    fn unique_p64_counting() {
        let ds = AssociationDataset {
            tuples: vec![
                assoc("84.128.0.0/24", "2003:40:a0:aa00::/64", 0, 3320, false),
                assoc("84.128.0.0/24", "2003:40:a0:aa00::/64", 1, 3320, false),
                assoc("84.128.1.0/24", "2003:40:a0:bb00::/64", 1, 3320, false),
            ],
            raw_count: 3,
            ..Default::default()
        };
        assert_eq!(ds.len(), 3);
        assert_eq!(ds.unique_p64_count(), 2);
    }

    #[test]
    fn mobile_fraction_by_unique_p64() {
        let ds = AssociationDataset {
            tuples: vec![
                assoc("84.128.0.0/24", "2003:40:a0:aa00::/64", 0, 3320, false),
                // Same mobile /64 seen twice: counted once.
                assoc("92.40.1.0/24", "2a01:4c80:1:2::/64", 0, 12576, true),
                assoc("92.40.2.0/24", "2a01:4c80:1:2::/64", 1, 12576, true),
                assoc("92.40.1.0/24", "2a01:4c80:9:9::/64", 2, 12576, true),
            ],
            raw_count: 4,
            ..Default::default()
        };
        let f = ds.mobile_p64_fraction();
        assert!((f - 2.0 / 3.0).abs() < 1e-9, "{f}");
    }

    #[test]
    fn empty_dataset() {
        let ds = AssociationDataset::default();
        assert!(ds.is_empty());
        assert_eq!(ds.mobile_p64_fraction(), 0.0);
        assert_eq!(ds.unique_p64_count(), 0);
    }

    #[test]
    fn tsv_round_trip() {
        let ds = AssociationDataset {
            tuples: vec![
                assoc("84.128.0.0/24", "2003:40:a0:aa00::/64", 2191, 3320, false),
                assoc("92.40.2.0/24", "2a01:4c80:1:2::/64", 2200, 12576, true),
            ],
            raw_count: 2,
            ..Default::default()
        };
        let text = to_tsv(&ds);
        let parsed = from_tsv(&text).unwrap();
        assert_eq!(parsed.tuples, ds.tuples);
        assert_eq!(parsed.raw_count, 2);
    }

    #[test]
    fn tsv_parse_errors() {
        let err = from_tsv("a\tb\tc\n").unwrap_err();
        assert_eq!(err.line, 1);
        assert_eq!(err.kind, AssociationErrorKind::FieldCount);
        assert_eq!(err.line_text, "a\tb\tc");
        let bad_flag = "84.128.0.0\t2003::\t1\t3320\t7\n";
        let err = from_tsv(bad_flag).unwrap_err();
        assert!(err.message.contains("mobile flag"));
        assert_eq!(err.kind, AssociationErrorKind::BadMobileFlag);
        let bad_p64 = "84.128.0.0\tnot-v6\t1\t3320\t0\n";
        assert!(from_tsv(bad_p64).unwrap_err().message.contains("bad /64"));
        // Comments and blanks are fine.
        assert!(from_tsv("# header\n\n").unwrap().is_empty());
    }

    #[test]
    fn error_line_text_truncates_and_source_is_the_kind() {
        use std::error::Error as _;
        let long = "y".repeat(400);
        let err = from_tsv(&long).unwrap_err();
        assert_eq!(err.line_text.chars().count(), 120);
        assert_eq!(
            err.source().expect("source").to_string(),
            AssociationErrorKind::FieldCount.to_string()
        );
    }

    #[test]
    fn lossy_parse_of_clean_input_matches_strict() {
        let ds = AssociationDataset {
            tuples: vec![
                assoc("84.128.0.0/24", "2003:40:a0:aa00::/64", 2191, 3320, false),
                assoc("92.40.2.0/24", "2a01:4c80:1:2::/64", 2200, 12576, true),
            ],
            raw_count: 2,
            ..Default::default()
        };
        let text = to_tsv(&ds);
        let (lossy, errors) = from_tsv_lossy(&text);
        assert!(errors.is_empty());
        assert_eq!(lossy.tuples, from_tsv(&text).unwrap().tuples);
    }

    #[test]
    fn lossy_quarantines_bad_lines_and_drops_duplicates() {
        let good = "84.128.0.0\t2003:40:a0:aa00::\t5\t3320\t0";
        let text = format!(
            "garbage\n{good}\n{good}\n84.128.1.0\t2003::\tnot-a-day\t3320\t1\n\
             2003::1\t2003::\t1\t3320\t0\n"
        );
        let (lossy, errors) = from_tsv_lossy(&text);
        assert_eq!(lossy.len(), 1);
        let kinds: Vec<_> = errors.iter().map(|e| e.kind).collect();
        assert_eq!(
            kinds,
            vec![
                AssociationErrorKind::FieldCount,
                AssociationErrorKind::DuplicateRecord,
                AssociationErrorKind::BadDay,
                // v6 address in the v24 column: mixed address family.
                AssociationErrorKind::BadV24,
            ]
        );
        assert_eq!(errors[1].line, 3);
    }
}
