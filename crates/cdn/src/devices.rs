//! Device-level address observation.
//!
//! A home network hosts several devices behind the CPE, each configuring
//! its own 64-bit interface identifier inside the delegated /64 — most of
//! them RFC 4941 privacy identifiers that rotate daily (Section 2.1). A
//! service that counts *addresses* therefore sees many per subscriber; one
//! that counts /64s sees one per subscriber per assignment. This module
//! produces the full-address observation stream those counting analyses
//! (Section 2.3's "double-count" discussion) work on.

use dynamips_netaddr::{eui64_from_mac, privacy_iid};
use dynamips_netsim::rngutil::derive_rng;
use dynamips_netsim::time::Window;
use dynamips_netsim::{SimTime, SubscriberTimeline};
use rand::Rng;
use std::net::Ipv6Addr;

/// Configuration for the device population of a home network.
#[derive(Debug, Clone, Copy)]
pub struct DeviceConfig {
    /// Minimum devices per subscriber household.
    pub min_devices: u8,
    /// Maximum devices per subscriber household.
    pub max_devices: u8,
    /// Fraction of devices using a stable EUI-64 identifier instead of
    /// rotating privacy identifiers (various studies still observe these).
    pub eui64_fraction: f64,
    /// Privacy-identifier regeneration interval, hours.
    pub privacy_rotation_hours: u64,
    /// Probability a given device is active (produces an observation) on a
    /// given day.
    pub daily_activity: f64,
}

impl Default for DeviceConfig {
    fn default() -> Self {
        DeviceConfig {
            min_devices: 1,
            max_devices: 5,
            eui64_fraction: 0.15,
            privacy_rotation_hours: 24,
            daily_activity: 0.7,
        }
    }
}

/// One observed device address on one day.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
// lint:allow(dead-pub): named in the pub observe_devices signature; callers
// consume values without ever spelling the type name.
pub struct DeviceObservation {
    /// Day since the simulation epoch.
    pub day: u32,
    /// The device's full global address at observation time.
    pub address: Ipv6Addr,
    /// Ground truth: which subscriber this was.
    pub subscriber: u32,
}

/// Generate daily device-level observations for one subscriber over
/// `window`, deterministic in (`seed`, subscriber id).
pub fn observe_devices(
    timeline: &SubscriberTimeline,
    window: Window,
    cfg: &DeviceConfig,
    seed: u64,
) -> Vec<DeviceObservation> {
    let mut rng = derive_rng(seed, 0xDE71CE ^ u64::from(timeline.id.index));
    let n_devices = rng.gen_range(cfg.min_devices..=cfg.max_devices.max(cfg.min_devices));

    // Per-device identity: a stable EUI-64 or a rotating privacy IID
    // (re-derived per rotation period from the device index).
    #[derive(Clone, Copy)]
    enum Kind {
        Eui64(u64),
        Privacy,
    }
    let kinds: Vec<Kind> = (0..n_devices)
        .map(|_| {
            if rng.gen_bool(cfg.eui64_fraction) {
                let mut mac = [0u8; 6];
                rng.fill(&mut mac);
                mac[0] = (mac[0] & 0xfe) | 0x02;
                Kind::Eui64(eui64_from_mac(mac))
            } else {
                Kind::Privacy
            }
        })
        .collect();

    let mut out = Vec::new();
    let first_day = window.start.days() as u32;
    for d in 0..window.days() as u32 {
        let day = first_day + d;
        let hour = rng.gen_range(0..24);
        let t = SimTime(u64::from(day) * 24 + hour);
        let Some(seg) = timeline.v6_at(t) else {
            continue;
        };
        for (dev, kind) in kinds.iter().enumerate() {
            if !rng.gen_bool(cfg.daily_activity) {
                continue;
            }
            let iid = match kind {
                Kind::Eui64(iid) => *iid,
                Kind::Privacy => {
                    // Deterministic rotation: one fresh identifier per
                    // rotation period per device.
                    let period = t.hours() / cfg.privacy_rotation_hours.max(1);
                    let mut r = derive_rng(
                        seed ^ 0x9D,
                        (u64::from(timeline.id.index) << 24) ^ ((dev as u64) << 40) ^ period,
                    );
                    privacy_iid(&mut r)
                }
            };
            // lan64 is a /64 by construction; drop the observation rather
            // than panic on a malformed segment.
            let Ok(address) = seg.lan64.with_iid(iid) else {
                continue;
            };
            out.push(DeviceObservation {
                day,
                address,
                subscriber: timeline.id.index,
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use dynamips_netaddr::iid::looks_like_eui64;
    use dynamips_netaddr::Ipv6Prefix;
    use dynamips_netsim::timeline::{SubscriberId, V6Segment};
    use dynamips_routing::Asn;
    use std::collections::HashSet;

    fn timeline(index: u32) -> SubscriberTimeline {
        SubscriberTimeline {
            id: SubscriberId {
                asn: Asn(3320),
                index,
            },
            dual_stack: true,
            device_iid: 0x0225_96ff_fe12_3456,
            v4: vec![],
            v6: vec![V6Segment {
                start: SimTime(0),
                end: SimTime(60 * 24),
                delegated: "2003:40:a0:aa00::/56".parse().unwrap(),
                lan64: "2003:40:a0:aa00::/64".parse().unwrap(),
            }],
        }
    }

    fn window() -> Window {
        Window::new(SimTime(0), SimTime(30 * 24))
    }

    #[test]
    fn observations_stay_inside_the_lan64() {
        let obs = observe_devices(&timeline(1), window(), &DeviceConfig::default(), 7);
        assert!(!obs.is_empty());
        let lan: Ipv6Prefix = "2003:40:a0:aa00::/64".parse().unwrap();
        for o in &obs {
            assert!(lan.contains(o.address));
            assert_eq!(o.subscriber, 1);
        }
    }

    #[test]
    fn privacy_devices_rotate_eui64_devices_do_not() {
        let cfg = DeviceConfig {
            min_devices: 4,
            max_devices: 4,
            eui64_fraction: 0.5,
            privacy_rotation_hours: 24,
            daily_activity: 1.0,
        };
        let obs = observe_devices(&timeline(2), window(), &cfg, 11);
        let eui: HashSet<Ipv6Addr> = obs
            .iter()
            .filter(|o| looks_like_eui64(u128::from(o.address) as u64))
            .map(|o| o.address)
            .collect();
        let privacy: HashSet<Ipv6Addr> = obs
            .iter()
            .filter(|o| !looks_like_eui64(u128::from(o.address) as u64))
            .map(|o| o.address)
            .collect();
        // Stable devices contribute one address each; privacy devices one
        // per day each.
        assert!(!eui.is_empty());
        assert!(eui.len() <= 4);
        assert!(
            privacy.len() >= 25,
            "daily rotation must multiply addresses: {}",
            privacy.len()
        );
    }

    #[test]
    fn rotation_interval_controls_address_count() {
        let mk = |rot| DeviceConfig {
            min_devices: 1,
            max_devices: 1,
            eui64_fraction: 0.0,
            privacy_rotation_hours: rot,
            daily_activity: 1.0,
        };
        let daily = observe_devices(&timeline(3), window(), &mk(24), 13);
        let weekly = observe_devices(&timeline(3), window(), &mk(24 * 7), 13);
        let count =
            |obs: &[DeviceObservation]| obs.iter().map(|o| o.address).collect::<HashSet<_>>().len();
        assert!(count(&daily) > 3 * count(&weekly));
    }

    #[test]
    fn deterministic_per_seed() {
        let a = observe_devices(&timeline(4), window(), &DeviceConfig::default(), 5);
        let b = observe_devices(&timeline(4), window(), &DeviceConfig::default(), 5);
        let c = observe_devices(&timeline(4), window(), &DeviceConfig::default(), 6);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn offline_subscriber_produces_nothing() {
        let mut tl = timeline(5);
        tl.v6.clear();
        assert!(observe_devices(&tl, window(), &DeviceConfig::default(), 7).is_empty());
    }
}
