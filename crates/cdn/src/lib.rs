//! CDN Real-User-Monitoring observation layer.
//!
//! Section 4.1 of the paper: a Javascript RUM system occasionally observes
//! both addresses of a dual-stacked client in one transaction (the content
//! page is fetched over one protocol, the beacon reported over the other),
//! yielding instantaneous IPv4–IPv6 associations. The CDN aggregates them to
//! `(IPv4 /24, IPv6 /64, date)` tuples, tags both sides with origin ASNs
//! from its BGP feeds, discards mismatches (multihoming, WiFi/cellular
//! switches), and labels prefixes mobile or fixed.
//!
//! This crate reproduces that pipeline over simulated ground truth.

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod collect;
pub mod dataset;
pub mod devices;

pub use collect::{CdnCollector, CdnConfig};
pub use dataset::{Association, AssociationDataset};
