//! Shared fixtures for the benchmark suite.
//!
//! The benches live in `benches/`:
//!
//! * `paper_artifacts` — one benchmark per regenerated table/figure
//!   (analysis pipelines plus per-artifact rendering).
//! * `micro` — core data structures (trie LPM, CPL, TTF, sanitizer).
//! * `ablations` — the design-choice ablations listed in DESIGN.md.

#![warn(missing_docs)]
#![deny(unsafe_code)]

use dynamips_experiments::{AtlasAnalysis, CdnAnalysis, ExperimentConfig};

/// The configuration every pipeline benchmark uses: small enough for
/// Criterion's repeated sampling, large enough to exercise all code paths.
pub fn bench_config() -> ExperimentConfig {
    ExperimentConfig {
        seed: 1,
        atlas_scale: 0.04,
        cdn_scale: 0.03,
    }
}

/// Compute the Atlas analysis once for render benchmarks.
pub fn atlas_analysis() -> AtlasAnalysis {
    AtlasAnalysis::compute(&bench_config())
}

/// Compute the CDN analysis once for render benchmarks.
pub fn cdn_analysis() -> CdnAnalysis {
    CdnAnalysis::compute(&bench_config())
}
