//! Microbenchmarks for the core data structures and analysis kernels.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use dynamips_core::changes::{sandwiched_durations, spans_of};
use dynamips_core::durations::{detect_period, DurationSet};
use dynamips_netaddr::{
    common_prefix_len_v6, nibble_boundary_class, trailing_zero_bits_v6, Ipv4Prefix, Ipv4Trie,
    Ipv6Prefix, Ipv6Trie,
};
use dynamips_netsim::rngutil::derive_rng;
use dynamips_netsim::SimTime;
use rand::Rng;
use std::hint::black_box;
use std::net::{Ipv4Addr, Ipv6Addr};

fn trie_benches(c: &mut Criterion) {
    let mut rng = derive_rng(1, 0);
    // A routing-table-like v4 trie: 10k prefixes of mixed lengths.
    let mut v4 = Ipv4Trie::new();
    for _ in 0..10_000 {
        let bits: u32 = rng.gen();
        let len = rng.gen_range(8..=24);
        v4.insert(
            Ipv4Prefix::new_truncated(Ipv4Addr::from(bits), len).unwrap(),
            rng.gen::<u32>(),
        );
    }
    let mut v6 = Ipv6Trie::new();
    for _ in 0..10_000 {
        let bits: u128 = rng.gen();
        let len = rng.gen_range(19..=48);
        v6.insert(
            Ipv6Prefix::new_truncated(Ipv6Addr::from(bits), len).unwrap(),
            rng.gen::<u32>(),
        );
    }
    let v4_queries: Vec<Ipv4Addr> = (0..1000)
        .map(|_| Ipv4Addr::from(rng.gen::<u32>()))
        .collect();
    let v6_queries: Vec<Ipv6Prefix> = (0..1000)
        .map(|_| Ipv6Prefix::slash64_of(Ipv6Addr::from(rng.gen::<u128>())))
        .collect();

    let mut g = c.benchmark_group("trie");
    g.throughput(Throughput::Elements(1000));
    g.bench_function("v4_lpm_1k_lookups", |b| {
        b.iter(|| {
            for q in &v4_queries {
                black_box(v4.lookup(*q));
            }
        })
    });
    g.bench_function("v6_lpm_1k_prefix_lookups", |b| {
        b.iter(|| {
            for q in &v6_queries {
                black_box(v6.lookup_prefix(q));
            }
        })
    });
    g.finish();
}

fn prefix_math(c: &mut Criterion) {
    let mut rng = derive_rng(2, 0);
    let prefixes: Vec<Ipv6Prefix> = (0..1000)
        .map(|_| Ipv6Prefix::slash64_of(Ipv6Addr::from(rng.gen::<u128>())))
        .collect();
    let mut g = c.benchmark_group("prefix_math");
    g.throughput(Throughput::Elements(999));
    g.bench_function("cpl_chain", |b| {
        b.iter(|| {
            for pair in prefixes.windows(2) {
                black_box(common_prefix_len_v6(&pair[0], &pair[1]));
            }
        })
    });
    g.throughput(Throughput::Elements(1000));
    g.bench_function("trailing_zeros", |b| {
        b.iter(|| {
            for p in &prefixes {
                black_box(trailing_zero_bits_v6(p));
            }
        })
    });
    g.bench_function("nibble_class", |b| {
        b.iter(|| {
            for p in &prefixes {
                black_box(nibble_boundary_class(p));
            }
        })
    });
    g.finish();
}

fn analysis_kernels(c: &mut Criterion) {
    let mut rng = derive_rng(3, 0);
    // A year of hourly observations with daily changes.
    let obs: Vec<(SimTime, u32)> = (0..(365 * 24))
        .map(|h| (SimTime(h), (h / 24) as u32))
        .collect();
    let mut set = DurationSet::new();
    for _ in 0..10_000 {
        set.push(rng.gen_range(20..28));
    }
    let mut g = c.benchmark_group("analysis");
    g.bench_function("spans_of_year_of_hours", |b| {
        b.iter(|| black_box(spans_of(obs.iter().copied())))
    });
    let spans = spans_of(obs.iter().copied());
    g.bench_function("sandwiched_durations", |b| {
        b.iter(|| black_box(sandwiched_durations(&spans)))
    });
    g.bench_function("detect_period_10k", |b| {
        b.iter(|| black_box(detect_period(&set, 0.05, 0.5)))
    });
    g.bench_function("cumulative_ttf_marks", |b| {
        b.iter(|| black_box(set.cumulative_ttf_marks()))
    });
    // The prefix-sum + partition_point form; the old per-threshold
    // rescan was O(T·N) over this same input.
    let weighted: Vec<(f64, f64)> = (0..10_000)
        .map(|_| {
            let v = rng.gen_range(1.0..2000.0f64);
            (v, v)
        })
        .collect();
    let thresholds: Vec<f64> = (0..200).map(|t| t as f64 * 10.0).collect();
    g.bench_function("weighted_cdf_10k_values_200_thresholds", |b| {
        b.iter(|| {
            black_box(dynamips_core::stats::weighted_cdf_at(
                &weighted,
                &thresholds,
            ))
        })
    });
    g.finish();
}

fn inference_kernels(c: &mut Criterion) {
    use dynamips_core::changes::{ProbeHistory, Span};
    use dynamips_core::poolinfer::infer_pool_boundary;
    use dynamips_core::subscriber::infer_subscriber_len_mode;
    use dynamips_core::targetgen::{sixgen_targets, NibbleModel};
    use dynamips_netaddr::Ipv6PrefixPool;

    let mut rng = derive_rng(4, 0);
    let pool = Ipv6PrefixPool::new("2001:db8:4000::/40".parse().unwrap(), 56).unwrap();
    let histories: Vec<ProbeHistory> = (0..100u32)
        .map(|i| ProbeHistory {
            probe: dynamips_atlas::ProbeId(i),
            virtual_index: 0,
            asn: dynamips_routing::Asn(64500),
            v4: vec![],
            v6: (0..200)
                .map(|k| Span {
                    value: pool
                        .prefix(rng.gen_range(0..pool.capacity()))
                        .unwrap()
                        .nth_subprefix(64, 0)
                        .unwrap(),
                    first: SimTime(k * 24),
                    last: SimTime(k * 24 + 23),
                })
                .collect(),
        })
        .collect();
    let refs: Vec<&ProbeHistory> = histories.iter().collect();
    let seeds: Vec<Ipv6Prefix> = histories
        .iter()
        .flat_map(|h| h.v6.iter().map(|s| s.value))
        .collect();

    let mut g = c.benchmark_group("inference");
    g.bench_function("pool_boundary_100_probes", |b| {
        b.iter(|| black_box(infer_pool_boundary(&refs, 16..=56, 4, 0.85)))
    });
    g.bench_function("subscriber_len_mode", |b| {
        b.iter(|| black_box(infer_subscriber_len_mode(refs.iter().copied())))
    });
    g.bench_function("entropy_model_train_20k_seeds", |b| {
        b.iter(|| black_box(NibbleModel::train(&seeds)))
    });
    let model = NibbleModel::train(&seeds).unwrap();
    g.bench_function("entropy_model_generate_4k", |b| {
        b.iter(|| black_box(model.generate(4096, 8192)))
    });
    g.bench_function("sixgen_20k_seeds_4k_targets", |b| {
        b.iter(|| black_box(sixgen_targets(&seeds, 44, 4096)))
    });
    g.finish();
}

criterion_group!(
    benches,
    trie_benches,
    prefix_math,
    analysis_kernels,
    inference_kernels
);
criterion_main!(benches);
