//! Design-choice ablations (DESIGN.md):
//!
//! 1. `ablation_lpm` — binary trie vs linear scan for origin lookup.
//! 2. `ablation_ttf` — total-time-fraction vs naive PMF: quantifies the
//!    overrepresentation Eq. 1 corrects (reported via a printed summary,
//!    benchmarked for cost).
//! 3. `ablation_sanitize` — analysis over sanitized vs raw probes.
//! 4. `ablation_stream` — streaming per-probe analysis vs materializing
//!    every probe series first.

use criterion::{criterion_group, criterion_main, Criterion};
use dynamips_atlas::{AtlasCollector, AtlasConfig};
use dynamips_core::changes::{histories_from_records, sandwiched_durations};
use dynamips_core::durations::DurationSet;
use dynamips_core::sanitize::{sanitize_probe, SanitizeConfig, SanitizeOutcome, SanitizeReport};
use dynamips_netaddr::{Ipv4Prefix, Ipv4Trie};
use dynamips_netsim::profiles::atlas_world;
use dynamips_netsim::rngutil::derive_rng;
use dynamips_netsim::time::Window;
use rand::Rng;
use std::hint::black_box;
use std::net::Ipv4Addr;

fn ablation_lpm(c: &mut Criterion) {
    let mut rng = derive_rng(10, 0);
    let entries: Vec<(Ipv4Prefix, u32)> = (0..5000)
        .map(|_| {
            let bits: u32 = rng.gen();
            let len = rng.gen_range(8..=24);
            (
                Ipv4Prefix::new_truncated(Ipv4Addr::from(bits), len).unwrap(),
                rng.gen(),
            )
        })
        .collect();
    let mut trie = Ipv4Trie::new();
    for (p, v) in &entries {
        trie.insert(*p, *v);
    }
    let queries: Vec<Ipv4Addr> = (0..200).map(|_| Ipv4Addr::from(rng.gen::<u32>())).collect();

    let mut g = c.benchmark_group("ablation_lpm");
    g.bench_function("trie", |b| {
        b.iter(|| {
            for q in &queries {
                black_box(trie.lookup(*q));
            }
        })
    });
    g.bench_function("linear_scan", |b| {
        b.iter(|| {
            for q in &queries {
                let best = entries
                    .iter()
                    .filter(|(p, _)| p.contains(*q))
                    .max_by_key(|(p, _)| p.len());
                black_box(best);
            }
        })
    });
    g.finish();
}

fn ablation_ttf(c: &mut Criterion) {
    // The paper's own example population: one CPE renumbering daily, one
    // monthly, observed for a year.
    let mut set = DurationSet::new();
    set.extend(std::iter::repeat_n(24, 365));
    set.extend(std::iter::repeat_n(30 * 24, 12));

    let naive_share_1d = 365.0 / 377.0; // PMF puts 97% at 1 day
    let ttf_share_1d = set.total_time_fraction(24); // TTF: 50%
    assert!(naive_share_1d > 0.95 && ttf_share_1d < 0.55);

    let marks: Vec<u64> = (1..=48).map(|i| i * 24).collect();
    let mut g = c.benchmark_group("ablation_ttf");
    g.bench_function("cumulative_ttf", |b| {
        b.iter(|| black_box(set.cumulative_ttf_at(&marks)))
    });
    g.bench_function("naive_pmf_cdf", |b| {
        b.iter(|| {
            // Unweighted CDF over the same marks.
            let mut sorted: Vec<u64> = set.raw().to_vec();
            sorted.sort_unstable();
            let out: Vec<f64> = marks
                .iter()
                .map(|m| sorted.partition_point(|d| d <= m) as f64 / sorted.len() as f64)
                .collect();
            black_box(out)
        })
    });
    g.finish();
}

fn ablation_sanitize(c: &mut Criterion) {
    let world = atlas_world(11, 0.015);
    let window = Window::atlas_paper();
    let probes = AtlasCollector::new(&world, window, AtlasConfig::default()).collect_all();

    let mut g = c.benchmark_group("ablation_sanitize");
    g.sample_size(10);
    g.bench_function("with_sanitizer", |b| {
        b.iter(|| {
            let mut report = SanitizeReport::default();
            let cfg = SanitizeConfig::default();
            let mut durations = DurationSet::new();
            for series in &probes {
                if let SanitizeOutcome::Clean(hs) =
                    sanitize_probe(series, world.routing(), &cfg, &mut report)
                {
                    for h in hs {
                        durations.extend(sandwiched_durations(&h.v4));
                    }
                }
            }
            black_box(durations.len())
        })
    });
    g.bench_function("without_sanitizer", |b| {
        b.iter(|| {
            // Raw spans straight from the echo records: cheaper, but the
            // artifact probes pollute the duration distribution (this is
            // the quality ablation; the paper's Appendix A.1 exists for a
            // reason).
            let mut durations = DurationSet::new();
            for series in &probes {
                let (v4, _) = histories_from_records(&series.v4, &series.v6);
                durations.extend(sandwiched_durations(&v4));
            }
            black_box(durations.len())
        })
    });
    g.finish();
}

fn ablation_stream(c: &mut Criterion) {
    let world = atlas_world(12, 0.015);
    let window = Window::atlas_paper();

    let mut g = c.benchmark_group("ablation_stream");
    g.sample_size(10);
    g.bench_function("streaming", |b| {
        b.iter(|| {
            // One probe in memory at a time.
            let collector = AtlasCollector::new(&world, window, AtlasConfig::default());
            let mut n = 0usize;
            collector.for_each_probe(|series| {
                let (v4, _) = histories_from_records(&series.v4, &series.v6);
                n += v4.len();
            });
            black_box(n)
        })
    });
    g.bench_function("materialized", |b| {
        b.iter(|| {
            // Every probe's hourly series resident simultaneously.
            let collector = AtlasCollector::new(&world, window, AtlasConfig::default());
            let probes = collector.collect_all();
            let mut n = 0usize;
            for series in &probes {
                let (v4, _) = histories_from_records(&series.v4, &series.v6);
                n += v4.len();
            }
            black_box(n)
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    ablation_lpm,
    ablation_ttf,
    ablation_sanitize,
    ablation_stream
);
criterion_main!(benches);
