//! One benchmark per regenerated paper artifact.
//!
//! `atlas_pipeline` / `cdn_pipeline` measure the full
//! simulate→observe→sanitize→analyze computation each dataset needs; the
//! per-artifact benches (`table1` … `fig9`, `claims`) measure deriving and
//! rendering that artifact from the computed analysis, i.e. the part that
//! is unique to each table/figure.

use criterion::{criterion_group, criterion_main, Criterion};
use dynamips_bench::{atlas_analysis, bench_config, cdn_analysis};
use dynamips_experiments::{atlas_exps, cdn_exps, claims, engine, AtlasAnalysis, CdnAnalysis};
use std::hint::black_box;

fn pipelines(c: &mut Criterion) {
    let cfg = bench_config();
    let mut g = c.benchmark_group("pipelines");
    g.sample_size(10);
    g.bench_function("atlas_pipeline", |b| {
        b.iter(|| black_box(AtlasAnalysis::compute(&cfg)))
    });
    g.bench_function("cdn_pipeline", |b| {
        b.iter(|| black_box(CdnAnalysis::compute(&cfg)))
    });
    g.finish();
}

/// The engine end-to-end: world cache + concurrent analyses + render
/// fan-out. `workers = 1` is the sequential baseline the byte-identity
/// guarantee is stated against; the multi-worker variant shows the
/// speedup on machines that have the cores.
fn engine_runs(c: &mut Criterion) {
    let cfg = bench_config();
    let wanted: Vec<String> = ["table1", "fig8", "fig3", "claims", "tracking", "evolution"]
        .iter()
        .map(|s| s.to_string())
        .collect();
    let mut g = c.benchmark_group("engine");
    g.sample_size(10);
    g.bench_function("engine_6_artifacts_1_worker", |b| {
        b.iter(|| black_box(engine::run(&cfg, &wanted, 1)))
    });
    let cores = engine::worker_count(None);
    g.bench_function("engine_6_artifacts_all_workers", |b| {
        b.iter(|| black_box(engine::run(&cfg, &wanted, cores)))
    });
    g.finish();
}

fn atlas_artifacts(c: &mut Criterion) {
    let a = atlas_analysis();
    let mut g = c.benchmark_group("atlas_artifacts");
    g.bench_function("table1", |b| b.iter(|| black_box(atlas_exps::table1(&a))));
    g.bench_function("fig1", |b| b.iter(|| black_box(atlas_exps::fig1(&a))));
    g.bench_function("fig5", |b| b.iter(|| black_box(atlas_exps::fig5(&a))));
    g.bench_function("fig6", |b| b.iter(|| black_box(atlas_exps::fig6(&a))));
    g.bench_function("fig8", |b| b.iter(|| black_box(atlas_exps::fig8(&a))));
    g.bench_function("fig9", |b| b.iter(|| black_box(atlas_exps::fig9(&a))));
    g.bench_function("table2", |b| b.iter(|| black_box(atlas_exps::table2(&a))));
    g.finish();
}

fn cdn_artifacts(c: &mut Criterion) {
    let cdn = cdn_analysis();
    let mut g = c.benchmark_group("cdn_artifacts");
    g.bench_function("fig2", |b| b.iter(|| black_box(cdn_exps::fig2(&cdn))));
    g.bench_function("fig3", |b| b.iter(|| black_box(cdn_exps::fig3(&cdn))));
    g.bench_function("fig4", |b| b.iter(|| black_box(cdn_exps::fig4(&cdn))));
    g.bench_function("fig7", |b| b.iter(|| black_box(cdn_exps::fig7(&cdn))));
    g.finish();
}

fn claims_artifact(c: &mut Criterion) {
    let a = atlas_analysis();
    let cdn = cdn_analysis();
    let mut g = c.benchmark_group("claims");
    g.bench_function("claims", |b| b.iter(|| black_box(claims::render(&a, &cdn))));
    g.finish();
}

criterion_group!(
    benches,
    pipelines,
    engine_runs,
    atlas_artifacts,
    cdn_artifacts,
    claims_artifact
);
criterion_main!(benches);
