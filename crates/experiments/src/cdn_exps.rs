//! CDN-derived artifacts: Figures 2, 3, 4 and 7.

use crate::atlas_exps::FIGURE_ASES;
use crate::context::CdnAnalysis;
use dynamips_core::association::figure3_boxes;
use dynamips_core::report::TextTable;
use dynamips_core::stats::cdf_at;
use dynamips_routing::Rir;

/// Figure 2: CDF of address-association durations for the featured ISPs.
pub fn fig2(c: &CdnAnalysis) -> String {
    let marks_days = [1.0, 7.0, 14.0, 30.0, 61.0, 91.0, 152.0];
    let mut t = TextTable::new(&["AS (runs)", "1d", "1w", "2w", "1m", "2m", "3m", "5m"]);
    for name in FIGURE_ASES {
        let Some(asn) = c.asn_by_name(name) else {
            continue;
        };
        let Some(days) = c.by_asn_days.get(&asn) else {
            continue;
        };
        let cdf = cdf_at(days, &marks_days);
        let mut row = vec![format!("{name} ({})", days.len())];
        row.extend(cdf.iter().map(|v| format!("{v:.2}")));
        t.row(&row);
    }
    format!(
        "Figure 2: CDF of IPv4-IPv6 address association durations for the\n\
         featured ISPs (CDN dataset; P(duration <= x)).\n\n{}",
        t.render()
    )
}

/// Figure 3: association-duration boxplots per registry, fixed vs mobile.
pub fn fig3(c: &CdnAnalysis) -> String {
    let boxes = figure3_boxes(&c.runs, |asn| c.rir_of(asn));
    let mut t = TextTable::new(&["group", "p5", "p25", "median", "p75", "p95", "n"]);
    for (label, stats) in boxes {
        match stats {
            Some(b) => t.row(&[
                label,
                format!("{:.0}", b.p5),
                format!("{:.0}", b.p25),
                format!("{:.0}", b.p50),
                format!("{:.0}", b.p75),
                format!("{:.0}", b.p95),
                b.n.to_string(),
            ]),
            None => t.row(&[
                label,
                "-".into(),
                "-".into(),
                "-".into(),
                "-".into(),
                "-".into(),
                "0".into(),
            ]),
        };
    }
    format!(
        "Figure 3: address-association durations (days) by Internet registry\n\
         and access type. Boxes: quartiles; whiskers: 5th/95th percentiles.\n\n{}",
        t.render()
    )
}

/// Figure 4: distribution of IPv6 /64 associations per IPv4 /24.
pub fn fig4(c: &CdnAnalysis) -> String {
    let mut out = String::from(
        "Figure 4: number of associated IPv6 /64s per IPv4 /24 (log10 bins;\n\
         'unique' = density over /24s, 'weighted' = density weighted by\n\
         association volume).\n\n",
    );
    for (label, stats) in [("Mobile", &c.mobile_degree), ("Fixed", &c.fixed_degree)] {
        let (edges, unique) = stats.unique_density(6, 2);
        let (_, weighted) = stats.weighted_density(6, 2);
        out.push_str(&format!(
            "--- {label} /24 degree ({} /24s; weighted peak near {}) ---\n",
            stats.unique_p64_per_v24.len(),
            stats
                .weighted_peak(6, 2)
                .map(|p| format!("{p:.0} /64s per /24"))
                .unwrap_or_else(|| "n/a".into()),
        ));
        let mut t = TextTable::new(&["degree <=", "unique", "weighted"]);
        for (i, edge) in edges.iter().enumerate() {
            if unique[i] == 0.0 && weighted[i] == 0.0 {
                continue;
            }
            t.row(&[
                format!("{edge:.0}"),
                format!("{:.3}", unique[i]),
                format!("{:.3}", weighted[i]),
            ]);
        }
        out.push_str(&t.render());
        out.push_str(&format!(
            "fraction of /64s with a single associated /24: {:.2}\n\n",
            stats.p64_degree_one_fraction
        ));
    }
    out
}

/// Figure 7: trailing-zero frequencies used to infer delegated prefix
/// lengths, per registry (unique fixed /64s).
pub fn fig7(c: &CdnAnalysis) -> String {
    let mut t = TextTable::new(&["registry", "/48", "/52", "/56", "/60", "inferable"]);
    for rir in Rir::ALL {
        let Some(counter) = c.nibble_by_rir.get(&rir) else {
            continue;
        };
        let f = counter.fractions();
        t.row(&[
            rir.label().to_string(),
            format!("{:.2}", f[0]),
            format!("{:.2}", f[1]),
            format!("{:.2}", f[2]),
            format!("{:.2}", f[3]),
            format!("{:.1}%", 100.0 * counter.inferable_fraction()),
        ]);
    }
    format!(
        "Figure 7: fraction of observed fixed-line /64 prefixes with trailing\n\
         zeros at each nibble boundary, by registry. ('inferable' = any\n\
         boundary; the paper reports ARIN 59.0%, RIPENCC 78.8%, APNIC 54.5%,\n\
         LACNIC 15.1%, AFRINIC 83.1%.)\n\n{}\n\
         Mobile /64s inferable: {:.1}% (paper: no consistent trailing zeros).\n",
        t.render(),
        100.0 * c.mobile_nibble.inferable_fraction()
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::ExperimentConfig;

    #[test]
    fn all_cdn_artifacts_render() {
        let c = CdnAnalysis::compute(&ExperimentConfig::small(7));
        for text in [fig2(&c), fig3(&c), fig4(&c), fig7(&c)] {
            assert!(!text.is_empty());
        }
        let f3 = fig3(&c);
        assert!(f3.contains("ALL-fixed"));
        assert!(f3.contains("ALL-mobile"));
        let f7 = fig7(&c);
        for rir in ["ARIN", "RIPENCC", "APNIC", "LACNIC", "AFRINIC"] {
            assert!(f7.contains(rir), "missing {rir}:\n{f7}");
        }
    }
}
