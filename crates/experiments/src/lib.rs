//! Experiment harness: regenerates every table and figure of the paper.
//!
//! The heavy lifting happens once per dataset:
//!
//! * [`context::AtlasAnalysis`] runs the Atlas-era world, streams every
//!   probe through the sanitizer and accumulates everything the
//!   Atlas-derived artifacts need (Tables 1–2, Figures 1, 5, 6, 8, 9).
//! * [`context::CdnAnalysis`] runs the CDN-era world, collects the
//!   association dataset and accumulates the CDN artifacts (Figures 2–4, 7).
//!
//! Each `table*`/`fig*` module renders one artifact from those products as
//! plain text in the paper's layout. The [`engine`] module orchestrates a
//! full run: a world cache builds each distinct `(era, seed, scale)` world
//! exactly once, the analyses compute concurrently, and the artifact
//! renderers fan out across a worker pool — byte-identical to a
//! single-thread run. The [`chaos`] module drives the adversarial-ingest
//! sweep (`dynamips chaos`): corrupt the TSV dumps, re-ingest through the
//! lossy loaders, and verify the paper shapes survive. Its network twin,
//! [`chaos_serve`], drives loadtest traffic through a fault-injecting
//! TCP proxy (`dynamips chaos-serve`) and asserts the serving stack's
//! robustness invariants: byte-identical 2xx bodies, zero client-visible
//! 5xx, clean drains.

#![warn(missing_docs)]
#![deny(unsafe_code)]
// Panic-freedom ratchet: shipping code degrades instead of unwrapping;
// tests are exempt via clippy.toml (allow-unwrap-in-tests).
#![warn(clippy::unwrap_used, clippy::expect_used)]

pub mod atlas_exps;
pub mod cdn_exps;
pub mod chaos;
pub mod chaos_serve;
pub mod check;
pub mod claims;
pub mod context;
pub mod engine;
pub mod extended;
pub mod service;

pub use context::{AtlasAnalysis, CdnAnalysis, ExperimentConfig};

/// Unwrap a joined worker's result, re-raising the worker's own panic in
/// the calling thread instead of panicking afresh with a second message.
/// This keeps the harness code lexically panic-free while still refusing
/// to swallow a worker crash.
pub(crate) fn resume_worker<T>(r: std::thread::Result<T>) -> T {
    r.unwrap_or_else(|e| std::panic::resume_unwind(e))
}
