//! The artifact service behind `dynamips serve`: maps HTTP requests
//! onto the engine's warm render sessions.
//!
//! The service owns a bounded LRU of [`WarmSession`]s keyed by
//! `(seed, atlas_scale, cdn_scale)`. A request for a configuration the
//! cache holds renders from warm worlds (a cache hit in `/metrics`);
//! a new configuration builds its worlds once, evicting the least
//! recently used session past the capacity bound. Because an artifact's
//! bytes are a pure function of `(name, seed, scales)`, eviction can
//! never surface stale text — at worst it costs a rebuild.
//!
//! Status mapping: unknown endpoint or artifact name → `404`; malformed
//! or unknown query parameters → `400`; a rendered artifact whose own
//! self-check fails (only `check` can) → `500` carrying the report text.
//!
//! Degraded mode (stale-while-revalidate): every successful render also
//! deposits its bytes in a bounded stale cache keyed by
//! `(session, artifact)`. When a later rebuild of the same artifact
//! fails — the renderer panics, or its self-check regresses — or when
//! the server's queue is saturated past the configured threshold while
//! the session is cold, those previously rendered bytes are served with
//! `200` + `Warning: 110 dynamips-serve "stale-while-revalidate"` and
//! counted in `degraded_responses_total`, instead of a 5xx (or a
//! multi-second cold build the queue cannot afford). Stale bytes are
//! only ever bytes this process rendered successfully for the exact
//! same key, so the byte-identity contract holds for them too.

use std::sync::Arc;

use dynamips_serve::{Handler, LruCache, Metrics, Request, Response};

use crate::context::ExperimentConfig;
use crate::engine::{self, WarmSession};

/// Session-cache key; scales are keyed by bit pattern so the map never
/// compares floats.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
struct SessionKey {
    seed: u64,
    atlas_bits: u64,
    cdn_bits: u64,
}

impl SessionKey {
    fn for_config(cfg: &ExperimentConfig) -> SessionKey {
        SessionKey {
            seed: cfg.seed,
            atlas_bits: cfg.atlas_scale.to_bits(),
            cdn_bits: cfg.cdn_scale.to_bits(),
        }
    }
}

/// HTTP handler exposing the engine's artifacts; see the module docs.
pub struct ArtifactService {
    base: ExperimentConfig,
    workers: usize,
    sessions: LruCache<SessionKey, WarmSession>,
    /// Previously rendered artifact bytes, for stale-while-revalidate.
    stale: LruCache<(SessionKey, String), Vec<u8>>,
    /// Queue depth at or past which a cold-session request prefers
    /// stale bytes over a fresh build (`None` disables the fast path).
    saturation_threshold: Option<u64>,
    metrics: Arc<Metrics>,
}

impl ArtifactService {
    /// A service whose default configuration (when a request carries no
    /// query parameters) is `base`, holding at most `cache_cap` warm
    /// sessions, computing cold analyses with `workers` threads.
    pub fn over_engine(
        base: ExperimentConfig,
        workers: usize,
        cache_cap: usize,
        metrics: Arc<Metrics>,
    ) -> ArtifactService {
        ArtifactService {
            base,
            workers: workers.max(1),
            sessions: LruCache::bounded(cache_cap),
            // Sized for a handful of sessions' worth of artifacts; the
            // values are rendered text, far lighter than warm worlds.
            stale: LruCache::bounded(cache_cap.max(1) * 64),
            saturation_threshold: None,
            metrics,
        }
    }

    /// Enable the saturation fast path: when the worker queue is at or
    /// past `depth` connections and the requested session is cold,
    /// serve stale bytes (when available) instead of building worlds.
    pub fn with_saturation_threshold(mut self, depth: u64) -> ArtifactService {
        self.saturation_threshold = Some(depth);
        self
    }

    /// Warm sessions currently resident.
    pub fn sessions_resident(&self) -> usize {
        self.sessions.len()
    }

    /// Resolve the request configuration: the service default overlaid
    /// with `seed` / `atlas_scale` / `cdn_scale` query parameters.
    fn config_from_query(&self, req: &Request) -> Result<ExperimentConfig, String> {
        let mut cfg = self.base;
        for (key, value) in &req.query {
            match key.as_str() {
                "seed" => {
                    cfg.seed = value
                        .parse()
                        .map_err(|_| format!("seed must be an unsigned integer, got {value:?}"))?;
                }
                "atlas_scale" => cfg.atlas_scale = parse_scale("atlas_scale", value)?,
                "cdn_scale" => cfg.cdn_scale = parse_scale("cdn_scale", value)?,
                other => {
                    return Err(format!(
                        "unknown query parameter {other:?} (expected seed, atlas_scale, cdn_scale)"
                    ))
                }
            }
        }
        Ok(cfg)
    }

    fn render_endpoint(&self, name: &str, req: &Request) -> Response {
        if !engine::is_known_artifact(name) {
            return Response::text(
                404,
                format!("unknown artifact {name:?}; GET /artifacts for the list\n"),
            );
        }
        let cfg = match self.config_from_query(req) {
            Ok(cfg) => cfg,
            Err(why) => return Response::text(400, format!("bad request: {why}\n")),
        };
        let key = SessionKey::for_config(&cfg);
        let stale_key = (key, name.to_string());

        // Saturation fast path: under queue pressure a cold session's
        // multi-second world build would make the overload worse; serve
        // what we already rendered for this exact key instead.
        if let Some(threshold) = self.saturation_threshold {
            if self.metrics.queue_depth() >= threshold && !self.sessions.contains(&key) {
                if let Some(bytes) = self.stale.get(&stale_key) {
                    return self.degraded(bytes.as_ref().clone());
                }
            }
        }

        // The engine must not panic, but a supervised server treats
        // that contract as untrusted: a panicking build or render is
        // caught here and downgraded to stale serving (or 500) rather
        // than killing the worker.
        let attempt = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let lookup = self
                .sessions
                .fetch_or_build(key, || WarmSession::warm(cfg, self.workers));
            self.metrics.record_cache(lookup.hit, lookup.evicted);
            lookup.value.render_artifact(name)
        }));
        match attempt {
            Ok(rendered) if rendered.ok => {
                self.stale
                    .insert(stale_key, rendered.text.clone().into_bytes());
                Response::text(200, rendered.text)
            }
            Ok(rendered) => {
                // The render completed but its self-check failed (only
                // `check` can, for known names): stale-while-revalidate
                // if an earlier build of this key passed, else surface
                // the report with a server-side error status.
                match self.stale.get(&stale_key) {
                    Some(bytes) => self.degraded(bytes.as_ref().clone()),
                    None => Response::text(500, rendered.text),
                }
            }
            Err(_) => match self.stale.get(&stale_key) {
                Some(bytes) => self.degraded(bytes.as_ref().clone()),
                None => Response::text(500, format!("artifact {name:?} failed to render\n")),
            },
        }
    }

    /// A `200` carrying stale bytes, marked `Warning: 110` and counted.
    fn degraded(&self, bytes: Vec<u8>) -> Response {
        self.metrics.record_degraded_response();
        Response::text(200, bytes).mark_stale()
    }

    /// Test hook: plant stale bytes for `(cfg, name)` as if an earlier
    /// render had produced them.
    #[cfg(test)]
    fn inject_stale(&self, cfg: &ExperimentConfig, name: &str, bytes: &[u8]) {
        self.stale.insert(
            (SessionKey::for_config(cfg), name.to_string()),
            bytes.to_vec(),
        );
    }

    fn list_endpoint(&self) -> Response {
        let mut body = String::new();
        for name in engine::artifact_names() {
            body.push_str(name);
            body.push('\n');
        }
        Response::text(200, body)
    }
}

impl Handler for ArtifactService {
    fn respond(&self, req: &Request) -> Response {
        match req.path.as_str() {
            "/artifacts" | "/artifacts/" => self.list_endpoint(),
            path => match path.strip_prefix("/artifacts/") {
                Some(name) => self.render_endpoint(name, req),
                None => Response::text(404, format!("no such endpoint {path:?}\n")),
            },
        }
    }
}

fn parse_scale(key: &str, value: &str) -> Result<f64, String> {
    let scale: f64 = value
        .parse()
        .map_err(|_| format!("{key} must be a number, got {value:?}"))?;
    if !scale.is_finite() || !(0.0..=1.0).contains(&scale) || scale == 0.0 {
        return Err(format!("{key} must be in (0, 1], got {value:?}"));
    }
    Ok(scale)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn service() -> ArtifactService {
        ArtifactService::over_engine(
            ExperimentConfig {
                seed: 11,
                atlas_scale: 0.02,
                cdn_scale: 0.02,
            },
            2,
            2,
            Arc::new(Metrics::new()),
        )
    }

    fn get(path: &str, query: &[(&str, &str)]) -> Request {
        Request {
            method: "GET".to_string(),
            path: path.to_string(),
            query: query
                .iter()
                .map(|(k, v)| (k.to_string(), v.to_string()))
                .collect(),
            close_requested: false,
        }
    }

    #[test]
    fn renders_listing_and_artifacts() {
        let svc = service();
        let listing = svc.respond(&get("/artifacts", &[]));
        assert_eq!(listing.status, 200);
        let text = String::from_utf8_lossy(&listing.body).to_string();
        assert!(
            text.contains("fig1\n") && text.contains("sanitizer\n"),
            "{text}"
        );
        let fig1 = svc.respond(&get("/artifacts/fig1", &[]));
        assert_eq!(fig1.status, 200);
        assert!(!fig1.body.is_empty());
        // Same config again: the session cache answers warm.
        svc.respond(&get("/artifacts/fig1", &[]));
        assert_eq!(svc.sessions_resident(), 1);
    }

    #[test]
    fn status_mapping_for_bad_requests() {
        let svc = service();
        assert_eq!(svc.respond(&get("/artifacts/TYPO", &[])).status, 404);
        assert_eq!(svc.respond(&get("/nope", &[])).status, 404);
        assert_eq!(
            svc.respond(&get("/artifacts/fig1", &[("seed", "banana")]))
                .status,
            400
        );
        assert_eq!(
            svc.respond(&get("/artifacts/fig1", &[("atlas_scale", "7.5")]))
                .status,
            400
        );
        assert_eq!(
            svc.respond(&get("/artifacts/fig1", &[("atlas_scale", "0")]))
                .status,
            400
        );
        assert_eq!(
            svc.respond(&get("/artifacts/fig1", &[("volume", "11")]))
                .status,
            400
        );
        // No analysis ran for any of these.
        assert_eq!(svc.sessions_resident(), 0);
    }

    #[test]
    fn query_overrides_select_distinct_sessions() {
        let svc = service();
        let a = svc.respond(&get("/artifacts/fig1", &[]));
        let b = svc.respond(&get("/artifacts/fig1", &[("seed", "12")]));
        assert_eq!((a.status, b.status), (200, 200));
        assert_ne!(a.body, b.body, "different seeds render different text");
        assert_eq!(svc.sessions_resident(), 2);
    }

    #[test]
    fn saturated_cold_session_serves_stale_with_warning() {
        let base = ExperimentConfig {
            seed: 11,
            atlas_scale: 0.02,
            cdn_scale: 0.02,
        };
        let metrics = Arc::new(Metrics::new());
        let svc = ArtifactService::over_engine(base, 2, 2, Arc::clone(&metrics))
            .with_saturation_threshold(0);
        svc.inject_stale(&base, "fig1", b"previously rendered fig1\n");
        let resp = svc.respond(&get("/artifacts/fig1", &[]));
        assert_eq!(resp.status, 200);
        assert_eq!(resp.body, b"previously rendered fig1\n");
        assert_eq!(resp.warning, Some(dynamips_serve::WARNING_STALE));
        assert_eq!(metrics.degraded_responses(), 1);
        assert_eq!(
            svc.sessions_resident(),
            0,
            "no world build under saturation"
        );
        // No stale bytes for this name: the request falls through to a
        // real build despite the saturation (correctness over latency).
        let fresh = svc.respond(&get("/artifacts/fig2", &[]));
        assert_eq!(fresh.status, 200);
        assert_eq!(fresh.warning, None);
        assert_eq!(svc.sessions_resident(), 1);
    }

    #[test]
    fn evicted_session_under_saturation_replays_byte_identical_stale() {
        let base = ExperimentConfig {
            seed: 11,
            atlas_scale: 0.02,
            cdn_scale: 0.02,
        };
        let metrics = Arc::new(Metrics::new());
        // cache_cap 1: the second session evicts the first.
        let svc = ArtifactService::over_engine(base, 2, 1, Arc::clone(&metrics))
            .with_saturation_threshold(0);
        let fresh = svc.respond(&get("/artifacts/fig1", &[]));
        assert_eq!((fresh.status, fresh.warning), (200, None));
        svc.respond(&get("/artifacts/fig1", &[("seed", "12")]));
        assert_eq!(
            svc.sessions_resident(),
            1,
            "seed-12 session evicted seed-11"
        );
        // Seed 11 is cold again and the queue reads as saturated, so
        // the stale bytes from the first render answer — identically.
        let stale = svc.respond(&get("/artifacts/fig1", &[]));
        assert_eq!(stale.status, 200);
        assert_eq!(stale.warning, Some(dynamips_serve::WARNING_STALE));
        assert_eq!(stale.body, fresh.body, "stale bytes are byte-identical");
        assert_eq!(metrics.degraded_responses(), 1);
    }
}
