//! The artifact service behind `dynamips serve`: maps HTTP requests
//! onto the engine's warm render sessions.
//!
//! The service owns a bounded LRU of [`WarmSession`]s keyed by
//! `(seed, atlas_scale, cdn_scale)`. A request for a configuration the
//! cache holds renders from warm worlds (a cache hit in `/metrics`);
//! a new configuration builds its worlds once, evicting the least
//! recently used session past the capacity bound. Because an artifact's
//! bytes are a pure function of `(name, seed, scales)`, eviction can
//! never surface stale text — at worst it costs a rebuild.
//!
//! Status mapping: unknown endpoint or artifact name → `404`; malformed
//! or unknown query parameters → `400`; a rendered artifact whose own
//! self-check fails (only `check` can) → `500` carrying the report text.

use std::sync::Arc;

use dynamips_serve::{Handler, LruCache, Metrics, Request, Response};

use crate::context::ExperimentConfig;
use crate::engine::{self, WarmSession};

/// Session-cache key; scales are keyed by bit pattern so the map never
/// compares floats.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
struct SessionKey {
    seed: u64,
    atlas_bits: u64,
    cdn_bits: u64,
}

impl SessionKey {
    fn for_config(cfg: &ExperimentConfig) -> SessionKey {
        SessionKey {
            seed: cfg.seed,
            atlas_bits: cfg.atlas_scale.to_bits(),
            cdn_bits: cfg.cdn_scale.to_bits(),
        }
    }
}

/// HTTP handler exposing the engine's artifacts; see the module docs.
pub struct ArtifactService {
    base: ExperimentConfig,
    workers: usize,
    sessions: LruCache<SessionKey, WarmSession>,
    metrics: Arc<Metrics>,
}

impl ArtifactService {
    /// A service whose default configuration (when a request carries no
    /// query parameters) is `base`, holding at most `cache_cap` warm
    /// sessions, computing cold analyses with `workers` threads.
    pub fn over_engine(
        base: ExperimentConfig,
        workers: usize,
        cache_cap: usize,
        metrics: Arc<Metrics>,
    ) -> ArtifactService {
        ArtifactService {
            base,
            workers: workers.max(1),
            sessions: LruCache::bounded(cache_cap),
            metrics,
        }
    }

    /// Warm sessions currently resident.
    pub fn sessions_resident(&self) -> usize {
        self.sessions.len()
    }

    /// Resolve the request configuration: the service default overlaid
    /// with `seed` / `atlas_scale` / `cdn_scale` query parameters.
    fn config_from_query(&self, req: &Request) -> Result<ExperimentConfig, String> {
        let mut cfg = self.base;
        for (key, value) in &req.query {
            match key.as_str() {
                "seed" => {
                    cfg.seed = value
                        .parse()
                        .map_err(|_| format!("seed must be an unsigned integer, got {value:?}"))?;
                }
                "atlas_scale" => cfg.atlas_scale = parse_scale("atlas_scale", value)?,
                "cdn_scale" => cfg.cdn_scale = parse_scale("cdn_scale", value)?,
                other => {
                    return Err(format!(
                        "unknown query parameter {other:?} (expected seed, atlas_scale, cdn_scale)"
                    ))
                }
            }
        }
        Ok(cfg)
    }

    fn render_endpoint(&self, name: &str, req: &Request) -> Response {
        if !engine::is_known_artifact(name) {
            return Response::text(
                404,
                format!("unknown artifact {name:?}; GET /artifacts for the list\n"),
            );
        }
        let cfg = match self.config_from_query(req) {
            Ok(cfg) => cfg,
            Err(why) => return Response::text(400, format!("bad request: {why}\n")),
        };
        let lookup = self
            .sessions
            .fetch_or_build(SessionKey::for_config(&cfg), || {
                WarmSession::warm(cfg, self.workers)
            });
        self.metrics.record_cache(lookup.hit, lookup.evicted);
        let rendered = lookup.value.render_artifact(name);
        if rendered.ok {
            Response::text(200, rendered.text)
        } else {
            // Only `check` (failed predicates) takes this path for known
            // names; surface the report with a server-side error status.
            Response::text(500, rendered.text)
        }
    }

    fn list_endpoint(&self) -> Response {
        let mut body = String::new();
        for name in engine::artifact_names() {
            body.push_str(name);
            body.push('\n');
        }
        Response::text(200, body)
    }
}

impl Handler for ArtifactService {
    fn respond(&self, req: &Request) -> Response {
        match req.path.as_str() {
            "/artifacts" | "/artifacts/" => self.list_endpoint(),
            path => match path.strip_prefix("/artifacts/") {
                Some(name) => self.render_endpoint(name, req),
                None => Response::text(404, format!("no such endpoint {path:?}\n")),
            },
        }
    }
}

fn parse_scale(key: &str, value: &str) -> Result<f64, String> {
    let scale: f64 = value
        .parse()
        .map_err(|_| format!("{key} must be a number, got {value:?}"))?;
    if !scale.is_finite() || !(0.0..=1.0).contains(&scale) || scale == 0.0 {
        return Err(format!("{key} must be in (0, 1], got {value:?}"));
    }
    Ok(scale)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn service() -> ArtifactService {
        ArtifactService::over_engine(
            ExperimentConfig {
                seed: 11,
                atlas_scale: 0.02,
                cdn_scale: 0.02,
            },
            2,
            2,
            Arc::new(Metrics::new()),
        )
    }

    fn get(path: &str, query: &[(&str, &str)]) -> Request {
        Request {
            method: "GET".to_string(),
            path: path.to_string(),
            query: query
                .iter()
                .map(|(k, v)| (k.to_string(), v.to_string()))
                .collect(),
        }
    }

    #[test]
    fn renders_listing_and_artifacts() {
        let svc = service();
        let listing = svc.respond(&get("/artifacts", &[]));
        assert_eq!(listing.status, 200);
        let text = String::from_utf8_lossy(&listing.body).to_string();
        assert!(
            text.contains("fig1\n") && text.contains("sanitizer\n"),
            "{text}"
        );
        let fig1 = svc.respond(&get("/artifacts/fig1", &[]));
        assert_eq!(fig1.status, 200);
        assert!(!fig1.body.is_empty());
        // Same config again: the session cache answers warm.
        svc.respond(&get("/artifacts/fig1", &[]));
        assert_eq!(svc.sessions_resident(), 1);
    }

    #[test]
    fn status_mapping_for_bad_requests() {
        let svc = service();
        assert_eq!(svc.respond(&get("/artifacts/TYPO", &[])).status, 404);
        assert_eq!(svc.respond(&get("/nope", &[])).status, 404);
        assert_eq!(
            svc.respond(&get("/artifacts/fig1", &[("seed", "banana")]))
                .status,
            400
        );
        assert_eq!(
            svc.respond(&get("/artifacts/fig1", &[("atlas_scale", "7.5")]))
                .status,
            400
        );
        assert_eq!(
            svc.respond(&get("/artifacts/fig1", &[("atlas_scale", "0")]))
                .status,
            400
        );
        assert_eq!(
            svc.respond(&get("/artifacts/fig1", &[("volume", "11")]))
                .status,
            400
        );
        // No analysis ran for any of these.
        assert_eq!(svc.sessions_resident(), 0);
    }

    #[test]
    fn query_overrides_select_distinct_sessions() {
        let svc = service();
        let a = svc.respond(&get("/artifacts/fig1", &[]));
        let b = svc.respond(&get("/artifacts/fig1", &[("seed", "12")]));
        assert_eq!((a.status, b.status), (200, 200));
        assert_ne!(a.body, b.body, "different seeds render different text");
        assert_eq!(svc.sessions_resident(), 2);
    }
}
