//! In-text quantitative claims (experiment C1 in DESIGN.md).
//!
//! The paper makes several load-bearing numeric claims outside its tables
//! and figures; this module recomputes each from the simulated datasets and
//! prints paper-vs-measured.

use crate::context::{AtlasAnalysis, CdnAnalysis};
use dynamips_core::report::TextTable;
use dynamips_core::stats::quantile;

/// A single claim check.
#[derive(Debug, Clone)]
pub struct Claim {
    /// Short identifier.
    pub id: &'static str,
    /// What the paper says.
    pub paper: String,
    /// What we measure.
    pub measured: String,
}

/// Compute every claim from both analyses.
pub fn compute_claims(a: &AtlasAnalysis, c: &CdnAnalysis) -> Vec<Claim> {
    let mut claims = Vec::new();

    // DTAG simultaneity.
    if let Some((_, dtag)) = a.by_name("DTAG") {
        claims.push(Claim {
            id: "dtag-simultaneity",
            paper: "90.6% of DTAG dual-stack changes are same-hour".into(),
            measured: format!(
                "{:.1}% of DTAG dual-stack v4 changes co-occur with a v6 change",
                100.0 * dtag.cooccurrence.simultaneity()
            ),
        });
    }
    if let Some((_, comcast)) = a.by_name("Comcast") {
        claims.push(Claim {
            id: "comcast-non-cooccurrence",
            paper: "most Comcast v4/v6 changes did not co-occur".into(),
            measured: format!(
                "{:.1}% of Comcast dual-stack v4 changes co-occur",
                100.0 * comcast.cooccurrence.simultaneity()
            ),
        });
    }

    // Periodic renumbering.
    let v4_periodic = a.periodic_v4_ases();
    let v6_periodic = a.periodic_v6_ases();
    claims.push(Claim {
        id: "periodic-v4",
        paper: "consistent periodic renumbering on 35 networks (non-dual-stack v4)".into(),
        measured: format!(
            "{} simulated networks with a detected v4 period: {}",
            v4_periodic.len(),
            v4_periodic
                .iter()
                .map(|(asn, p)| format!("{asn}@{p}h"))
                .collect::<Vec<_>>()
                .join(", ")
        ),
    });
    claims.push(Claim {
        id: "periodic-v6",
        paper: "24h IPv6 renumbering in German ISPs; 12h in ANTEL; 48h in Global Village".into(),
        measured: format!(
            "{} networks with a detected v6 period: {}",
            v6_periodic.len(),
            v6_periodic
                .iter()
                .map(|(asn, p)| format!("{asn}@{p}h"))
                .collect::<Vec<_>>()
                .join(", ")
        ),
    });

    // CDN: fixed vs mobile.
    let fixed_days: Vec<f64> = c
        .runs
        .iter()
        .filter(|r| !r.mobile)
        .map(|r| r.days as f64)
        .collect();
    let mobile_days: Vec<f64> = c
        .runs
        .iter()
        .filter(|r| r.mobile)
        .map(|r| r.days as f64)
        .collect();
    let fixed_median = quantile(&fixed_days, 0.5).unwrap_or(0.0);
    let mobile_median = quantile(&mobile_days, 0.5).unwrap_or(0.0);
    claims.push(Claim {
        id: "fixed-median-61d",
        paper: "median fixed association duration is 61 days".into(),
        measured: format!("fixed median: {fixed_median:.0} days"),
    });
    claims.push(Claim {
        id: "mobile-75pct-1d",
        paper: "75% of mobile associations last one day or less".into(),
        measured: format!(
            "{:.0}% of mobile associations last <= 1 day",
            100.0 * mobile_days.iter().filter(|&&d| d <= 1.0).count() as f64
                / mobile_days.len().max(1) as f64
        ),
    });
    claims.push(Claim {
        id: "fixed-60x-mobile",
        paper: "fixed associations last 60x longer at median".into(),
        measured: format!(
            "fixed/mobile median ratio: {:.0}x",
            fixed_median / mobile_median.max(1.0)
        ),
    });
    claims.push(Claim {
        id: "mobile-p64-share",
        paper: "65.7% of unique /64 prefixes come from cellular access".into(),
        measured: format!(
            "{:.1}% of unique /64s are cellular",
            100.0 * c.mobile_p64_fraction
        ),
    });
    claims.push(Claim {
        id: "p64-degree-one",
        paper: "87% of unique mobile /64s have a connectivity degree of one".into(),
        measured: format!(
            "{:.0}% of mobile /64s associate with a single /24",
            100.0 * c.mobile_degree.p64_degree_one_fraction
        ),
    });

    // Orange trailing zeros.
    claims.push(Claim {
        id: "orange-trailing-zeros",
        paper: "Orange: 99.7% of /64s have the last 8 bits zero".into(),
        measured: a
            .by_name("Orange")
            .map(|(_, s)| {
                let zeroed = s.inferred.counts[..=56].iter().sum::<u64>();
                format!(
                    "{:.1}% of Orange probes infer <= /56 (zero-out CPEs)",
                    100.0 * zeroed as f64 / s.inferred.total().max(1) as f64
                )
            })
            .unwrap_or_else(|| "Orange not present".into()),
    });

    // AS-mismatch filtering accounting (32.7B -> 31.6B in the paper).
    claims.push(Claim {
        id: "as-mismatch-filter",
        paper: "filtering kept 31.6B of 32.7B associations (96.6%)".into(),
        measured: format!(
            "kept {} of {} raw associations ({:.1}%); discarded {} as-mismatch + {} unrouted",
            c.kept_count,
            c.raw_count,
            100.0 * c.kept_count as f64 / c.raw_count.max(1) as f64,
            c.discarded_as_mismatch,
            c.discarded_unrouted
        ),
    });

    claims
}

/// Render the claim table.
pub fn render(a: &AtlasAnalysis, c: &CdnAnalysis) -> String {
    let mut t = TextTable::new(&["claim", "paper", "measured"]);
    for claim in compute_claims(a, c) {
        t.row(&[claim.id.to_string(), claim.paper, claim.measured]);
    }
    format!("In-text claims, paper vs measured:\n\n{}", t.render())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::ExperimentConfig;

    #[test]
    fn claims_compute_and_render() {
        let cfg = ExperimentConfig::small(11);
        let a = AtlasAnalysis::compute(&cfg);
        let c = CdnAnalysis::compute(&cfg);
        let claims = compute_claims(&a, &c);
        assert!(claims.len() >= 9);
        let ids: Vec<&str> = claims.iter().map(|c| c.id).collect();
        assert!(ids.contains(&"dtag-simultaneity"));
        assert!(ids.contains(&"mobile-p64-share"));
        let text = render(&a, &c);
        assert!(text.contains("paper"));
    }
}
