//! The `dynamips chaos` adversarial-ingest sweep.
//!
//! Serializes both datasets to their TSV dump form, damages the dumps with
//! the seeded fault injector of `dynamips-chaos` at a sweep of corruption
//! rates, re-ingests them through the lossy loaders, and runs the full
//! analysis pipeline plus the paper-shape self-check on whatever survived.
//! Three things are verified:
//!
//! 1. **No panics at any rate** — the pipeline must degrade, never abort.
//! 2. **Shape stability below a threshold** — at corruption rates at or
//!    below `fail_threshold`, every paper-shape predicate must still hold.
//! 3. **Attribution** — every record dropped on ingest is accounted to an
//!    error class in the [`DegradationReport`].
//!
//! The `(rate, seed)` rounds are independent given the shared baseline and
//! run on scoped worker threads, a few at a time (each in-flight round
//! holds a damaged multi-GB copy of the dumps at reference scale).

use crate::check;
use crate::context::{AtlasAnalysis, CdnAnalysis, ExperimentConfig};
use dynamips_atlas::{records, AtlasCollector, AtlasConfig, ProbeId, ProbeSeries};
use dynamips_cdn::{dataset as cdn_dataset, CdnCollector, CdnConfig};
use dynamips_chaos::corrupt_tsv;
use dynamips_core::degrade::DegradationReport;
use dynamips_core::report::TextTable;
use dynamips_netsim::profiles::{atlas_world, cdn_world};
use dynamips_netsim::time::Window;
use dynamips_netsim::World;
use dynamips_routing::Asn;
use std::collections::HashMap;

/// Sweep configuration for `dynamips chaos`.
#[derive(Debug, Clone)]
pub struct ChaosOptions {
    /// Corruption rates to sweep (per-line fault probability).
    pub rates: Vec<f64>,
    /// Independent corruption seeds per rate.
    pub seeds: u32,
    /// Highest rate at which every paper-shape predicate must still pass;
    /// above it only panic-freedom is required.
    pub fail_threshold: f64,
}

impl Default for ChaosOptions {
    fn default() -> Self {
        ChaosOptions {
            rates: vec![0.0, 0.01, 0.05, 0.2, 0.5],
            seeds: 3,
            fail_threshold: 0.02,
        }
    }
}

/// Result of one sweep: the rendered report and whether it met the bar.
pub struct ChaosOutcome {
    /// Rendered report text.
    pub text: String,
    /// False if any shape predicate failed at a rate `<= fail_threshold`.
    pub ok: bool,
}

/// Serialized baseline datasets plus the sidecar metadata the TSV form
/// does not carry.
struct Baseline {
    atlas_world: World,
    atlas_window: Window,
    atlas_tsv: String,
    /// Probe → (AS, tags): series metadata not present in the IP-echo TSV.
    probe_meta: HashMap<ProbeId, (Asn, Vec<String>)>,
    cdn_world: World,
    cdn_window: Window,
    cdn_tsv: String,
}

fn baseline(cfg: &ExperimentConfig) -> Baseline {
    let atlas_world = atlas_world(cfg.seed, cfg.atlas_scale);
    let atlas_window = Window::atlas_paper();
    let collector = AtlasCollector::new(&atlas_world, atlas_window, AtlasConfig::default());
    let mut atlas_tsv = String::new();
    let mut probe_meta = HashMap::new();
    collector.for_each_probe(|s| {
        atlas_tsv.push_str(&records::to_tsv(s.probe, &s.v4, &s.v6));
        probe_meta.insert(s.probe, (s.asn, s.tags.clone()));
    });

    let cdn_world = cdn_world(cfg.seed, cfg.cdn_scale);
    let cdn_window = Window::cdn_paper();
    let cdn_ds = CdnCollector::new(&cdn_world, cdn_window, CdnConfig::default()).collect();
    let cdn_tsv = cdn_dataset::to_tsv(&cdn_ds);

    Baseline {
        atlas_world,
        atlas_window,
        atlas_tsv,
        probe_meta,
        cdn_world,
        cdn_window,
        cdn_tsv,
    }
}

/// Outcome of one (rate, seed) round.
struct Round {
    passed: usize,
    total: usize,
    /// `artifact: shape` labels of the predicates that failed.
    failed: Vec<String>,
    /// Records recovered by the lossy loaders relative to the lines the
    /// injector left untouched (can exceed 1: repaired/colliding lines
    /// still parse).
    recovery: f64,
    faults: u64,
}

/// Corrupt, re-ingest, analyze, self-check — one round. Ingest quarantines
/// are recorded in `deg` under stages `"ingest-atlas"` / `"ingest-cdn"`;
/// downstream stages add their own entries.
fn run_one(b: &Baseline, corruption_seed: u64, rate: f64, deg: &mut DegradationReport) -> Round {
    // Atlas: dump → corrupt → lossy ingest → series (metadata sidecar).
    let (atlas_damaged, alog) = corrupt_tsv(&b.atlas_tsv, corruption_seed ^ 0xA71A5, rate);
    let (parsed, errors) = records::from_tsv_lossy(&atlas_damaged);
    // The damaged dump is multi-GB at reference scale; release it before
    // the analysis allocates.
    drop(atlas_damaged);
    for e in &errors {
        if e.kind.drops_record() {
            deg.record("ingest-atlas", e.kind.class());
        } else {
            deg.record("ingest-atlas-repair", e.kind.class());
        }
    }
    let mut atlas_recovered = 0u64;
    let series: Vec<ProbeSeries> = parsed
        .into_iter()
        .filter_map(|(probe, mut v4, mut v6)| {
            let n = (v4.len() + v6.len()) as u64;
            match b.probe_meta.get(&probe) {
                Some((asn, tags)) => {
                    // Skewed-but-parseable timestamps land outside the
                    // collection window; quarantine them here so they
                    // cannot distort the duration analyses.
                    v4.retain(|r| b.atlas_window.contains(r.time));
                    v6.retain(|r| b.atlas_window.contains(r.time));
                    let kept = (v4.len() + v6.len()) as u64;
                    deg.record_many("ingest-atlas", "out-of-window", n - kept);
                    atlas_recovered += kept;
                    Some(ProbeSeries {
                        probe,
                        asn: *asn,
                        tags: tags.clone(),
                        v4,
                        v6,
                    })
                }
                None => {
                    // A fault invented a probe id the collection never
                    // issued; without metadata the records are unusable.
                    deg.record_many("ingest-atlas", "unknown-probe", n);
                    None
                }
            }
        })
        .collect();
    let a = AtlasAnalysis::compute_from_series(&b.atlas_world, b.atlas_window, series, deg);

    // CDN: dump → corrupt → lossy ingest → dataset.
    let (cdn_damaged, clog) = corrupt_tsv(&b.cdn_tsv, corruption_seed ^ 0xCD11, rate);
    let (mut ds, cerrors) = cdn_dataset::from_tsv_lossy(&cdn_damaged);
    drop(cdn_damaged);
    for e in &cerrors {
        deg.record("ingest-cdn", e.kind.class());
    }
    let day_lo = b.cdn_window.start.days() as u32;
    let day_hi = day_lo + b.cdn_window.days() as u32;
    let before = ds.tuples.len();
    ds.tuples.retain(|t| (day_lo..day_hi).contains(&t.day));
    deg.record_many(
        "ingest-cdn",
        "out-of-window",
        (before - ds.tuples.len()) as u64,
    );
    let cdn_recovered = ds.len() as u64;
    let c = CdnAnalysis::compute_from_dataset(&b.cdn_world, &ds, deg);

    let checks = check::run_checks(&a, &c);
    let clean = (alog.clean_lines + clog.clean_lines) as u64;
    Round {
        passed: checks.iter().filter(|c| c.pass).count(),
        total: checks.len(),
        failed: checks
            .iter()
            .filter(|c| !c.pass)
            .map(|c| format!("{}: {} (measured {})", c.artifact, c.shape, c.measured))
            .collect(),
        recovery: if clean == 0 {
            1.0
        } else {
            (atlas_recovered + cdn_recovered) as f64 / clean as f64
        },
        faults: alog.total() + clog.total(),
    }
}

/// Upper bound on rounds corrupted and analyzed concurrently. Rounds are
/// independent given the shared baseline; the bound is set by memory, not
/// cores — each in-flight round materializes a damaged copy of both dumps
/// plus everything the lossy loaders recover from them.
const MAX_CONCURRENT_ROUNDS: usize = 4;

/// Run every `(rate, seed)` round on scoped worker threads, bounded by
/// [`MAX_CONCURRENT_ROUNDS`], returning results in job order so the sweep
/// stays deterministic. A panicking round panics the sweep: the whole point
/// of the harness is that no input may panic the pipeline.
fn run_rounds(b: &Baseline, jobs: &[(f64, u64)]) -> Vec<(Round, DegradationReport)> {
    let width = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .clamp(1, MAX_CONCURRENT_ROUNDS);
    let mut results = Vec::with_capacity(jobs.len());
    for chunk in jobs.chunks(width) {
        std::thread::scope(|s| {
            let handles: Vec<_> = chunk
                .iter()
                .map(|&(rate, corruption_seed)| {
                    s.spawn(move || {
                        let mut deg = DegradationReport::new();
                        let round = run_one(b, corruption_seed, rate, &mut deg);
                        (round, deg)
                    })
                })
                .collect();
            for h in handles {
                results.push(crate::resume_worker(h.join()));
            }
        });
    }
    results
}

/// Run the sweep and render the report.
pub fn run(cfg: &ExperimentConfig, opts: &ChaosOptions) -> ChaosOutcome {
    let b = baseline(cfg);
    let seeds = opts.seeds.max(1);
    let seed_base = cfg.seed.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    let jobs: Vec<(f64, u64)> = opts
        .rates
        .iter()
        .enumerate()
        .flat_map(|(ri, &rate)| {
            (0..seeds).map(move |k| (rate, seed_base.wrapping_add(((ri as u64) << 32) | k as u64)))
        })
        .collect();
    let rounds = run_rounds(&b, &jobs);

    let mut ok = true;
    let mut t = TextTable::new(&[
        "rate",
        "seeds",
        "faults",
        "quarantined",
        "shapes (min)",
        "recovery (min)",
    ]);
    let mut degradations: Vec<(f64, DegradationReport)> = Vec::new();
    let mut failures: Vec<(f64, std::collections::BTreeSet<String>)> = Vec::new();

    for (ri, &rate) in opts.rates.iter().enumerate() {
        let mut deg = DegradationReport::new();
        let mut faults = 0u64;
        let mut min_passed = usize::MAX;
        let mut total = 0usize;
        let mut min_recovery = f64::INFINITY;
        let mut failed: std::collections::BTreeSet<String> = std::collections::BTreeSet::new();
        for (round, round_deg) in &rounds[ri * seeds as usize..(ri + 1) * seeds as usize] {
            deg.merge(round_deg);
            faults += round.faults;
            min_passed = min_passed.min(round.passed);
            total = round.total;
            min_recovery = min_recovery.min(round.recovery);
            failed.extend(round.failed.iter().cloned());
        }
        if rate <= opts.fail_threshold && min_passed < total {
            ok = false;
            failures.push((rate, failed));
        }
        t.row(&[
            format!("{rate:.3}"),
            seeds.to_string(),
            faults.to_string(),
            deg.total().to_string(),
            format!("{min_passed}/{total}"),
            format!("{:.1}%", 100.0 * min_recovery.min(9.99)),
        ]);
        degradations.push((rate, deg));
    }

    let mut text = format!(
        "Adversarial ingest sweep (seed {}, atlas scale {}, cdn scale {}):\n\
         every run completed without panicking; shape predicates must all\n\
         hold at corruption rates <= {}.\n\n{}",
        cfg.seed,
        cfg.atlas_scale,
        cfg.cdn_scale,
        opts.fail_threshold,
        t.render()
    );
    for (rate, failed) in &failures {
        text.push_str(&format!("\nfailing shapes at rate {rate:.3}:\n"));
        for f in failed {
            text.push_str(&format!("  - {f}\n"));
        }
    }
    for (rate, deg) in &degradations {
        if !deg.is_clean() {
            text.push_str(&format!(
                "\ndegradation report at rate {rate:.3} ({} seeds merged):\n{}",
                seeds,
                deg.render()
            ));
        }
    }
    text.push_str(if ok {
        "\nchaos: OK — lossy ingest held every paper shape below the threshold"
    } else {
        "\nchaos: FAIL — shape predicates broke at a rate within the threshold"
    });
    ChaosOutcome { text, ok }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> ExperimentConfig {
        // Smaller than `ExperimentConfig::small`: every test serializes,
        // corrupts, and re-ingests the dumps, so dump size is the cost.
        ExperimentConfig {
            seed: 11,
            atlas_scale: 0.02,
            cdn_scale: 0.02,
        }
    }

    /// World building dominates these tests; share one baseline.
    fn shared_baseline() -> &'static Baseline {
        static BASELINE: std::sync::OnceLock<Baseline> = std::sync::OnceLock::new();
        BASELINE.get_or_init(|| baseline(&cfg()))
    }

    #[test]
    fn identity_rate_matches_direct_compute() {
        // Round-tripping through TSV + lossy ingest with rate 0 must
        // reproduce the collector-fed analysis exactly.
        let cfg = cfg();
        let b = shared_baseline();
        let mut deg = DegradationReport::new();
        let round = run_one(b, 1, 0.0, &mut deg);
        let direct = {
            let a = AtlasAnalysis::compute(&cfg);
            let c = CdnAnalysis::compute(&cfg);
            check::run_checks(&a, &c)
        };
        assert_eq!(round.total, direct.len());
        let direct_passed = direct.iter().filter(|c| c.pass).count();
        assert_eq!(round.passed, direct_passed);
        assert!((round.recovery - 1.0).abs() < 1e-12, "{}", round.recovery);
        // Rate 0 injects nothing, so only sanitize/association stages may
        // appear — never ingest quarantines.
        assert_eq!(deg.stage_total("ingest-atlas"), 0);
        assert_eq!(deg.stage_total("ingest-cdn"), 0);
    }

    #[test]
    fn heavy_corruption_degrades_without_panicking() {
        let b = shared_baseline();
        let mut deg = DegradationReport::new();
        let round = run_one(b, 7, 0.5, &mut deg);
        assert!(round.faults > 0);
        assert!(
            deg.stage_total("ingest-atlas") + deg.stage_total("ingest-cdn") > 0,
            "heavy corruption must quarantine something:\n{}",
            deg.render()
        );
    }

    #[test]
    fn light_corruption_recovers_nearly_everything() {
        let b = shared_baseline();
        for seed in 0..3 {
            let mut deg = DegradationReport::new();
            let round = run_one(b, seed, 0.01, &mut deg);
            assert!(
                round.recovery >= 0.99,
                "seed {seed}: only {:.4} recovered",
                round.recovery
            );
        }
    }

    #[test]
    fn sweep_renders_and_reports_ok_flag() {
        let cfg = cfg();
        let opts = ChaosOptions {
            rates: vec![0.0, 0.3],
            seeds: 1,
            // The small test worlds don't satisfy the reference-scale
            // shape predicates, so put the bar below every swept rate and
            // only exercise the plumbing.
            fail_threshold: -1.0,
        };
        let out = run(&cfg, &opts);
        assert!(out.ok);
        assert!(out.text.contains("degradation report at rate 0.300"));
        assert!(out.text.contains("chaos: OK"), "{}", out.text);
    }
}
