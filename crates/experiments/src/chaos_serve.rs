//! The `dynamips chaos-serve` sweep: end-to-end robustness proof for
//! the serving stack under injected network faults.
//!
//! For each fault rate in the sweep, the harness stands up a fresh
//! supervised server over the [`ArtifactService`](crate::service), warms
//! it directly (so sweep traffic measures fault handling, not cold world
//! builds), then routes a fixed batch of artifact requests through
//! `chaos::net`'s fault-injecting proxy using the resilient client
//! (bounded retries + circuit breaker). The sweep asserts the PR's
//! robustness invariants:
//!
//! - **Byte identity**: every `2xx` body is byte-identical to the same
//!   artifact rendered straight from a warm engine session — faults may
//!   cost retries, never bytes.
//! - **No client-visible 5xx**: the retry/breaker layer absorbs
//!   transient faults; a `5xx` surviving all attempts fails the sweep.
//! - **Bounded failures below the threshold**: at fault rates at or
//!   below `fail_threshold`, every request must succeed outright.
//! - **Clean drain**: after each sweep point the server shuts down,
//!   joins, and the open-connection gauge reads zero.
//!
//! The sweep's `rate` is the approximate per-connection fault
//! probability: it is split evenly across the six fault operators, so
//! `P(any fault) = 1 - (1 - rate/6)^6 ≈ rate`. Stall and black-hole
//! durations are set *above* the client timeout so those operators
//! genuinely exercise the timeout path.
//!
//! Everything is seeded: the proxy's fault plan and the client's retry
//! jitter derive per-point seeds from the experiment seed, so a sweep
//! that passes once passes always. Results are rendered as a text table
//! and a `dynamips-bench-v1` [`PerfRecord`] (`BENCH_chaos_serve.json`).

use std::sync::Arc;
use std::time::Instant;

use dynamips_chaos::net::{ChaosProxy, NetFaultPlan, NET_FAULT_OPS};
use dynamips_core::perf::{PerfEntry, PerfRecord};
use dynamips_core::report::TextTable;
use dynamips_serve::{
    http_get, BreakerConfig, Metrics, ResilientClient, RetryPolicy, ServeConfig, Server,
};

use crate::context::ExperimentConfig;
use crate::engine::WarmSession;
use crate::service::ArtifactService;

/// Artifacts the sweep traffic rotates over: small, fast renders from a
/// warm session, covering both the atlas and CDN pipelines.
const SWEEP_ARTIFACTS: [&str; 3] = ["fig1", "fig2", "table1"];

/// Tunables for the chaos-serve sweep.
#[derive(Debug, Clone)]
pub struct ChaosServeOptions {
    /// Per-connection fault probabilities to sweep, in order.
    pub rates: Vec<f64>,
    /// Requests issued per sweep point.
    pub requests: usize,
    /// Rates at or below this must see zero failed requests.
    pub fail_threshold: f64,
    /// Client socket timeout per attempt, milliseconds.
    pub timeout_ms: u64,
}

impl Default for ChaosServeOptions {
    fn default() -> ChaosServeOptions {
        ChaosServeOptions {
            rates: vec![0.0, 0.05, 0.15, 0.3],
            requests: 24,
            fail_threshold: 0.15,
            timeout_ms: 1_000,
        }
    }
}

/// Outcome of one sweep point (one fault rate).
#[derive(Debug, Clone)]
struct PointOutcome {
    rate: f64,
    /// Connections the proxy handled / faults it injected.
    conns: u64,
    faults: u64,
    /// Per-operator injected-fault counts, `NET_FAULT_OPS` order.
    fault_counts: [u64; NET_FAULT_OPS.len()],
    /// Client-side attempt/retry counters for the point.
    attempts: u64,
    retries: u64,
    ok_2xx: u64,
    /// Responses the client surfaced with a 5xx status (invariant: 0).
    visible_5xx: u64,
    /// Requests that failed after all attempts (allowed above threshold).
    failed: u64,
    /// 2xx bodies that did not match the warm-engine bytes (invariant: 0).
    mismatches: u64,
    /// Stale-while-revalidate responses the server served.
    degraded: u64,
    /// Worker panics the supervisor caught (informational).
    worker_panics: u64,
    /// Whether the server drained to zero open connections on join.
    drained: bool,
    elapsed_ms: f64,
}

/// Result of the whole sweep: report text, pass/fail, bench record.
#[derive(Debug, Clone)]
pub struct ChaosServeOutcome {
    /// Human-readable report (table + per-point fault mix + verdict).
    pub text: String,
    /// Whether every invariant held at every sweep point.
    pub ok: bool,
    /// The `dynamips-bench-v1` record for `BENCH_chaos_serve.json`.
    pub perf: PerfRecord,
}

/// Per-point seed derivation: decorrelate the proxy plan and client
/// jitter across sweep points while staying a pure function of the
/// experiment seed.
fn point_seed(seed: u64, index: usize) -> u64 {
    seed ^ (index as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

/// Render every sweep artifact straight from a warm engine session: the
/// ground truth the served bytes must match.
fn expected_bytes(cfg: &ExperimentConfig, workers: usize) -> Result<Vec<Vec<u8>>, String> {
    let session = WarmSession::warm(*cfg, workers);
    let mut out = Vec::with_capacity(SWEEP_ARTIFACTS.len());
    for name in SWEEP_ARTIFACTS {
        let rendered = session.render_artifact(name);
        if !rendered.ok {
            return Err(format!(
                "ground-truth render of {name:?} failed its self-check"
            ));
        }
        out.push(rendered.text.into_bytes());
    }
    Ok(out)
}

/// Run one sweep point: fresh server, warm it, route `requests` through
/// a fault-injecting proxy at `rate`, tear everything down.
fn run_point(
    cfg: &ExperimentConfig,
    opts: &ChaosServeOptions,
    workers: usize,
    index: usize,
    rate: f64,
    expected: &[Vec<u8>],
) -> Result<PointOutcome, String> {
    let started = Instant::now();
    let metrics = Arc::new(Metrics::new());
    let serve_cfg = ServeConfig {
        workers: 2,
        queue_cap: 32,
        max_conns: 64,
        read_timeout_ms: opts.timeout_ms.max(1_000) * 2,
        write_timeout_ms: opts.timeout_ms.max(1_000) * 2,
        ..ServeConfig::default()
    };
    let handler = Arc::new(ArtifactService::over_engine(
        *cfg,
        workers,
        2,
        Arc::clone(&metrics),
    ));
    let server = Server::start("127.0.0.1:0", serve_cfg, handler, Arc::clone(&metrics))
        .map_err(|e| format!("rate {rate}: cannot bind server: {e}"))?;
    let server_addr = server.local_addr();

    // Warm the service directly (not through the proxy) with a generous
    // timeout: the one cold world build happens here, and the warm-up
    // doubles as a fault-free byte-identity check of the serving path.
    for (name, want) in SWEEP_ARTIFACTS.iter().zip(expected) {
        let path = format!("/artifacts/{name}");
        let got = http_get(&server_addr.to_string(), &path, 600_000)
            .map_err(|e| format!("rate {rate}: warm-up GET {path} failed: {e}"))?;
        if got.status != 200 || &got.body != want {
            return Err(format!(
                "rate {rate}: warm-up GET {path} returned status {} with {} byte(s); \
                 expected 200 with {} byte(s) matching the warm engine",
                got.status,
                got.body.len(),
                want.len()
            ));
        }
    }

    // Fault plan: split the sweep rate evenly across the operators and
    // make stalls/black-holes outlast the client timeout.
    let mut plan = NetFaultPlan::uniform(
        point_seed(cfg.seed, index),
        rate / NET_FAULT_OPS.len() as f64,
    );
    plan.stall_ms = opts.timeout_ms + 500;
    plan.blackhole_ms = opts.timeout_ms + 500;
    let proxy =
        ChaosProxy::start(server_addr, plan).map_err(|e| format!("rate {rate}: proxy: {e}"))?;
    let proxy_addr = proxy.local_addr().to_string();

    let client = ResilientClient::new(
        RetryPolicy {
            max_attempts: 5,
            base_backoff_ms: 10,
            max_backoff_ms: 200,
            retry_after_cap_ms: 500,
            jitter_seed: point_seed(cfg.seed, index).rotate_left(17),
        },
        BreakerConfig {
            failure_threshold: 10,
            cooldown_rejects: 2,
        },
    );

    let mut ok_2xx = 0u64;
    let mut visible_5xx = 0u64;
    let mut failed = 0u64;
    let mut mismatches = 0u64;
    for i in 0..opts.requests {
        let which = i % SWEEP_ARTIFACTS.len();
        let path = format!("/artifacts/{}", SWEEP_ARTIFACTS[which]);
        match client.get(&proxy_addr, &path, opts.timeout_ms) {
            Ok(resp) if (200..300).contains(&resp.status) => {
                ok_2xx += 1;
                if resp.body != expected[which] {
                    mismatches += 1;
                }
            }
            Ok(resp) => {
                if resp.status >= 500 {
                    visible_5xx += 1;
                }
                failed += 1;
            }
            Err(_) => failed += 1,
        }
    }

    // Proxy first: stop() joins its relay threads, so every proxied
    // connection to the server has finished before the drain begins.
    let log = proxy.stop();
    server.shutdown_handle().begin_shutdown();
    let summary = server.join();
    let drained = metrics.open_connections() == 0;

    let mut fault_counts = [0u64; NET_FAULT_OPS.len()];
    for (slot, op) in fault_counts.iter_mut().zip(NET_FAULT_OPS) {
        *slot = log.count(op);
    }
    let cm = client.metrics();
    Ok(PointOutcome {
        rate,
        conns: log.conns,
        faults: log.total(),
        fault_counts,
        attempts: cm.attempts_total(),
        retries: cm.retries_total(),
        ok_2xx,
        visible_5xx,
        failed,
        mismatches,
        degraded: metrics.degraded_responses(),
        worker_panics: summary.worker_panics,
        drained,
        elapsed_ms: started.elapsed().as_secs_f64() * 1_000.0,
    })
}

/// Check the sweep invariants for one point; returns violation lines.
fn violations(point: &PointOutcome, opts: &ChaosServeOptions) -> Vec<String> {
    let mut out = Vec::new();
    if point.mismatches > 0 {
        out.push(format!(
            "rate {}: {} 2xx bod(ies) diverged from the warm-engine bytes",
            point.rate, point.mismatches
        ));
    }
    if point.visible_5xx > 0 {
        out.push(format!(
            "rate {}: {} client-visible 5xx response(s)",
            point.rate, point.visible_5xx
        ));
    }
    if point.rate <= opts.fail_threshold && point.failed > 0 {
        out.push(format!(
            "rate {}: {} failed request(s) at or below the fail threshold {}",
            point.rate, point.failed, opts.fail_threshold
        ));
    }
    if !point.drained {
        out.push(format!(
            "rate {}: server did not drain to zero open connections",
            point.rate
        ));
    }
    out
}

/// Run the full chaos-serve sweep; see the module docs for the design.
pub fn run(cfg: &ExperimentConfig, opts: &ChaosServeOptions, workers: usize) -> ChaosServeOutcome {
    let started = Instant::now();
    let warm_started = Instant::now();
    let expected = match expected_bytes(cfg, workers) {
        Ok(expected) => expected,
        Err(why) => {
            return ChaosServeOutcome {
                text: format!("chaos-serve: FAIL — {why}\n"),
                ok: false,
                perf: PerfRecord {
                    seed: cfg.seed,
                    atlas_scale: cfg.atlas_scale,
                    cdn_scale: cfg.cdn_scale,
                    workers,
                    ..PerfRecord::default()
                },
            }
        }
    };
    let warm_ms = warm_started.elapsed().as_secs_f64() * 1_000.0;

    let mut points = Vec::new();
    let mut problems = Vec::new();
    for (index, &rate) in opts.rates.iter().enumerate() {
        match run_point(cfg, opts, workers, index, rate, &expected) {
            Ok(point) => {
                problems.extend(violations(&point, opts));
                points.push(point);
            }
            Err(why) => problems.push(why),
        }
    }

    let mut table = TextTable::new(&[
        "rate", "conns", "faults", "attempts", "retries", "2xx", "5xx", "failed", "degraded",
        "drained",
    ]);
    for p in &points {
        table.row(&[
            format!("{}", p.rate),
            p.conns.to_string(),
            p.faults.to_string(),
            p.attempts.to_string(),
            p.retries.to_string(),
            p.ok_2xx.to_string(),
            p.visible_5xx.to_string(),
            p.failed.to_string(),
            p.degraded.to_string(),
            if p.drained { "yes" } else { "no" }.to_string(),
        ]);
    }

    let mut text = String::new();
    text.push_str(&format!(
        "chaos-serve sweep: seed {}, scales {}/{}, {} request(s)/point over {:?}, \
         fail threshold {}\n\n",
        cfg.seed,
        cfg.atlas_scale,
        cfg.cdn_scale,
        opts.requests,
        SWEEP_ARTIFACTS,
        opts.fail_threshold
    ));
    text.push_str(&table.render());
    for p in &points {
        let mix: Vec<String> = NET_FAULT_OPS
            .iter()
            .zip(p.fault_counts)
            .filter(|(_, n)| *n > 0)
            .map(|(op, n)| format!("{} x{}", op.label(), n))
            .collect();
        text.push_str(&format!(
            "rate {}: fault mix [{}], {} worker panic(s), {:.0} ms\n",
            p.rate,
            mix.join(", "),
            p.worker_panics,
            p.elapsed_ms
        ));
    }
    let ok = problems.is_empty();
    if ok {
        text.push_str(&format!(
            "chaos-serve: OK — every 2xx byte-identical, zero client-visible 5xx, \
             clean drain at all {} rate(s)\n",
            points.len()
        ));
    } else {
        text.push_str("chaos-serve: FAIL\n");
        for problem in &problems {
            text.push_str(&format!("  - {problem}\n"));
        }
    }

    let mut phases = vec![PerfEntry {
        name: "warm-expected-ms".to_string(),
        ms: warm_ms,
    }];
    let mut artifacts = Vec::new();
    for p in &points {
        let tag = format!("rate-{}", p.rate);
        phases.push(PerfEntry {
            name: format!("{tag}-ms"),
            ms: p.elapsed_ms,
        });
        for (name, value) in [
            ("conns", p.conns),
            ("faults", p.faults),
            ("retries", p.retries),
            ("5xx", p.visible_5xx),
            ("failed", p.failed),
            ("degraded", p.degraded),
            ("mismatches", p.mismatches),
        ] {
            artifacts.push(PerfEntry {
                name: format!("{tag}-{name}"),
                ms: value as f64,
            });
        }
    }
    let perf = PerfRecord {
        seed: cfg.seed,
        atlas_scale: cfg.atlas_scale,
        cdn_scale: cfg.cdn_scale,
        workers,
        // One warm ground-truth session plus one per sweep point.
        worlds_built: points.len() + 1,
        total_ms: started.elapsed().as_secs_f64() * 1_000.0,
        phases,
        artifacts,
    };
    ChaosServeOutcome { text, ok, perf }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A tiny quiet-rate sweep end-to-end: all requests succeed, bytes
    /// match, the record round-trips as dynamips-bench-v1.
    #[test]
    fn quiet_sweep_passes_and_round_trips() {
        let cfg = ExperimentConfig {
            seed: 13,
            atlas_scale: 0.02,
            cdn_scale: 0.02,
        };
        let opts = ChaosServeOptions {
            rates: vec![0.0],
            requests: 6,
            fail_threshold: 0.15,
            timeout_ms: 5_000,
        };
        let outcome = run(&cfg, &opts, 2);
        assert!(outcome.ok, "{}", outcome.text);
        assert!(outcome.text.contains("chaos-serve: OK"), "{}", outcome.text);
        let parsed = PerfRecord::parse(&outcome.perf.to_json()).expect("round-trip");
        assert_eq!(parsed.worlds_built, 2);
        assert!(parsed
            .artifacts
            .iter()
            .any(|e| e.name == "rate-0-failed" && e.ms == 0.0));
    }

    /// A faulty sweep point still satisfies the invariants: retries
    /// absorb the injected faults, no 5xx leaks, bytes stay identical.
    #[test]
    fn faulty_sweep_point_is_absorbed_by_retries() {
        let cfg = ExperimentConfig {
            seed: 29,
            atlas_scale: 0.02,
            cdn_scale: 0.02,
        };
        let opts = ChaosServeOptions {
            rates: vec![0.3],
            requests: 8,
            fail_threshold: 0.15,
            timeout_ms: 800,
        };
        let outcome = run(&cfg, &opts, 2);
        assert!(outcome.ok, "{}", outcome.text);
        // The point is above the threshold, so failures would be legal —
        // but byte identity and zero-5xx still had to hold.
        assert!(outcome.text.contains("chaos-serve: OK"), "{}", outcome.text);
    }
}
