//! `dynamips` — regenerate the paper's tables and figures from simulation.
//!
//! ```text
//! dynamips [--seed N] [--atlas-scale X] [--cdn-scale Y] <artifact>...
//! dynamips all            # everything
//! dynamips table1 fig5    # a subset
//! dynamips --threads 8 --timings all   # parallel engine + wall-time table
//! dynamips chaos --rate 0.01 --seeds 5   # adversarial-ingest sweep
//! dynamips lint [--format json]          # workspace invariant checker
//! ```
//!
//! Artifact names and `--out` writability are validated *before* any
//! analysis runs, so a typo exits immediately with code 2 instead of
//! after minutes of computation.
//!
//! Exit codes: `0` on success, `1` on a run failure (I/O error, failed
//! `check` predicates, failed `chaos` sweep), `2` on a usage error.

use dynamips_experiments::{chaos, engine, extended, ExperimentConfig};

/// Exit code for usage errors (bad flags, unknown artifacts).
const EXIT_USAGE: i32 = 2;
/// Exit code for run failures (I/O, failed check/chaos assertions).
const EXIT_RUN_FAILURE: i32 = 1;

fn usage() -> ! {
    eprintln!(
        "usage: dynamips [--seed N] [--atlas-scale X] [--cdn-scale Y] <artifact>...\n\
         artifacts: {} {} claims check all\n\
         extended:  {} (share the engine's cached world)\n\
         datasets:  dump-atlas <path> | dump-cdn <path>\n\
         chaos:     chaos [--rate R]... [--seeds N] [--fail-threshold T]\n\
         \x20          (corrupt the TSV dumps, re-ingest through the lossy\n\
         \x20          loaders, verify the paper shapes survive; defaults to\n\
         \x20          the reference scale: seed 2020, scales 0.2/0.15)\n\
         lint:      lint [--format text|json|sarif]\n\
         \x20          (check the workspace's determinism, panic-freedom,\n\
         \x20          and offline-build invariants against lint.toml)\n\
         options:   --out DIR writes each artifact to DIR/<artifact>.txt\n\
         \x20          --threads N engine worker threads (default: all cores,\n\
         \x20          or DYNAMIPS_THREADS); --timings prints the per-stage\n\
         \x20          wall-time table to stderr and writes BENCH_all.json\n\
         extra:     seeds (robustness across seeds; not part of `all`)\n\
         exit code: 0 success, 1 run failure (I/O, failed check or chaos), 2 usage",
        engine::ATLAS_ARTIFACTS.join(" "),
        engine::CDN_ARTIFACTS.join(" "),
        engine::EXTENDED_ARTIFACTS.join(" "),
    );
    std::process::exit(EXIT_USAGE);
}

fn main() {
    // Flags are collected as overrides so subcommands can pick their own
    // defaults (chaos defaults to the reference scale, artifacts to the
    // paper scale).
    let mut seed: Option<u64> = None;
    let mut atlas_scale: Option<f64> = None;
    let mut cdn_scale: Option<f64> = None;
    let mut chaos_opts = chaos::ChaosOptions::default();
    let mut chaos_rates: Vec<f64> = Vec::new();
    let mut wanted: Vec<String> = Vec::new();
    let mut out_dir: Option<std::path::PathBuf> = None;
    let mut threads: Option<usize> = None;
    let mut timings = false;
    let mut lint_format: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--out" => out_dir = Some(args.next().map(Into::into).unwrap_or_else(|| usage())),
            "--seed" => {
                seed = Some(
                    args.next()
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| usage()),
                )
            }
            "--atlas-scale" => {
                atlas_scale = Some(
                    args.next()
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| usage()),
                )
            }
            "--cdn-scale" => {
                cdn_scale = Some(
                    args.next()
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| usage()),
                )
            }
            "--threads" => {
                threads = Some(
                    args.next()
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| usage()),
                )
            }
            "--timings" => timings = true,
            "--format" => lint_format = Some(args.next().unwrap_or_else(|| usage())),
            "--rate" => chaos_rates.push(
                args.next()
                    .and_then(|v| v.parse().ok())
                    .filter(|r| (0.0..=1.0).contains(r))
                    .unwrap_or_else(|| usage()),
            ),
            "--seeds" => {
                chaos_opts.seeds = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--fail-threshold" => {
                chaos_opts.fail_threshold = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--help" | "-h" => usage(),
            other if other.starts_with('-') => usage(),
            other => wanted.push(other.to_string()),
        }
    }
    if wanted.is_empty() {
        usage();
    }

    let mut cfg = ExperimentConfig::default();

    // The lint subcommand takes over the whole invocation: it reads
    // source, not simulation, and mirrors the standalone `dynamips-lint`
    // binary (and its 0/1/2 exit contract).
    if wanted[0] == "lint" {
        if wanted.len() != 1 {
            usage();
        }
        let format = match lint_format.as_deref() {
            None => dynamips_lint::Format::Text,
            Some(word) => dynamips_lint::Format::parse(word).unwrap_or_else(|| usage()),
        };
        let Some(root) = std::env::current_dir()
            .ok()
            .and_then(|cwd| dynamips_lint::find_root(&cwd))
        else {
            eprintln!("dynamips lint: no lint.toml found above the current directory");
            std::process::exit(EXIT_USAGE);
        };
        let config_text = match std::fs::read_to_string(root.join("lint.toml")) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("dynamips lint: cannot read lint.toml: {e}");
                std::process::exit(EXIT_USAGE);
            }
        };
        match dynamips_lint::run(&root, &config_text, format, true) {
            Ok(outcome) => {
                print!("{}", outcome.report);
                if outcome.denies > 0 {
                    std::process::exit(EXIT_RUN_FAILURE);
                }
            }
            Err(e) => {
                eprintln!("dynamips lint: {e}");
                std::process::exit(EXIT_USAGE);
            }
        }
        return;
    }
    if lint_format.is_some() {
        // --format only means something to `lint`.
        usage();
    }

    // The chaos sweep takes over the whole invocation.
    if wanted[0] == "chaos" {
        if wanted.len() != 1 {
            usage();
        }
        // Reference scale: the smallest configuration whose shape
        // predicates are all known to hold on uncorrupted data.
        cfg = ExperimentConfig {
            seed: seed.unwrap_or(2020),
            atlas_scale: atlas_scale.unwrap_or(0.2),
            cdn_scale: cdn_scale.unwrap_or(0.15),
        };
        if !chaos_rates.is_empty() {
            chaos_opts.rates = chaos_rates;
        }
        eprintln!(
            "[dynamips] chaos sweep over rates {:?} ({} seeds each)...",
            chaos_opts.rates, chaos_opts.seeds
        );
        let outcome = chaos::run(&cfg, &chaos_opts);
        println!("{}", outcome.text);
        if !outcome.ok {
            std::process::exit(EXIT_RUN_FAILURE);
        }
        return;
    }

    if let Some(s) = seed {
        cfg.seed = s;
    }
    if let Some(s) = atlas_scale {
        cfg.atlas_scale = s;
    }
    if let Some(s) = cdn_scale {
        cfg.cdn_scale = s;
    }

    let ran_all = wanted.iter().any(|w| w == "all");
    if ran_all {
        wanted = engine::ATLAS_ARTIFACTS
            .iter()
            .chain(engine::CDN_ARTIFACTS.iter())
            .map(|s| s.to_string())
            .chain(std::iter::once("claims".to_string()))
            .chain(std::iter::once("check".to_string()))
            .chain(engine::EXTENDED_ARTIFACTS.iter().map(|s| s.to_string()))
            .collect();
    }

    // Dataset dumps take a path operand and short-circuit.
    if wanted[0] == "dump-atlas" || wanted[0] == "dump-cdn" {
        let Some(path) = wanted.get(1) else { usage() };
        let result = if wanted[0] == "dump-atlas" {
            extended::dump_atlas(&cfg, std::path::Path::new(path))
        } else {
            extended::dump_cdn(&cfg, std::path::Path::new(path))
        };
        match result {
            Ok(msg) => println!("{msg}"),
            Err(e) => {
                eprintln!("dump failed: {e}");
                std::process::exit(EXIT_RUN_FAILURE);
            }
        }
        return;
    }

    // Validate the whole request *before* computing anything: a typo'd
    // artifact or an unwritable --out must not cost minutes of analysis.
    for artifact in &wanted {
        if !engine::is_known_artifact(artifact) {
            eprintln!("unknown artifact {artifact:?}");
            usage();
        }
    }
    if let Some(dir) = &out_dir {
        let probe = dir.join(".dynamips-write-probe");
        if let Err(e) = std::fs::create_dir_all(dir)
            .and_then(|()| std::fs::write(&probe, b""))
            .and_then(|()| std::fs::remove_file(&probe))
        {
            eprintln!("--out {} is not writable: {e}", dir.display());
            std::process::exit(EXIT_RUN_FAILURE);
        }
    }

    let workers = engine::worker_count(threads);
    eprintln!(
        "[dynamips] engine: {} artifact(s), {} worker(s), seed {}, scales {}/{}",
        wanted.len(),
        workers,
        cfg.seed,
        cfg.atlas_scale,
        cfg.cdn_scale
    );
    let output = engine::run(&cfg, &wanted, workers);

    let mut run_failed = false;
    for artifact in &output.artifacts {
        println!("{}", "=".repeat(72));
        println!("{}", artifact.text);
        if !artifact.ok {
            run_failed = true;
        }
        if let Some(dir) = &out_dir {
            if let Err(e) = std::fs::create_dir_all(dir).and_then(|()| {
                std::fs::write(dir.join(format!("{}.txt", artifact.name)), &artifact.text)
            }) {
                eprintln!("failed to write {}.txt: {e}", artifact.name);
                std::process::exit(EXIT_RUN_FAILURE);
            }
        }
    }

    // Timings go to stderr (and the bench record to disk) so stdout stays
    // byte-identical across worker counts and --timings settings.
    if timings {
        eprintln!("{}", engine::render_timings(&output.perf));
    }
    if timings || ran_all {
        let path = out_dir
            .as_deref()
            .unwrap_or_else(|| std::path::Path::new("."))
            .join("BENCH_all.json");
        match std::fs::write(&path, output.perf.to_json()) {
            Ok(()) => eprintln!("[dynamips] wrote {}", path.display()),
            Err(e) => {
                eprintln!("failed to write {}: {e}", path.display());
                std::process::exit(EXIT_RUN_FAILURE);
            }
        }
    }

    if run_failed {
        eprintln!("[dynamips] self-check failed");
        std::process::exit(EXIT_RUN_FAILURE);
    }
}
