//! `dynamips` — regenerate the paper's tables and figures from simulation.
//!
//! ```text
//! dynamips [--seed N] [--atlas-scale X] [--cdn-scale Y] <artifact>...
//! dynamips all            # everything
//! dynamips table1 fig5    # a subset
//! dynamips chaos --rate 0.01 --seeds 5   # adversarial-ingest sweep
//! ```
//!
//! Exit codes: `0` on success, `1` on a run failure (I/O error, failed
//! `check` predicates, failed `chaos` sweep), `2` on a usage error.

use dynamips_experiments::{
    atlas_exps, cdn_exps, chaos, check, claims, extended, AtlasAnalysis, CdnAnalysis,
    ExperimentConfig,
};

const ATLAS_ARTIFACTS: [&str; 7] = ["table1", "fig1", "fig5", "fig6", "fig8", "fig9", "table2"];
const CDN_ARTIFACTS: [&str; 4] = ["fig2", "fig3", "fig4", "fig7"];
const EXTENDED_ARTIFACTS: [&str; 9] = [
    "evolution",
    "pools",
    "scanplan",
    "targetgen",
    "tracking",
    "counting",
    "anonymize",
    "blocklist",
    "sanitizer",
];

/// Exit code for usage errors (bad flags, unknown artifacts).
const EXIT_USAGE: i32 = 2;
/// Exit code for run failures (I/O, failed check/chaos assertions).
const EXIT_RUN_FAILURE: i32 = 1;

fn usage() -> ! {
    eprintln!(
        "usage: dynamips [--seed N] [--atlas-scale X] [--cdn-scale Y] <artifact>...\n\
         artifacts: {} {} claims check all\n\
         extended:  {} (run their own focused worlds)\n\
         datasets:  dump-atlas <path> | dump-cdn <path>\n\
         chaos:     chaos [--rate R]... [--seeds N] [--fail-threshold T]\n\
         \x20          (corrupt the TSV dumps, re-ingest through the lossy\n\
         \x20          loaders, verify the paper shapes survive; defaults to\n\
         \x20          the reference scale: seed 2020, scales 0.2/0.15)\n\
         options:   --out DIR writes each artifact to DIR/<artifact>.txt\n\
         extra:     seeds (robustness across seeds; not part of `all`)\n\
         exit code: 0 success, 1 run failure (I/O, failed check or chaos), 2 usage",
        ATLAS_ARTIFACTS.join(" "),
        CDN_ARTIFACTS.join(" "),
        EXTENDED_ARTIFACTS.join(" "),
    );
    std::process::exit(EXIT_USAGE);
}

fn main() {
    // Flags are collected as overrides so subcommands can pick their own
    // defaults (chaos defaults to the reference scale, artifacts to the
    // paper scale).
    let mut seed: Option<u64> = None;
    let mut atlas_scale: Option<f64> = None;
    let mut cdn_scale: Option<f64> = None;
    let mut chaos_opts = chaos::ChaosOptions::default();
    let mut chaos_rates: Vec<f64> = Vec::new();
    let mut wanted: Vec<String> = Vec::new();
    let mut out_dir: Option<std::path::PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--out" => out_dir = Some(args.next().map(Into::into).unwrap_or_else(|| usage())),
            "--seed" => seed = Some(args.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| usage())),
            "--atlas-scale" => {
                atlas_scale = Some(args.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| usage()))
            }
            "--cdn-scale" => {
                cdn_scale = Some(args.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| usage()))
            }
            "--rate" => chaos_rates.push(
                args.next()
                    .and_then(|v| v.parse().ok())
                    .filter(|r| (0.0..=1.0).contains(r))
                    .unwrap_or_else(|| usage()),
            ),
            "--seeds" => {
                chaos_opts.seeds = args.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| usage())
            }
            "--fail-threshold" => {
                chaos_opts.fail_threshold =
                    args.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| usage())
            }
            "--help" | "-h" => usage(),
            other if other.starts_with('-') => usage(),
            other => wanted.push(other.to_string()),
        }
    }
    if wanted.is_empty() {
        usage();
    }

    let mut cfg = ExperimentConfig::default();

    // The chaos sweep takes over the whole invocation.
    if wanted[0] == "chaos" {
        if wanted.len() != 1 {
            usage();
        }
        // Reference scale: the smallest configuration whose shape
        // predicates are all known to hold on uncorrupted data.
        cfg = ExperimentConfig {
            seed: seed.unwrap_or(2020),
            atlas_scale: atlas_scale.unwrap_or(0.2),
            cdn_scale: cdn_scale.unwrap_or(0.15),
        };
        if !chaos_rates.is_empty() {
            chaos_opts.rates = chaos_rates;
        }
        eprintln!(
            "[dynamips] chaos sweep over rates {:?} ({} seeds each)...",
            chaos_opts.rates, chaos_opts.seeds
        );
        let outcome = chaos::run(&cfg, &chaos_opts);
        println!("{}", outcome.text);
        if !outcome.ok {
            std::process::exit(EXIT_RUN_FAILURE);
        }
        return;
    }

    if let Some(s) = seed {
        cfg.seed = s;
    }
    if let Some(s) = atlas_scale {
        cfg.atlas_scale = s;
    }
    if let Some(s) = cdn_scale {
        cfg.cdn_scale = s;
    }

    if wanted.iter().any(|w| w == "all") {
        wanted = ATLAS_ARTIFACTS
            .iter()
            .chain(CDN_ARTIFACTS.iter())
            .map(|s| s.to_string())
            .chain(std::iter::once("claims".to_string()))
            .chain(std::iter::once("check".to_string()))
            .chain(EXTENDED_ARTIFACTS.iter().map(|s| s.to_string()))
            .collect();
    }

    // Dataset dumps take a path operand and short-circuit.
    if wanted[0] == "dump-atlas" || wanted[0] == "dump-cdn" {
        let Some(path) = wanted.get(1) else { usage() };
        let result = if wanted[0] == "dump-atlas" {
            extended::dump_atlas(&cfg, std::path::Path::new(path))
        } else {
            extended::dump_cdn(&cfg, std::path::Path::new(path))
        };
        match result {
            Ok(msg) => println!("{msg}"),
            Err(e) => {
                eprintln!("dump failed: {e}");
                std::process::exit(EXIT_RUN_FAILURE);
            }
        }
        return;
    }

    let needs_atlas = wanted
        .iter()
        .any(|w| ATLAS_ARTIFACTS.contains(&w.as_str()) || w == "claims" || w == "check");
    let needs_cdn = wanted
        .iter()
        .any(|w| CDN_ARTIFACTS.contains(&w.as_str()) || w == "claims" || w == "check");

    let atlas = needs_atlas.then(|| {
        eprintln!(
            "[dynamips] computing Atlas analysis (seed {}, scale {})...",
            cfg.seed, cfg.atlas_scale
        );
        AtlasAnalysis::compute(&cfg)
    });
    let cdn = needs_cdn.then(|| {
        eprintln!(
            "[dynamips] computing CDN analysis (seed {}, scale {})...",
            cfg.seed, cfg.cdn_scale
        );
        CdnAnalysis::compute(&cfg)
    });

    let mut run_failed = false;
    for artifact in &wanted {
        let text = match artifact.as_str() {
            "table1" => atlas_exps::table1(atlas.as_ref().expect("atlas computed")),
            "fig1" => atlas_exps::fig1(atlas.as_ref().expect("atlas computed")),
            "fig5" => atlas_exps::fig5(atlas.as_ref().expect("atlas computed")),
            "fig6" => atlas_exps::fig6(atlas.as_ref().expect("atlas computed")),
            "fig8" => atlas_exps::fig8(atlas.as_ref().expect("atlas computed")),
            "fig9" => atlas_exps::fig9(atlas.as_ref().expect("atlas computed")),
            "table2" => atlas_exps::table2(atlas.as_ref().expect("atlas computed")),
            "fig2" => cdn_exps::fig2(cdn.as_ref().expect("cdn computed")),
            "fig3" => cdn_exps::fig3(cdn.as_ref().expect("cdn computed")),
            "fig4" => cdn_exps::fig4(cdn.as_ref().expect("cdn computed")),
            "fig7" => cdn_exps::fig7(cdn.as_ref().expect("cdn computed")),
            "claims" => claims::render(
                atlas.as_ref().expect("atlas computed"),
                cdn.as_ref().expect("cdn computed"),
            ),
            "check" => {
                let (text, ok) = check::render_and_ok(
                    atlas.as_ref().expect("atlas computed"),
                    cdn.as_ref().expect("cdn computed"),
                );
                if !ok {
                    run_failed = true;
                }
                text
            }
            "evolution" => extended::evolution(&cfg),
            "pools" => extended::pool_boundaries(&cfg),
            "scanplan" => extended::scan_plans(&cfg),
            "targetgen" => extended::target_generation(&cfg),
            "tracking" => extended::tracking_report(&cfg),
            "anonymize" => extended::anonymize_audit(&cfg),
            "blocklist" => extended::blocklist_sweep(&cfg),
            "sanitizer" => extended::sanitizer_report(&cfg),
            "counting" => extended::counting_report(&cfg),
            "seeds" => extended::seed_robustness(&cfg),
            other => {
                eprintln!("unknown artifact {other:?}");
                usage();
            }
        };
        println!("{}", "=".repeat(72));
        println!("{text}");
        if let Some(dir) = &out_dir {
            if let Err(e) = std::fs::create_dir_all(dir)
                .and_then(|()| std::fs::write(dir.join(format!("{artifact}.txt")), &text))
            {
                eprintln!("failed to write {artifact}.txt: {e}");
                std::process::exit(EXIT_RUN_FAILURE);
            }
        }
    }
    if run_failed {
        eprintln!("[dynamips] self-check failed");
        std::process::exit(EXIT_RUN_FAILURE);
    }
}
