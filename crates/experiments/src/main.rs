//! `dynamips` — regenerate the paper's tables and figures from simulation.
//!
//! ```text
//! dynamips [--seed N] [--atlas-scale X] [--cdn-scale Y] <artifact>...
//! dynamips all            # everything
//! dynamips table1 fig5    # a subset
//! ```

use dynamips_experiments::{
    atlas_exps, cdn_exps, check, claims, extended, AtlasAnalysis, CdnAnalysis, ExperimentConfig,
};

const ATLAS_ARTIFACTS: [&str; 7] = ["table1", "fig1", "fig5", "fig6", "fig8", "fig9", "table2"];
const CDN_ARTIFACTS: [&str; 4] = ["fig2", "fig3", "fig4", "fig7"];
const EXTENDED_ARTIFACTS: [&str; 9] = [
    "evolution",
    "pools",
    "scanplan",
    "targetgen",
    "tracking",
    "counting",
    "anonymize",
    "blocklist",
    "sanitizer",
];

fn usage() -> ! {
    eprintln!(
        "usage: dynamips [--seed N] [--atlas-scale X] [--cdn-scale Y] <artifact>...\n\
         artifacts: {} {} claims check all\n\
         extended:  {} (run their own focused worlds)\n\
         datasets:  dump-atlas <path> | dump-cdn <path>\n\
         options:   --out DIR writes each artifact to DIR/<artifact>.txt\n\
         extra:     seeds (robustness across seeds; not part of `all`)",
        ATLAS_ARTIFACTS.join(" "),
        CDN_ARTIFACTS.join(" "),
        EXTENDED_ARTIFACTS.join(" "),
    );
    std::process::exit(2);
}

fn main() {
    let mut cfg = ExperimentConfig::default();
    let mut wanted: Vec<String> = Vec::new();
    let mut out_dir: Option<std::path::PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--out" => out_dir = Some(args.next().map(Into::into).unwrap_or_else(|| usage())),
            "--seed" => {
                cfg.seed = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--atlas-scale" => {
                cfg.atlas_scale = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--cdn-scale" => {
                cfg.cdn_scale = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--help" | "-h" => usage(),
            other if other.starts_with('-') => usage(),
            other => wanted.push(other.to_string()),
        }
    }
    if wanted.is_empty() {
        usage();
    }
    if wanted.iter().any(|w| w == "all") {
        wanted = ATLAS_ARTIFACTS
            .iter()
            .chain(CDN_ARTIFACTS.iter())
            .map(|s| s.to_string())
            .chain(std::iter::once("claims".to_string()))
            .chain(std::iter::once("check".to_string()))
            .chain(EXTENDED_ARTIFACTS.iter().map(|s| s.to_string()))
            .collect();
    }

    // Dataset dumps take a path operand and short-circuit.
    if wanted[0] == "dump-atlas" || wanted[0] == "dump-cdn" {
        let Some(path) = wanted.get(1) else { usage() };
        let result = if wanted[0] == "dump-atlas" {
            extended::dump_atlas(&cfg, std::path::Path::new(path))
        } else {
            extended::dump_cdn(&cfg, std::path::Path::new(path))
        };
        match result {
            Ok(msg) => println!("{msg}"),
            Err(e) => {
                eprintln!("dump failed: {e}");
                std::process::exit(1);
            }
        }
        return;
    }

    let needs_atlas = wanted
        .iter()
        .any(|w| ATLAS_ARTIFACTS.contains(&w.as_str()) || w == "claims" || w == "check");
    let needs_cdn = wanted
        .iter()
        .any(|w| CDN_ARTIFACTS.contains(&w.as_str()) || w == "claims" || w == "check");

    let atlas = needs_atlas.then(|| {
        eprintln!(
            "[dynamips] computing Atlas analysis (seed {}, scale {})...",
            cfg.seed, cfg.atlas_scale
        );
        AtlasAnalysis::compute(&cfg)
    });
    let cdn = needs_cdn.then(|| {
        eprintln!(
            "[dynamips] computing CDN analysis (seed {}, scale {})...",
            cfg.seed, cfg.cdn_scale
        );
        CdnAnalysis::compute(&cfg)
    });

    for artifact in &wanted {
        let text = match artifact.as_str() {
            "table1" => atlas_exps::table1(atlas.as_ref().expect("atlas computed")),
            "fig1" => atlas_exps::fig1(atlas.as_ref().expect("atlas computed")),
            "fig5" => atlas_exps::fig5(atlas.as_ref().expect("atlas computed")),
            "fig6" => atlas_exps::fig6(atlas.as_ref().expect("atlas computed")),
            "fig8" => atlas_exps::fig8(atlas.as_ref().expect("atlas computed")),
            "fig9" => atlas_exps::fig9(atlas.as_ref().expect("atlas computed")),
            "table2" => atlas_exps::table2(atlas.as_ref().expect("atlas computed")),
            "fig2" => cdn_exps::fig2(cdn.as_ref().expect("cdn computed")),
            "fig3" => cdn_exps::fig3(cdn.as_ref().expect("cdn computed")),
            "fig4" => cdn_exps::fig4(cdn.as_ref().expect("cdn computed")),
            "fig7" => cdn_exps::fig7(cdn.as_ref().expect("cdn computed")),
            "claims" => claims::render(
                atlas.as_ref().expect("atlas computed"),
                cdn.as_ref().expect("cdn computed"),
            ),
            "check" => check::render(
                atlas.as_ref().expect("atlas computed"),
                cdn.as_ref().expect("cdn computed"),
            ),
            "evolution" => extended::evolution(&cfg),
            "pools" => extended::pool_boundaries(&cfg),
            "scanplan" => extended::scan_plans(&cfg),
            "targetgen" => extended::target_generation(&cfg),
            "tracking" => extended::tracking_report(&cfg),
            "anonymize" => extended::anonymize_audit(&cfg),
            "blocklist" => extended::blocklist_sweep(&cfg),
            "sanitizer" => extended::sanitizer_report(&cfg),
            "counting" => extended::counting_report(&cfg),
            "seeds" => extended::seed_robustness(&cfg),
            other => {
                eprintln!("unknown artifact {other:?}");
                usage();
            }
        };
        println!("{}", "=".repeat(72));
        println!("{text}");
        if let Some(dir) = &out_dir {
            if let Err(e) = std::fs::create_dir_all(dir)
                .and_then(|()| std::fs::write(dir.join(format!("{artifact}.txt")), &text))
            {
                eprintln!("failed to write {artifact}.txt: {e}");
                std::process::exit(1);
            }
        }
    }
}
