//! `dynamips` — regenerate the paper's tables and figures from simulation.
//!
//! ```text
//! dynamips [--seed N] [--atlas-scale X] [--cdn-scale Y] <artifact>...
//! dynamips all            # everything
//! dynamips table1 fig5    # a subset
//! dynamips --threads 8 --timings all   # parallel engine + wall-time table
//! dynamips chaos --rate 0.01 --seeds 5   # adversarial-ingest sweep
//! dynamips chaos-serve --seed 7          # network-fault serving sweep
//! dynamips lint [--format json]          # workspace invariant checker
//! dynamips serve --addr 127.0.0.1:0      # HTTP serving layer
//! dynamips loadtest --url http://127.0.0.1:8311/artifacts/fig1
//! dynamips loadtest --open-loop --rate-rps 600 --url http://127.0.0.1:8311/healthz
//! dynamips bench-check BENCH_all.json    # validate a bench record
//! dynamips bench-check BENCH_serve.json --baseline BENCH_serve_baseline.json
//! ```
//!
//! Artifact names and `--out` writability are validated *before* any
//! analysis runs, so a typo exits immediately with code 2 instead of
//! after minutes of computation.
//!
//! Exit codes: `0` on success, `1` on a run failure (I/O error, failed
//! `check` predicates, failed `chaos` or `chaos-serve` sweep), `2` on a
//! usage error.

use dynamips_experiments::{chaos, chaos_serve, engine, extended, service, ExperimentConfig};

/// Exit code for usage errors (bad flags, unknown artifacts).
const EXIT_USAGE: i32 = 2;
/// Exit code for run failures (I/O, failed check/chaos assertions).
const EXIT_RUN_FAILURE: i32 = 1;

fn usage() -> ! {
    eprintln!(
        "usage: dynamips [--seed N] [--atlas-scale X] [--cdn-scale Y] <artifact>...\n\
         artifacts: {} {} claims check all\n\
         extended:  {} (share the engine's cached world)\n\
         datasets:  dump-atlas <path> | dump-cdn <path>\n\
         chaos:     chaos [--rate R]... [--seeds N] [--fail-threshold T]\n\
         \x20          (corrupt the TSV dumps, re-ingest through the lossy\n\
         \x20          loaders, verify the paper shapes survive; defaults to\n\
         \x20          the reference scale: seed 2020, scales 0.2/0.15)\n\
         chaos-serve: chaos-serve [--rate R]... [--requests N]\n\
         \x20          [--timeout-ms N] [--fail-threshold T] [--bench-out PATH]\n\
         \x20          (route loadtest traffic through a fault-injecting TCP\n\
         \x20          proxy at each rate; every 2xx must be byte-identical to\n\
         \x20          the warm engine, no client-visible 5xx, clean drain;\n\
         \x20          writes BENCH_chaos_serve.json)\n\
         lint:      lint [--format text|json|sarif]\n\
         \x20          (check the workspace's determinism, panic-freedom,\n\
         \x20          and offline-build invariants against lint.toml)\n\
         serve:     serve [--addr A] [--serve-workers N] [--queue N]\n\
         \x20          [--max-conns N] [--cache-cap N] [--read-timeout-ms N]\n\
         \x20          [--write-timeout-ms N]\n\
         \x20          (HTTP server over the engine at the reference scale by\n\
         \x20          default; GET /shutdown drains and exits)\n\
         loadtest:  loadtest --url U [--concurrency N] [--requests N]\n\
         \x20          [--timeout-ms N] [--bench-out PATH]\n\
         \x20          [--open-loop --rate-rps R] [--seed N]\n\
         \x20          (closed-loop by default; --open-loop sends on a seeded\n\
         \x20          Poisson arrival schedule over keep-alive connections\n\
         \x20          and measures latency from each request's *scheduled*\n\
         \x20          start, so server stalls are charged, not hidden;\n\
         \x20          writes BENCH_serve.json)\n\
         bench:     bench-check <path> [--baseline PATH]\n\
         \x20          (validate a dynamips-bench-v1 record; with --baseline,\n\
         \x20          fail on any `-ms` ceiling / `-rps` floor regression)\n\
         options:   --out DIR writes each artifact to DIR/<artifact>.txt\n\
         \x20          --threads N engine worker threads (default: all cores,\n\
         \x20          or DYNAMIPS_THREADS); --timings prints the per-stage\n\
         \x20          wall-time table to stderr and writes BENCH_all.json\n\
         extra:     seeds (robustness across seeds; not part of `all`)\n\
         exit code: 0 success, 1 run failure (I/O, failed check or chaos), 2 usage",
        engine::ATLAS_ARTIFACTS.join(" "),
        engine::CDN_ARTIFACTS.join(" "),
        engine::EXTENDED_ARTIFACTS.join(" "),
    );
    std::process::exit(EXIT_USAGE);
}

fn main() {
    // Flags are collected as overrides so subcommands can pick their own
    // defaults (chaos defaults to the reference scale, artifacts to the
    // paper scale).
    let mut seed: Option<u64> = None;
    let mut atlas_scale: Option<f64> = None;
    let mut cdn_scale: Option<f64> = None;
    let mut chaos_opts = chaos::ChaosOptions::default();
    let mut chaos_rates: Vec<f64> = Vec::new();
    // Shared by `chaos` and `chaos-serve`, whose defaults differ.
    let mut fail_threshold: Option<f64> = None;
    let mut wanted: Vec<String> = Vec::new();
    let mut out_dir: Option<std::path::PathBuf> = None;
    let mut threads: Option<usize> = None;
    let mut timings = false;
    let mut lint_format: Option<String> = None;
    let mut serve_addr: Option<String> = None;
    let mut serve_workers: Option<usize> = None;
    let mut queue_cap: Option<usize> = None;
    let mut max_conns: Option<usize> = None;
    let mut cache_cap: Option<usize> = None;
    let mut read_timeout_ms: Option<u64> = None;
    let mut write_timeout_ms: Option<u64> = None;
    let mut lt_url: Option<String> = None;
    let mut lt_concurrency: Option<usize> = None;
    let mut lt_requests: Option<usize> = None;
    let mut lt_timeout_ms: Option<u64> = None;
    let mut lt_open_loop = false;
    let mut lt_rate_rps: Option<f64> = None;
    let mut bench_out: Option<std::path::PathBuf> = None;
    let mut bench_baseline: Option<std::path::PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--out" => out_dir = Some(args.next().map(Into::into).unwrap_or_else(|| usage())),
            "--seed" => {
                seed = Some(
                    args.next()
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| usage()),
                )
            }
            "--atlas-scale" => {
                atlas_scale = Some(
                    args.next()
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| usage()),
                )
            }
            "--cdn-scale" => {
                cdn_scale = Some(
                    args.next()
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| usage()),
                )
            }
            "--threads" => {
                threads = Some(
                    args.next()
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| usage()),
                )
            }
            "--timings" => timings = true,
            "--format" => lint_format = Some(args.next().unwrap_or_else(|| usage())),
            "--addr" => serve_addr = Some(args.next().unwrap_or_else(|| usage())),
            "--serve-workers" => {
                serve_workers = Some(
                    args.next()
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| usage()),
                )
            }
            "--queue" => {
                queue_cap = Some(
                    args.next()
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| usage()),
                )
            }
            "--max-conns" => {
                max_conns = Some(
                    args.next()
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| usage()),
                )
            }
            "--cache-cap" => {
                cache_cap = Some(
                    args.next()
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| usage()),
                )
            }
            "--read-timeout-ms" => {
                read_timeout_ms = Some(
                    args.next()
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| usage()),
                )
            }
            "--write-timeout-ms" => {
                write_timeout_ms = Some(
                    args.next()
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| usage()),
                )
            }
            "--url" => lt_url = Some(args.next().unwrap_or_else(|| usage())),
            "--concurrency" => {
                lt_concurrency = Some(
                    args.next()
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| usage()),
                )
            }
            "--requests" => {
                lt_requests = Some(
                    args.next()
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| usage()),
                )
            }
            "--timeout-ms" => {
                lt_timeout_ms = Some(
                    args.next()
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| usage()),
                )
            }
            "--bench-out" => {
                bench_out = Some(args.next().map(Into::into).unwrap_or_else(|| usage()))
            }
            "--open-loop" => lt_open_loop = true,
            "--rate-rps" => {
                lt_rate_rps = Some(
                    args.next()
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| usage()),
                )
            }
            "--baseline" => {
                bench_baseline = Some(args.next().map(Into::into).unwrap_or_else(|| usage()))
            }
            "--rate" => chaos_rates.push(
                args.next()
                    .and_then(|v| v.parse().ok())
                    .filter(|r| (0.0..=1.0).contains(r))
                    .unwrap_or_else(|| usage()),
            ),
            "--seeds" => {
                chaos_opts.seeds = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--fail-threshold" => {
                fail_threshold = Some(
                    args.next()
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| usage()),
                )
            }
            "--help" | "-h" => usage(),
            other if other.starts_with('-') => usage(),
            other => wanted.push(other.to_string()),
        }
    }
    if wanted.is_empty() {
        usage();
    }

    let mut cfg = ExperimentConfig::default();

    // The lint subcommand takes over the whole invocation: it reads
    // source, not simulation, and mirrors the standalone `dynamips-lint`
    // binary (and its 0/1/2 exit contract).
    if wanted[0] == "lint" {
        if wanted.len() != 1 {
            usage();
        }
        let format = match lint_format.as_deref() {
            None => dynamips_lint::Format::Text,
            Some(word) => dynamips_lint::Format::parse(word).unwrap_or_else(|| usage()),
        };
        let Some(root) = std::env::current_dir()
            .ok()
            .and_then(|cwd| dynamips_lint::find_root(&cwd))
        else {
            eprintln!("dynamips lint: no lint.toml found above the current directory");
            std::process::exit(EXIT_USAGE);
        };
        let config_text = match std::fs::read_to_string(root.join("lint.toml")) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("dynamips lint: cannot read lint.toml: {e}");
                std::process::exit(EXIT_USAGE);
            }
        };
        match dynamips_lint::run(&root, &config_text, format, true) {
            Ok(outcome) => {
                print!("{}", outcome.report);
                if outcome.denies > 0 {
                    std::process::exit(EXIT_RUN_FAILURE);
                }
            }
            Err(e) => {
                eprintln!("dynamips lint: {e}");
                std::process::exit(EXIT_USAGE);
            }
        }
        return;
    }
    if lint_format.is_some() {
        // --format only means something to `lint`.
        usage();
    }

    // The chaos sweep takes over the whole invocation.
    if wanted[0] == "chaos" {
        if wanted.len() != 1 {
            usage();
        }
        // Reference scale: the smallest configuration whose shape
        // predicates are all known to hold on uncorrupted data.
        cfg = ExperimentConfig {
            seed: seed.unwrap_or(2020),
            atlas_scale: atlas_scale.unwrap_or(0.2),
            cdn_scale: cdn_scale.unwrap_or(0.15),
        };
        if !chaos_rates.is_empty() {
            chaos_opts.rates = chaos_rates;
        }
        if let Some(t) = fail_threshold {
            chaos_opts.fail_threshold = t;
        }
        eprintln!(
            "[dynamips] chaos sweep over rates {:?} ({} seeds each)...",
            chaos_opts.rates, chaos_opts.seeds
        );
        let outcome = chaos::run(&cfg, &chaos_opts);
        println!("{}", outcome.text);
        if !outcome.ok {
            std::process::exit(EXIT_RUN_FAILURE);
        }
        return;
    }

    // The network-chaos serving sweep takes over the whole invocation.
    if wanted[0] == "chaos-serve" {
        if wanted.len() != 1 {
            usage();
        }
        // A deliberately small scale: the sweep rebuilds a session per
        // rate, and it measures fault handling, not engine throughput.
        cfg = ExperimentConfig {
            seed: seed.unwrap_or(7),
            atlas_scale: atlas_scale.unwrap_or(0.02),
            cdn_scale: cdn_scale.unwrap_or(0.02),
        };
        let mut cs_opts = chaos_serve::ChaosServeOptions::default();
        if !chaos_rates.is_empty() {
            cs_opts.rates = chaos_rates;
        }
        if let Some(n) = lt_requests {
            cs_opts.requests = n;
        }
        if let Some(ms) = lt_timeout_ms {
            cs_opts.timeout_ms = ms;
        }
        if let Some(t) = fail_threshold {
            cs_opts.fail_threshold = t;
        }
        // Usage errors exit 2 before any socket is bound or world built.
        if cs_opts.rates.is_empty() || cs_opts.requests == 0 || cs_opts.timeout_ms == 0 {
            eprintln!("chaos-serve: --rate, --requests, --timeout-ms must be >= 1");
            std::process::exit(EXIT_USAGE);
        }
        let bench_path = bench_out.unwrap_or_else(|| "BENCH_chaos_serve.json".into());
        let probe_dir = match bench_path.parent() {
            Some(p) if !p.as_os_str().is_empty() => p.to_path_buf(),
            _ => std::path::PathBuf::from("."),
        };
        let probe = probe_dir.join(".dynamips-write-probe");
        if let Err(e) = std::fs::write(&probe, b"").and_then(|()| std::fs::remove_file(&probe)) {
            eprintln!(
                "chaos-serve: --bench-out {} is not writable: {e}",
                bench_path.display()
            );
            std::process::exit(EXIT_USAGE);
        }
        eprintln!(
            "[dynamips] chaos-serve sweep over rates {:?} ({} request(s) each)...",
            cs_opts.rates, cs_opts.requests
        );
        let outcome = chaos_serve::run(&cfg, &cs_opts, engine::worker_count(threads));
        print!("{}", outcome.text);
        match std::fs::write(&bench_path, outcome.perf.to_json()) {
            Ok(()) => eprintln!("[dynamips] wrote {}", bench_path.display()),
            Err(e) => {
                eprintln!("failed to write {}: {e}", bench_path.display());
                std::process::exit(EXIT_RUN_FAILURE);
            }
        }
        if !outcome.ok {
            std::process::exit(EXIT_RUN_FAILURE);
        }
        return;
    }

    // The serving layer takes over the whole invocation: start the HTTP
    // server over a warm engine and block until `GET /shutdown` drains it.
    if wanted[0] == "serve" {
        if wanted.len() != 1 {
            usage();
        }
        // Reference scale by default: small enough that a cold artifact
        // request warms in seconds, shapes known to hold.
        cfg = ExperimentConfig {
            seed: seed.unwrap_or(2020),
            atlas_scale: atlas_scale.unwrap_or(0.2),
            cdn_scale: cdn_scale.unwrap_or(0.15),
        };
        let serve_cfg = dynamips_serve::ServeConfig {
            workers: serve_workers.unwrap_or(4),
            queue_cap: queue_cap.unwrap_or(64),
            max_conns: max_conns.unwrap_or(256),
            read_timeout_ms: read_timeout_ms.unwrap_or(5_000),
            write_timeout_ms: write_timeout_ms.unwrap_or(5_000),
            ..dynamips_serve::ServeConfig::default()
        };
        // Usage errors exit 2 before any socket is bound.
        if serve_cfg.workers == 0
            || serve_cfg.queue_cap == 0
            || serve_cfg.max_conns == 0
            || cache_cap == Some(0)
        {
            eprintln!("serve: --serve-workers, --queue, --max-conns, --cache-cap must be >= 1");
            std::process::exit(EXIT_USAGE);
        }
        let metrics = std::sync::Arc::new(dynamips_serve::Metrics::new());
        let handler = std::sync::Arc::new(service::ArtifactService::over_engine(
            cfg,
            engine::worker_count(threads),
            cache_cap.unwrap_or(4),
            std::sync::Arc::clone(&metrics),
        ));
        let addr = serve_addr.unwrap_or_else(|| "127.0.0.1:8311".to_string());
        let server = match dynamips_serve::Server::start(&addr, serve_cfg, handler, metrics) {
            Ok(server) => server,
            Err(e) => {
                eprintln!("serve: cannot bind {addr}: {e}");
                std::process::exit(EXIT_RUN_FAILURE);
            }
        };
        // The resolved address goes to stdout so scripts driving an
        // ephemeral-port server (--addr 127.0.0.1:0) can scrape it.
        println!("dynamips-serve listening on http://{}", server.local_addr());
        use std::io::Write as _;
        let _ = std::io::stdout().flush();
        eprintln!(
            "[dynamips] serving seed {} scales {}/{}; GET /shutdown to drain and exit",
            cfg.seed, cfg.atlas_scale, cfg.cdn_scale
        );
        let summary = server.join();
        eprintln!(
            "[dynamips] serve drained: {} served, {} rejected, {} disconnect(s)",
            summary.served, summary.rejected, summary.disconnects
        );
        return;
    }

    // The load generator takes over the whole invocation.
    if wanted[0] == "loadtest" {
        if wanted.len() != 1 {
            usage();
        }
        let Some(url) = lt_url else {
            eprintln!("loadtest: --url is required");
            std::process::exit(EXIT_USAGE);
        };
        let ltcfg = dynamips_serve::LoadtestConfig {
            url,
            concurrency: lt_concurrency.unwrap_or(16),
            requests: lt_requests.unwrap_or(100),
            timeout_ms: lt_timeout_ms.unwrap_or(10_000),
            open_loop: lt_open_loop,
            rate_rps: lt_rate_rps.unwrap_or(0.0),
            seed: seed.unwrap_or(42),
        };
        // Usage errors exit 2 before any socket is opened.
        if ltcfg.concurrency == 0 || ltcfg.requests == 0 {
            eprintln!("loadtest: --concurrency and --requests must be >= 1");
            std::process::exit(EXIT_USAGE);
        }
        if ltcfg.open_loop && !(ltcfg.rate_rps.is_finite() && ltcfg.rate_rps > 0.0) {
            eprintln!("loadtest: --open-loop requires --rate-rps R with R > 0");
            std::process::exit(EXIT_USAGE);
        }
        if !ltcfg.open_loop && lt_rate_rps.is_some() {
            eprintln!("loadtest: --rate-rps only means something with --open-loop");
            std::process::exit(EXIT_USAGE);
        }
        if let Err(e) = dynamips_serve::client::split_url(&ltcfg.url) {
            eprintln!("loadtest: {e}");
            std::process::exit(EXIT_USAGE);
        }
        let bench_path = bench_out.unwrap_or_else(|| "BENCH_serve.json".into());
        let probe_dir = match bench_path.parent() {
            Some(p) if !p.as_os_str().is_empty() => p.to_path_buf(),
            _ => std::path::PathBuf::from("."),
        };
        let probe = probe_dir.join(".dynamips-write-probe");
        if let Err(e) = std::fs::write(&probe, b"").and_then(|()| std::fs::remove_file(&probe)) {
            eprintln!(
                "loadtest: --bench-out {} is not writable: {e}",
                bench_path.display()
            );
            std::process::exit(EXIT_USAGE);
        }
        match dynamips_serve::run_loadtest(&ltcfg) {
            Ok(report) => {
                print!("{}", report.render_text());
                match std::fs::write(&bench_path, report.to_perf_record().to_json()) {
                    Ok(()) => eprintln!("[dynamips] wrote {}", bench_path.display()),
                    Err(e) => {
                        eprintln!("failed to write {}: {e}", bench_path.display());
                        std::process::exit(EXIT_RUN_FAILURE);
                    }
                }
                if !report.all_ok() {
                    eprintln!("loadtest: not every request was answered 2xx");
                    std::process::exit(EXIT_RUN_FAILURE);
                }
            }
            Err(e) => {
                eprintln!("loadtest: {e}");
                std::process::exit(EXIT_RUN_FAILURE);
            }
        }
        return;
    }

    // Bench-record validation: parse a dynamips-bench-v1 document.
    if wanted[0] == "bench-check" {
        let (Some(path), 2) = (wanted.get(1), wanted.len()) else {
            usage()
        };
        let parsed = std::fs::read_to_string(path)
            .map_err(|e| e.to_string())
            .and_then(|text| dynamips_core::perf::PerfRecord::parse(&text));
        let record = match parsed {
            Ok(record) => {
                println!(
                    "{path}: dynamips-bench-v1 ok ({} phase(s), {} artifact entr(ies), {:.1} ms total)",
                    record.phases.len(),
                    record.artifacts.len(),
                    record.total_ms
                );
                record
            }
            Err(e) => {
                eprintln!("bench-check {path}: {e}");
                std::process::exit(EXIT_RUN_FAILURE);
            }
        };
        // With --baseline, enforce the regression thresholds it encodes:
        // `-ms` phases are ceilings, `-rps` phases are floors.
        if let Some(bpath) = bench_baseline {
            let baseline = std::fs::read_to_string(&bpath)
                .map_err(|e| e.to_string())
                .and_then(|text| dynamips_core::perf::PerfRecord::parse(&text));
            let baseline = match baseline {
                Ok(b) => b,
                Err(e) => {
                    eprintln!("bench-check: baseline {}: {e}", bpath.display());
                    std::process::exit(EXIT_RUN_FAILURE);
                }
            };
            let violations = dynamips_core::perf::regression_violations(&record, &baseline);
            if violations.is_empty() {
                println!("{path}: within baseline {}", bpath.display());
            } else {
                for v in &violations {
                    eprintln!("bench-check {path}: regression: {v}");
                }
                std::process::exit(EXIT_RUN_FAILURE);
            }
        }
        return;
    }

    if let Some(s) = seed {
        cfg.seed = s;
    }
    if let Some(s) = atlas_scale {
        cfg.atlas_scale = s;
    }
    if let Some(s) = cdn_scale {
        cfg.cdn_scale = s;
    }

    let ran_all = wanted.iter().any(|w| w == "all");
    if ran_all {
        wanted = engine::ATLAS_ARTIFACTS
            .iter()
            .chain(engine::CDN_ARTIFACTS.iter())
            .map(|s| s.to_string())
            .chain(std::iter::once("claims".to_string()))
            .chain(std::iter::once("check".to_string()))
            .chain(engine::EXTENDED_ARTIFACTS.iter().map(|s| s.to_string()))
            .collect();
    }

    // Dataset dumps take a path operand and short-circuit.
    if wanted[0] == "dump-atlas" || wanted[0] == "dump-cdn" {
        let Some(path) = wanted.get(1) else { usage() };
        let result = if wanted[0] == "dump-atlas" {
            extended::dump_atlas(&cfg, std::path::Path::new(path))
        } else {
            extended::dump_cdn(&cfg, std::path::Path::new(path))
        };
        match result {
            Ok(msg) => println!("{msg}"),
            Err(e) => {
                eprintln!("dump failed: {e}");
                std::process::exit(EXIT_RUN_FAILURE);
            }
        }
        return;
    }

    // Validate the whole request *before* computing anything: a typo'd
    // artifact or an unwritable --out must not cost minutes of analysis.
    for artifact in &wanted {
        if !engine::is_known_artifact(artifact) {
            eprintln!("unknown artifact {artifact:?}");
            usage();
        }
    }
    if let Some(dir) = &out_dir {
        let probe = dir.join(".dynamips-write-probe");
        if let Err(e) = std::fs::create_dir_all(dir)
            .and_then(|()| std::fs::write(&probe, b""))
            .and_then(|()| std::fs::remove_file(&probe))
        {
            eprintln!("--out {} is not writable: {e}", dir.display());
            std::process::exit(EXIT_RUN_FAILURE);
        }
    }

    let workers = engine::worker_count(threads);
    eprintln!(
        "[dynamips] engine: {} artifact(s), {} worker(s), seed {}, scales {}/{}",
        wanted.len(),
        workers,
        cfg.seed,
        cfg.atlas_scale,
        cfg.cdn_scale
    );
    let output = engine::run(&cfg, &wanted, workers);

    let mut run_failed = false;
    for artifact in &output.artifacts {
        println!("{}", "=".repeat(72));
        println!("{}", artifact.text);
        if !artifact.ok {
            run_failed = true;
        }
        if let Some(dir) = &out_dir {
            if let Err(e) = std::fs::create_dir_all(dir).and_then(|()| {
                std::fs::write(dir.join(format!("{}.txt", artifact.name)), &artifact.text)
            }) {
                eprintln!("failed to write {}.txt: {e}", artifact.name);
                std::process::exit(EXIT_RUN_FAILURE);
            }
        }
    }

    // Timings go to stderr (and the bench record to disk) so stdout stays
    // byte-identical across worker counts and --timings settings.
    if timings {
        eprintln!("{}", engine::render_timings(&output.perf));
    }
    if timings || ran_all {
        let path = out_dir
            .as_deref()
            .unwrap_or_else(|| std::path::Path::new("."))
            .join("BENCH_all.json");
        match std::fs::write(&path, output.perf.to_json()) {
            Ok(()) => eprintln!("[dynamips] wrote {}", path.display()),
            Err(e) => {
                eprintln!("failed to write {}: {e}", path.display());
                std::process::exit(EXIT_RUN_FAILURE);
            }
        }
    }

    if run_failed {
        eprintln!("[dynamips] self-check failed");
        std::process::exit(EXIT_RUN_FAILURE);
    }
}
