//! Self-check: evaluate the paper-shape predicates against a fresh
//! regeneration and report PASS/FAIL per shape.
//!
//! The same predicates are enforced in `tests/paper_shapes.rs`; this
//! in-binary version lets a user validate any seed/scale combination
//! (`dynamips --seed 7 --atlas-scale 0.5 check`) without the test harness.

use crate::context::{AtlasAnalysis, CdnAnalysis};
use dynamips_core::durations::detect_period;
use dynamips_core::report::TextTable;
use dynamips_core::stats::quantile;
use dynamips_routing::Rir;

/// One shape predicate result.
pub struct ShapeCheck {
    /// Which artifact the shape belongs to.
    pub artifact: &'static str,
    /// Human-readable statement of the shape.
    pub shape: String,
    /// Whether it held.
    pub pass: bool,
    /// The measured value(s), for diagnosis.
    pub measured: String,
}

fn check(
    artifact: &'static str,
    shape: impl Into<String>,
    pass: bool,
    measured: impl Into<String>,
) -> ShapeCheck {
    ShapeCheck {
        artifact,
        shape: shape.into(),
        pass,
        measured: measured.into(),
    }
}

/// Evaluate every shape predicate.
pub fn run_checks(a: &AtlasAnalysis, c: &CdnAnalysis) -> Vec<ShapeCheck> {
    let mut out = run_checks_atlas_only(a);
    run_checks_cdn(c, &mut out);
    out
}

/// The Atlas-only shape predicates (everything except the CDN figures).
/// Split out so seed-robustness tests can sweep seeds without paying for
/// a CDN world per seed.
pub fn run_checks_atlas_only(a: &AtlasAnalysis) -> Vec<ShapeCheck> {
    let mut out = Vec::new();

    // --- Figure 1 ---
    for (name, period) in [
        ("DTAG", 24u64),
        ("Orange", 168),
        ("BT", 336),
        ("Proximus", 36),
    ] {
        let detected = a
            .by_name(name)
            .and_then(|(_, s)| detect_period(&s.v4_durations_nds, 0.06, 0.4))
            .map(|p| p.period_hours);
        let lo = (period as f64 * 0.9) as u64;
        let hi = (period as f64 * 1.1) as u64;
        out.push(check(
            "fig1",
            format!("{name} renumbers IPv4 every ~{period}h (non-dual-stack)"),
            detected.map(|d| (lo..=hi).contains(&d)).unwrap_or(false),
            detected
                .map(|d| format!("{d}h"))
                .unwrap_or_else(|| "none".into()),
        ));
    }
    if let Some((_, s)) = a.by_name("Orange") {
        let nds = s.v4_durations_nds.cumulative_ttf_at(&[7 * 24])[0];
        let ds = s.v4_durations_ds.cumulative_ttf_at(&[7 * 24])[0];
        out.push(check(
            "fig1",
            "Orange dual-stack v4 outlasts non-dual-stack",
            ds <= nds + 0.02,
            format!("TTF@1w: DS {ds:.2} vs NDS {nds:.2}"),
        ));
    }

    // --- Interplay ---
    let sim = |name: &str| {
        a.by_name(name)
            .map(|(_, s)| s.cooccurrence.simultaneity())
            .unwrap_or(0.0)
    };
    out.push(check(
        "claims",
        "DTAG v4/v6 changes mostly simultaneous",
        sim("DTAG") > 0.75,
        format!("{:.0}%", 100.0 * sim("DTAG")),
    ));
    out.push(check(
        "claims",
        "Comcast v4/v6 changes mostly independent",
        sim("Comcast") < 0.5,
        format!("{:.0}%", 100.0 * sim("Comcast")),
    ));

    // --- Table 2 ---
    for name in ["DTAG", "Orange", "Versatel", "BT"] {
        if let Some((_, s)) = a.by_name(name) {
            out.push(check(
                "table2",
                format!("{name}: v6 crosses BGP prefixes far less than v4"),
                s.crossing.pct_v6_diff_bgp() < 10.0
                    && s.crossing.pct_v4_diff_bgp() > s.crossing.pct_v6_diff_bgp(),
                format!(
                    "v4 {:.0}% vs v6 {:.0}%",
                    s.crossing.pct_v4_diff_bgp(),
                    s.crossing.pct_v6_diff_bgp()
                ),
            ));
        }
    }

    // --- Figures 5/6/8 ---
    if let Some((_, s)) = a.by_name("DTAG") {
        let below24: u64 = s.cpl.changes[..24].iter().sum();
        let high: u64 = s.cpl.changes[56..].iter().sum();
        out.push(check(
            "fig5",
            "DTAG: no CPL below /24; scrambler changes at CPL >= 56",
            below24 == 0 && high > 0,
            format!("<24: {below24}, >=56: {high}"),
        ));
        // The DTAG /64 population is bimodal (stabilized lines see a
        // handful of /64s; daily renumberers see hundreds), and at sampled
        // scales the median teeters between the modes from seed to seed.
        // The 75th percentile sits firmly inside the renumbering mode, so
        // the predicate is stable across seeds at any given scale.
        out.push(check(
            "fig8",
            "DTAG probes see few unique /40s but many /64s",
            s.pools.cdf_at(3, 5) > 0.9 && s.pools.quantile(0, 0.75) > 50.0,
            format!(
                "P(<=5 /40s) = {:.2}, p75 /64s = {:.0}",
                s.pools.cdf_at(3, 5),
                s.pools.quantile(0, 0.75)
            ),
        ));
    }
    for (name, len) in [
        ("Orange", 56u8),
        ("Sky U.K.", 56),
        ("Kabel DE", 62),
        ("Netcologne", 48),
        ("Comcast", 60),
    ] {
        let mode = a.by_name(name).and_then(|(_, s)| s.inferred.mode());
        out.push(check(
            "fig6",
            format!("{name} delegates /{len}s (modal inference)"),
            mode == Some(len),
            mode.map(|m| format!("/{m}"))
                .unwrap_or_else(|| "none".into()),
        ));
    }
    out.push(check(
        "fig9",
        "global inference spikes at /56",
        a.global_inferred.mode() == Some(56),
        a.global_inferred
            .mode()
            .map(|m| format!("/{m}"))
            .unwrap_or_else(|| "none".into()),
    ));

    out
}

/// The CDN-side shape predicates, appended to `out`.
fn run_checks_cdn(c: &CdnAnalysis, out: &mut Vec<ShapeCheck>) {
    let fixed: Vec<f64> = c
        .runs
        .iter()
        .filter(|r| !r.mobile)
        .map(|r| r.days as f64)
        .collect();
    let mobile: Vec<f64> = c
        .runs
        .iter()
        .filter(|r| r.mobile)
        .map(|r| r.days as f64)
        .collect();
    let f50 = quantile(&fixed, 0.5).unwrap_or(0.0);
    let m50 = quantile(&mobile, 0.5).unwrap_or(f64::INFINITY);
    out.push(check(
        "fig3",
        "fixed associations dwarf mobile at the median",
        f50 >= 15.0 * m50,
        format!("fixed {f50:.0}d vs mobile {m50:.0}d"),
    ));
    let mobile_peak = c.mobile_degree.weighted_peak(6, 2).unwrap_or(0.0);
    let fixed_peak = c.fixed_degree.weighted_peak(6, 2).unwrap_or(f64::INFINITY);
    out.push(check(
        "fig4",
        "mobile /24s multiplex orders of magnitude more /64s",
        mobile_peak > 20.0 * fixed_peak,
        format!("mobile {mobile_peak:.0} vs fixed {fixed_peak:.0}"),
    ));
    out.push(check(
        "fig4",
        "most mobile /64s associate with a single /24",
        c.mobile_degree.p64_degree_one_fraction > 0.75,
        format!("{:.0}%", 100.0 * c.mobile_degree.p64_degree_one_fraction),
    ));
    let inf = |r: Rir| {
        c.nibble_by_rir
            .get(&r)
            .map(|n| n.inferable_fraction())
            .unwrap_or(0.0)
    };
    out.push(check(
        "fig7",
        "LACNIC is the low-inferability outlier; RIPE & AFRINIC high",
        inf(Rir::Lacnic) < 0.35 && inf(Rir::RipeNcc) > 0.55 && inf(Rir::Afrinic) > 0.55,
        format!(
            "LACNIC {:.0}%, RIPE {:.0}%, AFRINIC {:.0}%",
            100.0 * inf(Rir::Lacnic),
            100.0 * inf(Rir::RipeNcc),
            100.0 * inf(Rir::Afrinic)
        ),
    ));
    out.push(check(
        "fig7",
        "mobile /64s show no consistent trailing zeros",
        c.mobile_nibble.inferable_fraction() < 0.15,
        format!("{:.1}%", 100.0 * c.mobile_nibble.inferable_fraction()),
    ));
}

/// Render the check table; the final line summarizes pass/fail counts.
pub fn render(a: &AtlasAnalysis, c: &CdnAnalysis) -> String {
    render_and_ok(a, c).0
}

/// Like [`render`], but also report whether every shape held — the binary
/// turns a failed self-check into exit code 1.
pub fn render_and_ok(a: &AtlasAnalysis, c: &CdnAnalysis) -> (String, bool) {
    let checks = run_checks(a, c);
    let mut t = TextTable::new(&["artifact", "shape", "measured", "result"]);
    let mut passed = 0usize;
    for ch in &checks {
        if ch.pass {
            passed += 1;
        }
        t.row(&[
            ch.artifact.to_string(),
            ch.shape.clone(),
            ch.measured.clone(),
            if ch.pass { "PASS" } else { "FAIL" }.to_string(),
        ]);
    }
    let text = format!(
        "Paper-shape self-check ({} of {} shapes hold):\n\n{}",
        passed,
        checks.len(),
        t.render()
    );
    (text, passed == checks.len())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::ExperimentConfig;

    #[test]
    fn shape_checks_pass_at_reference_scale() {
        let cfg = ExperimentConfig {
            seed: 2020,
            atlas_scale: 0.2,
            cdn_scale: 0.15,
        };
        let a = AtlasAnalysis::compute(&cfg);
        let c = CdnAnalysis::compute(&cfg);
        let checks = run_checks(&a, &c);
        assert!(checks.len() >= 18);
        let failures: Vec<String> = checks
            .iter()
            .filter(|c| !c.pass)
            .map(|c| format!("{}: {} ({})", c.artifact, c.shape, c.measured))
            .collect();
        assert!(
            failures.is_empty(),
            "failed shapes:\n{}",
            failures.join("\n")
        );
        let text = render(&a, &c);
        assert!(text.contains("PASS"));
    }

    /// Regression for the fig8 seed-fragility: at the reference Atlas
    /// scale the DTAG /64 predicate must hold regardless of which side of
    /// its bimodal distribution the median lands on. Seed 20201201 is the
    /// historical failure (median /64s = 8); 2020 and 7 are controls.
    #[test]
    fn fig8_shape_is_seed_stable_at_reference_scale() {
        for seed in [2020u64, 20201201, 7] {
            let cfg = ExperimentConfig {
                seed,
                atlas_scale: 0.2,
                cdn_scale: 0.15,
            };
            let a = AtlasAnalysis::compute(&cfg);
            let fig8 = run_checks_atlas_only(&a)
                .into_iter()
                .find(|c| c.artifact == "fig8")
                .expect("fig8 shape present");
            assert!(fig8.pass, "seed {seed}: fig8 failed ({})", fig8.measured);
        }
    }
}
