//! Extended experiments beyond the paper's figures: the Section-6
//! applications, run against the simulated ground truth.
//!
//! Unlike the `table*`/`fig*` artifacts, these need per-probe histories
//! or ground-truth subscriber identity, which the streaming figure
//! pipeline deliberately discards. Each artifact has two entry points:
//! a `*(cfg)` convenience that builds its own world, and a `*_with(...)`
//! form taking a pre-built world (and, where applicable, pre-collected
//! [`clean_histories`]) so the engine can share one world and one
//! history collection across all of them.

use crate::context::ExperimentConfig;
use dynamips_atlas::{AtlasCollector, AtlasConfig};
use dynamips_cdn::{CdnCollector, CdnConfig};
use dynamips_core::anonymize::recommend_truncation;
use dynamips_core::blocklist::{sweep_policies, BlockPolicy};
use dynamips_core::changes::ProbeHistory;
use dynamips_core::hitlist::ScanPlan;
use dynamips_core::poolinfer::infer_pool_boundary;
use dynamips_core::report::TextTable;
use dynamips_core::sanitize::{sanitize_probe, SanitizeConfig, SanitizeOutcome, SanitizeReport};
use dynamips_netaddr::Ipv6Prefix;
use dynamips_netsim::profiles::atlas_world;
use dynamips_netsim::time::{SimTime, Window};
use dynamips_netsim::World;
use dynamips_routing::Asn;
use std::collections::BTreeMap;

/// The ASes the extended experiments focus on.
const FOCUS_ASES: [&str; 5] = ["DTAG", "Orange", "Comcast", "LGI", "Netcologne"];

/// Clean per-probe histories grouped by AS — the shared input of the
/// history-driven extended artifacts.
pub type CleanHistories = BTreeMap<Asn, Vec<ProbeHistory>>;

/// Collect clean per-probe histories, grouped by AS.
pub fn clean_histories(world: &World, window: Window) -> CleanHistories {
    let collector = AtlasCollector::new(world, window, AtlasConfig::default());
    let cfg = SanitizeConfig::default();
    let mut report = SanitizeReport::default();
    let mut out: BTreeMap<Asn, Vec<ProbeHistory>> = BTreeMap::new();
    collector.for_each_probe(|series| {
        if let SanitizeOutcome::Clean(hs) =
            sanitize_probe(&series, world.routing(), &cfg, &mut report)
        {
            for h in hs {
                out.entry(h.asn).or_default().push(h);
            }
        }
    });
    out
}

/// Year-over-year evolution of assignment durations (Section 3.2,
/// "Evolution over time").
pub fn evolution(cfg: &ExperimentConfig) -> String {
    let world = atlas_world(cfg.seed, cfg.atlas_scale);
    let by_as = clean_histories(&world, Window::atlas_paper());
    evolution_with(&world, &by_as)
}

/// [`evolution`] against a pre-built world and history collection.
pub fn evolution_with(world: &World, by_as: &CleanHistories) -> String {
    use dynamips_core::evolution::YearlySurvival;

    let window = Window::atlas_paper();

    let mut out = String::from(
        "Evolution over time: share of assignments (sampled each July 1st)\n\
         that survive at least 14 more days. Rising shares = durations\n\
         growing, the paper's Section-3.2 finding; this point-in-time\n\
         statistic is robust to the right-censoring that distorts per-year\n\
         duration masses at the window edges.\n\n",
    );
    for name in ["DTAG", "Orange", "Comcast"] {
        let Some((asn, _)) = world
            .registry()
            .iter()
            .map(|i| (i.asn, i.name.clone()))
            .find(|(_, n)| n == name)
        else {
            continue;
        };
        let Some(histories) = by_as.get(&asn) else {
            continue;
        };
        let first_year = window.start.date().year + 1; // first full year
        let last_year = window.end.date().year - 1; // last full year
        let mut v4 = YearlySurvival::new();
        let mut v6 = YearlySurvival::new();
        for h in histories {
            v4.add_subject(&h.v4, first_year, last_year, 14 * 24);
            v6.add_subject(&h.v6, first_year, last_year, 14 * 24);
        }
        out.push_str(&format!("--- {name} ---\n"));
        let mut t = TextTable::new(&["year", "v4 >=2w survival", "v6 >=2w survival", "n"]);
        let v6_by_year: BTreeMap<i32, f64> =
            v6.shares().into_iter().map(|(y, s, _)| (y, s)).collect();
        let mut first_share = None;
        let mut last_share = None;
        for (year, share, n) in v4.shares() {
            if first_share.is_none() {
                first_share = Some(share);
            }
            last_share = Some(share);
            t.row(&[
                year.to_string(),
                format!("{share:.2}"),
                v6_by_year
                    .get(&year)
                    .map(|s| format!("{s:.2}"))
                    .unwrap_or_else(|| "-".into()),
                n.to_string(),
            ]);
        }
        out.push_str(&t.render());
        let delta = match (first_share, last_share) {
            (Some(a), Some(b)) => format!("{:+.2}", b - a),
            _ => "n/a".into(),
        };
        out.push_str(&format!(
            "v4 survival change, first to last full year: {delta}\n\n"
        ));
    }
    out
}

/// Pool-boundary inference vs. the configured ground truth (Section 5.2).
pub fn pool_boundaries(cfg: &ExperimentConfig) -> String {
    let world = atlas_world(cfg.seed, cfg.atlas_scale);
    let by_as = clean_histories(&world, Window::atlas_paper());
    pool_boundaries_with(&world, &by_as)
}

/// [`pool_boundaries`] against a pre-built world and history collection.
pub fn pool_boundaries_with(world: &World, by_as: &CleanHistories) -> String {
    let mut t = TextTable::new(&[
        "AS",
        "probes",
        "inferred pool",
        "ground truth",
        "containment",
    ]);
    for isp in world.isps() {
        if !FOCUS_ASES.contains(&isp.name.as_str()) {
            continue;
        }
        let Some(histories) = by_as.get(&isp.asn) else {
            continue;
        };
        let refs: Vec<&ProbeHistory> = histories.iter().collect();
        let truth = isp
            .v6_plan
            .as_ref()
            .map(|p| format!("/{}", p.region_len))
            .unwrap_or_else(|| "-".into());
        match infer_pool_boundary(&refs, 16..=56, 4, 0.85) {
            Some(b) => {
                t.row(&[
                    isp.name.clone(),
                    b.probes.to_string(),
                    format!("/{}", b.pool_len),
                    truth,
                    format!("{:.2}", b.containment),
                ]);
            }
            None => {
                t.row(&[isp.name.clone(), "0".into(), "-".into(), truth, "-".into()]);
            }
        }
    }
    format!(
        "Pool-boundary inference (Section 5.2): the dynamic-pool grain\nrecovered from probe histories vs. the simulator's configured\nregion length.\n\n{}",
        t.render()
    )
}

/// Scan-plan evaluation (Section 6, active scanning): derive boundaries
/// from the first half of the window, relocate assignments from the second.
pub fn scan_plans(cfg: &ExperimentConfig) -> String {
    let world = atlas_world(cfg.seed, cfg.atlas_scale);
    let by_as = clean_histories(&world, Window::atlas_paper());
    scan_plans_with(&world, &by_as)
}

/// [`scan_plans`] against a pre-built world and history collection.
pub fn scan_plans_with(world: &World, by_as: &CleanHistories) -> String {
    let full = Window::atlas_paper();
    let mid = SimTime(full.start.hours() + full.hours() / 2);

    let mut t = TextTable::new(&[
        "AS",
        "pool",
        "subscr",
        "targets/pool",
        "hit rate",
        "miss: pool",
        "miss: bits",
        "reduction vs BGP",
    ]);
    for isp in world.isps() {
        if !FOCUS_ASES.contains(&isp.name.as_str()) {
            continue;
        }
        let Some(histories) = by_as.get(&isp.asn) else {
            continue;
        };
        // Training data: truncate each history to spans starting before the
        // midpoint. Evaluation data: /64s first seen after it.
        let train: Vec<ProbeHistory> = histories
            .iter()
            .map(|h| {
                let mut t = h.clone();
                t.v6.retain(|s| s.first < mid);
                t.v4.retain(|s| s.first < mid);
                t
            })
            .filter(|h| h.v6.len() >= 2)
            .collect();
        let refs: Vec<&ProbeHistory> = train.iter().collect();
        let seeds: Vec<Ipv6Prefix> = train
            .iter()
            .filter_map(|h| h.v6.last().map(|s| s.value))
            .collect();
        let future: Vec<Ipv6Prefix> = histories
            .iter()
            .flat_map(|h| h.v6.iter().filter(|s| s.first >= mid).map(|s| s.value))
            .collect();
        let Some(plan) = ScanPlan::derive(&refs, &seeds) else {
            t.row(&[
                isp.name.clone(),
                "-".into(),
                "-".into(),
                "-".into(),
                "-".into(),
                "-".into(),
                "-".into(),
                "-".into(),
            ]);
            continue;
        };
        // Analytic coverage over the full target list (enumerating a /36
        // pool of /56 slots would be a million prefixes per pool).
        let rate = plan.coverage(&future);
        // Where do the misses come from: unseeded pools (the subscriber
        // moved to a region no training probe had been in) or non-zero
        // low bits (scrambling/constant CPEs)?
        let mut miss_pool = 0usize;
        let mut miss_bits = 0usize;
        for p in &future {
            if plan.covers(p) {
                continue;
            }
            let in_pool = p
                .supernet(plan.pool_len)
                .map(|sup| plan.pools.contains(&sup))
                .unwrap_or(false);
            if in_pool {
                miss_bits += 1;
            } else {
                miss_pool += 1;
            }
        }
        let pct = |n: usize| {
            if future.is_empty() {
                "-".to_string()
            } else {
                format!("{:.0}%", 100.0 * n as f64 / future.len() as f64)
            }
        };
        let (miss_pool, miss_bits) = (pct(miss_pool), pct(miss_bits));
        // Focus ASes all announce v6, but render a dash rather than panic
        // if one ever lacks a plan or aggregates.
        let reduction = isp
            .v6_plan
            .as_ref()
            .and_then(|p| p.aggregates.first())
            .map(|bgp| format!("{:.0}x", plan.reduction_vs(bgp)))
            .unwrap_or_else(|| "-".into());
        t.row(&[
            isp.name.clone(),
            format!("/{}", plan.pool_len),
            format!("/{}", plan.subscriber_len),
            plan.targets_per_pool.to_string(),
            format!("{:.0}%", 100.0 * rate),
            miss_pool,
            miss_bits,
            reduction,
        ]);
    }
    format!(
        "Scan-plan evaluation (Section 6): boundaries learned on the first\nhalf of the window, hit rate = fraction of second-half /64\nassignments covered by the zero-/64-per-delegation target list.\n(Scrambling-CPE networks cap the achievable hit rate — their /64s\nare not zero-suffixed, which is the paper's evasion point.)\n\n{}",
        t.render()
    )
}

/// Target-generation comparison (Section 2.3 / 6): at an equal probe
/// budget, how do Entropy/IP-lite and 6Gen-lite compare with the
/// boundary-guided plan at relocating second-half /64 assignments?
pub fn target_generation(cfg: &ExperimentConfig) -> String {
    let world = atlas_world(cfg.seed, cfg.atlas_scale);
    let by_as = clean_histories(&world, Window::atlas_paper());
    target_generation_with(&world, &by_as)
}

/// [`target_generation`] against a pre-built world and history collection.
pub fn target_generation_with(world: &World, by_as: &CleanHistories) -> String {
    use dynamips_core::hitlist::hit_rate;
    use dynamips_core::targetgen::{sixgen_targets, NibbleModel};

    let full = Window::atlas_paper();
    let mid = SimTime(full.start.hours() + full.hours() / 2);

    let mut t = TextTable::new(&["AS", "budget", "boundary plan", "entropy-lite", "6gen-lite"]);
    for isp in world.isps() {
        if !["DTAG", "Orange", "LGI", "Netcologne"].contains(&isp.name.as_str()) {
            continue;
        }
        let Some(histories) = by_as.get(&isp.asn) else {
            continue;
        };
        let train: Vec<ProbeHistory> = histories
            .iter()
            .map(|h| {
                let mut t = h.clone();
                t.v6.retain(|s| s.first < mid);
                t
            })
            .filter(|h| !h.v6.is_empty())
            .collect();
        let seeds: Vec<Ipv6Prefix> = train
            .iter()
            .flat_map(|h| h.v6.iter().map(|s| s.value))
            .collect();
        let future: Vec<Ipv6Prefix> = histories
            .iter()
            .flat_map(|h| h.v6.iter().filter(|s| s.first >= mid).map(|s| s.value))
            .collect();
        if seeds.len() < 20 || future.is_empty() {
            continue;
        }

        // Equal probe budget for every method: the boundary plan's own
        // size, capped at 2^19.
        let refs: Vec<&ProbeHistory> = train.iter().filter(|h| h.v6.len() >= 2).collect();
        let plan = ScanPlan::derive(&refs, &seeds);
        let budget = plan
            .as_ref()
            .map(|p| {
                (p.pools.len() as u64)
                    .saturating_mul(p.targets_per_pool)
                    .min(1 << 19) as usize
            })
            .unwrap_or(1 << 16);
        let plan_rate = plan
            .map(|plan| {
                let total = plan.pools.len() as u64 * plan.targets_per_pool;
                if total <= budget as u64 {
                    plan.coverage(&future)
                } else {
                    hit_rate(&plan.targets(budget), &future)
                }
            })
            .map(|r| format!("{:.0}%", 100.0 * r))
            .unwrap_or_else(|| "-".into());
        let entropy_rate = NibbleModel::train(&seeds)
            .map(|m| hit_rate(&m.generate(budget, budget.saturating_mul(2)), &future))
            .map(|r| format!("{:.0}%", 100.0 * r))
            .unwrap_or_else(|| "-".into());
        let sixgen_rate = format!(
            "{:.0}%",
            100.0 * hit_rate(&sixgen_targets(&seeds, 44, budget), &future)
        );
        t.row(&[
            isp.name.clone(),
            budget.to_string(),
            plan_rate,
            entropy_rate,
            sixgen_rate,
        ]);
    }
    format!(
        "Target generation at equal probe budgets: fraction of second-half\n/64 assignments hit. Boundary-guided plans exploit the pool and\ndelegation structure the DynamIPs analysis infers; the seed-driven\ngenerators must rediscover it from address patterns alone.\n{}",
        t.render()
    )
}

/// Host-trackability comparison (Section 2.3): privacy addresses vs. the
/// /64 network prefix vs. EUI-64 relocation, per network.
pub fn tracking_report(cfg: &ExperimentConfig) -> String {
    tracking_report_with(&atlas_world(cfg.seed, cfg.atlas_scale))
}

/// [`tracking_report`] against a pre-built world.
pub fn tracking_report_with(world: &World) -> String {
    use dynamips_core::stats::quantile;
    use dynamips_core::tracking::{evaluate, TrackingKey};

    let window = Window::new(SimTime(0), SimTime(180 * 24));
    let mut t = TextTable::new(&[
        "AS",
        "privacy addr (median days)",
        "/64 prefix",
        "delegated pfx",
        "EUI-64 relocatable in /40",
    ]);
    world.run_each(window, |result| {
        if !["DTAG", "Orange", "Comcast", "Netcologne"].contains(&result.config.name.as_str()) {
            return;
        }
        let deleg_len = result
            .config
            .v6_plan
            .as_ref()
            .map(|p| p.delegated_len)
            .unwrap_or(64);
        let mut privacy = Vec::new();
        let mut p64 = Vec::new();
        let mut deleg = Vec::new();
        let mut relocatable = 0usize;
        let mut total = 0usize;
        for tl in result.timelines.iter().filter(|t| !t.v6.is_empty()) {
            total += 1;
            privacy.push(
                evaluate(
                    tl,
                    TrackingKey::FullAddressPrivacyIid { rotation_hours: 24 },
                )
                .longest_track_hours as f64
                    / 24.0,
            );
            p64.push(evaluate(tl, TrackingKey::Slash64).longest_track_hours as f64 / 24.0);
            deleg.push(
                evaluate(tl, TrackingKey::Truncated(deleg_len)).longest_track_hours as f64 / 24.0,
            );
            if dynamips_core::tracking::eui64_relocatable_within(tl, 40) {
                relocatable += 1;
            }
        }
        if total == 0 {
            return;
        }
        let med = |v: &[f64]| {
            quantile(v, 0.5)
                .map(|m| format!("{m:.0}d"))
                .unwrap_or_else(|| "-".into())
        };
        t.row(&[
            result.config.name.clone(),
            med(&privacy),
            med(&p64),
            med(&deleg),
            format!("{:.0}%", 100.0 * relocatable as f64 / total as f64),
        ]);
    });
    format!(
        "Host trackability over a 180-day window (median longest track per\nidentifier): RFC 4941 privacy addresses rotate daily, yet the /64\nnetwork prefix — and a fortiori the delegated prefix — identifies\nthe subscriber for as long as the ISP keeps the assignment.\n{}",
        t.render()
    )
}

/// Truncation-anonymization audit against ground-truth subscriber identity
/// (Section 6, privacy).
pub fn anonymize_audit(cfg: &ExperimentConfig) -> String {
    anonymize_audit_with(&atlas_world(cfg.seed, cfg.atlas_scale))
}

/// [`anonymize_audit`] against a pre-built world.
pub fn anonymize_audit_with(world: &World) -> String {
    // A 90-day snapshot is what a shared dataset would cover.
    let window = Window::new(SimTime(0), SimTime(90 * 24));

    let mut t = TextTable::new(&["AS", "k@/40", "k@/48", "k@/56", "recommended"]);
    world.run_each(window, |result| {
        if !FOCUS_ASES.contains(&result.config.name.as_str()) {
            return;
        }
        let obs: Vec<(u32, Ipv6Prefix)> = result
            .timelines
            .iter()
            .flat_map(|tl| tl.v6.iter().map(|s| (tl.id.index, s.lan64)))
            .collect();
        if obs.is_empty() {
            return;
        }
        let (profile, best) = recommend_truncation(&obs, (32..=60).step_by(4), 20, 0.05);
        let k_at = |len: u8| {
            profile
                .iter()
                .find(|s| s.len == len)
                .map(|s| s.k_median.to_string())
                .unwrap_or_else(|| "-".into())
        };
        t.row(&[
            result.config.name.clone(),
            k_at(40),
            k_at(48),
            k_at(56),
            best.map(|l| format!("<= /{l}"))
                .unwrap_or_else(|| "none".into()),
        ]);
    });
    format!(
        "Truncation-anonymization audit (Section 6): median subscribers per\ntruncated prefix (k-anonymity) against simulated ground truth, and\nthe longest truncation keeping k >= 20 with < 5% singletons.\nNote Netcologne: /48 buckets are single subscribers.\n\n{}",
        t.render()
    )
}

/// Blocklist policy sweep against ground truth (Section 6, reputation).
pub fn blocklist_sweep(cfg: &ExperimentConfig) -> String {
    blocklist_sweep_with(&atlas_world(cfg.seed, cfg.atlas_scale))
}

/// [`blocklist_sweep`] against a pre-built world.
pub fn blocklist_sweep_with(world: &World) -> String {
    let window = Window::new(SimTime(0), SimTime(120 * 24));
    let mut out = String::from(
        "Blocklist policy sweep (Section 6): a bad actor is blocked at hour\n240; efficacy = useful fraction of the TTL, collateral = innocent\nsubscribers ever covered by the block.\n\n",
    );
    for name in ["DTAG", "Comcast", "Netcologne"] {
        let Some(asn) = world
            .registry()
            .iter()
            .find(|i| i.name == name)
            .map(|i| i.asn)
        else {
            continue;
        };
        let Some(result) = world.run_one(asn, window) else {
            continue;
        };
        // Pick a dual-stack actor; everyone else is innocent.
        let Some(actor_idx) = result.timelines.iter().position(|t| !t.v6.is_empty()) else {
            continue;
        };
        let actor = &result.timelines[actor_idx];
        let others: Vec<_> = result
            .timelines
            .iter()
            .enumerate()
            .filter(|(i, t)| *i != actor_idx && !t.v6.is_empty())
            .map(|(_, t)| t)
            .collect();
        let grid = sweep_policies(
            actor,
            &others,
            SimTime(240),
            &[48, 56, 64],
            &[24, 7 * 24, 30 * 24],
        );
        out.push_str(&format!("--- {name} ---\n"));
        let mut t = TextTable::new(&["block", "TTL", "efficacy", "collateral subs"]);
        for (policy, outcome) in grid {
            t.row(&[
                format!("/{}", policy.block_len),
                dynamips_core::report::duration_label(policy.ttl_hours),
                format!("{:.0}%", 100.0 * outcome.efficacy()),
                outcome.collateral_subscribers.to_string(),
            ]);
        }
        out.push_str(&t.render());
        out.push('\n');
    }
    let _ = BlockPolicy {
        block_len: 56,
        ttl_hours: 24,
    };
    out
}

/// User-counting experiment (Section 2.3): how badly do naive per-address
/// and per-/64 estimators overcount the true subscriber population?
pub fn counting_report(cfg: &ExperimentConfig) -> String {
    counting_report_with(&atlas_world(cfg.seed, cfg.atlas_scale), cfg.seed)
}

/// [`counting_report`] against a pre-built world; `seed` drives the
/// per-home device synthesis.
pub fn counting_report_with(world: &World, seed: u64) -> String {
    use dynamips_cdn::devices::{observe_devices, DeviceConfig};
    use dynamips_core::counting::estimate_counts;

    let window = Window::new(SimTime(0), SimTime(30 * 24));
    let device_cfg = DeviceConfig::default();

    let mut t = TextTable::new(&[
        "AS",
        "subscribers",
        "distinct addrs",
        "distinct /64s",
        "addr overcount",
        "/64 overcount",
    ]);
    world.run_each(window, |result| {
        if !["DTAG", "Orange", "Comcast", "Netcologne"].contains(&result.config.name.as_str()) {
            return;
        }
        let mut obs: Vec<(u32, std::net::Ipv6Addr)> = Vec::new();
        for tl in result.timelines.iter().filter(|t| !t.v6.is_empty()) {
            for o in observe_devices(tl, window, &device_cfg, seed) {
                obs.push((o.subscriber, o.address));
            }
        }
        let Some(e) = estimate_counts(&obs) else {
            return;
        };
        t.row(&[
            result.config.name.clone(),
            e.true_subscribers.to_string(),
            e.distinct_addresses.to_string(),
            e.distinct_p64.to_string(),
            format!("{:.1}x", e.address_overcount),
            format!("{:.1}x", e.p64_overcount),
        ]);
    });
    format!(
        "User counting over 30 days (several devices per home, mostly\nprivacy addresses rotating daily): counting distinct addresses\novercounts massively everywhere; counting /64s is exact on stable\nnetworks but still overcounts by ~the renumbering rate on daily\nrenumberers like DTAG and Netcologne — the Section 2.3 point.\n\n{}",
        t.render()
    )
}

/// Sanitizer accounting and value (Appendix A.1): what the filters remove,
/// and how the duration distribution would be distorted without them.
pub fn sanitizer_report(cfg: &ExperimentConfig) -> String {
    sanitizer_report_with(&atlas_world(cfg.seed, cfg.atlas_scale), cfg.atlas_scale)
}

/// [`sanitizer_report`] against a pre-built world; `atlas_scale` only
/// labels the output.
pub fn sanitizer_report_with(world: &World, atlas_scale: f64) -> String {
    use dynamips_core::changes::{histories_from_records, sandwiched_durations};
    use dynamips_core::durations::DurationSet;

    let window = Window::atlas_paper();
    let collector = AtlasCollector::new(world, window, AtlasConfig::default());
    let scfg = SanitizeConfig::default();
    let mut report = SanitizeReport::default();
    let mut clean = DurationSet::new();
    let mut raw = DurationSet::new();
    collector.for_each_probe(|series| {
        // Raw analysis: spans straight from the echo records, no filters.
        let (v4_raw, _) = histories_from_records(&series.v4, &series.v6);
        raw.extend(sandwiched_durations(&v4_raw));
        if let SanitizeOutcome::Clean(hs) =
            sanitize_probe(&series, world.routing(), &scfg, &mut report)
        {
            for h in hs {
                clean.extend(sandwiched_durations(&h.v4));
            }
        }
    });

    let mut t = TextTable::new(&["filter", "count"]);
    for (label, n) in [
        ("probes in", report.probes_in as u64),
        (
            "test-address records removed",
            report.test_address_records as u64,
        ),
        ("bad tags", report.bad_tag as u64),
        ("atypical NAT", report.atypical_nat as u64),
        ("multihomed", report.multihomed as u64),
        ("split into virtual probes", report.split_probes as u64),
        ("too short", report.too_short as u64),
        ("clean (virtual) probes out", report.probes_out as u64),
    ] {
        t.row(&[label.to_string(), dynamips_core::report::thousands(n)]);
    }

    // Distortion: the multihomed A-B-A-B artifact floods the raw analysis
    // with 1-hour "durations".
    let raw_1h = raw.cumulative_ttf_at(&[2])[0];
    let clean_1h = clean.cumulative_ttf_at(&[2])[0];
    format!(
        "Appendix A.1 sanitizer: per-filter accounting at Atlas scale {:.2}, plus the distortion it prevents.\n\n{}\nfraction of total v4 assignment time in <=2h 'durations':\nraw (no sanitizer):  {raw_1h:.4}\nsanitized:           {clean_1h:.4}\n(multihomed alternation and test addresses fabricate sub-hourly churn;\nthe sanitizer removes virtually all of it)\n",
        atlas_scale,
        t.render()
    )
}

/// Seed-robustness report: the headline shape statistics across several
/// seeds, to show the reproduction does not hinge on one lucky RNG stream.
/// Not part of `all` (it multiplies the Atlas pipeline cost).
pub fn seed_robustness(cfg: &ExperimentConfig) -> String {
    use dynamips_core::durations::detect_period;

    let mut t = TextTable::new(&[
        "seed",
        "DTAG period",
        "DTAG simultaneity",
        "DTAG diff-BGP v4/v6",
        "Orange inference",
        "Netcologne inference",
    ]);
    for offset in 0..3u64 {
        let seed = cfg.seed + offset;
        let a = crate::context::AtlasAnalysis::compute(&crate::context::ExperimentConfig {
            seed,
            ..*cfg
        });
        let dtag = a.by_name("DTAG").map(|(_, s)| s);
        let period = dtag
            .and_then(|s| detect_period(&s.v4_durations_nds, 0.06, 0.4))
            .map(|p| format!("{}h", p.period_hours))
            .unwrap_or_else(|| "-".into());
        let sim = dtag
            .map(|s| format!("{:.0}%", 100.0 * s.cooccurrence.simultaneity()))
            .unwrap_or_else(|| "-".into());
        let bgp = dtag
            .map(|s| {
                format!(
                    "{:.0}%/{:.0}%",
                    s.crossing.pct_v4_diff_bgp(),
                    s.crossing.pct_v6_diff_bgp()
                )
            })
            .unwrap_or_else(|| "-".into());
        let mode = |name: &str| {
            a.by_name(name)
                .and_then(|(_, s)| s.inferred.mode())
                .map(|m| format!("/{m}"))
                .unwrap_or_else(|| "-".into())
        };
        t.row(&[
            seed.to_string(),
            period,
            sim,
            bgp,
            mode("Orange"),
            mode("Netcologne"),
        ]);
    }
    format!(
        "Seed robustness: the headline shapes across three seeds at Atlas\nscale {:.2}.\n\n{}",
        cfg.atlas_scale,
        t.render()
    )
}

/// Export the synthetic Atlas dataset as IP-echo TSV.
pub fn dump_atlas(cfg: &ExperimentConfig, path: &std::path::Path) -> std::io::Result<String> {
    use std::io::Write as _;
    let world = atlas_world(cfg.seed, cfg.atlas_scale);
    let window = Window::atlas_paper();
    let collector = AtlasCollector::new(&world, window, AtlasConfig::default());
    let file = std::fs::File::create(path)?;
    let mut w = std::io::BufWriter::new(file);
    let mut probes = 0usize;
    let mut records = 0usize;
    let mut err: Option<std::io::Error> = None;
    collector.for_each_probe(|series| {
        if err.is_some() {
            return;
        }
        probes += 1;
        records += series.v4.len() + series.v6.len();
        if let Err(e) = w.write_all(
            dynamips_atlas::records::to_tsv(series.probe, &series.v4, &series.v6).as_bytes(),
        ) {
            err = Some(e);
        }
    });
    if let Some(e) = err {
        return Err(e);
    }
    w.flush()?;
    Ok(format!(
        "wrote {records} IP-echo records from {probes} probes to {}",
        path.display()
    ))
}

/// Export the synthetic CDN association dataset as TSV.
pub fn dump_cdn(cfg: &ExperimentConfig, path: &std::path::Path) -> std::io::Result<String> {
    use dynamips_netsim::profiles::cdn_world;
    let world = cdn_world(cfg.seed, cfg.cdn_scale);
    let ds = CdnCollector::new(&world, Window::cdn_paper(), CdnConfig::default()).collect();
    std::fs::write(path, dynamips_cdn::dataset::to_tsv(&ds))?;
    Ok(format!(
        "wrote {} association tuples to {}",
        ds.len(),
        path.display()
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> ExperimentConfig {
        ExperimentConfig::small(3)
    }

    #[test]
    fn evolution_renders_yearly_rows() {
        let text = evolution(&cfg());
        assert!(text.contains("DTAG"));
        assert!(text.contains("2015"), "{text}");
        assert!(text.contains("survival change"));
    }

    #[test]
    fn pool_boundaries_recover_ground_truth_grain() {
        let text = pool_boundaries(&cfg());
        // DTAG's configured region is /40 and should be recovered.
        let dtag_line = text
            .lines()
            .find(|l| l.starts_with("DTAG"))
            .expect("DTAG row");
        assert!(dtag_line.contains("/40"), "{dtag_line}");
    }

    #[test]
    fn scan_plans_hit_future_assignments() {
        let text = scan_plans(&cfg());
        // DTAG churns enough to be plannable at any scale; its hit rate is
        // capped by the scrambling-CPE share (the paper's evasion point),
        // but must be far above zero.
        let dtag = text
            .lines()
            .find(|l| l.starts_with("DTAG"))
            .expect("DTAG row");
        let pct: f64 = dtag
            .split_whitespace()
            .find(|w| w.ends_with('%'))
            .and_then(|w| w.trim_end_matches('%').parse().ok())
            .expect("hit rate cell");
        assert!(pct > 25.0, "{dtag}");
        // Low-churn networks may legitimately be unplannable at tiny
        // scales, but the table must still carry their rows.
        assert!(text.lines().any(|l| l.starts_with("Orange")), "{text}");
    }

    #[test]
    fn anonymize_audit_flags_netcologne() {
        let text = anonymize_audit(&cfg());
        let row = text
            .lines()
            .find(|l| l.starts_with("Netcologne"))
            .expect("Netcologne row");
        // The /48 k-median must be 1 (single subscriber per /48).
        let cells: Vec<&str> = row.split_whitespace().collect();
        assert_eq!(cells[2], "1", "{row}");
    }

    #[test]
    fn blocklist_sweep_renders_grid() {
        let text = blocklist_sweep(&cfg());
        assert!(text.contains("--- DTAG ---"));
        assert!(text.contains("efficacy"));
        assert!(text.contains("/56"));
    }

    #[test]
    fn dumps_write_files() {
        let dir = std::env::temp_dir().join("dynamips-dump-test");
        std::fs::create_dir_all(&dir).unwrap();
        let tiny = ExperimentConfig {
            seed: 4,
            atlas_scale: 0.01,
            cdn_scale: 0.01,
        };
        let atlas_path = dir.join("atlas.tsv");
        let msg = dump_atlas(&tiny, &atlas_path).unwrap();
        assert!(msg.contains("IP-echo records"));
        let parsed =
            dynamips_atlas::records::from_tsv(&std::fs::read_to_string(&atlas_path).unwrap())
                .unwrap();
        assert!(!parsed.is_empty());

        let cdn_path = dir.join("cdn.tsv");
        let msg = dump_cdn(&tiny, &cdn_path).unwrap();
        assert!(msg.contains("association tuples"));
        let parsed =
            dynamips_cdn::dataset::from_tsv(&std::fs::read_to_string(&cdn_path).unwrap()).unwrap();
        assert!(!parsed.is_empty());
    }
}
