//! Atlas-derived artifacts: Tables 1–2, Figures 1, 5, 6, 8 and 9.

use crate::context::AtlasAnalysis;
use dynamips_core::durations::DurationSet;
use dynamips_core::report::{bar_chart, thousands, TextTable};
use dynamips_netsim::YEAR;

/// The ten ASes of Table 1, in the paper's row order.
pub const TABLE1_ASES: [&str; 10] = [
    "DTAG",
    "Comcast",
    "Orange",
    "LGI",
    "Free SAS",
    "Kabel DE",
    "Proximus",
    "Versatel",
    "BT",
    "Netcologne",
];

/// The six ASes featured in Figures 1, 2 and 5.
pub const FIGURE_ASES: [&str; 6] = ["DTAG", "Orange", "Comcast", "LGI", "BT", "Proximus"];

/// The ASes of Figure 6 (Table-1 networks plus Sky UK).
pub const FIG6_ASES: [&str; 11] = [
    "DTAG",
    "Orange",
    "LGI",
    "Comcast",
    "Versatel",
    "Free SAS",
    "Kabel DE",
    "Netcologne",
    "BT",
    "Sky U.K.",
    "Proximus",
];

/// Table 1: per-AS probe counts and observed assignment changes.
pub fn table1(a: &AtlasAnalysis) -> String {
    let mut t = TextTable::new(&[
        "AS",
        "Country",
        "All probes",
        "All v4 changes",
        "DS probes",
        "DS v4 changes",
        "(%)",
        "v6 changes",
    ]);
    for name in TABLE1_ASES {
        let Some((_, s)) = a.by_name(name) else {
            continue;
        };
        let pct = if s.v4_changes_all > 0 {
            format!(
                "{:.0}%",
                100.0 * s.v4_changes_ds as f64 / s.v4_changes_all as f64
            )
        } else {
            "-".to_string()
        };
        t.row(&[
            name.to_string(),
            s.country.clone(),
            thousands(s.probes as u64),
            thousands(s.v4_changes_all),
            thousands(s.ds_probes as u64),
            thousands(s.v4_changes_ds),
            pct,
            thousands(s.v6_changes),
        ]);
    }
    format!(
        "Table 1: assignment changes observed in the simulated RIPE Atlas\n\
         \"IP echo\" dataset ({} clean probes after sanitization).\n\n{}",
        thousands(a.sanitize.probes_out as u64),
        t.render()
    )
}

/// Figure 1: cumulative total time fraction for IPv4 (non-dual-stack /
/// dual-stack) and IPv6 assignment durations in the six featured ASes.
pub fn fig1(a: &AtlasAnalysis) -> String {
    let mut out = String::new();
    for (title, pick) in [
        (
            "IPv4, non dual-stack",
            (|s: &crate::context::AsStats| &s.v4_durations_nds)
                as fn(&crate::context::AsStats) -> &DurationSet,
        ),
        ("IPv4, dual-stack", |s| &s.v4_durations_ds),
        ("IPv6", |s| &s.v6_durations),
    ] {
        out.push_str(&format!("--- {title} ---\n"));
        let mut t = TextTable::new(&[
            "AS (total yrs)",
            "1h",
            "6h",
            "12h",
            "1d",
            "3d",
            "1w",
            "2w",
            "1m",
            "3m",
            "6m",
            "1y",
            "4y",
        ]);
        for name in FIGURE_ASES {
            let Some((_, s)) = a.by_name(name) else {
                continue;
            };
            let set = pick(s);
            let years = set.total_hours() as f64 / YEAR as f64;
            let mut row = vec![format!("{name} ({years:.2})")];
            for (_, v) in set.cumulative_ttf_marks() {
                // Normalize IEEE negative zero for display.
                row.push(format!("{:.2}", if v == 0.0 { 0.0 } else { v }));
            }
            t.row(&row);
        }
        out.push_str(&t.render());
        out.push('\n');
    }
    format!(
        "Figure 1: cumulative total time fraction of assignment durations\n\
         (fraction of total assigned time spent in assignments lasting <= x).\n\n{out}"
    )
}

/// Figure 5: common prefix lengths between subsequent IPv6 /64 assignments.
pub fn fig5(a: &AtlasAnalysis) -> String {
    let mut out = String::from(
        "Figure 5: common prefix lengths (CPL) between subsequent IPv6 /64\n\
         assignments. 'changes' = assignment changes at that CPL,\n\
         'probes' = probes with at least one such change.\n\n",
    );
    for name in FIGURE_ASES {
        let Some((_, s)) = a.by_name(name) else {
            continue;
        };
        out.push_str(&format!(
            "--- {name} (total changes: {}) ---\n",
            thousands(s.cpl.total_changes())
        ));
        let mut t = TextTable::new(&["CPL", "changes", "probes"]);
        for cpl in 0..=64usize {
            if s.cpl.changes[cpl] == 0 {
                continue;
            }
            t.row(&[
                format!("/{cpl}"),
                thousands(s.cpl.changes[cpl]),
                thousands(s.cpl.probes[cpl]),
            ]);
        }
        if t.is_empty() {
            out.push_str("(no IPv6 assignment changes observed)\n\n");
        } else {
            out.push_str(&t.render());
            out.push('\n');
        }
    }
    out
}

/// Figure 6: inferred prefix lengths identifying a subscriber, per ISP.
pub fn fig6(a: &AtlasAnalysis) -> String {
    let mut out = String::from(
        "Figure 6: inferred prefix length identifying a subscriber\n\
         (percentage of probes inferring each length; probes with >= 1 IPv6\n\
         assignment change).\n\n",
    );
    let mut t = TextTable::new(&[
        "AS (probes)",
        "/47-",
        "/48",
        "/52",
        "/56",
        "/60",
        "/62",
        "/63",
        "/64",
    ]);
    for name in FIG6_ASES {
        let Some((_, s)) = a.by_name(name) else {
            continue;
        };
        if s.inferred.total() == 0 {
            continue;
        }
        let below48: f64 = (0..48).map(|l| s.inferred.percentage(l as u8)).sum();
        t.row(&[
            format!("{name} ({})", s.inferred.total()),
            format!("{below48:.0}%"),
            format!("{:.0}%", s.inferred.percentage(48)),
            format!("{:.0}%", s.inferred.percentage(52)),
            format!("{:.0}%", s.inferred.percentage(56)),
            format!("{:.0}%", s.inferred.percentage(60)),
            format!("{:.0}%", s.inferred.percentage(62)),
            format!("{:.0}%", s.inferred.percentage(63)),
            format!("{:.0}%", s.inferred.percentage(64)),
        ]);
    }
    out.push_str(&t.render());
    out
}

/// Figure 8: CDF of unique prefixes of various lengths observed per probe.
pub fn fig8(a: &AtlasAnalysis) -> String {
    let mut out = String::from(
        "Figure 8: unique prefixes of each length observed per probe\n\
         (median count, and fraction of probes seeing <= 5), per AS.\n\n",
    );
    for name in FIGURE_ASES {
        let Some((_, s)) = a.by_name(name) else {
            continue;
        };
        if s.pools.probes() == 0 {
            continue;
        }
        out.push_str(&format!("--- {name} ({} probes) ---\n", s.pools.probes()));
        let mut t = TextTable::new(&["prefix length", "median unique", "P(<=5 unique)"]);
        for (i, len) in dynamips_core::pools::POOL_LENGTHS.iter().enumerate() {
            t.row(&[
                format!("/{len}"),
                format!("{:.1}", s.pools.median(i)),
                format!("{:.2}", s.pools.cdf_at(i, 5)),
            ]);
        }
        out.push_str(&t.render());
        out.push('\n');
    }
    out
}

/// Figure 9: inferred subscriber prefix lengths over all probes.
pub fn fig9(a: &AtlasAnalysis) -> String {
    let items: Vec<(String, f64)> = (40..=64u8)
        .filter(|&l| a.global_inferred.percentage(l) > 0.05)
        .map(|l| (format!("/{l}"), a.global_inferred.percentage(l)))
        .collect();
    format!(
        "Figure 9: inferred prefix lengths identifying a subscriber, all\n\
         probes with >= 1 IPv6 assignment change ({} probes).\n\n{}",
        a.global_inferred.total(),
        bar_chart(&items, 50)
    )
}

/// Table 2: percentage of assignment changes crossing /24 and BGP prefixes.
pub fn table2(a: &AtlasAnalysis) -> String {
    let mut t = TextTable::new(&["AS", "Diff /24", "Diff BGP (v4)", "Diff BGP (v6)"]);
    for name in TABLE1_ASES {
        let Some((_, s)) = a.by_name(name) else {
            continue;
        };
        t.row(&[
            name.to_string(),
            format!("{:.0}%", s.crossing.pct_v4_diff_slash24()),
            format!("{:.0}%", s.crossing.pct_v4_diff_bgp()),
            format!("{:.0}%", s.crossing.pct_v6_diff_bgp()),
        ]);
    }
    format!(
        "Table 2: percentage of changes in assignments across /24 blocks\n\
         and routed BGP prefixes.\n\n{}",
        t.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::ExperimentConfig;

    fn analysis() -> AtlasAnalysis {
        AtlasAnalysis::compute(&ExperimentConfig::small(7))
    }

    #[test]
    fn all_atlas_artifacts_render() {
        let a = analysis();
        for text in [
            table1(&a),
            fig1(&a),
            fig5(&a),
            fig6(&a),
            fig8(&a),
            fig9(&a),
            table2(&a),
        ] {
            assert!(!text.is_empty());
        }
        // Table 1 includes every named AS row.
        let t1 = table1(&a);
        for name in TABLE1_ASES {
            assert!(t1.contains(name), "missing {name} in table 1:\n{t1}");
        }
        let t2 = table2(&a);
        assert!(t2.contains('%'));
    }
}
