//! Shared analysis products for the experiment harness.

use dynamips_atlas::{AtlasCollector, AtlasConfig, ProbeSeries};
use dynamips_cdn::{AssociationDataset, CdnCollector, CdnConfig};
use dynamips_core::association::{association_runs, AssociationRun};
use dynamips_core::cardinality::{degree_stats, DegreeStats};
use dynamips_core::changes::sandwiched_durations;
use dynamips_core::degrade::DegradationReport;
use dynamips_core::dualstack::{co_occurrence, labeled_v4_durations, CoOccurrence};
use dynamips_core::durations::{detect_period, DurationSet};
use dynamips_core::pools::PoolAccumulator;
use dynamips_core::sanitize::{sanitize_probe, SanitizeConfig, SanitizeOutcome, SanitizeReport};
use dynamips_core::spatial::{CplHistogram, CrossingStats};
use dynamips_core::subscriber::{InferredLenDistribution, NibbleCounter};
use dynamips_netsim::profiles::{atlas_world, cdn_world};
use dynamips_netsim::time::Window;
use dynamips_netsim::World;
use dynamips_routing::{Asn, Rir, RoutingTable};
use std::collections::{BTreeMap, HashMap, HashSet};
use std::sync::mpsc::sync_channel;
use std::thread;

/// Harness configuration: seed and dataset scales.
#[derive(Debug, Clone, Copy)]
pub struct ExperimentConfig {
    /// Master seed for world construction and collection.
    pub seed: u64,
    /// Probe-count scale for the Atlas world (1.0 = the paper's Table-1
    /// probe counts).
    pub atlas_scale: f64,
    /// Subscriber-count scale for the CDN world.
    pub cdn_scale: f64,
}

impl Default for ExperimentConfig {
    fn default() -> Self {
        ExperimentConfig {
            seed: 20201201, // CoNEXT'20 opening day
            atlas_scale: 1.0,
            cdn_scale: 1.0,
        }
    }
}

impl ExperimentConfig {
    /// A small configuration for tests (seconds, not minutes).
    pub fn small(seed: u64) -> Self {
        ExperimentConfig {
            seed,
            atlas_scale: 0.06,
            cdn_scale: 0.04,
        }
    }
}

/// Everything the Atlas-derived artifacts need, per AS.
#[derive(Debug, Default)]
pub struct AsStats {
    /// Operator name.
    pub name: String,
    /// Country label.
    pub country: String,
    /// Clean (virtual) probes observed in this AS.
    pub probes: usize,
    /// Clean probes classified dual-stack.
    pub ds_probes: usize,
    /// v4 changes over all clean probes.
    pub v4_changes_all: u64,
    /// v4 changes over dual-stack probes.
    pub v4_changes_ds: u64,
    /// v6 changes over dual-stack probes.
    pub v6_changes: u64,
    /// Sandwiched v4 durations on non-dual-stack assignments.
    pub v4_durations_nds: DurationSet,
    /// Sandwiched v4 durations on dual-stack assignments.
    pub v4_durations_ds: DurationSet,
    /// Sandwiched v6 /64 durations.
    pub v6_durations: DurationSet,
    /// v4/v6 change co-occurrence counters.
    pub cooccurrence: CoOccurrence,
    /// CPL histogram between successive /64 assignments.
    pub cpl: CplHistogram,
    /// Cross-/24 and cross-BGP counters.
    pub crossing: CrossingStats,
    /// Unique-prefix-per-length accumulator (probes with ≥ 1 v6 change).
    pub pools: PoolAccumulator,
    /// Inferred subscriber prefix lengths (probes with ≥ 1 v6 change).
    pub inferred: InferredLenDistribution,
}

impl AsStats {
    /// Fold another shard's accumulators for the same AS into this one.
    /// Every field is a counter or an order-insensitive accumulator, so
    /// merging shard partials in any order reproduces the sequential
    /// accumulation exactly.
    pub fn merge(&mut self, other: &AsStats) {
        if self.name.is_empty() {
            self.name = other.name.clone();
        }
        if self.country.is_empty() {
            self.country = other.country.clone();
        }
        self.probes += other.probes;
        self.ds_probes += other.ds_probes;
        self.v4_changes_all += other.v4_changes_all;
        self.v4_changes_ds += other.v4_changes_ds;
        self.v6_changes += other.v6_changes;
        self.v4_durations_nds.merge(&other.v4_durations_nds);
        self.v4_durations_ds.merge(&other.v4_durations_ds);
        self.v6_durations.merge(&other.v6_durations);
        self.cooccurrence.merge(&other.cooccurrence);
        self.cpl.merge(&other.cpl);
        self.crossing.merge(&other.crossing);
        self.pools.merge(&other.pools);
        self.inferred.merge(&other.inferred);
    }
}

/// One worker's partial accumulation state: everything `compute_with`
/// derives from the probe stream, so shards can be merged afterwards.
#[derive(Default)]
struct ShardAccumulator {
    per_as: BTreeMap<Asn, AsStats>,
    report: SanitizeReport,
    global_inferred: InferredLenDistribution,
    degradation: DegradationReport,
}

impl ShardAccumulator {
    /// Sanitize one probe series and accumulate its clean histories.
    fn accept(&mut self, series: ProbeSeries, routing: &RoutingTable, cfg: &SanitizeConfig) {
        let outcome = sanitize_probe(&series, routing, cfg, &mut self.report);
        let histories = match outcome {
            SanitizeOutcome::Clean(histories) => histories,
            SanitizeOutcome::Rejected(reason) => {
                self.degradation.record("sanitize", reason.class());
                return;
            }
        };
        for h in &histories {
            let stats = self.per_as.entry(h.asn).or_default();
            stats.probes += 1;
            let ds = h.is_dual_stack(DS_COVERAGE);
            if ds {
                stats.ds_probes += 1;
            }

            // Change counts (Table 1).
            let v4_changes = h.v4.len().saturating_sub(1) as u64;
            let v6_changes = h.v6.len().saturating_sub(1) as u64;
            stats.v4_changes_all += v4_changes;
            if ds {
                stats.v4_changes_ds += v4_changes;
                stats.v6_changes += v6_changes;
            }

            // Durations (Figure 1).
            for d in labeled_v4_durations(h, DS_COVERAGE) {
                if d.dual_stack {
                    stats.v4_durations_ds.push(d.hours);
                } else {
                    stats.v4_durations_nds.push(d.hours);
                }
            }
            stats.v6_durations.extend(sandwiched_durations(&h.v6));

            // Interplay (Section 3.2).
            if ds {
                stats.cooccurrence.merge(&co_occurrence(h));
            }

            // Spatial (Figure 5, Table 2).
            stats.cpl.add_probe(h);
            stats.crossing.add_probe(h, routing);

            // Pools and subscriber boundaries (Figures 6, 8, 9) —
            // probes with at least one v6 assignment change.
            if v6_changes >= 1 {
                stats.pools.add_probe(h, routing);
                stats.inferred.add_probe(h);
                self.global_inferred.add_probe(h);
            }
        }
    }

    /// Fold another shard into this one (order-insensitive throughout).
    fn merge(&mut self, other: ShardAccumulator) {
        for (asn, stats) in other.per_as {
            self.per_as.entry(asn).or_default().merge(&stats);
        }
        self.report.merge(&other.report);
        self.global_inferred.merge(&other.global_inferred);
        self.degradation.merge(&other.degradation);
    }
}

/// The full Atlas-side analysis.
pub struct AtlasAnalysis {
    /// Per-AS accumulators.
    pub per_as: BTreeMap<Asn, AsStats>,
    /// Sanitizer accounting.
    pub sanitize: SanitizeReport,
    /// Inferred subscriber prefix lengths over all probes (Figure 9).
    pub global_inferred: InferredLenDistribution,
    /// The collection window.
    pub window: Window,
}

/// Coverage threshold for calling an assignment/probe dual-stack.
const DS_COVERAGE: f64 = 0.8;

impl AtlasAnalysis {
    /// Build the Atlas world, collect every probe, sanitize, accumulate.
    pub fn compute(cfg: &ExperimentConfig) -> AtlasAnalysis {
        let world = atlas_world(cfg.seed, cfg.atlas_scale);
        let mut degradation = DegradationReport::new();
        Self::compute_for_world(&world, 1, &mut degradation)
    }

    /// Collect, sanitize, and accumulate against a pre-built (possibly
    /// cache-shared) Atlas world, sharding the sanitize+accumulate work
    /// across `workers` threads. Probe *generation* stays sequential — the
    /// collector threads one RNG and donor state through the probes — so
    /// parallelism cannot perturb the synthesized series.
    pub fn compute_for_world(
        world: &World,
        workers: usize,
        degradation: &mut DegradationReport,
    ) -> AtlasAnalysis {
        let window = Window::atlas_paper();
        let collector = AtlasCollector::new(world, window, AtlasConfig::default());
        Self::compute_with_workers(
            world,
            window,
            |sink| collector.for_each_probe(sink),
            degradation,
            workers,
        )
    }

    /// Sanitize and accumulate pre-built probe series (e.g. recovered from
    /// a possibly-corrupted TSV dump by the lossy loader) against `world`'s
    /// routing and registry. Sanitizer rejections are recorded in
    /// `degradation` under stage `"sanitize"` with the
    /// [`dynamips_core::sanitize::RejectReason::class`] labels.
    pub fn compute_from_series(
        world: &World,
        window: Window,
        series: impl IntoIterator<Item = ProbeSeries>,
        degradation: &mut DegradationReport,
    ) -> AtlasAnalysis {
        Self::compute_with(
            world,
            window,
            |sink| series.into_iter().for_each(sink),
            degradation,
        )
    }

    /// Streaming core shared by [`AtlasAnalysis::compute`] (collector-fed)
    /// and [`AtlasAnalysis::compute_from_series`] (loader-fed): `for_each`
    /// drives every probe series through the sink exactly once.
    pub fn compute_with(
        world: &World,
        window: Window,
        for_each: impl FnOnce(&mut dyn FnMut(ProbeSeries)),
        degradation: &mut DegradationReport,
    ) -> AtlasAnalysis {
        Self::compute_with_workers(world, window, for_each, degradation, 1)
    }

    /// [`AtlasAnalysis::compute_with`] with the sanitize+accumulate path
    /// sharded across `workers` threads. `for_each` still runs on the
    /// calling thread and its sink sees probes in order; each probe is
    /// dealt round-robin to a worker, and worker partials are merged in
    /// worker order. Every accumulator merge is order-insensitive, so the
    /// result is identical to `workers == 1` for any worker count.
    pub fn compute_with_workers(
        world: &World,
        window: Window,
        for_each: impl FnOnce(&mut dyn FnMut(ProbeSeries)),
        degradation: &mut DegradationReport,
        workers: usize,
    ) -> AtlasAnalysis {
        let sanitize_cfg = SanitizeConfig::default();
        let routing = world.routing();

        let mut acc = if workers <= 1 {
            let mut acc = ShardAccumulator::default();
            let mut sink = |series: ProbeSeries| acc.accept(series, routing, &sanitize_cfg);
            for_each(&mut sink);
            acc
        } else {
            let shards = thread::scope(|scope| {
                let mut senders = Vec::with_capacity(workers);
                let mut handles = Vec::with_capacity(workers);
                for _ in 0..workers {
                    // Bounded queue: backpressure keeps the sequential
                    // generator from outrunning slow shards unboundedly.
                    let (tx, rx) = sync_channel::<ProbeSeries>(128);
                    let cfg = &sanitize_cfg;
                    handles.push(scope.spawn(move || {
                        let mut acc = ShardAccumulator::default();
                        for series in rx {
                            acc.accept(series, routing, cfg);
                        }
                        acc
                    }));
                    senders.push(tx);
                }
                let mut i = 0usize;
                let mut sink = |series: ProbeSeries| {
                    // A send fails only if the shard worker already died;
                    // its panic is re-raised at join below, so the lost
                    // series is moot.
                    let _ = senders[i % workers].send(series);
                    i += 1;
                };
                for_each(&mut sink);
                drop(senders); // close the queues so workers drain and exit
                handles
                    .into_iter()
                    .map(|h| crate::resume_worker(h.join()))
                    .collect::<Vec<_>>()
            });
            let mut merged = ShardAccumulator::default();
            for shard in shards {
                merged.merge(shard);
            }
            merged
        };

        // Prefill AS names/countries so ASes with zero clean probes still
        // render, matching the sequential prefill-then-accumulate order.
        for isp in world.isps() {
            let entry = acc.per_as.entry(isp.asn).or_default();
            entry.name = isp.name.clone();
            entry.country = isp.country.clone();
        }

        // Stripped test-address records are repairs, not probe rejections,
        // so they are only visible through the sanitize report.
        acc.degradation.record_many(
            "sanitize",
            "test-address-record",
            acc.report.test_address_records as u64,
        );
        degradation.merge(&acc.degradation);

        AtlasAnalysis {
            per_as: acc.per_as,
            sanitize: acc.report,
            global_inferred: acc.global_inferred,
            window,
        }
    }

    /// Stats for an AS by operator name.
    pub fn by_name(&self, name: &str) -> Option<(&Asn, &AsStats)> {
        self.per_as.iter().find(|(_, s)| s.name == name)
    }

    /// ASes with detected consistent periodic renumbering (non-dual-stack
    /// IPv4 durations), with the detected period in hours.
    pub fn periodic_v4_ases(&self) -> Vec<(Asn, u64)> {
        self.per_as
            .iter()
            .filter_map(|(asn, s)| {
                detect_period(&s.v4_durations_nds, 0.05, 0.5).map(|p| (*asn, p.period_hours))
            })
            .collect()
    }

    /// ASes with detected consistent periodic IPv6 renumbering.
    pub fn periodic_v6_ases(&self) -> Vec<(Asn, u64)> {
        self.per_as
            .iter()
            .filter_map(|(asn, s)| {
                detect_period(&s.v6_durations, 0.05, 0.5).map(|p| (*asn, p.period_hours))
            })
            .collect()
    }
}

/// The full CDN-side analysis.
pub struct CdnAnalysis {
    /// Pre-processing accounting: raw association tuples observed.
    pub raw_count: u64,
    /// Retained tuples.
    pub kept_count: u64,
    /// Tuples discarded because the /64's routed origin AS disagreed with
    /// the tuple's AS.
    pub discarded_as_mismatch: u64,
    /// Tuples discarded because the /64 was not routed at all. Folding
    /// this class into the mismatch count (as an earlier revision did)
    /// breaks `raw = kept + discards` accounting.
    pub discarded_unrouted: u64,
    /// Unique /64 count.
    pub unique_p64: usize,
    /// Fraction of unique /64s from cellular networks.
    pub mobile_p64_fraction: f64,
    /// Association runs.
    pub runs: Vec<AssociationRun>,
    /// Degree stats for fixed networks.
    pub fixed_degree: DegreeStats,
    /// Degree stats for mobile networks.
    pub mobile_degree: DegreeStats,
    /// Figure-7 nibble counters per RIR over unique *fixed* /64s.
    pub nibble_by_rir: BTreeMap<Rir, NibbleCounter>,
    /// Nibble counter over unique mobile /64s (the paper: "no evidence of
    /// consistent trailing zeroes").
    pub mobile_nibble: NibbleCounter,
    /// Association durations (days) grouped by AS.
    pub by_asn_days: HashMap<Asn, Vec<f64>>,
    /// ASN → (name, RIR) resolution for rendering.
    pub as_meta: HashMap<Asn, (String, Rir)>,
}

/// Maximum unobserved days before a /64 is considered gone (association-run
/// segmentation).
const MAX_GAP_DAYS: u32 = 7;

impl CdnAnalysis {
    /// Build the CDN world, collect and pre-process associations, and run
    /// all CDN-side analyses.
    pub fn compute(cfg: &ExperimentConfig) -> CdnAnalysis {
        let world = cdn_world(cfg.seed, cfg.cdn_scale);
        let mut degradation = DegradationReport::new();
        Self::compute_for_world(&world, &mut degradation)
    }

    /// Collect and analyze against a pre-built (possibly cache-shared)
    /// CDN world.
    pub fn compute_for_world(world: &World, degradation: &mut DegradationReport) -> CdnAnalysis {
        let window = Window::cdn_paper();
        let dataset = CdnCollector::new(world, window, CdnConfig::default()).collect();
        Self::compute_from_dataset(world, &dataset, degradation)
    }

    /// Run every CDN-side analysis over a pre-built association dataset
    /// (e.g. recovered from a possibly-corrupted TSV dump by the lossy
    /// loader) against `world`'s RIR map and registry. The dataset's
    /// pre-processing discards are recorded in `degradation` under stage
    /// `"association"`.
    pub fn compute_from_dataset(
        world: &World,
        dataset: &AssociationDataset,
        degradation: &mut DegradationReport,
    ) -> CdnAnalysis {
        degradation.record_many("association", "as-mismatch", dataset.discarded_as_mismatch);
        degradation.record_many("association", "unrouted", dataset.discarded_unrouted);

        let runs = association_runs(dataset, MAX_GAP_DAYS);
        let (fixed_degree, mobile_degree) = degree_stats(dataset);

        // Unique-/64 trailing-zero classification per RIR (fixed) and
        // overall (mobile).
        let rirs = world.rirs();
        let mut nibble_by_rir: BTreeMap<Rir, NibbleCounter> = BTreeMap::new();
        let mut mobile_nibble = NibbleCounter::default();
        let mut seen: HashSet<u128> = HashSet::new();
        for t in &dataset.tuples {
            if !seen.insert(t.p64.bits()) {
                continue;
            }
            if t.mobile {
                mobile_nibble.add(&t.p64);
            } else if let Some(rir) = rirs.rir_of_v6_prefix(&t.p64) {
                nibble_by_rir.entry(rir).or_default().add(&t.p64);
            }
        }

        let by_asn_days = dynamips_core::association::durations_by_asn(&runs);
        let as_meta = world
            .registry()
            .iter()
            .map(|i| (i.asn, (i.name.clone(), i.rir)))
            .collect();

        CdnAnalysis {
            raw_count: dataset.raw_count,
            kept_count: dataset.len() as u64,
            discarded_as_mismatch: dataset.discarded_as_mismatch,
            discarded_unrouted: dataset.discarded_unrouted,
            unique_p64: dataset.unique_p64_count(),
            mobile_p64_fraction: dataset.mobile_p64_fraction(),
            runs,
            fixed_degree,
            mobile_degree,
            nibble_by_rir,
            mobile_nibble,
            by_asn_days,
            as_meta,
        }
    }

    /// Resolve an AS by operator name.
    pub fn asn_by_name(&self, name: &str) -> Option<Asn> {
        self.as_meta
            .iter()
            .find(|(_, (n, _))| n == name)
            .map(|(a, _)| *a)
    }

    /// RIR resolver closure for the Figure-3 grouping.
    pub fn rir_of(&self, asn: Asn) -> Option<Rir> {
        self.as_meta.get(&asn).map(|(_, r)| *r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The sharded accumulate path must be invariant in the worker count:
    /// same per-AS statistics, same sanitizer accounting, same degradation
    /// ledger as the sequential path.
    #[test]
    fn sharded_accumulation_matches_sequential() {
        let world = atlas_world(5, 0.02);
        let mut d1 = DegradationReport::new();
        let mut d3 = DegradationReport::new();
        let a1 = AtlasAnalysis::compute_for_world(&world, 1, &mut d1);
        let a3 = AtlasAnalysis::compute_for_world(&world, 3, &mut d3);

        assert_eq!(d1.render(), d3.render());
        assert_eq!(a1.sanitize, a3.sanitize);
        assert_eq!(a1.global_inferred.counts, a3.global_inferred.counts);
        assert_eq!(a1.per_as.len(), a3.per_as.len());
        for ((asn1, s1), (asn3, s3)) in a1.per_as.iter().zip(a3.per_as.iter()) {
            assert_eq!(asn1, asn3);
            assert_eq!(s1.name, s3.name);
            assert_eq!(
                (
                    s1.probes,
                    s1.ds_probes,
                    s1.v4_changes_all,
                    s1.v4_changes_ds,
                    s1.v6_changes
                ),
                (
                    s3.probes,
                    s3.ds_probes,
                    s3.v4_changes_all,
                    s3.v4_changes_ds,
                    s3.v6_changes
                ),
                "counters for {}",
                s1.name
            );
            assert_eq!(s1.crossing, s3.crossing, "{}", s1.name);
            assert_eq!(s1.cpl.changes, s3.cpl.changes, "{}", s1.name);
            assert_eq!(s1.cpl.probes, s3.cpl.probes, "{}", s1.name);
            assert_eq!(s1.inferred.counts, s3.inferred.counts, "{}", s1.name);
            assert_eq!(s1.pools.probes(), s3.pools.probes(), "{}", s1.name);
            // Duration sets shard into different internal orders; every
            // consumer sorts, so compare the sorted marks bit-for-bit.
            for (d1, d3) in [
                (&s1.v4_durations_nds, &s3.v4_durations_nds),
                (&s1.v4_durations_ds, &s3.v4_durations_ds),
                (&s1.v6_durations, &s3.v6_durations),
            ] {
                assert_eq!(
                    d1.cumulative_ttf_marks(),
                    d3.cumulative_ttf_marks(),
                    "{}",
                    s1.name
                );
            }
        }
    }

    /// CDN pre-processing accounting: both discard classes are reported
    /// and together with the kept tuples they exactly cover the raw count.
    /// A clean simulated world never yields unrouted tuples (every
    /// assigned address comes from a routed pool), so the unrouted class
    /// is exercised through `compute_from_dataset`, its real entry point:
    /// lossy-loaded dumps where corruption produced off-table addresses.
    #[test]
    fn cdn_discard_classes_cover_raw_count() {
        let cfg = ExperimentConfig {
            seed: 5,
            cdn_scale: 0.02,
            atlas_scale: 0.02,
        };
        let c = CdnAnalysis::compute(&cfg);
        assert!(c.raw_count > 0);
        assert!(c.discarded_as_mismatch > 0, "mismatch filter exercised");
        assert_eq!(
            c.raw_count,
            c.kept_count + c.discarded_as_mismatch + c.discarded_unrouted
        );

        // Re-analyze the same world from a dataset carrying unrouted
        // discards; the identity must keep holding with both classes
        // nonzero, not fold unrouted into the mismatch column.
        let world = cdn_world(cfg.seed, cfg.cdn_scale);
        let mut dataset =
            CdnCollector::new(&world, Window::cdn_paper(), CdnConfig::default()).collect();
        dataset.raw_count += 17;
        dataset.discarded_unrouted += 17;
        let mut degradation = DegradationReport::new();
        let c2 = CdnAnalysis::compute_from_dataset(&world, &dataset, &mut degradation);
        assert_eq!(c2.discarded_unrouted, 17);
        assert!(c2.discarded_as_mismatch > 0);
        assert_eq!(
            c2.raw_count,
            c2.kept_count + c2.discarded_as_mismatch + c2.discarded_unrouted
        );
        assert!(degradation.render().contains("unrouted"));
    }
}
