//! Cached, parallel experiment engine.
//!
//! `dynamips all` renders 22 artifacts from two simulated worlds. The
//! naive pipeline rebuilt the Atlas world once per extended artifact
//! (9×) and rendered everything sequentially. This module fixes both:
//!
//! * [`WorldCache`] keys worlds by `(era, seed, scale)` and constructs
//!   each distinct world exactly once, handing out `Arc<World>` clones to
//!   every consumer (analyses, history collection, extended renderers).
//! * [`run`] computes the Atlas analysis, the CDN analysis, and the
//!   clean-history collection concurrently on scoped threads, then fans
//!   the independent artifact renderers across a worker pool. Results
//!   are returned in request order and every renderer is a pure function
//!   of the shared analysis products, so the output is byte-identical to
//!   a `workers == 1` run.
//!
//! The engine also times every phase and artifact, returning a
//! [`PerfRecord`] the binary renders as the `--timings` table and writes
//! as `BENCH_all.json`.

use crate::context::{AtlasAnalysis, CdnAnalysis, ExperimentConfig};
use crate::extended::{self, CleanHistories};
use crate::{atlas_exps, cdn_exps, check, claims};
use dynamips_core::degrade::DegradationReport;
use dynamips_core::perf::{PerfEntry, PerfRecord};
use dynamips_netsim::profiles::{atlas_world, cdn_world, Era};
use dynamips_netsim::time::Window;
use dynamips_netsim::World;
use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::thread;
use std::time::Instant;

/// The paper's Atlas-side artifacts.
pub const ATLAS_ARTIFACTS: [&str; 7] = ["table1", "fig1", "fig5", "fig6", "fig8", "fig9", "table2"];
/// The paper's CDN-side artifacts.
pub const CDN_ARTIFACTS: [&str; 4] = ["fig2", "fig3", "fig4", "fig7"];
/// The extended (Section-6) artifacts.
pub const EXTENDED_ARTIFACTS: [&str; 9] = [
    "evolution",
    "pools",
    "scanplan",
    "targetgen",
    "tracking",
    "counting",
    "anonymize",
    "blocklist",
    "sanitizer",
];

/// Extended artifacts driven by the shared clean-history collection.
const HISTORY_ARTIFACTS: [&str; 4] = ["evolution", "pools", "scanplan", "targetgen"];

/// Every artifact name the engine can render, in stable listing order
/// (Atlas, CDN, cross-cutting, extended): the `GET /artifacts` body.
pub fn artifact_names() -> Vec<&'static str> {
    ATLAS_ARTIFACTS
        .iter()
        .chain(CDN_ARTIFACTS.iter())
        .copied()
        .chain(["claims", "check", "seeds"])
        .chain(EXTENDED_ARTIFACTS.iter().copied())
        .collect()
}

/// Is `name` an artifact the engine can render?
pub fn is_known_artifact(name: &str) -> bool {
    ATLAS_ARTIFACTS.contains(&name)
        || CDN_ARTIFACTS.contains(&name)
        || EXTENDED_ARTIFACTS.contains(&name)
        || matches!(name, "claims" | "check" | "seeds")
}

/// Cache key: a world is fully determined by its era, seed, and scale.
/// Scale is keyed by bit pattern so the map never compares floats.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct WorldKey {
    era: Era,
    seed: u64,
    scale_bits: u64,
}

/// Shared world cache: each distinct `(era, seed, scale)` world is built
/// exactly once, even under concurrent requests, and shared via `Arc`.
#[derive(Default)]
pub struct WorldCache {
    worlds: Mutex<HashMap<WorldKey, Arc<OnceLock<Arc<World>>>>>,
    builds: AtomicUsize,
}

impl WorldCache {
    /// Create an empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Get or build the world for `(era, seed, scale)`.
    pub fn get(&self, era: Era, seed: u64, scale: f64) -> Arc<World> {
        let key = WorldKey {
            era,
            seed,
            scale_bits: scale.to_bits(),
        };
        // Hold the map lock only to fetch the slot; construction happens
        // outside it so concurrent requests for *different* worlds build
        // in parallel, while OnceLock serializes requests for the same one.
        let slot = {
            // A poisoned map only means another thread panicked mid-insert;
            // the entry API keeps the map structurally sound, so recover.
            let mut map = self
                .worlds
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            map.entry(key).or_default().clone()
        };
        slot.get_or_init(|| {
            self.builds.fetch_add(1, Ordering::Relaxed);
            Arc::new(match era {
                Era::Atlas => atlas_world(seed, scale),
                Era::Cdn => cdn_world(seed, scale),
            })
        })
        .clone()
    }

    /// The Atlas-era world for `(seed, scale)`.
    pub fn atlas(&self, seed: u64, scale: f64) -> Arc<World> {
        self.get(Era::Atlas, seed, scale)
    }

    /// The CDN-era world for `(seed, scale)`.
    pub fn cdn(&self, seed: u64, scale: f64) -> Arc<World> {
        self.get(Era::Cdn, seed, scale)
    }

    /// How many worlds were actually constructed (cache misses).
    pub fn builds(&self) -> usize {
        self.builds.load(Ordering::Relaxed)
    }
}

/// Resolve the worker count: explicit flag, then the `DYNAMIPS_THREADS`
/// environment variable, then the machine's available parallelism.
pub fn worker_count(flag: Option<usize>) -> usize {
    flag.or_else(|| {
        std::env::var("DYNAMIPS_THREADS")
            .ok()
            .and_then(|v| v.parse().ok())
    })
    .unwrap_or_else(|| {
        thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    })
    .max(1)
}

/// One rendered artifact, in request order.
pub struct RenderedArtifact {
    /// The artifact name as requested.
    pub name: String,
    /// The rendered text.
    pub text: String,
    /// `false` only for a `check` whose predicates failed.
    pub ok: bool,
}

/// The engine's result: rendered artifacts plus the perf record.
pub struct EngineOutput {
    /// Artifacts in request order.
    pub artifacts: Vec<RenderedArtifact>,
    /// Wall-time accounting for `--timings` / `BENCH_all.json`.
    pub perf: PerfRecord,
}

/// Which shared products a request needs. Derived per artifact and
/// unioned per request, so batch runs ([`run`]) and warm sessions
/// ([`WarmSession`]) agree exactly on what phase A must compute.
#[derive(Debug, Clone, Copy, Default)]
struct Needs {
    atlas: bool,
    cdn: bool,
    histories: bool,
    world: bool,
}

impl Needs {
    /// Products artifact `name` reads (see [`render_one`]).
    fn for_artifact(name: &str) -> Needs {
        let atlas = ATLAS_ARTIFACTS.contains(&name) || name == "claims" || name == "check";
        let cdn = CDN_ARTIFACTS.contains(&name) || name == "claims" || name == "check";
        let histories = HISTORY_ARTIFACTS.contains(&name);
        let world = atlas || histories || EXTENDED_ARTIFACTS.contains(&name);
        Needs {
            atlas,
            cdn,
            histories,
            world,
        }
    }

    /// Union of per-artifact needs across a whole request.
    fn for_request(wanted: &[String]) -> Needs {
        wanted
            .iter()
            .map(|w| Needs::for_artifact(w))
            .fold(Needs::default(), |acc, n| Needs {
                atlas: acc.atlas || n.atlas,
                cdn: acc.cdn || n.cdn,
                histories: acc.histories || n.histories,
                world: acc.world || n.world,
            })
    }
}

/// Everything a renderer may need, shared read-only across workers.
struct EngineContext<'a> {
    cfg: &'a ExperimentConfig,
    atlas: Option<&'a AtlasAnalysis>,
    cdn: Option<&'a CdnAnalysis>,
    histories: Option<&'a CleanHistories>,
    atlas_world: Option<&'a World>,
}

// Phase A computes every product the artifacts requested in phase B read
// (the `Needs` derivation above); a miss here is an engine wiring bug
// worth crashing on, not a data-dependent condition to degrade.
#[allow(clippy::expect_used)]
impl EngineContext<'_> {
    fn atlas(&self) -> &AtlasAnalysis {
        // lint:allow(panic-path): phase A wiring guarantees the product; see impl comment
        self.atlas.expect("atlas analysis computed")
    }
    fn cdn(&self) -> &CdnAnalysis {
        // lint:allow(panic-path): phase A wiring guarantees the product; see impl comment
        self.cdn.expect("cdn analysis computed")
    }
    fn histories(&self) -> &CleanHistories {
        // lint:allow(panic-path): phase A wiring guarantees the product; see impl comment
        self.histories.expect("histories collected")
    }
    fn world(&self) -> &World {
        // lint:allow(panic-path): phase A wiring guarantees the product; see impl comment
        self.atlas_world.expect("atlas world built")
    }
}

/// Render one artifact from the shared products. Returns the text and
/// whether it passed (only `check` can fail).
fn render_one(name: &str, ctx: &EngineContext<'_>) -> (String, bool) {
    let text = match name {
        "table1" => atlas_exps::table1(ctx.atlas()),
        "fig1" => atlas_exps::fig1(ctx.atlas()),
        "fig5" => atlas_exps::fig5(ctx.atlas()),
        "fig6" => atlas_exps::fig6(ctx.atlas()),
        "fig8" => atlas_exps::fig8(ctx.atlas()),
        "fig9" => atlas_exps::fig9(ctx.atlas()),
        "table2" => atlas_exps::table2(ctx.atlas()),
        "fig2" => cdn_exps::fig2(ctx.cdn()),
        "fig3" => cdn_exps::fig3(ctx.cdn()),
        "fig4" => cdn_exps::fig4(ctx.cdn()),
        "fig7" => cdn_exps::fig7(ctx.cdn()),
        "claims" => claims::render(ctx.atlas(), ctx.cdn()),
        "check" => return check::render_and_ok(ctx.atlas(), ctx.cdn()),
        "evolution" => extended::evolution_with(ctx.world(), ctx.histories()),
        "pools" => extended::pool_boundaries_with(ctx.world(), ctx.histories()),
        "scanplan" => extended::scan_plans_with(ctx.world(), ctx.histories()),
        "targetgen" => extended::target_generation_with(ctx.world(), ctx.histories()),
        "tracking" => extended::tracking_report_with(ctx.world()),
        "anonymize" => extended::anonymize_audit_with(ctx.world()),
        "blocklist" => extended::blocklist_sweep_with(ctx.world()),
        "counting" => extended::counting_report_with(ctx.world(), ctx.cfg.seed),
        "sanitizer" => extended::sanitizer_report_with(ctx.world(), ctx.cfg.atlas_scale),
        "seeds" => extended::seed_robustness(ctx.cfg),
        // `wanted` is prevalidated with is_known_artifact; if a name slips
        // through anyway, emit a failing artifact instead of panicking.
        other => return (format!("unknown artifact {other:?}\n"), false),
    };
    (text, true)
}

fn ms(t: Instant) -> f64 {
    t.elapsed().as_secs_f64() * 1000.0
}

/// Compute every analysis the requested artifacts need (phase A, shared
/// products in parallel), then render the artifacts across `workers`
/// threads (phase B, fan-out). `wanted` must already be validated with
/// [`is_known_artifact`].
pub fn run(cfg: &ExperimentConfig, wanted: &[String], workers: usize) -> EngineOutput {
    let started = Instant::now();
    let cache = WorldCache::new();

    let needs = Needs::for_request(wanted);
    let (needs_atlas, needs_cdn, needs_histories, needs_atlas_world) =
        (needs.atlas, needs.cdn, needs.histories, needs.world);

    // --- Phase A: shared products.
    //
    // Three independent computations (Atlas collect+analyze, CDN
    // collect+analyze, clean-history collection) run concurrently; the
    // world cache guarantees the Atlas world is still built exactly once
    // even though two of them need it. Each task times itself; the world
    // build is timed by whichever task wins the OnceLock race, via the
    // prefetch below.
    let mut phases: Vec<PerfEntry> = Vec::new();
    let mut atlas_analysis: Option<AtlasAnalysis> = None;
    let mut cdn_analysis: Option<CdnAnalysis> = None;
    let mut histories: Option<CleanHistories> = None;

    let atlas_world_handle: Option<(Arc<World>, f64)> = needs_atlas_world.then(|| {
        let t = Instant::now();
        let w = cache.atlas(cfg.seed, cfg.atlas_scale);
        (w, ms(t))
    });
    if let Some((_, world_ms)) = &atlas_world_handle {
        phases.push(PerfEntry {
            name: "atlas-world".into(),
            ms: *world_ms,
        });
    }

    if workers <= 1 {
        // needs_atlas / needs_histories each imply needs_atlas_world, so
        // the prefetch handle is always populated on these paths.
        if let (true, Some((w, _))) = (needs_atlas, atlas_world_handle.as_ref()) {
            let t = Instant::now();
            let mut deg = DegradationReport::new();
            atlas_analysis = Some(AtlasAnalysis::compute_for_world(w, 1, &mut deg));
            phases.push(PerfEntry {
                name: "atlas-analysis".into(),
                ms: ms(t),
            });
        }
        if needs_cdn {
            let t = Instant::now();
            let w = cache.cdn(cfg.seed, cfg.cdn_scale);
            phases.push(PerfEntry {
                name: "cdn-world".into(),
                ms: ms(t),
            });
            let t = Instant::now();
            let mut deg = DegradationReport::new();
            cdn_analysis = Some(CdnAnalysis::compute_for_world(&w, &mut deg));
            phases.push(PerfEntry {
                name: "cdn-analysis".into(),
                ms: ms(t),
            });
        }
        if let (true, Some((w, _))) = (needs_histories, atlas_world_handle.as_ref()) {
            let t = Instant::now();
            histories = Some(extended::clean_histories(w, Window::atlas_paper()));
            phases.push(PerfEntry {
                name: "histories".into(),
                ms: ms(t),
            });
        }
    } else {
        let (a, c, h) = thread::scope(|scope| {
            let cache = &cache;
            let atlas_world_ref = atlas_world_handle.as_ref().map(|(w, _)| w);
            // needs_atlas / needs_histories each imply needs_atlas_world,
            // so `atlas_world_ref` is always populated on these paths.
            let ja = needs_atlas.then_some(atlas_world_ref).flatten().map(|w| {
                let w = w.clone();
                scope.spawn(move || {
                    let t = Instant::now();
                    let mut deg = DegradationReport::new();
                    let a = AtlasAnalysis::compute_for_world(&w, workers, &mut deg);
                    (a, ms(t))
                })
            });
            let jc = needs_cdn.then(|| {
                scope.spawn(move || {
                    let tw = Instant::now();
                    let w = cache.cdn(cfg.seed, cfg.cdn_scale);
                    let world_ms = ms(tw);
                    let t = Instant::now();
                    let mut deg = DegradationReport::new();
                    let c = CdnAnalysis::compute_for_world(&w, &mut deg);
                    (c, world_ms, ms(t))
                })
            });
            let jh = needs_histories
                .then_some(atlas_world_ref)
                .flatten()
                .map(|w| {
                    let w = w.clone();
                    scope.spawn(move || {
                        let t = Instant::now();
                        let h = extended::clean_histories(&w, Window::atlas_paper());
                        (h, ms(t))
                    })
                });
            (
                ja.map(|j| crate::resume_worker(j.join())),
                jc.map(|j| crate::resume_worker(j.join())),
                jh.map(|j| crate::resume_worker(j.join())),
            )
        });
        if let Some((analysis, t)) = a {
            atlas_analysis = Some(analysis);
            phases.push(PerfEntry {
                name: "atlas-analysis".into(),
                ms: t,
            });
        }
        if let Some((analysis, world_ms, t)) = c {
            cdn_analysis = Some(analysis);
            phases.push(PerfEntry {
                name: "cdn-world".into(),
                ms: world_ms,
            });
            phases.push(PerfEntry {
                name: "cdn-analysis".into(),
                ms: t,
            });
        }
        if let Some((collected, t)) = h {
            histories = Some(collected);
            phases.push(PerfEntry {
                name: "histories".into(),
                ms: t,
            });
        }
    }

    let atlas_world: Option<Arc<World>> = atlas_world_handle.map(|(w, _)| w);
    let ctx = EngineContext {
        cfg,
        atlas: atlas_analysis.as_ref(),
        cdn: cdn_analysis.as_ref(),
        histories: histories.as_ref(),
        atlas_world: atlas_world.as_deref(),
    };

    // --- Phase B: render fan-out.
    //
    // A shared atomic index deals artifacts to workers; each result lands
    // in its request-order slot, so output order never depends on timing.
    let slots: Vec<OnceLock<(String, bool, f64)>> =
        wanted.iter().map(|_| OnceLock::new()).collect();
    let render = |i: usize| {
        let t = Instant::now();
        let (text, ok) = render_one(&wanted[i], &ctx);
        // The dealing index hands each slot to exactly one worker; if a
        // slot were somehow rendered twice the first result wins.
        let _ = slots[i].set((text, ok, ms(t)));
    };
    if workers <= 1 {
        (0..wanted.len()).for_each(render);
    } else {
        let next = AtomicUsize::new(0);
        thread::scope(|scope| {
            for _ in 0..workers.min(wanted.len()) {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= wanted.len() {
                        break;
                    }
                    render(i);
                });
            }
        });
    }

    let mut artifacts = Vec::with_capacity(wanted.len());
    let mut artifact_times = Vec::with_capacity(wanted.len());
    for (name, slot) in wanted.iter().zip(slots) {
        // Every index below wanted.len() was dealt to a worker; an empty
        // slot would be an engine bug — surface it as a failed artifact.
        let (text, ok, t) = slot
            .into_inner()
            .unwrap_or_else(|| ("artifact not rendered (engine bug)\n".into(), false, 0.0));
        artifact_times.push(PerfEntry {
            name: name.clone(),
            ms: t,
        });
        artifacts.push(RenderedArtifact {
            name: name.clone(),
            text,
            ok,
        });
    }

    let perf = PerfRecord {
        seed: cfg.seed,
        atlas_scale: cfg.atlas_scale,
        cdn_scale: cfg.cdn_scale,
        workers,
        worlds_built: cache.builds(),
        total_ms: ms(started),
        phases,
        artifacts: artifact_times,
    };
    EngineOutput { artifacts, perf }
}

/// A warm, reusable render session for one configuration: worlds and
/// analysis products are computed on first demand and then retained, so
/// repeated [`WarmSession::render_artifact`] calls against the same
/// `(seed, atlas_scale, cdn_scale)` are pure lookups plus the renderer
/// itself. This is the serving layer's render-to-bytes entry point; a
/// batch [`run`] and a warm session agree byte-for-byte because both
/// funnel through [`render_one`] over products built by the same code.
///
/// The session is `Sync`: concurrent renders share the products through
/// `OnceLock`, which also guarantees each product is built exactly once
/// even when many requests arrive before the first build finishes.
pub struct WarmSession {
    cfg: ExperimentConfig,
    workers: usize,
    cache: WorldCache,
    atlas: OnceLock<AtlasAnalysis>,
    cdn: OnceLock<CdnAnalysis>,
    histories: OnceLock<CleanHistories>,
}

impl WarmSession {
    /// A session for `cfg` whose analyses use `workers` threads on their
    /// first (cold) computation.
    pub fn warm(cfg: ExperimentConfig, workers: usize) -> WarmSession {
        WarmSession {
            cfg,
            workers: workers.max(1),
            cache: WorldCache::new(),
            atlas: OnceLock::new(),
            cdn: OnceLock::new(),
            histories: OnceLock::new(),
        }
    }

    /// The configuration this session renders under.
    pub fn config(&self) -> &ExperimentConfig {
        &self.cfg
    }

    /// Distinct worlds constructed so far (at most two: Atlas + CDN).
    pub fn worlds_built(&self) -> usize {
        self.cache.builds()
    }

    fn atlas_product(&self) -> &AtlasAnalysis {
        self.atlas.get_or_init(|| {
            let w = self.cache.atlas(self.cfg.seed, self.cfg.atlas_scale);
            let mut deg = DegradationReport::new();
            AtlasAnalysis::compute_for_world(&w, self.workers, &mut deg)
        })
    }

    fn cdn_product(&self) -> &CdnAnalysis {
        self.cdn.get_or_init(|| {
            let w = self.cache.cdn(self.cfg.seed, self.cfg.cdn_scale);
            let mut deg = DegradationReport::new();
            CdnAnalysis::compute_for_world(&w, &mut deg)
        })
    }

    fn histories_product(&self) -> &CleanHistories {
        self.histories.get_or_init(|| {
            let w = self.cache.atlas(self.cfg.seed, self.cfg.atlas_scale);
            extended::clean_histories(&w, Window::atlas_paper())
        })
    }

    /// Render one artifact to text, computing (and caching) exactly the
    /// products it needs. `name` should be prevalidated with
    /// [`is_known_artifact`]; unknown names yield a failed artifact, not
    /// a panic, mirroring [`run`].
    pub fn render_artifact(&self, name: &str) -> RenderedArtifact {
        let needs = Needs::for_artifact(name);
        let atlas_world = needs
            .world
            .then(|| self.cache.atlas(self.cfg.seed, self.cfg.atlas_scale));
        let ctx = EngineContext {
            cfg: &self.cfg,
            atlas: needs.atlas.then(|| self.atlas_product()),
            cdn: needs.cdn.then(|| self.cdn_product()),
            histories: needs.histories.then(|| self.histories_product()),
            atlas_world: atlas_world.as_deref(),
        };
        let (text, ok) = render_one(name, &ctx);
        RenderedArtifact {
            name: name.to_string(),
            text,
            ok,
        }
    }
}

/// Render the `--timings` table from a perf record.
pub fn render_timings(perf: &PerfRecord) -> String {
    use dynamips_core::report::TextTable;
    let mut t = TextTable::new(&["stage", "wall ms"]);
    for e in perf.phases.iter().chain(perf.artifacts.iter()) {
        t.row(&[e.name.clone(), format!("{:.1}", e.ms)]);
    }
    format!(
        "Engine timings: {} workers, {} world(s) built, {:.1} ms total\n\n{}",
        perf.workers,
        perf.worlds_built,
        perf.total_ms,
        t.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn world_cache_builds_each_distinct_world_once() {
        let cache = WorldCache::new();
        let w1 = cache.atlas(5, 0.01);
        let w2 = cache.atlas(5, 0.01);
        assert!(Arc::ptr_eq(&w1, &w2));
        assert_eq!(cache.builds(), 1);
        // Different era, seed, or scale are distinct worlds.
        cache.cdn(5, 0.01);
        cache.atlas(6, 0.01);
        cache.atlas(5, 0.02);
        assert_eq!(cache.builds(), 4);
    }

    #[test]
    fn world_cache_is_race_free_under_concurrent_requests() {
        let cache = WorldCache::new();
        thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| cache.atlas(7, 0.01));
            }
        });
        assert_eq!(cache.builds(), 1);
    }

    #[test]
    fn worker_count_prefers_flag() {
        assert_eq!(worker_count(Some(3)), 3);
        assert_eq!(worker_count(Some(0)), 1, "clamped to at least one");
        assert!(worker_count(None) >= 1);
    }

    #[test]
    fn parallel_run_matches_sequential_byte_for_byte() {
        let cfg = ExperimentConfig {
            seed: 11,
            atlas_scale: 0.02,
            cdn_scale: 0.02,
        };
        let wanted: Vec<String> = ["table1", "fig8", "fig3", "tracking", "evolution"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let seq = run(&cfg, &wanted, 1);
        let par = run(&cfg, &wanted, 4);
        assert_eq!(seq.artifacts.len(), par.artifacts.len());
        for (s, p) in seq.artifacts.iter().zip(par.artifacts.iter()) {
            assert_eq!(s.name, p.name, "request order preserved");
            assert_eq!(
                s.text, p.text,
                "artifact {} differs across worker counts",
                s.name
            );
            assert_eq!(s.ok, p.ok);
        }
        // Atlas world shared by analysis + histories + tracking; CDN world
        // for fig3: exactly two builds each run.
        assert_eq!(seq.perf.worlds_built, 2);
        assert_eq!(par.perf.worlds_built, 2);
        assert_eq!(par.perf.workers, 4);
        // The perf record round-trips through its JSON form.
        let back = PerfRecord::parse(&par.perf.to_json()).expect("perf json parses");
        assert_eq!(back.worlds_built, 2);
        assert_eq!(back.artifacts.len(), wanted.len());
        assert!(render_timings(&par.perf).contains("atlas-analysis"));
    }

    #[test]
    fn warm_session_matches_batch_run_and_reuses_products() {
        let cfg = ExperimentConfig {
            seed: 11,
            atlas_scale: 0.02,
            cdn_scale: 0.02,
        };
        let wanted: Vec<String> = ["fig1", "fig3", "evolution", "seeds"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let batch = run(&cfg, &wanted, 2);
        let session = WarmSession::warm(cfg, 2);
        for expected in &batch.artifacts {
            let warm = session.render_artifact(&expected.name);
            assert_eq!(warm.name, expected.name);
            assert_eq!(
                warm.text, expected.text,
                "warm render of {} differs from batch run",
                expected.name
            );
            assert_eq!(warm.ok, expected.ok);
        }
        // Repeat renders reuse the warm products: no additional worlds.
        let builds = session.worlds_built();
        assert_eq!(builds, 2, "atlas + cdn worlds");
        let again = session.render_artifact("fig1");
        assert_eq!(again.text, batch.artifacts[0].text);
        assert_eq!(session.worlds_built(), builds);
        // Unknown names degrade exactly like the batch path.
        let unknown = session.render_artifact("TYPO");
        assert!(!unknown.ok);
        assert!(unknown.text.contains("unknown artifact"));
    }

    #[test]
    fn known_artifact_names() {
        assert!(is_known_artifact("table1"));
        assert!(is_known_artifact("check"));
        assert!(is_known_artifact("sanitizer"));
        assert!(is_known_artifact("seeds"));
        assert!(!is_known_artifact("TYPO"));
        assert!(!is_known_artifact("all"));
    }
}
