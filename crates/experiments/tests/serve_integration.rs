//! Full-stack serving acceptance: a real `Server` wired to the real
//! `ArtifactService`, hammered over loopback sockets.
//!
//! The load-bearing property is byte-identity: whatever the HTTP layer
//! does — concurrency, session caching, LRU eviction — the body of
//! `GET /artifacts/<name>` must equal the text the batch engine
//! ([`engine::run`]) renders single-threaded for the same
//! `(name, seed, scales)`. Eviction under a cache bound of 2 may cost a
//! rebuild but can never surface stale bytes.

use std::sync::Arc;
use std::thread;

use dynamips_experiments::engine;
use dynamips_experiments::service::ArtifactService;
use dynamips_experiments::ExperimentConfig;
use dynamips_serve::{http_get, Metrics, ServeConfig, Server};

const SCALE: f64 = 0.02;

fn test_config(seed: u64) -> ExperimentConfig {
    ExperimentConfig {
        seed,
        atlas_scale: SCALE,
        cdn_scale: SCALE,
    }
}

/// The batch engine's single-threaded rendering: the reference bytes.
fn reference_text(name: &str, seed: u64) -> String {
    let out = engine::run(&test_config(seed), &[name.to_string()], 1);
    assert_eq!(out.artifacts.len(), 1);
    assert!(out.artifacts[0].ok, "reference render failed for {name}");
    out.artifacts[0].text.clone()
}

fn start_stack(cache_cap: usize) -> (Server, String, Arc<Metrics>) {
    let metrics = Arc::new(Metrics::new());
    let service = ArtifactService::over_engine(test_config(11), 2, cache_cap, Arc::clone(&metrics));
    let server = Server::start(
        "127.0.0.1:0",
        ServeConfig::default(),
        Arc::new(service),
        Arc::clone(&metrics),
    )
    .expect("bind ephemeral");
    let addr = server.local_addr().to_string();
    (server, addr, metrics)
}

#[test]
fn concurrent_requests_serve_batch_identical_bytes() {
    let (server, addr, metrics) = start_stack(4);

    // Two configurations in flight at once: the service default
    // (seed 11) and an override (seed 12), four client threads each.
    let fig1_default = reference_text("fig1", 11);
    let fig1_seeded = reference_text("fig1", 12);

    let mut clients = Vec::new();
    for i in 0..8 {
        let addr = addr.clone();
        let path = if i % 2 == 0 {
            "/artifacts/fig1".to_string()
        } else {
            "/artifacts/fig1?seed=12".to_string()
        };
        clients.push(thread::spawn(move || {
            let got = http_get(&addr, &path, 120_000).expect("fetch");
            (path, got)
        }));
    }
    for client in clients {
        let (path, got) = client.join().expect("client thread");
        assert_eq!(got.status, 200, "{path}");
        let want = if path.contains("seed=12") {
            &fig1_seeded
        } else {
            &fig1_default
        };
        let body = String::from_utf8(got.body).expect("utf8 body");
        assert_eq!(
            &body, want,
            "served bytes diverged from the batch engine for {path}"
        );
    }

    // 8 requests, 2 distinct sessions: the cache must have answered the
    // other 6 warm, and each world was built exactly once.
    let (hits, misses, _evictions) = metrics.cache_counts();
    assert_eq!((hits, misses), (6, 2), "cache accounting");

    let bye = http_get(&addr, "/shutdown", 10_000).expect("shutdown");
    assert_eq!(bye.status, 200);
    let summary = server.join();
    assert_eq!(summary.rejected, 0, "{summary:?}");
    assert!(summary.served >= 9, "{summary:?}");
}

#[test]
fn lru_eviction_rebuilds_but_never_serves_stale_bytes() {
    let (server, addr, metrics) = start_stack(2);

    // Three seeds through a cache of two: seed 11 is evicted by the
    // time seed 21 lands, so the fourth request rebuilds it.
    let seeds = [11u64, 19, 21, 11];
    for seed in seeds {
        let path = format!("/artifacts/fig1?seed={seed}");
        let got = http_get(&addr, &path, 120_000).expect("fetch");
        assert_eq!(got.status, 200, "{path}");
        let body = String::from_utf8(got.body).expect("utf8 body");
        assert_eq!(
            body,
            reference_text("fig1", seed),
            "seed {seed} served stale or divergent bytes"
        );
    }
    let (hits, misses, evictions) = metrics.cache_counts();
    assert_eq!(hits, 0, "every request hit a distinct or evicted session");
    assert_eq!(misses, 4);
    assert!(evictions >= 2, "cap 2 with 3 distinct keys must evict");

    server.shutdown_handle().begin_shutdown();
    let summary = server.join();
    assert_eq!(summary.rejected, 0, "{summary:?}");
}

#[test]
fn endpoints_and_error_statuses_over_real_sockets() {
    let (server, addr, _metrics) = start_stack(2);

    let health = http_get(&addr, "/healthz", 10_000).expect("healthz");
    assert_eq!(
        (health.status, health.body.as_slice()),
        (200, b"ok\n".as_slice())
    );

    let listing = http_get(&addr, "/artifacts", 10_000).expect("listing");
    assert_eq!(listing.status, 200);
    let names = String::from_utf8(listing.body).expect("utf8 listing");
    for name in ["fig1", "fig3", "claims", "check", "seeds"] {
        assert!(names.lines().any(|l| l == name), "{name} missing:\n{names}");
    }

    assert_eq!(
        http_get(&addr, "/artifacts/TYPO", 10_000)
            .expect("404")
            .status,
        404
    );
    assert_eq!(http_get(&addr, "/nope", 10_000).expect("404").status, 404);
    assert_eq!(
        http_get(&addr, "/artifacts/fig1?seed=banana", 10_000)
            .expect("400")
            .status,
        400
    );
    assert_eq!(
        http_get(&addr, "/artifacts/fig1?atlas_scale=2.0", 10_000)
            .expect("400")
            .status,
        400
    );

    // Render one artifact so the metrics page has request and cache
    // series to show.
    assert_eq!(
        http_get(&addr, "/artifacts/seeds", 120_000)
            .expect("seeds")
            .status,
        200
    );
    let metrics_page = http_get(&addr, "/metrics", 10_000).expect("metrics");
    let text = String::from_utf8(metrics_page.body).expect("utf8 metrics");
    for series in [
        "dynamips_serve_requests_total{code=\"200\"}",
        "dynamips_serve_requests_total{code=\"400\"}",
        "dynamips_serve_requests_total{code=\"404\"}",
        "dynamips_serve_cache_misses_total",
        "dynamips_serve_request_latency_ms_bucket",
    ] {
        assert!(text.contains(series), "{series} missing from:\n{text}");
    }

    server.shutdown_handle().begin_shutdown();
    let summary = server.join();
    assert_eq!(summary.rejected, 0, "{summary:?}");
    assert_eq!(summary.disconnects, 0, "{summary:?}");
}
