//! End-to-end engine guarantees, driven through the real binary:
//!
//! * the parallel engine's stdout and `--out` file set are byte-identical
//!   to a forced single-thread run,
//! * `--timings` renders the wall-time table and `BENCH_all.json` parses
//!   and reports exactly one build per distinct world,
//! * an unknown artifact exits with the usage code *before* any analysis
//!   starts.

use dynamips_core::perf::PerfRecord;
use std::path::{Path, PathBuf};
use std::process::{Command, Output};

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_dynamips"))
}

/// Artifact list covering both worlds and every extended input class
/// (analysis-fed, history-fed, world-fed), at a scale small enough for a
/// test. `check`/`claims` are excluded: their predicates are calibrated
/// to the reference scale and would fail here by design.
const ARTIFACTS: [&str; 7] = [
    "table1",
    "fig8",
    "fig2",
    "fig3",
    "evolution",
    "tracking",
    "sanitizer",
];

fn run_engine(threads: &str, out: &Path) -> Output {
    let mut cmd = bin();
    cmd.args([
        "--seed",
        "9",
        "--atlas-scale",
        "0.02",
        "--cdn-scale",
        "0.02",
        "--threads",
        threads,
        "--timings",
        "--out",
    ])
    .arg(out)
    .args(ARTIFACTS);
    cmd.output().expect("binary runs")
}

fn read_dir_sorted(dir: &Path) -> Vec<(String, Vec<u8>)> {
    let mut entries: Vec<(String, Vec<u8>)> = std::fs::read_dir(dir)
        .expect("out dir exists")
        .map(|e| {
            let e = e.unwrap();
            (
                e.file_name().to_string_lossy().into_owned(),
                std::fs::read(e.path()).unwrap(),
            )
        })
        .collect();
    entries.sort();
    entries
}

fn temp_out(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("dynamips-engine-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn parallel_run_is_byte_identical_to_single_thread() {
    let out1 = temp_out("seq");
    let out4 = temp_out("par");
    let seq = run_engine("1", &out1);
    let par = run_engine("4", &out4);
    assert!(seq.status.success(), "sequential run failed");
    assert!(par.status.success(), "parallel run failed");

    // Stdout (artifact text in request order) must match byte for byte.
    assert_eq!(
        seq.stdout, par.stdout,
        "stdout differs across worker counts"
    );
    assert!(!seq.stdout.is_empty());

    // The --out file sets must have the same names and the same bytes.
    // BENCH_all.json legitimately differs (wall times), so compare it
    // structurally and everything else exactly.
    let files1 = read_dir_sorted(&out1);
    let files4 = read_dir_sorted(&out4);
    let names =
        |fs: &[(String, Vec<u8>)]| fs.iter().map(|(n, _)| n.clone()).collect::<Vec<String>>();
    assert_eq!(names(&files1), names(&files4));
    assert_eq!(
        names(&files1),
        {
            let mut expect: Vec<String> = ARTIFACTS.iter().map(|a| format!("{a}.txt")).collect();
            expect.push("BENCH_all.json".into());
            expect.sort();
            expect
        },
        "every artifact written, plus the bench record"
    );
    for ((name, b1), (_, b4)) in files1.iter().zip(files4.iter()) {
        if name == "BENCH_all.json" {
            continue;
        }
        assert_eq!(b1, b4, "{name} differs across worker counts");
    }

    // Both bench records parse; each run built exactly two worlds (one
    // Atlas, one CDN) no matter how many consumers needed them.
    for (dir, workers) in [(&out1, 1usize), (&out4, 4)] {
        let json = std::fs::read_to_string(dir.join("BENCH_all.json")).unwrap();
        let perf = PerfRecord::parse(&json).expect("bench record parses");
        assert_eq!(perf.worlds_built, 2, "workers={workers}");
        assert_eq!(perf.workers, workers);
        assert_eq!(perf.seed, 9);
        assert_eq!(perf.artifacts.len(), ARTIFACTS.len());
        assert!(perf.total_ms > 0.0);
        assert!(perf.phases.iter().any(|p| p.name == "atlas-analysis"));
    }

    // --timings renders the per-stage table on stderr.
    let stderr = String::from_utf8_lossy(&par.stderr);
    assert!(stderr.contains("Engine timings"), "{stderr}");
    assert!(stderr.contains("atlas-world"), "{stderr}");

    let _ = std::fs::remove_dir_all(&out1);
    let _ = std::fs::remove_dir_all(&out4);
}

#[test]
fn unknown_artifact_exits_with_usage_before_computing() {
    let out = bin()
        .args(["table1", "TYPO"])
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("unknown artifact \"TYPO\""), "{stderr}");
    // Validation must reject the request before the engine starts: no
    // progress banner, no partial artifact output.
    assert!(!stderr.contains("engine:"), "{stderr}");
    assert!(out.stdout.is_empty());
}

#[test]
fn usage_error_paths_keep_exit_code_two() {
    for args in [
        vec!["--threads"],                // flag missing its value
        vec!["--threads", "x", "table1"], // unparsable value
        vec!["--nonsense", "table1"],     // unknown flag
        vec![],                           // no artifacts at all
    ] {
        let out = bin().args(&args).output().expect("binary runs");
        assert_eq!(out.status.code(), Some(2), "args {args:?}");
    }
}
