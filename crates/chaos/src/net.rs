//! Seeded fault injection for the wire: a deterministic TCP proxy.
//!
//! [`ChaosProxy`] sits between an HTTP client and an upstream server and
//! injects the transport faults real deployments see — connection
//! resets, accept stalls, torn writes, slow-loris byte dribbling,
//! response-byte corruption, and hard black-holes. Like the TSV
//! corruption operators in the crate root, every fault is driven by a
//! seed (same seed + same connection order ⇒ same faults) and recorded
//! in a ground-truth [`NetFaultLog`], so a harness can verify that the
//! resilient client recovered from exactly the faults that were
//! injected and nothing else.
//!
//! The proxy is deliberately request-oriented: it reads one request head
//! from the client, forwards it upstream, buffers the full upstream
//! response, and then replays that response toward the client through
//! the fault operator chosen for the connection. Fault decisions are
//! made per *connection* (at most one operator each), which keeps the
//! schedule deterministic under a sequential client.
//!
//! No wall-clock reads: timing faults are expressed as fixed
//! `Duration` sleeps and socket deadlines from the [`NetFaultPlan`].

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeMap;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::thread;
use std::time::Duration;

/// Hard cap on a buffered upstream response (64 MiB), matching the
/// serve client's own cap.
const MAX_PROXIED_BYTES: usize = 64 << 20;

/// Hard cap on a buffered request head.
const MAX_HEAD_BYTES: usize = 64 << 10;

/// One transport fault the proxy can inject on a connection.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum NetFaultOp {
    /// Drop the client connection immediately after accept, before any
    /// bytes flow (the client sees EOF or a reset).
    ConnReset,
    /// Sit on the accepted connection for `stall_ms` before proxying;
    /// with a stall longer than the client's deadline this looks like a
    /// hung accept queue.
    AcceptStall,
    /// Forward only the first half of the upstream response, then hang
    /// up (torn/partial write).
    TornWrite,
    /// Dribble the response out in tiny chunks with a delay between
    /// each (slow-loris). All bytes do arrive, eventually.
    SlowLoris,
    /// Flip bits in the first bytes of the response head so the status
    /// line is no longer `HTTP/1.`-shaped.
    CorruptByte,
    /// Read the request, forward nothing, hold the connection open for
    /// `blackhole_ms`, then hang up without a byte of response.
    BlackHole,
}

/// Every operator, in the fixed order fault selection consults them.
pub const NET_FAULT_OPS: [NetFaultOp; 6] = [
    NetFaultOp::ConnReset,
    NetFaultOp::AcceptStall,
    NetFaultOp::TornWrite,
    NetFaultOp::SlowLoris,
    NetFaultOp::CorruptByte,
    NetFaultOp::BlackHole,
];

impl NetFaultOp {
    /// Stable kebab-case label used in logs and reports.
    pub fn label(self) -> &'static str {
        match self {
            NetFaultOp::ConnReset => "conn-reset",
            NetFaultOp::AcceptStall => "accept-stall",
            NetFaultOp::TornWrite => "torn-write",
            NetFaultOp::SlowLoris => "slow-loris",
            NetFaultOp::CorruptByte => "corrupt-byte",
            NetFaultOp::BlackHole => "black-hole",
        }
    }

    /// Whether a well-behaved retrying client can still complete the
    /// request on this very connection (true only for faults that
    /// deliver every response byte intact, however slowly).
    pub fn delivers_response(self) -> bool {
        matches!(self, NetFaultOp::SlowLoris)
    }
}

/// Per-operator injection rates plus the timing knobs shared by the
/// timing-shaped faults. Rates are probabilities in `[0, 1]`; values
/// outside the range are clamped at decision time.
#[derive(Debug, Clone)]
pub struct NetFaultPlan {
    /// Seed for the per-connection fault decisions.
    pub seed: u64,
    /// Injection rate per operator, indexed parallel to
    /// [`NET_FAULT_OPS`].
    pub rates: [f64; NET_FAULT_OPS.len()],
    /// How long an [`NetFaultOp::AcceptStall`] sits before proxying.
    pub stall_ms: u64,
    /// How long a [`NetFaultOp::BlackHole`] holds the connection.
    pub blackhole_ms: u64,
    /// Chunk size for [`NetFaultOp::SlowLoris`] dribbling.
    pub dribble_chunk: usize,
    /// Delay between dribbled chunks, milliseconds.
    pub dribble_delay_ms: u64,
    /// Socket deadline for the proxy's own upstream and client I/O.
    pub io_timeout_ms: u64,
}

impl NetFaultPlan {
    /// A plan that injects nothing: the proxy is a pure passthrough.
    pub fn quiet(seed: u64) -> NetFaultPlan {
        NetFaultPlan {
            seed,
            rates: [0.0; NET_FAULT_OPS.len()],
            stall_ms: 1_500,
            blackhole_ms: 1_500,
            dribble_chunk: 256,
            dribble_delay_ms: 2,
            io_timeout_ms: 10_000,
        }
    }

    /// A plan applying `rate` to every operator uniformly.
    pub fn uniform(seed: u64, rate: f64) -> NetFaultPlan {
        let mut plan = NetFaultPlan::quiet(seed);
        plan.rates = [rate.clamp(0.0, 1.0); NET_FAULT_OPS.len()];
        plan
    }

    /// The injection rate configured for `op`.
    pub fn rate(&self, op: NetFaultOp) -> f64 {
        NET_FAULT_OPS
            .iter()
            .position(|o| *o == op)
            .and_then(|idx| self.rates.get(idx).copied())
            .unwrap_or(0.0)
    }

    /// Set the injection rate for one operator (clamped to `[0, 1]`).
    pub fn set_rate(&mut self, op: NetFaultOp, rate: f64) {
        if let Some(idx) = NET_FAULT_OPS.iter().position(|o| *o == op) {
            if let Some(slot) = self.rates.get_mut(idx) {
                *slot = rate.clamp(0.0, 1.0);
            }
        }
    }

    /// Choose at most one fault for connection number `conn`,
    /// deterministically from the plan seed. Operators are consulted in
    /// [`NET_FAULT_OPS`] order; the first whose biased coin lands wins.
    fn choose(&self, conn: u64) -> Option<NetFaultOp> {
        let mut rng = SmallRng::seed_from_u64(
            self.seed ^ conn.wrapping_add(1).wrapping_mul(0x9E37_79B9_7F4A_7C15),
        );
        for (idx, op) in NET_FAULT_OPS.iter().enumerate() {
            let rate = self.rates.get(idx).copied().unwrap_or(0.0).clamp(0.0, 1.0);
            if rate > 0.0 && rng.gen_bool(rate) {
                return Some(*op);
            }
        }
        None
    }
}

/// One injected fault: which connection (accept order, from 0) and
/// which operator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InjectedFault {
    /// Connection sequence number, in accept order.
    pub conn: u64,
    /// The operator applied.
    pub op: NetFaultOp,
}

/// Ground truth of everything the proxy did to the traffic.
#[derive(Debug, Clone, Default)]
pub struct NetFaultLog {
    /// Connections the proxy accepted.
    pub conns: u64,
    /// Every injected fault, in accept order.
    pub injected: Vec<InjectedFault>,
}

impl NetFaultLog {
    /// Total faults injected.
    pub fn total(&self) -> u64 {
        self.injected.len() as u64
    }

    /// Faults injected with `op`.
    pub fn count(&self, op: NetFaultOp) -> u64 {
        self.injected.iter().filter(|f| f.op == op).count() as u64
    }

    /// Per-operator fault counts keyed by stable label.
    pub fn counts(&self) -> BTreeMap<&'static str, u64> {
        let mut out = BTreeMap::new();
        for f in &self.injected {
            *out.entry(f.op.label()).or_insert(0) += 1;
        }
        out
    }

    /// Whether the proxy behaved as a pure passthrough.
    pub fn is_quiet(&self) -> bool {
        self.injected.is_empty()
    }

    /// Render a one-line summary (`faults=3/12 conn-reset=1 ...`).
    pub fn render(&self) -> String {
        let mut out = format!("faults={}/{}", self.total(), self.conns);
        for (label, n) in self.counts() {
            out.push_str(&format!(" {label}={n}"));
        }
        out
    }
}

struct ProxyShared {
    upstream: SocketAddr,
    plan: NetFaultPlan,
    shutdown: AtomicBool,
    conn_seq: AtomicU64,
    log: Mutex<NetFaultLog>,
    conns: Mutex<Vec<thread::JoinHandle<()>>>,
}

/// A running fault-injecting proxy; see the module docs.
pub struct ChaosProxy {
    shared: Arc<ProxyShared>,
    acceptor: Option<thread::JoinHandle<()>>,
    addr: SocketAddr,
}

impl ChaosProxy {
    /// Bind an ephemeral local port and start proxying to `upstream`
    /// under `plan`.
    pub fn start(upstream: SocketAddr, plan: NetFaultPlan) -> io::Result<ChaosProxy> {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let shared = Arc::new(ProxyShared {
            upstream,
            plan,
            shutdown: AtomicBool::new(false),
            conn_seq: AtomicU64::new(0),
            log: Mutex::new(NetFaultLog::default()),
            conns: Mutex::new(Vec::new()),
        });
        let acceptor_shared = Arc::clone(&shared);
        let acceptor = thread::spawn(move || accept_loop(&listener, &acceptor_shared));
        Ok(ChaosProxy {
            shared,
            acceptor: Some(acceptor),
            addr,
        })
    }

    /// The proxy's listening address (connect clients here).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Snapshot of the fault log so far.
    pub fn log(&self) -> NetFaultLog {
        self.shared
            .log
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .clone()
    }

    /// Stop accepting, join every in-flight connection thread, and
    /// return the final ground-truth fault log.
    pub fn stop(mut self) -> NetFaultLog {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        if let Some(handle) = self.acceptor.take() {
            let _ = handle.join();
        }
        let handles = std::mem::take(
            &mut *self
                .shared
                .conns
                .lock()
                .unwrap_or_else(PoisonError::into_inner),
        );
        for handle in handles {
            let _ = handle.join();
        }
        self.log()
    }
}

fn accept_loop(listener: &TcpListener, shared: &Arc<ProxyShared>) {
    while !shared.shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                let conn = shared.conn_seq.fetch_add(1, Ordering::SeqCst);
                let fault = shared.plan.choose(conn);
                {
                    let mut log = shared.log.lock().unwrap_or_else(PoisonError::into_inner);
                    log.conns += 1;
                    if let Some(op) = fault {
                        log.injected.push(InjectedFault { conn, op });
                    }
                }
                let conn_shared = Arc::clone(shared);
                let handle = thread::spawn(move || handle_connection(&conn_shared, stream, fault));
                shared
                    .conns
                    .lock()
                    .unwrap_or_else(PoisonError::into_inner)
                    .push(handle);
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                thread::sleep(Duration::from_millis(2));
            }
            Err(_) => thread::sleep(Duration::from_millis(2)),
        }
    }
}

fn handle_connection(shared: &ProxyShared, mut client: TcpStream, fault: Option<NetFaultOp>) {
    let plan = &shared.plan;
    let io_timeout = Duration::from_millis(plan.io_timeout_ms.max(1));
    let _ = client.set_read_timeout(Some(io_timeout));
    let _ = client.set_write_timeout(Some(io_timeout));

    if fault == Some(NetFaultOp::ConnReset) {
        // Hang up before a single byte flows; the client sees EOF (or a
        // reset if its request raced into our receive buffer).
        return;
    }
    if fault == Some(NetFaultOp::AcceptStall) {
        thread::sleep(Duration::from_millis(plan.stall_ms));
    }

    let Some(head) = read_head(&mut client) else {
        return;
    };
    if fault == Some(NetFaultOp::BlackHole) {
        thread::sleep(Duration::from_millis(plan.blackhole_ms));
        return;
    }

    let Some(mut resp) = fetch_upstream(shared.upstream, &head, io_timeout) else {
        // Upstream unreachable: indistinguishable from a black-hole to
        // the client, which is the honest signal.
        return;
    };

    match fault {
        Some(NetFaultOp::TornWrite) => {
            let keep = resp.len() / 2;
            let _ = client.write_all(resp.get(..keep).unwrap_or(&resp));
        }
        Some(NetFaultOp::SlowLoris) => {
            let chunk = plan.dribble_chunk.max(1);
            let delay = Duration::from_millis(plan.dribble_delay_ms);
            for piece in resp.chunks(chunk) {
                if client.write_all(piece).is_err() {
                    return;
                }
                let _ = client.flush();
                thread::sleep(delay);
            }
        }
        Some(NetFaultOp::CorruptByte) => {
            // Damage the first seven bytes ("HTTP/1.") so a strict
            // client always detects the corruption from the status
            // line; the body is never silently altered.
            for byte in resp.iter_mut().take(7) {
                *byte ^= 0x40;
            }
            let _ = client.write_all(&resp);
        }
        _ => {
            let _ = client.write_all(&resp);
        }
    }
    let _ = client.flush();
}

/// Read one request head (through the blank line) from the client.
fn read_head(client: &mut TcpStream) -> Option<Vec<u8>> {
    let mut head: Vec<u8> = Vec::with_capacity(512);
    let mut chunk = [0u8; 512];
    loop {
        if head.windows(4).any(|w| w == b"\r\n\r\n") {
            return Some(head);
        }
        if head.len() > MAX_HEAD_BYTES {
            return None;
        }
        match client.read(&mut chunk) {
            Ok(0) => return None,
            Ok(n) => head.extend_from_slice(chunk.get(..n).unwrap_or(&[])),
            Err(_) => return None,
        }
    }
}

/// Forward `head` to the upstream server and buffer its full response.
fn fetch_upstream(upstream: SocketAddr, head: &[u8], io_timeout: Duration) -> Option<Vec<u8>> {
    let mut server = TcpStream::connect_timeout(&upstream, io_timeout).ok()?;
    server.set_read_timeout(Some(io_timeout)).ok()?;
    server.set_write_timeout(Some(io_timeout)).ok()?;
    server.write_all(head).ok()?;
    let _ = server.flush();
    let mut resp = Vec::with_capacity(1024);
    let mut chunk = [0u8; 4096];
    loop {
        match server.read(&mut chunk) {
            Ok(0) => break,
            Ok(n) => {
                resp.extend_from_slice(chunk.get(..n).unwrap_or(&[]));
                if resp.len() > MAX_PROXIED_BYTES {
                    return None;
                }
            }
            Err(_) => return None,
        }
    }
    Some(resp)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A one-shot upstream returning a fixed, well-formed response per
    /// connection, for `n` connections.
    fn fixed_upstream(n: usize) -> (SocketAddr, thread::JoinHandle<()>) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let handle = thread::spawn(move || {
            for _ in 0..n {
                let Ok((mut stream, _)) = listener.accept() else {
                    return;
                };
                let mut buf = [0u8; 2048];
                let mut head = Vec::new();
                while !head.windows(4).any(|w| w == b"\r\n\r\n") {
                    match stream.read(&mut buf) {
                        Ok(0) | Err(_) => break,
                        Ok(n) => head.extend_from_slice(&buf[..n]),
                    }
                }
                let _ = stream.write_all(b"HTTP/1.1 200 OK\r\ncontent-length: 6\r\n\r\nhello\n");
            }
        });
        (addr, handle)
    }

    fn fetch_via(proxy: &ChaosProxy) -> Vec<u8> {
        let mut stream = TcpStream::connect(proxy.local_addr()).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_millis(500)))
            .unwrap();
        stream
            .write_all(b"GET / HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n")
            .unwrap();
        let mut out = Vec::new();
        let _ = stream.read_to_end(&mut out);
        out
    }

    #[test]
    fn quiet_plan_is_byte_transparent() {
        let (upstream, upstream_thread) = fixed_upstream(2);
        let proxy = ChaosProxy::start(upstream, NetFaultPlan::quiet(1)).unwrap();
        for _ in 0..2 {
            let got = fetch_via(&proxy);
            assert_eq!(got, b"HTTP/1.1 200 OK\r\ncontent-length: 6\r\n\r\nhello\n");
        }
        let log = proxy.stop();
        assert!(log.is_quiet(), "{log:?}");
        assert_eq!(log.conns, 2);
        upstream_thread.join().unwrap();
    }

    #[test]
    fn corrupt_byte_breaks_the_status_line_but_logs_ground_truth() {
        let (upstream, upstream_thread) = fixed_upstream(1);
        let mut plan = NetFaultPlan::quiet(7);
        plan.set_rate(NetFaultOp::CorruptByte, 1.0);
        let proxy = ChaosProxy::start(upstream, plan).unwrap();
        let got = fetch_via(&proxy);
        assert!(!got.starts_with(b"HTTP/1."), "{got:?}");
        assert!(got.ends_with(b"hello\n"), "body must be untouched");
        let log = proxy.stop();
        assert_eq!(log.count(NetFaultOp::CorruptByte), 1);
        assert_eq!(log.total(), 1);
        assert!(log.render().contains("corrupt-byte=1"), "{}", log.render());
        upstream_thread.join().unwrap();
    }

    #[test]
    fn torn_write_truncates_and_reset_returns_nothing() {
        let (upstream, upstream_thread) = fixed_upstream(1);
        let mut plan = NetFaultPlan::quiet(3);
        plan.set_rate(NetFaultOp::TornWrite, 1.0);
        let proxy = ChaosProxy::start(upstream, plan).unwrap();
        let torn = fetch_via(&proxy);
        assert!(!torn.is_empty() && !torn.ends_with(b"hello\n"), "{torn:?}");
        proxy.stop();
        upstream_thread.join().unwrap();

        let (upstream, upstream_thread) = fixed_upstream(1);
        let mut plan = NetFaultPlan::quiet(3);
        plan.set_rate(NetFaultOp::ConnReset, 1.0);
        let proxy = ChaosProxy::start(upstream, plan).unwrap();
        let nothing = fetch_via(&proxy);
        assert!(nothing.is_empty(), "{nothing:?}");
        let log = proxy.stop();
        assert_eq!(log.count(NetFaultOp::ConnReset), 1);
        drop(upstream_thread); // reset never reaches the upstream
    }

    #[test]
    fn slow_loris_still_delivers_identical_bytes() {
        let (upstream, upstream_thread) = fixed_upstream(1);
        let mut plan = NetFaultPlan::quiet(9);
        plan.set_rate(NetFaultOp::SlowLoris, 1.0);
        plan.dribble_chunk = 4;
        plan.dribble_delay_ms = 1;
        let proxy = ChaosProxy::start(upstream, plan).unwrap();
        let got = fetch_via(&proxy);
        assert_eq!(got, b"HTTP/1.1 200 OK\r\ncontent-length: 6\r\n\r\nhello\n");
        let log = proxy.stop();
        assert_eq!(log.count(NetFaultOp::SlowLoris), 1);
        assert!(NetFaultOp::SlowLoris.delivers_response());
        upstream_thread.join().unwrap();
    }

    #[test]
    fn fault_schedule_is_deterministic_in_the_seed() {
        let plan_a = NetFaultPlan::uniform(42, 0.5);
        let plan_b = NetFaultPlan::uniform(42, 0.5);
        let plan_c = NetFaultPlan::uniform(43, 0.5);
        let picks_a: Vec<_> = (0..64).map(|c| plan_a.choose(c)).collect();
        let picks_b: Vec<_> = (0..64).map(|c| plan_b.choose(c)).collect();
        let picks_c: Vec<_> = (0..64).map(|c| plan_c.choose(c)).collect();
        assert_eq!(picks_a, picks_b);
        assert_ne!(picks_a, picks_c);
        assert!(picks_a.iter().any(|p| p.is_some()));
        assert!(picks_a.iter().any(|p| p.is_none()));
    }
}
