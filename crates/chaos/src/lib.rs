//! Seeded fault injection for serialized TSV datasets.
//!
//! The DynamIPs loaders ingest flat TSV dumps (the IP-echo dataset of
//! `dynamips-atlas` and the association dataset of `dynamips-cdn`). Real
//! dumps of this shape arrive damaged in well-known ways: collection jobs
//! die mid-write, encodings get mangled in transit, fields are dropped or
//! doubled by buggy exporters, clocks skew, and concurrent writers
//! interleave. This crate reproduces those faults *deterministically*: a
//! seed and a per-line corruption rate produce the same damaged dump every
//! time, and every injected fault is tagged with ground truth so a harness
//! can verify that the lossy loaders quarantine exactly what was broken
//! and keep everything that was not.
//!
//! The operators are dataset-agnostic — they only assume TAB-separated
//! fields, an identifier in the first column, a timestamp-like multi-digit
//! integer column after it, and address-shaped fields — so the same
//! harness exercises both dataset formats.

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod net;

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::borrow::Cow;
use std::collections::BTreeMap;
use std::net::{Ipv4Addr, Ipv6Addr};

/// One fault class the injector can apply.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum CorruptionOp {
    /// Replace the line with random printable garbage.
    GarbageLine,
    /// Sprinkle multi-byte mojibake (U+FFFD and friends) through the line.
    MojibakeLine,
    /// Remove one TAB-separated field.
    DropField,
    /// Insert a spurious extra field.
    ExtraField,
    /// Emit the line twice (duplicate record).
    DuplicateLine,
    /// Swap the line with its predecessor (out-of-order record).
    SwapLines,
    /// Mangle the timestamp-like column: a large forward skew or a
    /// non-parseable negative value, chosen at random.
    SkewTimestamp,
    /// Replace an address field with one of the other address family.
    MixedFamily,
    /// Replace the first column with an identifier stolen from an earlier
    /// line (probe-id / prefix collision; the line still parses).
    CollideId,
    /// Tear the line mid-write and splice in the tail of the previous line
    /// (interleaved partial write).
    TornWrite,
    /// Cut the whole file at a random point (truncated dump). Applied at
    /// most once, with the same per-line probability.
    TruncateFile,
}

/// The per-line operators, i.e. everything except [`CorruptionOp::TruncateFile`].
const LINE_OPS: [CorruptionOp; 10] = [
    CorruptionOp::GarbageLine,
    CorruptionOp::MojibakeLine,
    CorruptionOp::DropField,
    CorruptionOp::ExtraField,
    CorruptionOp::DuplicateLine,
    CorruptionOp::SwapLines,
    CorruptionOp::SkewTimestamp,
    CorruptionOp::MixedFamily,
    CorruptionOp::CollideId,
    CorruptionOp::TornWrite,
];

impl CorruptionOp {
    /// Every operator, in a stable order.
    pub fn all() -> &'static [CorruptionOp] {
        const ALL: [CorruptionOp; 11] = [
            CorruptionOp::GarbageLine,
            CorruptionOp::MojibakeLine,
            CorruptionOp::DropField,
            CorruptionOp::ExtraField,
            CorruptionOp::DuplicateLine,
            CorruptionOp::SwapLines,
            CorruptionOp::SkewTimestamp,
            CorruptionOp::MixedFamily,
            CorruptionOp::CollideId,
            CorruptionOp::TornWrite,
            CorruptionOp::TruncateFile,
        ];
        &ALL
    }

    /// Stable kebab-case label, for reports and degradation accounting.
    pub fn label(&self) -> &'static str {
        match self {
            CorruptionOp::GarbageLine => "garbage-line",
            CorruptionOp::MojibakeLine => "mojibake-line",
            CorruptionOp::DropField => "drop-field",
            CorruptionOp::ExtraField => "extra-field",
            CorruptionOp::DuplicateLine => "duplicate-line",
            CorruptionOp::SwapLines => "swap-lines",
            CorruptionOp::SkewTimestamp => "skew-timestamp",
            CorruptionOp::MixedFamily => "mixed-family",
            CorruptionOp::CollideId => "collide-id",
            CorruptionOp::TornWrite => "torn-write",
            CorruptionOp::TruncateFile => "truncate-file",
        }
    }

    /// Whether a lossy loader can still recover the affected record(s).
    /// `SwapLines` is repairable (loaders re-sort or are order-agnostic),
    /// `DuplicateLine` and `CollideId` keep parsing; the rest destroy at
    /// least part of the affected line.
    pub fn recoverable(&self) -> bool {
        matches!(
            self,
            CorruptionOp::DuplicateLine | CorruptionOp::SwapLines | CorruptionOp::CollideId
        )
    }
}

impl std::fmt::Display for CorruptionOp {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Ground truth for one injected fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AppliedOp {
    /// 1-based line number *in the corrupted output* of the (first)
    /// affected line. For [`CorruptionOp::TruncateFile`] this is the first
    /// line torn or removed by the cut.
    pub line: usize,
    /// The fault applied there.
    pub op: CorruptionOp,
}

/// Ground-truth record of everything [`corrupt_tsv`] did to a dump.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CorruptionLog {
    /// Non-blank, non-comment input lines considered for corruption.
    pub lines_in: usize,
    /// Input lines emitted verbatim, in place, and not destroyed by a file
    /// truncation — the records a lossy loader must recover.
    pub clean_lines: usize,
    /// Every injected fault, in application order.
    pub applied: Vec<AppliedOp>,
}

impl CorruptionLog {
    /// Faults grouped by operator.
    pub fn counts(&self) -> BTreeMap<CorruptionOp, u64> {
        let mut m = BTreeMap::new();
        for a in &self.applied {
            *m.entry(a.op).or_insert(0) += 1;
        }
        m
    }

    /// Number of injected faults of one operator.
    pub fn count(&self, op: CorruptionOp) -> u64 {
        self.applied.iter().filter(|a| a.op == op).count() as u64
    }

    /// Total injected faults.
    pub fn total(&self) -> u64 {
        self.applied.len() as u64
    }

    /// Whether the dump came through untouched.
    pub fn is_identity(&self) -> bool {
        self.applied.is_empty()
    }

    /// Render the per-operator fault counts as an aligned table.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        // Writing to a String cannot fail.
        let _ = writeln!(
            out,
            "{} faults over {} lines ({} left clean)",
            self.total(),
            self.lines_in,
            self.clean_lines
        );
        for (op, n) in self.counts() {
            let _ = writeln!(out, "  {:<16} {:>8}", op.label(), n);
        }
        out
    }
}

/// Scratch state threaded through per-line corruption. Untouched lines are
/// borrowed from the input — real dumps run to tens of millions of lines,
/// and at low rates almost every line passes through clean, so per-line
/// allocations would dominate the whole harness.
struct Corruptor<'a> {
    /// Emitted lines and whether each is a verbatim, in-place original.
    out: Vec<(Cow<'a, str>, bool)>,
    /// First-column values of previously emitted clean lines (collision
    /// donors), capped.
    seen_ids: Vec<&'a str>,
    /// The previous original content line (torn-write donor).
    prev_original: Option<&'a str>,
    log: CorruptionLog,
}

/// Maximum identifier pool for [`CorruptionOp::CollideId`].
const SEEN_ID_CAP: usize = 1024;

/// Deterministically corrupt a TSV dump.
///
/// Each non-blank, non-comment line is hit with probability `rate`
/// (`0.0..=1.0`) by one operator drawn uniformly from the per-line set;
/// afterwards the whole file is truncated with probability `rate`. Blank
/// lines and `#` comments pass through untouched. Returns the damaged text
/// plus a [`CorruptionLog`] tagging every fault with ground truth.
///
/// The same `(text, seed, rate)` triple always produces the same output.
///
/// # Panics
///
/// Panics if `rate` is not a probability (NaN or outside `0.0..=1.0`) —
/// the harness treats that as a usage error, not data corruption.
pub fn corrupt_tsv(text: &str, seed: u64, rate: f64) -> (String, CorruptionLog) {
    assert!(
        (0.0..=1.0).contains(&rate),
        "corruption rate must be in 0.0..=1.0, got {rate}"
    );
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut c = Corruptor {
        out: Vec::new(),
        seen_ids: Vec::new(),
        prev_original: None,
        log: CorruptionLog::default(),
    };

    for line in text.lines() {
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            c.out.push((Cow::Borrowed(line), false));
            continue;
        }
        c.log.lines_in += 1;
        if rate > 0.0 && rng.gen_bool(rate) {
            let op = LINE_OPS[rng.gen_range(0..LINE_OPS.len())];
            apply_line_op(&mut c, &mut rng, line, op);
        } else {
            emit_clean(&mut c, line);
        }
        c.prev_original = Some(line);
    }

    if c.log.lines_in >= 2 && rate > 0.0 && rng.gen_bool(rate) {
        truncate_file(&mut c, &mut rng);
    }

    c.log.clean_lines = c.out.iter().filter(|(_, clean)| *clean).count();
    let mut text_out = String::with_capacity(text.len() + 64);
    for (l, _) in &c.out {
        text_out.push_str(l);
        text_out.push('\n');
    }
    (text_out, c.log)
}

/// Emit `line` untouched and remember its identifier for collisions.
fn emit_clean<'a>(c: &mut Corruptor<'a>, line: &'a str) {
    if c.seen_ids.len() < SEEN_ID_CAP {
        if let Some(id) = line.split('\t').next() {
            c.seen_ids.push(id);
        }
    }
    c.out.push((Cow::Borrowed(line), true));
}

fn apply_line_op<'a>(c: &mut Corruptor<'a>, rng: &mut SmallRng, line: &'a str, op: CorruptionOp) {
    let tag = |c: &mut Corruptor, op| {
        let line = c.out.len(); // 1-based: the slot about to be filled
        c.log.applied.push(AppliedOp { line: line + 1, op });
    };
    match op {
        CorruptionOp::GarbageLine => {
            tag(c, op);
            let n = rng.gen_range(1..40);
            let garbage: String = (0..n)
                .map(|_| {
                    let b = rng.gen_range(0x20u8..0x7f);
                    if b == b' ' && rng.gen_bool(0.2) {
                        '\t'
                    } else {
                        b as char
                    }
                })
                .collect();
            c.out.push((Cow::Owned(garbage), false));
        }
        CorruptionOp::MojibakeLine => {
            tag(c, op);
            const JUNK: [char; 5] = ['\u{FFFD}', 'Ã', '¼', '�', '漢'];
            let stride = rng.gen_range(2..6);
            let mangled: String = line
                .chars()
                .enumerate()
                .map(|(i, ch)| {
                    if i % stride == 0 {
                        JUNK[(i / stride) % JUNK.len()]
                    } else {
                        ch
                    }
                })
                .collect();
            c.out.push((Cow::Owned(mangled), false));
        }
        CorruptionOp::DropField => {
            tag(c, op);
            let mut fields: Vec<&str> = line.split('\t').collect();
            if fields.len() > 1 {
                let victim = rng.gen_range(0..fields.len());
                fields.remove(victim);
            } else {
                fields.clear();
            }
            c.out.push((Cow::Owned(fields.join("\t")), false));
        }
        CorruptionOp::ExtraField => {
            tag(c, op);
            let mut fields: Vec<&str> = line.split('\t').collect();
            let at = rng.gen_range(0..=fields.len());
            fields.insert(at, "xtra");
            c.out.push((Cow::Owned(fields.join("\t")), false));
        }
        CorruptionOp::DuplicateLine => {
            // The original copy stays recoverable; the echo is the fault.
            emit_clean(c, line);
            tag(c, op);
            c.out.push((Cow::Borrowed(line), false));
        }
        CorruptionOp::SwapLines => {
            if c.out.len() < 2 {
                // Nothing to swap with yet; leave the line alone.
                emit_clean(c, line);
                return;
            }
            tag(c, op);
            c.out.push((Cow::Borrowed(line), false));
            let n = c.out.len();
            c.out.swap(n - 2, n - 1);
            c.out[n - 2].1 = false;
        }
        CorruptionOp::SkewTimestamp => {
            let fields: Vec<&str> = line.split('\t').collect();
            // Timestamp-like column: the first multi-digit integer after
            // the identifier (hour in the echo layout, day in the
            // association layout); single-digit flag columns don't match.
            let Some(idx) = fields
                .iter()
                .enumerate()
                .skip(1)
                .find(|(_, f)| f.len() >= 2 && f.bytes().all(|b| b.is_ascii_digit()))
                .map(|(i, _)| i)
            else {
                emit_clean(c, line);
                return;
            };
            tag(c, op);
            let mut fields: Vec<String> = fields.into_iter().map(String::from).collect();
            if rng.gen_bool(0.5) {
                // Forward skew: parses, but lands far in the future.
                let base: u64 = fields[idx].parse().unwrap_or(0);
                let skew = rng.gen_range(100_000u64..10_000_000);
                fields[idx] = (base.saturating_add(skew)).to_string();
            } else {
                // Negative timestamp: fails to parse as unsigned.
                fields[idx] = format!("-{}", fields[idx]);
            }
            c.out.push((Cow::Owned(fields.join("\t")), false));
        }
        CorruptionOp::MixedFamily => {
            let fields: Vec<&str> = line.split('\t').collect();
            let v4_at = fields.iter().position(|f| f.parse::<Ipv4Addr>().is_ok());
            let v6_at = fields.iter().position(|f| f.parse::<Ipv6Addr>().is_ok());
            let (idx, replacement) = match (v4_at, v6_at) {
                (Some(i), _) => (i, format!("2001:db8::{:x}", rng.gen_range(1u32..0xffff))),
                (None, Some(i)) => (i, format!("203.0.113.{}", rng.gen_range(1u32..255))),
                (None, None) => {
                    emit_clean(c, line);
                    return;
                }
            };
            tag(c, op);
            let mut fields: Vec<String> = fields.into_iter().map(String::from).collect();
            fields[idx] = replacement;
            c.out.push((Cow::Owned(fields.join("\t")), false));
        }
        CorruptionOp::CollideId => {
            if c.seen_ids.is_empty() {
                emit_clean(c, line);
                return;
            }
            tag(c, op);
            let donor = c.seen_ids[rng.gen_range(0..c.seen_ids.len())];
            let mut fields: Vec<String> = line.split('\t').map(String::from).collect();
            fields[0] = donor.to_string();
            c.out.push((Cow::Owned(fields.join("\t")), false));
        }
        CorruptionOp::TornWrite => {
            let Some(prev) = c.prev_original else {
                emit_clean(c, line);
                return;
            };
            tag(c, op);
            let cut = floor_char_boundary(line, rng.gen_range(0..line.len().max(1)));
            let splice = floor_char_boundary(prev, rng.gen_range(0..prev.len().max(1)));
            c.out.push((
                Cow::Owned(format!("{}{}", &line[..cut], &prev[splice..])),
                false,
            ));
        }
        // File-level op; `truncate_file` applies it after the per-line
        // pass. Reaching it here is a dispatch bug — degrade to identity
        // rather than panic.
        CorruptionOp::TruncateFile => emit_clean(c, line),
    }
}

/// Cut the accumulated output at a random point in its second half: the
/// cut line keeps a prefix of itself, everything after it disappears.
fn truncate_file(c: &mut Corruptor, rng: &mut SmallRng) {
    if c.out.len() < 2 {
        return;
    }
    let at = rng.gen_range(c.out.len() / 2..c.out.len());
    c.log.applied.push(AppliedOp {
        line: at + 1,
        op: CorruptionOp::TruncateFile,
    });
    let (line, _) = &c.out[at];
    let keep = floor_char_boundary(line, rng.gen_range(0..line.len().max(1)));
    let partial = line[..keep].to_string();
    c.out.truncate(at);
    if !partial.is_empty() {
        c.out.push((Cow::Owned(partial), false));
    }
}

/// Largest char-boundary index `<= at` (stable substitute for the unstable
/// `str::floor_char_boundary`).
fn floor_char_boundary(s: &str, at: usize) -> usize {
    let mut at = at.min(s.len());
    while at > 0 && !s.is_char_boundary(at) {
        at -= 1;
    }
    at
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A dump shaped like the real ones: id, family-ish field, timestamp,
    /// addresses.
    fn sample(lines: usize) -> String {
        use std::fmt::Write as _;
        let mut s = String::from("# synthetic dump\n");
        for i in 0..lines {
            writeln!(
                s,
                "{}\t4\t{}\t10.0.{}.1\t2001:db8:0:{:x}::1",
                i / 4,
                100 + i,
                i % 200,
                i
            )
            .unwrap();
        }
        s
    }

    #[test]
    fn rate_zero_is_identity() {
        let text = sample(50);
        let (out, log) = corrupt_tsv(&text, 7, 0.0);
        assert_eq!(out, text);
        assert!(log.is_identity());
        assert_eq!(log.lines_in, 50);
        assert_eq!(log.clean_lines, 50);
    }

    #[test]
    fn corruption_is_deterministic_per_seed() {
        let text = sample(120);
        let (a1, l1) = corrupt_tsv(&text, 42, 0.3);
        let (a2, l2) = corrupt_tsv(&text, 42, 0.3);
        assert_eq!(a1, a2);
        assert_eq!(l1, l2);
        let (b, _) = corrupt_tsv(&text, 43, 0.3);
        assert_ne!(a1, b, "different seeds should damage differently");
    }

    #[test]
    fn full_rate_touches_nearly_everything() {
        let text = sample(100);
        let (out, log) = corrupt_tsv(&text, 1, 1.0);
        assert_ne!(out, text);
        // Every line is hit by an operator; a handful may fall back to a
        // clean emit (swap/collide/torn on the first line), and the final
        // truncation removes tagged-but-cut entries from the output.
        assert!(log.total() >= 90, "only {} faults", log.total());
        assert!(log.clean_lines <= 10, "{} clean", log.clean_lines);
    }

    #[test]
    fn moderate_rate_leaves_most_lines_clean() {
        let text = sample(400);
        let (_, log) = corrupt_tsv(&text, 9, 0.05);
        assert!(log.clean_lines >= 300, "{} clean", log.clean_lines);
        assert!(log.total() >= 5);
    }

    #[test]
    fn comments_and_blanks_pass_through() {
        let text = "# header\n\n# more\n";
        let (out, log) = corrupt_tsv(text, 3, 1.0);
        assert_eq!(out, text);
        assert_eq!(log.lines_in, 0);
        assert!(log.is_identity());
    }

    #[test]
    fn every_line_operator_eventually_fires() {
        let text = sample(200);
        let mut seen = std::collections::BTreeSet::new();
        for seed in 0..40 {
            let (_, log) = corrupt_tsv(&text, seed, 0.5);
            seen.extend(log.applied.iter().map(|a| a.op));
        }
        for op in CorruptionOp::all() {
            assert!(seen.contains(op), "{op} never fired");
        }
    }

    #[test]
    fn applied_line_numbers_point_into_the_output() {
        let text = sample(80);
        for seed in 0..20 {
            let (out, log) = corrupt_tsv(&text, seed, 0.4);
            if log.count(CorruptionOp::TruncateFile) > 0 {
                // Tags behind a truncation cut legitimately point past the
                // shortened output.
                continue;
            }
            let nlines = out.lines().count();
            for a in &log.applied {
                assert!(a.line <= nlines, "{a:?} out of range ({nlines} lines)");
            }
        }
    }

    #[test]
    fn duplicate_keeps_one_clean_copy() {
        // Drive seeds until a duplicate fires, then check the accounting.
        let text = sample(60);
        for seed in 0..100 {
            let (out, log) = corrupt_tsv(&text, seed, 0.3);
            if let Some(tag) = log
                .applied
                .iter()
                .find(|a| a.op == CorruptionOp::DuplicateLine)
            {
                let lines: Vec<&str> = out.lines().collect();
                // Tagged slot holds the echo of its predecessor (unless a
                // later truncation ate it).
                if tag.line <= lines.len() && tag.line >= 2 {
                    assert_eq!(lines[tag.line - 1], lines[tag.line - 2]);
                    return;
                }
            }
        }
        panic!("duplicate never fired in 100 seeds");
    }

    #[test]
    fn rate_must_be_a_probability() {
        let r = std::panic::catch_unwind(|| corrupt_tsv("a\tb\n", 0, 1.5));
        assert!(r.is_err());
    }

    #[test]
    fn labels_are_stable_kebab_case() {
        for op in CorruptionOp::all() {
            let l = op.label();
            assert!(l.chars().all(|c| c.is_ascii_lowercase() || c == '-'));
        }
        assert_eq!(CorruptionOp::TruncateFile.label(), "truncate-file");
        assert!(CorruptionOp::SwapLines.recoverable());
        assert!(!CorruptionOp::GarbageLine.recoverable());
    }

    #[test]
    fn render_mentions_counts() {
        let (_, log) = corrupt_tsv(&sample(100), 11, 0.5);
        let text = log.render();
        assert!(text.contains("faults over 100 lines"), "{text}");
    }
}
