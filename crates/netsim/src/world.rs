//! Assembly of many ISPs into one synthetic Internet.
//!
//! A [`World`] owns the ISP configurations plus the lookup substrate the
//! analysis needs: an AS registry (names, countries, access types), a BGP
//! routing table (every ISP's announcements) and an RIR delegation map.
//! Simulation runs per-ISP and streams results to a consumer, so only one
//! ISP's timelines are resident at a time.

use crate::config::IspConfig;
use crate::sim::{IspSim, IspSimResult};
use crate::time::Window;
use dynamips_routing::{AsInfo, AsRegistry, RirMap, RoutingTable};

/// A synthetic Internet: ISPs plus routing/registry/RIR metadata.
#[derive(Debug)]
pub struct World {
    seed: u64,
    registry: AsRegistry,
    routing: RoutingTable,
    rirs: RirMap,
    isps: Vec<IspConfig>,
}

impl World {
    /// Create an empty world with a master seed. Everything downstream —
    /// simulation, observation layers — derives determinism from this seed.
    pub fn new(seed: u64) -> Self {
        World {
            seed,
            registry: AsRegistry::new(),
            routing: RoutingTable::new(),
            rirs: RirMap::new(),
            isps: Vec::new(),
        }
    }

    /// The master seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Add an ISP: registers its AS metadata, announces its prefixes in the
    /// BGP table, and records RIR delegations for its address space.
    pub fn add_isp(&mut self, cfg: IspConfig) {
        cfg.validate().expect("invalid ISP config");
        self.registry.register(AsInfo {
            asn: cfg.asn,
            name: cfg.name.clone(),
            country: cfg.country.clone(),
            rir: cfg.rir,
            access: cfg.access,
        });
        if let Some(plan) = &cfg.v4_plan {
            for ann in plan.effective_announcements() {
                self.routing.announce_v4(ann, cfg.asn);
                self.rirs.delegate_v4(ann, cfg.rir);
            }
        }
        if let Some(plan) = &cfg.v6_plan {
            for agg in &plan.aggregates {
                self.routing.announce_v6(*agg, cfg.asn);
                self.rirs.delegate_v6(*agg, cfg.rir);
            }
        }
        self.isps.push(cfg);
    }

    /// The AS registry.
    pub fn registry(&self) -> &AsRegistry {
        &self.registry
    }

    /// The BGP routing table.
    pub fn routing(&self) -> &RoutingTable {
        &self.routing
    }

    /// The RIR delegation map.
    pub fn rirs(&self) -> &RirMap {
        &self.rirs
    }

    /// The configured ISPs.
    pub fn isps(&self) -> &[IspConfig] {
        &self.isps
    }

    /// Simulate every ISP over `window`, streaming each result to `f` so
    /// peak memory stays bounded by the largest single ISP.
    pub fn run_each(&self, window: Window, mut f: impl FnMut(IspSimResult)) {
        for cfg in &self.isps {
            let sim = IspSim::new(cfg.clone(), window, self.seed);
            f(sim.run());
        }
    }

    /// Simulate one ISP by ASN (None if the ASN is not in this world).
    pub fn run_one(&self, asn: dynamips_routing::Asn, window: Window) -> Option<IspSimResult> {
        let cfg = self.isps.iter().find(|c| c.asn == asn)?;
        Some(IspSim::new(cfg.clone(), window, self.seed).run())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{
        CpeV6Behavior, OutageConfig, SubscriberClass, V4Policy, V4PoolPlan, V6Policy, V6PoolPlan,
    };
    use crate::time::SimTime;
    use dynamips_routing::{AccessType, Asn, Rir};

    fn tiny_isp(asn: u32, v4_pool: &str, v6_agg: &str) -> IspConfig {
        IspConfig {
            asn: Asn(asn),
            name: format!("ISP{asn}"),
            country: "X".into(),
            rir: Rir::RipeNcc,
            access: AccessType::FixedLine,
            v4_plan: Some(V4PoolPlan {
                pools: vec![(v4_pool.parse().unwrap(), 1.0)],
                announcements: vec![],
                p_near: 0.0,
                near_radius: 16,
            }),
            v6_plan: Some(V6PoolPlan {
                aggregates: vec![v6_agg.parse().unwrap()],
                region_len: 40,
                delegated_len: 56,
                regions_per_aggregate: 2,
                p_stay_region: 1.0,
            }),
            classes: vec![SubscriberClass {
                weight: 1.0,
                dual_stack: true,
                v4: Some(V4Policy::PeriodicRenumber {
                    period_hours: 24,
                    jitter: 0.0,
                }),
                v6: Some(V6Policy::PeriodicRenumber {
                    period_hours: 24,
                    jitter: 0.0,
                }),
                coupled: true,
                cpe_mix: vec![(1.0, CpeV6Behavior::ZeroOut)],
                outages: OutageConfig::none(),
            }],
            stabilization: vec![],
            subscribers: 5,
        }
    }

    #[test]
    fn add_isp_populates_substrate() {
        let mut w = World::new(7);
        w.add_isp(tiny_isp(64500, "192.0.2.0/24", "2001:db8::/32"));
        assert_eq!(w.registry().len(), 1);
        assert_eq!(
            w.routing().origin_v4("192.0.2.55".parse().unwrap()),
            Some(Asn(64500))
        );
        assert_eq!(
            w.rirs().rir_of_v6("2001:db8:1:2::1".parse().unwrap()),
            Some(Rir::RipeNcc)
        );
    }

    #[test]
    fn run_each_streams_every_isp() {
        let mut w = World::new(7);
        w.add_isp(tiny_isp(64500, "192.0.2.0/24", "2001:db8::/32"));
        w.add_isp(tiny_isp(64501, "198.51.100.0/24", "3fff::/32"));
        let window = Window::new(SimTime(0), SimTime(24 * 30));
        let mut seen = Vec::new();
        w.run_each(window, |res| {
            assert_eq!(res.timelines.len(), 5);
            seen.push(res.config.asn);
        });
        assert_eq!(seen, vec![Asn(64500), Asn(64501)]);
    }

    #[test]
    fn run_one_finds_isp_by_asn() {
        let mut w = World::new(7);
        w.add_isp(tiny_isp(64500, "192.0.2.0/24", "2001:db8::/32"));
        assert!(w
            .run_one(Asn(64500), Window::new(SimTime(0), SimTime(48)))
            .is_some());
        assert!(w
            .run_one(Asn(1), Window::new(SimTime(0), SimTime(48)))
            .is_none());
    }

    #[test]
    fn runs_are_deterministic_for_a_seed() {
        let window = Window::new(SimTime(0), SimTime(24 * 60));
        let run = |seed| {
            let mut w = World::new(seed);
            w.add_isp(tiny_isp(64500, "192.0.2.0/24", "2001:db8::/32"));
            let res = w.run_one(Asn(64500), window).unwrap();
            res.timelines
                .iter()
                .flat_map(|t| t.v6.iter().map(|s| (s.start, s.lan64)))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(42), run(42));
        assert_ne!(run(42), run(43));
    }
}
