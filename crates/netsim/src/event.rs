//! The discrete-event queue.

use crate::time::SimTime;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// A min-heap event queue. Events at the same instant are delivered in
/// insertion order (a monotonically increasing sequence number breaks ties),
/// which keeps simulations deterministic for a fixed seed.
#[derive(Debug)]
pub(crate) struct EventQueue<E> {
    heap: BinaryHeap<Reverse<(SimTime, u64, WrappedEvent<E>)>>,
    seq: u64,
}

/// Wrapper that defers all ordering to the (time, seq) key.
#[derive(Debug)]
struct WrappedEvent<E>(E);

impl<E> PartialEq for WrappedEvent<E> {
    fn eq(&self, _: &Self) -> bool {
        true
    }
}
impl<E> Eq for WrappedEvent<E> {}
impl<E> PartialOrd for WrappedEvent<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for WrappedEvent<E> {
    fn cmp(&self, _: &Self) -> std::cmp::Ordering {
        std::cmp::Ordering::Equal
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            seq: 0,
        }
    }
}

impl<E> EventQueue<E> {
    /// Create an empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedule `event` at `time`.
    pub(crate) fn schedule(&mut self, time: SimTime, event: E) {
        self.heap
            .push(Reverse((time, self.seq, WrappedEvent(event))));
        self.seq += 1;
    }

    /// Pop the earliest event.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.heap
            .pop()
            .map(|Reverse((t, _, WrappedEvent(e)))| (t, e))
    }

    /// Time of the earliest pending event.
    #[cfg(test)]
    pub(crate) fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|Reverse((t, _, _))| *t)
    }

    /// Number of pending events.
    #[cfg(test)]
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether the queue is empty.
    #[cfg(test)]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delivers_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime(5), "c");
        q.schedule(SimTime(1), "a");
        q.schedule(SimTime(3), "b");
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).collect();
        assert_eq!(
            order,
            vec![(SimTime(1), "a"), (SimTime(3), "b"), (SimTime(5), "c")]
        );
    }

    #[test]
    fn same_instant_is_fifo() {
        let mut q = EventQueue::new();
        for i in 0..10 {
            q.schedule(SimTime(7), i);
        }
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn peek_and_len() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
        q.schedule(SimTime(9), ());
        q.schedule(SimTime(2), ());
        assert_eq!(q.peek_time(), Some(SimTime(2)));
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn interleaved_schedule_and_pop() {
        let mut q = EventQueue::new();
        q.schedule(SimTime(10), "late");
        q.schedule(SimTime(2), "early");
        assert_eq!(q.pop(), Some((SimTime(2), "early")));
        // Scheduling after a pop still orders correctly.
        q.schedule(SimTime(5), "mid");
        assert_eq!(q.pop(), Some((SimTime(5), "mid")));
        assert_eq!(q.pop(), Some((SimTime(10), "late")));
        assert_eq!(q.pop(), None);
    }
}
