//! Per-subscriber policy instances.
//!
//! An [`IspConfig`] describes a *population*;
//! [`SubscriberPlan`] is the concrete draw for one subscriber: which class
//! it belongs to, which CPE behaviour its home router exhibits, and the
//! stable identifiers of its measurement device.

use crate::config::{CpeV6Behavior, IspConfig, OutageConfig, V4Policy, V6Policy};
use crate::rngutil::weighted_index;
use dynamips_netaddr::eui64_from_mac;
use rand::Rng;

/// Concrete policy assignment for one subscriber.
#[derive(Debug, Clone, PartialEq)]
// lint:allow(dead-pub): values flow to other crates through the pub
// IspSimResult::plans field without the type name being spelled.
pub struct SubscriberPlan {
    /// Index of the class in the ISP config this was drawn from.
    pub class_idx: usize,
    /// Whether the subscriber is dual-stacked.
    pub dual_stack: bool,
    /// IPv4 policy, if any.
    pub v4: Option<V4Policy>,
    /// IPv6 policy, if any.
    pub v6: Option<V6Policy>,
    /// Whether v4 and v6 renumber together.
    pub coupled: bool,
    /// The CPE's /64-selection behaviour.
    pub cpe: CpeV6Behavior,
    /// Outage processes.
    pub outages: OutageConfig,
    /// Stable EUI-64 interface identifier of the subscriber's device.
    pub device_iid: u64,
}

/// Sample a subscriber plan from an ISP configuration.
pub(crate) fn sample_plan<R: Rng + ?Sized>(cfg: &IspConfig, rng: &mut R) -> SubscriberPlan {
    let weights: Vec<f64> = cfg.classes.iter().map(|c| c.weight).collect();
    let class_idx = weighted_index(rng, &weights);
    let class = &cfg.classes[class_idx];

    let cpe = if class.cpe_mix.is_empty() {
        CpeV6Behavior::ZeroOut
    } else {
        let cpe_weights: Vec<f64> = class.cpe_mix.iter().map(|(w, _)| *w).collect();
        class.cpe_mix[weighted_index(rng, &cpe_weights)].1
    };

    // A random locally-administered MAC per subscriber device.
    let mut mac = [0u8; 6];
    rng.fill(&mut mac);
    mac[0] = (mac[0] & 0xfe) | 0x02;

    SubscriberPlan {
        class_idx,
        dual_stack: class.dual_stack,
        v4: class.v4,
        v6: class.v6,
        coupled: class.coupled,
        cpe,
        outages: class.outages,
        device_iid: eui64_from_mac(mac),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{SubscriberClass, V4PoolPlan, V6PoolPlan};
    use crate::rngutil::derive_rng;
    use dynamips_routing::{AccessType, Asn, Rir};

    fn two_class_config() -> IspConfig {
        let class_a = SubscriberClass {
            weight: 0.8,
            dual_stack: true,
            v4: Some(V4Policy::PeriodicRenumber {
                period_hours: 24,
                jitter: 0.0,
            }),
            v6: Some(V6Policy::StableDelegation {
                valid_lifetime_hours: 24 * 14,
                maintenance_mean_hours: f64::INFINITY,
            }),
            coupled: true,
            cpe_mix: vec![
                (0.5, CpeV6Behavior::ZeroOut),
                (
                    0.5,
                    CpeV6Behavior::Scramble {
                        rotate_every_hours: None,
                    },
                ),
            ],
            outages: OutageConfig::quiet(),
        };
        let class_b = SubscriberClass {
            weight: 0.2,
            dual_stack: false,
            v4: Some(V4Policy::DhcpSticky { lease_hours: 48 }),
            v6: None,
            coupled: false,
            cpe_mix: vec![],
            outages: OutageConfig::quiet(),
        };
        IspConfig {
            asn: Asn(64500),
            name: "TestNet".into(),
            country: "Testland".into(),
            rir: Rir::RipeNcc,
            access: AccessType::FixedLine,
            v4_plan: Some(V4PoolPlan {
                pools: vec![("192.0.2.0/24".parse().unwrap(), 1.0)],
                announcements: vec![],
                p_near: 0.0,
                near_radius: 256,
            }),
            v6_plan: Some(V6PoolPlan {
                aggregates: vec!["2001:db8::/32".parse().unwrap()],
                region_len: 40,
                delegated_len: 56,
                regions_per_aggregate: 4,
                p_stay_region: 1.0,
            }),
            classes: vec![class_a, class_b],
            stabilization: vec![],
            subscribers: 100,
        }
    }

    #[test]
    fn class_weights_respected() {
        let cfg = two_class_config();
        let mut rng = derive_rng(11, 0);
        let n = 10_000;
        let class_a = (0..n)
            .filter(|_| sample_plan(&cfg, &mut rng).class_idx == 0)
            .count() as f64;
        assert!((class_a / n as f64 - 0.8).abs() < 0.02);
    }

    #[test]
    fn cpe_mix_respected() {
        let cfg = two_class_config();
        let mut rng = derive_rng(11, 1);
        let plans: Vec<_> = (0..5_000)
            .map(|_| sample_plan(&cfg, &mut rng))
            .filter(|p| p.class_idx == 0)
            .collect();
        let zero_out = plans
            .iter()
            .filter(|p| p.cpe == CpeV6Behavior::ZeroOut)
            .count() as f64;
        let frac = zero_out / plans.len() as f64;
        assert!((frac - 0.5).abs() < 0.05, "{frac}");
    }

    #[test]
    fn plan_fields_follow_class() {
        let cfg = two_class_config();
        let mut rng = derive_rng(11, 2);
        for _ in 0..200 {
            let plan = sample_plan(&cfg, &mut rng);
            match plan.class_idx {
                0 => {
                    assert!(plan.dual_stack);
                    assert!(plan.v6.is_some());
                    assert!(plan.coupled);
                }
                1 => {
                    assert!(!plan.dual_stack);
                    assert!(plan.v6.is_none());
                    assert_eq!(plan.v4, Some(V4Policy::DhcpSticky { lease_hours: 48 }));
                }
                other => panic!("unexpected class {other}"),
            }
        }
    }

    #[test]
    fn device_iids_are_unique_and_eui64_shaped() {
        let cfg = two_class_config();
        let mut rng = derive_rng(11, 3);
        let iids: Vec<u64> = (0..1000)
            .map(|_| sample_plan(&cfg, &mut rng).device_iid)
            .collect();
        let mut dedup = iids.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), iids.len(), "IIDs should not collide");
        for iid in iids {
            assert!(dynamips_netaddr::iid::looks_like_eui64(iid));
        }
    }
}
