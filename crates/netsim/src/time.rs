//! Simulation time.
//!
//! The RIPE Atlas "IP echo" measurements run hourly, so an hour is the
//! natural clock resolution for the whole reproduction. [`SimTime`] counts
//! hours since the simulation epoch (2014-01-01 00:00 UTC), comfortably
//! covering the paper's 2014-09 → 2020-05 Atlas window and the 2020-01 →
//! 2020-06 CDN window.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// Hours in a day.
pub const DAY: u64 = 24;
/// Hours in a week.
pub const WEEK: u64 = 7 * DAY;
/// Hours in a (non-leap) year.
pub const YEAR: u64 = 365 * DAY;

/// Hours since the simulation epoch (2014-01-01 00:00 UTC).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(pub u64);

impl SimTime {
    /// Construct from a civil date (00:00 that day).
    pub fn from_date(date: Date) -> Self {
        let days = date.days_from_epoch();
        SimTime(days * DAY)
    }

    /// Construct from a civil date plus an hour-of-day.
    #[cfg(test)]
    pub(crate) fn from_date_hour(date: Date, hour: u8) -> Self {
        SimTime(date.days_from_epoch() * DAY + hour as u64)
    }

    /// Hours since epoch.
    pub fn hours(&self) -> u64 {
        self.0
    }

    /// Whole days since epoch.
    pub fn days(&self) -> u64 {
        self.0 / DAY
    }

    /// The civil date this instant falls on.
    pub fn date(&self) -> Date {
        Date::from_days_since_epoch(self.days())
    }

    /// Hour of day (0–23).
    pub(crate) fn hour_of_day(&self) -> u8 {
        (self.0 % DAY) as u8
    }

    /// Saturating difference in hours.
    #[cfg(test)]
    pub(crate) fn since(&self, earlier: SimTime) -> u64 {
        self.0.saturating_sub(earlier.0)
    }
}

impl Add<u64> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: u64) -> SimTime {
        SimTime(self.0 + rhs)
    }
}

impl AddAssign<u64> for SimTime {
    fn add_assign(&mut self, rhs: u64) {
        self.0 += rhs;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = u64;
    fn sub(self, rhs: SimTime) -> u64 {
        self.0.saturating_sub(rhs.0)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let d = self.date();
        write!(f, "{}T{:02}", d, self.hour_of_day())
    }
}

/// A civil (proleptic Gregorian) date.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Date {
    /// Year, e.g. 2020.
    pub year: i32,
    /// Month 1–12.
    pub month: u8,
    /// Day of month 1–31.
    pub day: u8,
}

/// Days between 1970-01-01 and the simulation epoch 2014-01-01.
const EPOCH_DAYS_FROM_UNIX: i64 = 16071;

impl Date {
    /// Construct a date; panics on out-of-range month/day to keep call
    /// sites (test fixtures, profiles) honest.
    pub fn new(year: i32, month: u8, day: u8) -> Self {
        assert!((1..=12).contains(&month), "month {month} out of range");
        assert!((1..=31).contains(&day), "day {day} out of range");
        Date { year, month, day }
    }

    /// Days since the Unix epoch (Howard Hinnant's `days_from_civil`).
    fn days_from_unix(&self) -> i64 {
        let y = self.year as i64 - if self.month <= 2 { 1 } else { 0 };
        let era = if y >= 0 { y } else { y - 399 } / 400;
        let yoe = y - era * 400;
        let m = self.month as i64;
        let d = self.day as i64;
        let doy = (153 * (if m > 2 { m - 3 } else { m + 9 }) + 2) / 5 + d - 1;
        let doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;
        era * 146097 + doe - 719468
    }

    /// Days since the simulation epoch (2014-01-01). Panics if the date is
    /// before the epoch: the simulation clock is unsigned.
    pub(crate) fn days_from_epoch(&self) -> u64 {
        let days = self.days_from_unix() - EPOCH_DAYS_FROM_UNIX;
        u64::try_from(days).expect("date before simulation epoch 2014-01-01")
    }

    /// Inverse of [`Date::days_from_epoch`] (Hinnant's `civil_from_days`).
    pub fn from_days_since_epoch(days: u64) -> Self {
        let z = days as i64 + EPOCH_DAYS_FROM_UNIX + 719468;
        let era = if z >= 0 { z } else { z - 146096 } / 146097;
        let doe = z - era * 146097;
        let yoe = (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365;
        let y = yoe + era * 400;
        let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
        let mp = (5 * doy + 2) / 153;
        let d = doy - (153 * mp + 2) / 5 + 1;
        let m = if mp < 10 { mp + 3 } else { mp - 9 };
        Date {
            year: (y + if m <= 2 { 1 } else { 0 }) as i32,
            month: m as u8,
            day: d as u8,
        }
    }
}

impl fmt::Display for Date {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:04}-{:02}-{:02}", self.year, self.month, self.day)
    }
}

/// A half-open simulation window `[start, end)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Window {
    /// Inclusive start.
    pub start: SimTime,
    /// Exclusive end.
    pub end: SimTime,
}

impl Window {
    /// Construct a window; panics if `end < start`.
    pub fn new(start: SimTime, end: SimTime) -> Self {
        assert!(end >= start, "window end before start");
        Window { start, end }
    }

    /// The paper's RIPE Atlas collection window: 2014-09-01 → 2020-05-31.
    pub fn atlas_paper() -> Self {
        Window::new(
            SimTime::from_date(Date::new(2014, 9, 1)),
            SimTime::from_date(Date::new(2020, 5, 31)),
        )
    }

    /// The paper's CDN collection window: 2020-01-01 → 2020-06-01.
    pub fn cdn_paper() -> Self {
        Window::new(
            SimTime::from_date(Date::new(2020, 1, 1)),
            SimTime::from_date(Date::new(2020, 6, 1)),
        )
    }

    /// Window length in hours.
    pub fn hours(&self) -> u64 {
        self.end - self.start
    }

    /// Window length in whole days.
    pub fn days(&self) -> u64 {
        self.hours() / DAY
    }

    /// Whether `t` lies within the window.
    pub fn contains(&self, t: SimTime) -> bool {
        t >= self.start && t < self.end
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epoch_is_2014() {
        assert_eq!(Date::new(2014, 1, 1).days_from_epoch(), 0);
        assert_eq!(SimTime::from_date(Date::new(2014, 1, 1)), SimTime(0));
    }

    #[test]
    fn known_date_offsets() {
        assert_eq!(Date::new(2014, 1, 2).days_from_epoch(), 1);
        assert_eq!(Date::new(2014, 2, 1).days_from_epoch(), 31);
        // 2016 was a leap year.
        assert_eq!(Date::new(2016, 3, 1).days_from_epoch(), 730 + 31 + 29);
        assert_eq!(Date::new(2020, 1, 1).days_from_epoch(), 2191);
    }

    #[test]
    fn round_trip_all_days_of_decade() {
        for days in 0..3700 {
            let d = Date::from_days_since_epoch(days);
            assert_eq!(d.days_from_epoch(), days, "at {d}");
        }
    }

    #[test]
    fn simtime_date_and_hour() {
        let t = SimTime::from_date_hour(Date::new(2020, 5, 31), 13);
        assert_eq!(t.date(), Date::new(2020, 5, 31));
        assert_eq!(t.hour_of_day(), 13);
        assert_eq!(t.to_string(), "2020-05-31T13");
    }

    #[test]
    fn paper_windows_have_expected_lengths() {
        let atlas = Window::atlas_paper();
        // ~69 months.
        assert_eq!(atlas.days(), 2099);
        let cdn = Window::cdn_paper();
        // Jan 1 .. Jun 1 of a leap year: 31+29+31+30+31 = 152 days.
        assert_eq!(cdn.days(), 152);
    }

    #[test]
    fn window_containment() {
        let w = Window::new(SimTime(10), SimTime(20));
        assert!(w.contains(SimTime(10)));
        assert!(w.contains(SimTime(19)));
        assert!(!w.contains(SimTime(20)));
        assert!(!w.contains(SimTime(9)));
        assert_eq!(w.hours(), 10);
    }

    #[test]
    fn arithmetic() {
        let t = SimTime(100);
        assert_eq!((t + 24).hours(), 124);
        assert_eq!(SimTime(124) - t, 24);
        assert_eq!(t - SimTime(124), 0, "saturating");
        assert_eq!(SimTime(124).since(t), 24);
        let mut u = t;
        u += DAY;
        assert_eq!(u, SimTime(124));
    }

    #[test]
    #[should_panic(expected = "month")]
    fn bad_month_panics() {
        Date::new(2020, 13, 1);
    }
}
