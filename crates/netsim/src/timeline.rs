//! Ground-truth assignment timelines.
//!
//! The simulator's output: for every subscriber, the maximal segments of
//! time during which its public IPv4 address and its announced LAN /64
//! were constant. The observation layers sample these (hourly for Atlas,
//! per-transaction for the CDN); the analysis pipeline must recover the
//! configured dynamics from those samples.

use crate::time::SimTime;
use dynamips_netaddr::Ipv6Prefix;
use dynamips_routing::Asn;
use std::net::Ipv4Addr;

/// Identifies one subscriber within the simulated world.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SubscriberId {
    /// The subscriber's access ISP.
    pub asn: Asn,
    /// Index within that ISP's subscriber population.
    pub index: u32,
}

/// A maximal interval `[start, end)` with a constant public IPv4 address.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct V4Segment {
    /// Segment start (assignment time or simulation-window start).
    pub start: SimTime,
    /// Segment end (change, offline, or window end).
    pub end: SimTime,
    /// The public-facing address (the CGNAT gateway address for cellular
    /// subscribers — exactly what an IP-echo service or CDN would see).
    pub addr: Ipv4Addr,
    /// Whether the address is shared through CGNAT.
    pub cgnat: bool,
}

/// A maximal interval `[start, end)` with a constant announced LAN /64.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct V6Segment {
    /// Segment start.
    pub start: SimTime,
    /// Segment end.
    pub end: SimTime,
    /// The prefix the ISP delegated to the CPE (ground truth the
    /// subscriber-boundary inference of Section 5.3 tries to recover).
    pub delegated: Ipv6Prefix,
    /// The /64 the CPE announces on the home LAN (what devices, probes and
    /// the CDN actually observe).
    pub lan64: Ipv6Prefix,
}

/// Full assignment history of one subscriber over a simulation window.
#[derive(Debug, Clone)]
pub struct SubscriberTimeline {
    /// Who this is.
    pub id: SubscriberId,
    /// Whether the subscriber is dual-stacked.
    pub dual_stack: bool,
    /// Stable 64-bit interface identifier of the subscriber's measurement
    /// device (RIPE Atlas probes use stable EUI-64-style IIDs).
    pub device_iid: u64,
    /// IPv4 history, ordered, non-overlapping.
    pub v4: Vec<V4Segment>,
    /// IPv6 history, ordered, non-overlapping.
    pub v6: Vec<V6Segment>,
}

impl SubscriberTimeline {
    /// The IPv4 segment covering `t`, if the subscriber was online with an
    /// address then.
    pub fn v4_at(&self, t: SimTime) -> Option<&V4Segment> {
        // Segments are ordered by start; binary-search the candidate.
        let idx = self.v4.partition_point(|s| s.start <= t);
        let seg = self.v4.get(idx.checked_sub(1)?)?;
        (t < seg.end).then_some(seg)
    }

    /// The IPv6 segment covering `t`.
    pub fn v6_at(&self, t: SimTime) -> Option<&V6Segment> {
        let idx = self.v6.partition_point(|s| s.start <= t);
        let seg = self.v6.get(idx.checked_sub(1)?)?;
        (t < seg.end).then_some(seg)
    }

    /// Number of IPv4 address *changes* in the ground truth (segment
    /// boundaries where the address actually differs; an offline gap with
    /// the same address on both sides is not a change).
    pub fn v4_changes(&self) -> usize {
        self.v4
            .windows(2)
            .filter(|w| w[0].addr != w[1].addr)
            .count()
    }

    /// Number of LAN-/64 changes in the ground truth.
    pub fn v6_changes(&self) -> usize {
        self.v6
            .windows(2)
            .filter(|w| w[0].lan64 != w[1].lan64)
            .count()
    }

    /// Validate ordering/non-overlap invariants; used by tests and debug
    /// assertions in the simulator.
    pub fn check_invariants(&self) -> Result<(), String> {
        for (label, starts_ends) in [
            (
                "v4",
                self.v4.iter().map(|s| (s.start, s.end)).collect::<Vec<_>>(),
            ),
            (
                "v6",
                self.v6.iter().map(|s| (s.start, s.end)).collect::<Vec<_>>(),
            ),
        ] {
            for (i, (start, end)) in starts_ends.iter().enumerate() {
                if end < start {
                    return Err(format!("{label} segment {i} ends before it starts"));
                }
                if i > 0 && starts_ends[i - 1].1 > *start {
                    return Err(format!("{label} segments {i}-1 and {i} overlap"));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pfx(s: &str) -> Ipv6Prefix {
        s.parse().unwrap()
    }

    fn timeline() -> SubscriberTimeline {
        SubscriberTimeline {
            id: SubscriberId {
                asn: Asn(3320),
                index: 0,
            },
            dual_stack: true,
            device_iid: 0x0225_96ff_fe12_3456,
            v4: vec![
                V4Segment {
                    start: SimTime(0),
                    end: SimTime(24),
                    addr: Ipv4Addr::new(84, 128, 0, 1),
                    cgnat: false,
                },
                V4Segment {
                    start: SimTime(24),
                    end: SimTime(48),
                    addr: Ipv4Addr::new(84, 129, 7, 9),
                    cgnat: false,
                },
                // Gap 48..50 (offline), then the same address again.
                V4Segment {
                    start: SimTime(50),
                    end: SimTime(72),
                    addr: Ipv4Addr::new(84, 129, 7, 9),
                    cgnat: false,
                },
            ],
            v6: vec![
                V6Segment {
                    start: SimTime(0),
                    end: SimTime(24),
                    delegated: pfx("2003:40:a0:aa00::/56"),
                    lan64: pfx("2003:40:a0:aa00::/64"),
                },
                V6Segment {
                    start: SimTime(24),
                    end: SimTime(72),
                    delegated: pfx("2003:41:17:2200::/56"),
                    lan64: pfx("2003:41:17:2200::/64"),
                },
            ],
        }
    }

    #[test]
    fn lookup_at_time() {
        let tl = timeline();
        assert_eq!(
            tl.v4_at(SimTime(0)).unwrap().addr,
            Ipv4Addr::new(84, 128, 0, 1)
        );
        assert_eq!(
            tl.v4_at(SimTime(23)).unwrap().addr,
            Ipv4Addr::new(84, 128, 0, 1)
        );
        assert_eq!(
            tl.v4_at(SimTime(24)).unwrap().addr,
            Ipv4Addr::new(84, 129, 7, 9)
        );
        assert!(tl.v4_at(SimTime(49)).is_none(), "offline gap");
        assert!(tl.v4_at(SimTime(72)).is_none(), "window end is exclusive");
        assert_eq!(
            tl.v6_at(SimTime(30)).unwrap().lan64,
            pfx("2003:41:17:2200::/64")
        );
    }

    #[test]
    fn change_counting_ignores_same_address_gaps() {
        let tl = timeline();
        // 84.128.0.1 -> 84.129.7.9 is one change; the gap at hour 48-50
        // resumes the same address, so it is not a change.
        assert_eq!(tl.v4_changes(), 1);
        assert_eq!(tl.v6_changes(), 1);
    }

    #[test]
    fn invariants_hold_for_valid_timeline() {
        timeline().check_invariants().unwrap();
    }

    #[test]
    fn invariants_catch_overlap() {
        let mut tl = timeline();
        tl.v4[1].start = SimTime(10);
        assert!(tl.check_invariants().is_err());
    }

    #[test]
    fn invariants_catch_reversed_segment() {
        let mut tl = timeline();
        tl.v6[0].end = SimTime(0);
        tl.v6[0].start = SimTime(5);
        assert!(tl.check_invariants().is_err());
    }

    #[test]
    fn empty_timeline_lookup() {
        let tl = SubscriberTimeline {
            id: SubscriberId {
                asn: Asn(1),
                index: 0,
            },
            dual_stack: false,
            device_iid: 0,
            v4: vec![],
            v6: vec![],
        };
        assert!(tl.v4_at(SimTime(10)).is_none());
        assert!(tl.v6_at(SimTime(10)).is_none());
        assert_eq!(tl.v4_changes(), 0);
        tl.check_invariants().unwrap();
    }
}
