//! Deterministic sampling helpers.
//!
//! Everything in the simulation is driven by seeded [`rand::rngs::SmallRng`]
//! instances, so whole worlds are reproducible from a single `u64` seed.
//! Only the distributions bundled with `rand` itself are used; the few extra
//! samplers we need (exponential, heavy-tail mixtures) are implemented here
//! by inverse-CDF to avoid an extra dependency.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Derive a child RNG from a parent seed and a stream label, so independent
/// subsystems (per-ISP sims, observation layers) don't share streams.
pub fn derive_rng(seed: u64, stream: u64) -> SmallRng {
    // SplitMix64 over the combined key: cheap, well-distributed, and keeps
    // adjacent (seed, stream) pairs uncorrelated.
    let mut z = seed ^ stream.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^= z >> 31;
    SmallRng::seed_from_u64(z)
}

/// Sample an exponentially distributed duration (in hours) with the given
/// mean, by inverse CDF. Returns at least 1 hour so events always advance
/// the clock.
pub(crate) fn exp_hours<R: Rng + ?Sized>(rng: &mut R, mean_hours: f64) -> u64 {
    debug_assert!(mean_hours > 0.0);
    let u: f64 = rng.gen_range(f64::EPSILON..1.0);
    let h = -mean_hours * u.ln();
    (h.round() as u64).max(1)
}

/// Sample a duration from a bounded-Pareto-like heavy tail: exponential body
/// with probability `1 - tail_prob`, otherwise a tail drawn uniformly in
/// log-space between `body_mean` and `tail_max`. Used for cellular session
/// lifetimes, which the paper finds are "one day or less" for 75% of
/// associations with "a long-tail lasting up to 30 days".
pub(crate) fn heavy_tail_hours<R: Rng + ?Sized>(
    rng: &mut R,
    body_mean: f64,
    tail_prob: f64,
    tail_max: f64,
) -> u64 {
    if rng.gen_bool(tail_prob.clamp(0.0, 1.0)) {
        let lo = body_mean.max(1.0).ln();
        let hi = tail_max.max(body_mean + 1.0).ln();
        let x = rng.gen_range(lo..hi).exp();
        (x.round() as u64).max(1)
    } else {
        exp_hours(rng, body_mean)
    }
}

/// Pick an index according to (not necessarily normalized) weights.
pub(crate) fn weighted_index<R: Rng + ?Sized>(rng: &mut R, weights: &[f64]) -> usize {
    debug_assert!(!weights.is_empty());
    let total: f64 = weights.iter().sum();
    debug_assert!(total > 0.0, "weights must have positive sum");
    let mut x = rng.gen_range(0.0..total);
    for (i, w) in weights.iter().enumerate() {
        if x < *w {
            return i;
        }
        x -= w;
    }
    weights.len() - 1
}

/// Jitter a base period multiplicatively by ±`frac` (e.g. 0.05 → within 5%),
/// keeping at least 1 hour.
pub(crate) fn jitter_period<R: Rng + ?Sized>(rng: &mut R, base_hours: u64, frac: f64) -> u64 {
    if frac <= 0.0 {
        return base_hours.max(1);
    }
    let f = rng.gen_range(1.0 - frac..1.0 + frac);
    ((base_hours as f64 * f).round() as u64).max(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derive_rng_is_deterministic_and_stream_separated() {
        let a1: u64 = derive_rng(42, 1).gen();
        let a2: u64 = derive_rng(42, 1).gen();
        let b: u64 = derive_rng(42, 2).gen();
        let c: u64 = derive_rng(43, 1).gen();
        assert_eq!(a1, a2);
        assert_ne!(a1, b);
        assert_ne!(a1, c);
    }

    #[test]
    fn exp_hours_has_roughly_correct_mean() {
        let mut rng = derive_rng(7, 0);
        let n = 20_000;
        let mean = 72.0;
        let sum: u64 = (0..n).map(|_| exp_hours(&mut rng, mean)).sum();
        let got = sum as f64 / n as f64;
        assert!((got - mean).abs() < mean * 0.05, "mean {got}");
    }

    #[test]
    fn exp_hours_is_at_least_one() {
        let mut rng = derive_rng(7, 1);
        for _ in 0..1000 {
            assert!(exp_hours(&mut rng, 0.1) >= 1);
        }
    }

    #[test]
    fn heavy_tail_majority_short_with_long_tail() {
        let mut rng = derive_rng(7, 2);
        let samples: Vec<u64> = (0..20_000)
            .map(|_| heavy_tail_hours(&mut rng, 16.0, 0.25, 30.0 * 24.0))
            .collect();
        let short = samples.iter().filter(|&&d| d <= 24).count() as f64;
        assert!(short / 20_000.0 > 0.5, "majority should be <= 1 day");
        let max = *samples.iter().max().unwrap();
        assert!(max > 10 * 24, "tail should reach past 10 days, got {max}");
        assert!(max <= 31 * 24, "tail bounded by tail_max, got {max}");
    }

    #[test]
    fn weighted_index_respects_weights() {
        let mut rng = derive_rng(7, 3);
        let mut counts = [0u32; 3];
        for _ in 0..30_000 {
            counts[weighted_index(&mut rng, &[0.7, 0.2, 0.1])] += 1;
        }
        assert!(counts[0] > counts[1] && counts[1] > counts[2]);
        let f0 = counts[0] as f64 / 30_000.0;
        assert!((f0 - 0.7).abs() < 0.02, "{f0}");
    }

    #[test]
    fn weighted_index_single_weight() {
        let mut rng = derive_rng(7, 4);
        assert_eq!(weighted_index(&mut rng, &[1.0]), 0);
    }

    #[test]
    fn jitter_period_bounds() {
        let mut rng = derive_rng(7, 5);
        for _ in 0..1000 {
            let p = jitter_period(&mut rng, 24, 0.1);
            assert!((21..=27).contains(&p), "{p}");
        }
        assert_eq!(jitter_period(&mut rng, 24, 0.0), 24);
    }
}
